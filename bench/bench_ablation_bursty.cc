// Ablation: bursty (non-stationary) arrivals.
//
// §6 argues that shared-scan schedulers whose models assume a stationary
// arrival process (Agrawal et al.) are "poorly suited to bursty workloads
// with no steady state", while LifeRaft's queue-state-driven metric needs
// no arrival model. This bench replays the trace under a two-phase MMPP
// (on/off bursts) with the same long-run average rate as a Poisson
// process, for the contention-driven, age-driven, and least-sharable
// policies.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Ablation: Poisson vs bursty (MMPP) arrivals");
  Standard s = BuildStandard();

  // Same long-run average: Poisson at 0.5 q/s vs 1.0 q/s bursts with 50%
  // duty cycle (5-minute mean phases).
  Rng rng1(9501), rng2(9501);
  auto poisson = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng1);
  auto bursty =
      *sim::BurstyArrivals(s.trace.size(), 1.0, 0.0, 300'000.0, &rng2);

  struct Policy {
    std::string label;
    std::function<std::unique_ptr<sched::Scheduler>()> make;
  };
  std::vector<Policy> policies = {
      {"contention (a=0)",
       [&] { return MakeLifeRaft(*s.catalog, 0.0); }},
      {"aged (a=1)", [&] { return MakeLifeRaft(*s.catalog, 1.0); }},
      {"least-sharable",
       [&] { return std::make_unique<sched::LeastSharableScheduler>(); }},
  };

  Table table({"policy", "poisson_tp", "poisson_resp_s", "bursty_tp",
               "bursty_resp_s", "bursty_peak_buffer"});
  for (const Policy& p : policies) {
    auto mp = RunShared(s.catalog.get(), p.make(), s.trace, poisson);
    auto mb = RunShared(s.catalog.get(), p.make(), s.trace, bursty);
    table.AddRow({p.label, Table::Num(mp.throughput_qps, 3),
                  Table::Num(mp.avg_response_ms / 1000.0, 0),
                  Table::Num(mb.throughput_qps, 3),
                  Table::Num(mb.avg_response_ms / 1000.0, 0),
                  std::to_string(mb.peak_pending_objects)});
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("ablation_bursty.csv");
  std::printf(
      "burstiness stresses buffering: policies that defer contentious\n"
      "buckets (least-sharable) accumulate the deepest backlogs during\n"
      "bursts; LifeRaft's queue-state metric adapts without an arrival\n"
      "model (paper §6).\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
