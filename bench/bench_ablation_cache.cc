// Ablation: bucket cache capacity.
//
// §6 argues a contention-based scheduler benefits from keeping multiple
// buckets in memory (vs Map-Reduce shared scans' effective capacity of one
// file). This bench sweeps the cache size for the greedy (alpha = 0) and
// age-based (alpha = 1) schedulers: the greedy scheduler's throughput and
// hit rate should respond strongly to added capacity (it deliberately
// steers work toward resident buckets via phi), the age-based one's much
// less.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Ablation: cache capacity sweep (greedy vs age-based)");
  Standard s = BuildStandard();

  Rng rng(9103);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);

  Table table({"cache_buckets", "a0_throughput", "a0_hit_pct", "a0_reads",
               "a1_throughput", "a1_hit_pct", "a1_reads"});
  for (size_t capacity : {1, 5, 10, 20, 40, 80}) {
    sim::EngineConfig config = ScaledEngineConfig();
    config.cache_capacity = capacity;
    auto greedy = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, 0.0),
                            s.trace, arrivals, config);
    auto aged = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, 1.0),
                          s.trace, arrivals, config);
    table.AddRow({std::to_string(capacity),
                  Table::Num(greedy.throughput_qps, 3),
                  Table::Num(greedy.cache.HitRate() * 100.0, 1),
                  std::to_string(greedy.store.bucket_reads),
                  Table::Num(aged.throughput_qps, 3),
                  Table::Num(aged.cache.HitRate() * 100.0, 1),
                  std::to_string(aged.store.bucket_reads)});
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("ablation_cache.csv");
  std::printf("paper config: 20 buckets.\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
