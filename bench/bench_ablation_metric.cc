// Ablation: the aged-metric unit mismatch (DESIGN.md §5).
//
// The paper's Eq. 2 adds U_t (objects/ms, magnitude << 10) to A (ms,
// magnitude >> 10^4) without normalization. Taken literally, any alpha > 0
// is age-dominated almost immediately, so alpha = 0.25 / 0.5 / 0.75 behave
// identically to alpha = 1 — the graded trade-off curves of Figs 4/7/8
// cannot exist under the raw formula. This bench demonstrates that, and
// that the normalized blend (our default) restores the gradation.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Ablation: raw Eq. 2 blend vs normalized U_a blend");
  Standard s = BuildStandard();

  Rng rng(9001);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);

  for (auto norm : {sched::MetricNormalization::kNormalized,
                    sched::MetricNormalization::kRawPaper}) {
    const char* label =
        norm == sched::MetricNormalization::kRawPaper ? "raw Eq. 2"
                                                      : "normalized";
    Table table({"alpha", "throughput_qps", "avg_response_s",
                 "cache_hit_pct"});
    for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      auto m = RunShared(s.catalog.get(),
                         MakeLifeRaft(*s.catalog, alpha, norm), s.trace,
                         arrivals);
      table.AddRow({Table::Num(alpha, 2), Table::Num(m.throughput_qps, 3),
                    Table::Num(m.avg_response_ms / 1000.0, 0),
                    Table::Num(m.cache.HitRate() * 100.0, 1)});
    }
    std::printf("%s blend:\n%s\n", label, table.ToText().c_str());
  }
  std::printf(
      "expected: under the raw blend every alpha > 0 row is identical\n"
      "(age dominates); the normalized blend grades smoothly.\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
