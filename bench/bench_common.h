// Shared setup for the figure-reproduction benchmarks: the standard scaled
// experiment (100k-object catalog in 1,000-object buckets; 2,000-query
// SDSS-like trace — see DESIGN.md §5 for the scaling argument) and wrappers
// that run one scheduler/mode over one arrival schedule.

#ifndef LIFERAFT_BENCH_BENCH_COMMON_H_
#define LIFERAFT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sched/least_sharable.h"
#include "sched/liferaft_scheduler.h"
#include "sched/round_robin.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::bench {

/// The standard experiment fixture.
struct Standard {
  std::unique_ptr<storage::Catalog> catalog;
  std::vector<query::CrossMatchQuery> trace;
};

// The benchmark suite runs the paper's experiment under a uniform 10x
// object scale-down (DESIGN.md §5): one simulated object stands for ten of
// the paper's, so a 1,000-object bucket represents the paper's
// 10,000-object / 40 MB bucket. Per-object costs scale up 10x to
// compensate, leaving every cost *ratio* — T_b per bucket, T_m share of a
// batch, the scan-vs-probe break-even at ~3% — identical to the paper's:
//
//   T_b  = 1.2 s per bucket   (seek 6 ms + 4 MB at 3.35 MB/s)
//   T_m  = 1.3 ms per scaled object  (10 x 0.13 ms)
//   probe = 41 ms per scaled object  (10 x 4.1 ms)
//
// The catalog is 500 buckets (vs the paper's 20,000); the trace preset's
// footprints put ~10 buckets under an average query, mirroring the
// paper's measured per-query economics (NoShare ~ 0.085 q/s).
inline storage::DiskModelParams ScaledDiskParams() {
  storage::DiskModelParams p;
  p.seek_ms = 6.0;
  p.transfer_mb_per_s = 3.35;
  p.match_ms_per_object = 1.3;
  p.index_probe_ms = 41.0;
  return p;
}

struct StandardConfig {
  size_t catalog_objects = 500'000;
  size_t objects_per_bucket = 1'000;  // => 500 scaled 40 MB-equivalents
  size_t num_queries = 2'000;
  size_t max_objects_per_query = 800;
  uint64_t seed = 17;
};

inline Standard BuildStandard(const StandardConfig& config = {}) {
  Logger::SetLevel(LogLevel::kWarn);
  Standard s;

  workload::CatalogGenConfig gen;
  gen.num_objects = config.catalog_objects;
  gen.seed = config.seed;
  auto objects = workload::GenerateCatalog(gen);
  if (!objects.ok()) {
    std::fprintf(stderr, "catalog generation failed: %s\n",
                 objects.status().ToString().c_str());
    std::exit(1);
  }
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = config.objects_per_bucket;
  auto catalog = storage::Catalog::Build(std::move(*objects),
                                         catalog_options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog build failed: %s\n",
                 catalog.status().ToString().c_str());
    std::exit(1);
  }
  s.catalog = std::move(*catalog);

  workload::TraceConfig tc = workload::LongRunningSkyQueryPreset();
  tc.num_queries = config.num_queries;
  tc.max_objects_per_query = config.max_objects_per_query;
  tc.seed = config.seed + 1;
  auto trace = workload::GenerateTrace(tc);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace generation failed: %s\n",
                 trace.status().ToString().c_str());
    std::exit(1);
  }
  s.trace = std::move(*trace);
  return s;
}

inline std::unique_ptr<sched::Scheduler> MakeLifeRaft(
    const storage::Catalog& catalog, double alpha,
    sched::MetricNormalization norm =
        sched::MetricNormalization::kNormalized) {
  sched::LifeRaftConfig config;
  config.alpha = alpha;
  config.normalization = norm;
  return std::make_unique<sched::LifeRaftScheduler>(
      catalog.store(), storage::DiskModel(ScaledDiskParams()), config);
}

/// Engine configuration with the scaled disk model installed.
inline sim::EngineConfig ScaledEngineConfig() {
  sim::EngineConfig config;
  config.disk = ScaledDiskParams();
  return config;
}

/// Runs one shared-mode experiment; aborts the bench on error (benches are
/// not tests; an error here is a build problem).
inline sim::RunMetrics RunShared(storage::Catalog* catalog,
                                 std::unique_ptr<sched::Scheduler> scheduler,
                                 const std::vector<query::CrossMatchQuery>& t,
                                 const std::vector<TimeMs>& arrivals,
                                 sim::EngineConfig config = ScaledEngineConfig()) {
  sim::SimEngine engine(catalog, std::move(scheduler), config);
  auto metrics = engine.Run(t, arrivals);
  if (!metrics.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 metrics.status().ToString().c_str());
    std::exit(1);
  }
  return *metrics;
}

inline sim::RunMetrics RunMode(storage::Catalog* catalog,
                               sim::ExecutionMode mode,
                               const std::vector<query::CrossMatchQuery>& t,
                               const std::vector<TimeMs>& arrivals) {
  sim::EngineConfig config = ScaledEngineConfig();
  config.mode = mode;
  sim::SimEngine engine(catalog, nullptr, config);
  auto metrics = engine.Run(t, arrivals);
  if (!metrics.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 metrics.status().ToString().c_str());
    std::exit(1);
  }
  return *metrics;
}

/// Prints a section header so `for b in build/bench/*` output reads as a
/// report.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace liferaft::bench

#endif  // LIFERAFT_BENCH_BENCH_COMMON_H_
