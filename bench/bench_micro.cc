// Microbenchmarks (google-benchmark) for the hot substrate operations:
// HTM point location and cone covers, B+tree range scans, the merge and
// zones cross-match kernels, and the LRU cache. These are the real-CPU
// costs under the simulator's virtual-time experiments; regressions here
// inflate wall-clock for every figure bench.

#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "htm/cover.h"
#include "htm/htm.h"
#include "join/evaluator.h"
#include "join/merge_join.h"
#include "join/zones.h"
#include "query/query.h"
#include "sched/liferaft_scheduler.h"
#include "sim/engine.h"
#include "storage/btree.h"
#include "storage/bucket_cache.h"
#include "storage/catalog.h"
#include "storage/columnar.h"
#include "storage/file_store.h"
#include "storage/mem_store.h"
#include "storage/partitioner.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft {
namespace {

void BM_HtmPointToId(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<Vec3> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back(
        Vec3{rng.Normal(), rng.Normal(), rng.Normal()}.Normalized());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::PointToId(points[i++ & 1023], level));
  }
}
BENCHMARK(BM_HtmPointToId)->Arg(6)->Arg(14)->Arg(20);

void BM_HtmCoverCircle(benchmark::State& state) {
  const double radius_arcsec = static_cast<double>(state.range(0));
  Rng rng(13);
  std::vector<SkyPoint> centers;
  for (int i = 0; i < 256; ++i) {
    centers.push_back(workload::RandomSkyPoint(&rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::CoverCircle(
        centers[i++ & 255], radius_arcsec / kArcsecPerDeg, 14, 8));
  }
}
BENCHMARK(BM_HtmCoverCircle)->Arg(3)->Arg(60)->Arg(3600);

std::vector<storage::CatalogObject> BenchObjects(size_t n) {
  workload::CatalogGenConfig gen;
  gen.num_objects = n;
  gen.seed = 29;
  auto objects = workload::GenerateCatalog(gen);
  std::sort(objects->begin(), objects->end(), storage::ObjectHtmLess);
  return std::move(*objects);
}

void BM_BTreeRangeScan(benchmark::State& state) {
  auto objects = BenchObjects(100'000);
  auto tree = storage::BTreeIndex::BulkLoad(objects);
  Rng rng(31);
  const uint64_t span = (htm::LevelMax(14) - htm::LevelMin(14)) / 1000;
  for (auto _ : state) {
    htm::HtmId lo = htm::LevelMin(14) +
                    rng.UniformU64(htm::LevelMax(14) - htm::LevelMin(14) -
                                   span);
    uint64_t n = 0;
    tree->RangeScan(lo, lo + span,
                    [&](const storage::CatalogObject&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_BTreeRangeScan);

struct JoinFixture {
  storage::Bucket bucket;
  std::vector<query::WorkloadEntry> batch;

  static JoinFixture Make(size_t bucket_objects, size_t queue_objects) {
    Rng rng(37);
    SkyPoint center{120.0, 10.0};
    std::vector<storage::CatalogObject> objects;
    for (size_t i = 0; i < bucket_objects; ++i) {
      objects.push_back(storage::MakeObject(
          i, workload::RandomPointInCap(&rng, center, 3.0)));
    }
    std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);
    query::WorkloadEntry entry;
    entry.query_id = 1;
    for (size_t i = 0; i < queue_objects; ++i) {
      entry.objects.push_back(query::MakeQueryObject(
          i, workload::RandomPointInCap(&rng, center, 3.0), 10.0));
    }
    return JoinFixture{
        storage::Bucket(0,
                        htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                                     htm::LevelMax(htm::kObjectLevel)},
                        std::move(objects)),
        {std::move(entry)}};
  }
};

void BM_MergeCrossMatch(benchmark::State& state) {
  auto fixture = JoinFixture::Make(10'000,
                                   static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto counters = join::MergeCrossMatch(fixture.bucket, fixture.batch,
                                          nullptr);
    benchmark::DoNotOptimize(counters);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeCrossMatch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ZonesCrossMatch(benchmark::State& state) {
  auto fixture = JoinFixture::Make(10'000,
                                   static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto counters = join::ZonesCrossMatch(fixture.bucket, fixture.batch,
                                          10.0 / kArcsecPerDeg, nullptr);
    benchmark::DoNotOptimize(counters);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZonesCrossMatch)->Arg(100)->Arg(1000);

void BM_BucketCacheGet(benchmark::State& state) {
  auto partition = storage::PartitionCatalog(BenchObjects(50'000), 1000);
  storage::MemStore store(std::move(*partition));
  storage::BucketCache cache(&store, 20);
  Rng rng(41);
  ZipfDistribution zipf(store.num_buckets(), 1.1);
  for (auto _ : state) {
    auto b = cache.Get(static_cast<storage::BucketIndex>(zipf.Sample(&rng)));
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BucketCacheGet);

/// Concurrent Get throughput against the sharded cache: four workers each
/// stream Zipf-skewed buckets through one shared cache at shard count
/// `arg`. At 1 shard every Get serializes on a single mutex; higher shard
/// counts split the lock (and the LRU) so wall time per iteration is the
/// contention signal. MemStore reads are thread-safe, so this measures the
/// cache layer alone.
void BM_BucketCacheShardedGet(benchmark::State& state) {
  constexpr size_t kWorkers = 4;
  constexpr size_t kGetsPerWorker = 2048;
  auto partition = storage::PartitionCatalog(BenchObjects(50'000), 1000);
  storage::MemStore store(std::move(*partition));
  storage::BucketCache cache(&store, 20,
                             static_cast<size_t>(state.range(0)));
  util::ThreadPool pool(kWorkers);
  for (auto _ : state) {
    std::vector<std::future<uint64_t>> futures;
    futures.reserve(kWorkers);
    for (size_t t = 0; t < kWorkers; ++t) {
      futures.push_back(pool.Submit([&cache, &store, t] {
        Rng rng(41 + static_cast<uint64_t>(t));
        ZipfDistribution zipf(store.num_buckets(), 1.1);
        uint64_t objects = 0;
        for (size_t i = 0; i < kGetsPerWorker; ++i) {
          auto b = cache.Get(
              static_cast<storage::BucketIndex>(zipf.Sample(&rng)));
          if (b.ok()) objects += (*b)->size();
        }
        return objects;
      }));
    }
    uint64_t total = 0;
    for (auto& f : futures) total += f.get();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWorkers * kGetsPerWorker));
}
BENCHMARK(BM_BucketCacheShardedGet)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ------------------------------------------------- Engine-level benches --
// Wall-clock cost of whole simulated runs. Virtual quantities (the
// makespan the paper's figures report) are attached as counters so the
// BENCH_<tag>.json anchors also track the modeled effect of pipelining.

struct EngineFixture {
  std::unique_ptr<storage::Catalog> catalog;
  std::vector<query::CrossMatchQuery> trace;
  std::vector<TimeMs> arrivals;  // saturated drain: everything at t=0

  static EngineFixture Make(size_t num_objects, size_t num_queries) {
    workload::CatalogGenConfig gen;
    gen.num_objects = num_objects;
    gen.seed = 43;
    auto objects = workload::GenerateCatalog(gen);
    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;
    auto catalog = storage::Catalog::Build(std::move(*objects), options);
    workload::TraceConfig tc;
    tc.num_queries = num_queries;
    tc.max_objects_per_query = 800;
    tc.match_radius_arcsec = 600.0;
    tc.seed = 47;
    auto trace = workload::GenerateTrace(tc);
    return EngineFixture{std::move(*catalog), std::move(*trace),
                         std::vector<TimeMs>(num_queries, 0.0)};
  }
};

/// Shared-mode drain with the cross-batch prefetch pipeline off (arg 0) or
/// on at prediction depth arg; virtual_makespan_ms is the paper-visible
/// effect and prefetch_hidden_ms the fetch latency hidden behind compute.
void BM_EngineSharedPrefetch(benchmark::State& state) {
  auto fx = EngineFixture::Make(30'000, 24);
  sim::EngineConfig config;
  config.enable_prefetch = state.range(0) != 0;
  config.prefetch_depth =
      state.range(0) > 0 ? static_cast<size_t>(state.range(0)) : 1;
  double makespan = 0.0;
  double hidden = 0.0;
  for (auto _ : state) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    sim::SimEngine engine(fx.catalog.get(),
                          std::make_unique<sched::LifeRaftScheduler>(
                              fx.catalog->store(), storage::DiskModel{}, sc),
                          config);
    auto metrics = engine.Run(fx.trace, fx.arrivals);
    makespan = metrics->makespan_ms;
    hidden = metrics->prefetch_hidden_ms;
    benchmark::DoNotOptimize(metrics);
  }
  state.counters["virtual_makespan_ms"] = makespan;
  state.counters["prefetch_hidden_ms"] = hidden;
}
BENCHMARK(BM_EngineSharedPrefetch)->Arg(0)->Arg(1)->Arg(2);

/// Shared-mode drain under the adaptive prefetch controller (starting
/// depth 2, ceiling = arg). virtual_makespan_ms / prefetch_hidden_ms are
/// the paper-visible effects; final_depth shows where the feedback loop
/// settled and prefetch_wasted_kb what mispredicts cost. The acceptance
/// bar: hidden must be >= the fixed depth-2 number on this fixture.
void BM_EngineSharedAdaptivePrefetch(benchmark::State& state) {
  auto fx = EngineFixture::Make(30'000, 24);
  sim::EngineConfig config;
  config.adaptive_prefetch = true;
  config.prefetch_depth = 2;
  config.max_prefetch_depth = static_cast<size_t>(state.range(0));
  double makespan = 0.0;
  double hidden = 0.0;
  double final_depth = 0.0;
  double wasted_kb = 0.0;
  for (auto _ : state) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    sim::SimEngine engine(fx.catalog.get(),
                          std::make_unique<sched::LifeRaftScheduler>(
                              fx.catalog->store(), storage::DiskModel{}, sc),
                          config);
    auto metrics = engine.Run(fx.trace, fx.arrivals);
    makespan = metrics->makespan_ms;
    hidden = metrics->prefetch_hidden_ms;
    final_depth = static_cast<double>(metrics->prefetch_final_depth);
    wasted_kb =
        static_cast<double>(metrics->cache.prefetch_wasted_bytes) / 1024.0;
    benchmark::DoNotOptimize(metrics);
  }
  state.counters["virtual_makespan_ms"] = makespan;
  state.counters["prefetch_hidden_ms"] = hidden;
  state.counters["final_depth"] = final_depth;
  state.counters["prefetch_wasted_kb"] = wasted_kb;
}
BENCHMARK(BM_EngineSharedAdaptivePrefetch)->Arg(2)->Arg(4);

/// Shared-mode drain with depth-2 prefetch over a multi-volume topology
/// (range placement; arg = num_volumes, 1 reproduces
/// BM_EngineSharedPrefetch/2 byte for byte). Each volume is an
/// independent disk arm with its own prefetch queue: fetches on different
/// arms overlap each other and the foreground disk phase on the virtual
/// clocks, so virtual_makespan_ms shrinks as arms are added while the
/// per-arm accounting stays deterministic. volume_busy_ms is the summed
/// modeled disk-busy time across arms (the bandwidth actually used).
void BM_EngineMultiVolumeDrain(benchmark::State& state) {
  auto fx = EngineFixture::Make(30'000, 24);
  sim::EngineConfig config;
  config.enable_prefetch = true;
  config.prefetch_depth = 2;
  config.topology.num_volumes = static_cast<size_t>(state.range(0));
  config.topology.placement = storage::VolumePlacement::kRange;
  double makespan = 0.0;
  double hidden = 0.0;
  double busy = 0.0;
  for (auto _ : state) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    sim::SimEngine engine(fx.catalog.get(),
                          std::make_unique<sched::LifeRaftScheduler>(
                              fx.catalog->store(), storage::DiskModel{}, sc),
                          config);
    auto metrics = engine.Run(fx.trace, fx.arrivals);
    makespan = metrics->makespan_ms;
    hidden = metrics->prefetch_hidden_ms;
    busy = 0.0;
    for (const auto& v : metrics->volumes) busy += v.busy_ms;
    benchmark::DoNotOptimize(metrics);
  }
  state.counters["virtual_makespan_ms"] = makespan;
  state.counters["prefetch_hidden_ms"] = hidden;
  state.counters["volume_busy_ms"] = busy;
}
BENCHMARK(BM_EngineMultiVolumeDrain)->Arg(1)->Arg(2)->Arg(4);

/// Cost of one dense shared batch's parallel join with match
/// materialization, per-worker arenas off (/0) vs on (/1): the arena path
/// replaces contended heap growth/free cycles in the fan-out with private
/// pointer bumps. Measured in process CPU time so the win is visible even
/// on a single-core host, where four workers time-slice one core and wall
/// time is all scheduler noise.
void BM_ParallelJoinArenas(benchmark::State& state) {
  constexpr size_t kBucketObjects = 10'000;
  constexpr size_t kEntries = 16;
  constexpr size_t kObjectsPerEntry = 500;
  Rng rng(53);
  SkyPoint center{120.0, 10.0};
  std::vector<storage::CatalogObject> objects;
  objects.reserve(kBucketObjects);
  for (size_t i = 0; i < kBucketObjects; ++i) {
    objects.push_back(storage::MakeObject(
        i, workload::RandomPointInCap(&rng, center, 3.0)));
  }
  std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);
  auto partition =
      storage::PartitionCatalog(std::move(objects), kBucketObjects);
  storage::MemStore store(std::move(*partition));  // one all-sky bucket
  std::vector<query::WorkloadEntry> batch;
  for (size_t e = 0; e < kEntries; ++e) {
    query::WorkloadEntry entry;
    entry.query_id = e + 1;
    for (size_t i = 0; i < kObjectsPerEntry; ++i) {
      entry.objects.push_back(query::MakeQueryObject(
          i, workload::RandomPointInCap(&rng, center, 3.0), 300.0));
    }
    batch.push_back(std::move(entry));
  }

  storage::BucketCache cache(&store, 2);
  join::JoinEvaluator evaluator(&cache, /*index=*/nullptr,
                                storage::DiskModel{}, join::HybridConfig{});
  util::ThreadPool pool(4);
  evaluator.set_thread_pool(&pool);
  evaluator.set_use_match_arenas(state.range(0) != 0);
  uint64_t matches = 0;
  for (auto _ : state) {
    auto result = evaluator.EvaluateBucket(0, batch,
                                           /*collect_matches=*/true);
    if (result.ok()) matches = result->counters.output_matches;
    benchmark::DoNotOptimize(result);
  }
  state.counters["matches_per_batch"] = static_cast<double>(matches);
}
BENCHMARK(BM_ParallelJoinArenas)->Arg(0)->Arg(1)->MeasureProcessCPUTime();

/// Continuous serving at an offered Poisson rate of arg/10 QPS with a
/// bounded admission queue. The figure of merit is sustainable QPS at a
/// tail-latency target (see docs/BENCHMARKS.md): sweep the offered rate
/// and take the highest whose p99_interactive_ms stays under target.
/// Counters: sustained_qps (completed work rate), p99 per QoS class, and
/// shed (arrivals rejected by admission control). All virtual-clock
/// quantities — deterministic at a fixed seed; wall time measures the
/// serving loop's real overhead.
void BM_EngineServe(benchmark::State& state) {
  auto fx = EngineFixture::Make(30'000, 24);
  sim::EngineConfig config;
  sim::ServeConfig serve;
  serve.arrivals.kind = sim::ArrivalSpec::Kind::kPoisson;
  serve.arrivals.rate_qps = static_cast<double>(state.range(0)) / 10.0;
  serve.arrivals.seed = 59;
  serve.max_pending_queries = 16;
  double sustained = 0.0;
  double p99_interactive = 0.0;
  double p99_batch = 0.0;
  double shed = 0.0;
  for (auto _ : state) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    sim::SimEngine engine(fx.catalog.get(),
                          std::make_unique<sched::LifeRaftScheduler>(
                              fx.catalog->store(), storage::DiskModel{}, sc),
                          config);
    auto metrics = engine.Serve(fx.trace, serve);
    sustained = metrics->sustained_qps;
    p99_interactive = metrics->qos_classes[0].p99_response_ms;
    p99_batch = metrics->qos_classes[1].p99_response_ms;
    shed = static_cast<double>(metrics->queries_shed);
    benchmark::DoNotOptimize(metrics);
  }
  state.counters["sustained_qps"] = sustained;
  state.counters["p99_interactive_ms"] = p99_interactive;
  state.counters["p99_batch_ms"] = p99_batch;
  state.counters["shed"] = shed;
}
BENCHMARK(BM_EngineServe)->Arg(2)->Arg(5)->Arg(20);

/// NoShare drain at 1 vs 4 worker threads: per-query fan-out wall-clock
/// speedup (virtual results are byte-identical by construction).
void BM_EngineNoShareThreads(benchmark::State& state) {
  auto fx = EngineFixture::Make(30'000, 24);
  sim::EngineConfig config;
  config.mode = sim::ExecutionMode::kNoShare;
  config.num_threads = static_cast<size_t>(state.range(0));
  sim::SimEngine engine(fx.catalog.get(), nullptr, config);
  for (auto _ : state) {
    auto metrics = engine.Run(fx.trace, fx.arrivals);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_EngineNoShareThreads)->Arg(1)->Arg(4);

/// Zero-copy columnar scan (arg 0) vs decode-to-rows-then-scan (arg 1)
/// over the same parsed v2 page: the price the row path pays to
/// materialize 10k CatalogObjects per bucket touch, which the span-based
/// kernel skips entirely. Results are identical by construction (the
/// identity tests pin that); this bench tracks the CPU delta.
void BM_ColumnarScanVsDecode(benchmark::State& state) {
  auto fixture = JoinFixture::Make(10'000, 1000);
  std::string encoded;
  storage::EncodeColumnarPage(fixture.bucket, &encoded);
  std::unique_ptr<char[]> buf(new char[encoded.size()]);
  std::memcpy(buf.get(), encoded.data(), encoded.size());
  auto page = storage::ColumnarPage::Parse(std::move(buf), encoded.size());
  const bool decode_rows = state.range(0) != 0;
  storage::Bucket columnar(0, *page);
  for (auto _ : state) {
    if (decode_rows) {
      std::vector<storage::CatalogObject> rows;
      rows.reserve((*page)->size());
      for (size_t i = 0; i < (*page)->size(); ++i) {
        rows.push_back((*page)->MaterializeObject(i));
      }
      storage::Bucket row_bucket(0, fixture.bucket.range(), std::move(rows));
      auto counters =
          join::MergeCrossMatch(row_bucket, fixture.batch, nullptr);
      benchmark::DoNotOptimize(counters);
    } else {
      auto counters =
          join::MergeCrossMatch(columnar, fixture.batch, nullptr);
      benchmark::DoNotOptimize(counters);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ColumnarScanVsDecode)->Arg(0)->Arg(1);

/// End-to-end saturated drain at a FIXED cache byte budget over the same
/// partition written as row v1 (arg 0) and columnar v2 (arg 1), with
/// charge_encoded_bytes on so T_b prices real page bytes. The compressed
/// format wins twice: smaller pages transfer faster AND more buckets fit
/// the budget (higher hit rate). encoded_bytes_ratio = this format's
/// total page bytes / the v1 total, the compression the gate holds at
/// <= anchor.
void BM_EngineFixedCacheBudgetDrain(benchmark::State& state) {
  // One-time fixture: the EngineFixture's partition persisted to both
  // formats (leaked intentionally — benchmark process-lifetime statics).
  struct FormatFiles {
    std::string v1_path;
    std::string v2_path;
    std::vector<query::CrossMatchQuery> trace;
    std::vector<TimeMs> arrivals;
  };
  static const FormatFiles& files = *[] {
    auto* f = new FormatFiles;
    const std::string base =
        (std::filesystem::temp_directory_path() /
         ("liferaft_bench_fmt_" + std::to_string(::getpid())))
            .string();
    f->v1_path = base + ".v1.lfr";
    f->v2_path = base + ".v2.lfr";
    workload::CatalogGenConfig gen;
    gen.num_objects = 30'000;
    gen.seed = 43;
    auto objects = workload::GenerateCatalog(gen);
    auto partition = storage::PartitionCatalog(std::move(*objects), 1000);
    storage::FileStore::Create(f->v1_path, partition->buckets,
                               storage::BucketFormat::kRowV1)
        .ok();
    storage::FileStore::Create(f->v2_path, partition->buckets,
                               storage::BucketFormat::kColumnarV2)
        .ok();
    workload::TraceConfig tc;
    tc.num_queries = 24;
    tc.max_objects_per_query = 800;
    tc.match_radius_arcsec = 600.0;
    tc.seed = 47;
    f->trace = std::move(*workload::GenerateTrace(tc));
    f->arrivals.assign(tc.num_queries, 0.0);
    return f;
  }();
  const std::string& path = state.range(0) == 0 ? files.v1_path
                                                : files.v2_path;
  auto store = storage::FileStore::Open(path);
  auto catalog = storage::Catalog::FromStore(std::move(*store));

  uint64_t encoded_total = 0;
  uint64_t v1_total = 0;
  {
    auto v1_store = storage::FileStore::Open(files.v1_path);
    const storage::BucketStore* s = (*catalog)->store();
    for (size_t i = 0; i < s->num_buckets(); ++i) {
      encoded_total += s->EncodedBucketBytes(i);
      v1_total += (*v1_store)->EncodedBucketBytes(i);
    }
  }

  sim::EngineConfig config;
  config.cache_capacity = 64;
  // Fixed 1 MB budget, chosen between the two formats' totals (~1.2 MB of
  // v1 pages vs ~0.8 MB of v2 pages for this 30-bucket partition): the
  // columnar file fits entirely, the row file must evict.
  config.cache_capacity_bytes = 1ull << 20;
  config.charge_encoded_bytes = true;
  config.enable_prefetch = true;
  config.prefetch_depth = 2;
  double makespan = 0.0;
  double hit_rate = 0.0;
  for (auto _ : state) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    sim::SimEngine engine(
        (*catalog).get(),
        std::make_unique<sched::LifeRaftScheduler>(
            (*catalog)->store(), storage::DiskModel{}, sc),
        config);
    auto metrics = engine.Run(files.trace, files.arrivals);
    makespan = metrics->makespan_ms;
    hit_rate = metrics->cache.HitRate();
    benchmark::DoNotOptimize(metrics);
  }
  state.counters["virtual_makespan_ms"] = makespan;
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["encoded_bytes_ratio"] =
      static_cast<double>(encoded_total) / static_cast<double>(v1_total);
}
BENCHMARK(BM_EngineFixedCacheBudgetDrain)->Arg(0)->Arg(1);

/// Real-I/O drain: the shared prefetch drain executed in wall-clock mode
/// (EngineConfig::io_mode = kReal) against an on-disk FileStore. Args are
/// (volumes, format 0=row-v1 / 1=columnar-v2). Prefetch bets and
/// foreground misses are actual pread(2)s through the per-volume
/// submission queues — O_DIRECT when the filesystem allows it, buffered
/// otherwise (the direct_io counter records which) — so real_time here IS
/// the measured drain, and the multi-volume speedup is physical overlap
/// of device-blocked reads, not virtual arithmetic. Catalog size comes
/// from LIFERAFT_BENCH_REAL_IO_OBJECTS (default 500k objects, ~20 MB of
/// v1 pages, CI-friendly); committed anchors record a >= 1 GB run (see
/// docs/BENCHMARKS.md). Wall numbers are machine- and cache-state-
/// dependent by design: the bench is skip-listed from the regression
/// gate and exists to document the measured speedup, with the modeled
/// benches above still carrying the gated counters.
void BM_RealIoDrain(benchmark::State& state) {
  struct RealIoFiles {
    std::string v1_path;
    std::string v2_path;
    uint64_t v1_bytes = 0;
    std::vector<query::CrossMatchQuery> trace;
    std::vector<TimeMs> arrivals;
  };
  static const RealIoFiles& files = *[] {
    auto* f = new RealIoFiles;
    size_t num_objects = 2'000'000;
    if (const char* env = std::getenv("LIFERAFT_BENCH_REAL_IO_OBJECTS")) {
      num_objects = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    const std::string base =
        (std::filesystem::temp_directory_path() /
         ("liferaft_bench_realio_" + std::to_string(::getpid())))
            .string();
    f->v1_path = base + ".v1.lfr";
    f->v2_path = base + ".v2.lfr";
    workload::CatalogGenConfig gen;
    gen.num_objects = num_objects;
    gen.seed = 43;
    auto objects = workload::GenerateCatalog(gen);
    // 50k objects per bucket => ~2 MB row-v1 pages: each prefetch bet is
    // a millisecond-scale pread, so the drain is device-bound and the
    // volume axis measures real overlap. (Small pages on a fast NVMe-
    // backed disk make the drain CPU-bound and the volume axis noise.)
    auto partition = storage::PartitionCatalog(std::move(*objects), 50'000);
    storage::FileStore::Create(f->v1_path, partition->buckets,
                               storage::BucketFormat::kRowV1)
        .ok();
    storage::FileStore::Create(f->v2_path, partition->buckets,
                               storage::BucketFormat::kColumnarV2)
        .ok();
    f->v1_bytes = std::filesystem::file_size(f->v1_path);
    // Evict the just-written pages so the measured drain reads the device,
    // not the page cache — this is what makes the buffered-fallback mode
    // honest too (O_DIRECT bypasses the cache either way).
    for (const std::string* p : {&f->v1_path, &f->v2_path}) {
      int fd = ::open(p->c_str(), O_RDONLY);
      if (fd >= 0) {
#ifdef POSIX_FADV_DONTNEED
        (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
        ::close(fd);
      }
    }
    // Sky-spanning cones with low object density: queries touch many
    // bucket pages but carry little join work, so the drain is
    // I/O-dominated rather than compute-dominated.
    workload::TraceConfig tc;
    tc.num_queries = 24;
    tc.min_radius_deg = 5.0;
    tc.max_radius_deg = 60.0;
    tc.objects_per_sq_deg = 0.05;
    tc.max_objects_per_query = 150;
    tc.match_radius_arcsec = 600.0;
    tc.seed = 47;
    f->trace = std::move(*workload::GenerateTrace(tc));
    f->arrivals.assign(tc.num_queries, 0.0);
    return f;
  }();

  const bool columnar = state.range(1) != 0;
  storage::FileStoreOptions options;
  options.use_direct_io = true;
  options.advise_random = true;
  auto store = storage::FileStore::Open(
      columnar ? files.v2_path : files.v1_path, options);
  const bool direct = (*store)->direct_io_active();
  auto catalog = storage::Catalog::FromStore(std::move(*store));

  sim::EngineConfig config;
  config.io_mode = sim::IoMode::kReal;
  config.enable_prefetch = true;
  config.prefetch_depth = 2;
  if (const char* env = std::getenv("LIFERAFT_BENCH_REAL_IO_DEPTH")) {
    config.prefetch_depth = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  config.cache_capacity = 64;
  config.topology.num_volumes = static_cast<size_t>(state.range(0));
  config.topology.placement = storage::VolumePlacement::kHash;
  double makespan = 0.0;
  double read_mb = 0.0;
  double p99 = 0.0;
  for (auto _ : state) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    sim::SimEngine engine(
        (*catalog).get(),
        std::make_unique<sched::LifeRaftScheduler>(
            (*catalog)->store(), storage::DiskModel{}, sc),
        config);
    auto metrics = engine.Run(files.trace, files.arrivals);
    makespan = metrics->makespan_ms;
    read_mb = 0.0;
    p99 = 0.0;
    for (const auto& v : metrics->real_io) {
      read_mb += static_cast<double>(v.bytes) / (1024.0 * 1024.0);
      p99 = std::max(p99, v.p99_latency_ms);
    }
    benchmark::DoNotOptimize(metrics);
  }
  state.counters["wall_makespan_ms"] = makespan;
  state.counters["io_read_mb"] = read_mb;
  state.counters["io_p99_ms"] = p99;
  state.counters["direct_io"] = direct ? 1.0 : 0.0;
  state.counters["catalog_mb"] =
      static_cast<double>(files.v1_bytes) / (1024.0 * 1024.0);
}
BENCHMARK(BM_RealIoDrain)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// IndexOnly drain at 1 vs 4 worker threads.
void BM_EngineIndexOnlyThreads(benchmark::State& state) {
  auto fx = EngineFixture::Make(30'000, 24);
  sim::EngineConfig config;
  config.mode = sim::ExecutionMode::kIndexOnly;
  config.num_threads = static_cast<size_t>(state.range(0));
  sim::SimEngine engine(fx.catalog.get(), nullptr, config);
  for (auto _ : state) {
    auto metrics = engine.Run(fx.trace, fx.arrivals);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_EngineIndexOnlyThreads)->Arg(1)->Arg(4);

}  // namespace
}  // namespace liferaft

BENCHMARK_MAIN();
