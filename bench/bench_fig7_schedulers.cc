// Reproduces Figure 7: throughput (7a) and response time (7b) by
// scheduling algorithm over the 2,000-query trace.
//
//   Paper shapes to verify:
//   * 7a: greedy LifeRaft (alpha=0) achieves > 2x the throughput of
//     NoShare; throughput decays gently as alpha rises; RR lands near
//     alpha=1.
//   * 7b: NoShare has the worst average response time; the greedy
//     scheduler's response is roughly 2x the purely age-based one's; RR's
//     average response is relatively high (full-rotation waits) with high
//     variance.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Figure 7: performance by scheduling algorithm");
  Standard s = BuildStandard();

  // Open-system replay at high saturation (0.5 q/s, the top of the paper's
  // Fig 8 sweep): arrival order matters, queues build, and schedulers
  // differentiate. (Queuing all 2,000 queries at t=0 would degenerate into
  // one full sweep where every policy ties.)
  Rng rng(1009);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);

  struct Row {
    std::string label;
    sim::RunMetrics metrics;
  };
  std::vector<Row> rows;
  rows.push_back({"NoShare", RunMode(s.catalog.get(),
                                     sim::ExecutionMode::kNoShare, s.trace,
                                     arrivals)});
  for (double alpha : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    rows.push_back(
        {"alpha=" + Table::Num(alpha, 2),
         RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, alpha), s.trace,
                   arrivals)});
  }
  rows.push_back(
      {"RR", RunShared(s.catalog.get(),
                       std::make_unique<sched::RoundRobinScheduler>(),
                       s.trace, arrivals)});

  double noshare_resp = rows.front().metrics.avg_response_ms;

  Table table({"scheduler", "throughput_qps", "resp_norm_noshare",
               "resp_cov", "bucket_reads", "cache_hit_pct"});
  for (const Row& r : rows) {
    table.AddRow({r.label, Table::Num(r.metrics.throughput_qps, 4),
                  Table::Num(r.metrics.avg_response_ms / noshare_resp, 3),
                  Table::Num(r.metrics.response_cov, 3),
                  std::to_string(r.metrics.store.bucket_reads),
                  Table::Num(r.metrics.cache.HitRate() * 100.0, 1)});
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("fig7_schedulers.csv");

  double greedy_tp = rows[5].metrics.throughput_qps;
  double noshare_tp = rows[0].metrics.throughput_qps;
  double rr_tp = rows[6].metrics.throughput_qps;
  double aged_tp = rows[1].metrics.throughput_qps;
  std::printf("greedy/noshare throughput ratio: %.2fx (paper: >2x)\n",
              greedy_tp / noshare_tp);
  std::printf("RR vs alpha=1 throughput:        %.3f vs %.3f (paper: ~equal)\n",
              rr_tp, aged_tp);
  std::printf(
      "greedy/aged response ratio:      %.2fx (paper: ~2x)\n",
      rows[5].metrics.avg_response_ms / rows[1].metrics.avg_response_ms);
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
