// Reproduces the §6 discussion statistics:
//   * cache effectiveness by scheduling policy — the paper measured ~40% of
//     requests served from cache under the most-data-sharing policy
//     (alpha = 0) vs ~7% under the purely age-based one (alpha = 1),
//     because an age-based scheduler evicts contentious regions to maintain
//     completion order;
//   * the legacy index-exclusive execution being ~7x slower than even
//     NoShare (§5: why IndexOnly is excluded from the main comparison).

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("§6 discussion: cache effectiveness by policy; index-only cost");
  Standard s = BuildStandard();

  Rng rng(6007);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);

  Table table({"policy", "cache_hit_pct", "bucket_reads", "throughput_qps"});
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto m = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, alpha),
                       s.trace, arrivals);
    table.AddRow({"alpha=" + Table::Num(alpha, 2),
                  Table::Num(m.cache.HitRate() * 100.0, 1),
                  std::to_string(m.store.bucket_reads),
                  Table::Num(m.throughput_qps, 3)});
  }
  std::printf("%s", table.ToText().c_str());
  std::printf(
      "(paper: ~40%% of requests from cache at alpha=0 vs ~7%% at alpha=1)\n\n");
  (void)table.WriteCsv("cache_discussion.csv");

  // Index-exclusive execution vs NoShare (both FIFO, per-query).
  auto noshare = RunMode(s.catalog.get(), sim::ExecutionMode::kNoShare,
                         s.trace, arrivals);
  auto indexonly = RunMode(s.catalog.get(), sim::ExecutionMode::kIndexOnly,
                           s.trace, arrivals);
  std::printf("NoShare   throughput: %.4f q/s\n", noshare.throughput_qps);
  std::printf("IndexOnly throughput: %.4f q/s\n", indexonly.throughput_qps);
  std::printf("IndexOnly is %.1fx slower than NoShare (paper: ~7x)\n",
              noshare.throughput_qps / indexonly.throughput_qps);
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
