// Reproduces Figure 4: normalized throughput vs. normalized average
// response time trade-off curves at low and high saturation, and the
// tolerance-threshold selection of alpha used by the adaptive controller.
//
//   Paper shapes to verify:
//   * each curve walks from the greedy corner (best throughput, worst
//     response) toward the age corner (lower throughput, better response)
//     as alpha goes 0 -> 1;
//   * with a 20% throughput tolerance, low saturation selects a high alpha
//     (paper: 1.0) and high saturation a low one (paper: 0.25).

#include "bench/bench_common.h"
#include "sched/adaptive.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Figure 4: throughput vs response trade-off curves by saturation");
  Standard s = BuildStandard();

  const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  struct CurveSpec {
    const char* label;
    double rate_qps;
  };
  // 1.2 q/s is this scaled system's high-saturation point (capacity knees
  // sit ~5x higher than the paper's; see EXPERIMENTS.md).
  const CurveSpec curves[] = {{"low (0.1 q/s)", 0.1},
                              {"high (1.2 q/s, scaled)", 1.2}};

  for (const CurveSpec& spec : curves) {
    Rng rng(4007);
    auto arrivals = *sim::PoissonArrivals(s.trace.size(), spec.rate_qps,
                                         &rng);
    std::vector<sched::TradeoffPoint> curve;
    for (double alpha : alphas) {
      auto m = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, alpha),
                         s.trace, arrivals);
      curve.push_back(
          sched::TradeoffPoint{alpha, m.throughput_qps, m.avg_response_ms});
    }
    double max_tp = 0, max_resp = 0;
    for (const auto& p : curve) {
      max_tp = std::max(max_tp, p.throughput_qps);
      max_resp = std::max(max_resp, p.avg_response_ms);
    }
    Table table({"alpha", "throughput_norm", "response_norm",
                 "throughput_qps", "avg_response_s"});
    for (const auto& p : curve) {
      table.AddRow({Table::Num(p.alpha, 2),
                    Table::Num(p.throughput_qps / max_tp, 3),
                    Table::Num(p.avg_response_ms / max_resp, 3),
                    Table::Num(p.throughput_qps, 3),
                    Table::Num(p.avg_response_ms / 1000.0, 0)});
    }
    std::printf("saturation %s:\n%s\n", spec.label,
                table.ToText().c_str());

    auto alpha = sched::SelectAlpha(curve, 0.2);
    if (alpha.ok()) {
      std::printf(
          "alpha selected at 20%% throughput tolerance: %.2f (paper: %s)\n\n",
          *alpha, spec.rate_qps < 0.3 ? "1.0 at low saturation"
                                      : "0.25 at high saturation");
    }
  }
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
