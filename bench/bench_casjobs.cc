// Baseline comparison: CasJobs multi-queue (paper §2) vs LifeRaft.
//
// CasJobs protects interactive work by routing "short" and "long" queries
// (an arbitrary size threshold) to separate servers; LifeRaft serves all
// sizes in one system and relies on the aged metric. The paper's §2
// criticism: the threshold misclassifies — "the longest short queries
// interfere with the short queue and the shortest long queries experience
// starvation" — and the two servers duplicate I/O instead of sharing it.
//
// This bench runs a mixed short/long trace through (a) CasJobs at several
// thresholds and (b) one LifeRaft instance, reporting per-class response
// and total bucket reads.

#include "bench/bench_common.h"
#include "sim/casjobs.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Baseline: CasJobs multi-queue vs LifeRaft");
  Standard s = BuildStandard();

  // Make every 4th query short and interactive.
  Rng mix_rng(9701);
  for (size_t i = 0; i < s.trace.size(); i += 4) {
    auto& q = s.trace[i];
    SkyPoint center = workload::RandomSkyPoint(&mix_rng);
    q.objects.clear();
    for (int j = 0; j < 12; ++j) {
      q.objects.push_back(query::MakeQueryObject(
          j, workload::RandomPointInCap(&mix_rng, center, 0.2), 3.0));
    }
  }
  Rng rng(9703);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);

  Table table({"system", "short_resp_s", "long_resp_s", "throughput_qps",
               "bucket_reads"});
  for (size_t threshold : {50, 400}) {
    sim::CasJobsConfig config;
    config.short_threshold_objects = threshold;
    config.disk = ScaledDiskParams();
    auto m = sim::RunCasJobs(s.catalog.get(), config, s.trace, arrivals);
    if (!m.ok()) std::exit(1);
    table.AddRow({"CasJobs(th=" + std::to_string(threshold) + ")",
                  Table::Num(m->short_response_ms.mean() / 1000.0, 0),
                  Table::Num(m->long_response_ms.mean() / 1000.0, 0),
                  Table::Num(m->throughput_qps, 3),
                  std::to_string(m->bucket_reads)});
  }

  // LifeRaft: one system, all sizes. Report per-class response by query
  // size post hoc.
  sim::EngineConfig config = ScaledEngineConfig();
  sim::SimEngine engine(s.catalog.get(), MakeLifeRaft(*s.catalog, 0.25),
                        config);
  auto metrics = engine.Run(s.trace, arrivals);
  if (!metrics.ok()) std::exit(1);
  StreamingStats short_resp, long_resp;
  for (const sim::QueryOutcome& o : engine.outcomes()) {
    const auto& q = s.trace[o.id - 1];
    (q.objects.size() <= 50 ? short_resp : long_resp).Add(o.ResponseMs());
  }
  table.AddRow({"LifeRaft(a=0.25)",
                Table::Num(short_resp.mean() / 1000.0, 0),
                Table::Num(long_resp.mean() / 1000.0, 0),
                Table::Num(metrics->throughput_qps, 3),
                std::to_string(metrics->store.bucket_reads)});

  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("casjobs_baseline.csv");
  std::printf(
      "CasJobs duplicates bucket reads across its servers and its\n"
      "threshold decides arbitrarily who waits; LifeRaft shares all I/O in\n"
      "one system (paper §2).\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
