// Reproduces Figure 8: throughput (8a) and average response time (8b)
// versus workload saturation (arrival rate) for age bias alpha in
// {0, .25, .5, .75, 1}.
//
//   Paper shapes to verify:
//   * 8a: the throughput gap across alpha widens as saturation grows
//     (ignoring arrival order buys more under load);
//   * 8b: response time grows with saturation but its *relative* gap
//     across alpha stays comparatively flat (the hybrid join lets the
//     age-biased scheduler fall back to index probes for sparse queues);
//   * raising alpha is progressively more attractive at lower saturation —
//     the paper quotes: at 0.1 q/s, alpha 0 -> 1 cuts response by ~54% for
//     only ~7% of throughput.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Figure 8: throughput and response time by saturation");
  Standard s = BuildStandard();

  // Scaled saturation band. Our 500-bucket system has more sharing per
  // bucket than the paper's 20,000-bucket archive, so its capacity knees
  // sit higher: the paper's 0.1-0.5 q/s band maps to ~0.1-2.5 q/s here
  // (under-saturated through deeply saturated); see EXPERIMENTS.md.
  const double saturations[] = {0.1, 0.25, 0.5, 1.2, 2.5};
  const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  // metrics[saturation][alpha]
  std::vector<std::vector<sim::RunMetrics>> grid;
  for (double rate : saturations) {
    Rng rng(8011);  // same arrival schedule for every alpha at this rate
    auto arrivals = *sim::PoissonArrivals(s.trace.size(), rate, &rng);
    std::vector<sim::RunMetrics> row;
    for (double alpha : alphas) {
      row.push_back(RunShared(s.catalog.get(),
                              MakeLifeRaft(*s.catalog, alpha), s.trace,
                              arrivals));
    }
    grid.push_back(std::move(row));
  }

  Table tp({"saturation_qps", "a=0.00", "a=0.25", "a=0.50", "a=0.75",
            "a=1.00"});
  Table resp({"saturation_qps", "a=0.00", "a=0.25", "a=0.50", "a=0.75",
              "a=1.00"});
  for (size_t i = 0; i < std::size(saturations); ++i) {
    std::vector<std::string> tp_row = {Table::Num(saturations[i], 2)};
    std::vector<std::string> resp_row = {Table::Num(saturations[i], 2)};
    for (size_t j = 0; j < std::size(alphas); ++j) {
      tp_row.push_back(Table::Num(grid[i][j].throughput_qps, 3));
      resp_row.push_back(
          Table::Num(grid[i][j].avg_response_ms / 1000.0, 0));
    }
    tp.AddRow(tp_row);
    resp.AddRow(resp_row);
  }
  std::printf("(8a) Throughput (queries/second):\n%s\n",
              tp.ToText().c_str());
  std::printf("(8b) Avg response time (seconds):\n%s\n",
              resp.ToText().c_str());
  (void)tp.WriteCsv("fig8a_throughput.csv");
  (void)resp.WriteCsv("fig8b_response.csv");

  // The paper's trade-off quotes.
  auto quote = [&](size_t sat_idx, const char* label) {
    const auto& row = grid[sat_idx];
    double tp0 = row[0].throughput_qps;
    double tp1 = row[4].throughput_qps;
    double r0 = row[0].avg_response_ms;
    double r1 = row[4].avg_response_ms;
    std::printf(
        "at %s q/s: alpha 0->1 changes response by %+.0f%%, throughput by "
        "%+.0f%%\n",
        label, (r1 - r0) / r0 * 100.0, (tp1 - tp0) / tp0 * 100.0);
  };
  quote(0, "0.10 (paper: ~-54% response for ~-7% throughput)");
  quote(4, "2.50, scaled high saturation (paper: trade-off much less attractive)");

  // Gap widening (8a): throughput spread across alphas at each rate.
  std::printf("\nthroughput spread (max-min across alpha):\n");
  for (size_t i = 0; i < std::size(saturations); ++i) {
    double lo = 1e30, hi = 0;
    for (const auto& m : grid[i]) {
      lo = std::min(lo, m.throughput_qps);
      hi = std::max(hi, m.throughput_qps);
    }
    std::printf("  %.2f q/s: %.3f  (%.0f%% of offered)\n", saturations[i],
                hi - lo, (hi - lo) / saturations[i] * 100.0);
  }
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
