// Reproduces Figure 2: speed-up of the non-indexed sequential scan over the
// indexed join as a function of the workload-queue/bucket size ratio, on
// the paper's 40 MB / 10,000-object bucket.
//
//   Paper shapes to verify:
//   * break-even at a queue of ~3% of the bucket size;
//   * up to a ~20x gap at the extremes.
//
// Costs are the disk model's (the paper's empirically derived T_b and T_m,
// plus the calibrated per-probe cost); both joins also *execute* against a
// real bucket so the measured probe/candidate counts back the model.

#include <cmath>

#include "bench/bench_common.h"
#include "join/hybrid.h"
#include "join/indexed_join.h"
#include "join/merge_join.h"
#include "query/query.h"
#include "storage/btree.h"
#include "storage/partitioner.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Figure 2: non-indexed scan vs. spatial index by queue/bucket ratio");

  // One paper-sized bucket: 10,000 objects in a compact sky region.
  const size_t kBucketObjects = 10'000;
  Rng rng(2003);
  SkyPoint center{180.0, 0.0};
  std::vector<storage::CatalogObject> objects;
  objects.reserve(kBucketObjects);
  for (size_t i = 0; i < kBucketObjects; ++i) {
    objects.push_back(storage::MakeObject(
        i, workload::RandomPointInCap(&rng, center, 2.0), 18.0f, 0.5f));
  }
  std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);
  storage::Bucket bucket(0,
                         htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                                      htm::LevelMax(htm::kObjectLevel)},
                         objects);
  auto index = storage::BTreeIndex::BulkLoad(objects);
  if (!index.ok()) std::exit(1);

  storage::DiskModel model;
  const uint64_t bucket_bytes = kBucketObjects * storage::Bucket::kBytesPerObject;
  std::printf("bucket: %zu objects, %.0f MB, T_b = %.2f s, probe = %.2f ms\n",
              kBucketObjects, bucket_bytes / (1024.0 * 1024.0),
              model.SequentialReadMs(bucket_bytes) / 1000.0,
              model.params().index_probe_ms);

  Table table({"queue_ratio", "queue_objects", "scan_ms", "indexed_ms",
               "speedup_scan_over_index", "probes", "leaves"});
  double prev_speedup = 0.0;
  double break_even = 0.0;
  for (double ratio : {0.001, 0.002, 0.005, 0.01, 0.02, 0.03, 0.05, 0.1,
                       0.2, 0.5, 1.0}) {
    auto queue_objects =
        std::max<uint64_t>(1, static_cast<uint64_t>(ratio * kBucketObjects));
    // Build the workload entry: objects planted near catalog objects so
    // the joins do real match work.
    query::WorkloadEntry entry;
    entry.query_id = 1;
    for (uint64_t i = 0; i < queue_objects; ++i) {
      const auto& co = objects[rng.UniformU64(objects.size())];
      entry.objects.push_back(
          query::MakeQueryObject(i, SkyPoint{co.ra_deg, co.dec_deg}, 3.0));
    }
    const std::vector<query::WorkloadEntry> batch = {entry};

    join::MergeCrossMatch(bucket, batch, nullptr);
    auto indexed_counters =
        join::IndexedCrossMatch(*index, bucket.range(), batch, nullptr);

    double scan_ms = model.ScanJoinMs(bucket_bytes, queue_objects, false);
    double indexed_ms = model.IndexedJoinMs(queue_objects);
    double speedup = indexed_ms / scan_ms;
    if (prev_speedup < 1.0 && speedup >= 1.0) break_even = ratio;
    prev_speedup = speedup;

    table.AddRow({Table::Num(ratio, 3), std::to_string(queue_objects),
                  Table::Num(scan_ms, 1), Table::Num(indexed_ms, 1),
                  Table::Num(speedup, 2),
                  std::to_string(indexed_counters.probes),
                  std::to_string(indexed_counters.leaves_visited)});
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("fig2_hybrid_join.csv");

  double model_break_even = join::BreakEvenRatio(model, kBucketObjects);
  std::printf("observed break-even ratio: ~%.3f (paper: ~0.03)\n",
              break_even);
  std::printf("analytic break-even ratio: %.4f\n", model_break_even);
  std::printf("max speedup at ratio=1:    %.1fx (paper: up to ~20x)\n",
              model.IndexedJoinMs(kBucketObjects) /
                  model.ScanJoinMs(bucket_bytes, kBucketObjects, false));
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
