// Ablation: bucket size (objects per bucket).
//
// Equal-sized buckets are the paper's unit of I/O and scheduling. Small
// buckets mean fine-grained scheduling but poor seek amortization (seek
// cost dominates T_b); large buckets amortize seeks but make every batch
// coarser (more wasted bytes per sparse queue, fewer scheduling choices).
// The paper picks 10,000 objects / 40 MB as "sufficiently large to
// amortize disk seek times" (§3.1, after Gray et al.); this sweep shows
// the plateau that choice sits on.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Ablation: objects-per-bucket sweep");

  for (size_t per_bucket : {125, 250, 500, 1000, 2000, 4000, 8000, 16000}) {
    StandardConfig sc;
    sc.objects_per_bucket = per_bucket;
    Standard s = BuildStandard(sc);

    Rng rng(9401);
    auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);
    auto m = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, 0.25),
                       s.trace, arrivals);
    storage::DiskModel model(ScaledDiskParams());
    double tb =
        model.SequentialReadMs(per_bucket * storage::Bucket::kBytesPerObject);
    std::printf(
        "%5zu objects/bucket (%4zu buckets, T_b=%6.0f ms): "
        "throughput=%.3f q/s  avg_resp=%5.0f s  reads=%llu\n",
        per_bucket, s.catalog->num_buckets(), tb, m.throughput_qps,
        m.avg_response_ms / 1000.0,
        static_cast<unsigned long long>(m.store.bucket_reads));
  }
  std::printf(
      "\npaper choice: buckets 'sufficiently large (tens of megabytes or\n"
      "more) to amortize disk seek times' -- the scaled equivalent is\n"
      "1000 objects/bucket.\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
