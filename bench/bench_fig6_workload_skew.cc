// Reproduces Figure 6: cumulative workload (cross-match objects) by bucket.
//
//   Paper shapes to verify:
//   * a small head of buckets carries half the workload (the paper's 6 TB /
//     20,000-bucket archive: ~2%; on our 500-bucket scaled catalog a single
//     hotspot footprint spans ~5% of the buckets, so the achievable analog
//     is mid-single-digit percent — see EXPERIMENTS.md);
//   * a long tail of barely-touched buckets that is susceptible to
//     starvation under greedy scheduling.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Figure 6: cumulative workload by bucket");
  Standard s = BuildStandard();

  auto touches =
      workload::CharacterizeTrace(s.trace, s.catalog->bucket_map());
  uint64_t total = 0;
  for (const auto& t : touches) total += t.workload_objects;

  Table table({"bucket_rank_pct", "cumulative_workload_pct"});
  uint64_t acc = 0;
  size_t next_report = 0;
  const double checkpoints[] = {0.01, 0.02, 0.05, 0.1, 0.2,
                                0.3,  0.5,  0.7,  0.9, 1.0};
  size_t ci = 0;
  for (size_t i = 0; i < touches.size() && ci < std::size(checkpoints);
       ++i) {
    acc += touches[i].workload_objects;
    double rank_frac =
        static_cast<double>(i + 1) / s.catalog->num_buckets();
    while (ci < std::size(checkpoints) && rank_frac >= checkpoints[ci]) {
      table.AddRow({Table::Num(checkpoints[ci] * 100, 0),
                    Table::Num(100.0 * acc / total, 1)});
      ++ci;
    }
  }
  (void)next_report;
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("fig6_workload_skew.csv");

  for (double mass : {0.5, 0.8}) {
    double frac = workload::BucketFractionForMass(
        touches, s.catalog->num_buckets(), mass);
    std::printf("buckets holding %.0f%% of workload: %.1f%%%s\n",
                mass * 100, frac * 100,
                mass == 0.5 ? "  (paper: ~2% at 20k-bucket scale)" : "");
  }
  size_t untouched = s.catalog->num_buckets() - touches.size();
  std::printf("buckets never touched: %zu of %zu\n", untouched,
              s.catalog->num_buckets());
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
