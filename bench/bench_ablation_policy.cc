// Ablation: most-contentious-data-first vs least-sharable-data-first.
//
// §6 contrasts LifeRaft's policy with Agrawal et al.'s shared-scan policy
// for Map-Reduce (serve the *least* sharable work first, betting that
// contentious data accumulates more sharing if deferred). The paper argues
// least-sharable-first is wrong for scientific federations because
// workload queues (intermediate join results) are expensive to buffer:
// deferring the hot buckets inflates the pending-object footprint. This
// bench measures exactly that: throughput plus the peak number of buffered
// workload objects under each policy.

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Ablation: contention-first vs least-sharable-first vs RR");
  Standard s = BuildStandard();

  Rng rng(9311);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);

  struct Row {
    std::string label;
    sim::RunMetrics metrics;
  };
  std::vector<Row> rows;
  rows.push_back({"most-contentious (a=0)",
                  RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, 0.0),
                            s.trace, arrivals)});
  rows.push_back(
      {"least-sharable",
       RunShared(s.catalog.get(),
                 std::make_unique<sched::LeastSharableScheduler>(), s.trace,
                 arrivals)});
  rows.push_back(
      {"round-robin",
       RunShared(s.catalog.get(),
                 std::make_unique<sched::RoundRobinScheduler>(), s.trace,
                 arrivals)});

  Table table({"policy", "throughput_qps", "avg_resp_s",
               "peak_buffered_objects", "bucket_reads"});
  for (const Row& r : rows) {
    table.AddRow({r.label, Table::Num(r.metrics.throughput_qps, 3),
                  Table::Num(r.metrics.avg_response_ms / 1000.0, 0),
                  std::to_string(r.metrics.peak_pending_objects),
                  std::to_string(r.metrics.store.bucket_reads)});
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("ablation_policy.csv");
  std::printf(
      "expected: least-sharable-first buffers more pending objects (it\n"
      "defers exactly the buckets with the most queued work).\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
