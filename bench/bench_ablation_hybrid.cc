// Ablation: hybrid join threshold (paper §3.4).
//
// Sweeps the queue/bucket ratio below which the indexed join is chosen.
// 0 disables the index entirely (always scan); a huge threshold forces
// probes for everything (approaching the legacy index-only behaviour).
// Throughput should peak near the measured break-even (~3%), confirming
// the hybrid strategy's contribution; the age-based scheduler depends on
// it much more than the greedy one (Fig 8b's mechanism).

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Ablation: hybrid join threshold sweep");
  Standard s = BuildStandard();

  Rng rng(9209);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);

  Table table({"threshold", "a0_throughput", "a0_resp_s", "a1_throughput",
               "a1_resp_s", "a1_indexed_batches"});
  for (double threshold : {0.0, 0.01, 0.03, 0.1, 0.3, 10.0}) {
    sim::EngineConfig config = ScaledEngineConfig();
    config.hybrid.index_threshold = threshold;
    auto greedy = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, 0.0),
                            s.trace, arrivals, config);
    auto aged = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, 1.0),
                          s.trace, arrivals, config);
    std::string label = threshold >= 10.0 ? "always-index"
                        : threshold == 0.0 ? "always-scan"
                                           : Table::Num(threshold, 2);
    table.AddRow({label, Table::Num(greedy.throughput_qps, 3),
                  Table::Num(greedy.avg_response_ms / 1000.0, 0),
                  Table::Num(aged.throughput_qps, 3),
                  Table::Num(aged.avg_response_ms / 1000.0, 0),
                  std::to_string(aged.evaluator.indexed_batches)});
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("ablation_hybrid.csv");
  std::printf("paper threshold: 0.03 (the measured Fig 2 break-even).\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
