// Ablation: workload overflow (paper §6 future work, implemented here).
//
// The paper assumes workload queues fit in memory and leaves spilling to
// future work, while arguing that LifeRaft's most-contentious-first policy
// keeps buffering requirements low in the first place. This bench measures
// both halves: the cost of running under progressively tighter workload
// memory budgets (spill/restore I/O), and how the scheduling policy
// changes the amount of spilling a given budget causes.

#include <filesystem>

#include "bench/bench_common.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Ablation: workload-queue memory budget (overflow to disk)");
  Standard s = BuildStandard();

  Rng rng(9601);
  auto arrivals = *sim::PoissonArrivals(s.trace.size(), 0.5, &rng);
  std::string spill_path =
      (std::filesystem::temp_directory_path() /
       ("liferaft_bench_spill_" + std::to_string(::getpid())))
          .string();

  Table table({"budget_objects", "alpha", "throughput_qps", "avg_resp_s",
               "segments_spilled", "mb_spilled"});
  for (uint64_t budget : {0ull, 20'000ull, 5'000ull, 1'000ull}) {
    for (double alpha : {0.0, 1.0}) {
      sim::EngineConfig config = ScaledEngineConfig();
      if (budget > 0) {
        config.spill_path = spill_path;
        config.workload_memory_budget = budget;
      }
      auto m = RunShared(s.catalog.get(), MakeLifeRaft(*s.catalog, alpha),
                         s.trace, arrivals, config);
      table.AddRow({budget == 0 ? "unlimited" : std::to_string(budget),
                    Table::Num(alpha, 1), Table::Num(m.throughput_qps, 3),
                    Table::Num(m.avg_response_ms / 1000.0, 0),
                    std::to_string(m.spill.segments_spilled),
                    Table::Num(m.spill.bytes_spilled / (1024.0 * 1024.0),
                               1)});
    }
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("ablation_spill.csv");
  std::printf(
      "results are identical at every budget (spilling is transparent);\n"
      "only the restore I/O cost changes. The contention-first policy\n"
      "drains hot queues promptly and so spills less at the same budget\n"
      "(the paper's §6 buffering argument).\n");
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
