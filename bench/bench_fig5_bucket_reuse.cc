// Reproduces Figure 5: reuse of the top-ten buckets across the query trace.
//
//   Paper shapes to verify:
//   * the ten most-reused buckets are touched by ~61% of all queries;
//   * reuse is temporally clustered (queries touching the same bucket are
//     close in the trace), which is what makes caching effective.
//
// The paper plots a scatter of (query number, top-ten-bucket index); we
// print the same data as per-window touch counts for each of the top ten
// buckets, plus the aggregate statistics.

#include <map>

#include "bench/bench_common.h"
#include "query/preprocessor.h"

namespace liferaft::bench {
namespace {

void Run() {
  Banner("Figure 5: top ten buckets by reuse");
  Standard s = BuildStandard();

  auto touches =
      workload::CharacterizeTrace(s.trace, s.catalog->bucket_map());
  // Rank by queries touching.
  std::sort(touches.begin(), touches.end(),
            [](const workload::BucketTouch& a,
               const workload::BucketTouch& b) {
              return a.queries_touching > b.queries_touching;
            });
  std::vector<storage::BucketIndex> top;
  for (size_t i = 0; i < 10 && i < touches.size(); ++i) {
    top.push_back(touches[i].bucket);
  }

  // Windowed touch matrix: rows = trace windows, cols = top-ten buckets.
  const size_t kWindow = 200;
  std::vector<std::string> headers = {"queries"};
  for (size_t i = 0; i < top.size(); ++i) {
    std::string header = "B";
    header += std::to_string(i);
    headers.push_back(std::move(header));
  }
  Table table(headers);
  std::map<storage::BucketIndex, size_t> rank;
  for (size_t i = 0; i < top.size(); ++i) rank[top[i]] = i;

  std::vector<size_t> window_counts(top.size(), 0);
  size_t window_start = 0;
  for (size_t qi = 0; qi < s.trace.size(); ++qi) {
    auto workloads =
        query::SplitQueryByBucket(s.trace[qi], s.catalog->bucket_map());
    for (const auto& w : workloads) {
      auto it = rank.find(w.bucket);
      if (it != rank.end()) ++window_counts[it->second];
    }
    if ((qi + 1) % kWindow == 0 || qi + 1 == s.trace.size()) {
      std::vector<std::string> row = {std::to_string(window_start + 1) + "-" +
                                      std::to_string(qi + 1)};
      for (size_t c : window_counts) row.push_back(std::to_string(c));
      table.AddRow(row);
      window_counts.assign(top.size(), 0);
      window_start = qi + 1;
    }
  }
  std::printf("%s\n", table.ToText().c_str());
  (void)table.WriteCsv("fig5_bucket_reuse.csv");

  double frac = workload::TopKTouchFraction(s.trace,
                                            s.catalog->bucket_map(), 10);
  std::printf("queries touching a top-10 bucket: %.1f%% (paper: 61%%)\n",
              frac * 100.0);
}

}  // namespace
}  // namespace liferaft::bench

int main() {
  liferaft::bench::Run();
  return 0;
}
