// Tests for the real asynchronous I/O backend: the per-volume submission
// queues of storage/async_io.h (completion delivery, fault injection,
// checksum failures, leak-free shutdown with reads in flight) and the
// engine's measured execution mode (EngineConfig::io_mode == kReal),
// whose contract is: identical join results to the modeled oracle, with
// wall-clock timing and per-volume queue telemetry instead of DiskModel
// arithmetic — and zero change to modeled-mode output.

#include "storage/async_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sched/liferaft_scheduler.h"
#include "sim/engine.h"
#include "sim/run_metrics.h"
#include "storage/catalog.h"
#include "storage/file_store.h"
#include "storage/mem_store.h"
#include "storage/partitioner.h"
#include "storage/topology.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::storage {
namespace {

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("liferaft_async_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

std::unique_ptr<MemStore> MakeMemStore(size_t num_objects, uint64_t seed) {
  workload::CatalogGenConfig gen;
  gen.num_objects = num_objects;
  gen.seed = seed;
  auto objects = workload::GenerateCatalog(gen);
  EXPECT_TRUE(objects.ok());
  auto partition = PartitionCatalog(std::move(*objects), 1000);
  EXPECT_TRUE(partition.ok());
  return std::make_unique<MemStore>(std::move(*partition));
}

/// Fault-injection wrapper: delegates to an inner store but can delay,
/// fail, or corrupt individual buckets' async-path reads. Delays model a
/// slow arm (and force cross-volume completion reordering); failures and
/// corruption exercise the reader's error accounting.
class FaultInjectionStore : public BucketStore {
 public:
  explicit FaultInjectionStore(std::unique_ptr<MemStore> inner)
      : inner_(std::move(inner)) {}

  size_t num_buckets() const override { return inner_->num_buckets(); }
  const BucketMap& bucket_map() const override {
    return inner_->bucket_map();
  }
  size_t BucketObjectCount(BucketIndex index) const override {
    return inner_->BucketObjectCount(index);
  }
  Result<std::shared_ptr<const Bucket>> ReadBucket(
      BucketIndex index) override {
    return inner_->ReadBucket(index);
  }
  bool SupportsConcurrentReads() const override { return true; }
  Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetch(
      BucketIndex index) override {
    auto delay = delays_ms_.find(index);
    if (delay != delays_ms_.end()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(delay->second));
    }
    if (fail_.count(index) != 0) {
      return Status::Internal("injected I/O failure");
    }
    if (corrupt_.count(index) != 0) {
      return Status::Corruption("injected checksum mismatch");
    }
    return inner_->ReadBucketForPrefetch(index);
  }

  void DelayBucket(BucketIndex index, int ms) { delays_ms_[index] = ms; }
  void FailBucket(BucketIndex index) { fail_.insert(index); }
  void CorruptBucket(BucketIndex index) { corrupt_.insert(index); }

 private:
  std::unique_ptr<MemStore> inner_;
  std::map<BucketIndex, int> delays_ms_;
  std::set<BucketIndex> fail_;
  std::set<BucketIndex> corrupt_;
};

TEST(QueuedAsyncReaderTest, CompletesAllReadsAcrossVolumes) {
  auto store = MakeMemStore(6000, 101);
  const size_t buckets = store->num_buckets();
  StorageTopologyConfig config;
  config.num_volumes = 3;
  auto topology = StorageTopology::Create(buckets, config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  auto reader = store->NewAsyncReader(&*topology);

  std::map<BucketIndex, AsyncReadCompletion> done;
  for (BucketIndex b = 0; b < buckets; ++b) {
    const uint64_t ticket = reader->SubmitRead(
        b, [&done](const AsyncReadCompletion& c) { done[c.index] = c; });
    EXPECT_GT(ticket, 0u);
  }
  reader->Drain();
  EXPECT_EQ(reader->in_flight(), 0u);
  ASSERT_EQ(done.size(), buckets);
  for (BucketIndex b = 0; b < buckets; ++b) {
    const AsyncReadCompletion& c = done[b];
    ASSERT_TRUE(c.status.ok()) << c.status.ToString();
    ASSERT_NE(c.bucket, nullptr);
    EXPECT_EQ(c.bucket->size(), store->BucketObjectCount(b));
    EXPECT_EQ(c.volume, topology->VolumeOf(b));
    EXPECT_GT(c.bytes, 0u);
    EXPECT_GE(c.latency_ms, 0.0);
  }

  // Per-volume telemetry adds up to the submitted work.
  std::vector<AsyncVolumeStats> stats = reader->VolumeStats();
  ASSERT_EQ(stats.size(), 3u);
  uint64_t total_reads = 0;
  for (uint32_t v = 0; v < 3; ++v) {
    uint64_t expected = 0;
    for (BucketIndex b = 0; b < buckets; ++b) {
      if (topology->VolumeOf(b) == v) ++expected;
    }
    EXPECT_EQ(stats[v].reads, expected) << "volume " << v;
    EXPECT_EQ(stats[v].failures, 0u);
    EXPECT_LE(stats[v].p50_latency_ms, stats[v].p99_latency_ms + 1e-9);
    total_reads += stats[v].reads;
  }
  EXPECT_EQ(total_reads, buckets);
}

TEST(QueuedAsyncReaderTest, CallbacksRunOnTheOwnerThread) {
  auto store = MakeMemStore(3000, 103);
  auto reader = store->NewAsyncReader(nullptr);
  const std::thread::id owner = std::this_thread::get_id();
  size_t delivered = 0;
  for (BucketIndex b = 0; b < store->num_buckets(); ++b) {
    reader->SubmitRead(b, [&](const AsyncReadCompletion&) {
      EXPECT_EQ(std::this_thread::get_id(), owner);
      ++delivered;
    });
  }
  reader->Drain();
  EXPECT_EQ(delivered, store->num_buckets());
}

TEST(QueuedAsyncReaderTest, SlowVolumeReordersCompletionsAcrossArms) {
  // Volume 0's read sleeps; volume 1's does not. Submitting the slow read
  // first must not delay the fast arm: the fast completion arrives first.
  auto inner = MakeMemStore(4000, 107);
  FaultInjectionStore store(std::move(inner));
  StorageTopologyConfig config;
  config.num_volumes = 2;
  config.placement = VolumePlacement::kHash;  // bucket b -> volume b % 2
  auto topology =
      StorageTopology::Create(store.num_buckets(), config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  ASSERT_GE(store.num_buckets(), 2u);
  store.DelayBucket(0, 200);  // volume 0
  auto reader = store.NewAsyncReader(&*topology);

  std::vector<BucketIndex> order;
  reader->SubmitRead(0, [&](const AsyncReadCompletion& c) {
    ASSERT_TRUE(c.status.ok());
    order.push_back(c.index);
  });
  reader->SubmitRead(1, [&](const AsyncReadCompletion& c) {
    ASSERT_TRUE(c.status.ok());
    order.push_back(c.index);
  });
  reader->Drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u) << "fast arm should complete first";
  EXPECT_EQ(order[1], 0u);
}

TEST(QueuedAsyncReaderTest, InjectedFailuresAndCorruptionAreCounted) {
  auto inner = MakeMemStore(5000, 109);
  FaultInjectionStore store(std::move(inner));
  ASSERT_GE(store.num_buckets(), 3u);
  store.FailBucket(0);
  store.CorruptBucket(1);
  auto reader = store.NewAsyncReader(nullptr);

  std::map<BucketIndex, Status> statuses;
  for (BucketIndex b = 0; b < 3; ++b) {
    reader->SubmitRead(b, [&](const AsyncReadCompletion& c) {
      statuses[c.index] = c.status;
      if (!c.status.ok()) {
        EXPECT_EQ(c.bucket, nullptr);
      }
    });
  }
  reader->Drain();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0].code(), StatusCode::kInternal);
  EXPECT_EQ(statuses[1].code(), StatusCode::kCorruption);
  EXPECT_TRUE(statuses[2].ok());

  std::vector<AsyncVolumeStats> stats = reader->VolumeStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].reads, 3u);
  EXPECT_EQ(stats[0].failures, 2u);
  EXPECT_EQ(stats[0].checksum_failures, 1u);
}

TEST(QueuedAsyncReaderTest, ShutdownWithInFlightReadsLeaksNothing) {
  // Destroy the reader while reads are queued and mid-flight, callbacks
  // undelivered. The destructor must join workers and free everything —
  // the ASan job turns any leak or use-after-free here into a failure.
  auto inner = MakeMemStore(6000, 113);
  FaultInjectionStore store(std::move(inner));
  for (BucketIndex b = 0; b < store.num_buckets(); ++b) {
    store.DelayBucket(b, 20);
  }
  StorageTopologyConfig config;
  config.num_volumes = 2;
  auto topology =
      StorageTopology::Create(store.num_buckets(), config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  std::atomic<size_t> delivered{0};
  {
    auto reader = store.NewAsyncReader(&*topology);
    for (int round = 0; round < 4; ++round) {
      for (BucketIndex b = 0; b < store.num_buckets(); ++b) {
        reader->SubmitRead(
            b, [&delivered](const AsyncReadCompletion&) { ++delivered; });
      }
    }
    // No Poll/Wait/Drain: everything still queued or in flight dies with
    // the reader.
  }
  EXPECT_EQ(delivered.load(), 0u);
}

TEST(QueuedAsyncReaderTest, CallbackMaySubmitReentrantly) {
  auto store = MakeMemStore(3000, 127);
  ASSERT_GE(store->num_buckets(), 2u);
  auto reader = store->NewAsyncReader(nullptr);
  std::vector<BucketIndex> done;
  reader->SubmitRead(0, [&](const AsyncReadCompletion& c) {
    ASSERT_TRUE(c.status.ok());
    done.push_back(c.index);
    reader->SubmitRead(1, [&](const AsyncReadCompletion& c2) {
      ASSERT_TRUE(c2.status.ok());
      done.push_back(c2.index);
    });
  });
  reader->Drain();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 0u);
  EXPECT_EQ(done[1], 1u);
}

// ------------------------------------------- FileStore checksum path ----

TEST(FileStoreAsyncTest, FlippedPageByteSurfacesAsChecksumFailure) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 5000;
  gen.seed = 131;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  auto partition = PartitionCatalog(std::move(*objects), 1000);
  ASSERT_TRUE(partition.ok());
  const std::string path = TempPath("crc");
  ASSERT_TRUE(FileStore::Create(path, partition->buckets).ok());

  // Flip one byte in the middle of the file — inside some bucket's page
  // payload (pages dominate the file), far from header and footer.
  {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 4096);
    const std::streamoff target = size / 2;
    f.seekg(target);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(target);
    f.write(&byte, 1);
  }

  auto store = FileStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto reader = (*store)->NewAsyncReader(nullptr);
  size_t corrupt = 0;
  size_t clean = 0;
  for (BucketIndex b = 0; b < (*store)->num_buckets(); ++b) {
    reader->SubmitRead(b, [&](const AsyncReadCompletion& c) {
      if (c.status.ok()) {
        ++clean;
      } else {
        // A clean Status, not a crash: exactly the corruption code.
        EXPECT_EQ(c.status.code(), StatusCode::kCorruption)
            << c.status.ToString();
        ++corrupt;
      }
    });
  }
  reader->Drain();
  EXPECT_EQ(corrupt, 1u) << "one page carries the flipped byte";
  EXPECT_EQ(clean, (*store)->num_buckets() - 1);
  std::vector<AsyncVolumeStats> stats = reader->VolumeStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].checksum_failures, 1u);
  reader.reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace liferaft::storage

// ------------------------------------------- engine real-I/O mode ----

namespace liferaft::sim {
namespace {

class RealIoModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 20'000;
    gen.seed = 137;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    auto partition = storage::PartitionCatalog(std::move(*objects), 1000);
    ASSERT_TRUE(partition.ok());
    path_ = (std::filesystem::temp_directory_path() /
             ("liferaft_realio_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(storage::FileStore::Create(path_, partition->buckets).ok());
    auto store = storage::FileStore::Open(path_);
    ASSERT_TRUE(store.ok());
    auto catalog = storage::Catalog::FromStore(std::move(*store));
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);

    workload::TraceConfig tc;
    tc.num_queries = 16;
    tc.max_objects_per_query = 600;
    tc.match_radius_arcsec = 600.0;
    tc.seed = 139;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
    arrivals_.assign(trace_.size(), 0.0);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  EngineConfig BaseConfig(size_t num_volumes) {
    EngineConfig config;
    config.enable_prefetch = true;
    config.prefetch_depth = 2;
    config.collect_matches = true;
    config.topology.num_volumes = num_volumes;
    config.topology.placement = storage::VolumePlacement::kHash;
    return config;
  }

  Result<RunMetrics> Drain(const EngineConfig& config,
                           std::map<query::QueryId, uint64_t>* matches) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    SimEngine engine(catalog_.get(),
                     std::make_unique<sched::LifeRaftScheduler>(
                         catalog_->store(), storage::DiskModel{}, sc),
                     config);
    auto metrics = engine.Run(trace_, arrivals_);
    if (metrics.ok() && matches != nullptr) {
      matches->clear();
      for (const QueryOutcome& o : engine.outcomes()) {
        (*matches)[o.id] = o.matches;
      }
    }
    return metrics;
  }

  std::string path_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::vector<query::CrossMatchQuery> trace_;
  std::vector<TimeMs> arrivals_;
};

// The contract: real mode changes HOW time is measured, never WHAT is
// computed. Join results (per-query match counts) must be identical to
// the modeled oracle's; the telemetry switches to measured queue stats.
TEST_F(RealIoModeTest, RealModeMatchesModeledJoinResults) {
  std::map<query::QueryId, uint64_t> modeled_matches;
  EngineConfig modeled = BaseConfig(2);
  auto modeled_metrics = Drain(modeled, &modeled_matches);
  ASSERT_TRUE(modeled_metrics.ok()) << modeled_metrics.status().ToString();
  EXPECT_FALSE(modeled_metrics->real_io_enabled);

  std::map<query::QueryId, uint64_t> real_matches;
  EngineConfig real = BaseConfig(2);
  real.io_mode = IoMode::kReal;
  auto real_metrics = Drain(real, &real_matches);
  ASSERT_TRUE(real_metrics.ok()) << real_metrics.status().ToString();

  EXPECT_EQ(real_metrics->queries_completed, trace_.size());
  EXPECT_EQ(real_matches, modeled_matches);
  EXPECT_EQ(real_metrics->total_matches, modeled_metrics->total_matches);

  EXPECT_TRUE(real_metrics->real_io_enabled);
  ASSERT_EQ(real_metrics->real_io.size(), 2u);
  uint64_t reads = 0;
  for (const storage::AsyncVolumeStats& v : real_metrics->real_io) {
    reads += v.reads;
    EXPECT_EQ(v.checksum_failures, 0u);
  }
  EXPECT_GT(reads, 0u) << "the drain must have gone through the queues";
  EXPECT_GT(real_metrics->makespan_ms, 0.0);
}

TEST_F(RealIoModeTest, ModeledJsonCarriesNoRealIoSection) {
  std::map<query::QueryId, uint64_t> matches;
  auto modeled = Drain(BaseConfig(1), &matches);
  ASSERT_TRUE(modeled.ok());
  EXPECT_EQ(RunMetricsJson(*modeled).find("real_io"), std::string::npos);

  EngineConfig real = BaseConfig(1);
  real.io_mode = IoMode::kReal;
  auto measured = Drain(real, &matches);
  ASSERT_TRUE(measured.ok());
  EXPECT_NE(RunMetricsJson(*measured).find("real_io"), std::string::npos);
}

TEST_F(RealIoModeTest, RealModeRejectsPerQueryExecution) {
  EngineConfig config;
  config.mode = ExecutionMode::kNoShare;
  config.io_mode = IoMode::kReal;
  SimEngine engine(catalog_.get(), nullptr, config);
  auto metrics = engine.Run(trace_, arrivals_);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RealIoModeTest, ServeRejectsRealMode) {
  EngineConfig config = BaseConfig(1);
  config.io_mode = IoMode::kReal;
  sched::LifeRaftConfig sc;
  SimEngine engine(catalog_.get(),
                   std::make_unique<sched::LifeRaftScheduler>(
                       catalog_->store(), storage::DiskModel{}, sc),
                   config);
  // Rejected before arrivals are even built, so the default spec is fine.
  ServeConfig serve;
  auto metrics = engine.Serve(trace_, serve);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RealIoModeTest, AdaptiveRealModeCompletesWithFaultFreeQueues) {
  // Adaptive depth + cancel-on-mispredict over real queues: stale bets are
  // dropped (late completions discarded by ticket), everything drains.
  EngineConfig config = BaseConfig(2);
  config.enable_prefetch = false;
  config.adaptive_prefetch = true;
  config.max_prefetch_depth = 3;
  config.io_mode = IoMode::kReal;
  std::map<query::QueryId, uint64_t> matches;
  auto metrics = Drain(config, &matches);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->queries_completed, trace_.size());

  std::map<query::QueryId, uint64_t> modeled_matches;
  EngineConfig modeled = config;
  modeled.io_mode = IoMode::kModeled;
  auto modeled_metrics = Drain(modeled, &modeled_matches);
  ASSERT_TRUE(modeled_metrics.ok());
  EXPECT_EQ(matches, modeled_matches);
}

}  // namespace
}  // namespace liferaft::sim
