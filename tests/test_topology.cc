// Tests for the multi-volume storage topology: the bucket->volume map
// itself (storage::StorageTopology), the per-arm accounting it drives
// through exec::BatchPipeline and sim::SimEngine, FileStore's per-volume
// I/O routing, and the I/O-arena satellites (spill restore buffers and
// NoShare read scratch). The key contracts:
//  * num_volumes == 1 reproduces the pre-topology engine byte for byte
//    (same makespan, hidden time, and every cache/store counter);
//  * adding arms strictly shrinks a prefetch drain's virtual makespan
//    while join results and total modeled disk work stay identical;
//  * join results are byte-identical across placement policies — where a
//    bucket lives can only change timing, never matching;
//  * I/O arenas are pure allocation plumbing: on or off, every result and
//    counter is identical.

#include "storage/topology.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "join/evaluator.h"
#include "query/preprocessor.h"
#include "sched/liferaft_scheduler.h"
#include "sim/engine.h"
#include "storage/bucket_cache.h"
#include "storage/catalog.h"
#include "storage/file_store.h"
#include "storage/mem_store.h"
#include "storage/partitioner.h"
#include "util/thread_pool.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::storage {
namespace {

TEST(StorageTopologyTest, SingleVolumeMapsEverythingToVolumeZero) {
  for (VolumePlacement placement :
       {VolumePlacement::kRange, VolumePlacement::kHash}) {
    StorageTopologyConfig config;
    config.num_volumes = 1;
    config.placement = placement;
    auto topology = StorageTopology::Create(17, config, DiskModelParams{});
    ASSERT_TRUE(topology.ok());
    EXPECT_EQ(topology->num_volumes(), 1u);
    EXPECT_TRUE(topology->uniform());
    for (BucketIndex b = 0; b < 17; ++b) {
      EXPECT_EQ(topology->VolumeOf(b), 0u);
    }
  }
}

TEST(StorageTopologyTest, RangePlacementSplitsContiguouslyWithRemainder) {
  StorageTopologyConfig config;
  config.num_volumes = 3;
  config.placement = VolumePlacement::kRange;
  // 8 buckets over 3 volumes: 3 + 3 + 2 (remainder on the low volumes).
  auto topology = StorageTopology::Create(8, config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  std::vector<VolumeIndex> expected = {0, 0, 0, 1, 1, 1, 2, 2};
  for (BucketIndex b = 0; b < 8; ++b) {
    EXPECT_EQ(topology->VolumeOf(b), expected[b]) << "bucket " << b;
  }
}

TEST(StorageTopologyTest, HashPlacementStripes) {
  StorageTopologyConfig config;
  config.num_volumes = 3;
  config.placement = VolumePlacement::kHash;
  auto topology = StorageTopology::Create(8, config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  for (BucketIndex b = 0; b < 8; ++b) {
    EXPECT_EQ(topology->VolumeOf(b), b % 3) << "bucket " << b;
  }
}

TEST(StorageTopologyTest, ClampsVolumesToBucketCount) {
  StorageTopologyConfig config;
  config.num_volumes = 16;
  auto topology = StorageTopology::Create(5, config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  EXPECT_EQ(topology->num_volumes(), 5u);
  // ... but never by silently dropping explicit per-volume params.
  config.volume_disk.assign(16, DiskModelParams{});
  EXPECT_FALSE(StorageTopology::Create(5, config, DiskModelParams{}).ok());
}

TEST(StorageTopologyTest, Validation) {
  StorageTopologyConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_volumes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = StorageTopologyConfig{};
  config.num_volumes = 2;
  config.volume_disk.assign(3, DiskModelParams{});  // size mismatch
  EXPECT_FALSE(config.Validate().ok());
  config.volume_disk.assign(2, DiskModelParams{});
  config.volume_disk[1].transfer_mb_per_s = 0.0;  // invalid params
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_FALSE(
      StorageTopology::Create(0, StorageTopologyConfig{}, DiskModelParams{})
          .ok());
}

TEST(StorageTopologyTest, PerVolumeModelsAndUniformFlag) {
  StorageTopologyConfig config;
  config.num_volumes = 2;
  config.volume_disk.assign(2, DiskModelParams{});
  config.volume_disk[1].transfer_mb_per_s /= 2.0;  // volume 1 half speed
  auto topology = StorageTopology::Create(4, config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  EXPECT_FALSE(topology->uniform());
  const uint64_t bytes = 4 << 20;
  EXPECT_GT(topology->model(1).SequentialReadMs(bytes),
            topology->model(0).SequentialReadMs(bytes));
  // Range placement over 4 buckets: 0,1 -> volume 0; 2,3 -> volume 1.
  EXPECT_DOUBLE_EQ(topology->ModelFor(0).SequentialReadMs(bytes),
                   topology->model(0).SequentialReadMs(bytes));
  EXPECT_DOUBLE_EQ(topology->ModelFor(3).SequentialReadMs(bytes),
                   topology->model(1).SequentialReadMs(bytes));
}

TEST(StorageTopologyTest, SpillArmIsNotABucketVolume) {
  StorageTopologyConfig config;
  config.num_volumes = 3;
  config.spill_arm = true;
  auto topology = StorageTopology::Create(9, config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  EXPECT_TRUE(topology->has_spill_arm());
  // The spill arm sits one past the bucket volumes and owns no buckets.
  EXPECT_EQ(topology->num_volumes(), 3u);
  EXPECT_EQ(topology->spill_volume(), 3u);
  for (BucketIndex b = 0; b < 9; ++b) {
    EXPECT_LT(topology->VolumeOf(b), 3u);
  }
  config.spill_arm = false;
  auto plain = StorageTopology::Create(9, config, DiskModelParams{});
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_spill_arm());
}

// Volume-aligned sharding maps every bucket into [0, num_volumes), so a
// shard count beyond the volume count would strand capacity on shards no
// bucket can reach — the constructor must clamp it.
TEST(StorageTopologyTest, CacheShardCountClampsToVolumes) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 4000;
  gen.seed = 19;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  auto partition = PartitionCatalog(std::move(*objects), 1000);
  ASSERT_TRUE(partition.ok());
  MemStore store(std::move(*partition));
  StorageTopologyConfig config;
  config.num_volumes = 2;
  auto topology =
      StorageTopology::Create(store.num_buckets(), config, DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  BucketCache cache(&store, 16, /*num_shards=*/8, &*topology);
  EXPECT_EQ(cache.num_shards(), 2u);
  EXPECT_EQ(cache.capacity(), 16u);
}

// ------------------------------------------------ FileStore routing ----

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("liferaft_topology_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

class FileStoreTopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 6000;
    gen.seed = 911;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    auto partition = PartitionCatalog(std::move(*objects), 1000);
    ASSERT_TRUE(partition.ok());
    path_ = TempPath("filestore");
    ASSERT_TRUE(FileStore::Create(path_, partition->buckets).ok());
    auto store = FileStore::Open(path_);
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::unique_ptr<FileStore> store_;
};

TEST_F(FileStoreTopologyTest, AttachedTopologyReadsIdenticalBuckets) {
  // Baseline: every bucket through the single shared handle.
  std::vector<std::shared_ptr<const Bucket>> baseline;
  for (BucketIndex b = 0; b < store_->num_buckets(); ++b) {
    auto bucket = store_->ReadBucket(b);
    ASSERT_TRUE(bucket.ok());
    baseline.push_back(std::move(*bucket));
  }
  StorageTopologyConfig config;
  config.num_volumes = 3;
  auto topology =
      StorageTopology::Create(store_->num_buckets(), config,
                              DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(store_->AttachTopology(&*topology).ok());
  for (BucketIndex b = 0; b < store_->num_buckets(); ++b) {
    auto bucket = store_->ReadBucket(b);
    ASSERT_TRUE(bucket.ok());
    ASSERT_EQ((*bucket)->size(), baseline[b]->size());
    for (size_t i = 0; i < (*bucket)->size(); ++i) {
      EXPECT_EQ((*bucket)->objects()[i].object_id,
                baseline[b]->objects()[i].object_id);
    }
  }
  // Detaching restores the single-lane store.
  ASSERT_TRUE(store_->AttachTopology(nullptr).ok());
  auto again = store_->ReadBucket(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->size(), baseline[0]->size());
}

TEST_F(FileStoreTopologyTest, ConcurrentPerVolumeReadsAreConsistent) {
  StorageTopologyConfig config;
  config.num_volumes = 3;
  auto topology = StorageTopology::Create(store_->num_buckets(), config,
                                          DiskModelParams{});
  ASSERT_TRUE(topology.ok());
  ASSERT_TRUE(store_->AttachTopology(&*topology).ok());
  util::ThreadPool pool(4);
  std::vector<std::future<uint64_t>> futures;
  for (size_t t = 0; t < 4; ++t) {
    futures.push_back(pool.Submit([this, t] {
      uint64_t objects = 0;
      for (int round = 0; round < 8; ++round) {
        for (BucketIndex b = 0; b < store_->num_buckets(); ++b) {
          auto bucket = store_->ReadBucketForPrefetch(
              (b + static_cast<BucketIndex>(t)) %
              static_cast<BucketIndex>(store_->num_buckets()));
          if (bucket.ok()) objects += (*bucket)->size();
        }
      }
      return objects;
    }));
  }
  uint64_t total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 4u * 8u * 6000u);
}

TEST_F(FileStoreTopologyTest, ScratchArenaReadsAreByteIdentical) {
  util::Arena arena;
  for (BucketIndex b = 0; b < store_->num_buckets(); ++b) {
    auto heap = store_->ReadBucketForPrefetch(b);
    auto scratch = store_->ReadBucketForPrefetchScratch(b, &arena);
    ASSERT_TRUE(heap.ok());
    ASSERT_TRUE(scratch.ok());
    ASSERT_EQ((*heap)->size(), (*scratch)->size());
    for (size_t i = 0; i < (*heap)->size(); ++i) {
      EXPECT_EQ((*heap)->objects()[i].object_id,
                (*scratch)->objects()[i].object_id);
      EXPECT_EQ((*heap)->objects()[i].htm_id, (*scratch)->objects()[i].htm_id);
    }
  }
  EXPECT_GT(arena.total_allocated_bytes(), 0u)
      << "scratch reads never touched the arena";
}

}  // namespace
}  // namespace liferaft::storage

// ---------------------------------------------- engine-level topology --

namespace liferaft::sim {
namespace {

class MultiVolumeDrainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 30'000;
    gen.seed = 43;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;  // 30 buckets
    auto catalog = storage::Catalog::Build(std::move(*objects), options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);

    workload::TraceConfig tc;
    tc.num_queries = 24;
    tc.max_objects_per_query = 800;
    tc.match_radius_arcsec = 600.0;
    tc.seed = 47;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
    arrivals_.assign(trace_.size(), 0.0);  // saturated drain
  }

  RunMetrics Drain(const EngineConfig& config,
                   std::map<query::QueryId, uint64_t>* matches = nullptr) {
    sched::LifeRaftConfig sc;
    sc.alpha = 0.25;
    SimEngine engine(catalog_.get(),
                     std::make_unique<sched::LifeRaftScheduler>(
                         catalog_->store(), storage::DiskModel{}, sc),
                     config);
    auto metrics = engine.Run(trace_, arrivals_);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    if (matches != nullptr) {
      matches->clear();
      for (const QueryOutcome& o : engine.outcomes()) {
        (*matches)[o.id] = o.matches;
      }
    }
    return metrics.ok() ? *metrics : RunMetrics{};
  }

  EngineConfig PrefetchConfig(size_t num_volumes,
                              storage::VolumePlacement placement =
                                  storage::VolumePlacement::kRange) {
    EngineConfig config;
    config.enable_prefetch = true;
    config.prefetch_depth = 2;
    config.collect_matches = true;
    config.topology.num_volumes = num_volumes;
    config.topology.placement = placement;
    return config;
  }

  std::unique_ptr<storage::Catalog> catalog_;
  std::vector<query::CrossMatchQuery> trace_;
  std::vector<TimeMs> arrivals_;
};

// An explicit single-volume topology — either placement — is the
// pre-topology engine: every modeled time and every counter identical.
TEST_F(MultiVolumeDrainFixture, SingleVolumeReproducesDefaultByteForByte) {
  std::map<query::QueryId, uint64_t> base_matches;
  RunMetrics base = Drain(PrefetchConfig(1), &base_matches);
  ASSERT_EQ(base.queries_completed, trace_.size());
  ASSERT_EQ(base.volumes.size(), 1u);

  for (storage::VolumePlacement placement :
       {storage::VolumePlacement::kRange, storage::VolumePlacement::kHash}) {
    std::map<query::QueryId, uint64_t> matches;
    RunMetrics m = Drain(PrefetchConfig(1, placement), &matches);
    EXPECT_EQ(m.makespan_ms, base.makespan_ms);
    EXPECT_EQ(m.prefetch_hidden_ms, base.prefetch_hidden_ms);
    EXPECT_EQ(m.cache.hits, base.cache.hits);
    EXPECT_EQ(m.cache.misses, base.cache.misses);
    EXPECT_EQ(m.cache.prefetch_issued, base.cache.prefetch_issued);
    EXPECT_EQ(m.cache.prefetch_claims, base.cache.prefetch_claims);
    EXPECT_EQ(m.store.bucket_reads, base.store.bucket_reads);
    EXPECT_EQ(m.store.bytes_read, base.store.bytes_read);
    EXPECT_EQ(matches, base_matches);
  }
}

// The tentpole acceptance: more arms strictly shrink the prefetch drain's
// virtual makespan — overlapped fetches, not dropped work: join results
// and the total modeled disk-busy time are unchanged.
TEST_F(MultiVolumeDrainFixture, MakespanStrictlyImprovesWithMoreArms) {
  std::map<query::QueryId, uint64_t> matches1, matches2, matches4;
  RunMetrics one = Drain(PrefetchConfig(1), &matches1);
  RunMetrics two = Drain(PrefetchConfig(2), &matches2);
  RunMetrics four = Drain(PrefetchConfig(4), &matches4);

  EXPECT_LT(two.makespan_ms, one.makespan_ms);
  EXPECT_LT(four.makespan_ms, two.makespan_ms);
  EXPECT_GT(two.prefetch_hidden_ms, one.prefetch_hidden_ms);
  EXPECT_GT(four.prefetch_hidden_ms, two.prefetch_hidden_ms);
  EXPECT_EQ(matches2, matches1);
  EXPECT_EQ(matches4, matches1);

  auto total_busy = [](const RunMetrics& m) {
    TimeMs busy = 0.0;
    for (const storage::VolumeIoStats& v : m.volumes) busy += v.busy_ms;
    return busy;
  };
  // Same physical work, spread over more arms (FP sum order may differ
  // across volume counts, so compare to a tolerance of a few ULPs' worth).
  EXPECT_NEAR(total_busy(two), total_busy(one), 1e-6);
  EXPECT_NEAR(total_busy(four), total_busy(one), 1e-6);
}

// Placement decides where a bucket lives — which can only change timing,
// never matching. Same logical workload => byte-identical join results.
TEST_F(MultiVolumeDrainFixture, ResultsByteIdenticalAcrossPlacements) {
  std::map<query::QueryId, uint64_t> range_matches, hash_matches;
  RunMetrics range = Drain(
      PrefetchConfig(4, storage::VolumePlacement::kRange), &range_matches);
  RunMetrics hash = Drain(
      PrefetchConfig(4, storage::VolumePlacement::kHash), &hash_matches);
  EXPECT_EQ(range.queries_completed, hash.queries_completed);
  EXPECT_EQ(range.total_matches, hash.total_matches);
  EXPECT_EQ(range_matches, hash_matches);
  // Both placements read every byte they serve exactly once per miss.
  EXPECT_EQ(range.store.bucket_reads, hash.store.bucket_reads);
}

// Per-arm telemetry reconciles with the global ledgers.
TEST_F(MultiVolumeDrainFixture, PerVolumeTelemetryReconciles) {
  RunMetrics m = Drain(PrefetchConfig(4));
  ASSERT_EQ(m.volumes.size(), 4u);
  uint64_t issued = 0;
  uint64_t claims = 0;
  TimeMs hidden = 0.0;
  for (const storage::VolumeIoStats& v : m.volumes) {
    issued += v.prefetch_issued;
    claims += v.prefetch_claims;
    hidden += v.hidden_ms;
    EXPECT_LE(v.consumed_until_ms, m.makespan_ms);
    EXPECT_GE(v.busy_until_ms, v.consumed_until_ms);
  }
  EXPECT_EQ(issued, m.cache.prefetch_issued);
  EXPECT_EQ(claims, m.cache.prefetch_claims);
  EXPECT_NEAR(hidden, m.prefetch_hidden_ms, 1e-9);
  // A saturated 4-arm drain keeps every arm busy.
  for (const storage::VolumeIoStats& v : m.volumes) {
    EXPECT_GT(v.busy_ms, 0.0);
  }
}

// Heterogeneous per-volume disk parameters: slowing one arm down slows
// every batch served from it. The factor is drastic (32x) because a
// mildly slower arm can still hide its few fetches entirely behind
// compute — the point of the pipeline — leaving the makespan untouched;
// past the hiding capacity the residuals must surface end to end.
TEST_F(MultiVolumeDrainFixture, SlowVolumeRaisesMakespan) {
  RunMetrics uniform = Drain(PrefetchConfig(4));
  EngineConfig slow = PrefetchConfig(4);
  slow.topology.volume_disk.assign(4, storage::DiskModelParams{});
  slow.topology.volume_disk[0].transfer_mb_per_s /= 32.0;
  std::map<query::QueryId, uint64_t> slow_matches, uniform_matches;
  RunMetrics degraded = Drain(slow, &slow_matches);
  RunMetrics base = Drain(PrefetchConfig(4), &uniform_matches);
  EXPECT_GT(degraded.makespan_ms, uniform.makespan_ms);
  EXPECT_EQ(slow_matches, uniform_matches) << "cost model must not change "
                                              "matching";
}

// Per-arm adaptive controllers stay deterministic.
TEST_F(MultiVolumeDrainFixture, AdaptiveMultiVolumeIsDeterministic) {
  EngineConfig config = PrefetchConfig(2);
  config.enable_prefetch = false;
  config.adaptive_prefetch = true;
  config.max_prefetch_depth = 4;
  RunMetrics a = Drain(config);
  RunMetrics b = Drain(config);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.prefetch_hidden_ms, b.prefetch_hidden_ms);
  EXPECT_EQ(a.cache.prefetch_issued, b.cache.prefetch_issued);
  EXPECT_EQ(a.cache.prefetch_cancels, b.cache.prefetch_cancels);
  ASSERT_EQ(a.volumes.size(), 2u);
  for (size_t v = 0; v < 2; ++v) {
    EXPECT_EQ(a.volumes[v].prefetch_issued, b.volumes[v].prefetch_issued);
    EXPECT_EQ(a.volumes[v].busy_ms, b.volumes[v].busy_ms);
  }
}

// Volume-aligned cache sharding composes with the topology and keeps
// results identical to the by-bucket shard map (eviction domains differ,
// matching cannot).
TEST_F(MultiVolumeDrainFixture, VolumeAlignedCacheShardsKeepResults) {
  std::map<query::QueryId, uint64_t> base_matches, sharded_matches;
  Drain(PrefetchConfig(4), &base_matches);
  EngineConfig sharded = PrefetchConfig(4);
  sharded.cache_shards = 4;
  Drain(sharded, &sharded_matches);
  EXPECT_EQ(sharded_matches, base_matches);
}

// I/O arenas are allocation plumbing only: a spilling drain restores the
// same entries and reads the same bytes with the restore arena on or off.
TEST_F(MultiVolumeDrainFixture, RestoreArenaOnOffIsByteIdentical) {
  auto spill_config = [&](bool io_arenas) {
    EngineConfig config = PrefetchConfig(2);
    config.io_arenas = io_arenas;
    config.spill_path =
        (std::filesystem::temp_directory_path() /
         ("liferaft_topology_spill_" + std::to_string(::getpid()) +
          (io_arenas ? "_on" : "_off")))
            .string();
    config.workload_memory_budget = 2000;  // force spilling
    return config;
  };
  std::map<query::QueryId, uint64_t> on_matches, off_matches;
  RunMetrics on = Drain(spill_config(true), &on_matches);
  RunMetrics off = Drain(spill_config(false), &off_matches);
  ASSERT_GT(on.spill.segments_restored, 0u) << "budget never triggered";
  EXPECT_EQ(on.spill.segments_spilled, off.spill.segments_spilled);
  EXPECT_EQ(on.spill.bytes_restored, off.spill.bytes_restored);
  EXPECT_EQ(on.makespan_ms, off.makespan_ms);
  EXPECT_EQ(on.store.bucket_reads, off.store.bucket_reads);
  EXPECT_EQ(on_matches, off_matches);
}

// ------------------------------------------------ spill-arm satellite --

// A dedicated spill arm with spilling disabled is pure configuration: no
// restore ever runs, so every modeled time and counter must reproduce the
// plain topology byte for byte — the only visible difference is the
// spill arm's empty telemetry row.
TEST_F(MultiVolumeDrainFixture, SpillArmWithoutSpillIsByteIdentical) {
  std::map<query::QueryId, uint64_t> base_matches, arm_matches;
  RunMetrics base = Drain(PrefetchConfig(2), &base_matches);
  EngineConfig with_arm = PrefetchConfig(2);
  with_arm.topology.spill_arm = true;
  RunMetrics m = Drain(with_arm, &arm_matches);

  EXPECT_EQ(m.makespan_ms, base.makespan_ms);
  EXPECT_EQ(m.prefetch_hidden_ms, base.prefetch_hidden_ms);
  EXPECT_EQ(m.cache.hits, base.cache.hits);
  EXPECT_EQ(m.cache.misses, base.cache.misses);
  EXPECT_EQ(m.cache.prefetch_issued, base.cache.prefetch_issued);
  EXPECT_EQ(m.store.bucket_reads, base.store.bucket_reads);
  EXPECT_EQ(arm_matches, base_matches);
  ASSERT_EQ(base.volumes.size(), 2u);
  ASSERT_EQ(m.volumes.size(), 3u);
  for (size_t v = 0; v < 2; ++v) {
    EXPECT_EQ(m.volumes[v].busy_ms, base.volumes[v].busy_ms);
    EXPECT_EQ(m.volumes[v].foreground_reads, base.volumes[v].foreground_reads);
    EXPECT_EQ(m.volumes[v].prefetch_issued, base.volumes[v].prefetch_issued);
  }
  EXPECT_EQ(m.volumes[2].busy_ms, 0.0);
  EXPECT_EQ(m.volumes[2].foreground_reads, 0u);
  EXPECT_EQ(m.volumes[2].foreground_bytes, 0u);
}

// With prefetching off, the spill arm is pure accounting: restores cost
// the same foreground time (the join still waits for its objects), so the
// run is identical — the restore busy time just moves from the bucket arm
// onto the spill arm's row.
TEST_F(MultiVolumeDrainFixture, SpillArmMovesRestoreBusyTimeOffBucketArm) {
  auto spill_config = [&](bool spill_arm) {
    EngineConfig config;  // no prefetch: scheduling independent of arms
    config.collect_matches = true;
    config.topology.spill_arm = spill_arm;
    config.spill_path =
        (std::filesystem::temp_directory_path() /
         ("liferaft_spill_arm_" + std::to_string(::getpid()) +
          (spill_arm ? "_on" : "_off")))
            .string();
    config.workload_memory_budget = 2000;  // force spilling
    return config;
  };
  std::map<query::QueryId, uint64_t> on_matches, off_matches;
  RunMetrics on = Drain(spill_config(true), &on_matches);
  RunMetrics off = Drain(spill_config(false), &off_matches);

  ASSERT_GT(on.spill.segments_restored, 0u) << "budget never triggered";
  EXPECT_EQ(on.spill.bytes_restored, off.spill.bytes_restored);
  EXPECT_EQ(on.makespan_ms, off.makespan_ms);
  EXPECT_EQ(on.store.bucket_reads, off.store.bucket_reads);
  EXPECT_EQ(on_matches, off_matches);
  ASSERT_EQ(off.volumes.size(), 1u);
  ASSERT_EQ(on.volumes.size(), 2u);
  // The restore I/O moved arm: bucket arm plus spill arm add back up to
  // the single-arm busy total (separate accumulators, so allow FP slack).
  EXPECT_GT(on.volumes[1].busy_ms, 0.0);
  EXPECT_LT(on.volumes[0].busy_ms, off.volumes[0].busy_ms);
  EXPECT_NEAR(on.volumes[0].busy_ms + on.volumes[1].busy_ms,
              off.volumes[0].busy_ms, 1e-6);
  EXPECT_EQ(on.volumes[1].foreground_bytes, on.spill.bytes_restored);
  EXPECT_EQ(on.volumes[0].foreground_reads, off.volumes[0].foreground_reads);
}

// With prefetching on, the spill arm changes the modeled timeline — bets
// no longer slip by restore I/O — but never the matching, and the run
// stays deterministic.
TEST_F(MultiVolumeDrainFixture, SpillArmWithPrefetchKeepsResultsDeterministic) {
  auto spill_config = [&](bool spill_arm, const char* tag) {
    EngineConfig config = PrefetchConfig(2);
    config.topology.spill_arm = spill_arm;
    config.spill_path =
        (std::filesystem::temp_directory_path() /
         ("liferaft_spill_arm_pf_" + std::to_string(::getpid()) + tag))
            .string();
    config.workload_memory_budget = 2000;
    return config;
  };
  std::map<query::QueryId, uint64_t> on_matches, off_matches, again_matches;
  RunMetrics on = Drain(spill_config(true, "_on"), &on_matches);
  RunMetrics off = Drain(spill_config(false, "_off"), &off_matches);
  RunMetrics again = Drain(spill_config(true, "_again"), &again_matches);

  ASSERT_GT(on.spill.segments_restored, 0u) << "budget never triggered";
  EXPECT_EQ(on_matches, off_matches);
  EXPECT_EQ(on.total_matches, off.total_matches);
  // Deterministic replay with the arm on.
  EXPECT_EQ(on.makespan_ms, again.makespan_ms);
  EXPECT_EQ(on.prefetch_hidden_ms, again.prefetch_hidden_ms);
  EXPECT_EQ(on_matches, again_matches);
  // Freeing the bucket arm from restore I/O can only help the drain.
  EXPECT_LE(on.makespan_ms, off.makespan_ms);
}

}  // namespace
}  // namespace liferaft::sim

// -------------------------------------- NoShare read-scratch satellite --

namespace liferaft::join {
namespace {

// The parallel NoShare fan-out reads buckets store-direct on workers; with
// io arenas the page decode buffers come from the executing worker's
// arena. Results must be byte-identical to the arena-off and serial paths
// (FileStore exercises the scratch buffer for real).
TEST(NoShareIoArenaTest, WorkerReadsByteIdenticalOnOff) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 8000;
  gen.seed = 977;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  auto partition = storage::PartitionCatalog(std::move(*objects), 1000);
  ASSERT_TRUE(partition.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("liferaft_noshare_arena_" + std::to_string(::getpid())))
          .string();
  ASSERT_TRUE(storage::FileStore::Create(path, partition->buckets).ok());
  auto store = storage::FileStore::Open(path);
  ASSERT_TRUE(store.ok());
  const storage::BucketMap& map = (*store)->bucket_map();

  workload::TraceConfig tc;
  tc.num_queries = 12;
  tc.max_objects_per_query = 300;
  tc.match_radius_arcsec = 600.0;
  tc.seed = 983;
  auto trace = workload::GenerateTrace(tc);
  ASSERT_TRUE(trace.ok());
  std::vector<std::vector<query::BucketWorkload>> workloads;
  std::vector<PerQueryWork> window;
  for (const query::CrossMatchQuery& q : *trace) {
    workloads.push_back(query::SplitQueryByBucket(q, map));
  }
  for (size_t i = 0; i < trace->size(); ++i) {
    window.push_back(PerQueryWork{(*trace)[i].id, 0.0, (*trace)[i].predicate,
                                  &workloads[i]});
  }

  auto evaluate = [&](util::ThreadPool* pool, bool io_arenas) {
    storage::BucketCache cache(store->get(), 4);
    JoinEvaluator evaluator(&cache, /*index=*/nullptr, storage::DiskModel{},
                            HybridConfig{});
    evaluator.set_thread_pool(pool);
    evaluator.set_use_io_arenas(io_arenas);
    auto results = evaluator.EvaluatePerQueryWindow(
        PerQueryMode::kNoShareScan, window, /*collect_matches=*/true);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    return results.ok() ? *results : std::vector<PerQueryResult>{};
  };

  std::vector<PerQueryResult> serial = evaluate(nullptr, true);
  util::ThreadPool pool(4);
  std::vector<PerQueryResult> arena_on = evaluate(&pool, true);
  std::vector<PerQueryResult> arena_off = evaluate(&pool, false);
  ASSERT_EQ(serial.size(), window.size());
  ASSERT_EQ(arena_on.size(), window.size());
  ASSERT_EQ(arena_off.size(), window.size());
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(arena_on[i].matches, serial[i].matches) << "query " << i;
    EXPECT_EQ(arena_off[i].matches, serial[i].matches) << "query " << i;
    EXPECT_EQ(arena_on[i].cost_ms, serial[i].cost_ms) << "query " << i;
    EXPECT_EQ(arena_off[i].cost_ms, serial[i].cost_ms) << "query " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace liferaft::join
