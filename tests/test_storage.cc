// Tests for the storage substrate: objects, buckets, the equal-count
// partitioner, disk cost model, mem/file stores (round trip + corruption
// detection), the B+tree index, and the LRU bucket cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <vector>

#include "storage/btree.h"
#include "storage/bucket_cache.h"
#include "storage/catalog.h"
#include "storage/columnar.h"
#include "storage/disk_model.h"
#include "htm/trixel.h"
#include "storage/file_store.h"
#include "storage/mem_store.h"
#include "storage/partitioner.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace liferaft::storage {
namespace {

// Generates n objects scattered uniformly over the sky, ids 0..n-1.
std::vector<CatalogObject> RandomObjects(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<CatalogObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SkyPoint p{rng.UniformDouble(0, 360),
               std::asin(rng.UniformDouble(-1, 1)) * kRadToDeg};
    objects.push_back(MakeObject(i, p, 15.0f + static_cast<float>(i % 10),
                                 static_cast<float>(i % 5) * 0.2f));
  }
  return objects;
}

// ---------------------------------------------------------------- Object --

TEST(ObjectTest, MakeObjectAssignsLevel14Id) {
  CatalogObject o = MakeObject(7, {123.4, -56.7}, 18.5f, 0.3f);
  EXPECT_EQ(o.object_id, 7u);
  EXPECT_EQ(htm::LevelOf(o.htm_id), htm::kObjectLevel);
  EXPECT_TRUE(htm::Trixel::FromId(o.htm_id).Contains(o.pos));
  EXPECT_NEAR(o.pos.Norm(), 1.0, 1e-12);
  EXPECT_FLOAT_EQ(o.mag, 18.5f);
}

TEST(ObjectTest, OrderingIsTotal) {
  CatalogObject a = MakeObject(1, {10, 10});
  CatalogObject b = MakeObject(2, {10, 10});  // same position, higher id
  EXPECT_TRUE(ObjectHtmLess(a, b));
  EXPECT_FALSE(ObjectHtmLess(b, a));
}

// ---------------------------------------------------------------- Bucket --

TEST(BucketTest, ObjectsInRangeBinarySearch) {
  auto objects = RandomObjects(500, 101);
  std::sort(objects.begin(), objects.end(), ObjectHtmLess);
  htm::IdRange full{htm::LevelMin(htm::kObjectLevel),
                    htm::LevelMax(htm::kObjectLevel)};
  Bucket b(0, full, objects);

  htm::HtmId mid = objects[250].htm_id;
  auto span = b.ObjectsInRange(mid, mid);
  EXPECT_GE(span.size(), 1u);
  for (const auto& o : span) EXPECT_EQ(o.htm_id, mid);

  auto all = b.ObjectsInRange(full.lo, full.hi);
  EXPECT_EQ(all.size(), objects.size());

  auto none = b.ObjectsInRange(full.lo, objects.front().htm_id - 1);
  EXPECT_TRUE(none.empty());
}

TEST(BucketTest, EstimatedBytesMatchesPaperScale) {
  // 10,000 objects -> ~40 MB, the paper's bucket size.
  auto objects = RandomObjects(100, 103);
  std::sort(objects.begin(), objects.end(), ObjectHtmLess);
  Bucket b(0,
           htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                        htm::LevelMax(htm::kObjectLevel)},
           objects);
  EXPECT_EQ(b.EstimatedBytes(), 100u * Bucket::kBytesPerObject);
  EXPECT_NEAR(10000.0 * Bucket::kBytesPerObject / (1024.0 * 1024.0), 40.0,
              1.0);
}

// ----------------------------------------------------------- Partitioner --

TEST(PartitionerTest, RejectsBadInput) {
  EXPECT_FALSE(PartitionCatalog({}, 10).ok());
  EXPECT_FALSE(PartitionCatalog(RandomObjects(10, 1), 0).ok());
}

TEST(PartitionerTest, EqualSizedBuckets) {
  auto result = PartitionCatalog(RandomObjects(10000, 107), 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->buckets.size(), 10u);
  for (size_t i = 0; i + 1 < result->buckets.size(); ++i) {
    // All but possibly the last bucket hold exactly the target count
    // (duplicate HTM IDs could overflow, but random sky positions at level
    // 14 collide essentially never).
    EXPECT_EQ(result->buckets[i].size(), 1000u);
  }
}

TEST(PartitionerTest, BucketsTileTheCurve) {
  auto result = PartitionCatalog(RandomObjects(5000, 109), 500);
  ASSERT_TRUE(result.ok());
  const BucketMap& map = *result->map;
  EXPECT_EQ(map.RangeOf(0).lo, htm::LevelMin(htm::kObjectLevel));
  EXPECT_EQ(map.RangeOf(static_cast<BucketIndex>(map.num_buckets() - 1)).hi,
            htm::LevelMax(htm::kObjectLevel));
  for (size_t i = 0; i + 1 < map.num_buckets(); ++i) {
    EXPECT_EQ(map.RangeOf(static_cast<BucketIndex>(i)).hi + 1,
              map.RangeOf(static_cast<BucketIndex>(i + 1)).lo)
        << "gap or overlap between buckets " << i << " and " << i + 1;
  }
}

TEST(PartitionerTest, EveryObjectInItsBucketRange) {
  auto result = PartitionCatalog(RandomObjects(3000, 113), 250);
  ASSERT_TRUE(result.ok());
  size_t total = 0;
  for (const auto& b : result->buckets) {
    total += b.size();
    for (const auto& o : b.objects()) {
      EXPECT_TRUE(b.range().Contains(o.htm_id));
      EXPECT_EQ(result->map->BucketOf(o.htm_id), b.index());
    }
  }
  EXPECT_EQ(total, 3000u);
}

TEST(PartitionerTest, BucketOfIsConsistentWithRanges) {
  auto result = PartitionCatalog(RandomObjects(2000, 127), 100);
  ASSERT_TRUE(result.ok());
  const BucketMap& map = *result->map;
  Rng rng(131);
  for (int i = 0; i < 2000; ++i) {
    htm::HtmId id = htm::LevelMin(htm::kObjectLevel) +
                    rng.UniformU64(htm::LevelMax(htm::kObjectLevel) -
                                   htm::LevelMin(htm::kObjectLevel) + 1);
    BucketIndex idx = map.BucketOf(id);
    EXPECT_TRUE(map.RangeOf(idx).Contains(id));
  }
}

TEST(PartitionerTest, BucketsOverlappingSpansCorrectRun) {
  auto result = PartitionCatalog(RandomObjects(2000, 137), 200);
  ASSERT_TRUE(result.ok());
  const BucketMap& map = *result->map;
  auto r3 = map.RangeOf(3);
  auto r5 = map.RangeOf(5);
  auto [lo, hi] = map.BucketsOverlapping(r3.lo + 1, r5.lo);
  EXPECT_EQ(lo, 3u);
  EXPECT_EQ(hi, 5u);
}

// ------------------------------------------------------------ Disk model --

TEST(DiskModelTest, DefaultsMatchPaperConstants) {
  DiskModel model;
  ASSERT_TRUE(model.params().Validate().ok());
  // T_b for a 40 MB bucket should be ~1.2 seconds.
  double tb = model.SequentialReadMs(40ull * 1024 * 1024);
  EXPECT_NEAR(tb, 1200.0, 60.0);
  // T_m = 0.13 ms per object.
  EXPECT_DOUBLE_EQ(model.MatchMs(1000), 130.0);
}

TEST(DiskModelTest, ScanJoinChargesTbOnlyWhenNotCached) {
  DiskModel model;
  uint64_t bytes = 40ull * 1024 * 1024;
  double cached = model.ScanJoinMs(bytes, 500, /*bucket_cached=*/true);
  double uncached = model.ScanJoinMs(bytes, 500, /*bucket_cached=*/false);
  EXPECT_DOUBLE_EQ(cached, model.MatchMs(500));
  EXPECT_DOUBLE_EQ(uncached, model.SequentialReadMs(bytes) + cached);
}

TEST(DiskModelTest, HybridBreakEvenNearThreePercent) {
  // With default calibration, indexed join beats scan below ~3% of a
  // 10,000-object bucket and loses above it (paper Fig 2).
  DiskModel model;
  uint64_t bucket_bytes = 10000ull * Bucket::kBytesPerObject;
  uint64_t small_queue = 100;   // 1%
  uint64_t large_queue = 1000;  // 10%
  EXPECT_LT(model.IndexedJoinMs(small_queue),
            model.ScanJoinMs(bucket_bytes, small_queue, false));
  EXPECT_GT(model.IndexedJoinMs(large_queue),
            model.ScanJoinMs(bucket_bytes, large_queue, false));
}

TEST(DiskModelTest, ValidateRejectsBadParams) {
  DiskModelParams p;
  p.transfer_mb_per_s = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskModelParams{};
  p.match_ms_per_object = -1;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskModelParams{};
  p.index_probe_ms = 0;
  EXPECT_FALSE(p.Validate().ok());
}

// ---------------------------------------------------------------- Stores --

TEST(MemStoreTest, ReadsBackAllBuckets) {
  auto partition = PartitionCatalog(RandomObjects(1000, 139), 100);
  ASSERT_TRUE(partition.ok());
  MemStore store(std::move(*partition));
  EXPECT_EQ(store.num_buckets(), 10u);
  size_t total = 0;
  for (BucketIndex i = 0; i < store.num_buckets(); ++i) {
    auto bucket = store.ReadBucket(i);
    ASSERT_TRUE(bucket.ok());
    EXPECT_EQ((*bucket)->index(), i);
    total += (*bucket)->size();
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(store.stats().bucket_reads, 10u);
  EXPECT_EQ(store.stats().objects_read, 1000u);
}

TEST(MemStoreTest, OutOfRangeIndex) {
  auto partition = PartitionCatalog(RandomObjects(100, 149), 50);
  ASSERT_TRUE(partition.ok());
  MemStore store(std::move(*partition));
  EXPECT_EQ(store.ReadBucket(99).status().code(), StatusCode::kOutOfRange);
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("liferaft_store_test_" + std::to_string(::getpid()) + ".lfr");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(FileStoreTest, RoundTripPreservesEverything) {
  auto partition = PartitionCatalog(RandomObjects(2000, 151), 250);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path_.string(), partition->buckets).ok());

  auto store = FileStore::Open(path_.string());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ((*store)->num_buckets(), partition->buckets.size());

  for (BucketIndex i = 0; i < (*store)->num_buckets(); ++i) {
    auto bucket = (*store)->ReadBucket(i);
    ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
    const Bucket& loaded = **bucket;
    const Bucket& original = partition->buckets[i];
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.range(), original.range());
    for (size_t j = 0; j < loaded.size(); ++j) {
      const auto& a = loaded.objects()[j];
      const auto& b = original.objects()[j];
      EXPECT_EQ(a.object_id, b.object_id);
      EXPECT_EQ(a.htm_id, b.htm_id);
      EXPECT_DOUBLE_EQ(a.ra_deg, b.ra_deg);
      EXPECT_DOUBLE_EQ(a.dec_deg, b.dec_deg);
      EXPECT_FLOAT_EQ(a.mag, b.mag);
      EXPECT_NEAR((a.pos - b.pos).Norm(), 0.0, 1e-14);
    }
  }
  // Bucket map reconstructed identically.
  const BucketMap& m1 = (*store)->bucket_map();
  const BucketMap& m2 = *partition->map;
  ASSERT_EQ(m1.num_buckets(), m2.num_buckets());
  for (size_t i = 0; i < m1.num_buckets(); ++i) {
    EXPECT_EQ(m1.RangeOf(static_cast<BucketIndex>(i)),
              m2.RangeOf(static_cast<BucketIndex>(i)));
  }
}

TEST_F(FileStoreTest, DetectsPayloadCorruption) {
  auto partition = PartitionCatalog(RandomObjects(500, 157), 100);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path_.string(), partition->buckets).ok());

  // Flip a byte in the middle of the file (inside some bucket payload).
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    char c;
    f.seekg(200);
    f.get(c);
    f.seekp(200);
    f.put(static_cast<char>(c ^ 0xFF));
  }
  auto store = FileStore::Open(path_.string());
  ASSERT_TRUE(store.ok());  // index is intact
  bool corruption_seen = false;
  for (BucketIndex i = 0; i < (*store)->num_buckets(); ++i) {
    auto bucket = (*store)->ReadBucket(i);
    if (!bucket.ok()) {
      EXPECT_EQ(bucket.status().code(), StatusCode::kCorruption);
      corruption_seen = true;
    }
  }
  EXPECT_TRUE(corruption_seen);
}

TEST_F(FileStoreTest, RejectsTruncatedFile) {
  auto partition = PartitionCatalog(RandomObjects(300, 163), 100);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path_.string(), partition->buckets).ok());
  std::filesystem::resize_file(path_, 64);
  EXPECT_FALSE(FileStore::Open(path_.string()).ok());
}

TEST_F(FileStoreTest, RejectsBadMagic) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "definitely not a liferaft bucket store file, padded to 64 bytes..";
  }
  auto r = FileStore::Open(path_.string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(FileStoreTest, CreateRejectsEmpty) {
  EXPECT_FALSE(FileStore::Create(path_.string(), {}).ok());
}

// ------------------------------------------------- columnar v2 FileStore --

// Curve-ordered catalog (ids follow the HTM curve, as workload::
// GenerateCatalog produces): every bucket is a contiguous id run, the
// layout the v2 sequential object-id encoding is built for.
std::vector<CatalogObject> CurveOrderedObjects(size_t n, uint64_t seed) {
  std::vector<CatalogObject> objects = RandomObjects(n, seed);
  std::stable_sort(objects.begin(), objects.end(),
                   [](const CatalogObject& a, const CatalogObject& b) {
                     return a.htm_id < b.htm_id;
                   });
  for (size_t i = 0; i < objects.size(); ++i) objects[i].object_id = i;
  return objects;
}

TEST_F(FileStoreTest, ColumnarRoundTripIsBitExact) {
  auto partition = PartitionCatalog(CurveOrderedObjects(2000, 151), 250);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path_.string(), partition->buckets,
                                BucketFormat::kColumnarV2)
                  .ok());

  auto store = FileStore::Open(path_.string());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->format(), BucketFormat::kColumnarV2);
  ASSERT_EQ((*store)->num_buckets(), partition->buckets.size());

  for (BucketIndex i = 0; i < (*store)->num_buckets(); ++i) {
    auto bucket = (*store)->ReadBucket(i);
    ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
    const Bucket& loaded = **bucket;
    const Bucket& original = partition->buckets[i];
    EXPECT_TRUE(loaded.is_columnar());
    EXPECT_GT(loaded.encoded_bytes(), 0u);
    EXPECT_EQ((*store)->EncodedBucketBytes(i), loaded.encoded_bytes());
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.range(), original.range());
    for (size_t j = 0; j < loaded.size(); ++j) {
      const auto& a = loaded.objects()[j];
      const auto& b = original.objects()[j];
      EXPECT_EQ(a.object_id, b.object_id);
      EXPECT_EQ(a.htm_id, b.htm_id);
      // Bit-exact, not approximately equal: the v1/v2 identity claim
      // depends on the round-tripped doubles having identical bits.
      EXPECT_EQ(a.ra_deg, b.ra_deg);
      EXPECT_EQ(a.dec_deg, b.dec_deg);
      EXPECT_EQ(a.mag, b.mag);
      EXPECT_EQ(a.color, b.color);
      EXPECT_EQ(a.pos.x, b.pos.x);
      EXPECT_EQ(a.pos.y, b.pos.y);
      EXPECT_EQ(a.pos.z, b.pos.z);
    }
    // The zero-copy view agrees with the materialized rows.
    ColumnarBucketView view = loaded.view();
    ASSERT_EQ(view.size(), loaded.size());
    for (size_t j = 0; j < view.size(); ++j) {
      EXPECT_EQ(view.ids()[j], original.objects()[j].htm_id);
      EXPECT_EQ(view.object_id(j), original.objects()[j].object_id);
      EXPECT_EQ(view.ra()[j], original.objects()[j].ra_deg);
      EXPECT_EQ(view.dec()[j], original.objects()[j].dec_deg);
      EXPECT_EQ(view.mag()[j], original.objects()[j].mag);
      EXPECT_EQ(view.color()[j], original.objects()[j].color);
    }
  }
}

TEST_F(FileStoreTest, ColumnarHandlesNonSequentialIds) {
  // Generation-order ids (not curve order): the object-id column falls
  // back to the packed-FOR encoding and must still round-trip exactly.
  auto partition = PartitionCatalog(RandomObjects(800, 173), 100);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path_.string(), partition->buckets,
                                BucketFormat::kColumnarV2)
                  .ok());
  auto store = FileStore::Open(path_.string());
  ASSERT_TRUE(store.ok());
  for (BucketIndex i = 0; i < (*store)->num_buckets(); ++i) {
    auto bucket = (*store)->ReadBucket(i);
    ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
    for (size_t j = 0; j < (*bucket)->size(); ++j) {
      EXPECT_EQ((*bucket)->objects()[j].object_id,
                partition->buckets[i].objects()[j].object_id);
    }
  }
}

TEST_F(FileStoreTest, RowV1IsAutoDetected) {
  // A file written in the original row format opens and reads without the
  // caller saying anything about versions.
  auto partition = PartitionCatalog(CurveOrderedObjects(500, 157), 100);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path_.string(), partition->buckets,
                                BucketFormat::kRowV1)
                  .ok());
  auto store = FileStore::Open(path_.string());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->format(), BucketFormat::kRowV1);
  auto bucket = (*store)->ReadBucket(0);
  ASSERT_TRUE(bucket.ok());
  EXPECT_FALSE((*bucket)->is_columnar());
  EXPECT_EQ((*bucket)->size(), 100u);
}

TEST_F(FileStoreTest, ColumnarShrinksEncodedBytesByThirtyPercent) {
  auto objects = CurveOrderedObjects(20'000, 211);
  auto partition = PartitionCatalog(objects, 1000);
  ASSERT_TRUE(partition.ok());
  auto v1_path = path_.string() + ".v1";
  auto v2_path = path_.string() + ".v2";
  ASSERT_TRUE(FileStore::Create(v1_path, partition->buckets,
                                BucketFormat::kRowV1)
                  .ok());
  ASSERT_TRUE(FileStore::Create(v2_path, partition->buckets,
                                BucketFormat::kColumnarV2)
                  .ok());
  uint64_t v1_size = std::filesystem::file_size(v1_path);
  uint64_t v2_size = std::filesystem::file_size(v2_path);
  std::filesystem::remove(v1_path);
  std::filesystem::remove(v2_path);
  EXPECT_LE(static_cast<double>(v2_size), 0.70 * static_cast<double>(v1_size))
      << "v2 " << v2_size << " bytes vs v1 " << v1_size;
}

// Corruption fixture: writes a small v2 store and exposes byte surgery on
// the FIRST page (which starts right after the 20-byte file header).
class ColumnarCorruptionTest : public FileStoreTest {
 protected:
  static constexpr size_t kFileHeaderBytes = 20;

  void WriteStore() {
    auto partition = PartitionCatalog(CurveOrderedObjects(300, 163), 100);
    ASSERT_TRUE(partition.ok());
    ASSERT_TRUE(FileStore::Create(path_.string(), partition->buckets,
                                  BucketFormat::kColumnarV2)
                    .ok());
  }

  std::string ReadFile() {
    std::ifstream f(path_, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }

  void WriteFile(const std::string& bytes) {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Size of page 0 = its crc-offset field + 4.
  size_t Page0Size(const std::string& bytes) {
    return GetFixed32(bytes.data() + kFileHeaderBytes +
                      ColumnarPageLayout::kCrcOffsetField) +
           4;
  }

  // Recomputes page 0's trailing crc after surgery so a test exercises
  // exactly one validation failure, not the checksum catch-all.
  void FixPage0Crc(std::string* bytes) {
    size_t page_size = Page0Size(*bytes);
    uint32_t crc =
        Crc32(bytes->data() + kFileHeaderBytes, page_size - 4);
    std::string fixed;
    PutFixed32(&fixed, crc);
    bytes->replace(kFileHeaderBytes + page_size - 4, 4, fixed);
  }

  // The corrupted bucket 0 read, as a status.
  Status ReadBucket0() {
    auto store = FileStore::Open(path_.string());
    if (!store.ok()) return store.status();
    return (*store)->ReadBucket(0).status();
  }
};

TEST_F(ColumnarCorruptionTest, FlippedByteFailsChecksum) {
  WriteStore();
  std::string bytes = ReadFile();
  // Flip one byte in the middle of page 0's payload.
  bytes[kFileHeaderBytes + 100] =
      static_cast<char>(bytes[kFileHeaderBytes + 100] ^ 0xFF);
  WriteFile(bytes);
  Status s = ReadBucket0();
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();
}

TEST_F(ColumnarCorruptionTest, FlippedCrcByteFailsChecksum) {
  WriteStore();
  std::string bytes = ReadFile();
  size_t crc_pos = kFileHeaderBytes + Page0Size(bytes) - 4;
  bytes[crc_pos] = static_cast<char>(bytes[crc_pos] ^ 0x01);
  WriteFile(bytes);
  Status s = ReadBucket0();
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();
}

TEST_F(ColumnarCorruptionTest, UnknownPageVersionIsRejected) {
  WriteStore();
  std::string bytes = ReadFile();
  std::string version;
  PutFixed32(&version, 9);  // an unknown future version
  bytes.replace(kFileHeaderBytes + 4, 4, version);
  FixPage0Crc(&bytes);  // valid checksum: the version check must fire
  WriteFile(bytes);
  Status s = ReadBucket0();
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
}

TEST_F(ColumnarCorruptionTest, TruncatedPageIsRejected) {
  WriteStore();
  std::string bytes = ReadFile();
  // Shrink page 0's crc-offset field: the page now claims to end before
  // the bytes the index says it spans.
  std::string crc_off;
  PutFixed32(&crc_off, ColumnarPageLayout::kHeaderBytes);
  bytes.replace(kFileHeaderBytes + ColumnarPageLayout::kCrcOffsetField, 4,
                crc_off);
  WriteFile(bytes);
  Status s = ReadBucket0();
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.ToString();
}

TEST_F(ColumnarCorruptionTest, IdColumnOutsideRangeIsRejected) {
  WriteStore();
  std::string bytes = ReadFile();
  // Shrink the page's declared range so the decoded (still monotone) id
  // column violates containment — the ordering/containment check fires
  // with a clean error instead of handing out a misfiled bucket.
  std::string range_hi;
  PutFixed64(&range_hi, GetFixed64(bytes.data() + kFileHeaderBytes +
                                   ColumnarPageLayout::kRangeLoOffset));
  bytes.replace(kFileHeaderBytes + ColumnarPageLayout::kRangeHiOffset, 8,
                range_hi);
  FixPage0Crc(&bytes);
  WriteFile(bytes);
  Status s = ReadBucket0();
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("range"), std::string::npos) << s.ToString();
}

TEST_F(ColumnarCorruptionTest, UnknownFileVersionIsRejected) {
  WriteStore();
  std::string bytes = ReadFile();
  std::string version;
  PutFixed32(&version, 7);
  bytes.replace(8, 4, version);  // file-header version field
  WriteFile(bytes);
  auto store = FileStore::Open(path_.string());
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
}

// ----------------------------------------------------------------- BTree --

TEST(BTreeTest, RejectsUnsortedInput) {
  auto objects = RandomObjects(100, 167);  // unsorted
  // Force an inversion in case randomness sorted it.
  std::sort(objects.begin(), objects.end(), ObjectHtmLess);
  std::swap(objects.front(), objects.back());
  EXPECT_FALSE(BTreeIndex::BulkLoad(objects).ok());
}

TEST(BTreeTest, RangeLookupMatchesLinearScan) {
  auto objects = RandomObjects(20000, 173);
  std::sort(objects.begin(), objects.end(), ObjectHtmLess);
  auto tree = BTreeIndex::BulkLoad(objects);
  ASSERT_TRUE(tree.ok());

  Rng rng(179);
  for (int trial = 0; trial < 50; ++trial) {
    size_t a = rng.UniformU64(objects.size());
    size_t b = rng.UniformU64(objects.size());
    htm::HtmId lo = std::min(objects[a].htm_id, objects[b].htm_id);
    htm::HtmId hi = std::max(objects[a].htm_id, objects[b].htm_id);
    auto got = tree->RangeLookup(lo, hi);
    size_t expected = 0;
    for (const auto& o : objects) {
      expected += (o.htm_id >= lo && o.htm_id <= hi);
    }
    EXPECT_EQ(got.size(), expected);
    for (const auto& o : got) {
      EXPECT_GE(o.htm_id, lo);
      EXPECT_LE(o.htm_id, hi);
    }
  }
}

TEST(BTreeTest, EmptyRangeAndEmptyTree) {
  auto empty = BTreeIndex::BulkLoad({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->RangeLookup(0, UINT64_MAX).empty());

  auto objects = RandomObjects(100, 181);
  std::sort(objects.begin(), objects.end(), ObjectHtmLess);
  auto tree = BTreeIndex::BulkLoad(objects);
  ASSERT_TRUE(tree.ok());
  // lo > hi yields nothing.
  EXPECT_TRUE(tree->RangeLookup(100, 50).empty());
}

TEST(BTreeTest, ScanStatsCountLeaves) {
  auto objects = RandomObjects(10000, 191);
  std::sort(objects.begin(), objects.end(), ObjectHtmLess);
  auto tree = BTreeIndex::BulkLoad(objects);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_leaves(),
            (10000 + BTreeIndex::kLeafCapacity - 1) /
                BTreeIndex::kLeafCapacity);

  // Full scan touches every leaf.
  size_t seen = 0;
  auto stats = tree->RangeScan(0, UINT64_MAX,
                               [&](const CatalogObject&) { ++seen; });
  EXPECT_EQ(seen, 10000u);
  EXPECT_EQ(stats.matches, 10000u);
  EXPECT_EQ(stats.leaves_visited, tree->num_leaves());

  // A point lookup touches very few.
  auto one = tree->RangeScan(objects[5000].htm_id, objects[5000].htm_id,
                             [](const CatalogObject&) {});
  EXPECT_LE(one.leaves_visited, 2u);
  EXPECT_GE(one.matches, 1u);
}

// ----------------------------------------------------------------- Cache --

class CacheTestFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto partition = PartitionCatalog(RandomObjects(1000, 193), 100);
    ASSERT_TRUE(partition.ok());
    store_ = std::make_unique<MemStore>(std::move(*partition));
  }
  std::unique_ptr<MemStore> store_;
};

TEST_F(CacheTestFixture, HitsAndMisses) {
  BucketCache cache(store_.get(), 3);
  EXPECT_FALSE(cache.Contains(0));
  ASSERT_TRUE(cache.Get(0).ok());
  EXPECT_TRUE(cache.Contains(0));
  ASSERT_TRUE(cache.Get(0).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().HitRate(), 0.5, 1e-12);
}

TEST_F(CacheTestFixture, EvictsLeastRecentlyUsed) {
  BucketCache cache(store_.get(), 3);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  ASSERT_TRUE(cache.Get(2).ok());
  ASSERT_TRUE(cache.Get(0).ok());  // 0 is now MRU; LRU is 1
  ASSERT_TRUE(cache.Get(3).ok());  // evicts 1
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST_F(CacheTestFixture, ContainsDoesNotPromote) {
  BucketCache cache(store_.get(), 2);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  // Interrogate residency of 0 (phi check) -- must NOT promote it.
  EXPECT_TRUE(cache.Contains(0));
  ASSERT_TRUE(cache.Get(2).ok());  // evicts 0, the true LRU
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
}

TEST_F(CacheTestFixture, SharedPointersStayValidAfterEviction) {
  BucketCache cache(store_.get(), 1);
  auto b0 = cache.Get(0);
  ASSERT_TRUE(b0.ok());
  ASSERT_TRUE(cache.Get(1).ok());  // evicts 0
  // The evicted bucket remains usable through the original shared_ptr.
  EXPECT_EQ((*b0)->index(), 0u);
  EXPECT_GT((*b0)->size(), 0u);
}

TEST_F(CacheTestFixture, ClearEmptiesCache) {
  BucketCache cache(store_.get(), 4);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains(0));
}

// ------------------------------------------------------- Cache prefetch --

TEST_F(CacheTestFixture, PrefetchAsyncClaimsThroughGet) {
  BucketCache cache(store_.get(), 3);
  BucketCache::BucketFuture future = cache.PrefetchAsync(2);
  EXPECT_TRUE(cache.IsPrefetchPending(2));
  // In flight, not resident: phi still charges T_b until the claim.
  EXPECT_FALSE(cache.Contains(2));
  // I/O accounting is deferred to the claim on the owner thread.
  EXPECT_EQ(store_->stats().bucket_reads, 0u);

  auto claimed = cache.Get(2);
  ASSERT_TRUE(claimed.ok());
  EXPECT_EQ((*claimed)->index(), 2u);
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.IsPrefetchPending(2));
  EXPECT_EQ(cache.stats().prefetch_issued, 1u);
  EXPECT_EQ(cache.stats().prefetch_claims, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);  // the bucket did come from the store
  EXPECT_EQ(store_->stats().bucket_reads, 1u);

  auto fetched = future.get();
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->index(), 2u);
}

TEST_F(CacheTestFixture, PrefetchPinsResidentBucketAgainstEviction) {
  BucketCache cache(store_.get(), 2);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());  // LRU order: 0 is the eviction victim
  cache.PrefetchAsync(0);          // pins the resident LRU entry
  EXPECT_TRUE(cache.IsPinned(0));
  ASSERT_TRUE(cache.Get(2).ok());  // must evict 1, skipping the pinned 0
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(1));
  ASSERT_TRUE(cache.Get(0).ok());  // claim = hit + unpin + promote
  EXPECT_FALSE(cache.IsPinned(0));
  EXPECT_EQ(cache.stats().prefetch_claims, 1u);
}

TEST_F(CacheTestFixture, CancelPrefetchDropsUnusedFetch) {
  BucketCache cache(store_.get(), 2);
  cache.PrefetchAsync(4);
  cache.CancelPrefetch(4);
  EXPECT_FALSE(cache.Contains(4));
  EXPECT_FALSE(cache.IsPrefetchPending(4));
  EXPECT_EQ(cache.stats().prefetch_cancels, 1u);
  EXPECT_EQ(store_->stats().bucket_reads, 0u);  // never claimed → never billed

  // Canceling a resident pin re-enables eviction of the true LRU.
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  cache.PrefetchAsync(0);
  cache.CancelPrefetch(0);
  EXPECT_FALSE(cache.IsPinned(0));
  ASSERT_TRUE(cache.Get(2).ok());
  EXPECT_FALSE(cache.Contains(0));
}

TEST_F(CacheTestFixture, CancelAfterFetchCountsWastedBytes) {
  BucketCache cache(store_.get(), 2);
  cache.PrefetchAsync(4);  // synchronous (no pool): fetched immediately
  cache.CancelPrefetch(4);
  // The physical read happened and was dropped unclaimed: its bytes are
  // the mispredict's direct cost, visible to the adaptive controller.
  const uint64_t bucket_bytes =
      static_cast<uint64_t>(store_->BucketObjectCount(4)) *
      Bucket::kBytesPerObject;
  EXPECT_EQ(cache.stats().prefetch_wasted_bytes, bucket_bytes);
  // The I/O ledger still never saw the read (deferred-to-claim contract).
  EXPECT_EQ(store_->stats().bucket_reads, 0u);

  // A canceled pin of a resident bucket fetched nothing — no waste.
  ASSERT_TRUE(cache.Get(0).ok());
  cache.PrefetchAsync(0);
  cache.CancelPrefetch(0);
  EXPECT_EQ(cache.stats().prefetch_wasted_bytes, bucket_bytes);

  // Clear() drops in-flight prefetches the same way.
  cache.PrefetchAsync(5);
  cache.Clear();
  EXPECT_GT(cache.stats().prefetch_wasted_bytes, bucket_bytes);
}

// ------------------------------------------- Prefetch-aware eviction tier --

TEST_F(CacheTestFixture, PredictionWindowBucketSurvivesPressure) {
  BucketCache cache(store_.get(), 2);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());  // LRU order: 0 is the colder entry
  // 0 is inside the prediction window: eviction must demote it last, so
  // the pressure that would have evicted it takes the warmer 1 instead.
  cache.SetPredictionWindow(std::vector<BucketIndex>{0});
  ASSERT_TRUE(cache.Get(2).ok());
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.stats().evictions_protected, 0u);
}

TEST_F(CacheTestFixture, AllProtectedFallsBackToLruProtectedVictim) {
  BucketCache cache(store_.get(), 2);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  // Every resident entry is in the window: eviction cannot starve, so it
  // falls back to the LRU protected entry and records the conflict.
  cache.SetPredictionWindow(std::vector<BucketIndex>{0, 1});
  ASSERT_TRUE(cache.Get(2).ok());
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.stats().evictions_protected, 1u);
}

TEST_F(CacheTestFixture, EmptyWindowRestoresPlainLru) {
  BucketCache cache(store_.get(), 2);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  cache.SetPredictionWindow(std::vector<BucketIndex>{0});
  cache.SetPredictionWindow({});  // window replaced: protection gone
  ASSERT_TRUE(cache.Get(2).ok());
  EXPECT_FALSE(cache.Contains(0));  // plain LRU victim again
  EXPECT_EQ(cache.stats().evictions_protected, 0u);
}

TEST_F(CacheTestFixture, WindowProtectsPerShard) {
  BucketCache cache(store_.get(), 4, /*num_shards=*/2);
  // Shard 0 holds even buckets, shard 1 odd; capacity 2 per shard.
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(2).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  ASSERT_TRUE(cache.Get(3).ok());
  cache.SetPredictionWindow(std::vector<BucketIndex>{0, 1});
  ASSERT_TRUE(cache.Get(4).ok());  // shard 0 pressure: spares 0, evicts 2
  ASSERT_TRUE(cache.Get(5).ok());  // shard 1 pressure: spares 1, evicts 3
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(3));
}

TEST_F(CacheTestFixture, PrefetchOnWorkerDefersStatsToClaim) {
  util::ThreadPool pool(2);
  BucketCache cache(store_.get(), 2);
  cache.set_thread_pool(&pool);
  BucketCache::BucketFuture future = cache.PrefetchAsync(1);
  auto fetched = future.get();  // wait for the worker's read
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(store_->stats().bucket_reads, 0u);  // still unrecorded
  auto claimed = cache.Get(1);
  ASSERT_TRUE(claimed.ok());
  EXPECT_EQ(store_->stats().bucket_reads, 1u);  // billed at claim
  EXPECT_EQ(*claimed, *fetched);  // the very same shared bucket
}

// -------------------------------------------------------- Sharded cache --

TEST_F(CacheTestFixture, ShardCountClampsToCapacity) {
  BucketCache one(store_.get(), 3, 1);
  EXPECT_EQ(one.num_shards(), 1u);
  BucketCache clamped(store_.get(), 3, 16);
  EXPECT_EQ(clamped.num_shards(), 3u);
  BucketCache zero(store_.get(), 3, 0);
  EXPECT_EQ(zero.num_shards(), 1u);
}

TEST_F(CacheTestFixture, ShardedCacheSplitsCapacityAndEvictsPerShard) {
  // Capacity 4 over 2 shards: 2 entries per shard. Buckets map to shards
  // by index % num_shards, so evens share shard 0 and odds shard 1.
  BucketCache cache(store_.get(), 4, 2);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(2).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  EXPECT_EQ(cache.size(), 3u);
  ASSERT_TRUE(cache.Get(4).ok());  // third even: evicts 0 from shard 0
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_TRUE(cache.Contains(1)) << "the odd shard must be untouched";
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST_F(CacheTestFixture, ShardedStatsAggregateAcrossShards) {
  BucketCache cache(store_.get(), 4, 2);
  ASSERT_TRUE(cache.Get(0).ok());  // miss, shard 0
  ASSERT_TRUE(cache.Get(1).ok());  // miss, shard 1
  ASSERT_TRUE(cache.Get(0).ok());  // hit, shard 0
  ASSERT_TRUE(cache.Get(1).ok());  // hit, shard 1
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_NEAR(stats.HitRate(), 0.5, 1e-12);
  cache.ResetStats();
  stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.evictions, 0u);
}

TEST_F(CacheTestFixture, ShardedMatchesUnshardedCountersOnSameTrace) {
  // num_shards=1 must be byte-identical to the pre-shard cache, and a
  // deterministic trace that never overflows any shard must agree across
  // shard counts on every counter.
  std::vector<BucketIndex> trace = {0, 1, 2, 3, 0, 1, 2, 3, 2, 0};
  BucketCache flat(store_.get(), 4, 1);
  BucketCache sharded(store_.get(), 4, 4);
  for (BucketIndex b : trace) {
    ASSERT_TRUE(flat.Get(b).ok());
    ASSERT_TRUE(sharded.Get(b).ok());
  }
  CacheStats f = flat.stats();
  CacheStats s = sharded.stats();
  EXPECT_EQ(f.hits, s.hits);
  EXPECT_EQ(f.misses, s.misses);
  EXPECT_EQ(f.evictions, s.evictions);
}

TEST_F(CacheTestFixture, PrefetchPinAndCancelWorkPerShard) {
  BucketCache cache(store_.get(), 4, 2);
  cache.PrefetchAsync(3);  // in-flight on shard 1
  ASSERT_TRUE(cache.Get(0).ok());
  cache.PrefetchAsync(0);  // resident pin on shard 0
  EXPECT_TRUE(cache.IsPrefetchPending(3));
  EXPECT_TRUE(cache.IsPinned(0));
  cache.CancelPrefetch(3);
  cache.CancelPrefetch(0);
  EXPECT_FALSE(cache.IsPrefetchPending(3));
  EXPECT_FALSE(cache.IsPinned(0));
  EXPECT_EQ(cache.stats().prefetch_cancels, 2u);
}

// The races the shard mutexes must survive: many threads hammering
// PrefetchAsync/Get/CancelPrefetch for overlapping buckets across every
// shard, with the prefetch reads themselves running on a worker pool.
// Run under `tools/ci.sh --tsan` this is the thread-sanitizer smoke for
// the cache; the invariant checks below catch logic races (double claim,
// lost pin) even without instrumentation.
TEST_F(CacheTestFixture, ConcurrentPrefetchGetCancelStress) {
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 2000;
  util::ThreadPool prefetch_pool(2);
  util::ThreadPool callers(kThreads);
  BucketCache cache(store_.get(), 6, 3);
  cache.set_thread_pool(&prefetch_pool);
  const size_t num_buckets = store_->num_buckets();

  std::atomic<uint64_t> got_objects{0};
  std::vector<std::future<void>> futures;
  for (size_t t = 0; t < kThreads; ++t) {
    futures.push_back(callers.Submit([&cache, &got_objects, num_buckets, t] {
      Rng rng(1000 + t);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const auto b =
            static_cast<BucketIndex>(rng.UniformU64(num_buckets));
        switch (rng.UniformU64(4)) {
          case 0:
            cache.PrefetchAsync(b);
            break;
          case 1: {
            auto bucket = cache.Get(b);
            ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
            got_objects.fetch_add((*bucket)->size());
            break;
          }
          case 2:
            cache.CancelPrefetch(b);
            break;
          default:
            (void)cache.Contains(b);
            break;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();  // rethrows assertion failures

  // Drain every prefetch that is still outstanding, then check the
  // bookkeeping reconciles: issues = claims + cancels once nothing is in
  // flight, and no bucket is left pinned.
  for (BucketIndex b = 0; b < num_buckets; ++b) {
    cache.CancelPrefetch(b);
    EXPECT_FALSE(cache.IsPrefetchPending(b));
    EXPECT_FALSE(cache.IsPinned(b));
  }
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_issued,
            stats.prefetch_claims + stats.prefetch_cancels);
  EXPECT_GT(got_objects.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
}

// ----------------------------------------------------- byte-budget cache --

TEST_F(CacheTestFixture, ByteBudgetZeroMatchesCountOnlyCache) {
  // capacity_bytes = 0 is the pre-existing count-only mode: byte
  // accounting stays off entirely.
  BucketCache cache(store_.get(), 3, 1, nullptr, 0);
  ASSERT_TRUE(cache.Get(0).ok());
  EXPECT_EQ(cache.capacity_bytes(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST_F(CacheTestFixture, ByteBudgetBoundsResidency) {
  // Each MemStore bucket charges EstimatedBytes = 100 * 4096 bytes. A
  // budget of 2.5 buckets holds two; the third insert evicts the LRU.
  const uint64_t per_bucket = 100 * Bucket::kBytesPerObject;
  BucketCache cache(store_.get(), 10, 1, nullptr,
                    per_bucket * 2 + per_bucket / 2);
  ASSERT_TRUE(cache.Get(0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  EXPECT_EQ(cache.resident_bytes(), 2 * per_bucket);
  ASSERT_TRUE(cache.Get(2).ok());  // over budget: evicts bucket 0
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.resident_bytes(), 2 * per_bucket);
}

TEST_F(CacheTestFixture, ByteBudgetHoldsMoreEncodedBuckets) {
  // A columnar FileStore charges real encoded page bytes, which are much
  // smaller than the kBytesPerObject estimate — the same MB budget keeps
  // more buckets resident, which is the point of the compressed format.
  auto path = std::filesystem::temp_directory_path() /
              ("liferaft_cache_bytes_" + std::to_string(::getpid()) + ".lfr");
  auto objects = RandomObjects(1000, 193);
  std::stable_sort(objects.begin(), objects.end(),
                   [](const CatalogObject& a, const CatalogObject& b) {
                     return a.htm_id < b.htm_id;
                   });
  for (size_t i = 0; i < objects.size(); ++i) objects[i].object_id = i;
  auto partition = PartitionCatalog(std::move(objects), 100);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path.string(), partition->buckets,
                                BucketFormat::kColumnarV2)
                  .ok());
  auto store = FileStore::Open(path.string());
  ASSERT_TRUE(store.ok());

  const uint64_t estimate_budget = 2 * 100 * Bucket::kBytesPerObject;
  BucketCache cache(store->get(), 10, 1, nullptr, estimate_budget);
  size_t resident = 0;
  for (BucketIndex i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.Get(i).ok());
  }
  for (BucketIndex i = 0; i < 10; ++i) resident += cache.Contains(i);
  // The estimate would cap this at 2; encoded pages are < 30 KB each, so
  // everything fits.
  EXPECT_GT(resident, 2u);
  EXPECT_LE(cache.resident_bytes(), estimate_budget);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------- Catalog --

TEST(CatalogTest, BuildWithIndex) {
  CatalogOptions options;
  options.objects_per_bucket = 200;
  options.build_index = true;
  auto catalog = Catalog::Build(RandomObjects(2000, 197), options);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ((*catalog)->num_buckets(), 10u);
  EXPECT_EQ((*catalog)->num_objects(), 2000u);
  ASSERT_NE((*catalog)->index(), nullptr);
  EXPECT_EQ((*catalog)->index()->size(), 2000u);
}

TEST(CatalogTest, BuildWithoutIndex) {
  CatalogOptions options;
  options.objects_per_bucket = 100;
  options.build_index = false;
  auto catalog = Catalog::Build(RandomObjects(500, 199), options);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ((*catalog)->index(), nullptr);
}

TEST(CatalogTest, IndexAgreesWithBuckets) {
  CatalogOptions options;
  options.objects_per_bucket = 100;
  auto catalog = Catalog::Build(RandomObjects(1000, 211), options);
  ASSERT_TRUE(catalog.ok());
  // Every bucket's objects are exactly the index's objects in that range.
  for (BucketIndex i = 0; i < (*catalog)->num_buckets(); ++i) {
    auto bucket = (*catalog)->store()->ReadBucket(i);
    ASSERT_TRUE(bucket.ok());
    auto range = (*bucket)->range();
    auto from_index = (*catalog)->index()->RangeLookup(range.lo, range.hi);
    EXPECT_EQ(from_index.size(), (*bucket)->size());
  }
}

TEST(CatalogTest, FromStoreWrapsFileStoreWithIndex) {
  auto path = std::filesystem::temp_directory_path() /
              ("liferaft_catalog_fs_" + std::to_string(::getpid()) + ".lfr");
  auto partition = PartitionCatalog(RandomObjects(1000, 223), 100);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(FileStore::Create(path.string(), partition->buckets,
                                BucketFormat::kColumnarV2)
                  .ok());
  auto store = FileStore::Open(path.string());
  ASSERT_TRUE(store.ok());
  auto catalog = Catalog::FromStore(std::move(*store));
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ((*catalog)->num_buckets(), 10u);
  EXPECT_EQ((*catalog)->num_objects(), 1000u);
  ASSERT_NE((*catalog)->index(), nullptr);
  EXPECT_EQ((*catalog)->index()->size(), 1000u);
  // The index-build read-back does not leak into the run's I/O ledger.
  EXPECT_EQ((*catalog)->store()->stats().bucket_reads, 0u);
  std::filesystem::remove(path);
}

TEST(CatalogTest, FromStoreRejectsNull) {
  EXPECT_FALSE(Catalog::FromStore(nullptr).ok());
}

}  // namespace
}  // namespace liferaft::storage
