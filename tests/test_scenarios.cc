// Tests for the scenario-matrix harness: spec parsing, the built-in
// grids, cell validation, invariant evaluation, and the golden three-cell
// matrix whose JSON report must stay byte-identical (tests/data/).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sim/scenario_matrix.h"

namespace liferaft::sim {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// ------------------------------------------------------------- parsing --

TEST(ScenarioSpecTest, ParsesCellsAndKeys) {
  auto cells = ParseScenarioSpec(R"(# a comment
[first]
queries = 12
trace_seed = 9
skew = extreme
p_small = 0.5
arrival = diurnal       # trailing comment
amplitude = 0.8
period_ms = 120000
arrival_seed = 3
volumes = 4
placement = hash
hetero = true
spill_arm = true
spill_budget = 20000
cache = 10
prefetch_depth = 2
adaptive_prefetch = false
alpha = 0.5
adaptive_alpha = true
interactive_max_parts = 4
max_pending_queries = 8
max_pending_objects = 100000
interactive_cap = 1
batch_cap = 3
expect_no_shed = false
check_qos = true
monotonic_group = sweep

[second]
arrival = saturated
strictly_beats = first
)");
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  ASSERT_EQ(cells->size(), 2u);
  const ScenarioCell& c = (*cells)[0];
  EXPECT_EQ(c.name, "first");
  EXPECT_EQ(c.queries, 12u);
  EXPECT_EQ(c.trace_seed, 9u);
  EXPECT_EQ(c.skew, workload::SkewLevel::kExtreme);
  EXPECT_DOUBLE_EQ(c.p_small, 0.5);
  EXPECT_EQ(c.arrivals.kind, ArrivalSpec::Kind::kDiurnal);
  EXPECT_DOUBLE_EQ(c.arrivals.amplitude, 0.8);
  EXPECT_DOUBLE_EQ(c.arrivals.period_ms, 120'000.0);
  EXPECT_EQ(c.arrivals.seed, 3u);
  EXPECT_EQ(c.volumes, 4u);
  EXPECT_EQ(c.placement, storage::VolumePlacement::kHash);
  EXPECT_TRUE(c.hetero);
  EXPECT_TRUE(c.spill_arm);
  EXPECT_EQ(c.spill_budget, 20'000u);
  EXPECT_EQ(c.cache, 10u);
  EXPECT_EQ(c.prefetch_depth, 2u);
  EXPECT_FALSE(c.adaptive_prefetch);
  EXPECT_DOUBLE_EQ(c.alpha, 0.5);
  EXPECT_TRUE(c.adaptive_alpha);
  EXPECT_EQ(c.interactive_max_parts, 4u);
  EXPECT_EQ(c.max_pending_queries, 8u);
  EXPECT_EQ(c.max_pending_objects, 100'000u);
  EXPECT_EQ(c.interactive_cap, 1u);
  EXPECT_EQ(c.batch_cap, 3u);
  EXPECT_FALSE(c.expect_no_shed);
  EXPECT_TRUE(c.check_qos);
  EXPECT_EQ(c.monotonic_group, "sweep");

  // The saturated shorthand: an empty kTrace spec, materialized at run
  // time as everything arriving at t=0.
  const ScenarioCell& s = (*cells)[1];
  EXPECT_EQ(s.arrivals.kind, ArrivalSpec::Kind::kTrace);
  EXPECT_TRUE(s.arrivals.trace.empty());
  EXPECT_EQ(s.strictly_beats, "first");
}

TEST(ScenarioSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseScenarioSpec("").ok());
  EXPECT_FALSE(ParseScenarioSpec("queries = 5\n").ok());  // outside a cell
  EXPECT_FALSE(ParseScenarioSpec("[a]\nnot a kv line\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("[a]\nbogus_key = 1\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("[a]\nqueries = twelve\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("[a]\nskew = sideways\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("[a]\n[a]\n").ok());  // duplicate name
  EXPECT_FALSE(ParseScenarioSpec("[a\nqueries = 5\n").ok());
  // Per-cell validation runs on the parsed result.
  EXPECT_FALSE(ParseScenarioSpec("[a]\nqueries = 0\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("[a]\np_small = 1.5\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("[a]\nalpha = 2.0\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("[a]\nrate_qps = 0\n").ok());
}

TEST(ScenarioCellTest, ValidateChecksRanges) {
  ScenarioCell cell;
  cell.name = "ok";
  EXPECT_TRUE(cell.Validate().ok());
  cell.volumes = 0;
  EXPECT_FALSE(cell.Validate().ok());
  cell.volumes = 1;
  cell.cache = 0;
  EXPECT_FALSE(cell.Validate().ok());
  cell.cache = 20;
  cell.name.clear();
  EXPECT_FALSE(cell.Validate().ok());
}

// ------------------------------------------------------- built-in grids --

TEST(ScenarioGridTest, SmokeGridShape) {
  auto cells = BuiltinScenarioGrid("smoke");
  ASSERT_TRUE(cells.ok());
  EXPECT_GE(cells->size(), 6u);
  // Every axis of the matrix appears somewhere in the smoke subset.
  bool has_multi_volume = false, has_qos = false, has_spill = false,
       has_hetero = false, has_monotonic = false, has_no_shed = false,
       has_strict = false;
  for (const ScenarioCell& cell : *cells) {
    EXPECT_TRUE(cell.Validate().ok()) << cell.name;
    has_multi_volume |= cell.volumes > 1;
    has_qos |= cell.check_qos;
    has_spill |= cell.spill_budget > 0 && cell.spill_arm;
    has_hetero |= cell.hetero;
    has_monotonic |= !cell.monotonic_group.empty();
    has_no_shed |= cell.expect_no_shed;
    has_strict |= !cell.strictly_beats.empty();
  }
  EXPECT_TRUE(has_multi_volume);
  EXPECT_TRUE(has_qos);
  EXPECT_TRUE(has_spill);
  EXPECT_TRUE(has_hetero);
  EXPECT_TRUE(has_monotonic);
  EXPECT_TRUE(has_no_shed);
  EXPECT_TRUE(has_strict);
}

TEST(ScenarioGridTest, FullGridIsLargerAndValid) {
  auto smoke = BuiltinScenarioGrid("smoke");
  auto full = BuiltinScenarioGrid("full");
  ASSERT_TRUE(smoke.ok() && full.ok());
  EXPECT_GT(full->size(), smoke->size());
  for (const ScenarioCell& cell : *full) {
    EXPECT_TRUE(cell.Validate().ok()) << cell.name;
  }
}

TEST(ScenarioGridTest, UnknownGridIsAnError) {
  EXPECT_FALSE(BuiltinScenarioGrid("medium").ok());
}

// -------------------------------------------------------------- running --

// The golden matrix: three tiny cells checked into tests/data/. The run
// must reproduce the checked-in JSON report byte for byte — this is the
// determinism claim of docs/SCENARIOS.md made enforceable, and it also
// locks the report schema (a schema change must regenerate the golden).
TEST(ScenarioMatrixTest, GoldenThreeCellReportIsByteIdentical) {
  const std::string dir = LIFERAFT_TEST_DATA_DIR;
  auto cells = ParseScenarioSpec(ReadFileOrDie(dir + "/scenario_golden.spec"));
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  ASSERT_EQ(cells->size(), 3u);

  ScenarioMatrixOptions options;
  auto results = RunScenarioMatrix(*cells, options);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  for (const ScenarioResult& r : *results) {
    EXPECT_TRUE(r.failures.empty())
        << r.cell.name << ": " << r.failures.front();
  }
  EXPECT_EQ(ScenarioReportJson(*results),
            ReadFileOrDie(dir + "/scenario_golden.json"));
}

TEST(ScenarioMatrixTest, InvariantFailuresAreReported) {
  // A no-shed claim that cannot hold: a saturated drain against a
  // one-query admission bound must shed, so expect_no_shed fails the cell
  // (rather than passing vacuously).
  ScenarioCell cell;
  cell.name = "impossible-no-shed";
  cell.queries = 8;
  cell.arrivals.kind = ArrivalSpec::Kind::kTrace;
  cell.arrivals.trace.clear();
  cell.max_pending_queries = 1;
  cell.expect_no_shed = true;
  ScenarioMatrixOptions options;
  options.verify_determinism = false;
  auto results = RunScenarioMatrix({cell}, options);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);
  ASSERT_EQ((*results)[0].failures.size(), 1u);
  EXPECT_NE((*results)[0].failures[0].find("expect_no_shed"),
            std::string::npos);
  EXPECT_EQ(CountScenarioFailures(*results), 1u);
}

TEST(ScenarioMatrixTest, DuplicateCellNamesAreRejected) {
  ScenarioCell cell;
  cell.name = "twin";
  cell.queries = 4;
  ScenarioMatrixOptions options;
  EXPECT_FALSE(RunScenarioMatrix({cell, cell}, options).ok());
}

TEST(ScenarioMatrixTest, SpillCellWithoutSpillDirIsAnError) {
  ScenarioCell cell;
  cell.name = "spiller";
  cell.queries = 4;
  cell.spill_budget = 1000;
  ScenarioMatrixOptions options;
  options.spill_dir.clear();
  EXPECT_FALSE(RunScenarioMatrix({cell}, options).ok());
}

}  // namespace
}  // namespace liferaft::sim
