// Tests for the query layer: query objects and their HTM covers,
// predicates, the pre-processor's bucket decomposition, and the workload
// manager's queue/aging/completion bookkeeping.

#include <gtest/gtest.h>

#include "htm/htm.h"
#include "query/preprocessor.h"
#include "query/query.h"
#include "query/workload.h"
#include "storage/partitioner.h"
#include "util/random.h"

namespace liferaft::query {
namespace {

using storage::BucketIndex;
using storage::CatalogObject;
using storage::MakeObject;

std::vector<CatalogObject> RandomObjects(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<CatalogObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SkyPoint p{rng.UniformDouble(0, 360),
               std::asin(rng.UniformDouble(-1, 1)) * kRadToDeg};
    objects.push_back(MakeObject(i, p));
  }
  return objects;
}

// ----------------------------------------------------------- QueryObject --

TEST(QueryObjectTest, CoverContainsOwnPosition) {
  Rng rng(223);
  for (int i = 0; i < 200; ++i) {
    SkyPoint p{rng.UniformDouble(0, 360), rng.UniformDouble(-89, 89)};
    QueryObject qo = MakeQueryObject(i, p, 3.0);
    EXPECT_TRUE(qo.htm_ranges.Contains(htm::PointToId(p)));
    EXPECT_NEAR(qo.pos.Norm(), 1.0, 1e-12);
  }
}

TEST(QueryObjectTest, CoverContainsAllMatchCandidates) {
  // Any archive object within the error radius must fall in the cover —
  // this is the coarse filter's no-false-negative invariant.
  Rng rng(227);
  SkyPoint center{120.0, 30.0};
  QueryObject qo = MakeQueryObject(0, center, 10.0);
  for (int i = 0; i < 500; ++i) {
    SkyPoint p{center.ra_deg + rng.UniformDouble(-0.01, 0.01),
               center.dec_deg + rng.UniformDouble(-0.01, 0.01)};
    if (AngularSeparationArcsec(center, p) > 10.0) continue;
    EXPECT_TRUE(qo.htm_ranges.Contains(htm::PointToId(p)));
  }
}

TEST(QueryObjectTest, CoverIsBounded) {
  // Even near mesh-root corners, an object ships a handful of ranges.
  for (double ra : {0.0, 45.0, 90.0, 180.0, 270.0}) {
    for (double dec : {-90.0, -45.0, 0.0, 45.0, 90.0}) {
      QueryObject qo = MakeQueryObject(0, {ra, dec}, 5.0);
      EXPECT_LE(qo.htm_ranges.size(), 32u) << ra << "," << dec;
    }
  }
}

// ------------------------------------------------------------- Predicate --

TEST(PredicateTest, TrivialAcceptsEverything) {
  Predicate p;
  EXPECT_TRUE(p.IsTrivial());
  EXPECT_TRUE(p.Matches(MakeObject(1, {10, 10}, -5.0f, 99.0f)));
  EXPECT_EQ(p.ToString(), "true");
}

TEST(PredicateTest, MagnitudeBounds) {
  Predicate p;
  p.min_mag = 15.0f;
  p.max_mag = 20.0f;
  EXPECT_TRUE(p.Matches(MakeObject(1, {0, 0}, 17.0f)));
  EXPECT_TRUE(p.Matches(MakeObject(1, {0, 0}, 15.0f)));
  EXPECT_TRUE(p.Matches(MakeObject(1, {0, 0}, 20.0f)));
  EXPECT_FALSE(p.Matches(MakeObject(1, {0, 0}, 14.9f)));
  EXPECT_FALSE(p.Matches(MakeObject(1, {0, 0}, 20.1f)));
  EXPECT_FALSE(p.IsTrivial());
  EXPECT_NE(p.ToString().find("mag"), std::string::npos);
}

TEST(PredicateTest, ColorBounds) {
  Predicate p;
  p.min_color = 0.2f;
  EXPECT_TRUE(p.Matches(MakeObject(1, {0, 0}, 18.0f, 0.3f)));
  EXPECT_FALSE(p.Matches(MakeObject(1, {0, 0}, 18.0f, 0.1f)));
}

// ---------------------------------------------------------- Preprocessor --

class PreprocessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto partition = storage::PartitionCatalog(RandomObjects(5000, 229), 250);
    ASSERT_TRUE(partition.ok());
    map_ = partition->map;
  }
  std::shared_ptr<const storage::BucketMap> map_;
};

TEST_F(PreprocessorTest, EveryObjectLandsSomewhere) {
  Rng rng(233);
  CrossMatchQuery q;
  q.id = 1;
  for (int i = 0; i < 100; ++i) {
    q.objects.push_back(MakeQueryObject(
        i, {rng.UniformDouble(0, 360), rng.UniformDouble(-85, 85)}, 3.0));
  }
  auto workloads = SplitQueryByBucket(q, *map_);
  ASSERT_FALSE(workloads.empty());
  size_t assigned = 0;
  for (const auto& w : workloads) {
    EXPECT_FALSE(w.objects.empty());
    assigned += w.objects.size();
  }
  // Every object appears at least once (some straddle bucket borders and
  // appear in several workloads).
  EXPECT_GE(assigned, q.objects.size());
}

TEST_F(PreprocessorTest, ObjectAssignedToItsOwnBucket) {
  // The bucket containing the object's own HTM ID must be among the
  // object's assigned buckets.
  Rng rng(239);
  CrossMatchQuery q;
  q.id = 2;
  for (int i = 0; i < 50; ++i) {
    q.objects.push_back(MakeQueryObject(
        i, {rng.UniformDouble(0, 360), rng.UniformDouble(-85, 85)}, 3.0));
  }
  auto workloads = SplitQueryByBucket(q, *map_);
  for (const auto& qo : q.objects) {
    BucketIndex home = map_->BucketOf(htm::PointToId(qo.sky()));
    bool found = false;
    for (const auto& w : workloads) {
      if (w.bucket != home) continue;
      for (const auto& o : w.objects) found |= (o.id == qo.id);
    }
    EXPECT_TRUE(found) << "object " << qo.id << " missing from home bucket";
  }
}

TEST_F(PreprocessorTest, WorkloadsSortedAndDeduplicated) {
  CrossMatchQuery q;
  q.id = 3;
  // Two identical objects with distinct ids, plus one elsewhere.
  q.objects.push_back(MakeQueryObject(0, {50, 10}, 3.0));
  q.objects.push_back(MakeQueryObject(1, {50, 10}, 3.0));
  q.objects.push_back(MakeQueryObject(2, {250, -40}, 3.0));
  auto workloads = SplitQueryByBucket(q, *map_);
  for (size_t i = 1; i < workloads.size(); ++i) {
    EXPECT_LT(workloads[i - 1].bucket, workloads[i].bucket);
  }
  // No object appears twice in one workload.
  for (const auto& w : workloads) {
    for (size_t i = 1; i < w.objects.size(); ++i) {
      EXPECT_NE(w.objects[i - 1].id, w.objects[i].id);
    }
  }
}

// -------------------------------------------------------- WorkloadManager --

CrossMatchQuery SmallQuery(QueryId id, TimeMs arrival, double ra, double dec,
                           int n_objects = 5) {
  CrossMatchQuery q;
  q.id = id;
  q.arrival_ms = arrival;
  for (int i = 0; i < n_objects; ++i) {
    q.objects.push_back(
        MakeQueryObject(i, {ra + i * 0.001, dec}, 3.0));
  }
  return q;
}

class WorkloadManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto partition = storage::PartitionCatalog(RandomObjects(5000, 241), 250);
    ASSERT_TRUE(partition.ok());
    map_ = partition->map;
    manager_ = std::make_unique<WorkloadManager>(map_->num_buckets());
  }

  Result<size_t> AdmitQuery(const CrossMatchQuery& q) {
    return manager_->Admit(q, SplitQueryByBucket(q, *map_));
  }

  std::shared_ptr<const storage::BucketMap> map_;
  std::unique_ptr<WorkloadManager> manager_;
};

TEST_F(WorkloadManagerTest, AdmitPopulatesQueues) {
  auto q = SmallQuery(1, 100.0, 80.0, 20.0);
  auto parts = AdmitQuery(q);
  ASSERT_TRUE(parts.ok());
  EXPECT_GE(*parts, 1u);
  EXPECT_EQ(manager_->pending_queries(), 1u);
  EXPECT_EQ(manager_->PendingParts(1), *parts);
  EXPECT_EQ(manager_->active_buckets().size(), *parts);
  EXPECT_GE(manager_->total_pending_objects(), 5u);
}

TEST_F(WorkloadManagerTest, RejectsDuplicateAndEmpty) {
  auto q = SmallQuery(1, 100.0, 80.0, 20.0);
  ASSERT_TRUE(AdmitQuery(q).ok());
  EXPECT_EQ(AdmitQuery(q).status().code(), StatusCode::kAlreadyExists);
  CrossMatchQuery empty;
  empty.id = 2;
  EXPECT_EQ(manager_->Admit(empty, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WorkloadManagerTest, TakeBucketCompletesQueries) {
  auto q = SmallQuery(7, 50.0, 120.0, -30.0);
  auto parts = AdmitQuery(q);
  ASSERT_TRUE(parts.ok());
  std::vector<QueryId> completed;
  std::vector<storage::BucketIndex> active(
      manager_->active_buckets().begin(), manager_->active_buckets().end());
  for (size_t i = 0; i < active.size(); ++i) {
    auto entries = manager_->TakeBucket(active[i], &completed);
    EXPECT_FALSE(entries.empty());
    if (i + 1 < active.size()) {
      EXPECT_TRUE(completed.empty());
    }
  }
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0], 7u);
  EXPECT_EQ(manager_->pending_queries(), 0u);
  EXPECT_EQ(manager_->total_pending_objects(), 0u);
  EXPECT_TRUE(manager_->active_buckets().empty());
}

TEST_F(WorkloadManagerTest, InterleavesQueriesInOneQueue) {
  // Two queries over the same region share workload queues.
  auto q1 = SmallQuery(1, 10.0, 200.0, 45.0);
  auto q2 = SmallQuery(2, 20.0, 200.0, 45.0);
  ASSERT_TRUE(AdmitQuery(q1).ok());
  ASSERT_TRUE(AdmitQuery(q2).ok());
  BucketIndex shared = *manager_->active_buckets().begin();
  const WorkloadQueue& queue = manager_->queue(shared);
  EXPECT_GE(queue.entries().size(), 2u);
  // Age tracks the oldest entry.
  EXPECT_DOUBLE_EQ(queue.oldest_arrival_ms(), 10.0);
  EXPECT_DOUBLE_EQ(queue.AgeMs(110.0), 100.0);
}

TEST_F(WorkloadManagerTest, AgeZeroWhenEmpty) {
  const WorkloadQueue& queue = manager_->queue(0);
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.AgeMs(12345.0), 0.0);
}

TEST_F(WorkloadManagerTest, OldestAgeSurvivesYoungerArrivals) {
  auto q1 = SmallQuery(1, 100.0, 10.0, 5.0);
  auto q2 = SmallQuery(2, 50.0, 10.0, 5.0);  // older query admitted later
  ASSERT_TRUE(AdmitQuery(q1).ok());
  ASSERT_TRUE(AdmitQuery(q2).ok());
  BucketIndex b = *manager_->active_buckets().begin();
  EXPECT_DOUBLE_EQ(manager_->queue(b).oldest_arrival_ms(), 50.0);
}

}  // namespace
}  // namespace liferaft::query
