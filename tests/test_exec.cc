// Tests for exec::BatchPipeline, the unified pick→prefetch→claim→
// evaluate→account loop shared by core::LifeRaft and sim::SimEngine's
// shared mode. The key contracts:
//  * join results (per-query match counts) are invariant across the whole
//    feature matrix — shard counts, prefetch depths, cancel heuristics —
//    because scheduling only reorders work, never changes matching;
//  * depth-K prefetching hides at least as much fetch latency as the
//    depth-1 (PR 2) pipeline on a saturated drain;
//  * the core facade, now routed through the same pipeline, gets working
//    prefetch for free.

#include "exec/batch_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "exec/prefetch_controller.h"

#include "core/liferaft.h"
#include "join/evaluator.h"
#include "query/workload.h"
#include "sched/liferaft_scheduler.h"
#include "sim/engine.h"
#include "storage/bucket_cache.h"
#include "storage/catalog.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::exec {
namespace {

TEST(BatchPipelineTest, EmptyManagerYieldsNoStep) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 2000;
  gen.seed = 7;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  storage::CatalogOptions options;
  options.objects_per_bucket = 500;
  auto catalog = storage::Catalog::Build(std::move(*objects), options);
  ASSERT_TRUE(catalog.ok());

  storage::BucketCache cache((*catalog)->store(), 4);
  join::JoinEvaluator evaluator(&cache, (*catalog)->index(),
                                storage::DiskModel{}, join::HybridConfig{});
  query::WorkloadManager manager((*catalog)->num_buckets());
  sched::LifeRaftScheduler scheduler((*catalog)->store(),
                                     storage::DiskModel{},
                                     sched::LifeRaftConfig{});
  PipelineConfig config;
  config.enable_prefetch = true;
  BatchPipeline pipeline(&scheduler, &manager, &evaluator, config);

  auto step = pipeline.Step(0.0);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_FALSE(step->has_value());
  EXPECT_EQ(pipeline.pending_prefetches(), 0u);
  EXPECT_EQ(pipeline.prefetch_hidden_ms(), 0.0);
  pipeline.CancelOutstandingPrefetches();  // no-op on an idle pipeline
}

// ------------------------------------------------- adaptive controller --

PrefetchControllerConfig ScriptedConfig() {
  PrefetchControllerConfig config;
  config.max_depth = 3;
  config.initial_depth = 2;
  config.adjust_period = 1;  // react every step so the script stays short
  config.probe_period = 4;
  return config;
}

// The scripted mispredict sequence of the issue: bursts drive the depth
// to zero, quiet steps trigger a probe, clean hidden-latency claims grow
// it back to the ceiling.
TEST(PrefetchControllerTest, ScriptedMispredictsShrinkThenRegrow) {
  PrefetchControllerConfig config = ScriptedConfig();
  ASSERT_TRUE(config.Validate().ok());
  PrefetchController controller(config);
  EXPECT_EQ(controller.depth(), 2u);

  // Mispredict burst: every resolved bet fell out of the window.
  PrefetchFeedback burst;
  burst.cancels = 2;
  controller.Observe(burst);
  EXPECT_EQ(controller.depth(), 1u) << "burst shrinks immediately";
  controller.Observe(burst);
  EXPECT_EQ(controller.depth(), 0u) << "second burst turns prefetch off";
  EXPECT_EQ(controller.stats().shrinks, 2u);

  // Off: nothing resolves; the probe timer alone can re-enable.
  PrefetchFeedback idle;
  for (int i = 0; i < 3; ++i) {
    controller.Observe(idle);
    EXPECT_EQ(controller.depth(), 0u);
  }
  controller.Observe(idle);
  EXPECT_EQ(controller.depth(), 1u) << "probe after probe_period quiet steps";
  EXPECT_EQ(controller.stats().probes, 1u);

  // Recovered predictor: clean claims that hide latency grow to the max.
  PrefetchFeedback good;
  good.claims = 1;
  good.hidden_ms = 500.0;
  controller.Observe(good);
  EXPECT_EQ(controller.depth(), 2u);
  controller.Observe(good);
  EXPECT_EQ(controller.depth(), 3u);
  controller.Observe(good);
  EXPECT_EQ(controller.depth(), 3u) << "capped at max_depth";
  EXPECT_GE(controller.stats().grows, 2u);
}

// A claim whose residual was capped at the full fetch reused bytes but
// hid nothing — it must count as stale, and an all-stale step is a burst.
TEST(PrefetchControllerTest, CappedClaimsCountAsStale) {
  PrefetchController controller(ScriptedConfig());
  PrefetchFeedback capped;
  capped.claims = 2;
  capped.stale_claims = 2;
  capped.hidden_ms = 0.0;
  controller.Observe(capped);
  EXPECT_EQ(controller.depth(), 1u);
  EXPECT_DOUBLE_EQ(controller.stale_ewma(), 1.0);
}

// Depth never grows while hidden-ms per claim is zero, even with a clean
// stale rate: a bet that hides nothing is not worth deepening.
TEST(PrefetchControllerTest, NoGrowthWithoutHiddenLatency) {
  PrefetchControllerConfig config = ScriptedConfig();
  config.initial_depth = 1;
  PrefetchController controller(config);
  PrefetchFeedback clean_but_useless;
  clean_but_useless.claims = 1;
  clean_but_useless.hidden_ms = 0.0;       // capped would also set stale;
  clean_but_useless.stale_claims = 0;      // pretend a zero-cost fetch
  for (int i = 0; i < 5; ++i) controller.Observe(clean_but_useless);
  EXPECT_EQ(controller.depth(), 1u);
  EXPECT_EQ(controller.stats().grows, 0u);
}

// The wasted-bytes cost term: a clean stale rate with steady hidden
// latency normally climbs to max_depth, but sustained canceled-after-
// fetch bytes veto every grow decision until the waste EWMA decays.
TEST(PrefetchControllerTest, SustainedWasteStallsGrowth) {
  PrefetchControllerConfig config = ScriptedConfig();
  config.initial_depth = 1;
  config.grow_max_wasted_bytes = 1 << 20;
  PrefetchController controller(config);

  // Clean claims that hide latency, but every step also drops a fetched
  // 4 MB bucket: rate-wise growable, cost-wise not.
  PrefetchFeedback wasteful;
  wasteful.claims = 8;  // keep the stale fraction (cancels/9) under grow
  wasteful.cancels = 1;
  wasteful.hidden_ms = 500.0;
  wasteful.wasted_bytes = 4 << 20;
  for (int i = 0; i < 6; ++i) controller.Observe(wasteful);
  EXPECT_EQ(controller.depth(), 1u) << "growth must stall under waste";
  EXPECT_EQ(controller.stats().grows, 0u);
  EXPECT_GT(controller.stats().grows_vetoed_on_waste, 0u);
  EXPECT_GT(controller.wasted_bytes_ewma(),
            static_cast<double>(config.grow_max_wasted_bytes));

  // Waste stops: the EWMA decays below the gate and growth resumes.
  PrefetchFeedback clean = wasteful;
  clean.cancels = 0;
  clean.wasted_bytes = 0;
  for (int i = 0; i < 12 && controller.depth() < config.max_depth; ++i) {
    controller.Observe(clean);
  }
  EXPECT_EQ(controller.depth(), config.max_depth);
  EXPECT_GT(controller.stats().grows, 0u);
}

// Zero waste must leave the grow rule exactly as it was before the cost
// term existed (the veto can only ever bite on non-zero waste).
TEST(PrefetchControllerTest, ZeroWasteNeverVetoesGrowth) {
  PrefetchControllerConfig config = ScriptedConfig();
  config.initial_depth = 1;
  PrefetchController controller(config);
  PrefetchFeedback good;
  good.claims = 1;
  good.hidden_ms = 500.0;
  controller.Observe(good);
  controller.Observe(good);
  EXPECT_EQ(controller.depth(), 3u);
  EXPECT_EQ(controller.stats().grows_vetoed_on_waste, 0u);
}

TEST(PrefetchControllerTest, ConfigValidation) {
  PrefetchControllerConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.max_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PrefetchControllerConfig{};
  config.ewma_alpha = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = PrefetchControllerConfig{};
  config.grow_threshold = 0.6;  // above shrink_threshold
  EXPECT_FALSE(config.Validate().ok());
  config = PrefetchControllerConfig{};
  config.adjust_period = 0;
  EXPECT_FALSE(config.Validate().ok());
}

// ------------------------------------------------ engine-level fixtures --

class PipelineDrainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 30'000;
    gen.seed = 21;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    catalog_objects_ = std::move(*objects);

    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;  // 30 buckets
    auto catalog = storage::Catalog::Build(catalog_objects_, options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);

    workload::TraceConfig tc;
    tc.num_queries = 40;
    tc.max_objects_per_query = 1200;
    tc.match_radius_arcsec = 900.0;
    tc.seed = 23;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
    arrivals_.assign(trace_.size(), 0.0);  // saturated drain
  }

  std::unique_ptr<sched::Scheduler> LifeRaftSched() {
    sched::LifeRaftConfig config;
    config.alpha = 0.25;
    return std::make_unique<sched::LifeRaftScheduler>(
        catalog_->store(), storage::DiskModel{}, config);
  }

  /// Runs a shared-mode drain under `scheduler` and returns (metrics,
  /// per-query matches).
  sim::RunMetrics DrainWith(std::unique_ptr<sched::Scheduler> scheduler,
                            const sim::EngineConfig& config,
                            std::map<query::QueryId, uint64_t>* matches) {
    sim::SimEngine engine(catalog_.get(), std::move(scheduler), config);
    auto metrics = engine.Run(trace_, arrivals_);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    if (matches != nullptr) {
      matches->clear();
      for (const sim::QueryOutcome& o : engine.outcomes()) {
        (*matches)[o.id] = o.matches;
      }
    }
    return metrics.ok() ? *metrics : sim::RunMetrics{};
  }

  /// Runs a shared-mode drain and returns (metrics, per-query matches).
  sim::RunMetrics Drain(const sim::EngineConfig& config,
                        std::map<query::QueryId, uint64_t>* matches) {
    return DrainWith(LifeRaftSched(), config, matches);
  }

  std::vector<storage::CatalogObject> catalog_objects_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::vector<query::CrossMatchQuery> trace_;
  std::vector<TimeMs> arrivals_;
};

// The acceptance matrix: a drain at num_shards ∈ {1,4} × prefetch_depth ∈
// {1,2} must produce byte-identical join results (every query's match
// count) to the serial non-prefetch baseline, while each prefetch config
// hides fetch latency and shrinks the saturated-drain makespan.
TEST_F(PipelineDrainFixture, ResultsInvariantAcrossShardsAndDepth) {
  sim::EngineConfig base_config;
  base_config.collect_matches = true;
  std::map<query::QueryId, uint64_t> base_matches;
  sim::RunMetrics base = Drain(base_config, &base_matches);
  ASSERT_EQ(base.queries_completed, trace_.size());

  for (size_t shards : {size_t{1}, size_t{4}}) {
    for (size_t depth : {size_t{1}, size_t{2}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " depth=" + std::to_string(depth));
      sim::EngineConfig config = base_config;
      config.cache_shards = shards;
      config.enable_prefetch = true;
      config.prefetch_depth = depth;
      std::map<query::QueryId, uint64_t> matches;
      sim::RunMetrics metrics = Drain(config, &matches);
      EXPECT_EQ(metrics.queries_completed, base.queries_completed);
      EXPECT_EQ(metrics.total_matches, base.total_matches);
      EXPECT_EQ(matches, base_matches)
          << "per-query match counts must not depend on sharding/prefetch";
      EXPECT_GT(metrics.prefetch_hidden_ms, 0.0);
      EXPECT_GT(metrics.cache.prefetch_claims, 0u);
      EXPECT_LT(metrics.makespan_ms, base.makespan_ms)
          << "hidden fetch latency must shrink a saturated drain";
    }
  }
}

// Identical config -> identical run, shard count included: the sharded
// cache is deterministic, so two depth-2/4-shard drains agree on every
// virtual quantity.
TEST_F(PipelineDrainFixture, ShardedPrefetchDrainIsDeterministic) {
  sim::EngineConfig config;
  config.collect_matches = true;
  config.cache_shards = 4;
  config.enable_prefetch = true;
  config.prefetch_depth = 2;
  std::map<query::QueryId, uint64_t> a_matches;
  std::map<query::QueryId, uint64_t> b_matches;
  sim::RunMetrics a = Drain(config, &a_matches);
  sim::RunMetrics b = Drain(config, &b_matches);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.prefetch_hidden_ms, b.prefetch_hidden_ms);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a_matches, b_matches);
}

// Depth 2 keeps two bets in flight, so on a saturated drain it must hide
// at least as much fetch latency as the single-bet PR 2 pipeline.
TEST_F(PipelineDrainFixture, DepthTwoHidesAtLeastDepthOne) {
  sim::EngineConfig config;
  config.enable_prefetch = true;
  config.prefetch_depth = 1;
  sim::RunMetrics d1 = Drain(config, nullptr);
  config.prefetch_depth = 2;
  sim::RunMetrics d2 = Drain(config, nullptr);
  EXPECT_GT(d1.prefetch_hidden_ms, 0.0);
  EXPECT_GE(d2.prefetch_hidden_ms, d1.prefetch_hidden_ms);
  EXPECT_LE(d2.makespan_ms, d1.makespan_ms);
}

// Cancel-on-mispredict drops stale bets instead of pinning them; results
// stay exact and the prefetch ledger reconciles (every issue is claimed or
// canceled by the end of the run).
TEST_F(PipelineDrainFixture, CancelOnMispredictReconcilesAndStaysExact) {
  sim::EngineConfig base_config;
  base_config.collect_matches = true;
  std::map<query::QueryId, uint64_t> base_matches;
  sim::RunMetrics base = Drain(base_config, &base_matches);

  sim::EngineConfig config = base_config;
  config.enable_prefetch = true;
  config.prefetch_depth = 2;
  config.cancel_on_mispredict = true;
  std::map<query::QueryId, uint64_t> matches;
  sim::RunMetrics metrics = Drain(config, &matches);
  EXPECT_EQ(metrics.queries_completed, base.queries_completed);
  EXPECT_EQ(matches, base_matches);
  EXPECT_EQ(metrics.cache.prefetch_issued,
            metrics.cache.prefetch_claims + metrics.cache.prefetch_cancels);
}

// ------------------------------------------------- adaptive drains --

// Join results must be invariant under the adaptive controller, like
// every other scheduling feature, and the prefetch ledger must reconcile
// (each issued bet is eventually claimed or canceled).
TEST_F(PipelineDrainFixture, AdaptiveResultsInvariantAndLedgerReconciles) {
  sim::EngineConfig base_config;
  base_config.collect_matches = true;
  std::map<query::QueryId, uint64_t> base_matches;
  sim::RunMetrics base = Drain(base_config, &base_matches);

  sim::EngineConfig config = base_config;
  config.adaptive_prefetch = true;
  config.prefetch_depth = 2;  // the controller's starting depth
  config.max_prefetch_depth = 4;
  std::map<query::QueryId, uint64_t> matches;
  sim::RunMetrics metrics = Drain(config, &matches);
  EXPECT_EQ(metrics.queries_completed, base.queries_completed);
  EXPECT_EQ(metrics.total_matches, base.total_matches);
  EXPECT_EQ(matches, base_matches)
      << "per-query match counts must not depend on adaptive prefetch";
  EXPECT_GT(metrics.prefetch_hidden_ms, 0.0);
  EXPECT_LT(metrics.makespan_ms, base.makespan_ms);
  EXPECT_EQ(metrics.cache.prefetch_issued,
            metrics.cache.prefetch_claims + metrics.cache.prefetch_cancels);
  EXPECT_LE(metrics.prefetch_final_depth, config.max_prefetch_depth);
}

// Same config, same trajectory: the controller sees only virtual-clock
// quantities, so adaptive runs are deterministic.
TEST_F(PipelineDrainFixture, AdaptiveDrainIsDeterministic) {
  sim::EngineConfig config;
  config.adaptive_prefetch = true;
  config.prefetch_depth = 2;
  config.max_prefetch_depth = 4;
  sim::RunMetrics a = Drain(config, nullptr);
  sim::RunMetrics b = Drain(config, nullptr);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.prefetch_hidden_ms, b.prefetch_hidden_ms);
  EXPECT_EQ(a.prefetch_final_depth, b.prefetch_final_depth);
  EXPECT_EQ(a.prefetch_stale_ewma, b.prefetch_stale_ewma);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.cache.prefetch_wasted_bytes, b.cache.prefetch_wasted_bytes);
}

// With the LifeRaft predictor healthy on a saturated drain, the adaptive
// controller must hide at least as much fetch latency as the fixed
// depth-2 pipeline it starts from (it can only deepen from there).
TEST_F(PipelineDrainFixture, AdaptiveHidesAtLeastFixedDepthTwo) {
  sim::EngineConfig fixed;
  fixed.enable_prefetch = true;
  fixed.prefetch_depth = 2;
  sim::RunMetrics d2 = Drain(fixed, nullptr);

  sim::EngineConfig adaptive;
  adaptive.adaptive_prefetch = true;
  adaptive.prefetch_depth = 2;
  adaptive.max_prefetch_depth = 4;
  sim::RunMetrics ad = Drain(adaptive, nullptr);
  EXPECT_GE(ad.prefetch_hidden_ms, d2.prefetch_hidden_ms);
  EXPECT_LE(ad.makespan_ms, d2.makespan_ms);
}

// Decorator that sabotages the prediction hook: it peeks one slot deeper
// and drops the true next pick, so the window's first element is wrong
// whenever more than one bucket has pending work. PickBucket is honest —
// only the predictor misleads the prefetcher.
class MispredictingScheduler : public sched::Scheduler {
 public:
  explicit MispredictingScheduler(std::unique_ptr<sched::Scheduler> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override {
    return "mispredict(" + inner_->name() + ")";
  }
  std::optional<storage::BucketIndex> PickBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const sched::CacheProbe& cached) override {
    return inner_->PickBucket(manager, now, cached);
  }
  std::vector<storage::BucketIndex> PeekNextBuckets(
      const query::WorkloadManager& manager, TimeMs now,
      const sched::CacheProbe& cached, size_t k) const override {
    std::vector<storage::BucketIndex> real =
        inner_->PeekNextBuckets(manager, now, cached, k + 1);
    if (real.size() > 1) real.erase(real.begin());
    if (real.size() > k) real.resize(k);
    return real;
  }

 private:
  std::unique_ptr<sched::Scheduler> inner_;
};

// Under injected mispredictions the adaptive controller must never end a
// drain slower than the fixed depth-1 pipeline handed the same bad
// predictor — neither the hold-forever variant (whose pinned bets accrue
// hidden-ms by luck while its schedule pays for the pins) nor the
// apples-to-apples cancel-on-mispredict variant, which it must beat on
// hidden latency too: the controller shuts a hopeless predictor off
// (depth 0) instead of feeding it.
TEST_F(PipelineDrainFixture, AdaptiveNeverUnderperformsDepthOneOnMispredicts) {
  sim::EngineConfig fixed;
  fixed.enable_prefetch = true;
  fixed.prefetch_depth = 1;
  sim::RunMetrics d1_hold = DrainWith(
      std::make_unique<MispredictingScheduler>(LifeRaftSched()), fixed,
      nullptr);
  fixed.cancel_on_mispredict = true;
  sim::RunMetrics d1_cancel = DrainWith(
      std::make_unique<MispredictingScheduler>(LifeRaftSched()), fixed,
      nullptr);

  sim::EngineConfig adaptive;
  adaptive.adaptive_prefetch = true;
  adaptive.prefetch_depth = 1;
  adaptive.max_prefetch_depth = 4;
  sim::RunMetrics ad = DrainWith(
      std::make_unique<MispredictingScheduler>(LifeRaftSched()), adaptive,
      nullptr);
  EXPECT_LE(ad.makespan_ms, d1_hold.makespan_ms);
  EXPECT_LE(ad.makespan_ms, d1_cancel.makespan_ms);
  EXPECT_GE(ad.prefetch_hidden_ms, d1_cancel.prefetch_hidden_ms);
  // The bad predictor's cost is visible to the report: dropped bets whose
  // bytes were fetched for nothing, and a saturated stale EWMA.
  EXPECT_GT(ad.cache.prefetch_wasted_bytes, 0u);
  EXPECT_EQ(ad.cache.prefetch_issued,
            ad.cache.prefetch_claims + ad.cache.prefetch_cancels);
}

// Prefetch-aware eviction in vivo: with the window published every step,
// protected-tier conflicts and wasted bytes are observable and the run
// stays deterministic; turning protection off is a pure A/B knob.
TEST_F(PipelineDrainFixture, EvictionProtectionKnobIsDeterministicAB) {
  sim::EngineConfig config;
  config.collect_matches = true;
  config.enable_prefetch = true;
  config.prefetch_depth = 2;
  std::map<query::QueryId, uint64_t> with_matches;
  std::map<query::QueryId, uint64_t> without_matches;
  sim::RunMetrics with_protection = Drain(config, &with_matches);
  config.prefetch_aware_eviction = false;
  sim::RunMetrics without_protection = Drain(config, &without_matches);
  EXPECT_EQ(with_matches, without_matches)
      << "eviction policy must never change join results";
  EXPECT_GT(with_protection.prefetch_hidden_ms, 0.0);
  EXPECT_GT(without_protection.prefetch_hidden_ms, 0.0);
}

// The core facade routes ProcessNextBatch through the same pipeline, so
// enabling prefetch there now works: same completions and matches, fetch
// latency hidden, a faster virtual drain.
TEST_F(PipelineDrainFixture, CoreFacadePrefetchHidesFetchLatency) {
  core::LifeRaftOptions options;
  options.objects_per_bucket = 1000;
  auto plain = core::LifeRaft::Create(catalog_objects_, options);
  ASSERT_TRUE(plain.ok());

  options.enable_prefetch = true;
  options.prefetch_depth = 2;
  options.cache_shards = 4;
  auto pipelined = core::LifeRaft::Create(catalog_objects_, options);
  ASSERT_TRUE(pipelined.ok());

  for (const auto& q : trace_) {
    ASSERT_TRUE((*plain)->Submit(q).ok());
    ASSERT_TRUE((*pipelined)->Submit(q).ok());
  }

  uint64_t plain_matches = 0;
  uint64_t pipelined_matches = 0;
  auto count_plain = [&](const core::BatchOutcome& b) {
    plain_matches += b.matches.size();
  };
  auto count_pipelined = [&](const core::BatchOutcome& b) {
    pipelined_matches += b.matches.size();
  };
  auto plain_done = (*plain)->Drain(count_plain);
  ASSERT_TRUE(plain_done.ok());
  auto pipelined_done = (*pipelined)->Drain(count_pipelined);
  ASSERT_TRUE(pipelined_done.ok());

  // Same queries served, same join output; the schedule (and with it the
  // completion order) may differ — that is the prefetch steering.
  ASSERT_EQ(plain_done->size(), pipelined_done->size());
  std::set<query::QueryId> plain_ids;
  std::set<query::QueryId> pipelined_ids;
  for (const auto& c : *plain_done) plain_ids.insert(c.id);
  for (const auto& c : *pipelined_done) pipelined_ids.insert(c.id);
  EXPECT_EQ(plain_ids, pipelined_ids);
  EXPECT_EQ(plain_matches, pipelined_matches);

  EXPECT_GT((*pipelined)->prefetch_hidden_ms(), 0.0);
  EXPECT_GT((*pipelined)->cache_stats().prefetch_claims, 0u);
  EXPECT_LT((*pipelined)->now_ms(), (*plain)->now_ms())
      << "hidden fetch latency must shrink the virtual drain";
  // The drain canceled any leftover bets: the ledger reconciles.
  storage::CacheStats stats = (*pipelined)->cache_stats();
  EXPECT_EQ(stats.prefetch_issued,
            stats.prefetch_claims + stats.prefetch_cancels);
}

}  // namespace
}  // namespace liferaft::exec
