// Unit tests for util: Status/Result, Rng + distributions, stats, clocks,
// tables.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>

#include "util/arena.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace liferaft {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("bucket 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "bucket 7");
  EXPECT_EQ(s.ToString(), "NotFound: bucket 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIfPositive(int x) {
  LIFERAFT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = DoubleIfPositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = DoubleIfPositive(-3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformU64InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(10), 10u);
  }
}

TEST(RngTest, UniformU64CoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  StreamingStats s;
  const double lambda = 0.5;  // mean 2
  for (int i = 0; i < 50000; ++i) s.Add(rng.Exponential(lambda));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  StreamingStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ------------------------------------------------------------------ Zipf --

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfDistribution z(4, 0.0);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(z.Pmf(i), 0.25, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(100, 1.1);
  double sum = 0;
  for (size_t i = 0; i < 100; ++i) sum += z.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfDistribution z(50, 1.0);
  for (size_t i = 1; i < 50; ++i) EXPECT_GT(z.Pmf(0), z.Pmf(i));
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  Rng rng(29);
  ZipfDistribution z(10, 1.0);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), z.Pmf(i), 0.01)
        << "rank " << i;
  }
}

TEST(ZipfTest, HighSkewConcentratesMass) {
  ZipfDistribution z(1000, 2.0);
  double top10 = 0;
  for (size_t i = 0; i < 10; ++i) top10 += z.Pmf(i);
  EXPECT_GT(top10, 0.9);
}

TEST(PoissonTest, MeanMatchesSmallAndLarge) {
  Rng rng(31);
  for (double mean : {0.5, 5.0, 80.0}) {
    StreamingStats s;
    for (int i = 0; i < 20000; ++i) {
      s.Add(static_cast<double>(PoissonSample(&rng, mean)));
    }
    EXPECT_NEAR(s.mean(), mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

// ----------------------------------------------------------------- Stats --

TEST(StreamingStatsTest, Empty) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.coefficient_of_variation(), 0.0);
}

TEST(StreamingStatsTest, KnownValues) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, MergeEqualsCombined) {
  Rng rng(37);
  StreamingStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Normal(3, 2);
    all.Add(v);
    (i % 2 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(PercentilesTest, ExactOnSmallSet) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_NEAR(p.Median(), 50.5, 1e-12);
  EXPECT_NEAR(p.Percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(p.Percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(p.Percentile(99), 99.01, 0.5);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.Percentile(50), 0.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bin 0
  h.Add(9.99);   // bin 9
  h.Add(-5.0);   // clamps to bin 0
  h.Add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.BinLow(3), 3.0);
}

// ----------------------------------------------------------------- Clock --

TEST(VirtualClockTest, AdvanceMonotone) {
  VirtualClock c(100.0);
  EXPECT_EQ(c.NowMs(), 100.0);
  c.Advance(50.0);
  EXPECT_EQ(c.NowMs(), 150.0);
  c.AdvanceTo(120.0);  // in the past: no-op
  EXPECT_EQ(c.NowMs(), 150.0);
  c.AdvanceTo(200.0);
  EXPECT_EQ(c.NowMs(), 200.0);
}

TEST(WallClockTest, MovesForward) {
  WallClock c;
  double t0 = c.NowMs();
  // Burn a little CPU; steady_clock must not go backwards.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GE(c.NowMs(), t0);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, TextAndCsv) {
  Table t({"alg", "throughput"});
  t.AddRow({"NoShare", Table::Num(0.084, 3)});
  t.AddRow({"LifeRaft", Table::Num(0.212, 3)});
  std::string text = t.ToText();
  EXPECT_NE(text.find("NoShare"), std::string::npos);
  EXPECT_NE(text.find("0.212"), std::string::npos);
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("alg,throughput"), std::string::npos);
  EXPECT_NE(csv.find("NoShare,0.084"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvQuotesCommas) {
  Table t({"a"});
  t.AddRow({"x,y"});
  EXPECT_NE(t.ToCsv().find("\"x,y\""), std::string::npos);
}

// ----------------------------------------------------------------- Arena --

TEST(ArenaTest, BumpAllocatesWithinOneBlock) {
  util::Arena arena(1024);
  void* a = arena.Allocate(100, 8);
  void* b = arena.Allocate(100, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Consecutive allocations bump within the same block.
  EXPECT_EQ(static_cast<char*>(b) - static_cast<char*>(a), 104);
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.total_allocated_bytes(), 200u);
}

TEST(ArenaTest, RespectsAlignment) {
  util::Arena arena(1024);
  arena.Allocate(1, 1);
  for (size_t align : {size_t{2}, size_t{8}, size_t{64}}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
}

TEST(ArenaTest, GrowsGeometricallyAndOversizedFits) {
  util::Arena arena(64);
  arena.Allocate(64, 8);          // fills block 0
  arena.Allocate(64, 8);          // block 1 (128)
  EXPECT_EQ(arena.num_blocks(), 2u);
  void* big = arena.Allocate(10'000, 8);  // oversized: dedicated block
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.reserved_bytes(), 10'000u);
}

TEST(ArenaTest, ResetKeepsLargestBlockAndReuses) {
  util::Arena arena(64);
  for (int i = 0; i < 10; ++i) arena.Allocate(100, 8);
  const size_t blocks_before = arena.num_blocks();
  ASSERT_GT(blocks_before, 1u);
  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  // The kept block is the largest *single* block — one more identical
  // round may still grow once; after that the loop is steady and the
  // arena stops touching the heap.
  for (int i = 0; i < 10; ++i) arena.Allocate(100, 8);
  arena.Reset();
  const size_t reserved = arena.reserved_bytes();
  for (int i = 0; i < 10; ++i) arena.Allocate(100, 8);
  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ArenaAllocatorTest, VectorGrowsInArena) {
  util::Arena arena;
  util::ArenaVector<int> v{util::ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
  EXPECT_GT(arena.total_allocated_bytes(), 1000u * sizeof(int) - 1);
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  util::ArenaVector<int> v{util::ArenaAllocator<int>(nullptr)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 4950);
}

TEST(ArenaAllocatorTest, EqualityFollowsArenaIdentity) {
  util::Arena a;
  util::Arena b;
  EXPECT_TRUE(util::ArenaAllocator<int>(&a) == util::ArenaAllocator<int>(&a));
  EXPECT_TRUE(util::ArenaAllocator<int>(&a) != util::ArenaAllocator<int>(&b));
  EXPECT_TRUE(util::ArenaAllocator<int>(nullptr) ==
              util::ArenaAllocator<double>(nullptr));
}

// ---------------------------------------------------------------- coding --

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  PutDouble(&buf, -1.5e-300);
  PutFloat(&buf, 3.25f);
  ASSERT_EQ(buf.size(), 4u + 8u + 8u + 4u);
  EXPECT_EQ(GetFixed32(buf.data()), 0xDEADBEEFu);
  EXPECT_EQ(GetFixed64(buf.data() + 4), 0x0123456789ABCDEFull);
  EXPECT_EQ(GetDouble(buf.data() + 12), -1.5e-300);
  EXPECT_EQ(GetFloat(buf.data() + 20), 3.25f);
  // Explicitly little-endian on disk.
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0xEF);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0xDE);
}

TEST(CodingTest, Varint64RoundTripBoundaries) {
  // Every 7-bit length boundary, both sides.
  std::vector<uint64_t> values = {0, 1, 0x7F, 0x80, 0x3FFF, 0x4000};
  for (int shift = 21; shift <= 63; shift += 7) {
    values.push_back((1ull << shift) - 1);
    values.push_back(1ull << shift);
  }
  values.push_back(UINT64_MAX - 1);
  values.push_back(UINT64_MAX);
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    ASSERT_LE(buf.size(), kMaxVarint64Bytes);
    uint64_t out = 0;
    const char* end = GetVarint64(buf.data(), buf.data() + buf.size(), &out);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, buf.data() + buf.size()) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Varint32RoundTripAndRejectsOverflow) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, UINT32_MAX}) {
    std::string buf;
    PutVarint32(&buf, v);
    ASSERT_LE(buf.size(), kMaxVarint32Bytes);
    uint32_t out = 0;
    ASSERT_NE(GetVarint32(buf.data(), buf.data() + buf.size(), &out),
              nullptr);
    EXPECT_EQ(out, v);
  }
  // A value above UINT32_MAX decodes as a varint64 but must be rejected by
  // the 32-bit reader.
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  uint32_t out = 0;
  EXPECT_EQ(GetVarint32(buf.data(), buf.data() + buf.size(), &out), nullptr);
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);  // 10 bytes
  uint64_t out = 0;
  for (size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(GetVarint64(buf.data(), buf.data() + len, &out), nullptr)
        << "prefix of " << len << " bytes must not decode";
  }
  EXPECT_NE(GetVarint64(buf.data(), buf.data() + buf.size(), &out), nullptr);
}

TEST(CodingTest, VarintRejectsOverlongAndOverflow) {
  // 10 continuation bytes: longer than any valid u64 varint.
  std::string overlong(10, static_cast<char>(0x80));
  overlong.push_back(0x01);
  uint64_t out = 0;
  EXPECT_EQ(
      GetVarint64(overlong.data(), overlong.data() + overlong.size(), &out),
      nullptr);
  // 10-byte encoding whose final byte carries bits above bit 63.
  std::string overflow(9, static_cast<char>(0xFF));
  overflow.push_back(0x02);  // shift 63, byte > 1
  EXPECT_EQ(
      GetVarint64(overflow.data(), overflow.data() + overflow.size(), &out),
      nullptr);
  // Same final-byte position with only the low bit set is exactly
  // UINT64_MAX's encoding tail and must decode.
  std::string max_enc(9, static_cast<char>(0xFF));
  max_enc.push_back(0x01);
  ASSERT_NE(
      GetVarint64(max_enc.data(), max_enc.data() + max_enc.size(), &out),
      nullptr);
  EXPECT_EQ(out, UINT64_MAX);
}

TEST(CodingTest, ZigZagRoundTripAndOrdering) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-2},
                    int64_t{INT64_MAX}, int64_t{INT64_MIN}}) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  for (int32_t v : {0, -1, 1, -2, INT32_MAX, INT32_MIN}) {
    EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(v)), v);
  }
  // Small magnitudes map to small codes (the property varints exploit).
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagEncode64(-2), 3u);
}

TEST(CodingTest, DeltaVarintRoundTrip) {
  std::vector<uint64_t> vs = {5, 5, 6, 100, 100, 1ull << 40, UINT64_MAX};
  std::string buf;
  PutDeltaVarint64(&buf, vs);
  std::vector<uint64_t> out;
  out.reserve(vs.size());
  const char* end = GetDeltaVarint64(buf.data(), buf.data() + buf.size(),
                                     vs.size(), &out);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(end, buf.data() + buf.size());
  EXPECT_EQ(out, vs);
}

TEST(CodingTest, DeltaVarintEmptyAndSingle) {
  std::string buf;
  PutDeltaVarint64(&buf, std::span<const uint64_t>{});
  EXPECT_TRUE(buf.empty());
  std::vector<uint64_t> one = {42};
  PutDeltaVarint64(&buf, one);
  std::vector<uint64_t> out;
  ASSERT_NE(GetDeltaVarint64(buf.data(), buf.data() + buf.size(), 1, &out),
            nullptr);
  EXPECT_EQ(out, one);
}

TEST(CodingTest, DeltaVarintRejectsTruncationAndOverflow) {
  std::vector<uint64_t> vs = {10, 20, 30};
  std::string buf;
  PutDeltaVarint64(&buf, vs);
  std::vector<uint64_t> out;
  EXPECT_EQ(GetDeltaVarint64(buf.data(), buf.data() + buf.size() - 1,
                             vs.size(), &out),
            nullptr);
  // First value UINT64_MAX then a positive delta: the accumulator would
  // wrap, which the decoder must reject rather than emit a non-monotone id.
  std::string wrap;
  PutVarint64(&wrap, UINT64_MAX);
  PutVarint64(&wrap, 1);
  std::vector<uint64_t> out2;
  EXPECT_EQ(
      GetDeltaVarint64(wrap.data(), wrap.data() + wrap.size(), 2, &out2),
      nullptr);
}

}  // namespace
}  // namespace liferaft
