// Tests for the public LifeRaft facade and the federation layer built on
// top of it.

#include <gtest/gtest.h>

#include <set>

#include "core/liferaft.h"
#include "federation/federation.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::core {
namespace {

std::vector<storage::CatalogObject> TestCatalog(size_t n, uint64_t seed) {
  workload::CatalogGenConfig gen;
  gen.num_objects = n;
  gen.seed = seed;
  auto objects = workload::GenerateCatalog(gen);
  EXPECT_TRUE(objects.ok());
  return std::move(*objects);
}

LifeRaftOptions SmallOptions() {
  LifeRaftOptions options;
  options.objects_per_bucket = 500;
  options.cache_capacity = 5;
  options.alpha = 0.0;
  return options;
}

query::CrossMatchQuery RegionQuery(query::QueryId id, SkyPoint center,
                                   double spread_deg, int n_objects,
                                   uint64_t seed) {
  Rng rng(seed);
  query::CrossMatchQuery q;
  q.id = id;
  for (int i = 0; i < n_objects; ++i) {
    SkyPoint p = workload::RandomPointInCap(&rng, center, spread_deg);
    // Wide radius: the 20k-object test catalog is ~0.5 objects/sq deg, so
    // a 15-arcmin circle yields ~0.1 matches per query object.
    q.objects.push_back(query::MakeQueryObject(i, p, 900.0));
  }
  return q;
}

TEST(LifeRaftOptionsTest, ValidateRejectsBadValues) {
  LifeRaftOptions o;
  o.alpha = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o = LifeRaftOptions{};
  o.objects_per_bucket = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = LifeRaftOptions{};
  o.cache_capacity = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = LifeRaftOptions{};
  o.disk.transfer_mb_per_s = -1;
  EXPECT_FALSE(o.Validate().ok());
  o = LifeRaftOptions{};
  o.qos.half_life_parts = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = LifeRaftOptions{};
  o.max_prefetch_depth = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = LifeRaftOptions{};
  o.adaptive_prefetch = true;
  o.prefetch_depth = 8;  // starting depth above the adaptive ceiling
  o.max_prefetch_depth = 4;
  EXPECT_FALSE(o.Validate().ok());
  EXPECT_TRUE(LifeRaftOptions{}.Validate().ok());
}

TEST(LifeRaftCreateTest, CreateRejectsBadOptions) {
  LifeRaftOptions bad;
  bad.alpha = -1;
  EXPECT_FALSE(LifeRaft::Create(TestCatalog(1000, 1), bad).ok());
}

class LifeRaftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto system = LifeRaft::Create(TestCatalog(20'000, 3), SmallOptions());
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = std::move(*system);
  }
  std::unique_ptr<LifeRaft> system_;
};

TEST_F(LifeRaftTest, SubmitAndDrainSingleQuery) {
  auto q = RegionQuery(1, {100, 20}, 2.0, 200, 11);
  ASSERT_TRUE(system_->Submit(q).ok());
  EXPECT_EQ(system_->pending_queries(), 1u);

  std::vector<query::Match> all_matches;
  auto completions = system_->Drain([&](const BatchOutcome& b) {
    all_matches.insert(all_matches.end(), b.matches.begin(),
                       b.matches.end());
  });
  ASSERT_TRUE(completions.ok());
  ASSERT_EQ(completions->size(), 1u);
  EXPECT_EQ((*completions)[0].id, 1u);
  EXPECT_GT((*completions)[0].ResponseMs(), 0.0);
  EXPECT_EQ(system_->pending_queries(), 0u);
  EXPECT_GT(system_->now_ms(), 0.0);
  EXPECT_FALSE(all_matches.empty());
  for (const auto& m : all_matches) EXPECT_EQ(m.query_id, 1u);
}

TEST_F(LifeRaftTest, SubmitValidation) {
  query::CrossMatchQuery empty;
  empty.id = 9;
  EXPECT_FALSE(system_->Submit(empty).ok());
  auto q = RegionQuery(1, {50, -10}, 1.0, 50, 13);
  ASSERT_TRUE(system_->Submit(q).ok());
  EXPECT_EQ(system_->Submit(q).code(), StatusCode::kAlreadyExists);
}

TEST_F(LifeRaftTest, ProcessNextBatchStepwise) {
  auto q = RegionQuery(5, {200, 40}, 3.0, 300, 17);
  ASSERT_TRUE(system_->Submit(q).ok());
  size_t batches = 0;
  for (;;) {
    auto outcome = system_->ProcessNextBatch();
    ASSERT_TRUE(outcome.ok());
    if (!outcome->has_value()) break;
    ++batches;
    EXPECT_GT((**outcome).cost_ms, 0.0);
  }
  EXPECT_GE(batches, 1u);
  EXPECT_EQ(system_->pending_queries(), 0u);
  EXPECT_EQ(system_->completions().size(), 1u);
}

TEST_F(LifeRaftTest, OverlappingQueriesShareBatches) {
  // Two queries over the same region: the evaluator should need fewer
  // batches than processing them separately would.
  auto q1 = RegionQuery(1, {150, 0}, 1.0, 200, 19);
  auto q2 = RegionQuery(2, {150, 0}, 1.0, 200, 23);
  ASSERT_TRUE(system_->Submit(q1).ok());
  ASSERT_TRUE(system_->Submit(q2).ok());
  auto completions = system_->Drain();
  ASSERT_TRUE(completions.ok());
  EXPECT_EQ(completions->size(), 2u);
  // Both queries' workloads went through a shared set of batches: strictly
  // fewer scan batches than the sum of each query's parts.
  EXPECT_LT(system_->evaluator_stats().batches,
            (*completions)[0].id + 100u);  // sanity bound
  EXPECT_GT(system_->cache_stats().hits + system_->cache_stats().misses, 0u);
}

TEST_F(LifeRaftTest, AlphaIsAdjustableAtRuntime) {
  EXPECT_DOUBLE_EQ(system_->alpha(), 0.0);
  system_->set_alpha(0.75);
  EXPECT_DOUBLE_EQ(system_->alpha(), 0.75);
}

TEST_F(LifeRaftTest, VirtualClockAdvancesByBatchCost) {
  auto q = RegionQuery(1, {10, 10}, 1.0, 300, 29);
  ASSERT_TRUE(system_->Submit(q).ok());
  TimeMs before = system_->now_ms();
  auto outcome = system_->ProcessNextBatch();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->has_value());
  EXPECT_DOUBLE_EQ(system_->now_ms(), before + (**outcome).cost_ms);
}

}  // namespace
}  // namespace liferaft::core

namespace liferaft::federation {
namespace {

using core::LifeRaft;
using core::LifeRaftOptions;

// All archives observe the *same* sky (the physical reality cross-match
// exploits): each site's catalog is the shared set of true star positions
// plus per-site astrometric jitter of ~1 arcsec, so matches survive from
// site to site at a few-arcsec radius.
const std::vector<SkyPoint>& TrueStars() {
  static const std::vector<SkyPoint>* stars = [] {
    Rng rng(515);
    auto* v = new std::vector<SkyPoint>();
    for (int i = 0; i < 20'000; ++i) {
      v->push_back(workload::RandomPointInCap(&rng, {180.0, 30.0}, 10.0));
    }
    return v;
  }();
  return *stars;
}

std::unique_ptr<LifeRaft> MakeSite(uint64_t seed) {
  Rng rng(seed);
  std::vector<storage::CatalogObject> objects;
  objects.reserve(TrueStars().size());
  const double jitter_deg = 1.0 / kArcsecPerDeg;
  for (size_t i = 0; i < TrueStars().size(); ++i) {
    SkyPoint p = TrueStars()[i];
    p.ra_deg += rng.Normal(0.0, jitter_deg);
    p.dec_deg += rng.Normal(0.0, jitter_deg);
    objects.push_back(storage::MakeObject(
        i, p, static_cast<float>(rng.UniformDouble(14, 22)),
        static_cast<float>(rng.Normal(0.6, 0.4))));
  }
  LifeRaftOptions options;
  options.objects_per_bucket = 500;
  auto system = LifeRaft::Create(std::move(objects), options);
  EXPECT_TRUE(system.ok());
  return std::move(*system);
}

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(federation_.AddSite("twomass", MakeSite(101)).ok());
    ASSERT_TRUE(federation_.AddSite("sdss", MakeSite(102)).ok());
    ASSERT_TRUE(federation_.AddSite("usnob", MakeSite(103)).ok());
  }
  Federation federation_;
};

TEST_F(FederationTest, RejectsDuplicateAndNullSites) {
  EXPECT_EQ(federation_.AddSite("sdss", MakeSite(104)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(federation_.AddSite("x", nullptr).ok());
  EXPECT_EQ(federation_.num_sites(), 3u);
  EXPECT_NE(federation_.site("sdss"), nullptr);
  EXPECT_EQ(federation_.site("nope"), nullptr);
}

TEST_F(FederationTest, ExecutePlanValidation) {
  CrossMatchPlan plan;
  plan.query_id = 1;
  EXPECT_FALSE(federation_.ExecutePlan(plan).ok());  // no archives
  plan.archives = {"sdss"};
  EXPECT_FALSE(federation_.ExecutePlan(plan).ok());  // no seeds
  plan.seed_objects.push_back(query::MakeQueryObject(0, {10, 10}, 3.0));
  plan.archives = {"unknown"};
  EXPECT_EQ(federation_.ExecutePlan(plan).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FederationTest, SerialCrossMatchNarrowsSurvivors) {
  // Seed with 200 true star positions: at a 5-arcsec radius and ~1-arcsec
  // per-site jitter, nearly all survive every hop.
  CrossMatchPlan plan;
  plan.query_id = 42;
  plan.archives = {"twomass", "sdss", "usnob"};
  plan.radius_arcsec = 5.0;
  for (int i = 0; i < 200; ++i) {
    plan.seed_objects.push_back(
        query::MakeQueryObject(i, TrueStars()[i * 50], 5.0));
  }
  auto result = federation_.ExecutePlan(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->query_id, 42u);
  ASSERT_EQ(result->objects_per_hop.size(), 3u);
  EXPECT_EQ(result->objects_per_hop[0], 200u);
  EXPECT_GT(result->survivors.size(), 150u)
      << "most true stars should survive the full chain";
  EXPECT_LE(result->survivors.size(), 250u);
  EXPECT_GT(result->total_latency_ms, 0.0);
  // The full chain ran: sites advanced their clocks.
  EXPECT_GT(federation_.site("twomass")->now_ms(), 0.0);
  EXPECT_GT(federation_.site("sdss")->now_ms(), 0.0);
}

TEST_F(FederationTest, EmptySurvivorsShortCircuit) {
  // Seeds in a region, tiny radius: almost surely no matches at hop 1, so
  // later hops see no work.
  CrossMatchPlan plan;
  plan.query_id = 7;
  plan.archives = {"twomass", "sdss"};
  plan.radius_arcsec = 0.001;
  plan.seed_objects.push_back(
      query::MakeQueryObject(0, {123.456, -45.678}, 0.001));
  auto result = federation_.ExecutePlan(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->survivors.empty());
  ASSERT_GE(result->objects_per_hop.size(), 1u);
  EXPECT_EQ(result->objects_per_hop[0], 1u);
}

TEST_F(FederationTest, LatencyIncludesNetworkModel) {
  NetworkModel expensive;
  expensive.hop_latency_ms = 10'000.0;
  Federation slow_fed(expensive);
  ASSERT_TRUE(slow_fed.AddSite("a", MakeSite(105)).ok());
  CrossMatchPlan plan;
  plan.query_id = 1;
  plan.archives = {"a"};
  plan.radius_arcsec = 60.0;
  plan.seed_objects.push_back(query::MakeQueryObject(0, {10, 10}, 60.0));
  auto result = slow_fed.ExecutePlan(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->total_latency_ms, 10'000.0);
}

}  // namespace
}  // namespace liferaft::federation
