// Edge-case coverage across modules: degenerate geometry (poles, RA
// wraparound), zones' full-RA fallback, logging levels, metric summaries,
// facade corner states, and misc small behaviours not covered by the main
// suites.

#include <gtest/gtest.h>

#include "core/liferaft.h"
#include "htm/htm.h"
#include "join/merge_join.h"
#include "join/zones.h"
#include "query/query.h"
#include "sim/arrivals.h"
#include "sim/run_metrics.h"
#include "storage/partitioner.h"
#include "util/logging.h"
#include "util/random.h"
#include "workload/catalog_gen.h"

namespace liferaft {
namespace {

// ------------------------------------------------------- polar geometry --

TEST(PolarEdgeTest, ObjectsExactlyAtPolesGetValidIds) {
  for (double dec : {90.0, -90.0}) {
    storage::CatalogObject o = storage::MakeObject(1, {0.0, dec});
    EXPECT_TRUE(htm::IsValidId(o.htm_id));
    EXPECT_EQ(htm::LevelOf(o.htm_id), htm::kObjectLevel);
  }
}

TEST(PolarEdgeTest, QueryObjectAtPoleHasBoundedCover) {
  query::QueryObject qo = query::MakeQueryObject(0, {123.0, 90.0}, 10.0);
  EXPECT_FALSE(qo.htm_ranges.empty());
  EXPECT_LE(qo.htm_ranges.size(), 64u);
  // The pole itself is covered.
  EXPECT_TRUE(qo.htm_ranges.Contains(htm::PointToId(SkyPoint{0.0, 90.0})));
}

TEST(PolarEdgeTest, ZonesMatchesMergeNearPole) {
  // Polar bucket: the zones algorithm must fall back to full-RA scans
  // where cos(dec) collapses, and still agree with the merge join.
  Rng rng(1001);
  std::vector<storage::CatalogObject> objects;
  for (int i = 0; i < 2000; ++i) {
    objects.push_back(storage::MakeObject(
        i, {rng.UniformDouble(0, 360), rng.UniformDouble(88.5, 90.0)}));
  }
  std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);
  storage::Bucket bucket(0,
                         htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                                      htm::LevelMax(htm::kObjectLevel)},
                         objects);
  query::WorkloadEntry entry;
  entry.query_id = 1;
  for (int i = 0; i < 50; ++i) {
    entry.objects.push_back(query::MakeQueryObject(
        i, {rng.UniformDouble(0, 360), rng.UniformDouble(89.0, 90.0)},
        120.0));
  }
  std::vector<query::Match> merge_out, zones_out;
  const std::vector<query::WorkloadEntry> batch = {entry};
  join::MergeCrossMatch(bucket, batch, &merge_out);
  join::ZonesCrossMatch(bucket, batch, 120.0 / kArcsecPerDeg, &zones_out);
  auto key = [](const query::Match& m) {
    return std::tuple(m.query_id, m.query_object_id, m.catalog_object_id);
  };
  std::set<std::tuple<query::QueryId, uint64_t, uint64_t>> a, b;
  for (const auto& m : merge_out) a.insert(key(m));
  for (const auto& m : zones_out) b.insert(key(m));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(RaWrapEdgeTest, MatchesAcrossRaZero) {
  // A query object at RA ~0 must match archive objects at RA ~360.
  auto co = storage::MakeObject(7, {359.9995, 10.0});
  std::vector<storage::CatalogObject> objects = {co};
  storage::Bucket bucket(0,
                         htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                                      htm::LevelMax(htm::kObjectLevel)},
                         objects);
  query::WorkloadEntry entry;
  entry.query_id = 1;
  entry.objects.push_back(query::MakeQueryObject(0, {0.0005, 10.0}, 10.0));
  std::vector<query::Match> merge_out, zones_out;
  const std::vector<query::WorkloadEntry> batch = {entry};
  join::MergeCrossMatch(bucket, batch, &merge_out);
  join::ZonesCrossMatch(bucket, batch, 10.0 / kArcsecPerDeg, &zones_out);
  EXPECT_EQ(merge_out.size(), 1u);
  EXPECT_EQ(zones_out.size(), 1u);
}

// --------------------------------------------------------------- logging --

TEST(LoggingTest, LevelsFilter) {
  LogLevel original = Logger::level();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  // Emitting below the level is a no-op (no crash, nothing observable).
  LIFERAFT_LOG_DEBUG << "suppressed " << 42;
  LIFERAFT_LOG_INFO << "suppressed";
  Logger::SetLevel(LogLevel::kOff);
  LIFERAFT_LOG_ERROR << "also suppressed";
  Logger::SetLevel(original);
}

// ----------------------------------------------------------- run metrics --

TEST(RunMetricsTest, SummaryContainsKeyNumbers) {
  sim::RunMetrics m;
  m.scheduler_name = "liferaft(a=0.25)";
  m.queries_completed = 123;
  m.throughput_qps = 0.4567;
  m.avg_response_ms = 9876.0;
  std::string s = m.Summary();
  EXPECT_NE(s.find("liferaft(a=0.25)"), std::string::npos);
  EXPECT_NE(s.find("123"), std::string::npos);
  EXPECT_NE(s.find("0.4567"), std::string::npos);
}

// ------------------------------------------------------------- arrivals --

TEST(ArrivalsEdgeTest, SingleQuerySchedules) {
  Rng rng(1009);
  EXPECT_EQ(sim::PoissonArrivals(1, 0.5, &rng)->size(), 1u);
  EXPECT_EQ(sim::UniformArrivals(1, 2.0)->size(), 1u);
  EXPECT_EQ(sim::ImmediateArrivals(0).size(), 0u);
}

TEST(ArrivalsEdgeTest, BurstyWithNonzeroOffRate) {
  Rng rng(1013);
  auto arrivals = *sim::BurstyArrivals(500, 2.0, 0.1, 10'000.0, &rng);
  EXPECT_EQ(arrivals.size(), 500u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

// ---------------------------------------------------------------- facade --

TEST(FacadeEdgeTest, DrainWithNoWorkIsEmpty) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 2000;
  gen.seed = 1019;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  core::LifeRaftOptions options;
  options.objects_per_bucket = 500;
  auto system = core::LifeRaft::Create(std::move(*objects), options);
  ASSERT_TRUE(system.ok());
  auto completions = (*system)->Drain();
  ASSERT_TRUE(completions.ok());
  EXPECT_TRUE(completions->empty());
  EXPECT_EQ((*system)->now_ms(), 0.0);
  auto batch = (*system)->ProcessNextBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->has_value());
}

TEST(FacadeEdgeTest, ArrivalStampsNeverGoBackwards) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 5000;
  gen.seed = 1021;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  core::LifeRaftOptions options;
  options.objects_per_bucket = 500;
  auto system = core::LifeRaft::Create(std::move(*objects), options);
  ASSERT_TRUE(system.ok());

  query::CrossMatchQuery q1;
  q1.id = 1;
  q1.objects.push_back(query::MakeQueryObject(0, {50, 10}, 600.0));
  ASSERT_TRUE((*system)->Submit(q1).ok());
  ASSERT_TRUE((*system)->Drain().ok());
  TimeMs now = (*system)->now_ms();
  ASSERT_GT(now, 0.0);

  // A query claiming to have arrived in the past is stamped with now.
  query::CrossMatchQuery q2;
  q2.id = 2;
  q2.arrival_ms = 0.0;
  q2.objects.push_back(query::MakeQueryObject(0, {51, 10}, 600.0));
  ASSERT_TRUE((*system)->Submit(q2).ok());
  auto completions = (*system)->Drain();
  ASSERT_TRUE(completions.ok());
  ASSERT_EQ(completions->size(), 1u);
  EXPECT_GE((*completions)[0].arrival_ms, now);
  EXPECT_GE((*completions)[0].ResponseMs(), 0.0);
}

// -------------------------------------------------------------- geometry --

TEST(GeometryEdgeTest, HugeMatchRadiusStillConservative) {
  // A 2-degree error radius (absurd for astrometry, fine for the API).
  query::QueryObject qo = query::MakeQueryObject(0, {200.0, -45.0}, 7200.0);
  Rng rng(1031);
  SkyPoint center{200.0, -45.0};
  for (int i = 0; i < 300; ++i) {
    SkyPoint p = workload::RandomPointInCap(&rng, center, 2.0);
    EXPECT_TRUE(qo.htm_ranges.Contains(htm::PointToId(p)));
  }
}

TEST(GeometryEdgeTest, ZeroExtentRangeSetIntersections) {
  htm::RangeSet a;
  a.Add(5, 5);  // single id
  EXPECT_TRUE(a.Contains(5));
  EXPECT_EQ(a.Count(), 1u);
  htm::RangeSet b;
  b.Add(5, 5);
  EXPECT_EQ(a.Intersect(b).Count(), 1u);
  b = htm::RangeSet();
  b.Add(6, 6);
  EXPECT_TRUE(a.Intersect(b).empty());
}

TEST(BucketMapEdgeTest, CurveEndpointsResolve) {
  Rng rng(1033);
  std::vector<storage::CatalogObject> objects;
  for (int i = 0; i < 500; ++i) {
    objects.push_back(storage::MakeObject(
        i, {rng.UniformDouble(0, 360), rng.UniformDouble(-80, 80)}));
  }
  auto partition = storage::PartitionCatalog(std::move(objects), 100);
  ASSERT_TRUE(partition.ok());
  const storage::BucketMap& map = *partition->map;
  EXPECT_EQ(map.BucketOf(htm::LevelMin(htm::kObjectLevel)), 0u);
  EXPECT_EQ(map.BucketOf(htm::LevelMax(htm::kObjectLevel)),
            map.num_buckets() - 1);
}

}  // namespace
}  // namespace liferaft
