// Tests for the CasJobs multi-queue baseline and coordinated federation
// execution.

#include <gtest/gtest.h>

#include "federation/federation.h"
#include "sim/arrivals.h"
#include "sim/casjobs.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::sim {
namespace {

class CasJobsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 50'000;
    gen.seed = 901;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;
    auto catalog = storage::Catalog::Build(std::move(*objects), options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);

    // Mixed trace: alternate short (20 objects) and long (600+) queries.
    workload::TraceConfig tc;
    tc.num_queries = 60;
    tc.min_objects_per_query = 300;
    tc.seed = 907;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
    // Every other query becomes genuinely short *and* spatially tiny (one
    // bucket), like an interactive lookup.
    Rng rng(911);
    for (size_t i = 0; i < trace_.size(); i += 2) {
      auto& q = trace_[i];
      q.objects.clear();
      SkyPoint center = workload::RandomSkyPoint(&rng);
      for (int j = 0; j < 20; ++j) {
        q.objects.push_back(query::MakeQueryObject(
            j, workload::RandomPointInCap(&rng, center, 0.05), 3.0));
      }
    }
  }

  std::unique_ptr<storage::Catalog> catalog_;
  std::vector<query::CrossMatchQuery> trace_;
};

TEST_F(CasJobsTest, ClassifiesByThreshold) {
  CasJobsConfig config;
  config.short_threshold_objects = 100;
  auto arrivals = ImmediateArrivals(trace_.size());
  auto metrics = RunCasJobs(catalog_.get(), config, trace_, arrivals);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->short_queries, 30u);
  EXPECT_EQ(metrics->long_queries, 30u);
  EXPECT_EQ(metrics->short_response_ms.count(), 30u);
  EXPECT_EQ(metrics->long_response_ms.count(), 30u);
  EXPECT_GT(metrics->throughput_qps, 0.0);
  EXPECT_GT(metrics->bucket_reads, 0u);
}

TEST_F(CasJobsTest, ShortQueueShieldsShortQueries) {
  // The whole point of CasJobs: short queries don't wait behind long ones.
  CasJobsConfig config;
  config.short_threshold_objects = 100;
  auto arrivals = ImmediateArrivals(trace_.size());
  auto metrics = RunCasJobs(catalog_.get(), config, trace_, arrivals);
  ASSERT_TRUE(metrics.ok());
  EXPECT_LT(metrics->short_response_ms.mean(),
            metrics->long_response_ms.mean() * 0.5);
}

TEST_F(CasJobsTest, ArbitraryThresholdMisclassifies) {
  // The paper's §2 criticism quantified: push the threshold up and the
  // "longest short queries" (now in the short queue) drag the short
  // class's response up.
  auto arrivals = ImmediateArrivals(trace_.size());
  CasJobsConfig tight;
  tight.short_threshold_objects = 100;
  CasJobsConfig loose;
  loose.short_threshold_objects = 5000;  // everything is "short"
  auto m_tight = RunCasJobs(catalog_.get(), tight, trace_, arrivals);
  auto m_loose = RunCasJobs(catalog_.get(), loose, trace_, arrivals);
  ASSERT_TRUE(m_tight.ok() && m_loose.ok());
  EXPECT_EQ(m_loose->long_queries, 0u);
  EXPECT_GT(m_loose->short_response_ms.mean(),
            m_tight->short_response_ms.mean());
}

TEST_F(CasJobsTest, InputValidation) {
  CasJobsConfig config;
  EXPECT_FALSE(RunCasJobs(catalog_.get(), config, trace_, {}).ok());
  EXPECT_FALSE(RunCasJobs(catalog_.get(), config, {}, {}).ok());
}

}  // namespace
}  // namespace liferaft::sim

namespace liferaft::federation {
namespace {

// Shared-sky sites as in test_core.cc, but smaller.
const std::vector<SkyPoint>& Stars() {
  static const auto* stars = [] {
    Rng rng(919);
    auto* v = new std::vector<SkyPoint>();
    for (int i = 0; i < 10'000; ++i) {
      v->push_back(workload::RandomPointInCap(&rng, {90.0, -20.0}, 8.0));
    }
    return v;
  }();
  return *stars;
}

std::unique_ptr<core::LifeRaft> MakeSite(uint64_t seed) {
  Rng rng(seed);
  std::vector<storage::CatalogObject> objects;
  const double jitter = 1.0 / kArcsecPerDeg;
  for (size_t i = 0; i < Stars().size(); ++i) {
    SkyPoint p = Stars()[i];
    p.ra_deg += rng.Normal(0, jitter);
    p.dec_deg += rng.Normal(0, jitter);
    objects.push_back(storage::MakeObject(i, p, 18.0f, 0.5f));
  }
  core::LifeRaftOptions options;
  // Small buckets: the sites' active sets exceed the cache, so shared vs
  // repeated bucket reads are observable.
  options.objects_per_bucket = 100;
  auto system = core::LifeRaft::Create(std::move(objects), options);
  EXPECT_TRUE(system.ok());
  return std::move(*system);
}

CrossMatchPlan MakePlan(query::QueryId id, size_t offset, int n_seeds) {
  CrossMatchPlan plan;
  plan.query_id = id;
  plan.archives = {"a", "b"};
  plan.radius_arcsec = 5.0;
  for (int i = 0; i < n_seeds; ++i) {
    plan.seed_objects.push_back(query::MakeQueryObject(
        i, Stars()[(offset + static_cast<size_t>(i) * 13) % Stars().size()],
        5.0));
  }
  return plan;
}

TEST(CoordinatedFederationTest, MatchesSequentialExecutionResults) {
  std::vector<CrossMatchPlan> plans = {MakePlan(1, 0, 50),
                                       MakePlan(2, 500, 50),
                                       MakePlan(3, 1000, 50)};

  Federation seq;
  ASSERT_TRUE(seq.AddSite("a", MakeSite(101)).ok());
  ASSERT_TRUE(seq.AddSite("b", MakeSite(102)).ok());
  std::vector<std::set<uint64_t>> seq_survivors;
  for (const auto& plan : plans) {
    auto r = seq.ExecutePlan(plan);
    ASSERT_TRUE(r.ok());
    std::set<uint64_t> ids;
    for (const auto& o : r->survivors) ids.insert(o.id);
    seq_survivors.push_back(std::move(ids));
  }

  Federation coord;
  ASSERT_TRUE(coord.AddSite("a", MakeSite(101)).ok());
  ASSERT_TRUE(coord.AddSite("b", MakeSite(102)).ok());
  auto results = coord.ExecutePlansCoordinated(plans);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    std::set<uint64_t> ids;
    for (const auto& o : (*results)[i].survivors) ids.insert(o.id);
    EXPECT_EQ(ids, seq_survivors[i]) << "plan " << i;
    EXPECT_EQ((*results)[i].query_id, plans[i].query_id);
  }
}

TEST(CoordinatedFederationTest, CoordinationSavesBucketReads) {
  // Plans over overlapping sky share bucket reads when coordinated. The
  // plans are large enough that the hybrid strategy scans (queues above
  // the indexed-join threshold).
  std::vector<CrossMatchPlan> plans;
  for (query::QueryId id = 1; id <= 4; ++id) {
    plans.push_back(MakePlan(id, id * 3, 400));  // heavy overlap
  }

  Federation seq;
  ASSERT_TRUE(seq.AddSite("a", MakeSite(103)).ok());
  ASSERT_TRUE(seq.AddSite("b", MakeSite(104)).ok());
  for (const auto& plan : plans) {
    ASSERT_TRUE(seq.ExecutePlan(plan).ok());
  }
  uint64_t seq_reads = seq.TotalBucketReads();

  Federation coord;
  ASSERT_TRUE(coord.AddSite("a", MakeSite(103)).ok());
  ASSERT_TRUE(coord.AddSite("b", MakeSite(104)).ok());
  ASSERT_TRUE(coord.ExecutePlansCoordinated(plans).ok());
  uint64_t coord_reads = coord.TotalBucketReads();

  EXPECT_LT(coord_reads, seq_reads)
      << "coordinated rounds should share bucket reads across plans";
}

TEST(CoordinatedFederationTest, Validation) {
  Federation fed;
  ASSERT_TRUE(fed.AddSite("a", MakeSite(105)).ok());
  EXPECT_FALSE(fed.ExecutePlansCoordinated({}).ok());
  CrossMatchPlan bad;
  bad.query_id = 1;
  bad.archives = {"nope"};
  bad.seed_objects.push_back(query::MakeQueryObject(0, {1, 1}, 3.0));
  EXPECT_EQ(fed.ExecutePlansCoordinated({bad}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace liferaft::federation
