// Tests for the simulation layer: arrival processes and the discrete-event
// engine's semantics in all three execution modes, including the headline
// qualitative results (shared batching beats NoShare; IndexOnly is far
// slower; greedy outruns age-ordered on skewed workloads).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sched/liferaft_scheduler.h"
#include "sched/round_robin.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::sim {
namespace {

// -------------------------------------------------------------- Arrivals --

TEST(ArrivalsTest, PoissonMeanRate) {
  Rng rng(431);
  auto arrivals = *PoissonArrivals(5000, 0.5, &rng);
  ASSERT_EQ(arrivals.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  // 5000 arrivals at 0.5 q/s should span ~10,000 s.
  EXPECT_NEAR(arrivals.back() / 1000.0, 10'000.0, 600.0);
}

TEST(ArrivalsTest, UniformSpacing) {
  auto arrivals = *UniformArrivals(10, 2.0);  // every 500 ms
  ASSERT_EQ(arrivals.size(), 10u);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals[i] - arrivals[i - 1], 500.0);
  }
}

TEST(ArrivalsTest, ImmediateAllZero) {
  auto arrivals = ImmediateArrivals(5);
  for (TimeMs t : arrivals) EXPECT_EQ(t, 0.0);
}

TEST(ArrivalsTest, BurstyIsBurstier) {
  // Coefficient of variation of inter-arrivals: bursty >> Poisson (~1).
  Rng rng1(433), rng2(433);
  auto poisson = *PoissonArrivals(4000, 0.5, &rng1);
  auto bursty = *BurstyArrivals(4000, 2.0, 0.0, 60'000.0, &rng2);
  auto cov = [](const std::vector<TimeMs>& a) {
    StreamingStats s;
    for (size_t i = 1; i < a.size(); ++i) s.Add(a[i] - a[i - 1]);
    return s.coefficient_of_variation();
  };
  EXPECT_NEAR(cov(poisson), 1.0, 0.15);
  EXPECT_GT(cov(bursty), 1.5);
}

TEST(ArrivalsTest, GeneratorsRejectInvalidParameters) {
  // Regression: these were NDEBUG-erased asserts, so Release builds
  // accepted rate 0 / NaN and generated inf timestamps. Now they are
  // InvalidArgument on every build type.
  Rng rng(439);
  EXPECT_FALSE(PoissonArrivals(10, 0.0, &rng).ok());
  EXPECT_FALSE(PoissonArrivals(10, -1.0, &rng).ok());
  EXPECT_FALSE(PoissonArrivals(10, std::nan(""), &rng).ok());
  EXPECT_FALSE(PoissonArrivals(10, 1.0, nullptr).ok());
  EXPECT_FALSE(UniformArrivals(10, 0.0).ok());
  EXPECT_FALSE(UniformArrivals(10, std::nan("")).ok());
  EXPECT_FALSE(BurstyArrivals(10, 0.0, 0.0, 1000.0, &rng).ok());
  EXPECT_FALSE(BurstyArrivals(10, 1.0, -0.5, 1000.0, &rng).ok());
  EXPECT_FALSE(BurstyArrivals(10, 1.0, 0.0, 0.0, &rng).ok());
  EXPECT_FALSE(BurstyArrivals(10, 1.0, 0.0, 1000.0, nullptr).ok());
  auto status = PoissonArrivals(10, 0.0, &rng).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ArrivalsTest, ZeroQueriesYieldEmptyOkVectors) {
  Rng rng(441);
  auto p = PoissonArrivals(0, 0.5, &rng);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->empty());
  auto u = UniformArrivals(0, 0.5);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->empty());
  auto b = BurstyArrivals(0, 0.5, 0.0, 1000.0, &rng);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->empty());
}

TEST(ArrivalsTest, BurstyZeroOffRateKeepsAlternating) {
  // rate_off = 0 means truly silent OFF phases: the generator must jump
  // them (not spin or stall) and keep emitting ON bursts separated by
  // phase-scale gaps.
  Rng rng(443);
  const TimeMs phase_ms = 1'000.0;
  auto arrivals = *BurstyArrivals(2'000, 100.0, 0.0, phase_ms, &rng);
  ASSERT_EQ(arrivals.size(), 2'000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  // ON-phase inter-arrivals are ~10 ms; silent phases insert gaps on the
  // order of the 1 s mean phase length. Over ~20 s of trace there must be
  // several of them.
  size_t phase_gaps = 0;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] - arrivals[i - 1] > phase_ms / 4.0) ++phase_gaps;
  }
  EXPECT_GE(phase_gaps, 3u);
}

TEST(ArrivalsTest, DiurnalPeakBeatsTrough) {
  // The sinusoid puts the peak rate in the first half of each period and
  // the trough in the second (sin > 0 on [0, period/2)). Binning arrivals
  // by half-period must show the swing: with amplitude 0.9 the peak half
  // carries rate ~1.57x base and the trough half ~0.43x on average.
  Rng rng(445);
  const TimeMs period_ms = 100'000.0;
  auto arrivals = *DiurnalArrivals(6'000, 1.0, 0.9, period_ms, &rng);
  ASSERT_EQ(arrivals.size(), 6'000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  size_t peak = 0, trough = 0;
  for (TimeMs t : arrivals) {
    double phase = std::fmod(t, period_ms) / period_ms;
    (phase < 0.5 ? peak : trough) += 1;
  }
  EXPECT_GT(static_cast<double>(peak), 2.0 * static_cast<double>(trough));
}

TEST(ArrivalsTest, DiurnalZeroAmplitudeMatchesPoissonRate) {
  // amplitude 0 degenerates to a homogeneous Poisson process (thinning
  // accepts everything): same mean rate as PoissonArrivals even though
  // the draw sequences differ.
  Rng rng(447);
  auto arrivals = *DiurnalArrivals(5'000, 0.5, 0.0, 3'600'000.0, &rng);
  EXPECT_NEAR(arrivals.back() / 1000.0, 10'000.0, 600.0);
}

TEST(ArrivalsTest, FlashCrowdSpikesThenDecays) {
  // Windows of one decay constant each: before the spike the rate is the
  // 0.2 q/s base; in the first window after spike_start it approaches
  // base * spike_factor; a few constants later it is back near base.
  Rng rng(449);
  const double base = 0.2, factor = 10.0;
  const TimeMs start_ms = 200'000.0, decay_ms = 100'000.0;
  auto arrivals = *FlashCrowdArrivals(2'000, base, factor, start_ms,
                                      decay_ms, &rng);
  ASSERT_EQ(arrivals.size(), 2'000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  auto rate_in = [&](TimeMs from, TimeMs to) {
    size_t n = 0;
    for (TimeMs t : arrivals) n += t >= from && t < to;
    return static_cast<double>(n) / ((to - from) / 1000.0);
  };
  double before = rate_in(0.0, start_ms);
  double spike = rate_in(start_ms, start_ms + decay_ms);
  double after = rate_in(start_ms + 5.0 * decay_ms,
                         start_ms + 10.0 * decay_ms);
  EXPECT_NEAR(before, base, 0.1);
  EXPECT_GT(spike, 3.0 * base);   // mean over the window ~0.63 * peak
  EXPECT_LT(after, 2.0 * base);   // decayed back toward base
  EXPECT_GT(spike, 2.0 * after);
}

TEST(ArrivalsTest, NonHomogeneousGeneratorsAreSeedDeterministic) {
  Rng a1(451), a2(451), b(452);
  EXPECT_EQ(*DiurnalArrivals(500, 1.0, 0.5, 60'000.0, &a1),
            *DiurnalArrivals(500, 1.0, 0.5, 60'000.0, &a2));
  EXPECT_NE(*DiurnalArrivals(500, 1.0, 0.5, 60'000.0, &b),
            *DiurnalArrivals(500, 1.0, 0.5, 60'000.0, &a1));
  Rng c1(453), c2(453);
  EXPECT_EQ(*FlashCrowdArrivals(500, 0.5, 8.0, 60'000.0, 120'000.0, &c1),
            *FlashCrowdArrivals(500, 0.5, 8.0, 60'000.0, 120'000.0, &c2));
}

TEST(ArrivalsTest, NonHomogeneousGeneratorsRejectInvalidParameters) {
  Rng rng(455);
  EXPECT_FALSE(DiurnalArrivals(10, 0.0, 0.5, 60'000.0, &rng).ok());
  EXPECT_FALSE(DiurnalArrivals(10, 1.0, -0.1, 60'000.0, &rng).ok());
  EXPECT_FALSE(DiurnalArrivals(10, 1.0, 1.5, 60'000.0, &rng).ok());
  EXPECT_FALSE(DiurnalArrivals(10, 1.0, 0.5, 0.0, &rng).ok());
  EXPECT_FALSE(DiurnalArrivals(10, 1.0, 0.5, 60'000.0, nullptr).ok());
  EXPECT_FALSE(
      FlashCrowdArrivals(10, 0.0, 8.0, 60'000.0, 120'000.0, &rng).ok());
  EXPECT_FALSE(
      FlashCrowdArrivals(10, 1.0, 0.5, 60'000.0, 120'000.0, &rng).ok());
  EXPECT_FALSE(
      FlashCrowdArrivals(10, 1.0, 8.0, -1.0, 120'000.0, &rng).ok());
  EXPECT_FALSE(FlashCrowdArrivals(10, 1.0, 8.0, 60'000.0, 0.0, &rng).ok());
  EXPECT_FALSE(
      FlashCrowdArrivals(10, 1.0, 8.0, 60'000.0, 120'000.0, nullptr).ok());
}

// ---------------------------------------------------------------- Engine --

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 50'000;
    gen.seed = 21;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;  // 50 buckets
    auto catalog = storage::Catalog::Build(std::move(*objects), options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);

    workload::TraceConfig tc;
    tc.num_queries = 60;
    tc.max_objects_per_query = 1500;
    // Wide match radius so the sparse 50k-object test catalog yields real
    // matches (50k objects over the full sky is ~1 per sq deg).
    tc.match_radius_arcsec = 900.0;
    tc.seed = 23;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
  }

  std::unique_ptr<sched::Scheduler> LifeRaftSched(double alpha) {
    sched::LifeRaftConfig config;
    config.alpha = alpha;
    return std::make_unique<sched::LifeRaftScheduler>(
        catalog_->store(), storage::DiskModel{}, config);
  }

  RunMetrics MustRun(SimEngine* engine,
                     const std::vector<TimeMs>& arrivals) {
    auto metrics = engine->Run(trace_, arrivals);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return *metrics;
  }

  std::unique_ptr<storage::Catalog> catalog_;
  std::vector<query::CrossMatchQuery> trace_;
};

TEST_F(EngineFixture, SharedRunCompletesEveryQuery) {
  EngineConfig config;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.0), config);
  auto metrics = MustRun(&engine, ImmediateArrivals(trace_.size()));
  EXPECT_EQ(metrics.queries_completed, trace_.size());
  EXPECT_EQ(engine.outcomes().size(), trace_.size());
  EXPECT_GT(metrics.makespan_ms, 0.0);
  EXPECT_GT(metrics.throughput_qps, 0.0);
  for (const QueryOutcome& o : engine.outcomes()) {
    EXPECT_GE(o.completion_ms, o.arrival_ms);
    EXPECT_GE(o.parts, 1u);
  }
}

TEST_F(EngineFixture, ResponsesRespectArrivalTimes) {
  EngineConfig config;
  Rng rng(437);
  auto arrivals = *PoissonArrivals(trace_.size(), 0.2, &rng);
  SimEngine engine(catalog_.get(), LifeRaftSched(0.5), config);
  auto metrics = MustRun(&engine, arrivals);
  EXPECT_EQ(metrics.queries_completed, trace_.size());
  for (const QueryOutcome& o : engine.outcomes()) {
    EXPECT_GT(o.ResponseMs(), 0.0);
  }
  // Makespan can't be shorter than the last arrival.
  EXPECT_GE(metrics.makespan_ms, arrivals.back());
}

TEST_F(EngineFixture, RejectsMalformedInput) {
  EngineConfig config;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.0), config);
  // Size mismatch.
  EXPECT_FALSE(engine.Run(trace_, ImmediateArrivals(3)).ok());
  // Unsorted arrivals.
  std::vector<TimeMs> bad(trace_.size(), 0.0);
  bad.back() = -5.0;
  EXPECT_FALSE(engine.Run(trace_, bad).ok());
  // Empty trace.
  EXPECT_FALSE(engine.Run({}, {}).ok());
  // Shared mode without scheduler.
  SimEngine no_sched(catalog_.get(), nullptr, config);
  EXPECT_FALSE(no_sched.Run(trace_, ImmediateArrivals(trace_.size())).ok());
}

TEST_F(EngineFixture, SharedBeatsNoShareOnThroughput) {
  // The paper's headline: batch processing with I/O sharing vs NoShare is
  // a >= 2x throughput win on a skewed workload.
  EngineConfig shared_config;
  SimEngine shared(catalog_.get(), LifeRaftSched(0.0), shared_config);
  auto shared_metrics = MustRun(&shared, ImmediateArrivals(trace_.size()));

  EngineConfig noshare_config;
  noshare_config.mode = ExecutionMode::kNoShare;
  SimEngine noshare(catalog_.get(), nullptr, noshare_config);
  auto noshare_metrics = MustRun(&noshare, ImmediateArrivals(trace_.size()));

  EXPECT_GT(shared_metrics.throughput_qps,
            noshare_metrics.throughput_qps * 1.5)
      << "shared: " << shared_metrics.Summary()
      << "\nnoshare: " << noshare_metrics.Summary();
  // NoShare performs strictly more bucket reads.
  EXPECT_GT(noshare_metrics.store.bucket_reads,
            shared_metrics.store.bucket_reads);
}

TEST_F(EngineFixture, IndexOnlyIsFarSlower) {
  // Paper §5: index-exclusive evaluation is ~7x slower than even NoShare.
  EngineConfig noshare_config;
  noshare_config.mode = ExecutionMode::kNoShare;
  SimEngine noshare(catalog_.get(), nullptr, noshare_config);
  auto noshare_metrics = MustRun(&noshare, ImmediateArrivals(trace_.size()));

  EngineConfig index_config;
  index_config.mode = ExecutionMode::kIndexOnly;
  SimEngine indexonly(catalog_.get(), nullptr, index_config);
  auto index_metrics = MustRun(&indexonly, ImmediateArrivals(trace_.size()));

  EXPECT_GT(noshare_metrics.throughput_qps,
            index_metrics.throughput_qps * 2.0);
}

TEST_F(EngineFixture, MatchesIdenticalAcrossModes) {
  // Scheduling must not change join results: total matches are equal in
  // every mode and for every scheduler.
  EngineConfig c1;
  SimEngine e1(catalog_.get(), LifeRaftSched(0.0), c1);
  auto m1 = MustRun(&e1, ImmediateArrivals(trace_.size()));

  EngineConfig c2;
  SimEngine e2(catalog_.get(), std::make_unique<sched::RoundRobinScheduler>(),
               c2);
  auto m2 = MustRun(&e2, ImmediateArrivals(trace_.size()));

  EngineConfig c3;
  c3.mode = ExecutionMode::kNoShare;
  SimEngine e3(catalog_.get(), nullptr, c3);
  auto m3 = MustRun(&e3, ImmediateArrivals(trace_.size()));

  EngineConfig c4;
  c4.mode = ExecutionMode::kIndexOnly;
  SimEngine e4(catalog_.get(), nullptr, c4);
  auto m4 = MustRun(&e4, ImmediateArrivals(trace_.size()));

  EXPECT_EQ(m1.total_matches, m2.total_matches);
  EXPECT_EQ(m1.total_matches, m3.total_matches);
  EXPECT_EQ(m1.total_matches, m4.total_matches);
  EXPECT_GT(m1.total_matches, 0u);
}

TEST_F(EngineFixture, GreedySchedulerGetsMoreCacheHits) {
  // §6 discussion: the contention-based scheduler serves far more requests
  // from cache than the age-based one.
  EngineConfig config;
  Rng rng(443);
  auto arrivals = *PoissonArrivals(trace_.size(), 0.5, &rng);

  SimEngine greedy(catalog_.get(), LifeRaftSched(0.0), config);
  auto greedy_metrics = MustRun(&greedy, arrivals);
  SimEngine aged(catalog_.get(), LifeRaftSched(1.0), config);
  auto aged_metrics = MustRun(&aged, arrivals);

  EXPECT_GT(greedy_metrics.cache.HitRate(), aged_metrics.cache.HitRate());
}

TEST_F(EngineFixture, AdaptiveAlphaFollowsSaturation) {
  // With curves saying "low rate -> alpha 1, high rate -> alpha 0", the
  // engine must steer the scheduler's alpha by the observed arrival rate.
  sched::AlphaSelector selector(0.2);
  ASSERT_TRUE(selector
                  .AddCurve(0.05, {{0.0, 0.2, 100'000.0},
                                   {1.0, 0.19, 30'000.0}})
                  .ok());
  ASSERT_TRUE(selector
                  .AddCurve(5.0, {{0.0, 0.5, 300'000.0},
                                  {1.0, 0.2, 200'000.0}})
                  .ok());

  EngineConfig config;
  config.alpha_selector = &selector;
  config.rate_window_ms = 1e9;  // rate over whole run

  {  // Slow arrivals -> nearest curve 0.05 -> alpha 1.
    SimEngine engine(catalog_.get(), LifeRaftSched(0.5), config);
    Rng rng(449);
    auto arrivals = *PoissonArrivals(trace_.size(), 0.05, &rng);
    MustRun(&engine, arrivals);
    auto* s = dynamic_cast<sched::LifeRaftScheduler*>(engine.scheduler());
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->alpha(), 1.0);
  }
  {  // Fast arrivals -> nearest curve 5.0 -> alpha 0.
    SimEngine engine(catalog_.get(), LifeRaftSched(0.5), config);
    Rng rng(457);
    auto arrivals = *PoissonArrivals(trace_.size(), 10.0, &rng);
    MustRun(&engine, arrivals);
    auto* s = dynamic_cast<sched::LifeRaftScheduler*>(engine.scheduler());
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->alpha(), 0.0);
  }
}

TEST_F(EngineFixture, ReusableForMultipleRuns) {
  EngineConfig config;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.25), config);
  auto m1 = MustRun(&engine, ImmediateArrivals(trace_.size()));
  auto m2 = MustRun(&engine, ImmediateArrivals(trace_.size()));
  // Deterministic replay: identical results both times.
  EXPECT_DOUBLE_EQ(m1.makespan_ms, m2.makespan_ms);
  EXPECT_EQ(m1.total_matches, m2.total_matches);
  EXPECT_EQ(m1.store.bucket_reads, m2.store.bucket_reads);
}

TEST_F(EngineFixture, HybridJoinEngagesForSparseQueues) {
  // At low saturation with an age-biased scheduler, small queues should
  // sometimes take the indexed path (Fig 8b's mechanism).
  EngineConfig config;
  Rng rng(461);
  auto arrivals = *PoissonArrivals(trace_.size(), 0.05, &rng);
  SimEngine engine(catalog_.get(), LifeRaftSched(1.0), config);
  auto metrics = MustRun(&engine, arrivals);
  EXPECT_GT(metrics.evaluator.indexed_batches, 0u)
      << "expected some indexed joins for sparse queues";
  EXPECT_GT(metrics.evaluator.scan_batches, 0u);
}

}  // namespace
}  // namespace liferaft::sim
