// Format-identity tests for the columnar v2 bucket pages: the SAME catalog
// written in the row v1 and columnar v2 formats — and held in memory —
// must drive the simulation engine to byte-identical results. The
// RunMetricsJson string (every double %.17g) is the digest: two runs agree
// in it iff they agree bit for bit. Covered across the grid that changes
// cache/topology behavior (cache shards x volumes), for both the closed
// drain and continuous serving, plus the v1 auto-detect regression and the
// byte-budget cache advantage of the compressed format.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "sim/run_metrics.h"
#include "sim/serve.h"
#include "storage/catalog.h"
#include "storage/file_store.h"
#include "storage/partitioner.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft {
namespace {

constexpr size_t kObjects = 20'000;
constexpr size_t kPerBucket = 500;

class ColumnarIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = std::filesystem::temp_directory_path() /
                ("liferaft_columnar_" + std::to_string(::getpid()));
    v1_path_ = base.string() + ".v1.lfr";
    v2_path_ = base.string() + ".v2.lfr";

    workload::CatalogGenConfig gen;
    gen.num_objects = kObjects;
    gen.seed = 907;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    objects_ = std::move(*objects);

    auto partition = storage::PartitionCatalog(objects_, kPerBucket);
    ASSERT_TRUE(partition.ok());
    ASSERT_TRUE(storage::FileStore::Create(v1_path_, partition->buckets,
                                           storage::BucketFormat::kRowV1)
                    .ok());
    ASSERT_TRUE(storage::FileStore::Create(v2_path_, partition->buckets,
                                           storage::BucketFormat::kColumnarV2)
                    .ok());

    workload::TraceConfig tc;
    tc.num_queries = 24;
    tc.seed = 911;
    tc.match_radius_arcsec = 900.0;
    tc.max_objects_per_query = 1500;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
  }

  void TearDown() override {
    std::filesystem::remove(v1_path_);
    std::filesystem::remove(v2_path_);
  }

  // A catalog over the given on-disk file (with B+tree, so hybrid and
  // IndexOnly paths work).
  std::unique_ptr<storage::Catalog> OpenCatalog(const std::string& path) {
    auto store = storage::FileStore::Open(path);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto catalog = storage::Catalog::FromStore(std::move(*store));
    EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
    return std::move(*catalog);
  }

  std::unique_ptr<storage::Catalog> MemCatalog() {
    storage::CatalogOptions options;
    options.objects_per_bucket = kPerBucket;
    auto catalog = storage::Catalog::Build(objects_, options);
    EXPECT_TRUE(catalog.ok());
    return std::move(*catalog);
  }

  sim::RunMetrics Drain(storage::Catalog* catalog,
                        const sim::EngineConfig& config) {
    auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
        catalog->store(), storage::DiskModel{}, sched::LifeRaftConfig{});
    sim::SimEngine engine(catalog, std::move(scheduler), config);
    auto metrics =
        engine.Run(trace_, sim::ImmediateArrivals(trace_.size()));
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return std::move(*metrics);
  }

  sim::RunMetrics Serve(storage::Catalog* catalog,
                        const sim::EngineConfig& config) {
    auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
        catalog->store(), storage::DiskModel{}, sched::LifeRaftConfig{});
    sim::SimEngine engine(catalog, std::move(scheduler), config);
    sim::ServeConfig serve;
    serve.arrivals.kind = sim::ArrivalSpec::Kind::kPoisson;
    serve.arrivals.rate_qps = 0.5;
    serve.arrivals.seed = 919;
    auto metrics = engine.Serve(trace_, serve);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return std::move(*metrics);
  }

  std::vector<storage::CatalogObject> objects_;
  std::vector<query::CrossMatchQuery> trace_;
  std::string v1_path_;
  std::string v2_path_;
};

// The tentpole claim: the on-disk page format is invisible to every result
// and every modeled cost. Swept over the axes that alter cache eviction
// and I/O interleaving (shards x volumes x prefetch).
TEST_F(ColumnarIdentityTest, DrainMetricsAreFormatIdentical) {
  for (size_t shards : {size_t{1}, size_t{2}}) {
    for (size_t volumes : {size_t{1}, size_t{2}}) {
      sim::EngineConfig config;
      config.cache_capacity = 8;
      config.cache_shards = shards;
      config.topology.num_volumes = volumes;
      if (volumes > 1) {
        config.enable_prefetch = true;
        config.prefetch_depth = 2;
      }
      auto mem_catalog = MemCatalog();
      auto v1_catalog = OpenCatalog(v1_path_);
      auto v2_catalog = OpenCatalog(v2_path_);
      std::string mem = sim::RunMetricsJson(Drain(mem_catalog.get(), config));
      std::string v1 = sim::RunMetricsJson(Drain(v1_catalog.get(), config));
      std::string v2 = sim::RunMetricsJson(Drain(v2_catalog.get(), config));
      EXPECT_EQ(v1, v2) << "shards=" << shards << " volumes=" << volumes;
      EXPECT_EQ(mem, v1) << "shards=" << shards << " volumes=" << volumes;
    }
  }
}

TEST_F(ColumnarIdentityTest, DrainMatchesAreFormatIdentical) {
  sim::EngineConfig config;
  config.cache_capacity = 8;
  config.collect_matches = true;
  auto v1_catalog = OpenCatalog(v1_path_);
  auto v2_catalog = OpenCatalog(v2_path_);
  sim::RunMetrics v1 = Drain(v1_catalog.get(), config);
  sim::RunMetrics v2 = Drain(v2_catalog.get(), config);
  EXPECT_GT(v1.total_matches, 0u);
  EXPECT_EQ(v1.total_matches, v2.total_matches);
  EXPECT_EQ(sim::RunMetricsJson(v1), sim::RunMetricsJson(v2));
}

TEST_F(ColumnarIdentityTest, ServeMetricsAreFormatIdentical) {
  sim::EngineConfig config;
  config.cache_capacity = 8;
  config.enable_prefetch = true;
  config.prefetch_depth = 2;
  auto v1_catalog = OpenCatalog(v1_path_);
  auto v2_catalog = OpenCatalog(v2_path_);
  std::string v1 = sim::RunMetricsJson(Serve(v1_catalog.get(), config));
  std::string v2 = sim::RunMetricsJson(Serve(v2_catalog.get(), config));
  EXPECT_EQ(v1, v2);
}

// Regression: a pre-existing v1 file keeps working with zero caller
// changes — Open auto-detects the version.
TEST_F(ColumnarIdentityTest, RowV1FilesRemainReadable) {
  auto store = storage::FileStore::Open(v1_path_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->format(), storage::BucketFormat::kRowV1);
  auto catalog = storage::Catalog::FromStore(std::move(*store));
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ((*catalog)->num_objects(), kObjects);
}

// At a fixed cache byte budget the compressed pages keep more buckets
// resident, so the v2 run's hit rate must not be worse — and with the
// budget chosen between the two formats' working sets, strictly better.
TEST_F(ColumnarIdentityTest, ByteBudgetCacheFavorsColumnar) {
  sim::EngineConfig config;
  config.cache_capacity = 9999;  // pure byte budget
  // ~8 v1 pages (40 KB each) vs ~12+ v2 pages (<27 KB each).
  config.cache_capacity_bytes = 8 * kPerBucket * 80;
  auto v1_catalog = OpenCatalog(v1_path_);
  auto v2_catalog = OpenCatalog(v2_path_);
  sim::RunMetrics v1 = Drain(v1_catalog.get(), config);
  sim::RunMetrics v2 = Drain(v2_catalog.get(), config);
  EXPECT_GE(v2.cache.HitRate(), v1.cache.HitRate());
  EXPECT_LE(v2.makespan_ms, v1.makespan_ms);
}

}  // namespace
}  // namespace liferaft
