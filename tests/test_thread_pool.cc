// Tests for util::ThreadPool and for the determinism contract of the
// parallel kShared execution path: a pool-backed run must be
// indistinguishable — match-for-match, batch-for-batch, tick-for-tick —
// from the paper's single-threaded scheduler loop.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/liferaft.h"
#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::util {
namespace {

TEST(ThreadPoolTest, StartupShutdownIsClean) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  pool.Shutdown();  // explicit
  ThreadPool implicit(2);
  (void)implicit;  // destructor path
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ResultsIndependentOfExecutionOrder) {
  // Futures hand each task's value back to its submission slot, so the
  // caller-visible result vector is ordered however the caller indexes it,
  // not however the workers raced.
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("worker failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, IdleWorkerStealsFromBlockedSiblingQueue) {
  // Submit distributes round-robin across per-worker queues, so with two
  // workers half of these tasks land in the queue of the worker that is
  // parked on the gate task. They can only complete while the gate is
  // held if the idle sibling steals them — this deadline-free wait is the
  // stealing assertion.
  ThreadPool pool(2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocked = pool.Submit([opened] { opened.wait(); });
  std::atomic<int> ran{0};
  std::vector<std::future<void>> rest;
  for (int i = 0; i < 16; ++i) {
    rest.push_back(pool.Submit([&ran] { ++ran; }));
  }
  for (auto& f : rest) f.get();  // completes only if stealing works
  EXPECT_EQ(ran.load(), 16);
  gate.set_value();
  blocked.get();
}

TEST(ThreadPoolTest, SkewedTaskSizesAllComplete) {
  // A few huge tasks next to many tiny ones (the skewed-entry-slice shape
  // work stealing exists for): everything runs exactly once, results keyed
  // by submission slot.
  ThreadPool pool(4);
  std::vector<std::future<uint64_t>> futures;
  for (int i = 0; i < 64; ++i) {
    const uint64_t spin = (i % 16 == 0) ? 200'000 : 100;
    futures.push_back(pool.Submit([spin] {
      uint64_t acc = 1;
      for (uint64_t k = 0; k < spin; ++k) acc = acc * 6364136223846793005ull + 1;
      return acc;
    }));
  }
  for (auto& f : futures) {
    EXPECT_NE(f.get(), 0u);
  }
}

TEST(ThreadPoolTest, PerWorkerArenasAreDistinctAndOffPoolIsNull) {
  // The owner thread is not a worker: no arena.
  EXPECT_EQ(ThreadPool::CurrentArena(), nullptr);
  ThreadPool pool(3);
  // Every worker sees its own arena, and it is one of the pool's.
  std::set<util::Arena*> seen;
  std::mutex mu;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(pool.Submit([&] {
      util::Arena* arena = ThreadPool::CurrentArena();
      ASSERT_NE(arena, nullptr);
      void* p = arena->Allocate(64, 8);
      ASSERT_NE(p, nullptr);
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(arena);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 3u);
  for (util::Arena* arena : seen) {
    bool owned = false;
    for (size_t i = 0; i < pool.num_threads(); ++i) {
      if (arena == &pool.arena(i)) owned = true;
    }
    EXPECT_TRUE(owned);
  }
  // Batch-boundary reset reclaims every worker's allocations.
  pool.ResetArenas();
  for (size_t i = 0; i < pool.num_threads(); ++i) {
    EXPECT_LE(pool.arena(i).num_blocks(), 1u);
  }
}

// ------------------------------------------------- Parallel determinism --

bool SameMatch(const query::Match& a, const query::Match& b) {
  return a.query_id == b.query_id &&
         a.query_object_id == b.query_object_id &&
         a.catalog_object_id == b.catalog_object_id &&
         a.separation_arcsec == b.separation_arcsec &&
         a.ra_deg == b.ra_deg && a.dec_deg == b.dec_deg;
}

class ParallelSharedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 30'000;
    gen.seed = 21;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    catalog_objects_ = std::move(*objects);

    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;  // 30 buckets
    auto catalog = storage::Catalog::Build(catalog_objects_, options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);

    workload::TraceConfig tc;
    tc.num_queries = 40;
    tc.max_objects_per_query = 1200;
    tc.match_radius_arcsec = 900.0;
    tc.seed = 23;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
  }

  std::unique_ptr<sched::Scheduler> LifeRaftSched() {
    sched::LifeRaftConfig config;
    config.alpha = 0.25;
    return std::make_unique<sched::LifeRaftScheduler>(
        catalog_->store(), storage::DiskModel{}, config);
  }

  std::vector<storage::CatalogObject> catalog_objects_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::vector<query::CrossMatchQuery> trace_;
};

TEST_F(ParallelSharedFixture, EngineParallelMatchesSerialExactly) {
  sim::EngineConfig serial_config;
  serial_config.collect_matches = true;
  serial_config.num_threads = 1;
  sim::SimEngine serial(catalog_.get(), LifeRaftSched(), serial_config);
  Rng rng(97);
  auto arrivals = *sim::PoissonArrivals(trace_.size(), 2.0, &rng);
  auto serial_metrics = serial.Run(trace_, arrivals);
  ASSERT_TRUE(serial_metrics.ok()) << serial_metrics.status().ToString();

  sim::EngineConfig parallel_config = serial_config;
  parallel_config.num_threads = 4;
  sim::SimEngine parallel(catalog_.get(), LifeRaftSched(), parallel_config);
  auto parallel_metrics = parallel.Run(trace_, arrivals);
  ASSERT_TRUE(parallel_metrics.ok()) << parallel_metrics.status().ToString();

  // Tick-for-tick identical clocks and aggregate results.
  EXPECT_EQ(serial_metrics->makespan_ms, parallel_metrics->makespan_ms);
  EXPECT_EQ(serial_metrics->total_matches, parallel_metrics->total_matches);
  EXPECT_EQ(serial_metrics->evaluator.batches,
            parallel_metrics->evaluator.batches);
  EXPECT_EQ(serial_metrics->evaluator.scan_batches,
            parallel_metrics->evaluator.scan_batches);
  EXPECT_EQ(serial_metrics->cache.hits, parallel_metrics->cache.hits);
  EXPECT_EQ(serial_metrics->cache.misses, parallel_metrics->cache.misses);

  // Completion-order identical outcomes.
  ASSERT_EQ(serial.outcomes().size(), parallel.outcomes().size());
  for (size_t i = 0; i < serial.outcomes().size(); ++i) {
    const sim::QueryOutcome& s = serial.outcomes()[i];
    const sim::QueryOutcome& p = parallel.outcomes()[i];
    EXPECT_EQ(s.id, p.id) << "completion order diverged at " << i;
    EXPECT_EQ(s.completion_ms, p.completion_ms);
    EXPECT_EQ(s.matches, p.matches);
  }
}

void ExpectIdenticalRuns(const sim::RunMetrics& a, const sim::RunMetrics& b,
                         const sim::SimEngine& ea, const sim::SimEngine& eb) {
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.total_matches, b.total_matches);
  EXPECT_EQ(a.peak_pending_objects, b.peak_pending_objects);
  EXPECT_EQ(a.store.bucket_reads, b.store.bucket_reads);
  EXPECT_EQ(a.store.bytes_read, b.store.bytes_read);
  EXPECT_EQ(a.store.objects_read, b.store.objects_read);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  ASSERT_EQ(ea.outcomes().size(), eb.outcomes().size());
  for (size_t i = 0; i < ea.outcomes().size(); ++i) {
    const sim::QueryOutcome& s = ea.outcomes()[i];
    const sim::QueryOutcome& p = eb.outcomes()[i];
    EXPECT_EQ(s.id, p.id) << "completion order diverged at " << i;
    EXPECT_EQ(s.arrival_ms, p.arrival_ms);
    EXPECT_EQ(s.completion_ms, p.completion_ms);
    EXPECT_EQ(s.matches, p.matches);
  }
}

// Per-worker match arenas change only where slice matches are stored
// before the in-order merge; runs with arenas on and off must be
// byte-identical in every virtual quantity and every outcome, in shared
// and per-query modes alike.
TEST_F(ParallelSharedFixture, MatchArenasOnOffAreByteIdentical) {
  Rng rng(97);
  auto arrivals = *sim::PoissonArrivals(trace_.size(), 2.0, &rng);
  for (sim::ExecutionMode mode :
       {sim::ExecutionMode::kShared, sim::ExecutionMode::kNoShare}) {
    SCOPED_TRACE(sim::ExecutionModeName(mode));
    sim::EngineConfig config;
    config.mode = mode;
    config.collect_matches = true;
    config.num_threads = 4;
    config.match_arenas = true;
    sim::SimEngine with_arenas(
        catalog_.get(),
        mode == sim::ExecutionMode::kShared ? LifeRaftSched() : nullptr,
        config);
    auto on = with_arenas.Run(trace_, arrivals);
    ASSERT_TRUE(on.ok()) << on.status().ToString();

    config.match_arenas = false;
    sim::SimEngine without_arenas(
        catalog_.get(),
        mode == sim::ExecutionMode::kShared ? LifeRaftSched() : nullptr,
        config);
    auto off = without_arenas.Run(trace_, arrivals);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    ExpectIdenticalRuns(*on, *off, with_arenas, without_arenas);
  }
}

// The per-query baselines are embarrassingly parallel across queries; a
// pool-backed run must reproduce the serial FIFO accounting byte for byte:
// same virtual clock, same I/O charges, same peak workload buffering.
TEST_F(ParallelSharedFixture, EngineParallelNoShareMatchesSerialExactly) {
  sim::EngineConfig config;
  config.mode = sim::ExecutionMode::kNoShare;
  config.collect_matches = true;
  Rng rng(131);
  auto arrivals = *sim::PoissonArrivals(trace_.size(), 2.0, &rng);

  sim::SimEngine serial(catalog_.get(), nullptr, config);
  auto serial_metrics = serial.Run(trace_, arrivals);
  ASSERT_TRUE(serial_metrics.ok()) << serial_metrics.status().ToString();

  config.num_threads = 4;
  sim::SimEngine parallel(catalog_.get(), nullptr, config);
  auto parallel_metrics = parallel.Run(trace_, arrivals);
  ASSERT_TRUE(parallel_metrics.ok()) << parallel_metrics.status().ToString();

  ExpectIdenticalRuns(*serial_metrics, *parallel_metrics, serial, parallel);
}

TEST_F(ParallelSharedFixture, EngineParallelIndexOnlyMatchesSerialExactly) {
  sim::EngineConfig config;
  config.mode = sim::ExecutionMode::kIndexOnly;
  config.collect_matches = true;
  Rng rng(137);
  auto arrivals = *sim::PoissonArrivals(trace_.size(), 2.0, &rng);

  sim::SimEngine serial(catalog_.get(), nullptr, config);
  auto serial_metrics = serial.Run(trace_, arrivals);
  ASSERT_TRUE(serial_metrics.ok()) << serial_metrics.status().ToString();

  config.num_threads = 4;
  sim::SimEngine parallel(catalog_.get(), nullptr, config);
  auto parallel_metrics = parallel.Run(trace_, arrivals);
  ASSERT_TRUE(parallel_metrics.ok()) << parallel_metrics.status().ToString();

  ExpectIdenticalRuns(*serial_metrics, *parallel_metrics, serial, parallel);
}

// ---------------------------------------------- Cross-batch prefetching --

// Pipelining hides (part of) the next bucket's T_b behind the current
// batch's T_m matching time, so the virtual makespan must shrink while the
// join results stay exact.
TEST_F(ParallelSharedFixture, PrefetchPipelineReducesVirtualMakespan) {
  sim::EngineConfig config;
  config.collect_matches = true;
  // Saturated drain: with every query queued at t=0 the makespan is pure
  // busy time, so hidden fetch latency translates directly into makespan
  // (an open system at low load absorbs the savings into idle gaps).
  std::vector<TimeMs> arrivals(trace_.size(), 0.0);

  sim::SimEngine base(catalog_.get(), LifeRaftSched(), config);
  auto base_metrics = base.Run(trace_, arrivals);
  ASSERT_TRUE(base_metrics.ok()) << base_metrics.status().ToString();

  config.enable_prefetch = true;
  sim::SimEngine pipelined(catalog_.get(), LifeRaftSched(), config);
  auto pipe_metrics = pipelined.Run(trace_, arrivals);
  ASSERT_TRUE(pipe_metrics.ok()) << pipe_metrics.status().ToString();

  EXPECT_EQ(pipe_metrics->queries_completed, base_metrics->queries_completed);
  EXPECT_EQ(pipe_metrics->total_matches, base_metrics->total_matches);
  EXPECT_GT(pipe_metrics->cache.prefetch_issued, 0u);
  EXPECT_GT(pipe_metrics->cache.prefetch_claims, 0u);
  EXPECT_GT(pipe_metrics->prefetch_hidden_ms, 0.0);
  EXPECT_LT(pipe_metrics->makespan_ms, base_metrics->makespan_ms);
}

// The pipeline's virtual-clock accounting is independent of where the
// physical read runs (synchronously or on a worker), so a prefetch run is
// byte-identical across thread counts.
TEST_F(ParallelSharedFixture, PrefetchRunIdenticalAcrossThreadCounts) {
  sim::EngineConfig config;
  config.collect_matches = true;
  config.enable_prefetch = true;
  Rng rng(149);
  auto arrivals = *sim::PoissonArrivals(trace_.size(), 2.0, &rng);

  sim::SimEngine sync(catalog_.get(), LifeRaftSched(), config);
  auto sync_metrics = sync.Run(trace_, arrivals);
  ASSERT_TRUE(sync_metrics.ok()) << sync_metrics.status().ToString();

  config.num_threads = 4;
  sim::SimEngine async(catalog_.get(), LifeRaftSched(), config);
  auto async_metrics = async.Run(trace_, arrivals);
  ASSERT_TRUE(async_metrics.ok()) << async_metrics.status().ToString();

  ExpectIdenticalRuns(*sync_metrics, *async_metrics, sync, async);
  EXPECT_EQ(sync_metrics->cache.prefetch_issued,
            async_metrics->cache.prefetch_issued);
  EXPECT_EQ(sync_metrics->cache.prefetch_claims,
            async_metrics->cache.prefetch_claims);
  EXPECT_EQ(sync_metrics->prefetch_hidden_ms,
            async_metrics->prefetch_hidden_ms);
}

TEST_F(ParallelSharedFixture, FacadeParallelBatchesAreByteIdentical) {
  core::LifeRaftOptions options;
  options.objects_per_bucket = 1000;
  auto serial = core::LifeRaft::Create(catalog_objects_, options);
  ASSERT_TRUE(serial.ok());

  options.num_threads = 4;
  auto parallel = core::LifeRaft::Create(catalog_objects_, options);
  ASSERT_TRUE(parallel.ok());

  for (const auto& q : trace_) {
    ASSERT_TRUE((*serial)->Submit(q).ok());
    ASSERT_TRUE((*parallel)->Submit(q).ok());
  }

  // Drive both systems batch by batch: every scheduled bucket, strategy,
  // modeled cost, completion set, and match list must agree.
  size_t batches = 0;
  for (;;) {
    auto s = (*serial)->ProcessNextBatch();
    auto p = (*parallel)->ProcessNextBatch();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    ASSERT_EQ(s->has_value(), p->has_value());
    if (!s->has_value()) break;
    ++batches;
    EXPECT_EQ((*s)->bucket, (*p)->bucket);
    EXPECT_EQ((*s)->strategy, (*p)->strategy);
    EXPECT_EQ((*s)->cache_hit, (*p)->cache_hit);
    EXPECT_EQ((*s)->cost_ms, (*p)->cost_ms);
    EXPECT_EQ((*s)->completed, (*p)->completed);
    ASSERT_EQ((*s)->matches.size(), (*p)->matches.size());
    for (size_t i = 0; i < (*s)->matches.size(); ++i) {
      EXPECT_TRUE(SameMatch((*s)->matches[i], (*p)->matches[i]))
          << "bucket " << (*s)->bucket << " match " << i;
    }
  }
  EXPECT_GT(batches, 0u);
  EXPECT_EQ((*serial)->now_ms(), (*parallel)->now_ms());
  ASSERT_EQ((*serial)->completions().size(),
            (*parallel)->completions().size());
  for (size_t i = 0; i < (*serial)->completions().size(); ++i) {
    EXPECT_EQ((*serial)->completions()[i].id,
              (*parallel)->completions()[i].id);
    EXPECT_EQ((*serial)->completions()[i].completion_ms,
              (*parallel)->completions()[i].completion_ms);
  }
}

}  // namespace
}  // namespace liferaft::util
