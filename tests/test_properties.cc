// Property-based tests: randomized cross-validation of core invariants
// against brute-force reference implementations, plus edge cases that the
// unit suites don't reach (duplicate keys, degenerate partitions, known
// CRC vectors, serialization round trips).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "htm/cover.h"
#include "htm/htm.h"
#include "htm/range_set.h"
#include "storage/partitioner.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/random.h"
#include "workload/catalog_gen.h"

namespace liferaft {
namespace {

// ----------------------------------------------------------------- CRC32 --

TEST(Crc32Test, KnownVectors) {
  // Standard zlib CRC-32 test vectors.
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32(data, sizeof(data) - 1);
  uint32_t part = Crc32(data, 10);
  part = Crc32(data + 10, sizeof(data) - 1 - 10, part);
  EXPECT_EQ(whole, part);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  Rng rng(601);
  std::string data(256, '\0');
  for (auto& c : data) c = static_cast<char>(rng.Next() & 0xFF);
  uint32_t original = Crc32(data.data(), data.size());
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupted = data;
    size_t byte = rng.UniformU64(corrupted.size());
    corrupted[byte] ^= static_cast<char>(1u << rng.UniformU64(8));
    EXPECT_NE(Crc32(corrupted.data(), corrupted.size()), original);
  }
}

// ---------------------------------------------------------------- Coding --

TEST(CodingTest, FixedWidthRoundTrips) {
  Rng rng(607);
  for (int i = 0; i < 200; ++i) {
    uint32_t v32 = static_cast<uint32_t>(rng.Next());
    uint64_t v64 = rng.Next();
    double vd = rng.Normal(0, 1e12);
    float vf = static_cast<float>(rng.Normal(0, 1e6));
    std::string buf;
    PutFixed32(&buf, v32);
    PutFixed64(&buf, v64);
    PutDouble(&buf, vd);
    PutFloat(&buf, vf);
    ASSERT_EQ(buf.size(), 4u + 8u + 8u + 4u);
    EXPECT_EQ(GetFixed32(buf.data()), v32);
    EXPECT_EQ(GetFixed64(buf.data() + 4), v64);
    EXPECT_DOUBLE_EQ(GetDouble(buf.data() + 12), vd);
    EXPECT_FLOAT_EQ(GetFloat(buf.data() + 20), vf);
  }
}

TEST(CodingTest, LittleEndianLayout) {
  std::string buf;
  PutFixed32(&buf, 0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(CodingTest, SpecialFloatValues) {
  std::string buf;
  PutDouble(&buf, std::numeric_limits<double>::infinity());
  PutDouble(&buf, -0.0);
  EXPECT_EQ(GetDouble(buf.data()), std::numeric_limits<double>::infinity());
  EXPECT_EQ(GetDouble(buf.data() + 8), 0.0);
  EXPECT_TRUE(std::signbit(GetDouble(buf.data() + 8)));
}

// ------------------------------------------------- RangeSet vs reference --

// Reference implementation: explicit set of IDs (small universes only).
class ReferenceSet {
 public:
  void Add(uint64_t lo, uint64_t hi) {
    for (uint64_t v = lo; v <= hi; ++v) ids_.insert(v);
  }
  bool Contains(uint64_t v) const { return ids_.count(v) > 0; }
  bool Overlaps(uint64_t lo, uint64_t hi) const {
    auto it = ids_.lower_bound(lo);
    return it != ids_.end() && *it <= hi;
  }
  uint64_t Count() const { return ids_.size(); }
  std::set<uint64_t> ids_;
};

class RangeSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeSetPropertyTest, MatchesReferenceUnderRandomOps) {
  Rng rng(GetParam());
  const uint64_t universe = 200;
  htm::RangeSet actual;
  ReferenceSet expected;
  for (int op = 0; op < 60; ++op) {
    uint64_t a = rng.UniformU64(universe);
    uint64_t b = rng.UniformU64(universe);
    if (a > b) std::swap(a, b);
    actual.Add(a, b);
    expected.Add(a, b);
  }
  EXPECT_EQ(actual.Count(), expected.Count());
  for (uint64_t v = 0; v < universe; ++v) {
    EXPECT_EQ(actual.Contains(v), expected.Contains(v)) << "id " << v;
  }
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t a = rng.UniformU64(universe);
    uint64_t b = rng.UniformU64(universe);
    if (a > b) std::swap(a, b);
    EXPECT_EQ(actual.Overlaps(a, b), expected.Overlaps(a, b));
  }
  // Normalization invariants: sorted, disjoint, non-adjacent.
  const auto& ranges = actual.ranges();
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].lo, ranges[i - 1].hi + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSetPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(RangeSetPropertyTest, IntersectMatchesReference) {
  Rng rng(613);
  for (int trial = 0; trial < 20; ++trial) {
    htm::RangeSet a, b;
    ReferenceSet ra, rb;
    for (int op = 0; op < 20; ++op) {
      uint64_t x = rng.UniformU64(100), y = rng.UniformU64(100);
      if (x > y) std::swap(x, y);
      if (op % 2) {
        a.Add(x, y);
        ra.Add(x, y);
      } else {
        b.Add(x, y);
        rb.Add(x, y);
      }
    }
    auto inter = a.Intersect(b);
    for (uint64_t v = 0; v < 100; ++v) {
      EXPECT_EQ(inter.Contains(v), ra.Contains(v) && rb.Contains(v));
    }
  }
}

// ------------------------------------------- Partitioner degenerate cases --

TEST(PartitionerEdgeTest, AllObjectsAtSamePosition) {
  // Duplicate HTM IDs must never straddle a bucket boundary, so a catalog
  // of identical positions collapses into one bucket.
  std::vector<storage::CatalogObject> objects;
  for (int i = 0; i < 1000; ++i) {
    objects.push_back(storage::MakeObject(i, {123.0, 45.0}));
  }
  auto result = storage::PartitionCatalog(std::move(objects), 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->buckets.size(), 1u);
  EXPECT_EQ(result->buckets[0].size(), 1000u);
}

TEST(PartitionerEdgeTest, HeavyDuplicateRunsKeepIdsTogether) {
  Rng rng(617);
  std::vector<storage::CatalogObject> objects;
  // 50 distinct positions x 40 objects each.
  for (int p = 0; p < 50; ++p) {
    SkyPoint pos{rng.UniformDouble(0, 360), rng.UniformDouble(-80, 80)};
    for (int i = 0; i < 40; ++i) {
      objects.push_back(
          storage::MakeObject(static_cast<uint64_t>(p * 40 + i), pos));
    }
  }
  auto result = storage::PartitionCatalog(std::move(objects), 100);
  ASSERT_TRUE(result.ok());
  // No HTM ID appears in two buckets.
  std::map<htm::HtmId, std::set<storage::BucketIndex>> where;
  for (const auto& b : result->buckets) {
    for (const auto& o : b.objects()) where[o.htm_id].insert(b.index());
  }
  for (const auto& [id, buckets] : where) {
    EXPECT_EQ(buckets.size(), 1u) << "HTM ID " << id << " split";
  }
}

TEST(PartitionerEdgeTest, SingleObjectCatalog) {
  auto result = storage::PartitionCatalog(
      {storage::MakeObject(0, {10, 10})}, 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->buckets.size(), 1u);
  // The single bucket still owns the whole curve.
  EXPECT_EQ(result->map->RangeOf(0).lo, htm::LevelMin(htm::kObjectLevel));
  EXPECT_EQ(result->map->RangeOf(0).hi, htm::LevelMax(htm::kObjectLevel));
}

TEST(PartitionerEdgeTest, BucketSizeLargerThanCatalog) {
  auto objects = [] {
    Rng rng(619);
    std::vector<storage::CatalogObject> v;
    for (int i = 0; i < 50; ++i) {
      v.push_back(storage::MakeObject(
          i, {rng.UniformDouble(0, 360), rng.UniformDouble(-80, 80)}));
    }
    return v;
  }();
  auto result = storage::PartitionCatalog(std::move(objects), 1'000'000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->buckets.size(), 1u);
  EXPECT_EQ(result->buckets[0].size(), 50u);
}

// --------------------------------------- Cover/point-location cross-check --

class CoverPointAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverPointAgreementTest, EveryCoveredCenterIsNearTheCap) {
  // Soundness direction of covers (the inverse of conservativeness): the
  // center of every covered trixel must lie within radius + trixel size of
  // the cap center — covers cannot wander off to unrelated sky.
  const int level = GetParam();
  Rng rng(631 + level);
  for (int trial = 0; trial < 20; ++trial) {
    SkyPoint center{rng.UniformDouble(0, 360), rng.UniformDouble(-85, 85)};
    double radius = rng.UniformDouble(0.1, 5.0);
    auto cover = htm::CoverCircle(center, radius, level);
    // Level-L trixels are at most ~90/2^L degrees across.
    double slack = 180.0 / std::pow(2.0, level) + 0.5;
    for (const auto& r : cover.ranges()) {
      for (htm::HtmId id = r.lo; id <= r.hi;
           id += std::max<uint64_t>(1, r.Count() / 8)) {
        SkyPoint c = htm::IdToCenter(id);
        EXPECT_LE(AngularSeparationDeg(center, c), radius + slack)
            << "covered trixel far outside cap at level " << level;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, CoverPointAgreementTest,
                         ::testing::Values(4, 6, 8, 10));

// -------------------------------------------------- Catalog distributions --

TEST(CatalogDistributionTest, UniformCatalogIsAreaUniform) {
  // With cluster_fraction = 0, the 8 root trixels (equal area) should hold
  // roughly equal counts.
  workload::CatalogGenConfig gen;
  gen.num_objects = 80'000;
  gen.cluster_fraction = 0.0;
  gen.seed = 641;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  std::map<htm::HtmId, size_t> roots;
  for (const auto& o : *objects) ++roots[htm::AncestorAt(o.htm_id, 0)];
  ASSERT_EQ(roots.size(), 8u);
  for (const auto& [root, count] : roots) {
    EXPECT_NEAR(static_cast<double>(count), 10'000.0, 500.0)
        << "root " << htm::IdToName(root);
  }
}

TEST(CatalogDistributionTest, MagnitudesWithinConfiguredRange) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 2000;
  gen.mag_min = 10.0f;
  gen.mag_max = 12.0f;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  for (const auto& o : *objects) {
    EXPECT_GE(o.mag, 10.0f);
    EXPECT_LE(o.mag, 12.0f);
  }
}

}  // namespace
}  // namespace liferaft
