// Unit tests for spherical geometry: vector math, coordinate conversions,
// angular separation, caps.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/spherical.h"
#include "geom/vec3.h"
#include "util/random.h"

namespace liferaft {
namespace {

TEST(Vec3Test, BasicOps) {
  Vec3 a{1, 0, 0}, b{0, 1, 0};
  EXPECT_EQ(a.Dot(b), 0.0);
  EXPECT_EQ(a.Cross(b), (Vec3{0, 0, 1}));
  EXPECT_EQ((a + b), (Vec3{1, 1, 0}));
  EXPECT_EQ((a - b), (Vec3{1, -1, 0}));
  EXPECT_EQ((a * 3.0), (Vec3{3, 0, 0}));
  EXPECT_DOUBLE_EQ((a + b).Norm(), std::sqrt(2.0));
}

TEST(Vec3Test, NormalizedIsUnit) {
  Vec3 v{3, 4, 12};
  EXPECT_NEAR(v.Normalized().Norm(), 1.0, 1e-15);
}

TEST(Vec3Test, NormalizedZeroIsIdentity) {
  Vec3 z{0, 0, 0};
  EXPECT_EQ(z.Normalized(), z);
}

TEST(Vec3Test, AngleBetweenOrthogonal) {
  EXPECT_NEAR(AngleBetween({1, 0, 0}, {0, 1, 0}), M_PI / 2, 1e-15);
}

TEST(Vec3Test, AngleBetweenTinyAnglesAccurate) {
  // acos-based formulas lose precision here; atan2 must not.
  double eps = 1e-8;
  Vec3 a{1, 0, 0};
  Vec3 b = Vec3{1, eps, 0}.Normalized();
  EXPECT_NEAR(AngleBetween(a, b), eps, 1e-15);
}

TEST(Vec3Test, AngleBetweenAntipodal) {
  EXPECT_NEAR(AngleBetween({1, 0, 0}, {-1, 0, 0}), M_PI, 1e-12);
}

TEST(SphericalTest, RoundTripSkyToVector) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    SkyPoint p;
    p.ra_deg = rng.UniformDouble(0.0, 360.0);
    p.dec_deg = rng.UniformDouble(-89.9, 89.9);
    SkyPoint q = UnitVectorToSky(SkyToUnitVector(p));
    EXPECT_NEAR(p.ra_deg, q.ra_deg, 1e-9);
    EXPECT_NEAR(p.dec_deg, q.dec_deg, 1e-9);
  }
}

TEST(SphericalTest, PolesMapToZ) {
  EXPECT_NEAR(SkyToUnitVector({12.0, 90.0}).z, 1.0, 1e-15);
  EXPECT_NEAR(SkyToUnitVector({270.0, -90.0}).z, -1.0, 1e-15);
}

TEST(SphericalTest, KnownSeparations) {
  // 90 degrees along the equator.
  EXPECT_NEAR(AngularSeparationDeg({0, 0}, {90, 0}), 90.0, 1e-12);
  // Equator to pole.
  EXPECT_NEAR(AngularSeparationDeg({45, 0}, {123, 90}), 90.0, 1e-12);
  // Small separation in declination is exact.
  EXPECT_NEAR(AngularSeparationArcsec({10, 20}, {10, 20.001}), 3.6, 1e-6);
}

TEST(SphericalTest, RaSeparationScalesByCosDec) {
  // At dec=60, 1 degree of RA is 0.5 degrees of arc (approximately).
  double sep = AngularSeparationDeg({0, 60}, {1, 60});
  EXPECT_NEAR(sep, 0.5, 0.01);
}

TEST(CapTest, ContainsCenterAndBoundary) {
  Cap cap = MakeCap({180, 45}, 2.0);
  EXPECT_TRUE(cap.Contains(SkyToUnitVector({180, 45})));
  EXPECT_TRUE(cap.Contains(SkyToUnitVector({180, 46.999})));
  EXPECT_TRUE(cap.Contains(SkyToUnitVector({180, 47.0})));  // on boundary
  EXPECT_FALSE(cap.Contains(SkyToUnitVector({180, 47.01})));
  EXPECT_FALSE(cap.Contains(SkyToUnitVector({0, -45})));
}

TEST(CapTest, ContainmentMatchesAngularDistance) {
  Rng rng(43);
  Cap cap = MakeCap({200, -30}, 5.0);
  SkyPoint center{200, -30};
  for (int i = 0; i < 2000; ++i) {
    SkyPoint p{rng.UniformDouble(0, 360), rng.UniformDouble(-90, 90)};
    bool in = cap.Contains(SkyToUnitVector(p));
    double d = AngularSeparationDeg(center, p);
    if (d < 4.999) {
      EXPECT_TRUE(in) << "d=" << d;
    }
    if (d > 5.001) {
      EXPECT_FALSE(in) << "d=" << d;
    }
  }
}

}  // namespace
}  // namespace liferaft
