// Tests for the HTM substrate: ID arithmetic, trixel geometry, point
// location, range sets, and cone covers. Cover conservativeness is the key
// system invariant: a cover must never miss a trixel containing a point of
// the cap.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geom/spherical.h"
#include "htm/cover.h"
#include "htm/htm.h"
#include "htm/htm_id.h"
#include "htm/range_set.h"
#include "htm/trixel.h"
#include "util/random.h"

namespace liferaft::htm {
namespace {

// ----------------------------------------------------------------- HtmId --

TEST(HtmIdTest, RootsAreLevelZero) {
  for (HtmId id = 8; id <= 15; ++id) {
    EXPECT_TRUE(IsValidId(id));
    EXPECT_EQ(LevelOf(id), 0);
  }
}

TEST(HtmIdTest, InvalidIds) {
  for (HtmId id = 0; id < 8; ++id) EXPECT_FALSE(IsValidId(id));
  // 16..31 have odd "level width" (bit_width 5) -> invalid.
  EXPECT_FALSE(IsValidId(16));
  EXPECT_FALSE(IsValidId(31));
  EXPECT_TRUE(IsValidId(32));  // 8 << 2: first level-1 ID
}

TEST(HtmIdTest, ChildParentRoundTrip) {
  HtmId id = 11;
  for (int c = 0; c < 4; ++c) {
    HtmId child = ChildOf(id, c);
    EXPECT_EQ(LevelOf(child), 1);
    EXPECT_EQ(ParentOf(child), id);
  }
}

TEST(HtmIdTest, LevelRanges) {
  // Level-14 IDs span [8*4^14, 16*4^14), i.e. [2^31, 2^32).
  EXPECT_EQ(LevelMin(14), HtmId{1} << 31);
  EXPECT_EQ(LevelMax(14), (HtmId{1} << 32) - 1);
  EXPECT_EQ(LevelOf(LevelMin(14)), 14);
  EXPECT_EQ(LevelOf(LevelMax(14)), 14);
}

TEST(HtmIdTest, DescendantRangeCoversExactlyChildren) {
  HtmId id = 9;
  HtmId lo = RangeLo(id, 2);
  HtmId hi = RangeHi(id, 2);
  EXPECT_EQ(hi - lo + 1, 16u);  // 4^2 descendants
  for (int c1 = 0; c1 < 4; ++c1) {
    for (int c2 = 0; c2 < 4; ++c2) {
      HtmId leaf = ChildOf(ChildOf(id, c1), c2);
      EXPECT_GE(leaf, lo);
      EXPECT_LE(leaf, hi);
    }
  }
}

TEST(HtmIdTest, AncestorInvertsRangeLo) {
  HtmId id = 13;
  HtmId deep = RangeLo(id, 10);
  EXPECT_EQ(AncestorAt(deep, 0), id);
}

TEST(HtmIdTest, NameRoundTrip) {
  EXPECT_EQ(IdToName(8), "S0");
  EXPECT_EQ(IdToName(15), "N3");
  EXPECT_EQ(IdToName(ChildOf(ChildOf(12, 1), 3)), "N013");
  for (HtmId id : {HtmId{8}, HtmId{15}, ChildOf(ChildOf(10, 2), 0),
                   RangeLo(14, 6)}) {
    auto parsed = NameToId(IdToName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
}

TEST(HtmIdTest, NameParsingErrors) {
  EXPECT_FALSE(NameToId("").ok());
  EXPECT_FALSE(NameToId("X0").ok());
  EXPECT_FALSE(NameToId("N4").ok());
  EXPECT_FALSE(NameToId("N05").ok());
}

// ---------------------------------------------------------------- Trixel --

TEST(TrixelTest, RootsTileTheSphere) {
  // Every random point must be inside at least one root trixel.
  Rng rng(47);
  for (int i = 0; i < 5000; ++i) {
    Vec3 p = Vec3{rng.Normal(), rng.Normal(), rng.Normal()}.Normalized();
    int hits = 0;
    for (int r = 0; r < kNumRoots; ++r) {
      if (Trixel::Root(r).Contains(p)) ++hits;
    }
    EXPECT_GE(hits, 1);
  }
}

TEST(TrixelTest, ChildrenTileParent) {
  Rng rng(53);
  Trixel parent = Trixel::Root(5);
  for (int i = 0; i < 2000; ++i) {
    Vec3 p = Vec3{rng.Normal(), rng.Normal(), rng.Normal()}.Normalized();
    if (!parent.Contains(p)) continue;
    int hits = 0;
    for (int c = 0; c < 4; ++c) {
      if (parent.Child(c).Contains(p)) ++hits;
    }
    EXPECT_GE(hits, 1) << "point in parent missed by all children";
  }
}

TEST(TrixelTest, ChildrenStayInsideParentBoundingCap) {
  Trixel parent = Trixel::Root(2);
  Cap bound = parent.BoundingCap();
  for (int c = 0; c < 4; ++c) {
    Trixel child = parent.Child(c);
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(bound.Contains(child.v(i)));
    }
  }
}

TEST(TrixelTest, FromIdMatchesDescent) {
  Trixel t = Trixel::Root(6).Child(2).Child(1).Child(3);
  Trixel u = Trixel::FromId(t.id());
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR((t.v(i) - u.v(i)).Norm(), 0.0, 1e-15);
  }
}

TEST(TrixelTest, BoundingCapContainsWholeTrixel) {
  Rng rng(59);
  Trixel t = Trixel::FromId(RangeLo(9, 3) + 37);
  Cap cap = t.BoundingCap();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(cap.Contains(t.v(i)));
  // Random interior points (blend of corners) must also be inside.
  for (int i = 0; i < 500; ++i) {
    double a = rng.UniformDouble(), b = rng.UniformDouble(0, 1 - a);
    Vec3 p = (t.v(0) * a + t.v(1) * b + t.v(2) * (1 - a - b)).Normalized();
    EXPECT_TRUE(cap.Contains(p));
  }
}

// --------------------------------------------------------- Point location --

class PointToIdTest : public ::testing::TestWithParam<int> {};

TEST_P(PointToIdTest, LookupLandsInContainingTrixel) {
  const int level = GetParam();
  Rng rng(61 + level);
  for (int i = 0; i < 1000; ++i) {
    Vec3 p = Vec3{rng.Normal(), rng.Normal(), rng.Normal()}.Normalized();
    HtmId id = PointToId(p, level);
    EXPECT_TRUE(IsValidId(id));
    EXPECT_EQ(LevelOf(id), level);
    EXPECT_TRUE(Trixel::FromId(id).Contains(p))
        << "point not inside its assigned trixel at level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, PointToIdTest,
                         ::testing::Values(0, 1, 3, 6, 10, 14));

TEST(PointToIdTest, DeterministicOnBoundaries) {
  // Octahedron vertices sit on many trixel boundaries; lookup must still
  // return a single consistent answer.
  for (const Vec3& v : {Vec3{0, 0, 1}, Vec3{1, 0, 0}, Vec3{0, -1, 0}}) {
    HtmId a = PointToId(v, 8);
    HtmId b = PointToId(v, 8);
    EXPECT_EQ(a, b);
  }
}

TEST(PointToIdTest, Level14FitsIn32Bits) {
  Rng rng(67);
  for (int i = 0; i < 200; ++i) {
    Vec3 p = Vec3{rng.Normal(), rng.Normal(), rng.Normal()}.Normalized();
    HtmId id = PointToId(p, kObjectLevel);
    EXPECT_LT(id, HtmId{1} << 32);
    EXPECT_GE(id, HtmId{1} << 31);
  }
}

TEST(PointToIdTest, SpatialLocalityAlongCurve) {
  // Nearby points should mostly share a deep ancestor: the space-filling
  // property the bucket partitioning depends on.
  Rng rng(71);
  int shared_ancestor = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    SkyPoint p{rng.UniformDouble(0, 360), rng.UniformDouble(-80, 80)};
    SkyPoint q{p.ra_deg + 0.001, p.dec_deg + 0.001};
    HtmId a = PointToId(p, 14), b = PointToId(q, 14);
    if (AncestorAt(a, 8) == AncestorAt(b, 8)) ++shared_ancestor;
  }
  // Not all pairs share (boundary effects), but the vast majority must.
  EXPECT_GT(shared_ancestor, trials * 0.9);
}

TEST(IdToCenterTest, CenterMapsBackToSameTrixel) {
  Rng rng(73);
  for (int i = 0; i < 300; ++i) {
    Vec3 p = Vec3{rng.Normal(), rng.Normal(), rng.Normal()}.Normalized();
    HtmId id = PointToId(p, 10);
    SkyPoint c = IdToCenter(id);
    EXPECT_EQ(PointToId(c, 10), id);
  }
}

// -------------------------------------------------------------- RangeSet --

TEST(RangeSetTest, MergesOverlappingAndAdjacent) {
  RangeSet s;
  s.Add(10, 20);
  s.Add(15, 30);   // overlaps
  s.Add(31, 40);   // adjacent
  s.Add(100, 110); // separate
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ranges()[0], (IdRange{10, 40}));
  EXPECT_EQ(s.ranges()[1], (IdRange{100, 110}));
  EXPECT_EQ(s.Count(), 31u + 11u);
}

TEST(RangeSetTest, ContainsAndOverlaps) {
  RangeSet s;
  s.Add(10, 20);
  s.Add(40, 50);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(20));
  EXPECT_FALSE(s.Contains(21));
  EXPECT_FALSE(s.Contains(9));
  EXPECT_TRUE(s.Overlaps(18, 45));
  EXPECT_TRUE(s.Overlaps(0, 10));
  EXPECT_FALSE(s.Overlaps(21, 39));
  EXPECT_FALSE(s.Overlaps(51, 60));
}

TEST(RangeSetTest, IntersectBasics) {
  RangeSet a, b;
  a.Add(0, 100);
  b.Add(50, 150);
  auto c = a.Intersect(b);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.ranges()[0], (IdRange{50, 100}));
}

TEST(RangeSetTest, IntersectMultipleFragments) {
  RangeSet a, b;
  a.Add(0, 10);
  a.Add(20, 30);
  a.Add(40, 50);
  b.Add(5, 45);
  auto c = a.Intersect(b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.ranges()[0], (IdRange{5, 10}));
  EXPECT_EQ(c.ranges()[1], (IdRange{20, 30}));
  EXPECT_EQ(c.ranges()[2], (IdRange{40, 45}));
}

TEST(RangeSetTest, EmptyIntersect) {
  RangeSet a, b;
  a.Add(0, 10);
  EXPECT_TRUE(a.Intersect(b).empty());
  EXPECT_TRUE(b.Intersect(a).empty());
}

// ----------------------------------------------------------------- Cover --

class CoverTest : public ::testing::TestWithParam<double> {};

TEST_P(CoverTest, CoverIsConservative) {
  // Any point inside the cap must land in a covered trixel.
  const double radius = GetParam();
  Rng rng(79);
  const int level = 8;
  SkyPoint center{33.0, 21.0};
  RangeSet cover = CoverCircle(center, radius, level);
  EXPECT_FALSE(cover.empty());
  for (int i = 0; i < 2000; ++i) {
    // Rejection-sample points inside the cap.
    SkyPoint p{center.ra_deg + rng.UniformDouble(-2 * radius, 2 * radius),
               center.dec_deg + rng.UniformDouble(-2 * radius, 2 * radius)};
    if (AngularSeparationDeg(center, p) > radius) continue;
    HtmId id = PointToId(p, level);
    EXPECT_TRUE(cover.Contains(id))
        << "point inside cap not covered, radius " << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, CoverTest,
                         ::testing::Values(0.01, 0.1, 1.0, 5.0, 20.0));

TEST(CoverTest, CoverIsTight) {
  // The cover should not be wildly larger than the cap: compare covered
  // area (trixel count / total trixels) against cap area.
  const int level = 10;
  const double radius = 2.0;
  RangeSet cover = CoverCircle({100, -40}, radius, level);
  double total_trixels =
      static_cast<double>(LevelMax(level) - LevelMin(level) + 1);
  double covered_frac = static_cast<double>(cover.Count()) / total_trixels;
  double cap_frac = (1 - std::cos(radius * kDegToRad)) / 2.0;
  EXPECT_LT(covered_frac, cap_frac * 4.0)
      << "cover more than 4x the cap area";
}

TEST(CoverTest, TinyCapCoversFewTrixels) {
  // A 1-arcsecond error circle at level 14 should touch only a handful of
  // trixels (level-14 trixels are ~10 arcsec across).
  RangeSet cover = CoverCircle({210.0, 5.0}, 1.0 / 3600.0, 14);
  EXPECT_GE(cover.Count(), 1u);
  EXPECT_LE(cover.Count(), 16u);
}

TEST(CoverTest, FullSkyCapCoversEverything) {
  RangeSet cover = CoverCap(Cap{{0, 0, 1}, 180.0}, 4);
  EXPECT_EQ(cover.Count(), LevelMax(4) - LevelMin(4) + 1);
}

TEST(CoverTest, MaxRangesBoundsOutputButStaysConservative) {
  SkyPoint center{33.0, 21.0};
  const int level = 12;
  RangeSet bounded = CoverCircle(center, 3.0, level, 8);
  RangeSet full = CoverCircle(center, 3.0, level);
  // Bounded cover must be a superset of the exact cover.
  for (const auto& r : full.ranges()) {
    for (HtmId id = r.lo; id <= r.hi && id - r.lo < 100; ++id) {
      EXPECT_TRUE(bounded.Contains(id));
    }
  }
}

TEST(ClassifyTrixelTest, FullWhenCapHuge) {
  Trixel t = Trixel::Root(0).Child(1);
  Cap cap{t.Centroid(), 170.0};
  EXPECT_EQ(ClassifyTrixel(t, cap), Coverage::kFull);
}

TEST(ClassifyTrixelTest, DisjointWhenFarAway) {
  Trixel t = Trixel::FromId(PointToId(SkyPoint{0, 80}, 6));
  Cap cap = MakeCap({180, -80}, 1.0);
  EXPECT_EQ(ClassifyTrixel(t, cap), Coverage::kDisjoint);
}

TEST(ClassifyTrixelTest, PartialWhenCapInsideTrixel) {
  Trixel t = Trixel::Root(3);
  Cap cap{t.Centroid(), 0.5};
  EXPECT_EQ(ClassifyTrixel(t, cap), Coverage::kPartial);
}

}  // namespace
}  // namespace liferaft::htm
