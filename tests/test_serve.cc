// Tests for the continuous-serving layer: arrival-spec validation and
// materialization, QoS classification, admission control / load shedding,
// the thread-safety contract of AdmissionController, serving-vs-closed-run
// equivalence, and the per-class / per-arm serving telemetry.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "sim/serve.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::sim {
namespace {

// ---------------------------------------------------------- ArrivalSpec --

TEST(ArrivalSpecTest, ValidatesPerKind) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kPoisson;
  spec.rate_qps = 0.0;
  EXPECT_FALSE(spec.Validate(10).ok());
  spec.rate_qps = 0.5;
  EXPECT_TRUE(spec.Validate(10).ok());

  spec.kind = ArrivalSpec::Kind::kBursty;
  spec.rate_off_qps = -1.0;
  EXPECT_FALSE(spec.Validate(10).ok());
  spec.rate_off_qps = 0.0;
  spec.mean_phase_ms = 0.0;
  EXPECT_FALSE(spec.Validate(10).ok());
  spec.mean_phase_ms = 60'000.0;
  EXPECT_TRUE(spec.Validate(10).ok());

  spec.kind = ArrivalSpec::Kind::kTrace;
  spec.trace = {0.0, 1.0, 2.0};
  EXPECT_FALSE(spec.Validate(10).ok());  // size mismatch
  EXPECT_TRUE(spec.Validate(3).ok());
  spec.trace = {2.0, 1.0, 0.0};
  EXPECT_FALSE(spec.Validate(3).ok());  // descending
}

TEST(ArrivalSpecTest, BuildArrivalsIsDeterministic) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kPoisson;
  spec.rate_qps = 1.0;
  spec.seed = 77;
  auto a = BuildArrivals(spec, 100);
  auto b = BuildArrivals(spec, 100);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  ASSERT_EQ(a->size(), 100u);
  EXPECT_TRUE(std::is_sorted(a->begin(), a->end()));
}

TEST(ArrivalSpecTest, TraceKindReturnsTraceVerbatim) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kTrace;
  spec.trace = {0.0, 10.0, 2500.0};
  auto a = BuildArrivals(spec, 3);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, spec.trace);
}

// -------------------------------------------------- AdmissionController --

TEST(AdmissionControllerTest, UnboundedAdmitsEverything) {
  ServeConfig config;  // both bounds 0
  AdmissionController ac(config, 60'000.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ac.Offer(i * 100.0, 1'000'000, 500, 10'000));
  }
  EXPECT_EQ(ac.offered(), 100u);
  EXPECT_EQ(ac.shed(), 0u);
}

TEST(AdmissionControllerTest, ShedsOverEitherBound) {
  ServeConfig config;
  config.max_pending_queries = 4;
  config.max_pending_objects = 1000;
  AdmissionController ac(config, 60'000.0);
  EXPECT_TRUE(ac.Offer(0.0, 0, 0, 100));      // plenty of room
  EXPECT_FALSE(ac.Offer(1.0, 0, 4, 100));     // query-count bound
  EXPECT_FALSE(ac.Offer(2.0, 950, 1, 100));   // object bound
  EXPECT_FALSE(ac.Offer(3.0, 0, 0, 2000));    // single huge query
  EXPECT_TRUE(ac.Offer(4.0, 900, 3, 100));    // exactly at the bound: admit
  EXPECT_EQ(ac.offered(), 5u);
  EXPECT_EQ(ac.shed(), 3u);
}

TEST(AdmissionControllerTest, RateTracksOfferedLoadIncludingShed) {
  ServeConfig config;
  config.max_pending_queries = 1;
  AdmissionController ac(config, 10'000.0);
  // 20 offered arrivals over 2 s (only some admitted): the rate must see
  // all of them — shed queries still saturate the front door.
  for (int i = 0; i < 20; ++i) {
    ac.Offer(i * 100.0, 0, i % 2 == 0 ? 0 : 5, 10);
  }
  EXPECT_NEAR(ac.RateQps(2000.0), 10.0, 0.5);
  EXPECT_GT(ac.shed(), 0u);
}

TEST(AdmissionControllerTest, ConcurrentOffersAreSafe) {
  // The concurrent admission path: many threads hammer Offer/RateQps on
  // one controller. Run under TSan (tools/ci.sh --tsan) this would flag
  // the pre-fix const-erase race in ArrivalRateEstimator::RateQps.
  ServeConfig config;
  config.max_pending_queries = 8;
  AdmissionController ac(config, 1'000.0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ac, &admitted, t] {
      // Non-decreasing per thread; interleavings across threads exercise
      // the lock, and frequent RateQps calls exercise Prune.
      for (int i = 0; i < kPerThread; ++i) {
        TimeMs now = static_cast<TimeMs>(i) * 10.0 + t;
        if (ac.Offer(now, 100, static_cast<size_t>(i % 10), 10)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 16 == 0) (void)ac.RateQps(now);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ac.offered(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(ac.offered(), admitted.load() + ac.shed());
}

// -------------------------------------------------------------- Serving --

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 50'000;
    gen.seed = 21;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;  // 50 buckets
    auto catalog = storage::Catalog::Build(std::move(*objects), options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);

    workload::TraceConfig tc;
    tc.num_queries = 60;
    tc.max_objects_per_query = 1500;
    tc.match_radius_arcsec = 900.0;
    tc.seed = 23;
    auto trace = workload::GenerateTrace(tc);
    ASSERT_TRUE(trace.ok());
    trace_ = std::move(*trace);
  }

  std::unique_ptr<sched::Scheduler> LifeRaftSched(double alpha) {
    sched::LifeRaftConfig config;
    config.alpha = alpha;
    return std::make_unique<sched::LifeRaftScheduler>(
        catalog_->store(), storage::DiskModel{}, config);
  }

  std::unique_ptr<storage::Catalog> catalog_;
  std::vector<query::CrossMatchQuery> trace_;
};

TEST_F(ServeFixture, ServeSmokeCompletesEverythingUnbounded) {
  EngineConfig config;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.5), config);
  ServeConfig serve;
  serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
  serve.arrivals.rate_qps = 0.5;
  serve.arrivals.seed = 5;
  auto metrics = engine.Serve(trace_, serve);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->queries_offered, trace_.size());
  EXPECT_EQ(metrics->queries_shed, 0u);
  EXPECT_EQ(metrics->queries_completed, trace_.size());
  EXPECT_GT(metrics->sustained_qps, 0.0);
  EXPECT_DOUBLE_EQ(metrics->sustained_qps, metrics->offered_qps);
  ASSERT_EQ(metrics->qos_classes.size(), kNumQosClasses);
  size_t completed = 0;
  for (const QosClassMetrics& qc : metrics->qos_classes) {
    completed += qc.completed;
    EXPECT_EQ(qc.shed, 0u);
    EXPECT_LE(qc.p50_response_ms, qc.p95_response_ms);
    EXPECT_LE(qc.p95_response_ms, qc.p99_response_ms);
  }
  EXPECT_EQ(completed, trace_.size());
  // Both classes occur in this trace at the default split.
  EXPECT_GT(metrics->qos_classes[0].completed, 0u);
  EXPECT_GT(metrics->qos_classes[1].completed, 0u);
}

TEST_F(ServeFixture, TraceServeReproducesClosedRunExactly) {
  // Serving a recorded trace with no shedding bounds and no alpha
  // selector must be the closed-workload drain, bit for bit: same virtual
  // makespan, same I/O, same matches.
  Rng rng(101);
  auto arrivals = *PoissonArrivals(trace_.size(), 0.5, &rng);

  EngineConfig config;
  SimEngine run_engine(catalog_.get(), LifeRaftSched(0.25), config);
  auto run = run_engine.Run(trace_, arrivals);
  ASSERT_TRUE(run.ok());

  SimEngine serve_engine(catalog_.get(), LifeRaftSched(0.25), config);
  ServeConfig serve;
  serve.arrivals.kind = ArrivalSpec::Kind::kTrace;
  serve.arrivals.trace = arrivals;
  auto served = serve_engine.Serve(trace_, serve);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  EXPECT_DOUBLE_EQ(served->makespan_ms, run->makespan_ms);
  EXPECT_EQ(served->total_matches, run->total_matches);
  EXPECT_EQ(served->store.bucket_reads, run->store.bucket_reads);
  EXPECT_EQ(served->queries_completed, run->queries_completed);
  EXPECT_DOUBLE_EQ(served->avg_response_ms, run->avg_response_ms);
  EXPECT_EQ(served->peak_pending_objects, run->peak_pending_objects);
}

TEST_F(ServeFixture, SheddingKeepsAccountsBalanced) {
  EngineConfig config;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.0), config);
  ServeConfig serve;
  serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
  serve.arrivals.rate_qps = 50.0;  // far beyond what one arm drains
  serve.arrivals.seed = 7;
  serve.max_pending_queries = 3;
  auto metrics = engine.Serve(trace_, serve);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->queries_shed, 0u);
  EXPECT_EQ(metrics->queries_completed + metrics->queries_shed,
            metrics->queries_offered);
  EXPECT_EQ(engine.outcomes().size(), metrics->queries_completed);
  EXPECT_LT(metrics->sustained_qps, metrics->offered_qps);
  size_t shed = 0;
  for (const QosClassMetrics& qc : metrics->qos_classes) shed += qc.shed;
  EXPECT_EQ(shed, metrics->queries_shed);
}

TEST_F(ServeFixture, ObjectBoundShedsBigQueries) {
  EngineConfig config;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.0), config);
  ServeConfig serve;
  serve.arrivals.kind = ArrivalSpec::Kind::kUniform;
  serve.arrivals.rate_qps = 20.0;
  serve.max_pending_objects = 2000;  // some trace queries alone exceed this
  auto metrics = engine.Serve(trace_, serve);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->queries_shed, 0u);
  EXPECT_GT(metrics->queries_completed, 0u);
  EXPECT_EQ(metrics->queries_completed + metrics->queries_shed,
            metrics->queries_offered);
}

TEST_F(ServeFixture, ClassifiesByFanout) {
  EngineConfig config;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.5), config);
  ServeConfig serve;
  serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
  serve.arrivals.rate_qps = 0.5;
  serve.interactive_max_parts = 1;  // only single-bucket queries
  auto metrics = engine.Serve(trace_, serve);
  ASSERT_TRUE(metrics.ok());
  size_t single_part = 0;
  for (const QueryOutcome& o : engine.outcomes()) {
    if (o.parts <= 1) ++single_part;
    EXPECT_EQ(o.qos, o.parts <= 1 ? QosClass::kInteractive
                                  : QosClass::kBatch);
  }
  EXPECT_EQ(metrics->qos_classes[0].completed, single_part);
}

TEST_F(ServeFixture, AdaptiveAlphaReactsToOfferedRate) {
  sched::AlphaSelector selector(0.2);
  ASSERT_TRUE(selector
                  .AddCurve(0.05, {{0.0, 0.2, 100'000.0},
                                   {1.0, 0.19, 30'000.0}})
                  .ok());
  ASSERT_TRUE(selector
                  .AddCurve(5.0, {{0.0, 0.5, 300'000.0},
                                  {1.0, 0.2, 200'000.0}})
                  .ok());
  EngineConfig config;
  config.alpha_selector = &selector;
  config.rate_window_ms = 1e9;

  SimEngine engine(catalog_.get(), LifeRaftSched(0.5), config);
  ServeConfig serve;
  serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
  serve.arrivals.rate_qps = 10.0;  // nearest curve 5.0 -> alpha 0
  serve.arrivals.seed = 11;
  auto metrics = engine.Serve(trace_, serve);
  ASSERT_TRUE(metrics.ok());
  EXPECT_DOUBLE_EQ(metrics->alpha_final, 0.0);
}

TEST_F(ServeFixture, ReportsPerArmControllerDepths) {
  EngineConfig config;
  config.adaptive_prefetch = true;
  config.topology.num_volumes = 3;
  SimEngine engine(catalog_.get(), LifeRaftSched(0.0), config);
  ServeConfig serve;
  serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
  serve.arrivals.rate_qps = 1.0;
  auto metrics = engine.Serve(trace_, serve);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(metrics->arm_final_depths.size(), 3u);
  for (size_t d : metrics->arm_final_depths) {
    EXPECT_LE(d, config.max_prefetch_depth);
  }
  EXPECT_EQ(metrics->arm_final_depths[0], metrics->prefetch_final_depth);
}

// ------------------------------------- per-QoS-class prefetch configs --

// Caps that never bind (and the all-zero default) must leave the run
// byte-identical: the cap plumbing may not perturb a single modeled time.
TEST_F(ServeFixture, QosPrefetchCapsThatNeverBindAreByteIdentical) {
  auto serve_with = [&](size_t interactive_cap, size_t batch_cap) {
    EngineConfig config;
    config.enable_prefetch = true;
    config.prefetch_depth = 2;
    SimEngine engine(catalog_.get(), LifeRaftSched(0.25), config);
    ServeConfig serve;
    serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
    serve.arrivals.rate_qps = 2.0;
    serve.arrivals.seed = 31;
    serve.qos_prefetch[static_cast<size_t>(QosClass::kInteractive)]
        .max_depth = interactive_cap;
    serve.qos_prefetch[static_cast<size_t>(QosClass::kBatch)].max_depth =
        batch_cap;
    auto metrics = engine.Serve(trace_, serve);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return metrics.ok() ? *metrics : RunMetrics{};
  };
  RunMetrics base = serve_with(0, 0);     // default: cap never touched
  RunMetrics slack = serve_with(99, 99);  // touched every step, never binds
  EXPECT_EQ(slack.makespan_ms, base.makespan_ms);
  EXPECT_EQ(slack.prefetch_hidden_ms, base.prefetch_hidden_ms);
  EXPECT_EQ(slack.cache.prefetch_issued, base.cache.prefetch_issued);
  EXPECT_EQ(slack.cache.prefetch_claims, base.cache.prefetch_claims);
  EXPECT_EQ(slack.total_matches, base.total_matches);
  EXPECT_EQ(slack.store.bucket_reads, base.store.bucket_reads);
}

// While interactive queries are pending, the interactive cap overrides
// the engine-wide depth. With every query classified interactive, a cap
// of 1 over a fixed depth of 2 must reproduce a plain depth-1 serve
// exactly — same bets, same claims, same clock.
TEST_F(ServeFixture, InteractiveCapReproducesShallowerDepthExactly) {
  auto serve_with = [&](size_t depth, size_t interactive_cap) {
    EngineConfig config;
    config.enable_prefetch = true;
    config.prefetch_depth = depth;
    SimEngine engine(catalog_.get(), LifeRaftSched(0.25), config);
    ServeConfig serve;
    serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
    serve.arrivals.rate_qps = 2.0;
    serve.arrivals.seed = 37;
    serve.interactive_max_parts = 1000;  // everything interactive
    serve.qos_prefetch[static_cast<size_t>(QosClass::kInteractive)]
        .max_depth = interactive_cap;
    auto metrics = engine.Serve(trace_, serve);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return metrics.ok() ? *metrics : RunMetrics{};
  };
  RunMetrics capped = serve_with(/*depth=*/2, /*interactive_cap=*/1);
  RunMetrics shallow = serve_with(/*depth=*/1, /*interactive_cap=*/0);
  EXPECT_EQ(capped.makespan_ms, shallow.makespan_ms);
  EXPECT_EQ(capped.prefetch_hidden_ms, shallow.prefetch_hidden_ms);
  EXPECT_EQ(capped.cache.prefetch_issued, shallow.cache.prefetch_issued);
  EXPECT_EQ(capped.cache.prefetch_claims, shallow.cache.prefetch_claims);
  EXPECT_EQ(capped.store.bucket_reads, shallow.store.bucket_reads);
  EXPECT_EQ(capped.total_matches, shallow.total_matches);
}

// The batch entry applies only while NO interactive query is pending:
// with everything classified interactive, a batch-only cap must never
// activate during a live step.
TEST_F(ServeFixture, BatchCapInactiveWhileInteractivePending) {
  auto serve_with = [&](size_t batch_cap) {
    EngineConfig config;
    config.enable_prefetch = true;
    config.prefetch_depth = 2;
    SimEngine engine(catalog_.get(), LifeRaftSched(0.25), config);
    ServeConfig serve;
    serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
    serve.arrivals.rate_qps = 2.0;
    serve.arrivals.seed = 41;
    serve.interactive_max_parts = 1000;  // everything interactive
    serve.qos_prefetch[static_cast<size_t>(QosClass::kBatch)].max_depth =
        batch_cap;
    auto metrics = engine.Serve(trace_, serve);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return metrics.ok() ? *metrics : RunMetrics{};
  };
  RunMetrics base = serve_with(0);
  RunMetrics capped = serve_with(1);
  EXPECT_EQ(capped.makespan_ms, base.makespan_ms);
  EXPECT_EQ(capped.cache.prefetch_issued, base.cache.prefetch_issued);
  EXPECT_EQ(capped.total_matches, base.total_matches);
}

// Under adaptive prefetch the cap composes with the controllers: the
// run stays deterministic and no arm ever exceeds the cap at the end.
TEST_F(ServeFixture, QosCapComposesWithAdaptiveDepth) {
  auto serve_once = [&]() {
    EngineConfig config;
    config.adaptive_prefetch = true;
    config.max_prefetch_depth = 4;
    config.topology.num_volumes = 2;
    SimEngine engine(catalog_.get(), LifeRaftSched(0.25), config);
    ServeConfig serve;
    serve.arrivals.kind = ArrivalSpec::Kind::kPoisson;
    serve.arrivals.rate_qps = 2.0;
    serve.arrivals.seed = 43;
    serve.interactive_max_parts = 1000;
    serve.qos_prefetch[static_cast<size_t>(QosClass::kInteractive)]
        .max_depth = 1;
    auto metrics = engine.Serve(trace_, serve);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return metrics.ok() ? *metrics : RunMetrics{};
  };
  RunMetrics a = serve_once();
  RunMetrics b = serve_once();
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.cache.prefetch_issued, b.cache.prefetch_issued);
  ASSERT_EQ(a.arm_final_depths.size(), 2u);
  for (size_t d : a.arm_final_depths) EXPECT_LE(d, 1u);
}

TEST_F(ServeFixture, RejectsBadConfigurations) {
  EngineConfig config;
  {
    // Serving is shared-mode only.
    EngineConfig per_query = config;
    per_query.mode = ExecutionMode::kNoShare;
    SimEngine engine(catalog_.get(), nullptr, per_query);
    ServeConfig serve;
    EXPECT_FALSE(engine.Serve(trace_, serve).ok());
  }
  SimEngine engine(catalog_.get(), LifeRaftSched(0.5), config);
  {
    ServeConfig serve;
    serve.arrivals.rate_qps = 0.0;
    EXPECT_FALSE(engine.Serve(trace_, serve).ok());
  }
  {
    ServeConfig serve;
    serve.arrivals.kind = ArrivalSpec::Kind::kTrace;
    serve.arrivals.trace = {0.0};  // wrong size
    EXPECT_FALSE(engine.Serve(trace_, serve).ok());
  }
  {
    ServeConfig serve;
    serve.interactive_max_parts = 0;
    EXPECT_FALSE(engine.Serve(trace_, serve).ok());
  }
  {
    ServeConfig serve;
    EXPECT_FALSE(engine.Serve({}, serve).ok());  // empty trace
  }
}

}  // namespace
}  // namespace liferaft::sim
