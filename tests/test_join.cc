// Tests for the join layer. The central property: MergeCrossMatch,
// ZonesCrossMatch, IndexedCrossMatch, and a brute-force O(n*m) reference
// all produce identical match sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <span>
#include <tuple>

#include "join/evaluator.h"
#include "join/hybrid.h"
#include "join/indexed_join.h"
#include "join/merge_join.h"
#include "join/zones.h"
#include "query/preprocessor.h"
#include "storage/bucket_cache.h"
#include "storage/catalog.h"
#include "storage/columnar.h"
#include "util/random.h"

namespace liferaft::join {
namespace {

using query::CrossMatchQuery;
using query::MakeQueryObject;
using query::Match;
using query::Predicate;
using query::QueryObject;
using query::WorkloadEntry;
using storage::CatalogObject;
using storage::MakeObject;

// Dense cluster of archive objects plus scattered background, so joins have
// real multi-match structure.
std::vector<CatalogObject> ClusteredObjects(size_t n, uint64_t seed,
                                            SkyPoint center, double spread) {
  Rng rng(seed);
  std::vector<CatalogObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SkyPoint p;
    if (rng.Bernoulli(0.7)) {
      p = SkyPoint{center.ra_deg + rng.Normal(0, spread),
                   center.dec_deg + rng.Normal(0, spread)};
      p.ra_deg = std::fmod(p.ra_deg + 360.0, 360.0);
      p.dec_deg = std::clamp(p.dec_deg, -89.9, 89.9);
    } else {
      p = SkyPoint{rng.UniformDouble(0, 360),
                   std::asin(rng.UniformDouble(-1, 1)) * kRadToDeg};
    }
    objects.push_back(MakeObject(i, p, 14.0f + static_cast<float>(i % 12),
                                 static_cast<float>(i % 7) * 0.3f));
  }
  return objects;
}

// Builds workload entries. Half the query objects are planted a fraction of
// the error radius away from real catalog objects (guaranteeing matches at
// any radius); the rest are random near the center.
std::vector<WorkloadEntry> MakeBatch(
    const SkyPoint& center, int n_queries, int objects_per_query,
    double radius, uint64_t seed, Predicate predicate = Predicate{},
    const std::vector<CatalogObject>* plant_near = nullptr) {
  Rng rng(seed);
  std::vector<WorkloadEntry> batch;
  for (int q = 0; q < n_queries; ++q) {
    WorkloadEntry e;
    e.query_id = static_cast<query::QueryId>(q + 1);
    e.arrival_ms = q * 10.0;
    e.predicate = predicate;
    for (int i = 0; i < objects_per_query; ++i) {
      SkyPoint p;
      if (plant_near != nullptr && !plant_near->empty() && i % 2 == 0) {
        const CatalogObject& co =
            (*plant_near)[rng.UniformU64(plant_near->size())];
        double off = radius / kArcsecPerDeg * 0.3;
        p = SkyPoint{co.ra_deg, std::clamp(co.dec_deg + off, -89.9, 89.9)};
      } else {
        p = SkyPoint{center.ra_deg + rng.Normal(0, 0.2),
                     center.dec_deg + rng.Normal(0, 0.2)};
      }
      e.objects.push_back(
          MakeQueryObject(static_cast<uint64_t>(i), p, radius));
    }
    batch.push_back(std::move(e));
  }
  return batch;
}

using MatchKey = std::tuple<query::QueryId, uint64_t, uint64_t>;

std::set<MatchKey> Keys(const std::vector<Match>& ms) {
  std::set<MatchKey> keys;
  for (const auto& m : ms) {
    keys.insert({m.query_id, m.query_object_id, m.catalog_object_id});
  }
  return keys;
}

// Brute force over a bucket (no coarse filter at all).
std::vector<Match> BruteForce(const storage::Bucket& bucket,
                              const std::vector<WorkloadEntry>& batch) {
  std::vector<Match> out;
  for (const auto& e : batch) {
    for (const auto& qo : e.objects) {
      for (const auto& co : bucket.objects()) {
        double sep = 0.0;
        if (WithinRadius(qo, co, &sep) && e.predicate.Matches(co)) {
          out.push_back(Match{e.query_id, qo.id, co.object_id, sep});
        }
      }
    }
  }
  return out;
}

class JoinAgreementTest : public ::testing::TestWithParam<double> {};

TEST_P(JoinAgreementTest, AllStrategiesAgreeWithBruteForce) {
  const double radius = GetParam();
  SkyPoint center{150.0, 25.0};
  auto objects = ClusteredObjects(4000, 251, center, 0.3);
  std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);

  // One bucket covering the whole curve keeps the test focused on join
  // correctness rather than partitioning.
  storage::Bucket bucket(
      0,
      htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                   htm::LevelMax(htm::kObjectLevel)},
      objects);
  auto tree = storage::BTreeIndex::BulkLoad(objects);
  ASSERT_TRUE(tree.ok());

  auto batch = MakeBatch(center, 3, 40, radius, 257, Predicate{}, &objects);

  std::vector<Match> merge_out, zones_out, indexed_out;
  MergeCrossMatch(bucket, batch, &merge_out);
  ZonesCrossMatch(bucket, batch, std::max(radius / kArcsecPerDeg, 0.05),
                  &zones_out);
  IndexedCrossMatch(*tree, bucket.range(), batch, &indexed_out);
  auto brute = BruteForce(bucket, batch);

  EXPECT_EQ(Keys(merge_out), Keys(brute)) << "merge != brute, r=" << radius;
  EXPECT_EQ(Keys(zones_out), Keys(brute)) << "zones != brute, r=" << radius;
  EXPECT_EQ(Keys(indexed_out), Keys(brute)) << "index != brute, r=" << radius;
  EXPECT_FALSE(brute.empty()) << "degenerate test: no matches at all";
}

INSTANTIATE_TEST_SUITE_P(Radii, JoinAgreementTest,
                         ::testing::Values(1.0, 3.0, 10.0, 60.0, 600.0));

TEST(MergeJoinTest, PredicatesFilterOutput) {
  SkyPoint center{150.0, 25.0};
  auto objects = ClusteredObjects(2000, 263, center, 0.2);
  std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);
  storage::Bucket bucket(
      0,
      htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                   htm::LevelMax(htm::kObjectLevel)},
      objects);

  auto open_batch = MakeBatch(center, 2, 30, 30.0, 269);
  Predicate narrow;
  narrow.min_mag = 18.0f;
  auto narrow_batch = MakeBatch(center, 2, 30, 30.0, 269, narrow);

  std::vector<Match> open_out, narrow_out;
  auto open_counters = MergeCrossMatch(bucket, open_batch, &open_out);
  auto narrow_counters = MergeCrossMatch(bucket, narrow_batch, &narrow_out);

  // Spatial work identical; output filtered.
  EXPECT_EQ(open_counters.spatial_matches, narrow_counters.spatial_matches);
  EXPECT_LT(narrow_counters.output_matches, open_counters.output_matches);
  for (const auto& m : narrow_out) {
    (void)m;  // all surviving matches satisfy the predicate by construction
  }
  EXPECT_EQ(narrow_out.size(), narrow_counters.output_matches);
}

TEST(MergeJoinTest, CountersAddUp) {
  SkyPoint center{80.0, -10.0};
  auto objects = ClusteredObjects(1000, 271, center, 0.2);
  std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);
  storage::Bucket bucket(
      0,
      htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                   htm::LevelMax(htm::kObjectLevel)},
      objects);
  auto batch = MakeBatch(center, 2, 25, 5.0, 277);
  std::vector<Match> out;
  auto counters = MergeCrossMatch(bucket, batch, &out);
  EXPECT_EQ(counters.workload_objects, 50u);
  EXPECT_GE(counters.candidates_tested, counters.spatial_matches);
  EXPECT_GE(counters.spatial_matches, counters.output_matches);
  EXPECT_EQ(counters.output_matches, out.size());
}

TEST(MergeJoinTest, RespectsBucketBoundary) {
  // A query object is matched only against objects inside the bucket's
  // range — the per-bucket decomposition must not double-count.
  auto objects = ClusteredObjects(3000, 281, {10.0, 10.0}, 0.5);
  auto partition = storage::PartitionCatalog(objects, 300);
  ASSERT_TRUE(partition.ok());

  CrossMatchQuery q;
  q.id = 1;
  Rng rng(283);
  for (int i = 0; i < 60; ++i) {
    q.objects.push_back(MakeQueryObject(
        i, {10.0 + rng.Normal(0, 0.5), 10.0 + rng.Normal(0, 0.5)}, 20.0));
  }
  auto workloads = query::SplitQueryByBucket(q, *partition->map);

  // Join each bucket's workload against its own bucket; every (query
  // object, catalog object) pair must appear at most once overall.
  std::set<MatchKey> seen;
  for (const auto& w : workloads) {
    WorkloadEntry e;
    e.query_id = q.id;
    e.objects = w.objects;
    std::vector<Match> out;
    const std::vector<WorkloadEntry> batch = {e};
    MergeCrossMatch(partition->buckets[w.bucket], batch, &out);
    for (const auto& m : out) {
      MatchKey key{m.query_id, m.query_object_id, m.catalog_object_id};
      EXPECT_EQ(seen.count(key), 0u) << "duplicate match across buckets";
      seen.insert(key);
    }
  }
  EXPECT_FALSE(seen.empty());
}

// -------------------------------------------------------- columnar kernels --

// A columnar twin of a row bucket, via a real encode/parse round trip.
storage::Bucket ColumnarTwin(const storage::Bucket& row_bucket) {
  std::string page;
  storage::EncodeColumnarPage(row_bucket, &page);
  std::unique_ptr<char[]> buf(new char[page.size()]);
  std::memcpy(buf.get(), page.data(), page.size());
  auto parsed = storage::ColumnarPage::Parse(std::move(buf), page.size());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return storage::Bucket(row_bucket.index(), std::move(*parsed));
}

bool SameMatches(const std::vector<Match>& a, const std::vector<Match>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].query_id != b[i].query_id ||
        a[i].query_object_id != b[i].query_object_id ||
        a[i].catalog_object_id != b[i].catalog_object_id ||
        a[i].separation_arcsec != b[i].separation_arcsec ||
        a[i].ra_deg != b[i].ra_deg || a[i].dec_deg != b[i].dec_deg) {
      return false;
    }
  }
  return true;
}

class ColumnarKernelTest : public ::testing::TestWithParam<double> {};

// The zero-copy columnar sweeps must reproduce the row kernels EXACTLY:
// same matches in the same order with bit-identical separations and
// positions, and the same counters — that is what makes the on-disk
// format invisible to every result the engine reports.
TEST_P(ColumnarKernelTest, ColumnarPathsMatchRowPathsBitForBit) {
  const double radius = GetParam();
  SkyPoint center{150.0, 25.0};
  auto objects = ClusteredObjects(4000, 251, center, 0.3);
  std::sort(objects.begin(), objects.end(), storage::ObjectHtmLess);
  for (size_t i = 0; i < objects.size(); ++i) objects[i].object_id = i;

  storage::Bucket row_bucket(
      0,
      htm::IdRange{htm::LevelMin(htm::kObjectLevel),
                   htm::LevelMax(htm::kObjectLevel)},
      objects);
  storage::Bucket col_bucket = ColumnarTwin(row_bucket);
  ASSERT_TRUE(col_bucket.is_columnar());

  Predicate narrow;
  narrow.min_mag = 16.0f;
  auto batch = MakeBatch(center, 3, 40, radius, 257, narrow, &objects);

  std::vector<Match> row_merge, col_merge;
  auto row_merge_c = MergeCrossMatch(row_bucket, batch, &row_merge);
  auto col_merge_c = MergeCrossMatch(col_bucket, batch, &col_merge);
  EXPECT_TRUE(SameMatches(row_merge, col_merge)) << "merge r=" << radius;
  EXPECT_EQ(row_merge_c.candidates_tested, col_merge_c.candidates_tested);
  EXPECT_EQ(row_merge_c.spatial_matches, col_merge_c.spatial_matches);
  EXPECT_EQ(row_merge_c.output_matches, col_merge_c.output_matches);

  const double zone_deg = std::max(radius / kArcsecPerDeg, 0.05);
  std::vector<Match> row_zones, col_zones;
  ZonesCrossMatch(row_bucket, batch, zone_deg, &row_zones);
  ZonesCrossMatch(col_bucket, batch, zone_deg, &col_zones);
  EXPECT_TRUE(SameMatches(row_zones, col_zones)) << "zones r=" << radius;

  // The columnar indexed path probes the id column directly (no B+tree);
  // it must agree with the row merge sweep on the same restriction.
  std::vector<Match> col_indexed;
  IndexedCrossMatchInto(col_bucket.view(), col_bucket.range(),
                        std::span<const WorkloadEntry>(batch), &col_indexed);
  EXPECT_EQ(Keys(col_indexed), Keys(row_merge)) << "indexed r=" << radius;
  EXPECT_FALSE(row_merge.empty()) << "degenerate test: no matches";
}

INSTANTIATE_TEST_SUITE_P(Radii, ColumnarKernelTest,
                         ::testing::Values(1.0, 10.0, 600.0));

// ---------------------------------------------------------------- Hybrid --

TEST(HybridTest, ThresholdSelectsStrategy) {
  HybridConfig config;  // threshold 0.03
  EXPECT_EQ(ChooseStrategy(config, 100, 10000, false),
            JoinStrategy::kIndexed);  // 1% < 3%
  EXPECT_EQ(ChooseStrategy(config, 500, 10000, false),
            JoinStrategy::kScan);  // 5% > 3%
  EXPECT_EQ(ChooseStrategy(config, 300, 10000, false),
            JoinStrategy::kScan);  // exactly 3% -> scan
}

TEST(HybridTest, CachedBucketPrefersScan) {
  HybridConfig config;
  EXPECT_EQ(ChooseStrategy(config, 1, 10000, true), JoinStrategy::kScan);
  config.prefer_scan_when_cached = false;
  EXPECT_EQ(ChooseStrategy(config, 1, 10000, true), JoinStrategy::kIndexed);
}

TEST(HybridTest, DegenerateThresholds) {
  HybridConfig config;
  config.index_threshold = 0.0;
  EXPECT_EQ(ChooseStrategy(config, 1, 10000, false), JoinStrategy::kScan);
  config.index_threshold = 2.0;
  EXPECT_EQ(ChooseStrategy(config, 9999, 10000, false),
            JoinStrategy::kIndexed);
}

TEST(HybridTest, BreakEvenNearPaperThreePercent) {
  storage::DiskModel model;
  double ratio = BreakEvenRatio(model, 10000);
  EXPECT_GT(ratio, 0.02);
  EXPECT_LT(ratio, 0.04);
}

// ------------------------------------------------------------- Evaluator --

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::CatalogOptions options;
    options.objects_per_bucket = 500;
    auto catalog = storage::Catalog::Build(
        ClusteredObjects(5000, 293, {60.0, 30.0}, 0.4), options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);
    cache_ = std::make_unique<storage::BucketCache>(catalog_->store(), 4);
    evaluator_ = std::make_unique<JoinEvaluator>(
        cache_.get(), catalog_->index(), storage::DiskModel{},
        HybridConfig{});
  }

  // Builds a batch targeted at one bucket, sized to `n_objects`.
  std::pair<storage::BucketIndex, std::vector<WorkloadEntry>> TargetedBatch(
      int n_objects, uint64_t seed) {
    CrossMatchQuery q;
    q.id = next_query_id_++;
    Rng rng(seed);
    for (int i = 0; i < n_objects; ++i) {
      q.objects.push_back(MakeQueryObject(
          i, {60.0 + rng.Normal(0, 0.3), 30.0 + rng.Normal(0, 0.3)}, 5.0));
    }
    auto workloads = query::SplitQueryByBucket(q, catalog_->bucket_map());
    // Pick the largest workload.
    size_t best = 0;
    for (size_t i = 1; i < workloads.size(); ++i) {
      if (workloads[i].objects.size() > workloads[best].objects.size()) {
        best = i;
      }
    }
    WorkloadEntry e;
    e.query_id = q.id;
    e.predicate = q.predicate;
    e.objects = workloads[best].objects;
    return {workloads[best].bucket, {std::move(e)}};
  }

  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<storage::BucketCache> cache_;
  std::unique_ptr<JoinEvaluator> evaluator_;
  query::QueryId next_query_id_ = 1;
};

TEST_F(EvaluatorTest, RejectsEmptyBatch) {
  EXPECT_FALSE(evaluator_->EvaluateBucket(0, {}).ok());
}

TEST_F(EvaluatorTest, LargeBatchScansAndChargesTb) {
  auto [bucket, batch] = TargetedBatch(400, 307);  // 80% of bucket
  auto result = evaluator_->EvaluateBucket(bucket, batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, JoinStrategy::kScan);
  EXPECT_FALSE(result->cache_hit);
  storage::DiskModel model;
  uint64_t bytes = 500ull * storage::Bucket::kBytesPerObject;
  double expected =
      model.ScanJoinMs(bytes, batch[0].objects.size(), false);
  EXPECT_NEAR(result->cost_ms, expected, 1e-9);
}

TEST_F(EvaluatorTest, SecondScanIsCacheHitAndCheaper) {
  auto [bucket, batch] = TargetedBatch(400, 311);
  auto first = evaluator_->EvaluateBucket(bucket, batch);
  ASSERT_TRUE(first.ok());
  auto second = evaluator_->EvaluateBucket(bucket, batch);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_LT(second->cost_ms, first->cost_ms);
  // Identical matches both times.
  EXPECT_EQ(Keys(first->matches), Keys(second->matches));
}

TEST_F(EvaluatorTest, TinyBatchUsesIndexAndSkipsCache) {
  auto [bucket, batch] = TargetedBatch(400, 313);
  batch[0].objects.resize(5);  // 1% of bucket -> indexed
  auto result = evaluator_->EvaluateBucket(bucket, batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, JoinStrategy::kIndexed);
  EXPECT_FALSE(cache_->Contains(bucket)) << "indexed join must not cache";
  storage::DiskModel model;
  EXPECT_NEAR(result->cost_ms, model.IndexedJoinMs(5), 1e-9);
}

TEST_F(EvaluatorTest, IndexedAndScanAgreeOnMatches) {
  auto [bucket, batch] = TargetedBatch(100, 317);
  batch[0].objects.resize(8);
  auto indexed = evaluator_->EvaluateBucket(bucket, batch);
  ASSERT_TRUE(indexed.ok());
  ASSERT_EQ(indexed->strategy, JoinStrategy::kIndexed);

  // Force the scan path via a no-index evaluator on the same cache.
  JoinEvaluator scan_only(cache_.get(), nullptr, storage::DiskModel{},
                          HybridConfig{});
  auto scanned = scan_only.EvaluateBucket(bucket, batch);
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->strategy, JoinStrategy::kScan);
  EXPECT_EQ(Keys(indexed->matches), Keys(scanned->matches));
}

TEST_F(EvaluatorTest, StatsAccumulate) {
  auto [bucket, batch] = TargetedBatch(400, 331);
  ASSERT_TRUE(evaluator_->EvaluateBucket(bucket, batch).ok());
  auto [bucket2, batch2] = TargetedBatch(400, 337);
  batch2[0].objects.resize(4);
  cache_->Clear();  // ensure the tiny batch sees an uncached bucket
  ASSERT_TRUE(evaluator_->EvaluateBucket(bucket2, batch2).ok());
  EXPECT_EQ(evaluator_->stats().batches, 2u);
  EXPECT_EQ(evaluator_->stats().scan_batches, 1u);
  EXPECT_EQ(evaluator_->stats().indexed_batches, 1u);
  EXPECT_EQ(evaluator_->stats().index_probes, 4u);
  EXPECT_GT(evaluator_->stats().total_cost_ms, 0.0);
  evaluator_->ResetStats();
  EXPECT_EQ(evaluator_->stats().batches, 0u);
}

TEST_F(EvaluatorTest, CollectMatchesFalseSuppressesTuples) {
  auto [bucket, batch] = TargetedBatch(400, 347);
  auto result = evaluator_->EvaluateBucket(bucket, batch, false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.empty());
  EXPECT_GT(result->counters.output_matches, 0u);
}

}  // namespace
}  // namespace liferaft::join
