// Tests for workload overflow (paper §6 future work): the spill file's
// round trip and corruption checks, the WorkloadManager's budget
// enforcement and transparent restore, and the end-to-end invariant that
// spilling changes neither scheduling metadata nor query results.

#include <gtest/gtest.h>

#include <filesystem>

#include "query/preprocessor.h"
#include "query/spill.h"
#include "query/workload.h"
#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"

namespace liferaft::query {
namespace {

std::string TempPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("liferaft_spill_") + tag + "_" +
           std::to_string(::getpid())))
      .string();
}

WorkloadEntry MakeEntry(QueryId id, TimeMs arrival, int n_objects,
                        uint64_t seed) {
  Rng rng(seed);
  WorkloadEntry e;
  e.query_id = id;
  e.arrival_ms = arrival;
  e.predicate.max_mag = 21.5f;
  for (int i = 0; i < n_objects; ++i) {
    e.objects.push_back(MakeQueryObject(
        i, {rng.UniformDouble(0, 360), rng.UniformDouble(-80, 80)}, 3.0));
  }
  return e;
}

// ----------------------------------------------------- WorkloadSpillFile --

TEST(SpillFileTest, RoundTripPreservesEntries) {
  auto file = WorkloadSpillFile::Create(TempPath("rt"));
  ASSERT_TRUE(file.ok());
  std::vector<WorkloadEntry> original = {MakeEntry(1, 100.0, 20, 801),
                                         MakeEntry(2, 200.0, 5, 809)};
  ASSERT_TRUE((*file)->Spill(7, original).ok());
  EXPECT_TRUE((*file)->HasSegments(7));
  EXPECT_FALSE((*file)->HasSegments(8));

  std::vector<WorkloadEntry> restored;
  uint64_t bytes = 0;
  ASSERT_TRUE((*file)->Restore(7, &restored, &bytes).ok());
  EXPECT_GT(bytes, 0u);
  EXPECT_FALSE((*file)->HasSegments(7));

  ASSERT_EQ(restored.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].query_id, original[i].query_id);
    EXPECT_DOUBLE_EQ(restored[i].arrival_ms, original[i].arrival_ms);
    EXPECT_FLOAT_EQ(restored[i].predicate.max_mag,
                    original[i].predicate.max_mag);
    ASSERT_EQ(restored[i].objects.size(), original[i].objects.size());
    for (size_t j = 0; j < original[i].objects.size(); ++j) {
      const auto& a = restored[i].objects[j];
      const auto& b = original[i].objects[j];
      EXPECT_EQ(a.id, b.id);
      EXPECT_DOUBLE_EQ(a.ra_deg, b.ra_deg);
      EXPECT_DOUBLE_EQ(a.dec_deg, b.dec_deg);
      EXPECT_EQ(a.htm_ranges.ToString(), b.htm_ranges.ToString());
    }
  }
}

TEST(SpillFileTest, MultipleSegmentsPerBucketAccumulate) {
  auto file = WorkloadSpillFile::Create(TempPath("multi"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Spill(3, {MakeEntry(1, 0, 4, 811)}).ok());
  ASSERT_TRUE((*file)->Spill(3, {MakeEntry(2, 0, 6, 821)}).ok());
  ASSERT_TRUE((*file)->Spill(9, {MakeEntry(3, 0, 2, 823)}).ok());
  std::vector<WorkloadEntry> restored;
  ASSERT_TRUE((*file)->Restore(3, &restored).ok());
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].query_id, 1u);
  EXPECT_EQ(restored[1].query_id, 2u);
  EXPECT_TRUE((*file)->HasSegments(9));
  EXPECT_EQ((*file)->segments_spilled(), 3u);
}

TEST(SpillFileTest, RestoreOfUnknownBucketIsNoop) {
  auto file = WorkloadSpillFile::Create(TempPath("noop"));
  ASSERT_TRUE(file.ok());
  std::vector<WorkloadEntry> restored;
  uint64_t bytes = 123;
  ASSERT_TRUE((*file)->Restore(42, &restored, &bytes).ok());
  EXPECT_TRUE(restored.empty());
}

TEST(SpillFileTest, RejectsEmptySpillAndBadPath) {
  auto file = WorkloadSpillFile::Create(TempPath("empty"));
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Spill(0, {}).ok());
  EXPECT_FALSE(WorkloadSpillFile::Create("/nonexistent/dir/spill").ok());
}

TEST(SpillFileTest, ScratchFileRemovedOnDestruction) {
  std::string path = TempPath("cleanup");
  {
    auto file = WorkloadSpillFile::Create(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Spill(0, {MakeEntry(1, 0, 3, 827)}).ok());
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

// --------------------------------------------- WorkloadManager with spill --

class SpillManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<WorkloadManager>(32);
  }

  // Admits a query with one workload of n objects on bucket b.
  void Place(QueryId id, storage::BucketIndex b, int n, TimeMs arrival) {
    CrossMatchQuery q;
    q.id = id;
    q.arrival_ms = arrival;
    BucketWorkload w;
    w.bucket = b;
    for (int i = 0; i < n; ++i) {
      QueryObject qo;
      qo.id = static_cast<uint64_t>(i);
      qo.htm_ranges.Add(htm::LevelMin(htm::kObjectLevel),
                        htm::LevelMin(htm::kObjectLevel));
      w.objects.push_back(qo);
    }
    ASSERT_TRUE(manager_->Admit(q, {w}).ok());
  }

  std::unique_ptr<WorkloadManager> manager_;
};

TEST_F(SpillManagerTest, BudgetEnforcedAndMetadataRetained) {
  ASSERT_TRUE(manager_->EnableSpill(TempPath("mgr"), 100).ok());
  Place(1, 3, 80, 10.0);
  Place(2, 7, 50, 20.0);  // 130 resident -> spills the largest (bucket 3)
  EXPECT_LE(manager_->resident_objects(), 100u);
  EXPECT_EQ(manager_->total_pending_objects(), 130u);
  EXPECT_GE(manager_->spill_stats().segments_spilled, 1u);
  // Metadata survives the spill: bucket 3's queue still reports its size
  // and age even though its payload is on disk.
  EXPECT_EQ(manager_->queue(3).total_objects(), 80u);
  EXPECT_EQ(manager_->queue(3).resident_objects(), 0u);
  EXPECT_DOUBLE_EQ(manager_->queue(3).oldest_arrival_ms(), 10.0);
  EXPECT_FALSE(manager_->queue(3).empty());
  EXPECT_EQ(manager_->active_buckets().count(3), 1u);
}

TEST_F(SpillManagerTest, TakeBucketRestoresSpilledEntries) {
  ASSERT_TRUE(manager_->EnableSpill(TempPath("take"), 50).ok());
  Place(1, 5, 60, 0.0);   // spilled immediately (60 > 50)
  Place(2, 5, 10, 5.0);   // resident
  EXPECT_EQ(manager_->queue(5).total_objects(), 70u);

  std::vector<QueryId> completed;
  uint64_t restored_bytes = 0;
  auto entries = manager_->TakeBucket(5, &completed, &restored_bytes);
  // Both the resident and the spilled entry come back.
  size_t total = 0;
  for (const auto& e : entries) total += e.objects.size();
  EXPECT_EQ(total, 70u);
  EXPECT_GT(restored_bytes, 0u);
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(manager_->total_pending_objects(), 0u);
  EXPECT_EQ(manager_->resident_objects(), 0u);
}

TEST_F(SpillManagerTest, NoSpillWithoutEnable) {
  Place(1, 2, 1000, 0.0);
  EXPECT_EQ(manager_->resident_objects(), 1000u);
  EXPECT_EQ(manager_->spill_stats().segments_spilled, 0u);
}

TEST_F(SpillManagerTest, EnableSpillValidation) {
  EXPECT_FALSE(manager_->EnableSpill(TempPath("v"), 0).ok());
  ASSERT_TRUE(manager_->EnableSpill(TempPath("v2"), 10).ok());
  EXPECT_EQ(manager_->EnableSpill(TempPath("v3"), 10).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace liferaft::query

namespace liferaft::sim {
namespace {

TEST(SpillEndToEndTest, SpillingDoesNotChangeResultsOnlyAddsIo) {
  workload::CatalogGenConfig gen;
  gen.num_objects = 50'000;
  gen.seed = 829;
  auto objects = workload::GenerateCatalog(gen);
  ASSERT_TRUE(objects.ok());
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = 1000;
  auto catalog = storage::Catalog::Build(std::move(*objects),
                                         catalog_options);
  ASSERT_TRUE(catalog.ok());

  workload::TraceConfig tc;
  tc.num_queries = 50;
  tc.match_radius_arcsec = 900.0;
  tc.seed = 839;
  auto trace = workload::GenerateTrace(tc);
  ASSERT_TRUE(trace.ok());

  auto run = [&](uint64_t budget) {
    sched::LifeRaftConfig sched_config;
    sched_config.alpha = 0.25;
    auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
        (*catalog)->store(), storage::DiskModel{}, sched_config);
    EngineConfig config;
    if (budget > 0) {
      config.spill_path =
          (std::filesystem::temp_directory_path() /
           ("liferaft_e2e_spill_" + std::to_string(::getpid())))
              .string();
      config.workload_memory_budget = budget;
    }
    SimEngine engine(catalog->get(), std::move(scheduler), config);
    auto metrics = engine.Run(*trace, ImmediateArrivals(trace->size()));
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return *metrics;
  };

  auto unlimited = run(0);
  auto tight = run(500);  // far below the trace's pending footprint

  EXPECT_GT(tight.spill.segments_spilled, 0u) << "budget never triggered";
  EXPECT_EQ(tight.spill.segments_restored > 0, true);
  // Same queries, same matches, same bucket reads.
  EXPECT_EQ(tight.total_matches, unlimited.total_matches);
  EXPECT_EQ(tight.queries_completed, unlimited.queries_completed);
  EXPECT_EQ(tight.store.bucket_reads, unlimited.store.bucket_reads);
  // Spilling costs extra time.
  EXPECT_GE(tight.makespan_ms, unlimited.makespan_ms);
}

}  // namespace
}  // namespace liferaft::sim
