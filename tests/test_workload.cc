// Tests for the workload generators: catalog synthesis, the SDSS-like
// trace's calibrated skew (the Fig 5 / Fig 6 marginals), temporal locality,
// and trace persistence.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "query/preprocessor.h"
#include "storage/catalog.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace liferaft::workload {
namespace {

// ------------------------------------------------------------ CatalogGen --

TEST(CatalogGenTest, GeneratesRequestedCount) {
  CatalogGenConfig config;
  config.num_objects = 5000;
  auto objects = GenerateCatalog(config);
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ(objects->size(), 5000u);
  std::set<uint64_t> ids;
  for (const auto& o : *objects) {
    ids.insert(o.object_id);
    EXPECT_GE(o.ra_deg, 0.0);
    EXPECT_LT(o.ra_deg, 360.0);
    EXPECT_GE(o.dec_deg, -90.0);
    EXPECT_LE(o.dec_deg, 90.0);
    EXPECT_EQ(htm::LevelOf(o.htm_id), htm::kObjectLevel);
  }
  EXPECT_EQ(ids.size(), 5000u) << "object ids must be unique";
}

TEST(CatalogGenTest, Deterministic) {
  CatalogGenConfig config;
  config.num_objects = 500;
  config.seed = 99;
  auto a = GenerateCatalog(config);
  auto b = GenerateCatalog(config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].htm_id, (*b)[i].htm_id);
  }
}

TEST(CatalogGenTest, ClusteringConcentratesObjects) {
  CatalogGenConfig clustered;
  clustered.num_objects = 20'000;
  clustered.cluster_fraction = 0.8;
  clustered.num_clusters = 4;
  clustered.cluster_sigma_deg = 1.0;
  auto objects = GenerateCatalog(clustered);
  ASSERT_TRUE(objects.ok());
  // Count objects per level-2 trixel; clustering must produce a much more
  // skewed histogram than uniform would.
  std::map<htm::HtmId, size_t> per_trixel;
  for (const auto& o : *objects) {
    ++per_trixel[htm::AncestorAt(o.htm_id, 2)];
  }
  size_t max_count = 0;
  for (const auto& [_, c] : per_trixel) max_count = std::max(max_count, c);
  // 128 level-2 trixels; uniform would put ~156 in each.
  EXPECT_GT(max_count, 1000u);
}

TEST(CatalogGenTest, RejectsBadConfig) {
  CatalogGenConfig config;
  config.num_objects = 0;
  EXPECT_FALSE(GenerateCatalog(config).ok());
  config = CatalogGenConfig{};
  config.cluster_fraction = 1.5;
  EXPECT_FALSE(GenerateCatalog(config).ok());
  config = CatalogGenConfig{};
  config.cluster_fraction = 0.5;
  config.num_clusters = 0;
  EXPECT_FALSE(GenerateCatalog(config).ok());
}

TEST(RandomPointInCapTest, StaysInsideCap) {
  Rng rng(401);
  SkyPoint center{123.0, -37.0};
  for (int i = 0; i < 2000; ++i) {
    SkyPoint p = RandomPointInCap(&rng, center, 5.0);
    EXPECT_LE(AngularSeparationDeg(center, p), 5.0 + 1e-9);
  }
}

TEST(RandomPointInCapTest, CoversTheCapArea) {
  // The sampler is area-uniform: about 3/4 of samples should lie beyond
  // half the radius (area ratio ~ (1-cos r)(3/4) for small r).
  Rng rng(409);
  SkyPoint center{10.0, 10.0};
  int outer = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    SkyPoint p = RandomPointInCap(&rng, center, 2.0);
    if (AngularSeparationDeg(center, p) > 1.0) ++outer;
  }
  EXPECT_NEAR(outer / static_cast<double>(n), 0.75, 0.03);
}

// -------------------------------------------------------------- TraceGen --

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    CatalogGenConfig gen;
    gen.num_objects = 100'000;
    gen.seed = 17;
    auto objects = GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    storage::CatalogOptions options;
    options.objects_per_bucket = 1000;  // 100 buckets
    options.build_index = false;
    auto catalog = storage::Catalog::Build(std::move(*objects), options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);
  }
  std::unique_ptr<storage::Catalog> catalog_;
};

TEST_F(TraceFixture, GeneratesRequestedQueries) {
  TraceConfig config;
  config.num_queries = 200;
  config.seed = 5;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 200u);
  for (size_t i = 0; i < trace->size(); ++i) {
    const auto& q = (*trace)[i];
    EXPECT_EQ(q.id, i + 1);
    EXPECT_GE(q.objects.size(), config.min_objects_per_query);
    EXPECT_LE(q.objects.size(), config.max_objects_per_query);
    EXPECT_FALSE(q.label.empty());
  }
}

TEST_F(TraceFixture, ValidateCatchesBadConfigs) {
  TraceConfig c;
  c.num_queries = 0;
  EXPECT_FALSE(GenerateTrace(c).ok());
  c = TraceConfig{};
  c.p_hotspot = 1.2;
  EXPECT_FALSE(GenerateTrace(c).ok());
  c = TraceConfig{};
  c.min_radius_deg = 5;
  c.max_radius_deg = 1;
  EXPECT_FALSE(GenerateTrace(c).ok());
  c = TraceConfig{};
  c.max_objects_per_query = 1;
  c.min_objects_per_query = 10;
  EXPECT_FALSE(GenerateTrace(c).ok());
}

TEST_F(TraceFixture, ReproducesFig5TopTenReuse) {
  // Paper: the top-ten buckets are accessed by ~61% of queries. Accept a
  // generous band around it; the point is strong head concentration.
  TraceConfig config;  // defaults are the calibrated ones
  config.num_queries = 500;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  double frac = TopKTouchFraction(*trace, catalog_->bucket_map(), 10);
  EXPECT_GT(frac, 0.45) << "top-10 bucket reuse too weak";
  EXPECT_LT(frac, 0.85) << "top-10 bucket reuse implausibly strong";
}

TEST_F(TraceFixture, ReproducesFig6MassConcentration) {
  // Paper: ~2% of buckets carry 50% of the workload. With 100 buckets we
  // accept 1-10%.
  TraceConfig config;
  config.num_queries = 500;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  auto touches = CharacterizeTrace(*trace, catalog_->bucket_map());
  double frac =
      BucketFractionForMass(touches, catalog_->num_buckets(), 0.5);
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.12) << "workload mass not concentrated enough";
}

TEST_F(TraceFixture, TemporalLocalityOfBucketReuse) {
  // Consecutive queries should overlap in buckets far more often than
  // distant pairs (Fig 5's visual clustering).
  TraceConfig config;
  config.num_queries = 300;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());

  auto buckets_of = [&](const query::CrossMatchQuery& q) {
    std::set<storage::BucketIndex> out;
    for (const auto& w :
         query::SplitQueryByBucket(q, catalog_->bucket_map())) {
      out.insert(w.bucket);
    }
    return out;
  };
  auto overlaps = [&](size_t i, size_t j) {
    auto a = buckets_of((*trace)[i]);
    auto b = buckets_of((*trace)[j]);
    for (auto x : a) {
      if (b.count(x)) return true;
    }
    return false;
  };
  Rng rng(419);
  int adjacent_hits = 0, random_hits = 0;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    size_t i = rng.UniformU64(trace->size() - 1);
    adjacent_hits += overlaps(i, i + 1);
    size_t a = rng.UniformU64(trace->size());
    size_t b = rng.UniformU64(trace->size());
    if (a != b) random_hits += overlaps(a, b);
  }
  EXPECT_GT(adjacent_hits, random_hits)
      << "consecutive queries should share buckets more than random pairs";
}

TEST_F(TraceFixture, CharacterizeTraceSortsByMass) {
  TraceConfig config;
  config.num_queries = 100;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  auto touches = CharacterizeTrace(*trace, catalog_->bucket_map());
  ASSERT_FALSE(touches.empty());
  for (size_t i = 1; i < touches.size(); ++i) {
    EXPECT_GE(touches[i - 1].workload_objects, touches[i].workload_objects);
  }
  uint64_t total_objects = 0;
  for (const auto& t : touches) total_objects += t.workload_objects;
  uint64_t expected = 0;
  for (const auto& q : *trace) {
    for (const auto& w :
         query::SplitQueryByBucket(q, catalog_->bucket_map())) {
      expected += w.objects.size();
    }
  }
  EXPECT_EQ(total_objects, expected);
}

TEST_F(TraceFixture, PSmallZeroIsByteIdenticalToLegacyTrace) {
  // p_small = 0 draws nothing extra from the rng, so the bimodal-mix knob
  // at its default must reproduce pre-mix traces exactly.
  TraceConfig legacy;
  legacy.num_queries = 120;
  TraceConfig mixed = legacy;
  mixed.p_small = 0.0;
  mixed.small_max_radius_deg = 2.0;  // irrelevant while p_small == 0
  auto a = GenerateTrace(legacy);
  auto b = GenerateTrace(mixed);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ((*a)[i].objects.size(), (*b)[i].objects.size()) << i;
    for (size_t j = 0; j < (*a)[i].objects.size(); ++j) {
      EXPECT_EQ((*a)[i].objects[j].ra_deg, (*b)[i].objects[j].ra_deg);
      EXPECT_EQ((*a)[i].objects[j].dec_deg, (*b)[i].objects[j].dec_deg);
    }
  }
}

TEST_F(TraceFixture, PSmallBiasesTowardSmallFootprints) {
  // With most queries drawn from the small mode the mean footprint (query
  // objects, and with it bucket fan-out) must drop well below the
  // unimodal trace's.
  TraceConfig wide;
  wide.num_queries = 300;
  TraceConfig mixed = wide;
  mixed.p_small = 0.9;
  mixed.small_max_radius_deg = 1.0;
  auto a = GenerateTrace(wide);
  auto b = GenerateTrace(mixed);
  ASSERT_TRUE(a.ok() && b.ok());
  auto mean_objects = [](const std::vector<query::CrossMatchQuery>& t) {
    double sum = 0.0;
    for (const auto& q : t) sum += static_cast<double>(q.objects.size());
    return sum / static_cast<double>(t.size());
  };
  EXPECT_LT(mean_objects(*b), 0.5 * mean_objects(*a));
}

TEST_F(TraceFixture, PSmallValidation) {
  TraceConfig c;
  c.p_small = -0.1;
  EXPECT_FALSE(GenerateTrace(c).ok());
  c = TraceConfig{};
  c.p_small = 1.1;
  EXPECT_FALSE(GenerateTrace(c).ok());
  // small_max_radius must stay inside [min_radius, max_radius] when the
  // small mode is live.
  c = TraceConfig{};
  c.p_small = 0.5;
  c.small_max_radius_deg = 0.1;  // below min_radius_deg = 0.4
  EXPECT_FALSE(GenerateTrace(c).ok());
  c.small_max_radius_deg = 100.0;  // above max_radius_deg
  EXPECT_FALSE(GenerateTrace(c).ok());
  c.small_max_radius_deg = 1.0;
  EXPECT_TRUE(GenerateTrace(c).ok());
}

TEST_F(TraceFixture, SkewPresetsOrderConcentration) {
  // The scenario matrix's skew axis: hotspot concentration must rise
  // monotonically from kUniform through kDefault to kExtreme, measured as
  // the fraction of queries touching the ten most-reused buckets.
  auto frac_for = [&](SkewLevel level) {
    auto trace = GenerateTrace(SkewedTracePreset(level, 400, 31));
    EXPECT_TRUE(trace.ok());
    return TopKTouchFraction(*trace, catalog_->bucket_map(), 10);
  };
  double uniform = frac_for(SkewLevel::kUniform);
  double fallback = frac_for(SkewLevel::kDefault);
  double extreme = frac_for(SkewLevel::kExtreme);
  EXPECT_LT(uniform, fallback);
  EXPECT_LT(fallback, extreme);
  EXPECT_GT(extreme, 0.9) << "extreme skew should touch the head constantly";
}

TEST(SkewPresetTest, NamesAndPassthrough) {
  EXPECT_STREQ(SkewLevelName(SkewLevel::kUniform), "uniform");
  EXPECT_STREQ(SkewLevelName(SkewLevel::kDefault), "default");
  EXPECT_STREQ(SkewLevelName(SkewLevel::kExtreme), "extreme");
  TraceConfig c = SkewedTracePreset(SkewLevel::kDefault, 77, 5);
  EXPECT_EQ(c.num_queries, 77u);
  EXPECT_EQ(c.seed, 5u);
  // kDefault is exactly the calibrated default hotspot model.
  TraceConfig d;
  EXPECT_EQ(c.num_hotspots, d.num_hotspots);
  EXPECT_EQ(c.zipf_s, d.zipf_s);
  EXPECT_EQ(c.p_hotspot, d.p_hotspot);
  EXPECT_EQ(c.p_stay, d.p_stay);
  // kUniform turns the hotspot pull off entirely.
  TraceConfig u = SkewedTracePreset(SkewLevel::kUniform, 77, 5);
  EXPECT_EQ(u.p_hotspot, 0.0);
  EXPECT_EQ(u.p_stay, 0.0);
}

TEST(BucketFractionForMassTest, HandCheckedExample) {
  std::vector<BucketTouch> touches = {
      {0, 1, 500}, {1, 1, 300}, {2, 1, 150}, {3, 1, 50}};
  // 50% of 1000 = 500: first bucket suffices -> 1/10 buckets.
  EXPECT_DOUBLE_EQ(BucketFractionForMass(touches, 10, 0.5), 0.1);
  // 90% needs 500+300+150 = 950 >= 900 -> 3 buckets.
  EXPECT_DOUBLE_EQ(BucketFractionForMass(touches, 10, 0.9), 0.3);
  EXPECT_EQ(BucketFractionForMass({}, 10, 0.5), 0.0);
  EXPECT_EQ(BucketFractionForMass(touches, 0, 0.5), 0.0);
}

// --------------------------------------------------------------- TraceIO --

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("liferaft_trace_test_" + std::to_string(::getpid()) + ".lft");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(TraceIoTest, RoundTrip) {
  TraceConfig config;
  config.num_queries = 50;
  config.seed = 77;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  (*trace)[3].arrival_ms = 1234.5;

  ASSERT_TRUE(SaveTrace(path_.string(), *trace).ok());
  auto loaded = LoadTrace(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), trace->size());
  for (size_t i = 0; i < trace->size(); ++i) {
    const auto& a = (*trace)[i];
    const auto& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_DOUBLE_EQ(a.arrival_ms, b.arrival_ms);
    EXPECT_EQ(a.label, b.label);
    EXPECT_FLOAT_EQ(a.predicate.max_mag, b.predicate.max_mag);
    ASSERT_EQ(a.objects.size(), b.objects.size());
    for (size_t j = 0; j < a.objects.size(); ++j) {
      EXPECT_EQ(a.objects[j].id, b.objects[j].id);
      EXPECT_DOUBLE_EQ(a.objects[j].ra_deg, b.objects[j].ra_deg);
      EXPECT_DOUBLE_EQ(a.objects[j].dec_deg, b.objects[j].dec_deg);
      EXPECT_DOUBLE_EQ(a.objects[j].radius_arcsec,
                       b.objects[j].radius_arcsec);
      // Covers are recomputed deterministically.
      EXPECT_EQ(a.objects[j].htm_ranges.ToString(),
                b.objects[j].htm_ranges.ToString());
    }
  }
}

TEST_F(TraceIoTest, SkewedMixedTraceRoundTripsExactly) {
  // The scenario matrix persists skew-preset traces with the bimodal QoS
  // mix live; the new generator paths must survive the format round trip
  // object for object.
  TraceConfig config = SkewedTracePreset(SkewLevel::kExtreme, 40, 19);
  config.p_small = 0.5;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(SaveTrace(path_.string(), *trace).ok());
  auto loaded = LoadTrace(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), trace->size());
  for (size_t i = 0; i < trace->size(); ++i) {
    const auto& a = (*trace)[i];
    const auto& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    ASSERT_EQ(a.objects.size(), b.objects.size());
    for (size_t j = 0; j < a.objects.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.objects[j].ra_deg, b.objects[j].ra_deg);
      EXPECT_DOUBLE_EQ(a.objects[j].dec_deg, b.objects[j].dec_deg);
    }
  }
}

TEST_F(TraceIoTest, DetectsCorruption) {
  TraceConfig config;
  config.num_queries = 10;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(SaveTrace(path_.string(), *trace).ok());
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x42');
  }
  auto loaded = LoadTrace(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(TraceIoTest, RejectsForeignFile) {
  {
    std::ofstream f(path_);
    f << "not a trace file at all, but long enough to pass size checks";
  }
  EXPECT_FALSE(LoadTrace(path_.string()).ok());
}

TEST_F(TraceIoTest, MissingFileIsIOError) {
  auto loaded = LoadTrace("/nonexistent/liferaft.trace");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace liferaft::workload
