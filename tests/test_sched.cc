// Tests for the scheduling layer: the U_t / U_a metric math, the LifeRaft
// scheduler's greedy and age-biased behaviours, cache-awareness (phi), the
// round-robin and least-sharable baselines, QoS age depreciation, and the
// adaptive alpha selector.

#include <gtest/gtest.h>

#include <cmath>

#include "query/workload.h"
#include "sched/adaptive.h"
#include "sched/least_sharable.h"
#include "sched/liferaft_scheduler.h"
#include "sched/metric.h"
#include "sched/qos.h"
#include "sched/round_robin.h"
#include "storage/catalog.h"
#include "storage/topology.h"
#include "util/random.h"
#include "workload/catalog_gen.h"

namespace liferaft::sched {
namespace {

using query::WorkloadManager;
using storage::BucketIndex;

// ---------------------------------------------------------------- Metric --

TEST(MetricTest, UtMatchesPaperFormula) {
  storage::DiskModel model;
  // |W| / (T_b + T_m |W|) for an uncached bucket.
  uint64_t bucket_bytes = 40ull * 1024 * 1024;
  double tb = model.SequentialReadMs(bucket_bytes);
  double ut = WorkloadThroughput(model, 200, bucket_bytes, false);
  EXPECT_NEAR(ut, 200.0 / (tb + 200 * 0.13), 1e-12);
}

TEST(MetricTest, CachedBucketDropsTbTerm) {
  storage::DiskModel model;
  uint64_t bytes = 40ull * 1024 * 1024;
  double cached = WorkloadThroughput(model, 100, bytes, true);
  double uncached = WorkloadThroughput(model, 100, bytes, false);
  EXPECT_NEAR(cached, 100.0 / (100 * 0.13), 1e-12);
  EXPECT_GT(cached, uncached * 10.0);
}

TEST(MetricTest, UtMonotoneInQueueLength) {
  storage::DiskModel model;
  uint64_t bytes = 4096ull * 1000;
  double prev = 0.0;
  for (uint64_t w : {1, 10, 100, 1000, 10000}) {
    double ut = WorkloadThroughput(model, w, bytes, false);
    EXPECT_GT(ut, prev);
    prev = ut;
  }
  // And saturates at 1/T_m as |W| -> infinity.
  EXPECT_LT(prev, 1.0 / 0.13);
}

TEST(MetricTest, ZeroQueueHasZeroThroughput) {
  storage::DiskModel model;
  EXPECT_EQ(WorkloadThroughput(model, 0, 4096, false), 0.0);
}

TEST(MetricTest, RawBlendEndpoints) {
  EXPECT_DOUBLE_EQ(AgedThroughputRaw(5.0, 9000.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(AgedThroughputRaw(5.0, 9000.0, 1.0), 9000.0);
  EXPECT_DOUBLE_EQ(AgedThroughputRaw(4.0, 100.0, 0.5), 52.0);
}

TEST(MetricTest, RawBlendIsAgeDominatedForRealisticUnits) {
  // The unit mismatch documented in DESIGN.md: with U_t ~ 0.1 obj/ms and
  // ages in minutes, even alpha = 0.05 is dominated by the age term.
  double ut_hot = 7.7, ut_cold = 0.08;   // cached vs uncached queue
  double age_hot = 100.0, age_cold = 60'000.0;
  double hot = AgedThroughputRaw(ut_hot, age_hot, 0.05);
  double cold = AgedThroughputRaw(ut_cold, age_cold, 0.05);
  EXPECT_GT(cold, hot) << "age term should dominate despite tiny alpha";
}

TEST(MetricTest, NormalizedBlendKeepsAlphaMeaningful) {
  // Same scenario, normalized: at alpha=0.05 contention still wins.
  double ut_hot = 7.7, ut_cold = 0.08;
  double age_hot = 100.0, age_cold = 60'000.0;
  double hot =
      AgedThroughputNormalized(ut_hot, ut_hot, age_hot, age_cold, 0.05);
  double cold =
      AgedThroughputNormalized(ut_cold, ut_hot, age_cold, age_cold, 0.05);
  EXPECT_GT(hot, cold);
  // And at alpha=0.95 age wins.
  hot = AgedThroughputNormalized(ut_hot, ut_hot, age_hot, age_cold, 0.95);
  cold = AgedThroughputNormalized(ut_cold, ut_hot, age_cold, age_cold, 0.95);
  EXPECT_GT(cold, hot);
}

TEST(MetricTest, NormalizedHandlesZeroMaxima) {
  EXPECT_EQ(AgedThroughputNormalized(0.0, 0.0, 0.0, 0.0, 0.5), 0.0);
}

// ------------------------------------------------- Scheduler test fixture --

// A catalog plus a manager with hand-placed workloads so tests control
// exactly which buckets hold how much work of what age.
class SchedulerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CatalogGenConfig gen;
    gen.num_objects = 10'000;
    gen.seed = 31;
    auto objects = workload::GenerateCatalog(gen);
    ASSERT_TRUE(objects.ok());
    storage::CatalogOptions options;
    options.objects_per_bucket = 500;  // 20 buckets
    options.build_index = false;
    auto catalog = storage::Catalog::Build(std::move(*objects), options);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);
    manager_ = std::make_unique<WorkloadManager>(catalog_->num_buckets());
  }

  // Admits a query with `n_objects` objects targeted at bucket `b`,
  // arriving at `arrival`.
  void Place(query::QueryId id, BucketIndex b, size_t n_objects,
             TimeMs arrival) {
    query::CrossMatchQuery q;
    q.id = id;
    q.arrival_ms = arrival;
    query::BucketWorkload w;
    w.bucket = b;
    htm::IdRange range = catalog_->bucket_map().RangeOf(b);
    for (size_t i = 0; i < n_objects; ++i) {
      query::QueryObject qo;
      qo.id = i;
      qo.htm_ranges.Add(range.lo, range.lo);  // inside the bucket
      w.objects.push_back(qo);
    }
    auto admitted = manager_->Admit(q, {w});
    ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  }

  LifeRaftScheduler MakeScheduler(double alpha,
                                  MetricNormalization norm =
                                      MetricNormalization::kNormalized) {
    LifeRaftConfig config;
    config.alpha = alpha;
    config.normalization = norm;
    return LifeRaftScheduler(catalog_->store(), storage::DiskModel{},
                             config);
  }

  static CacheProbe NothingCached() {
    return [](BucketIndex) { return false; };
  }

  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<WorkloadManager> manager_;
};

// -------------------------------------------------------------- LifeRaft --

TEST_F(SchedulerFixture, EmptyManagerYieldsNothing) {
  auto sched = MakeScheduler(0.0);
  EXPECT_FALSE(
      sched.PickBucket(*manager_, 0.0, NothingCached()).has_value());
}

TEST_F(SchedulerFixture, GreedyPicksMostContentiousBucket) {
  Place(1, 3, 50, 0.0);
  Place(2, 7, 400, 0.0);  // most pending objects
  Place(3, 11, 120, 0.0);
  auto sched = MakeScheduler(0.0);
  auto pick = sched.PickBucket(*manager_, 1000.0, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 7u);
}

TEST_F(SchedulerFixture, GreedyPrefersCachedBucket) {
  Place(1, 3, 200, 0.0);
  Place(2, 7, 300, 0.0);  // bigger queue but cold
  auto sched = MakeScheduler(0.0);
  CacheProbe cached = [](BucketIndex b) { return b == 3; };
  auto pick = sched.PickBucket(*manager_, 1000.0, cached);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 3u) << "phi=0 should beat a moderately longer queue";
}

TEST_F(SchedulerFixture, AgeOnePicksOldestRequest) {
  Place(1, 3, 400, 5000.0);
  Place(2, 7, 50, 100.0);  // tiny queue but oldest
  Place(3, 11, 400, 3000.0);
  auto sched = MakeScheduler(1.0);
  auto pick = sched.PickBucket(*manager_, 10'000.0, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 7u);
}

TEST_F(SchedulerFixture, IntermediateAlphaInterpolates) {
  // Bucket A: hot (large queue), young. Bucket B: cold, old.
  Place(1, 2, 500, 9900.0);   // arrives late
  Place(2, 9, 20, 0.0);       // ancient but tiny
  auto greedy = MakeScheduler(0.0);
  auto aged = MakeScheduler(1.0);
  auto mid = MakeScheduler(0.5);
  TimeMs now = 10'000.0;
  EXPECT_EQ(*greedy.PickBucket(*manager_, now, NothingCached()), 2u);
  EXPECT_EQ(*aged.PickBucket(*manager_, now, NothingCached()), 9u);
  // Mid alpha: with normalized terms, B's age share (1.0) beats A's
  // throughput share advantage -> schedules the starving bucket.
  auto pick = mid.PickBucket(*manager_, now, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 9u);
}

TEST_F(SchedulerFixture, RawPaperModeCollapsesOntoAge) {
  // With the literal Eq. 2 blend, even alpha = 0.05 behaves like alpha = 1
  // once ages reach seconds (the unit-mismatch ablation).
  Place(1, 2, 500, 9000.0);
  Place(2, 9, 20, 0.0);
  auto raw = MakeScheduler(0.05, MetricNormalization::kRawPaper);
  auto norm = MakeScheduler(0.05, MetricNormalization::kNormalized);
  TimeMs now = 10'000.0;
  EXPECT_EQ(*raw.PickBucket(*manager_, now, NothingCached()), 9u)
      << "raw metric should be age-dominated";
  EXPECT_EQ(*norm.PickBucket(*manager_, now, NothingCached()), 2u)
      << "normalized metric should keep contention dominant at low alpha";
}

TEST_F(SchedulerFixture, NameEncodesAlpha) {
  EXPECT_EQ(MakeScheduler(0.25).name(), "liferaft(a=0.25)");
}

TEST_F(SchedulerFixture, SetAlphaTakesEffect) {
  Place(1, 2, 500, 9000.0);
  Place(2, 9, 20, 0.0);
  auto sched = MakeScheduler(0.0);
  TimeMs now = 10'000.0;
  EXPECT_EQ(*sched.PickBucket(*manager_, now, NothingCached()), 2u);
  sched.set_alpha(1.0);
  EXPECT_EQ(*sched.PickBucket(*manager_, now, NothingCached()), 9u);
}

// ------------------------------------------------ PeekNextBuckets depth --

TEST_F(SchedulerFixture, LifeRaftPeekHeadMatchesPick) {
  Place(1, 3, 50, 0.0);
  Place(2, 7, 400, 0.0);
  Place(3, 11, 120, 0.0);
  auto sched = MakeScheduler(0.25);
  for (size_t k = 1; k <= 4; ++k) {
    auto peek = sched.PeekNextBuckets(*manager_, 1000.0, NothingCached(), k);
    ASSERT_FALSE(peek.empty());
    EXPECT_EQ(peek.front(),
              *sched.PickBucket(*manager_, 1000.0, NothingCached()))
        << "element 0 must be exactly the pick at k=" << k;
  }
}

TEST_F(SchedulerFixture, LifeRaftPeekDepthKPredictsServiceOrder) {
  // Greedy (alpha=0) ranks purely by contention, so the predicted order is
  // descending queue size; serving each prediction then re-picking must
  // reproduce the same sequence.
  Place(1, 3, 50, 0.0);
  Place(2, 7, 400, 0.0);
  Place(3, 11, 120, 0.0);
  auto sched = MakeScheduler(0.0);
  auto peek = sched.PeekNextBuckets(*manager_, 1000.0, NothingCached(), 5);
  ASSERT_EQ(peek.size(), 3u) << "depth caps at the active bucket count";
  EXPECT_EQ(peek[0], 7u);
  EXPECT_EQ(peek[1], 11u);
  EXPECT_EQ(peek[2], 3u);
  // Replay: every prediction comes true when the queues drain in turn.
  for (storage::BucketIndex predicted : peek) {
    auto pick = sched.PickBucket(*manager_, 1000.0, NothingCached());
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, predicted);
    manager_->TakeBucket(*pick, nullptr);
  }
}

TEST_F(SchedulerFixture, LifeRaftPeekElementsAreDistinct) {
  for (BucketIndex b = 0; b < 8; ++b) {
    Place(100 + b, b, 10 * (b + 1), static_cast<TimeMs>(b) * 50.0);
  }
  auto sched = MakeScheduler(0.5);
  auto peek = sched.PeekNextBuckets(*manager_, 5000.0, NothingCached(), 8);
  ASSERT_EQ(peek.size(), 8u);
  std::set<BucketIndex> distinct(peek.begin(), peek.end());
  EXPECT_EQ(distinct.size(), peek.size());
}

TEST_F(SchedulerFixture, RoundRobinPeekDepthKFollowsSweep) {
  Place(1, 5, 10, 0.0);
  Place(2, 12, 10, 0.0);
  Place(3, 2, 10, 0.0);
  RoundRobinScheduler rr;
  auto peek = rr.PeekNextBuckets(*manager_, 0.0, NothingCached(), 3);
  ASSERT_EQ(peek.size(), 3u);
  EXPECT_EQ(peek[0], 2u);
  EXPECT_EQ(peek[1], 5u);
  EXPECT_EQ(peek[2], 12u);
  // Depth beyond the active set stops after one full lap.
  EXPECT_EQ(rr.PeekNextBuckets(*manager_, 0.0, NothingCached(), 9).size(),
            3u);
  // After serving one bucket the sweep advances; the preview follows the
  // cursor and wraps.
  auto p1 = rr.PickBucket(*manager_, 0.0, NothingCached());
  ASSERT_TRUE(p1.has_value());
  manager_->TakeBucket(*p1, nullptr);
  peek = rr.PeekNextBuckets(*manager_, 0.0, NothingCached(), 2);
  ASSERT_EQ(peek.size(), 2u);
  EXPECT_EQ(peek[0], 5u);
  EXPECT_EQ(peek[1], 12u);
}

TEST_F(SchedulerFixture, LeastSharablePeekDepthKOrdersBySize) {
  Place(1, 3, 50, 0.0);
  Place(2, 7, 400, 0.0);
  Place(3, 11, 5, 0.0);
  Place(4, 13, 5, 0.0);  // same size as 11: tie breaks to lower index
  LeastSharableScheduler ls;
  auto peek = ls.PeekNextBuckets(*manager_, 0.0, NothingCached(), 4);
  ASSERT_EQ(peek.size(), 4u);
  EXPECT_EQ(peek[0], 11u);
  EXPECT_EQ(peek[1], 13u);
  EXPECT_EQ(peek[2], 3u);
  EXPECT_EQ(peek[3], 7u);
  EXPECT_EQ(peek.front(), *ls.PickBucket(*manager_, 0.0, NothingCached()));
}

TEST_F(SchedulerFixture, PeekOnEmptyManagerIsEmpty) {
  auto sched = MakeScheduler(0.25);
  RoundRobinScheduler rr;
  LeastSharableScheduler ls;
  EXPECT_TRUE(
      sched.PeekNextBuckets(*manager_, 0.0, NothingCached(), 3).empty());
  EXPECT_TRUE(rr.PeekNextBuckets(*manager_, 0.0, NothingCached(), 3).empty());
  EXPECT_TRUE(ls.PeekNextBuckets(*manager_, 0.0, NothingCached(), 3).empty());
}

// ------------------------------------------------------------------- QoS --

TEST(QosTest, WeightShape) {
  QosConfig off;
  EXPECT_EQ(QosAgeWeight(off, 1000), 1.0);
  QosConfig on;
  on.depreciate_long_queries = true;
  on.half_life_parts = 16.0;
  EXPECT_NEAR(QosAgeWeight(on, 0), 1.0, 1e-12);
  EXPECT_NEAR(QosAgeWeight(on, 16), 0.5, 1e-12);
  EXPECT_LT(QosAgeWeight(on, 160), 0.1);
}

TEST_F(SchedulerFixture, QosDepreciatesLongQueryAge) {
  // Two buckets with equally old entries; the long query's bucket loses
  // its age priority under QoS.
  // Long query: parts spread over many buckets (simulate by admitting a
  // multi-bucket workload).
  query::CrossMatchQuery long_q;
  long_q.id = 1;
  long_q.arrival_ms = 0.0;
  std::vector<query::BucketWorkload> long_workloads;
  for (BucketIndex b = 0; b < 10; ++b) {
    query::BucketWorkload w;
    w.bucket = b;
    query::QueryObject qo;
    qo.id = b;
    qo.htm_ranges.Add(catalog_->bucket_map().RangeOf(b).lo,
                      catalog_->bucket_map().RangeOf(b).lo);
    w.objects.push_back(qo);
    long_workloads.push_back(w);
  }
  ASSERT_TRUE(manager_->Admit(long_q, long_workloads).ok());
  Place(2, 15, 1, 0.0);  // short query, single part, same age

  LifeRaftConfig config;
  config.alpha = 1.0;  // pure age scheduling
  config.qos.depreciate_long_queries = true;
  config.qos.half_life_parts = 2.0;
  LifeRaftScheduler qos_sched(catalog_->store(), storage::DiskModel{},
                              config);
  auto pick = qos_sched.PickBucket(*manager_, 60'000.0, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 15u) << "short query should outrank the 10-part query";

  // Without QoS the tie resolves to the lowest bucket of the long query.
  auto plain = MakeScheduler(1.0);
  auto plain_pick = plain.PickBucket(*manager_, 60'000.0, NothingCached());
  ASSERT_TRUE(plain_pick.has_value());
  EXPECT_EQ(*plain_pick, 0u);
}

// ------------------------------------------------------------ RoundRobin --

TEST_F(SchedulerFixture, RoundRobinSweepsInBucketOrder) {
  Place(1, 5, 10, 0.0);
  Place(2, 12, 10, 0.0);
  Place(3, 2, 10, 0.0);
  RoundRobinScheduler rr;
  auto p1 = rr.PickBucket(*manager_, 0.0, NothingCached());
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(*p1, 2u);
  manager_->TakeBucket(*p1, nullptr);
  auto p2 = rr.PickBucket(*manager_, 0.0, NothingCached());
  EXPECT_EQ(*p2, 5u);
  manager_->TakeBucket(*p2, nullptr);
  auto p3 = rr.PickBucket(*manager_, 0.0, NothingCached());
  EXPECT_EQ(*p3, 12u);
  manager_->TakeBucket(*p3, nullptr);
  EXPECT_FALSE(rr.PickBucket(*manager_, 0.0, NothingCached()).has_value());
}

TEST_F(SchedulerFixture, RoundRobinWrapsAround) {
  Place(1, 5, 10, 0.0);
  RoundRobinScheduler rr;
  auto p1 = rr.PickBucket(*manager_, 0.0, NothingCached());
  EXPECT_EQ(*p1, 5u);
  manager_->TakeBucket(*p1, nullptr);
  // New work arrives at a lower bucket; cursor is past it, so the sweep
  // wraps.
  Place(2, 1, 10, 0.0);
  auto p2 = rr.PickBucket(*manager_, 0.0, NothingCached());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(*p2, 1u);
}

// --------------------------------------------------------- LeastSharable --

TEST_F(SchedulerFixture, LeastSharablePicksSmallestQueue) {
  Place(1, 3, 50, 0.0);
  Place(2, 7, 400, 0.0);
  Place(3, 11, 5, 0.0);
  LeastSharableScheduler ls;
  auto pick = ls.PickBucket(*manager_, 0.0, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 11u);
}

// ---------------------------------------------------------- SelectAlpha --

std::vector<TradeoffPoint> PaperLikeCurve() {
  // Shaped like Fig 4's high-saturation curve: throughput falls and
  // response improves as alpha rises.
  return {
      {0.00, 0.40, 300'000.0},
      {0.25, 0.33, 240'000.0},
      {0.50, 0.28, 220'000.0},
      {0.75, 0.24, 210'000.0},
      {1.00, 0.20, 200'000.0},
  };
}

TEST(SelectAlphaTest, ZeroToleranceKeepsMaxThroughput) {
  auto alpha = SelectAlpha(PaperLikeCurve(), 0.0);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.0);
}

TEST(SelectAlphaTest, TwentyPercentToleranceMatchesFig4) {
  // 20% tolerance admits throughput >= 0.32: alpha 0.25 qualifies and has
  // the best response among qualifiers.
  auto alpha = SelectAlpha(PaperLikeCurve(), 0.2);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.25);
}

TEST(SelectAlphaTest, FullToleranceMinimizesResponse) {
  auto alpha = SelectAlpha(PaperLikeCurve(), 1.0);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);
}

TEST(SelectAlphaTest, RejectsBadInput) {
  EXPECT_FALSE(SelectAlpha({}, 0.2).ok());
  EXPECT_FALSE(SelectAlpha(PaperLikeCurve(), -0.1).ok());
  EXPECT_FALSE(SelectAlpha(PaperLikeCurve(), 1.5).ok());
}

TEST(AlphaSelectorTest, PicksNearestSaturationCurve) {
  AlphaSelector selector(0.2);
  // Low saturation: flat throughput, response improves a lot with alpha.
  ASSERT_TRUE(selector
                  .AddCurve(0.1, {{0.0, 0.20, 100'000.0},
                                  {1.0, 0.19, 40'000.0}})
                  .ok());
  ASSERT_TRUE(selector.AddCurve(0.5, PaperLikeCurve()).ok());
  auto low = selector.AlphaFor(0.12);
  ASSERT_TRUE(low.ok());
  EXPECT_DOUBLE_EQ(*low, 1.0);
  auto high = selector.AlphaFor(0.48);
  ASSERT_TRUE(high.ok());
  EXPECT_DOUBLE_EQ(*high, 0.25);
}

TEST(AlphaSelectorTest, ErrorsWithoutCurves) {
  AlphaSelector selector(0.2);
  EXPECT_FALSE(selector.AlphaFor(0.3).ok());
  EXPECT_FALSE(selector.AddCurve(-1.0, PaperLikeCurve()).ok());
  EXPECT_FALSE(selector.AddCurve(0.1, {}).ok());
}

TEST(ArrivalRateEstimatorTest, EstimatesSteadyRate) {
  ArrivalRateEstimator est(10'000.0);
  // 1 query / 200 ms = 5 qps for 10 seconds.
  for (int i = 0; i < 50; ++i) est.OnArrival(i * 200.0);
  EXPECT_NEAR(est.RateQps(10'000.0), 5.0, 0.6);
}

TEST(ArrivalRateEstimatorTest, WindowForgetsOldArrivals) {
  ArrivalRateEstimator est(1'000.0);
  for (int i = 0; i < 100; ++i) est.OnArrival(i * 10.0);  // burst, 100 qps
  EXPECT_GT(est.RateQps(1'000.0), 50.0);
  // 10 virtual seconds later the burst left the window entirely.
  EXPECT_EQ(est.RateQps(11'000.0), 0.0);
}

TEST(ArrivalRateEstimatorTest, SingleWarmupArrivalIsNotAThousandQps) {
  // Regression: the old RateQps divided by the span between the arrivals
  // themselves, clamped to 1 ms — so the first arrival of a run read as
  // ~1000 QPS and slammed the alpha selector onto its highest-saturation
  // curve. The denominator is now the observed elapsed time.
  ArrivalRateEstimator est(60'000.0);
  est.OnArrival(5'000.0);
  // One arrival in 5 observed seconds = 0.2 QPS (the engine queries the
  // estimator at the arrival's own timestamp, exactly like this).
  EXPECT_NEAR(est.RateQps(5'000.0), 0.2, 1e-12);
  EXPECT_LT(est.RateQps(5'000.0), 1.0);
}

TEST(ArrivalRateEstimatorTest, ZeroElapsedReportsZero) {
  ArrivalRateEstimator est(10'000.0);
  EXPECT_EQ(est.RateQps(0.0), 0.0);  // no arrivals at all
  est.OnArrival(0.0);
  // An arrival at the clock origin with no time elapsed: no meaningful
  // rate yet (the old code reported 1000 QPS here).
  EXPECT_EQ(est.RateQps(0.0), 0.0);
  // Once time passes the arrival counts against real elapsed time.
  EXPECT_NEAR(est.RateQps(2'000.0), 0.5, 1e-12);
}

TEST(ArrivalRateEstimatorTest, RateQpsIsConstPruneIsExplicit) {
  // RateQps must not mutate (it is read concurrently under the admission
  // controller's lock discipline); Prune is the explicit trim.
  ArrivalRateEstimator est(1'000.0);
  for (int i = 0; i < 100; ++i) est.OnArrival(i * 10.0);  // 0..990 ms
  double rate = est.RateQps(1'500.0);  // window [500, 1500]: 50 arrivals
  EXPECT_NEAR(rate, 50.0, 1e-9);
  EXPECT_EQ(est.retained(), 100u);  // const read retained everything
  est.Prune(1'500.0);
  EXPECT_EQ(est.retained(), 50u);  // expired arrivals dropped
  EXPECT_DOUBLE_EQ(est.RateQps(1'500.0), rate);  // rate unchanged
}

// ------------------------------------------------------------------ QoS --

TEST(QosTest, HalfLifeIsHonoredAcrossScales) {
  QosConfig on;
  on.depreciate_long_queries = true;
  for (double half_life : {1.0, 8.0, 64.0, 1000.0}) {
    on.half_life_parts = half_life;
    EXPECT_NEAR(QosAgeWeight(on, static_cast<size_t>(half_life)), 0.5,
                1e-12);
  }
  // Weight decreases strictly with query size and stays positive.
  on.half_life_parts = 16.0;
  double prev = QosAgeWeight(on, 0);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (size_t parts : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    double w = QosAgeWeight(on, parts);
    EXPECT_LT(w, prev);
    EXPECT_GT(w, 0.0);
    prev = w;
  }
}

// ------------------------------------------- SelectAlpha edge behaviour --

TEST(SelectAlphaTest, TiedThroughputPicksBestResponse) {
  // Zero tolerance with a flat throughput curve: every point qualifies,
  // so the response-time minimizer wins.
  std::vector<TradeoffPoint> flat = {
      {0.00, 0.30, 200'000.0},
      {0.50, 0.30, 100'000.0},
      {1.00, 0.30, 150'000.0},
  };
  auto alpha = SelectAlpha(flat, 0.0);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.5);
}

TEST(SelectAlphaTest, SinglePointCurveReturnsIt) {
  auto alpha = SelectAlpha({{0.25, 0.4, 100'000.0}}, 0.5);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.25);
}

TEST(AlphaSelectorTest, ExactSaturationMatchUsesThatCurve) {
  AlphaSelector selector(0.2);
  ASSERT_TRUE(selector
                  .AddCurve(0.1, {{0.0, 0.20, 100'000.0},
                                  {1.0, 0.19, 40'000.0}})
                  .ok());
  ASSERT_TRUE(selector.AddCurve(0.5, PaperLikeCurve()).ok());
  auto alpha = selector.AlphaFor(0.1);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);
}

// ---------------------------------------------- per-volume T_b pricing --

TEST(MetricTest, PerVolumeTbUsesOwningVolumesModel) {
  storage::DiskModelParams fast;  // defaults
  storage::DiskModelParams slow = fast;
  slow.transfer_mb_per_s = 0.1;  // T_b ~335x the default
  storage::DiskModel fallback(fast);

  storage::StorageTopologyConfig uniform_config;
  uniform_config.num_volumes = 2;
  auto uniform_topo =
      storage::StorageTopology::Create(20, uniform_config, fast);
  ASSERT_TRUE(uniform_topo.ok());

  storage::StorageTopologyConfig hetero_config;
  hetero_config.num_volumes = 2;
  hetero_config.volume_disk = {fast, slow};
  auto hetero_topo =
      storage::StorageTopology::Create(20, hetero_config, fast);
  ASSERT_TRUE(hetero_topo.ok());
  ASSERT_FALSE(hetero_topo->uniform());

  const uint64_t queue = 200, bytes = 4 << 20;
  const double baseline = WorkloadThroughput(fallback, queue, bytes, false);
  // Null and uniform topologies price with the fallback model, bit for
  // bit (the byte-identity contract for single-volume runs).
  EXPECT_EQ(WorkloadThroughputOnVolume(nullptr, fallback, 3, queue, bytes,
                                       false),
            baseline);
  EXPECT_EQ(WorkloadThroughputOnVolume(&*uniform_topo, fallback, 3, queue,
                                       bytes, false),
            baseline);
  // Heterogeneous: bucket 3 lives on fast volume 0 (range placement),
  // bucket 13 on slow volume 1 — the slow arm's T_b depresses U_t.
  ASSERT_EQ(hetero_topo->VolumeOf(3), 0u);
  ASSERT_EQ(hetero_topo->VolumeOf(13), 1u);
  EXPECT_EQ(WorkloadThroughputOnVolume(&*hetero_topo, fallback, 3, queue,
                                       bytes, false),
            baseline);
  EXPECT_LT(WorkloadThroughputOnVolume(&*hetero_topo, fallback, 13, queue,
                                       bytes, false),
            baseline);
  // Cached buckets drop the T_b term entirely, so placement is moot.
  EXPECT_EQ(WorkloadThroughputOnVolume(&*hetero_topo, fallback, 13, queue,
                                       bytes, true),
            WorkloadThroughput(fallback, queue, bytes, true));
}

TEST_F(SchedulerFixture, RankingPricesTbByVolume) {
  // Regression for the dormant-bug: RankBest priced every bucket with the
  // scheduler's own (global) disk model, so a bucket on a slow arm with a
  // slightly larger queue outranked a fast-arm bucket under alpha = 0.
  // With the topology attached, the slow arm's T_b wins the comparison
  // for the fast bucket.
  storage::DiskModelParams fast;
  storage::DiskModelParams slow = fast;
  slow.transfer_mb_per_s = 0.1;
  storage::StorageTopologyConfig hetero_config;
  hetero_config.num_volumes = 2;
  hetero_config.volume_disk = {fast, slow};
  auto topo = storage::StorageTopology::Create(catalog_->num_buckets(),
                                               hetero_config, fast);
  ASSERT_TRUE(topo.ok());

  // Fast-arm bucket 2 holds 100 objects, slow-arm bucket 12 holds 120:
  // uniform pricing prefers 12 (U_t is monotone in queue length), volume-
  // aware pricing prefers 2.
  Place(1, 2, 100, 0.0);
  Place(2, 12, 120, 0.0);

  auto uniform_sched = MakeScheduler(0.0);
  auto pick = uniform_sched.PickBucket(*manager_, 0.0, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 12u);  // the pre-fix ranking, still right without a topo

  auto volume_aware = MakeScheduler(0.0);
  volume_aware.AttachTopology(&*topo);
  pick = volume_aware.PickBucket(*manager_, 0.0, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);

  // A uniform topology attached must not change any decision.
  storage::StorageTopologyConfig uniform_config;
  uniform_config.num_volumes = 2;
  auto uniform_topo = storage::StorageTopology::Create(
      catalog_->num_buckets(), uniform_config, fast);
  ASSERT_TRUE(uniform_topo.ok());
  auto attached_uniform = MakeScheduler(0.0);
  attached_uniform.AttachTopology(&*uniform_topo);
  pick = attached_uniform.PickBucket(*manager_, 0.0, NothingCached());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 12u);
}

}  // namespace
}  // namespace liferaft::sched
