// End-to-end integration tests across module boundaries: the FileStore
// persistence path feeding live joins, full pipeline (generate -> persist
// trace -> replay) determinism, scheduler-independence of query results
// through the public facade, and cross-validation of the three join
// implementations over a real partitioned catalog.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <tuple>

#include "core/liferaft.h"
#include "join/merge_join.h"
#include "join/zones.h"
#include "query/preprocessor.h"
#include "sched/liferaft_scheduler.h"
#include "sched/round_robin.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/file_store.h"
#include "storage/partitioner.h"
#include "util/random.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace liferaft {
namespace {

using MatchKey = std::tuple<query::QueryId, uint64_t, uint64_t>;

std::vector<storage::CatalogObject> SmallSky(size_t n, uint64_t seed) {
  workload::CatalogGenConfig gen;
  gen.num_objects = n;
  gen.seed = seed;
  auto objects = workload::GenerateCatalog(gen);
  EXPECT_TRUE(objects.ok());
  return std::move(*objects);
}

// ----------------------------------------------- FileStore -> live joins --

class FileStorePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("liferaft_integration_" + std::to_string(::getpid()) + ".lfr");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(FileStorePipelineTest, JoinsFromDiskMatchJoinsFromMemory) {
  auto objects = SmallSky(20'000, 701);
  auto partition = storage::PartitionCatalog(objects, 500);
  ASSERT_TRUE(partition.ok());
  ASSERT_TRUE(
      storage::FileStore::Create(path_.string(), partition->buckets).ok());
  auto disk_store = storage::FileStore::Open(path_.string());
  ASSERT_TRUE(disk_store.ok());

  // One query over a dense region, joined bucket-by-bucket from both
  // stores; match sets must be identical.
  Rng rng(709);
  query::CrossMatchQuery q;
  q.id = 1;
  for (int i = 0; i < 150; ++i) {
    const auto& co = objects[rng.UniformU64(objects.size())];
    q.objects.push_back(query::MakeQueryObject(i, co.sky(), 30.0));
  }
  auto workloads = query::SplitQueryByBucket(q, *partition->map);
  ASSERT_FALSE(workloads.empty());

  std::set<MatchKey> from_memory, from_disk;
  for (const auto& w : workloads) {
    query::WorkloadEntry entry;
    entry.query_id = q.id;
    entry.objects = w.objects;

    std::vector<query::Match> mem_out, disk_out;
    const std::vector<query::WorkloadEntry> batch = {entry};
    join::MergeCrossMatch(partition->buckets[w.bucket], batch, &mem_out);
    auto disk_bucket = (*disk_store)->ReadBucket(w.bucket);
    ASSERT_TRUE(disk_bucket.ok());
    join::MergeCrossMatch(**disk_bucket, batch, &disk_out);

    for (const auto& m : mem_out) {
      from_memory.insert({m.query_id, m.query_object_id,
                          m.catalog_object_id});
    }
    for (const auto& m : disk_out) {
      from_disk.insert({m.query_id, m.query_object_id,
                        m.catalog_object_id});
    }
  }
  EXPECT_EQ(from_memory, from_disk);
  EXPECT_FALSE(from_memory.empty());
}

// ------------------------------------- trace persistence -> replay equal --

TEST(TracePipelineTest, PersistedTraceReplaysIdentically) {
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = 500;
  auto catalog = storage::Catalog::Build(SmallSky(30'000, 719),
                                         catalog_options);
  ASSERT_TRUE(catalog.ok());

  workload::TraceConfig tc;
  tc.num_queries = 40;
  tc.match_radius_arcsec = 900.0;
  tc.seed = 727;
  auto trace = workload::GenerateTrace(tc);
  ASSERT_TRUE(trace.ok());

  auto path = std::filesystem::temp_directory_path() /
              ("liferaft_trace_rt_" + std::to_string(::getpid()) + ".lft");
  ASSERT_TRUE(workload::SaveTrace(path.string(), *trace).ok());
  auto loaded = workload::LoadTrace(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok());

  auto run = [&](const std::vector<query::CrossMatchQuery>& t) {
    sched::LifeRaftConfig config;
    config.alpha = 0.25;
    auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
        (*catalog)->store(), storage::DiskModel{}, config);
    sim::SimEngine engine(catalog->get(), std::move(scheduler), {});
    auto metrics = engine.Run(t, sim::ImmediateArrivals(t.size()));
    EXPECT_TRUE(metrics.ok());
    return *metrics;
  };
  auto m1 = run(*trace);
  auto m2 = run(*loaded);
  EXPECT_DOUBLE_EQ(m1.makespan_ms, m2.makespan_ms);
  EXPECT_EQ(m1.total_matches, m2.total_matches);
  EXPECT_EQ(m1.store.bucket_reads, m2.store.bucket_reads);
}

// ----------------------------- facade: results independent of scheduling --

TEST(FacadeIntegrationTest, MatchSetIndependentOfAlphaAndCache) {
  auto objects = SmallSky(30'000, 733);

  auto run = [&](double alpha, size_t cache) {
    core::LifeRaftOptions options;
    options.objects_per_bucket = 500;
    options.cache_capacity = cache;
    options.alpha = alpha;
    auto system = core::LifeRaft::Create(objects, options);
    EXPECT_TRUE(system.ok());

    Rng rng(739);
    for (query::QueryId qid = 1; qid <= 5; ++qid) {
      query::CrossMatchQuery q;
      q.id = qid;
      SkyPoint center = workload::RandomSkyPoint(&rng);
      for (int i = 0; i < 120; ++i) {
        q.objects.push_back(query::MakeQueryObject(
            i, workload::RandomPointInCap(&rng, center, 5.0), 1200.0));
      }
      EXPECT_TRUE((*system)->Submit(q).ok());
    }
    std::set<MatchKey> keys;
    auto completions = (*system)->Drain([&](const core::BatchOutcome& b) {
      for (const auto& m : b.matches) {
        keys.insert({m.query_id, m.query_object_id, m.catalog_object_id});
      }
    });
    EXPECT_TRUE(completions.ok());
    EXPECT_EQ(completions->size(), 5u);
    return keys;
  };

  auto baseline = run(0.0, 20);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(run(1.0, 20), baseline) << "alpha changed the match set";
  EXPECT_EQ(run(0.5, 1), baseline) << "cache size changed the match set";
}

// -------------------------------- joins cross-validated over partitions --

TEST(JoinCrossValidationTest, MergeAndZonesAgreeOverEveryBucket) {
  auto objects = SmallSky(25'000, 743);
  auto partition = storage::PartitionCatalog(objects, 1000);
  ASSERT_TRUE(partition.ok());

  Rng rng(751);
  query::WorkloadEntry entry;
  entry.query_id = 9;
  for (int i = 0; i < 200; ++i) {
    const auto& co = objects[rng.UniformU64(objects.size())];
    SkyPoint jittered{co.ra_deg, std::clamp(co.dec_deg + 0.001, -89.9, 89.9)};
    entry.objects.push_back(query::MakeQueryObject(i, jittered, 20.0));
  }

  size_t total_matches = 0;
  for (const auto& bucket : partition->buckets) {
    std::vector<query::Match> merge_out, zones_out;
    const std::vector<query::WorkloadEntry> batch = {entry};
    join::MergeCrossMatch(bucket, batch, &merge_out);
    join::ZonesCrossMatch(bucket, batch, 20.0 / kArcsecPerDeg, &zones_out);
    std::set<MatchKey> a, b;
    for (const auto& m : merge_out) {
      a.insert({m.query_id, m.query_object_id, m.catalog_object_id});
    }
    for (const auto& m : zones_out) {
      b.insert({m.query_id, m.query_object_id, m.catalog_object_id});
    }
    EXPECT_EQ(a, b) << "bucket " << bucket.index();
    total_matches += a.size();
  }
  EXPECT_GT(total_matches, 0u);
}

// ------------------------------------------ engine vs facade equivalence --

TEST(EngineFacadeEquivalenceTest, SameBatchCostsAndCompletions) {
  // The facade and the engine wire the same components; an immediate-
  // arrival engine run and a submit-all-then-drain facade run over the
  // same queries must do identical work.
  auto objects = SmallSky(20'000, 757);

  workload::TraceConfig tc;
  tc.num_queries = 15;
  tc.match_radius_arcsec = 600.0;
  tc.seed = 761;
  auto trace = workload::GenerateTrace(tc);
  ASSERT_TRUE(trace.ok());

  // Engine run.
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = 500;
  auto engine_catalog = storage::Catalog::Build(objects, catalog_options);
  ASSERT_TRUE(engine_catalog.ok());
  sched::LifeRaftConfig sched_config;
  sched_config.alpha = 0.0;
  auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
      (*engine_catalog)->store(), storage::DiskModel{}, sched_config);
  sim::SimEngine engine(engine_catalog->get(), std::move(scheduler), {});
  auto engine_metrics =
      engine.Run(*trace, sim::ImmediateArrivals(trace->size()));
  ASSERT_TRUE(engine_metrics.ok());

  // Facade run.
  core::LifeRaftOptions options;
  options.objects_per_bucket = 500;
  options.alpha = 0.0;
  auto facade = core::LifeRaft::Create(objects, options);
  ASSERT_TRUE(facade.ok());
  for (const auto& q : *trace) ASSERT_TRUE((*facade)->Submit(q).ok());
  auto completions = (*facade)->Drain();
  ASSERT_TRUE(completions.ok());

  EXPECT_EQ(completions->size(), trace->size());
  EXPECT_DOUBLE_EQ((*facade)->now_ms(), engine_metrics->makespan_ms);
}

}  // namespace
}  // namespace liferaft
