// liferaft_tool — command-line utility for working with LifeRaft archives
// and traces (the `ldb` of this project).
//
//   liferaft_tool gen-catalog  --objects N [--per-bucket K] [--seed S]
//                              [--format row|columnar] --out F
//   liferaft_tool inspect      --store F [--verify-checksums] [--volumes N]
//   liferaft_tool verify       --store F
//   liferaft_tool gen-trace    --queries N [--seed S] [--preset long] --out F
//   liferaft_tool trace-stats  --trace F --store F
//   liferaft_tool replay       --trace F --store F [--alpha A] [--rate R]
//                              [--cache C] [--mode shared|noshare|indexonly]
//                              [--io modeled|real] [--volumes N]
//                              [--prefetch D] [--direct]
//
// All subcommands print human-readable reports to stdout and return a
// non-zero exit code on failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sched/liferaft_scheduler.h"
#include "sim/arrivals.h"
#include "sim/engine.h"
#include "storage/async_io.h"
#include "storage/catalog.h"
#include "storage/file_store.h"
#include "storage/partitioner.h"
#include "storage/topology.h"
#include "util/random.h"
#include "util/table.h"
#include "workload/catalog_gen.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace liferaft::tool {
namespace {

// ------------------------------------------------------- flag parsing ----

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
        return;
      }
      std::string key = arg.substr(2);
      // A flag followed by another flag (or nothing) is boolean true:
      // `inspect --store F --verify-checksums`.
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        values_[key] = "1";
      } else {
        values_[key] = argv[++i];
      }
    }
  }

  bool ok() const { return ok_; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr,
                                               10);
  }

  bool GetBool(const std::string& key) const {
    auto it = values_.find(key);
    return it != values_.end() && it->second != "0" &&
           it->second != "false";
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool Require(const std::vector<std::string>& keys) const {
    for (const auto& key : keys) {
      if (values_.count(key) == 0) {
        std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Reads every bucket of a FileStore back into an in-memory Catalog (with
// index) so the replay path has the full execution substrate.
Result<std::unique_ptr<storage::Catalog>> LoadCatalog(
    const std::string& path, size_t objects_per_bucket) {
  LIFERAFT_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileStore> store,
                            storage::FileStore::Open(path));
  std::vector<storage::CatalogObject> objects;
  for (storage::BucketIndex i = 0; i < store->num_buckets(); ++i) {
    LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const storage::Bucket> b,
                              store->ReadBucket(i));
    objects.insert(objects.end(), b->objects().begin(),
                   b->objects().end());
    if (objects_per_bucket == 0) {
      objects_per_bucket = std::max(objects_per_bucket, b->size());
    }
  }
  storage::CatalogOptions options;
  options.objects_per_bucket = objects_per_bucket;
  return storage::Catalog::Build(std::move(objects), options);
}

// ---------------------------------------------------------- subcommands --

int GenCatalog(const Flags& flags) {
  if (!flags.Require({"objects", "out"})) return 2;
  workload::CatalogGenConfig gen;
  gen.num_objects = flags.GetUint("objects", 0);
  gen.seed = flags.GetUint("seed", 7);
  auto objects = workload::GenerateCatalog(gen);
  if (!objects.ok()) return Fail(objects.status());

  size_t per_bucket = flags.GetUint("per-bucket", 1000);
  auto partition = storage::PartitionCatalog(std::move(*objects),
                                             per_bucket);
  if (!partition.ok()) return Fail(partition.status());
  const std::string format = flags.GetString("format", "columnar");
  storage::BucketFormat bucket_format;
  if (format == "row") {
    bucket_format = storage::BucketFormat::kRowV1;
  } else if (format == "columnar") {
    bucket_format = storage::BucketFormat::kColumnarV2;
  } else {
    std::fprintf(stderr, "unknown --format %s (row|columnar)\n",
                 format.c_str());
    return 2;
  }
  Status st = storage::FileStore::Create(flags.GetString("out"),
                                         partition->buckets, bucket_format);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu objects in %zu buckets to %s (%s)\n",
              gen.num_objects, partition->buckets.size(),
              flags.GetString("out").c_str(), format.c_str());
  return 0;
}

int Inspect(const Flags& flags) {
  if (!flags.Require({"store"})) return 2;
  auto store = storage::FileStore::Open(flags.GetString("store"));
  if (!store.ok()) return Fail(store.status());
  size_t total = 0, smallest = SIZE_MAX, largest = 0;
  for (storage::BucketIndex i = 0; i < (*store)->num_buckets(); ++i) {
    size_t n = (*store)->BucketObjectCount(i);
    total += n;
    smallest = std::min(smallest, n);
    largest = std::max(largest, n);
  }
  std::printf("store:        %s\n", flags.GetString("store").c_str());
  std::printf("format:       %s\n",
              (*store)->format() == storage::BucketFormat::kColumnarV2
                  ? "columnar v2"
                  : "row v1");
  std::printf("buckets:      %zu\n", (*store)->num_buckets());
  std::printf("objects:      %zu (min %zu / max %zu per bucket)\n", total,
              smallest, largest);
  auto first = (*store)->bucket_map().RangeOf(0);
  std::printf("curve start:  [%llu, %llu] (%s..)\n",
              static_cast<unsigned long long>(first.lo),
              static_cast<unsigned long long>(first.hi),
              htm::IdToName(htm::AncestorAt(first.lo, 2)).c_str());
  if (!flags.GetBool("verify-checksums")) return 0;

  // Full checksum sweep through the per-volume submission queues (the same
  // read path real-I/O execution uses), reporting corruption per volume.
  storage::StorageTopologyConfig topo_config;
  topo_config.num_volumes =
      std::max<uint64_t>(1, flags.GetUint("volumes", 1));
  auto topology = storage::StorageTopology::Create(
      (*store)->num_buckets(), topo_config, storage::DiskModelParams{});
  if (!topology.ok()) return Fail(topology.status());
  auto reader = (*store)->NewAsyncReader(&*topology);
  size_t corrupt = 0;
  for (storage::BucketIndex i = 0; i < (*store)->num_buckets(); ++i) {
    reader->SubmitRead(i, [&](const storage::AsyncReadCompletion& c) {
      if (c.status.ok()) return;
      ++corrupt;
      std::printf("bucket %u (volume %u): %s\n", c.index, c.volume,
                  c.status.ToString().c_str());
    });
  }
  reader->Drain();
  std::printf("checksums:    %zu buckets over %zu volume(s)\n",
              (*store)->num_buckets(), topology->num_volumes());
  std::vector<storage::AsyncVolumeStats> stats = reader->VolumeStats();
  for (size_t v = 0; v < stats.size(); ++v) {
    std::printf("  volume %zu:   %llu reads, %llu failed (%llu checksum)\n",
                v, static_cast<unsigned long long>(stats[v].reads),
                static_cast<unsigned long long>(stats[v].failures),
                static_cast<unsigned long long>(stats[v].checksum_failures));
  }
  if (corrupt != 0) {
    std::printf("FAILED: %zu corrupt buckets\n", corrupt);
    return 1;
  }
  std::printf("OK: all checksums verified\n");
  return 0;
}

int Verify(const Flags& flags) {
  if (!flags.Require({"store"})) return 2;
  auto store = storage::FileStore::Open(flags.GetString("store"));
  if (!store.ok()) return Fail(store.status());
  size_t bad = 0;
  for (storage::BucketIndex i = 0; i < (*store)->num_buckets(); ++i) {
    auto bucket = (*store)->ReadBucket(i);
    if (!bucket.ok()) {
      std::printf("bucket %u: %s\n", i, bucket.status().ToString().c_str());
      ++bad;
    }
  }
  if (bad == 0) {
    std::printf("OK: all %zu buckets verified\n", (*store)->num_buckets());
    return 0;
  }
  std::printf("FAILED: %zu corrupt buckets\n", bad);
  return 1;
}

int GenTrace(const Flags& flags) {
  if (!flags.Require({"queries", "out"})) return 2;
  workload::TraceConfig tc = flags.GetString("preset") == "long"
                                 ? workload::LongRunningSkyQueryPreset()
                                 : workload::TraceConfig{};
  tc.num_queries = flags.GetUint("queries", 0);
  tc.seed = flags.GetUint("seed", 42);
  auto trace = workload::GenerateTrace(tc);
  if (!trace.ok()) return Fail(trace.status());
  Status st = workload::SaveTrace(flags.GetString("out"), *trace);
  if (!st.ok()) return Fail(st);
  size_t objects = 0;
  for (const auto& q : *trace) objects += q.objects.size();
  std::printf("wrote %zu queries (%zu cross-match objects) to %s\n",
              trace->size(), objects, flags.GetString("out").c_str());
  return 0;
}

int TraceStats(const Flags& flags) {
  if (!flags.Require({"trace", "store"})) return 2;
  auto trace = workload::LoadTrace(flags.GetString("trace"));
  if (!trace.ok()) return Fail(trace.status());
  auto store = storage::FileStore::Open(flags.GetString("store"));
  if (!store.ok()) return Fail(store.status());
  const storage::BucketMap& map = (*store)->bucket_map();

  auto touches = workload::CharacterizeTrace(*trace, map);
  double top10 = workload::TopKTouchFraction(*trace, map, 10);
  double mass50 =
      workload::BucketFractionForMass(touches, (*store)->num_buckets(), 0.5);
  std::printf("queries:                   %zu\n", trace->size());
  std::printf("buckets touched:           %zu of %zu\n", touches.size(),
              (*store)->num_buckets());
  std::printf("top-10 bucket touch rate:  %.1f%% of queries\n",
              top10 * 100.0);
  std::printf("buckets holding 50%% mass:  %.1f%%\n", mass50 * 100.0);
  return 0;
}

int Replay(const Flags& flags) {
  if (!flags.Require({"trace", "store"})) return 2;
  auto trace = workload::LoadTrace(flags.GetString("trace"));
  if (!trace.ok()) return Fail(trace.status());

  const std::string io = flags.GetString("io", "modeled");
  if (io != "modeled" && io != "real") {
    std::fprintf(stderr, "unknown --io %s (modeled|real)\n", io.c_str());
    return 2;
  }
  const bool real_io = io == "real";

  std::unique_ptr<storage::Catalog> catalog;
  bool direct_active = false;
  if (real_io) {
    // Real mode must execute against the file itself: LoadCatalog's
    // read-everything-into-memory path would turn every "read" into a
    // memcpy and the wall-clock telemetry into fiction.
    storage::FileStoreOptions options;
    options.use_direct_io = flags.GetBool("direct");
    options.advise_random = true;
    auto store =
        storage::FileStore::Open(flags.GetString("store"), options);
    if (!store.ok()) return Fail(store.status());
    direct_active = (*store)->direct_io_active();
    auto wrapped = storage::Catalog::FromStore(std::move(*store));
    if (!wrapped.ok()) return Fail(wrapped.status());
    catalog = std::move(*wrapped);
  } else {
    auto loaded = LoadCatalog(flags.GetString("store"),
                              flags.GetUint("per-bucket", 0));
    if (!loaded.ok()) return Fail(loaded.status());
    catalog = std::move(*loaded);
  }

  double rate = flags.GetDouble("rate", 0.5);
  Rng rng(flags.GetUint("seed", 1));
  auto arrivals = *sim::PoissonArrivals(trace->size(), rate, &rng);

  sim::EngineConfig config;
  config.cache_capacity = flags.GetUint("cache", 20);
  config.io_mode = real_io ? sim::IoMode::kReal : sim::IoMode::kModeled;
  config.topology.num_volumes = flags.GetUint("volumes", 1);
  size_t prefetch = flags.GetUint("prefetch", 0);
  if (prefetch > 0) {
    config.enable_prefetch = true;
    config.prefetch_depth = prefetch;
  }
  std::string mode = flags.GetString("mode", "shared");
  std::unique_ptr<sched::Scheduler> scheduler;
  if (mode == "shared") {
    sched::LifeRaftConfig sched_config;
    sched_config.alpha = flags.GetDouble("alpha", 0.25);
    scheduler = std::make_unique<sched::LifeRaftScheduler>(
        catalog->store(), storage::DiskModel(config.disk), sched_config);
  } else if (mode == "noshare") {
    config.mode = sim::ExecutionMode::kNoShare;
  } else if (mode == "indexonly") {
    config.mode = sim::ExecutionMode::kIndexOnly;
  } else {
    std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
    return 2;
  }

  sim::SimEngine engine(catalog.get(), std::move(scheduler), config);
  auto metrics = engine.Run(*trace, arrivals);
  if (!metrics.ok()) return Fail(metrics.status());
  std::printf("%s\n", metrics->Summary().c_str());
  std::printf("p50 response: %.1f s   p95 response: %.1f s\n",
              metrics->p50_response_ms / 1000.0,
              metrics->p95_response_ms / 1000.0);
  std::printf("scan batches: %llu   indexed batches: %llu\n",
              static_cast<unsigned long long>(metrics->evaluator.scan_batches),
              static_cast<unsigned long long>(
                  metrics->evaluator.indexed_batches));
  if (metrics->real_io_enabled) {
    std::printf("real I/O (%s):\n",
                direct_active ? "O_DIRECT" : "buffered");
    for (size_t v = 0; v < metrics->real_io.size(); ++v) {
      const storage::AsyncVolumeStats& s = metrics->real_io[v];
      std::printf(
          "  volume %zu: %llu reads, %.1f MB, p50 %.2f ms, p99 %.2f ms, "
          "%llu failed (%llu checksum)\n",
          v, static_cast<unsigned long long>(s.reads),
          static_cast<double>(s.bytes) / (1024.0 * 1024.0), s.p50_latency_ms,
          s.p99_latency_ms, static_cast<unsigned long long>(s.failures),
          static_cast<unsigned long long>(s.checksum_failures));
    }
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: liferaft_tool <command> [flags]\n"
      "  gen-catalog  --objects N [--per-bucket K] [--seed S]\n"
      "               [--format row|columnar] --out F\n"
      "  inspect      --store F [--verify-checksums] [--volumes N]\n"
      "  verify       --store F\n"
      "  gen-trace    --queries N [--seed S] [--preset long] --out F\n"
      "  trace-stats  --trace F --store F\n"
      "  replay       --trace F --store F [--alpha A] [--rate R]\n"
      "               [--cache C] [--mode shared|noshare|indexonly]\n"
      "               [--io modeled|real] [--volumes N] [--prefetch D]\n"
      "               [--direct]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.ok()) return 2;
  if (command == "gen-catalog") return GenCatalog(flags);
  if (command == "inspect") return Inspect(flags);
  if (command == "verify") return Verify(flags);
  if (command == "gen-trace") return GenTrace(flags);
  if (command == "trace-stats") return TraceStats(flags);
  if (command == "replay") return Replay(flags);
  return Usage();
}

}  // namespace
}  // namespace liferaft::tool

int main(int argc, char** argv) { return liferaft::tool::Main(argc, argv); }
