#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots and fail on regressions.

Usage:
  tools/bench_compare.py ANCHOR.json CURRENT.json [options]

Options:
  --threshold FRAC          real_time regression tolerance as a fraction
                            (default 0.15 = fail if current is >15% slower)
  --counter-threshold FRAC  tolerance for modeled (virtual) counters
                            (default: same as --threshold)
  --skip REGEX              skip benchmarks whose name matches REGEX; may
                            be repeated. Adds to the built-in skip list.
  --no-default-skip         drop the built-in skip list (compare noisy
                            benches too)

Comparison rules:
  * Only benchmarks present in both files are compared; entries unique to
    either side are listed as informational (new benches are expected when
    a PR adds features — they become comparable once the anchor is
    regenerated).
  * Wall-clock comparison uses `real_time` (lower is better), normalized
    to nanoseconds via `time_unit`.
  * Modeled counters listed in COUNTER_DIRECTION are also compared; they
    are deterministic virtual quantities, so any drift is a real scheduling
    change, but the same threshold is applied so an intentional schedule
    improvement elsewhere in the run does not fail the gate.
  * A benchmark matching a skip pattern is reported as SKIP and never
    fails the gate. This is the documented escape hatch for known-noisy
    benches (see DEFAULT_SKIP below and docs/BENCHMARKS.md).

Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage
or unreadable input.
"""

import argparse
import json
import re
import sys

# The documented skip label for known-noisy benches: wall-clock parity
# probes whose *signal* is "fan-out overhead is negligible", measured on
# CI runners with one core — their absolute times are scheduler noise.
# Add a pattern here (or pass --skip) to exempt a bench from the gate;
# every skip is printed in the report so it cannot rot silently.
DEFAULT_SKIP = [
    r"^BM_EngineNoShareThreads",
    r"^BM_EngineIndexOnlyThreads",
    # Thread-contention A/B probe: on a 1-core runner its wall time is
    # scheduler noise (the signal is the multi-core CPU-time delta).
    r"^BM_ParallelJoinArenas",
    # Measured (wall-clock) disk drain: real pread(2)s against whatever
    # device backs the runner's temp dir, so its absolute times and its
    # wall counters (wall_makespan_ms, io_p99_ms, ...) are machine facts,
    # not schedule facts. The committed anchors document the multi-volume
    # speedup (docs/BENCHMARKS.md); the modeled benches above still carry
    # every gated counter.
    r"^BM_RealIoDrain",
]

# Modeled (virtual-clock) user counters worth gating, with the direction
# that counts as a regression. Deterministic by construction — see
# docs/BENCHMARKS.md "Determinism ground rules".
COUNTER_DIRECTION = {
    "virtual_makespan_ms": "lower",   # modeled drain makespan
    "prefetch_hidden_ms": "higher",   # fetch latency hidden behind compute
    # Serving-mode (BM_EngineServe) counters. sustained_qps is the
    # completed work rate at the offered load; a drop means the serving
    # loop drains less than it used to. p99_interactive_ms is the
    # tail-latency target axis of the QPS-at-p99 methodology
    # (docs/BENCHMARKS.md): growth means interactive queries wait longer
    # behind batch work. Both are virtual-clock deterministic. `shed` and
    # p99_batch_ms are reported but not gated: at a fixed offered rate
    # shedding is a policy outcome, not a regression direction.
    "sustained_qps": "higher",
    "p99_interactive_ms": "lower",
    # Columnar-format counters (BM_EngineFixedCacheBudgetDrain): the
    # encoded-page compression (this format's total page bytes over the
    # row-v1 total) and the residency it buys at a fixed cache byte
    # budget. Growth in the ratio or a hit-rate drop means the v2
    # encoding got fatter.
    "encoded_bytes_ratio": "lower",
    "cache_hit_rate": "higher",
}

_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def real_time_ns(entry):
    return entry["real_time"] * _NS_PER_UNIT.get(entry.get("time_unit", "ns"), 1.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("anchor")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15)
    parser.add_argument("--counter-threshold", type=float, default=None)
    parser.add_argument("--skip", action="append", default=[])
    parser.add_argument("--no-default-skip", action="store_true")
    args = parser.parse_args()
    counter_threshold = (
        args.counter_threshold if args.counter_threshold is not None
        else args.threshold)

    skips = list(args.skip)
    if not args.no_default_skip:
        skips += DEFAULT_SKIP
    skip_res = [re.compile(p) for p in skips]

    anchor = load_benchmarks(args.anchor)
    current = load_benchmarks(args.current)

    regressions = []
    compared = 0
    print(f"comparing {args.current} against anchor {args.anchor} "
          f"(threshold {args.threshold:.0%})")
    for name in sorted(set(anchor) & set(current)):
        if any(r.search(name) for r in skip_res):
            print(f"  SKIP  {name} (skip-listed)")
            continue
        compared += 1
        a, c = anchor[name], current[name]
        a_ns, c_ns = real_time_ns(a), real_time_ns(c)
        ratio = c_ns / a_ns if a_ns > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            regressions.append(f"{name}: real_time {a_ns:.0f} -> {c_ns:.0f} ns "
                               f"({ratio:.2f}x)")
        print(f"  {verdict:>10}  {name}  real_time {ratio:.2f}x")
        for counter, direction in COUNTER_DIRECTION.items():
            if counter not in a or counter not in c:
                continue
            av, cv = float(a[counter]), float(c[counter])
            if av <= 0:
                continue
            cratio = cv / av
            bad = (cratio > 1.0 + counter_threshold if direction == "lower"
                   else cratio < 1.0 - counter_threshold)
            tag = "REGRESSION" if bad else "ok"
            if bad:
                regressions.append(
                    f"{name}: {counter} {av:.1f} -> {cv:.1f} ({cratio:.2f}x, "
                    f"{direction} is better)")
            print(f"  {tag:>10}    {counter} {cratio:.2f}x "
                  f"({av:.1f} -> {cv:.1f})")

    for name in sorted(set(anchor) - set(current)):
        print(f"  INFO  {name} only in anchor (removed bench?)")
    for name in sorted(set(current) - set(anchor)):
        print(f"  INFO  {name} only in current (new bench; lands in the "
              f"next anchor)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond threshold:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"\nno regressions across {compared} compared benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
