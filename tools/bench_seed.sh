#!/usr/bin/env bash
# Emits BENCH_<tag>.json (default: seed) from the bench_micro
# google-benchmark suite — the perf-trajectory anchor successive PRs
# compare against. Usage: tools/bench_seed.sh [tag] [extra bench args...]
#
# Anchors build in a dedicated Release tree (build-bench/) so the numbers
# a PR records and the numbers CI's bench-regression gate reproduces come
# from the same build type, independent of whatever configuration the
# developer's main build/ tree is in.
set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-seed}"
shift || true

cmake -B build-bench -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DLIFERAFT_BUILD_TESTS=OFF \
  -DLIFERAFT_BUILD_EXAMPLES=OFF \
  -DLIFERAFT_BUILD_TOOLS=OFF >/dev/null
cmake --build build-bench -j --target bench_micro >/dev/null
./build-bench/bench_micro \
  --benchmark_format=json \
  --benchmark_out="BENCH_${TAG}.json" \
  --benchmark_out_format=json \
  "$@"
echo "wrote BENCH_${TAG}.json"
