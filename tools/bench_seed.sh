#!/usr/bin/env bash
# Emits BENCH_<tag>.json (default: seed) from the bench_micro
# google-benchmark suite — the perf-trajectory anchor successive PRs
# compare against. Usage: tools/bench_seed.sh [tag] [extra bench args...]
set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-seed}"
shift || true

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_micro >/dev/null
./build/bench_micro \
  --benchmark_format=json \
  --benchmark_out="BENCH_${TAG}.json" \
  --benchmark_out_format=json \
  "$@"
echo "wrote BENCH_${TAG}.json"
