#!/usr/bin/env python3
"""Report and compare scenario-matrix JSON output (docs/SCENARIOS.md).

The C++ runner (build/scenario_matrix) produces the deterministic per-cell
JSON; this wrapper renders it for humans and diffs two reports:

  tools/scenario_matrix.py report RUN.json
      Print a per-cell summary table plus any invariant failures.

  tools/scenario_matrix.py compare BASE.json CURRENT.json [--threshold F]
      Compare the cells present in both reports. Invariant failures in
      CURRENT always fail the comparison; makespan drift beyond the
      threshold fraction (default 0.10) is reported as a regression when
      slower, as info when faster. Cells unique to either side are
      informational (grids grow).

Exit status: 0 = clean, 1 = invariant failure or regression, 2 = usage or
unreadable input.
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if "cells" not in report:
        print(f"error: {path} is not a scenario-matrix report", file=sys.stderr)
        sys.exit(2)
    return report


def cell_summary(cell):
    m = cell["metrics"]
    qos = {q["class"]: q for q in m.get("qos_classes", [])}
    interactive_p99 = qos.get("interactive", {}).get("p99_response_ms", 0.0)
    return (
        f"{cell['name']:<24} "
        f"{m['queries_completed']:>5}/{m['queries_offered']:<5} "
        f"shed={m['queries_shed']:<4} "
        f"makespan={m['makespan_ms']:>12.1f}ms "
        f"sustained={m['sustained_qps']:.3f}q/s "
        f"hit={m['cache_hit_rate']:.2f} "
        f"int_p99={interactive_p99:.0f}ms"
    )


def cmd_report(args):
    report = load_report(args.report)
    failures = 0
    for cell in report["cells"]:
        print(cell_summary(cell))
        for failure in cell["failures"]:
            failures += 1
            print(f"  FAIL {failure}")
    print(f"{len(report['cells'])} cells, {failures} invariant failure(s)")
    return 0 if failures == 0 else 1


def cmd_compare(args):
    base = {c["name"]: c for c in load_report(args.base)["cells"]}
    cur = {c["name"]: c for c in load_report(args.current)["cells"]}
    bad = 0
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            print(f"INFO {name}: only in base")
            continue
        if name not in base:
            print(f"INFO {name}: only in current")
            continue
        for failure in cur[name]["failures"]:
            bad += 1
            print(f"FAIL {name}: {failure}")
        b = base[name]["metrics"]["makespan_ms"]
        c = cur[name]["metrics"]["makespan_ms"]
        if b > 0 and c > b * (1.0 + args.threshold):
            bad += 1
            print(f"FAIL {name}: makespan {b:.1f} -> {c:.1f} ms "
                  f"(+{(c / b - 1.0) * 100:.1f}%)")
        elif b > 0 and c < b * (1.0 - args.threshold):
            print(f"INFO {name}: makespan {b:.1f} -> {c:.1f} ms "
                  f"({(c / b - 1.0) * 100:.1f}%)")
    print(f"{bad} failure(s)")
    return 0 if bad == 0 else 1


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_report = sub.add_parser("report", help="summarize one report")
    p_report.add_argument("report")
    p_compare = sub.add_parser("compare", help="diff two reports")
    p_compare.add_argument("base")
    p_compare.add_argument("current")
    p_compare.add_argument("--threshold", type=float, default=0.10)
    args = parser.parse_args(argv)
    if args.command == "report":
        return cmd_report(args)
    return cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
