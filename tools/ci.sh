#!/usr/bin/env bash
# CI entry point: runs the docs check plus the tier-1 verify command
# verbatim (ROADMAP.md). Mirrors .github/workflows/ci.yml for hosts
# without Actions.
#
#   tools/ci.sh          # docs check + tier-1 build & test + serving smoke
#   tools/ci.sh --tsan   # ThreadSanitizer smoke: builds test_thread_pool,
#                        # test_storage, test_topology, test_serve, and
#                        # test_async_io with -fsanitize=thread and runs
#                        # them (work stealing + sharded-cache races +
#                        # per-volume FileStore lanes + concurrent admission
#                        # control + submission-queue workers/completions)
#   tools/ci.sh --asan   # ASan+UBSan smoke: builds test_exec, test_storage,
#                        # test_topology, test_columnar, and test_async_io
#                        # with -fsanitize=address,undefined and runs them
#                        # (arena lifetimes incl. I/O scratch, prefetch
#                        # claim/cancel memory, eviction-tier bookkeeping,
#                        # columnar page decode over corrupted input, and
#                        # async-reader fault injection/teardown)
#   tools/ci.sh --real-io # Wall-clock I/O smoke: gen-catalog to disk, replay
#                        # with --io real over 2 volumes (prefetch on), then
#                        # inspect --verify-checksums. Exercises the pread
#                        # submission queues end to end on a real filesystem.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--asan" ]; then
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLIFERAFT_BUILD_BENCH=OFF \
    -DLIFERAFT_BUILD_EXAMPLES=OFF \
    -DLIFERAFT_BUILD_TOOLS=OFF
  cmake --build build-asan -j --target test_exec test_storage test_topology \
    test_columnar test_async_io
  # Leak checking is on by default under ASan; -fno-sanitize-recover
  # already turned every UBSan diagnostic into a hard failure.
  ./build-asan/test_exec
  ./build-asan/test_storage
  ./build-asan/test_topology
  ./build-asan/test_columnar
  ./build-asan/test_async_io
  echo "asan+ubsan smoke OK"
  exit 0
fi

if [ "${1:-}" = "--tsan" ]; then
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
    -DLIFERAFT_BUILD_BENCH=OFF \
    -DLIFERAFT_BUILD_EXAMPLES=OFF \
    -DLIFERAFT_BUILD_TOOLS=OFF
  cmake --build build-tsan -j --target test_thread_pool test_storage test_topology test_serve test_async_io
  # halt_on_error so a reported race fails the job, not just the log.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/test_thread_pool
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/test_storage
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/test_topology
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/test_serve
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/test_async_io
  echo "tsan smoke OK"
  exit 0
fi

if [ "${1:-}" = "--real-io" ]; then
  cmake -B build -S . && cmake --build build -j --target liferaft_tool
  realio_tmp="$(mktemp -d)"
  trap 'rm -rf "$realio_tmp"' EXIT
  # Small on purpose: the smoke proves the real path (per-volume fds,
  # pread queues, wall-clock telemetry, checksum verification) works end
  # to end; the measured-speedup story lives in the committed bench
  # anchors (docs/BENCHMARKS.md), not in CI timing assertions.
  ./build/liferaft_tool gen-catalog --objects 200000 --per-bucket 5000 \
    --format columnar --seed 7 --out "$realio_tmp/cat.lfr"
  ./build/liferaft_tool gen-trace --queries 16 --seed 11 \
    --out "$realio_tmp/trace.lfr"
  ./build/liferaft_tool replay --store "$realio_tmp/cat.lfr" \
    --trace "$realio_tmp/trace.lfr" --io real --volumes 2 --prefetch 2
  ./build/liferaft_tool inspect --store "$realio_tmp/cat.lfr" \
    --verify-checksums --volumes 2
  echo "real-io smoke OK"
  exit 0
fi

tools/check_docs.sh

cmake -B build -S . && cmake --build build -j && cd build && \
  ctest --output-on-failure -j

# Serving-mode smoke: the open-loop path (admission control, QoS classes,
# adaptive alpha) end to end — fast and deterministic, so any drift in the
# serving loop fails CI here before the bench gate sees it.
cd .. && ./build/test_serve --gtest_brief=1

# Scenario-matrix smoke (docs/SCENARIOS.md): the declarative grid of
# arrival shape x topology x QoS cells, with machine-checked invariants.
# The runner exits non-zero on any invariant failure; on top of that the
# report must be byte-identical across two runs (same seed => same JSON).
scenario_tmp="$(mktemp -d)"
trap 'rm -rf "$scenario_tmp"' EXIT
./build/scenario_matrix --grid smoke --out "$scenario_tmp/run1.json"
./build/scenario_matrix --grid smoke --out "$scenario_tmp/run2.json"
cmp "$scenario_tmp/run1.json" "$scenario_tmp/run2.json"
echo "scenario smoke OK: grid deterministic, invariants hold"
