#!/usr/bin/env bash
# CI entry point: runs the docs check plus the tier-1 verify command
# verbatim (ROADMAP.md). Mirrors .github/workflows/ci.yml for hosts
# without Actions.
set -euo pipefail
cd "$(dirname "$0")/.."

tools/check_docs.sh

cmake -B build -S . && cmake --build build -j && cd build && \
  ctest --output-on-failure -j
