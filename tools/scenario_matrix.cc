// scenario_matrix — the scenario-matrix harness CLI (docs/SCENARIOS.md).
//
//   scenario_matrix --grid smoke|full [--out F] [--spill-dir D]
//                   [--no-determinism]
//   scenario_matrix --spec F [--out F] [--spill-dir D] [--no-determinism]
//   scenario_matrix --list smoke|full
//
// Runs every cell of the grid through SimEngine::Serve, checks the
// machine-readable invariants (determinism, volume monotonicity, QoS
// ordering, no-shed bound), writes the deterministic JSON report to --out
// (default stdout), and exits non-zero if any invariant failed — that exit
// code is what the CI job gates on.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/scenario_matrix.h"

namespace liferaft::tool {
namespace {

struct Options {
  std::string grid;
  std::string spec_path;
  std::string out_path;
  std::string list;
  std::string spill_dir;
  bool verify_determinism = true;
};

int Usage() {
  std::fprintf(stderr,
               "usage: scenario_matrix --grid smoke|full | --spec FILE | "
               "--list smoke|full\n"
               "                       [--out FILE] [--spill-dir DIR] "
               "[--no-determinism]\n");
  return 2;
}

int Run(const Options& options) {
  using sim::ScenarioCell;

  Result<std::vector<ScenarioCell>> cells =
      Status::InvalidArgument("no grid selected");
  if (!options.spec_path.empty()) {
    std::ifstream in(options.spec_path);
    if (!in) {
      std::fprintf(stderr, "cannot read spec %s\n", options.spec_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    cells = sim::ParseScenarioSpec(text.str());
  } else {
    cells = sim::BuiltinScenarioGrid(options.grid.empty() ? options.list
                                                          : options.grid);
  }
  if (!cells.ok()) {
    std::fprintf(stderr, "%s\n", cells.status().ToString().c_str());
    return 2;
  }

  if (!options.list.empty()) {
    for (const ScenarioCell& cell : *cells) {
      std::printf("%s\n", cell.name.c_str());
    }
    return 0;
  }

  sim::ScenarioMatrixOptions run_options;
  run_options.verify_determinism = options.verify_determinism;
  run_options.spill_dir = options.spill_dir;

  auto results = sim::RunScenarioMatrix(*cells, run_options);
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 2;
  }

  std::string report = sim::ScenarioReportJson(*results);
  if (options.out_path.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::ofstream out(options.out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.out_path.c_str());
      return 2;
    }
    out << report;
  }

  size_t failures = sim::CountScenarioFailures(*results);
  for (const sim::ScenarioResult& r : *results) {
    for (const std::string& f : r.failures) {
      std::fprintf(stderr, "FAIL [%s] %s\n", r.cell.name.c_str(), f.c_str());
    }
  }
  std::fprintf(stderr, "%zu cells, %zu invariant failure(s)\n",
               results->size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace liferaft::tool

int main(int argc, char** argv) {
  using liferaft::tool::Options;
  Options options;
  // Default scratch for spill cells; --spill-dir overrides (CI points it
  // at the job workspace).
  options.spill_dir = std::filesystem::temp_directory_path().string();
  std::map<std::string, std::string*> string_flags = {
      {"--grid", &options.grid},     {"--spec", &options.spec_path},
      {"--out", &options.out_path},  {"--list", &options.list},
      {"--spill-dir", &options.spill_dir},
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-determinism") == 0) {
      options.verify_determinism = false;
      continue;
    }
    auto it = string_flags.find(argv[i]);
    if (it == string_flags.end() || i + 1 >= argc) {
      return liferaft::tool::Usage();
    }
    *it->second = argv[++i];
  }
  if (options.grid.empty() == options.spec_path.empty() &&
      options.list.empty()) {
    return liferaft::tool::Usage();  // exactly one of --grid / --spec
  }
  return liferaft::tool::Run(options);
}
