#!/usr/bin/env bash
# Fails if any file under src/ is not mentioned in docs/ARCHITECTURE.md,
# keeping the architecture map from rotting as the tree grows. A file
# src/<dir>/<name>.<ext> counts as mentioned if the string "<dir>/<name>"
# appears in the doc (so one row covers a .h/.cc pair).
#
# Also fails if any scenario-spec key accepted by the parser in
# src/sim/scenario_matrix.cc (each marked with a SCENARIO_KEY(<key>)
# comment) is missing from docs/SCENARIOS.md, so the spec-format reference
# cannot silently fall behind the parser.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/ARCHITECTURE.md
[ -f "$DOC" ] || { echo "missing $DOC" >&2; exit 1; }

missing=0
while IFS= read -r f; do
  rel="${f#src/}"
  stem="${rel%.*}"
  if ! grep -qF "$stem" "$DOC"; then
    echo "undocumented source file: $f (add '$stem' to $DOC)" >&2
    missing=1
  fi
done < <(find src -type f | sort)

if [ "$missing" -ne 0 ]; then
  echo "docs check FAILED: update $DOC" >&2
  exit 1
fi
echo "docs check OK: every src/ file is mapped in $DOC"

SCEN_DOC=docs/SCENARIOS.md
SCEN_SRC=src/sim/scenario_matrix.cc
[ -f "$SCEN_DOC" ] || { echo "missing $SCEN_DOC" >&2; exit 1; }

missing=0
while IFS= read -r key; do
  if ! grep -qF "\`$key\`" "$SCEN_DOC"; then
    echo "undocumented scenario key: $key (add \`$key\` to $SCEN_DOC)" >&2
    missing=1
  fi
done < <(grep -o 'SCENARIO_KEY([a-z_]*)' "$SCEN_SRC" | sed 's/SCENARIO_KEY(\(.*\))/\1/' | sort -u)

if [ "$missing" -ne 0 ]; then
  echo "docs check FAILED: update $SCEN_DOC" >&2
  exit 1
fi
echo "docs check OK: every scenario-spec key is documented in $SCEN_DOC"
