#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py — the CI perf gate's comparator.

The gate itself is load-bearing (a buggy comparator silently waves
regressions through), so this suite pins down the behaviors the CI job
relies on: threshold edges on real_time, counter direction handling,
missing-counter tolerance, the skip list (default and user-supplied), and
unreadable-input exit codes. Run directly or through ctest
(bench_compare.test_bench_compare_py).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_compare.py")


def bench(name, real_time, time_unit="ms", **counters):
    entry = {"name": name, "real_time": real_time, "time_unit": time_unit}
    entry.update(counters)
    return entry


def snapshot(*benchmarks):
    return {"benchmarks": list(benchmarks)}


class BenchCompareTest(unittest.TestCase):
    def run_tool(self, anchor, current, *args):
        """Writes both snapshots to temp files and runs the comparator."""
        with tempfile.TemporaryDirectory() as d:
            anchor_path = os.path.join(d, "anchor.json")
            current_path = os.path.join(d, "current.json")
            for path, data in ((anchor_path, anchor), (current_path, current)):
                if isinstance(data, str):  # raw (possibly invalid) content
                    with open(path, "w") as f:
                        f.write(data)
                else:
                    with open(path, "w") as f:
                        json.dump(data, f)
            proc = subprocess.run(
                [sys.executable, TOOL, anchor_path, current_path, *args],
                capture_output=True, text=True)
            return proc

    # ---------------------------------------------- real_time threshold --

    def test_identical_snapshots_pass(self):
        snap = snapshot(bench("BM_X", 100.0))
        proc = self.run_tool(snap, snap)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_regression_just_beyond_threshold_fails(self):
        anchor = snapshot(bench("BM_X", 100.0))
        current = snapshot(bench("BM_X", 115.1))  # > +15%
        proc = self.run_tool(anchor, current, "--threshold", "0.15")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_regression_exactly_at_threshold_passes(self):
        # The gate is strict-greater: exactly +15% is tolerated.
        anchor = snapshot(bench("BM_X", 100.0))
        current = snapshot(bench("BM_X", 114.99999))
        proc = self.run_tool(anchor, current, "--threshold", "0.15")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_improvement_passes(self):
        anchor = snapshot(bench("BM_X", 100.0))
        current = snapshot(bench("BM_X", 50.0))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_time_unit_normalization(self):
        # 0.1 s == 100 ms: different units, same duration, no regression.
        anchor = snapshot(bench("BM_X", 100.0, time_unit="ms"))
        current = snapshot(bench("BM_X", 0.1, time_unit="s"))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_tighter_threshold_flag(self):
        anchor = snapshot(bench("BM_X", 100.0))
        current = snapshot(bench("BM_X", 108.0))  # +8%
        self.assertEqual(self.run_tool(anchor, current).returncode, 0)
        proc = self.run_tool(anchor, current, "--threshold", "0.05")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    # --------------------------------------------------- counter gating --

    def test_lower_is_better_counter_regression(self):
        anchor = snapshot(bench("BM_X", 100.0, virtual_makespan_ms=1000.0))
        current = snapshot(bench("BM_X", 100.0, virtual_makespan_ms=1200.0))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("virtual_makespan_ms", proc.stdout)

    def test_higher_is_better_counter_regression(self):
        anchor = snapshot(bench("BM_X", 100.0, prefetch_hidden_ms=500.0))
        current = snapshot(bench("BM_X", 100.0, prefetch_hidden_ms=300.0))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("prefetch_hidden_ms", proc.stdout)

    def test_counter_improvement_in_each_direction_passes(self):
        anchor = snapshot(bench("BM_X", 100.0, virtual_makespan_ms=1000.0,
                                prefetch_hidden_ms=500.0))
        current = snapshot(bench("BM_X", 100.0, virtual_makespan_ms=800.0,
                                 prefetch_hidden_ms=700.0))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_counter_threshold_flag_is_independent(self):
        anchor = snapshot(bench("BM_X", 100.0, virtual_makespan_ms=1000.0))
        current = snapshot(bench("BM_X", 100.0, virtual_makespan_ms=1100.0))
        # +10% counter drift: fine at the default, fails at 5%.
        self.assertEqual(self.run_tool(anchor, current).returncode, 0)
        proc = self.run_tool(anchor, current, "--counter-threshold", "0.05")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        # ...and --counter-threshold must not tighten real_time itself.
        current = snapshot(bench("BM_X", 108.0, virtual_makespan_ms=1000.0))
        proc = self.run_tool(anchor, current, "--counter-threshold", "0.05")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_missing_counter_on_either_side_is_tolerated(self):
        # Counter present only in the anchor (removed) or only in the
        # current (new telemetry): neither comparable, neither a failure.
        anchor = snapshot(bench("BM_X", 100.0, virtual_makespan_ms=1000.0))
        current = snapshot(bench("BM_X", 100.0))
        self.assertEqual(self.run_tool(anchor, current).returncode, 0)
        self.assertEqual(self.run_tool(current, anchor).returncode, 0)

    def test_zero_anchor_counter_is_skipped(self):
        # av <= 0 has no meaningful ratio; the gate must not divide by it.
        anchor = snapshot(bench("BM_X", 100.0, prefetch_hidden_ms=0.0))
        current = snapshot(bench("BM_X", 100.0, prefetch_hidden_ms=123.0))
        self.assertEqual(self.run_tool(anchor, current).returncode, 0)

    # ------------------------------------------------------- skip lists --

    def test_default_skip_list_exempts_noisy_benches(self):
        anchor = snapshot(bench("BM_EngineNoShareThreads/4", 100.0))
        current = snapshot(bench("BM_EngineNoShareThreads/4", 900.0))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("SKIP", proc.stdout)

    def test_no_default_skip_restores_gating(self):
        anchor = snapshot(bench("BM_EngineNoShareThreads/4", 100.0))
        current = snapshot(bench("BM_EngineNoShareThreads/4", 900.0))
        proc = self.run_tool(anchor, current, "--no-default-skip")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_user_skip_pattern(self):
        anchor = snapshot(bench("BM_Flaky", 100.0), bench("BM_Solid", 100.0))
        current = snapshot(bench("BM_Flaky", 900.0), bench("BM_Solid", 101.0))
        proc = self.run_tool(anchor, current, "--skip", "^BM_Flaky")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        # The skip must not leak onto other benches.
        current = snapshot(bench("BM_Flaky", 900.0), bench("BM_Solid", 900.0))
        proc = self.run_tool(anchor, current, "--skip", "^BM_Flaky")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    # ------------------------------------------- entry set differences --

    def test_disjoint_benches_are_informational(self):
        anchor = snapshot(bench("BM_Old", 100.0))
        current = snapshot(bench("BM_New", 100.0))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("only in anchor", proc.stdout)
        self.assertIn("only in current", proc.stdout)

    def test_aggregate_entries_are_ignored(self):
        entry = bench("BM_X", 900.0)
        entry["run_type"] = "aggregate"
        anchor = snapshot(bench("BM_X", 100.0))
        current = snapshot(entry)
        # The aggregate is filtered out, so nothing is comparable.
        self.assertEqual(self.run_tool(anchor, current).returncode, 0)

    # ------------------------------------------------------ bad inputs --

    def test_unreadable_input_exits_2(self):
        proc = self.run_tool("{not json", snapshot(bench("BM_X", 1.0)))
        self.assertEqual(proc.returncode, 2)
        proc = subprocess.run(
            [sys.executable, TOOL, "/nonexistent/a.json",
             "/nonexistent/b.json"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)

    def test_multiple_regressions_all_reported(self):
        anchor = snapshot(bench("BM_A", 100.0), bench("BM_B", 100.0))
        current = snapshot(bench("BM_A", 200.0), bench("BM_B", 200.0))
        proc = self.run_tool(anchor, current)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("BM_A", proc.stdout)
        self.assertIn("BM_B", proc.stdout)
        self.assertIn("2 regression(s)", proc.stdout)


if __name__ == "__main__":
    unittest.main()
