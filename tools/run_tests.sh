#!/usr/bin/env bash
# Tier-1 verify, verbatim from ROADMAP.md. Pass "--smoke" to run only the
# fast per-suite smoke label (<30 s gate), anything else is forwarded to
# ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

CTEST_ARGS=(--output-on-failure -j)
if [[ "${1:-}" == "--smoke" ]]; then
  CTEST_ARGS+=(-L smoke)
  shift
fi
CTEST_ARGS+=("$@")

cmake -B build -S . && cmake --build build -j && cd build && \
  ctest "${CTEST_ARGS[@]}"
