// 3-vector math on the unit sphere. Celestial object positions are stored as
// unit cartesian vectors; angular separations are computed from dot products,
// which is numerically better-behaved than haversine at the sub-arcsecond
// scales cross-match error radii use.

#ifndef LIFERAFT_GEOM_VEC3_H_
#define LIFERAFT_GEOM_VEC3_H_

#include <cmath>

namespace liferaft {

/// Double-precision 3-vector.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double Norm() const { return std::sqrt(Dot(*this)); }

  /// Returns this vector scaled to unit length. Returns the input unchanged
  /// if its norm is zero.
  Vec3 Normalized() const {
    double n = Norm();
    if (n == 0.0) return *this;
    return {x / n, y / n, z / n};
  }

  bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

/// Angle between two unit vectors in radians, robust near 0 and pi.
double AngleBetween(const Vec3& a, const Vec3& b);

}  // namespace liferaft

#endif  // LIFERAFT_GEOM_VEC3_H_
