// Spherical coordinates (right ascension / declination in degrees, as used
// by astronomy archives) and conversions to unit cartesian vectors.

#ifndef LIFERAFT_GEOM_SPHERICAL_H_
#define LIFERAFT_GEOM_SPHERICAL_H_

#include "geom/vec3.h"

namespace liferaft {

/// Degrees <-> radians.
constexpr double kDegToRad = 0.017453292519943295;
constexpr double kRadToDeg = 57.29577951308232;
/// Arcseconds per degree.
constexpr double kArcsecPerDeg = 3600.0;

/// Sky position: right ascension in [0, 360) degrees, declination in
/// [-90, 90] degrees.
struct SkyPoint {
  double ra_deg = 0.0;
  double dec_deg = 0.0;
};

/// Converts RA/Dec (degrees) to a unit cartesian vector.
Vec3 SkyToUnitVector(const SkyPoint& p);

/// Converts a unit cartesian vector to RA/Dec (degrees). RA is normalized
/// to [0, 360).
SkyPoint UnitVectorToSky(const Vec3& v);

/// Angular separation between two sky points in degrees.
double AngularSeparationDeg(const SkyPoint& a, const SkyPoint& b);

/// Angular separation between two sky points in arcseconds.
double AngularSeparationArcsec(const SkyPoint& a, const SkyPoint& b);

/// Spherical cap: all points within `radius_deg` of `center`.
struct Cap {
  Vec3 center;        // unit vector
  double radius_deg = 0.0;

  /// True if unit vector `v` lies inside (or on) the cap.
  bool Contains(const Vec3& v) const;
};

/// Builds a cap from a sky-coordinate center and radius in degrees.
Cap MakeCap(const SkyPoint& center, double radius_deg);

}  // namespace liferaft

#endif  // LIFERAFT_GEOM_SPHERICAL_H_
