#include "geom/vec3.h"

#include <algorithm>

namespace liferaft {

double AngleBetween(const Vec3& a, const Vec3& b) {
  // atan2 of (|cross|, dot) is accurate for both tiny and near-pi angles,
  // unlike acos(dot) which loses precision near the endpoints.
  Vec3 c = a.Cross(b);
  return std::atan2(c.Norm(), a.Dot(b));
}

}  // namespace liferaft
