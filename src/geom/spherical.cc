#include "geom/spherical.h"

#include <algorithm>
#include <cmath>

namespace liferaft {

Vec3 SkyToUnitVector(const SkyPoint& p) {
  double ra = p.ra_deg * kDegToRad;
  double dec = p.dec_deg * kDegToRad;
  double cd = std::cos(dec);
  return {cd * std::cos(ra), cd * std::sin(ra), std::sin(dec)};
}

SkyPoint UnitVectorToSky(const Vec3& v) {
  SkyPoint p;
  p.dec_deg = std::asin(std::clamp(v.z, -1.0, 1.0)) * kRadToDeg;
  p.ra_deg = std::atan2(v.y, v.x) * kRadToDeg;
  if (p.ra_deg < 0.0) p.ra_deg += 360.0;
  return p;
}

double AngularSeparationDeg(const SkyPoint& a, const SkyPoint& b) {
  return AngleBetween(SkyToUnitVector(a), SkyToUnitVector(b)) * kRadToDeg;
}

double AngularSeparationArcsec(const SkyPoint& a, const SkyPoint& b) {
  return AngularSeparationDeg(a, b) * kArcsecPerDeg;
}

bool Cap::Contains(const Vec3& v) const {
  double cos_r = std::cos(radius_deg * kDegToRad);
  return center.Dot(v) >= cos_r - 1e-15;
}

Cap MakeCap(const SkyPoint& center, double radius_deg) {
  return Cap{SkyToUnitVector(center), radius_deg};
}

}  // namespace liferaft
