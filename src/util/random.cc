#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace liferaft {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) : s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  cdf_.back() = 1.0;  // guard against FP round-off
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

int64_t PoissonSample(Rng* rng, double mean) {
  assert(mean >= 0);
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng->UniformDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  double v = rng->Normal(mean, std::sqrt(mean));
  return std::max<int64_t>(0, static_cast<int64_t>(std::llround(v)));
}

}  // namespace liferaft
