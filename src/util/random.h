// Deterministic pseudo-random generation and the distributions used by the
// workload generators: uniform, exponential (Poisson inter-arrivals), Zipf
// (bucket popularity skew), and normal.
//
// All experiments are seeded, so every benchmark run is reproducible.

#ifndef LIFERAFT_UTIL_RANDOM_H_
#define LIFERAFT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace liferaft {

/// xoshiro256++ PRNG. Fast, high-quality, and deterministic across
/// platforms (unlike std::mt19937 distributions, whose output is not
/// specified identically by all standard libraries).
class Rng {
 public:
  /// Seeds the generator from a single 64-bit value via splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t UniformU64(uint64_t n);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponential with rate lambda (mean 1/lambda). Used for Poisson
  /// inter-arrival times. Precondition: lambda > 0.
  double Exponential(double lambda);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
///
/// Uses a precomputed cumulative table with binary search; construction is
/// O(n), sampling O(log n). Rank 0 is the most popular item.
class ZipfDistribution {
 public:
  /// @param n number of items (> 0)
  /// @param s skew exponent (>= 0; 0 degenerates to uniform)
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

/// Samples a count from Poisson(mean) via inversion (small mean) or
/// normal approximation (large mean).
int64_t PoissonSample(Rng* rng, double mean);

}  // namespace liferaft

#endif  // LIFERAFT_UTIL_RANDOM_H_
