// Minimal leveled logger used across LifeRaft.
//
// Logging is intentionally simple: a process-wide level, stderr sink by
// default, and stream-style message construction. Benchmarks set the level
// to kWarn so timed regions are not polluted by I/O.

#ifndef LIFERAFT_UTIL_LOGGING_H_
#define LIFERAFT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace liferaft {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logging configuration.
class Logger {
 public:
  /// Sets the minimum level that will be emitted.
  static void SetLevel(LogLevel level);
  static LogLevel level();

  /// Emits one formatted line ("[LEVEL] message\n") to stderr if `level`
  /// is at or above the configured minimum.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// Builds a log line with stream syntax and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace liferaft

#define LIFERAFT_LOG_DEBUG \
  ::liferaft::internal::LogMessage(::liferaft::LogLevel::kDebug)
#define LIFERAFT_LOG_INFO \
  ::liferaft::internal::LogMessage(::liferaft::LogLevel::kInfo)
#define LIFERAFT_LOG_WARN \
  ::liferaft::internal::LogMessage(::liferaft::LogLevel::kWarn)
#define LIFERAFT_LOG_ERROR \
  ::liferaft::internal::LogMessage(::liferaft::LogLevel::kError)

#endif  // LIFERAFT_UTIL_LOGGING_H_
