// Bump-pointer arena for short-lived, batch-scoped allocations, plus a
// std-compatible allocator over it. The motivating use is per-worker match
// arenas (join::JoinEvaluator): every parallel join slice appends match
// tuples into a vector that grows by repeated heap allocation, and with N
// workers those grow/free cycles all contend on the global allocator. An
// Arena turns each worker's allocations into a private pointer bump —
// deallocation is a no-op, and the owner thread reclaims everything at the
// next batch boundary with Reset().
//
// Threading: an Arena is single-threaded by design — exactly one worker
// allocates from it at a time, and Reset() runs on the owner thread only
// after every task that used the arena has been joined (batch boundaries
// synchronize through future::get/wait, which establishes the needed
// happens-before). ThreadPool owns one Arena per worker and hands the
// current worker its own via ThreadPool::CurrentArena().
//
// ArenaAllocator<T> degrades gracefully: constructed with a null arena it
// forwards to ::operator new/delete, so the same container type serves
// both the arena path and the plain-heap path (the `match_arenas` off
// switch, and any call site that runs outside a worker thread).

#ifndef LIFERAFT_UTIL_ARENA_H_
#define LIFERAFT_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace liferaft::util {

/// A chunked bump allocator. Allocate() hands out aligned slices of the
/// current block and starts a new, geometrically larger block when the
/// current one is full. Reset() keeps the largest block (warm for the next
/// batch) and releases the rest.
class Arena {
 public:
  static constexpr size_t kDefaultMinBlockBytes = 64 * 1024;

  explicit Arena(size_t min_block_bytes = kDefaultMinBlockBytes)
      : min_block_bytes_(min_block_bytes == 0 ? kDefaultMinBlockBytes
                                              : min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align);

  /// Reclaims every allocation at once. The largest block is kept so a
  /// steady-state batch loop stops touching the heap entirely.
  void Reset();

  /// Bytes handed out since construction (monotonic; survives Reset).
  size_t total_allocated_bytes() const { return total_allocated_; }
  /// Bytes currently reserved across blocks.
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  Block& AddBlock(size_t at_least);

  size_t min_block_bytes_;
  size_t total_allocated_ = 0;
  std::vector<Block> blocks_;
};

/// Minimal std allocator over an Arena. With a null arena it is a plain
/// heap allocator, so one container type covers both modes; two allocators
/// compare equal iff they target the same arena (or both the heap).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, size_t n) noexcept {
    if (arena_ != nullptr) return;  // reclaimed wholesale by Arena::Reset
    (void)n;
    ::operator delete(p);
  }

  Arena* arena() const noexcept { return arena_; }

 private:
  Arena* arena_ = nullptr;
};

template <typename A, typename B>
bool operator==(const ArenaAllocator<A>& a, const ArenaAllocator<B>& b) {
  return a.arena() == b.arena();
}
template <typename A, typename B>
bool operator!=(const ArenaAllocator<A>& a, const ArenaAllocator<B>& b) {
  return !(a == b);
}

/// The batch-scoped vector the parallel join paths collect matches into.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace liferaft::util

#endif  // LIFERAFT_UTIL_ARENA_H_
