#include "util/table.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace liferaft {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path);
  f << ToCsv();
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace liferaft
