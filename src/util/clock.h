// Time sources. The simulator runs on a VirtualClock whose time only moves
// when the engine charges modeled costs (bucket reads, per-object matches),
// which makes every scheduling experiment deterministic and fast. Real-I/O
// paths can use WallClock.

#ifndef LIFERAFT_UTIL_CLOCK_H_
#define LIFERAFT_UTIL_CLOCK_H_

#include <cstdint>

namespace liferaft {

/// Milliseconds. All LifeRaft time arithmetic is in double-precision
/// milliseconds, matching the units of the paper's constants
/// (T_b = 1200 ms, T_m = 0.13 ms).
using TimeMs = double;

/// Abstract monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in milliseconds since an arbitrary epoch.
  virtual TimeMs NowMs() const = 0;
};

/// Simulation clock: time advances only via Advance()/AdvanceTo().
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(TimeMs start = 0.0) : now_(start) {}

  TimeMs NowMs() const override { return now_; }

  /// Moves time forward by `delta` ms (must be >= 0).
  void Advance(TimeMs delta);

  /// Moves time forward to `t` if `t` is in the future; no-op otherwise.
  void AdvanceTo(TimeMs t);

 private:
  TimeMs now_;
};

/// Wall-clock time from std::chrono::steady_clock.
class WallClock : public Clock {
 public:
  WallClock();
  TimeMs NowMs() const override;

 private:
  int64_t epoch_ns_;
};

}  // namespace liferaft

#endif  // LIFERAFT_UTIL_CLOCK_H_
