#include "util/clock.h"

#include <cassert>
#include <chrono>

namespace liferaft {

void VirtualClock::Advance(TimeMs delta) {
  assert(delta >= 0.0);
  now_ += delta;
}

void VirtualClock::AdvanceTo(TimeMs t) {
  if (t > now_) now_ = t;
}

WallClock::WallClock() {
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

TimeMs WallClock::NowMs() const {
  int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  return static_cast<TimeMs>(now_ns - epoch_ns_) / 1e6;
}

}  // namespace liferaft
