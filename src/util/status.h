// Status / Result error handling for LifeRaft.
//
// Fallible operations return Status (or Result<T> when they produce a value)
// instead of throwing; exceptions are not used on any hot path. The idiom
// follows RocksDB/Arrow style.

#ifndef LIFERAFT_UTIL_STATUS_H_
#define LIFERAFT_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace liferaft {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIOError,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (OK carries
/// no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogue of
/// absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace liferaft

/// Propagate a non-OK Status from the current function.
#define LIFERAFT_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::liferaft::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Assign the value of a Result expression to `lhs`, or propagate its error.
#define LIFERAFT_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto LIFERAFT_CONCAT_(_res_, __LINE__) = (rexpr);            \
  if (!LIFERAFT_CONCAT_(_res_, __LINE__).ok())                 \
    return LIFERAFT_CONCAT_(_res_, __LINE__).status();         \
  lhs = std::move(LIFERAFT_CONCAT_(_res_, __LINE__)).value()

#define LIFERAFT_CONCAT_INNER_(a, b) a##b
#define LIFERAFT_CONCAT_(a, b) LIFERAFT_CONCAT_INNER_(a, b)

#endif  // LIFERAFT_UTIL_STATUS_H_
