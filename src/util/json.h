// Minimal deterministic JSON writers shared by the report emitters
// (scenario matrix, RunMetrics serialization). Not a JSON library: just
// enough to build objects with explicit key order and bit-exact doubles,
// so two runs agree in a report iff they agree bit for bit.

#ifndef LIFERAFT_UTIL_JSON_H_
#define LIFERAFT_UTIL_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace liferaft::util {

/// %.17g survives a binary64 round trip, so a JSON double doubles as a
/// determinism digest of the underlying bits.
inline std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Minimal object writer with explicit key order (determinism by
/// construction; std::map iteration would also be stable but hides the
/// ordering decision).
class JsonObject {
 public:
  void Field(const std::string& key, const std::string& raw) {
    if (!first_) body_ += ", ";
    first_ = false;
    body_ += "\"" + key + "\": " + raw;
  }
  void Str(const std::string& key, const std::string& value) {
    Field(key, "\"" + JsonEscape(value) + "\"");
  }
  void Num(const std::string& key, double value) {
    Field(key, JsonDouble(value));
  }
  void Int(const std::string& key, uint64_t value) {
    Field(key, std::to_string(value));
  }
  void Bool(const std::string& key, bool value) {
    Field(key, value ? "true" : "false");
  }
  std::string Done() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
  bool first_ = true;
};

}  // namespace liferaft::util

#endif  // LIFERAFT_UTIL_JSON_H_
