// CRC-32 (ISO-HDLC polynomial, the zlib variant) for the on-disk bucket
// format's corruption checks.

#ifndef LIFERAFT_UTIL_CRC32_H_
#define LIFERAFT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace liferaft {

/// Computes CRC-32 over `len` bytes. `seed` allows incremental use: pass the
/// previous call's return value to continue a running checksum.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace liferaft

#endif  // LIFERAFT_UTIL_CRC32_H_
