// Streaming statistics and histograms used by the simulator's run metrics
// (mean / variance / coefficient of variance of response times, percentiles,
// cumulative-frequency curves).

#ifndef LIFERAFT_UTIL_STATS_H_
#define LIFERAFT_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace liferaft {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation: stddev / mean (0 if mean == 0).
  double coefficient_of_variation() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const StreamingStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact-percentile sample collector. Stores all samples; suitable for the
/// trace sizes used here (thousands of queries).
class Percentiles {
 public:
  void Add(double x) { samples_.push_back(x); }
  size_t count() const { return samples_.size(); }

  /// p in [0, 100]. Returns 0 for an empty collector. Sorts lazily.
  double Percentile(double p);

  double Median() { return Percentile(50.0); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  uint64_t BinCount(size_t bin) const;
  size_t bins() const { return counts_.size(); }
  double BinLow(size_t bin) const;
  uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace liferaft

#endif  // LIFERAFT_UTIL_STATS_H_
