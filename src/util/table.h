// Small tabular output helper used by the benchmark harnesses to print the
// rows/series the paper's figures report, plus CSV export so results can be
// re-plotted.

#ifndef LIFERAFT_UTIL_TABLE_H_
#define LIFERAFT_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace liferaft {

/// Column-aligned text table with optional CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);

  /// Renders an aligned, human-readable table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas is needed by
  /// our numeric output, but cells containing commas are quoted anyway).
  std::string ToCsv() const;

  /// Writes the CSV rendering to a file.
  Status WriteCsv(const std::string& path) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace liferaft

#endif  // LIFERAFT_UTIL_TABLE_H_
