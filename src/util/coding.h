// Serialization helpers for the on-disk bucket formats (RocksDB-style
// PutFixed/GetFixed idiom plus LEB128 varints, zigzag, and delta coding for
// the v2 columnar pages). All multi-byte values are written explicitly
// little-endian so files are portable across hosts.
//
// The Get* varint readers are bounds-checked: they take a [p, limit) window
// and return the position past the value, or nullptr when the input is
// truncated or overlong — a corrupt page must surface as a clean error, not
// a read past the buffer.

#ifndef LIFERAFT_UTIL_CODING_H_
#define LIFERAFT_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace liferaft {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(dst, bits);
}

inline void PutFloat(std::string* dst, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutFixed32(dst, bits);
}

inline uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline double GetDouble(const char* p) {
  uint64_t bits = GetFixed64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

inline float GetFloat(const char* p) {
  uint32_t bits = GetFixed32(p);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

// --------------------------------------------------------------- varints --
//
// LEB128: 7 value bits per byte, high bit = continuation. A uint32 takes at
// most 5 bytes, a uint64 at most 10.

constexpr size_t kMaxVarint32Bytes = 5;
constexpr size_t kMaxVarint64Bytes = 10;

inline void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Decodes one varint from [p, limit) into *v. Returns the position past
/// the value, or nullptr if the window ends mid-value or the encoding
/// overflows 64 bits.
inline const char* GetVarint64(const char* p, const char* limit,
                               uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7F) << shift;
    } else {
      // The final byte must not overflow: at shift 63 only the low bit may
      // be set.
      if (shift == 63 && byte > 1) return nullptr;
      result |= byte << shift;
      *v = result;
      return p;
    }
  }
  return nullptr;  // truncated (or > 10 bytes)
}

/// 32-bit form of GetVarint64; rejects encodings above UINT32_MAX.
inline const char* GetVarint32(const char* p, const char* limit,
                               uint32_t* v) {
  uint64_t wide = 0;
  const char* q = GetVarint64(p, limit, &wide);
  if (q == nullptr || wide > UINT32_MAX) return nullptr;
  *v = static_cast<uint32_t>(wide);
  return q;
}

// ---------------------------------------------------------------- zigzag --
//
// Maps signed to unsigned so small-magnitude values (of either sign) get
// short varints: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...

inline uint32_t ZigZagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^
         static_cast<uint32_t>(v >> 31);
}

inline int32_t ZigZagDecode32(uint32_t v) {
  return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ----------------------------------------------------------------- delta --
//
// Delta + varint coding of a non-decreasing u64 sequence (the sorted HTM-id
// column of a columnar bucket page): the first value absolute, then each
// successor's difference. Non-decreasing input is the caller's contract —
// deltas are encoded unsigned, so a decreasing sequence is unrepresentable
// and the decoder's output is monotone by construction.

inline void PutDeltaVarint64(std::string* dst, std::span<const uint64_t> vs) {
  uint64_t prev = 0;
  for (size_t i = 0; i < vs.size(); ++i) {
    PutVarint64(dst, i == 0 ? vs[0] : vs[i] - prev);
    prev = vs[i];
  }
}

/// Decodes `count` delta-varint values from [p, limit) into `out` (appends;
/// caller reserves). Returns the position past the last value, or nullptr
/// on truncated/overlong input or on accumulator overflow.
inline const char* GetDeltaVarint64(const char* p, const char* limit,
                                    size_t count,
                                    std::vector<uint64_t>* out) {
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    p = GetVarint64(p, limit, &v);
    if (p == nullptr) return nullptr;
    if (i > 0) {
      if (v > UINT64_MAX - prev) return nullptr;  // accumulator overflow
      v += prev;
    }
    out->push_back(v);
    prev = v;
  }
  return p;
}

}  // namespace liferaft

#endif  // LIFERAFT_UTIL_CODING_H_
