// Fixed-width little-endian serialization helpers for the on-disk bucket
// format (RocksDB-style PutFixed/GetFixed idiom). All multi-byte values are
// written explicitly little-endian so files are portable across hosts.

#ifndef LIFERAFT_UTIL_CODING_H_
#define LIFERAFT_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace liferaft {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(dst, bits);
}

inline void PutFloat(std::string* dst, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutFixed32(dst, bits);
}

inline uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline double GetDouble(const char* p) {
  uint64_t bits = GetFixed64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

inline float GetFloat(const char* p) {
  uint32_t bits = GetFixed32(p);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

}  // namespace liferaft

#endif  // LIFERAFT_UTIL_CODING_H_
