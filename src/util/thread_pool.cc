#include "util/thread_pool.h"

#include <cassert>
#include <stdexcept>

namespace liferaft::util {

namespace {
/// The executing worker's arena; null on any thread that is not a pool
/// worker (set for the worker's lifetime in WorkerLoop).
thread_local Arena* current_arena = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  assert(num_threads >= 1);
  queues_.reserve(num_threads);
  arenas_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
    arenas_.push_back(std::make_unique<Arena>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Arena* ThreadPool::CurrentArena() { return current_arena; }

void ThreadPool::ResetArenas() {
  // Batch-boundary contract (see header): no in-flight task references
  // these arenas, and joining the previous batch's futures ordered its
  // allocations before this reset.
  for (auto& arena : arenas_) arena->Reset();
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      throw std::runtime_error("ThreadPool::Submit after Shutdown");
    }
    const size_t target =
        next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    {
      std::lock_guard<std::mutex> queue_lock(queues_[target]->mu);
      queues_[target]->tasks.push_back(std::move(task));
    }
    // Publish under mu_ so a worker checking the sleep predicate cannot
    // miss the wakeup.
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_one();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::function<void()> ThreadPool::TakeTask(size_t self) {
  const size_t n = queues_.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (self + i) % n;
    WorkerQueue& q = *queues_[idx];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    std::function<void()> task;
    if (idx == self) {
      // Own queue: FIFO from the front.
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    } else {
      // Sibling queue: steal from the tail, leaving the victim its
      // cache-warm front work.
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return task;
  }
  return {};
}

void ThreadPool::WorkerLoop(size_t self) {
  current_arena = arenas_[self].get();
  for (;;) {
    std::function<void()> task = TakeTask(self);
    if (!task) {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] {
        return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
      });
      if (shutdown_ && pending_.load(std::memory_order_acquire) == 0) {
        return;  // drained
      }
      continue;  // retake with the lock released
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace liferaft::util
