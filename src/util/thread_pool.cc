#include "util/thread_pool.h"

#include <cassert>

namespace liferaft::util {

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace liferaft::util
