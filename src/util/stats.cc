#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace liferaft {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::coefficient_of_variation() const {
  if (mean_ == 0.0 || count_ == 0) return 0.0;
  return stddev() / mean_;
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) * other.count_ / total);
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = total;
}

double Percentiles::Percentile(double p) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  double idx = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::Add(double x) {
  double rel = (x - lo_) / width_;
  int64_t bin = static_cast<int64_t>(std::floor(rel));
  bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

uint64_t Histogram::BinCount(size_t bin) const {
  assert(bin < counts_.size());
  return counts_[bin];
}

double Histogram::BinLow(size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

}  // namespace liferaft
