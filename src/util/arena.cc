#include "util/arena.h"

#include <algorithm>
#include <cassert>

namespace liferaft::util {

namespace {

uintptr_t AlignUp(uintptr_t n, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  return (n + align - 1) & ~(static_cast<uintptr_t>(align) - 1);
}

}  // namespace

Arena::Block& Arena::AddBlock(size_t at_least) {
  // Geometric growth keeps the block count logarithmic in the batch's
  // allocation volume, so Reset()'s keep-the-largest policy converges on a
  // single block that fits the steady state.
  size_t size = blocks_.empty() ? min_block_bytes_ : blocks_.back().size * 2;
  size = std::max(size, at_least);
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  // Align the absolute address, not the offset: a block's base comes from
  // operator new[] and guarantees only fundamental alignment, so for
  // larger `align` the base itself may need padding.
  Block* block = blocks_.empty() ? nullptr : &blocks_.back();
  size_t offset = 0;
  if (block != nullptr) {
    const uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
    offset = static_cast<size_t>(AlignUp(base + block->used, align) - base);
  }
  if (block == nullptr || offset + bytes > block->size) {
    block = &AddBlock(bytes + align - 1);  // worst-case base padding
    const uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
    offset = static_cast<size_t>(AlignUp(base, align) - base);
  }
  block->used = offset + bytes;
  total_allocated_ += bytes;
  return block->data.get() + offset;
}

void Arena::Reset() {
  if (blocks_.empty()) return;
  // Keep only the largest block; with geometric growth that is the newest,
  // but pick by size so the policy survives any future growth tweak.
  auto largest = std::max_element(
      blocks_.begin(), blocks_.end(),
      [](const Block& a, const Block& b) { return a.size < b.size; });
  Block keep = std::move(*largest);
  keep.used = 0;
  blocks_.clear();
  blocks_.push_back(std::move(keep));
}

}  // namespace liferaft::util
