// A fixed-size worker pool for data-parallel batch work, with work
// stealing.
//
// The pool owns `num_threads` workers, each with its own task deque;
// Submit() distributes tasks round-robin across the deques. A worker pops
// from the FRONT of its own deque (FIFO for its assigned work) and, when
// that runs dry, steals from the TAIL of a sibling's deque — so a skewed
// distribution (one worker handed a few huge entry slices, the rest
// finishing early) no longer stalls the batch on a single queue while idle
// workers spin down. Stealing from the tail keeps the victim's cache-warm
// front work with the victim.
//
// Submit() returns a std::future for the task's result; exceptions thrown
// by a task are captured and rethrown from future::get(), so callers see
// worker failures exactly as they would see their own. Destruction (or an
// explicit Shutdown()) finishes every task already queued, then joins the
// workers — no task is ever dropped.
//
// Determinism note: which thread runs a task (and in what interleaving)
// is unspecified; LifeRaft's callers merge results in submission order
// (see join::JoinEvaluator), so stealing never changes any result.
//
// Per-worker match arenas: every worker owns a util::Arena, reachable from
// inside a task via the static CurrentArena() (null off-pool). Tasks that
// produce bulk short-lived output — match tuples, most prominently —
// allocate from their worker's arena instead of the shared heap, removing
// allocator contention from the join fan-out. The pool never resets the
// arenas itself: the batch owner calls ResetArenas() at a batch boundary,
// when every task that used them has been joined.

#ifndef LIFERAFT_UTIL_THREAD_POOL_H_
#define LIFERAFT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/arena.h"

namespace liferaft::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers immediately. `num_threads` must be >= 1.
  explicit ThreadPool(size_t num_threads);

  /// Drains the queues and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn(args...)`; the returned future yields its result (or
  /// rethrows its exception). Submitting after Shutdown() throws.
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using R = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<Fn>(fn),
         ... args = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(args)...);
        });
    std::future<R> result = task->get_future();
    Enqueue([task]() mutable { (*task)(); });
    return result;
  }

  /// Stops accepting work, finishes every queued task, joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  /// The construction-time worker count (stable across Shutdown).
  size_t num_threads() const { return num_threads_; }

  /// The arena of the worker running the calling thread, or null when the
  /// caller is not one of this process's pool workers. Tasks use it for
  /// batch-scoped bulk output (see file comment).
  static Arena* CurrentArena();

  /// Worker `i`'s arena (introspection/tests).
  Arena& arena(size_t i) { return *arenas_[i]; }

  /// Resets every worker arena at once. The caller must guarantee no task
  /// that allocated from them is still running or still owns arena-backed
  /// containers — i.e. call only at a batch boundary, after joining every
  /// future of the previous batch.
  void ResetArenas();

 private:
  /// One worker's deque: own pops come off the front, thieves take the
  /// tail.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(std::function<void()> task);
  /// Pops the front of queue `self`, or steals the tail of the first
  /// non-empty sibling (scanning from self+1, wrapping). Returns an empty
  /// function when every queue is dry.
  std::function<void()> TakeTask(size_t self);
  void WorkerLoop(size_t self);

  std::mutex mu_;  // guards shutdown_ and sleep/wake coordination
  std::condition_variable wake_;
  bool shutdown_ = false;
  /// Tasks enqueued but not yet taken, across all queues. Guarded by mu_
  /// for the sleep predicate, atomic so TakeTask can decrement under its
  /// queue lock only.
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};  // round-robin submission cursor
  size_t num_threads_ = 0;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::unique_ptr<Arena>> arenas_;  // one per worker
  std::vector<std::thread> workers_;
};

}  // namespace liferaft::util

#endif  // LIFERAFT_UTIL_THREAD_POOL_H_
