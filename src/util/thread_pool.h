// A fixed-size worker pool for data-parallel batch work.
//
// The pool owns `num_threads` workers that drain a FIFO task queue. Submit()
// returns a std::future for the task's result; exceptions thrown by a task
// are captured and rethrown from future::get(), so callers see worker
// failures exactly as they would see their own. Destruction (or an explicit
// Shutdown()) finishes every task already queued, then joins the workers —
// no task is ever dropped.
//
// The pool is deliberately dumb: no work stealing, no priorities. LifeRaft
// uses it to fan a bucket batch's independent workload-entry joins across
// cores and then merges the slices back in submission order, which keeps
// parallel results byte-identical to the single-threaded path (see
// join::JoinEvaluator).

#ifndef LIFERAFT_UTIL_THREAD_POOL_H_
#define LIFERAFT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace liferaft::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers immediately. `num_threads` must be >= 1.
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn(args...)`; the returned future yields its result (or
  /// rethrows its exception). Submitting after Shutdown() throws.
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using R = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<Fn>(fn),
         ... args = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(args)...);
        });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        throw std::runtime_error("ThreadPool::Submit after Shutdown");
      }
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Stops accepting work, finishes every queued task, joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  /// The construction-time worker count (stable across Shutdown).
  size_t num_threads() const { return num_threads_; }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  size_t num_threads_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace liferaft::util

#endif  // LIFERAFT_UTIL_THREAD_POOL_H_
