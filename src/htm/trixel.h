// Geometric realization of an HTM trixel: its three unit-vector corners,
// point-containment, subdivision, and a bounding cap for conservative
// intersection pre-filtering.

#ifndef LIFERAFT_HTM_TRIXEL_H_
#define LIFERAFT_HTM_TRIXEL_H_

#include <array>

#include "geom/spherical.h"
#include "geom/vec3.h"
#include "htm/htm_id.h"

namespace liferaft::htm {

/// A spherical triangle of the mesh. Corners are unit vectors in
/// counterclockwise order (seen from outside the sphere), which makes the
/// half-space containment test uniform across all trixels.
class Trixel {
 public:
  Trixel(HtmId id, const Vec3& v0, const Vec3& v1, const Vec3& v2)
      : id_(id), v_{v0, v1, v2} {}

  /// Root trixel i in [0,8) (IDs 8..15).
  static Trixel Root(int i);

  /// Realizes an arbitrary valid ID by descending from its root.
  static Trixel FromId(HtmId id);

  HtmId id() const { return id_; }
  const Vec3& v(int i) const { return v_[static_cast<size_t>(i)]; }

  /// Child trixel c in [0,3] using midpoint subdivision.
  Trixel Child(int c) const;

  /// True if unit vector `p` lies inside this trixel (boundary-inclusive
  /// within a small tolerance).
  bool Contains(const Vec3& p) const;

  /// Smallest cap centered at the trixel centroid that encloses the trixel.
  Cap BoundingCap() const;

  /// Trixel centroid (normalized average of corners).
  Vec3 Centroid() const;

 private:
  HtmId id_;
  std::array<Vec3, 3> v_;
};

}  // namespace liferaft::htm

#endif  // LIFERAFT_HTM_TRIXEL_H_
