#include "htm/htm.h"

#include <cassert>

namespace liferaft::htm {

HtmId PointToId(const Vec3& p, int level) {
  assert(level >= 0 && level <= kMaxLevel);
  Vec3 u = p.Normalized();
  // Locate the root trixel. The roots tile the sphere, so at least one
  // must contain u; boundary points may match several and we take the
  // first for determinism.
  int root = -1;
  for (int i = 0; i < kNumRoots; ++i) {
    if (Trixel::Root(i).Contains(u)) {
      root = i;
      break;
    }
  }
  assert(root >= 0);
  Trixel t = Trixel::Root(root);
  for (int l = 0; l < level; ++l) {
    bool found = false;
    for (int c = 0; c < 3; ++c) {
      Trixel child = t.Child(c);
      if (child.Contains(u)) {
        t = child;
        found = true;
        break;
      }
    }
    if (!found) t = t.Child(3);  // the middle child covers the remainder
  }
  return t.id();
}

HtmId PointToId(const SkyPoint& p, int level) {
  return PointToId(SkyToUnitVector(p), level);
}

SkyPoint IdToCenter(HtmId id) {
  return UnitVectorToSky(Trixel::FromId(id).Centroid());
}

}  // namespace liferaft::htm
