#include "htm/trixel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace liferaft::htm {
namespace {

// Octahedron vertices, following the original HTM construction
// (Kunszt et al., "The Indexing of the SDSS Science Archive").
const Vec3 kV0{0.0, 0.0, 1.0};    // north pole
const Vec3 kV1{1.0, 0.0, 0.0};
const Vec3 kV2{0.0, 1.0, 0.0};
const Vec3 kV3{-1.0, 0.0, 0.0};
const Vec3 kV4{0.0, -1.0, 0.0};
const Vec3 kV5{0.0, 0.0, -1.0};   // south pole

// Tolerance for the half-space containment tests: points exactly on an
// edge must land in exactly one descent path, but FP error on midpoint
// normalization requires slack.
constexpr double kEps = 1e-12;

Vec3 Midpoint(const Vec3& a, const Vec3& b) {
  return (a + b).Normalized();
}

}  // namespace

Trixel Trixel::Root(int i) {
  assert(i >= 0 && i < kNumRoots);
  // S0..S3 are IDs 8..11, N0..N3 are IDs 12..15. Corner orderings match the
  // reference implementation so that child numbering (and therefore the
  // space-filling curve) is standard.
  switch (i) {
    case 0: return Trixel(8, kV1, kV5, kV2);   // S0
    case 1: return Trixel(9, kV2, kV5, kV3);   // S1
    case 2: return Trixel(10, kV3, kV5, kV4);  // S2
    case 3: return Trixel(11, kV4, kV5, kV1);  // S3
    case 4: return Trixel(12, kV1, kV0, kV4);  // N0
    case 5: return Trixel(13, kV4, kV0, kV3);  // N1
    case 6: return Trixel(14, kV3, kV0, kV2);  // N2
    default: return Trixel(15, kV2, kV0, kV1); // N3
  }
}

Trixel Trixel::FromId(HtmId id) {
  assert(IsValidId(id));
  int level = LevelOf(id);
  HtmId root = id >> (2 * level);
  Trixel t = Root(static_cast<int>(root - 8));
  for (int l = level - 1; l >= 0; --l) {
    int child = static_cast<int>((id >> (2 * l)) & 3);
    t = t.Child(child);
  }
  return t;
}

Trixel Trixel::Child(int c) const {
  assert(c >= 0 && c <= 3);
  const Vec3 w0 = Midpoint(v_[1], v_[2]);
  const Vec3 w1 = Midpoint(v_[0], v_[2]);
  const Vec3 w2 = Midpoint(v_[0], v_[1]);
  HtmId cid = ChildOf(id_, c);
  switch (c) {
    case 0: return Trixel(cid, v_[0], w2, w1);
    case 1: return Trixel(cid, v_[1], w0, w2);
    case 2: return Trixel(cid, v_[2], w1, w0);
    default: return Trixel(cid, w0, w1, w2);
  }
}

bool Trixel::Contains(const Vec3& p) const {
  // p is inside iff it is on the inner side of all three edge planes.
  return v_[0].Cross(v_[1]).Dot(p) >= -kEps &&
         v_[1].Cross(v_[2]).Dot(p) >= -kEps &&
         v_[2].Cross(v_[0]).Dot(p) >= -kEps;
}

Vec3 Trixel::Centroid() const {
  return (v_[0] + v_[1] + v_[2]).Normalized();
}

Cap Trixel::BoundingCap() const {
  Vec3 c = Centroid();
  double min_dot = 1.0;
  for (const auto& v : v_) min_dot = std::min(min_dot, c.Dot(v));
  double radius_rad = std::acos(std::clamp(min_dot, -1.0, 1.0));
  // Small inflation so the cap is conservative under FP error.
  return Cap{c, radius_rad * kRadToDeg + 1e-9};
}

}  // namespace liferaft::htm
