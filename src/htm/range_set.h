// Sorted sets of inclusive HTM ID ranges. Query objects carry a range set
// (the coarse-filter bounding region of their cross-match error circle) and
// buckets own one contiguous range of the curve; overlap between the two is
// what assigns an object to a bucket's workload queue.

#ifndef LIFERAFT_HTM_RANGE_SET_H_
#define LIFERAFT_HTM_RANGE_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "htm/htm_id.h"

namespace liferaft::htm {

/// One inclusive ID interval [lo, hi].
struct IdRange {
  HtmId lo = 0;
  HtmId hi = 0;

  bool Contains(HtmId id) const { return id >= lo && id <= hi; }
  bool Overlaps(const IdRange& o) const { return lo <= o.hi && o.lo <= hi; }
  /// Number of IDs covered.
  uint64_t Count() const { return hi - lo + 1; }

  bool operator==(const IdRange& o) const { return lo == o.lo && hi == o.hi; }
};

/// A normalized (sorted, non-overlapping, non-adjacent-merged) set of
/// inclusive ID ranges over a single level of the mesh.
class RangeSet {
 public:
  RangeSet() = default;
  explicit RangeSet(std::vector<IdRange> ranges);

  /// Adds a range; normalization is deferred until the next query.
  void Add(IdRange r);
  void Add(HtmId lo, HtmId hi) { Add(IdRange{lo, hi}); }

  /// True if any range contains `id`.
  bool Contains(HtmId id) const;

  /// True if any range overlaps [lo, hi].
  bool Overlaps(const IdRange& r) const;
  bool Overlaps(HtmId lo, HtmId hi) const { return Overlaps(IdRange{lo, hi}); }

  /// Total number of IDs covered.
  uint64_t Count() const;

  /// Normalized ranges in ascending order.
  const std::vector<IdRange>& ranges() const;

  bool empty() const { return ranges().empty(); }
  size_t size() const { return ranges().size(); }

  /// Set intersection.
  RangeSet Intersect(const RangeSet& other) const;

  /// "[lo,hi] [lo,hi] ..." for debugging.
  std::string ToString() const;

 private:
  void Normalize() const;

  mutable std::vector<IdRange> ranges_;
  mutable bool normalized_ = true;
};

}  // namespace liferaft::htm

#endif  // LIFERAFT_HTM_RANGE_SET_H_
