#include "htm/range_set.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace liferaft::htm {

RangeSet::RangeSet(std::vector<IdRange> ranges)
    : ranges_(std::move(ranges)), normalized_(false) {}

void RangeSet::Add(IdRange r) {
  assert(r.lo <= r.hi);
  ranges_.push_back(r);
  normalized_ = false;
}

void RangeSet::Normalize() const {
  if (normalized_) return;
  std::sort(ranges_.begin(), ranges_.end(),
            [](const IdRange& a, const IdRange& b) { return a.lo < b.lo; });
  std::vector<IdRange> merged;
  for (const auto& r : ranges_) {
    // Merge overlapping or exactly adjacent ranges.
    if (!merged.empty() &&
        (r.lo <= merged.back().hi ||
         (merged.back().hi != UINT64_MAX && r.lo == merged.back().hi + 1))) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  ranges_ = std::move(merged);
  normalized_ = true;
}

bool RangeSet::Contains(HtmId id) const {
  Normalize();
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), id,
      [](HtmId v, const IdRange& r) { return v < r.lo; });
  if (it == ranges_.begin()) return false;
  --it;
  return it->Contains(id);
}

bool RangeSet::Overlaps(const IdRange& r) const {
  Normalize();
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), r.hi,
      [](HtmId v, const IdRange& x) { return v < x.lo; });
  if (it == ranges_.begin()) return false;
  --it;
  return it->Overlaps(r);
}

uint64_t RangeSet::Count() const {
  Normalize();
  uint64_t total = 0;
  for (const auto& r : ranges_) total += r.Count();
  return total;
}

const std::vector<IdRange>& RangeSet::ranges() const {
  Normalize();
  return ranges_;
}

RangeSet RangeSet::Intersect(const RangeSet& other) const {
  Normalize();
  other.Normalize();
  RangeSet out;
  size_t i = 0, j = 0;
  while (i < ranges_.size() && j < other.ranges_.size()) {
    const IdRange& a = ranges_[i];
    const IdRange& b = other.ranges_[j];
    HtmId lo = std::max(a.lo, b.lo);
    HtmId hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.Add(lo, hi);
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::string RangeSet::ToString() const {
  Normalize();
  std::ostringstream out;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i) out << ' ';
    out << '[' << ranges_[i].lo << ',' << ranges_[i].hi << ']';
  }
  return out.str();
}

}  // namespace liferaft::htm
