// Cone (spherical-cap) covers: the coarse filter that maps a cross-match
// error circle to the set of level-L HTM IDs it may touch.
//
// The cover is conservative — it never omits a trixel that intersects the
// cap — so the exact angular-distance test in the join's refinement step is
// the only place correctness is decided. Over-coverage only costs a little
// extra candidate filtering.

#ifndef LIFERAFT_HTM_COVER_H_
#define LIFERAFT_HTM_COVER_H_

#include "geom/spherical.h"
#include "htm/range_set.h"
#include "htm/trixel.h"

namespace liferaft::htm {

/// Relationship between a trixel and a cap.
enum class Coverage {
  kDisjoint,  ///< provably no intersection
  kPartial,   ///< boundary crosses (or undecided conservatively)
  kFull,      ///< trixel entirely inside the cap
};

/// Classifies trixel-vs-cap coverage. Exact for kFull (convexity of caps
/// with radius < 90 degrees); kDisjoint is only reported when provable, so
/// kPartial may include rare false positives but never false negatives.
Coverage ClassifyTrixel(const Trixel& t, const Cap& cap);

/// Computes the set of level-`level` trixel IDs intersecting `cap`, as a
/// normalized range set over level-`level` IDs.
///
/// Recursion descends only into partial trixels; full trixels contribute
/// their whole descendant range in O(1). `max_ranges` bounds output size by
/// stopping subdivision early (keeping the cover conservative); 0 means
/// unlimited.
RangeSet CoverCap(const Cap& cap, int level, size_t max_ranges = 0);

/// Convenience: cover of the error circle around a sky position.
RangeSet CoverCircle(const SkyPoint& center, double radius_deg, int level,
                     size_t max_ranges = 0);

}  // namespace liferaft::htm

#endif  // LIFERAFT_HTM_COVER_H_
