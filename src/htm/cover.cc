#include "htm/cover.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace liferaft::htm {
namespace {

// True if the great-circle arc from `a` to `b` intersects the boundary or
// interior of `cap`.
bool EdgeIntersectsCap(const Vec3& a, const Vec3& b, const Cap& cap) {
  const double r_rad = cap.radius_deg * kDegToRad;
  Vec3 n = a.Cross(b);
  double n_norm = n.Norm();
  if (n_norm == 0.0) return false;  // degenerate edge
  n = n * (1.0 / n_norm);
  // Angular distance from the cap center to the edge's great circle.
  double sin_d = std::abs(n.Dot(cap.center));
  double d = std::asin(std::clamp(sin_d, 0.0, 1.0));
  if (d > r_rad) return false;  // circle never gets close enough
  // Closest point on the great circle to the cap center.
  Vec3 p = (cap.center - n * n.Dot(cap.center)).Normalized();
  // The circle's points inside the cap form an arc of half-length lambda
  // around p: cos(r) = cos(d) * cos(lambda).
  double cos_d = std::cos(d);
  if (cos_d <= 0.0) return false;
  double cos_lambda = std::clamp(std::cos(r_rad) / cos_d, -1.0, 1.0);
  double lambda = std::acos(cos_lambda);
  Vec3 axis = n.Cross(p);  // tangent direction along the circle at p
  auto on_arc = [&](const Vec3& q) {
    // q lies on the a->b arc iff it is on the inner side of both arc
    // endpoints' half-planes.
    return a.Cross(q).Dot(n) >= -1e-15 && q.Cross(b).Dot(n) >= -1e-15;
  };
  Vec3 q_plus = (p * std::cos(lambda) + axis * std::sin(lambda)).Normalized();
  Vec3 q_minus = (p * std::cos(lambda) - axis * std::sin(lambda)).Normalized();
  return on_arc(p) || on_arc(q_plus) || on_arc(q_minus);
}

void CoverRecurse(const Trixel& t, const Cap& cap, int level,
                  size_t max_ranges, RangeSet* out) {
  Coverage c = ClassifyTrixel(t, cap);
  if (c == Coverage::kDisjoint) return;
  int t_level = LevelOf(t.id());
  if (c == Coverage::kFull || t_level == level ||
      (max_ranges != 0 && out->size() >= max_ranges)) {
    out->Add(RangeLo(t.id(), level), RangeHi(t.id(), level));
    return;
  }
  for (int i = 0; i < 4; ++i) {
    CoverRecurse(t.Child(i), cap, level, max_ranges, out);
  }
}

}  // namespace

Coverage ClassifyTrixel(const Trixel& t, const Cap& cap) {
  int inside = 0;
  for (int i = 0; i < 3; ++i) {
    if (cap.Contains(t.v(i))) ++inside;
  }
  if (inside == 3) return Coverage::kFull;  // caps < 90 deg are convex
  if (inside > 0) return Coverage::kPartial;
  // No corner inside. The cap may still poke through an edge or sit
  // entirely within the trixel.
  if (t.Contains(cap.center)) return Coverage::kPartial;
  for (int i = 0; i < 3; ++i) {
    if (EdgeIntersectsCap(t.v(i), t.v((i + 1) % 3), cap)) {
      return Coverage::kPartial;
    }
  }
  return Coverage::kDisjoint;
}

RangeSet CoverCap(const Cap& cap, int level, size_t max_ranges) {
  RangeSet out;
  for (int i = 0; i < kNumRoots; ++i) {
    CoverRecurse(Trixel::Root(i), cap, level, max_ranges, &out);
  }
  return out;
}

RangeSet CoverCircle(const SkyPoint& center, double radius_deg, int level,
                     size_t max_ranges) {
  return CoverCap(MakeCap(center, radius_deg), level, max_ranges);
}

}  // namespace liferaft::htm
