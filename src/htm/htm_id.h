// Hierarchical Triangular Mesh identifier arithmetic.
//
// The HTM (Kunszt, Szalay et al.) subdivides the sphere into 8 root
// spherical triangles ("trixels") — the faces of an octahedron — and
// recursively splits each into 4 children at the edge midpoints. A trixel at
// level L is named by a 64-bit integer: binary `1 s nn nn ... nn` with one
// 2-bit child selector per level, so root trixels are IDs 8..15 and a level-L
// ID lies in [8·4^L, 16·4^L). Level 14 (the level SkyQuery assigns to
// objects) fits in 32 bits.
//
// The numbering is a space-filling curve: trixels adjacent in ID order are
// spatially close, which is the property LifeRaft's equal-sized bucket
// partitioning relies on.

#ifndef LIFERAFT_HTM_HTM_ID_H_
#define LIFERAFT_HTM_HTM_ID_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace liferaft::htm {

/// HTM trixel identifier. Valid IDs are >= 8.
using HtmId = uint64_t;

/// The level SkyQuery uses for per-object IDs (32-bit).
inline constexpr int kObjectLevel = 14;

/// Maximum supported subdivision level (IDs stay within 64 bits with room
/// to spare; 2 + 2·(level+1) bits are used).
inline constexpr int kMaxLevel = 30;

/// Number of root trixels.
inline constexpr int kNumRoots = 8;

/// True if `id` encodes a well-formed trixel at some level <= kMaxLevel.
bool IsValidId(HtmId id);

/// Subdivision level of `id` (0 for roots 8..15). Precondition: IsValidId.
int LevelOf(HtmId id);

/// Parent trixel. Precondition: LevelOf(id) >= 1.
HtmId ParentOf(HtmId id);

/// `child` in [0,3]. Precondition: LevelOf(id) < kMaxLevel.
HtmId ChildOf(HtmId id, int child);

/// First level-`level` descendant of `id` (inclusive lower bound of the
/// descendant range). Precondition: level >= LevelOf(id).
HtmId RangeLo(HtmId id, int level);

/// Last level-`level` descendant of `id` (inclusive upper bound).
HtmId RangeHi(HtmId id, int level);

/// Smallest level-`level` ID (8·4^level).
HtmId LevelMin(int level);

/// Largest level-`level` ID (16·4^level − 1).
HtmId LevelMax(int level);

/// Ancestor of `id` at `level`. Precondition: level <= LevelOf(id).
HtmId AncestorAt(HtmId id, int level);

/// Symbolic name, e.g. "N01" / "S322" (root letter + one digit per level).
std::string IdToName(HtmId id);

/// Parses a symbolic name back to an ID.
Result<HtmId> NameToId(const std::string& name);

}  // namespace liferaft::htm

#endif  // LIFERAFT_HTM_HTM_ID_H_
