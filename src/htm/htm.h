// Point location in the HTM: sky position -> trixel ID at a given level.

#ifndef LIFERAFT_HTM_HTM_H_
#define LIFERAFT_HTM_HTM_H_

#include "geom/spherical.h"
#include "geom/vec3.h"
#include "htm/htm_id.h"
#include "htm/trixel.h"

namespace liferaft::htm {

/// Returns the ID of the level-`level` trixel containing unit vector `p`.
/// Points exactly on trixel boundaries resolve deterministically (first
/// matching child in child order).
HtmId PointToId(const Vec3& p, int level = kObjectLevel);

/// Convenience overload for sky coordinates.
HtmId PointToId(const SkyPoint& p, int level = kObjectLevel);

/// Geometric center of the trixel with the given ID, as a sky point.
SkyPoint IdToCenter(HtmId id);

}  // namespace liferaft::htm

#endif  // LIFERAFT_HTM_HTM_H_
