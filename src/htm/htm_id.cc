#include "htm/htm_id.h"

#include <bit>
#include <cassert>

namespace liferaft::htm {

bool IsValidId(HtmId id) {
  if (id < 8) return false;
  int width = std::bit_width(id);
  // A level-L ID uses 4 + 2L bits, so bit_width must be even and the top
  // two bits must be "10" (i.e. 8 <= id >> 2L <= 15).
  if (width % 2 != 0) return false;
  int level = (width - 4) / 2;
  if (level > kMaxLevel) return false;
  HtmId root = id >> (2 * level);
  return root >= 8 && root <= 15;
}

int LevelOf(HtmId id) {
  assert(IsValidId(id));
  return (std::bit_width(id) - 4) / 2;
}

HtmId ParentOf(HtmId id) {
  assert(IsValidId(id) && LevelOf(id) >= 1);
  return id >> 2;
}

HtmId ChildOf(HtmId id, int child) {
  assert(IsValidId(id) && child >= 0 && child <= 3);
  assert(LevelOf(id) < kMaxLevel);
  return (id << 2) | static_cast<HtmId>(child);
}

HtmId RangeLo(HtmId id, int level) {
  int l = LevelOf(id);
  assert(level >= l && level <= kMaxLevel);
  return id << (2 * (level - l));
}

HtmId RangeHi(HtmId id, int level) {
  int l = LevelOf(id);
  assert(level >= l && level <= kMaxLevel);
  int shift = 2 * (level - l);
  return (id << shift) | ((HtmId{1} << shift) - 1);
}

HtmId LevelMin(int level) { return HtmId{8} << (2 * level); }

HtmId LevelMax(int level) { return (HtmId{16} << (2 * level)) - 1; }

HtmId AncestorAt(HtmId id, int level) {
  int l = LevelOf(id);
  assert(level >= 0 && level <= l);
  return id >> (2 * (l - level));
}

std::string IdToName(HtmId id) {
  assert(IsValidId(id));
  int level = LevelOf(id);
  HtmId root = id >> (2 * level);
  std::string name;
  // Roots 8..11 are the southern trixels S0..S3; 12..15 are N0..N3.
  if (root < 12) {
    name += 'S';
    name += static_cast<char>('0' + (root - 8));
  } else {
    name += 'N';
    name += static_cast<char>('0' + (root - 12));
  }
  for (int l = level - 1; l >= 0; --l) {
    name += static_cast<char>('0' + ((id >> (2 * l)) & 3));
  }
  return name;
}

Result<HtmId> NameToId(const std::string& name) {
  if (name.size() < 2) {
    return Status::InvalidArgument("HTM name too short: '" + name + "'");
  }
  HtmId root;
  if (name[0] == 'S') {
    root = 8;
  } else if (name[0] == 'N') {
    root = 12;
  } else {
    return Status::InvalidArgument("HTM name must start with N or S");
  }
  if (name[1] < '0' || name[1] > '3') {
    return Status::InvalidArgument("bad root digit in HTM name");
  }
  HtmId id = root + static_cast<HtmId>(name[1] - '0');
  if (name.size() - 2 > static_cast<size_t>(kMaxLevel)) {
    return Status::InvalidArgument("HTM name deeper than kMaxLevel");
  }
  for (size_t i = 2; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '3') {
      return Status::InvalidArgument("bad child digit in HTM name");
    }
    id = (id << 2) | static_cast<HtmId>(name[i] - '0');
  }
  return id;
}

}  // namespace liferaft::htm
