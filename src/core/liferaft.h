// The LifeRaft system facade — the library's primary public API.
//
// A LifeRaft instance owns one archive (partitioned catalog + spatial
// index), the Workload Manager, the scheduler, the bucket cache, and the
// Join Evaluator, wired exactly as in the paper's Figure 3:
//
//     Submit() -> Query Pre-Processor -> Workload Manager (queues)
//     ProcessNextBatch() -> scheduler picks bucket -> Join Evaluator
//         -> Bucket Cache -> matches out, completions recorded
//
// Time is virtual: the internal clock advances by the disk model's cost of
// each batch, so a caller can drive the system synchronously and still read
// meaningful throughput / response-time numbers. (For trace experiments
// with arrival processes, use sim::SimEngine, which layers arrivals on the
// same components.)

#ifndef LIFERAFT_CORE_LIFERAFT_H_
#define LIFERAFT_CORE_LIFERAFT_H_

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/options.h"
#include "exec/batch_pipeline.h"
#include "join/evaluator.h"
#include "query/query.h"
#include "query/workload.h"
#include "sched/liferaft_scheduler.h"
#include "storage/catalog.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace liferaft::core {

/// Outcome of one scheduled bucket batch.
struct BatchOutcome {
  storage::BucketIndex bucket = 0;
  join::JoinStrategy strategy = join::JoinStrategy::kScan;
  bool cache_hit = false;
  /// Virtual time the batch consumed: the evaluator's io+cpu cost plus,
  /// under prefetching, the un-hidden residual of a claimed fetch.
  TimeMs cost_ms = 0.0;
  /// Queries whose last outstanding sub-query was in this batch.
  std::vector<query::QueryId> completed;
  /// Matches produced by this batch (all batch queries interleaved).
  std::vector<query::Match> matches;
};

/// Completion record for one query.
struct QueryCompletion {
  query::QueryId id = 0;
  TimeMs arrival_ms = 0.0;
  TimeMs completion_ms = 0.0;
  TimeMs ResponseMs() const { return completion_ms - arrival_ms; }
};

/// One archive's LifeRaft query processing system.
class LifeRaft {
 public:
  /// Builds the system over `catalog_objects` (the archive's fact table).
  static Result<std::unique_ptr<LifeRaft>> Create(
      std::vector<storage::CatalogObject> catalog_objects,
      const LifeRaftOptions& options);

  /// Admits a cross-match query. The query's arrival is stamped with the
  /// current virtual time (any caller-provided arrival_ms is honored if it
  /// is not in the past). Fails if the id is already pending or the query
  /// is empty.
  Status Submit(const query::CrossMatchQuery& query);

  /// Schedules and evaluates one bucket batch through the unified
  /// exec::BatchPipeline (the same loop the simulation engine runs, so
  /// prefetch pipelining works identically here). Returns nullopt when no
  /// work is pending.
  Result<std::optional<BatchOutcome>> ProcessNextBatch(
      bool collect_matches = true);

  /// Runs batches until no work remains; returns completions (appended in
  /// completion order). Matches are delivered through `on_batch` if
  /// provided.
  Result<std::vector<QueryCompletion>> Drain(
      const std::function<void(const BatchOutcome&)>& on_batch = nullptr);

  /// Current virtual time (ms since instance creation).
  TimeMs now_ms() const { return clock_.NowMs(); }

  /// Adjusts the age bias at runtime (workload-adaptive tuning).
  void set_alpha(double alpha) { scheduler_->set_alpha(alpha); }
  double alpha() const { return scheduler_->alpha(); }

  size_t pending_queries() const { return manager_->pending_queries(); }
  const storage::Catalog& catalog() const { return *catalog_; }
  storage::CacheStats cache_stats() const { return cache_->stats(); }
  /// The multi-volume storage topology (always present; a single volume
  /// without LifeRaftOptions::topology overrides).
  const storage::StorageTopology& topology() const { return *topology_; }
  /// Per-arm I/O telemetry accumulated since creation (index = volume).
  std::vector<storage::VolumeIoStats> volume_stats() const {
    return pipeline_->volume_stats();
  }
  /// Virtual fetch time hidden behind compute by claimed prefetches.
  TimeMs prefetch_hidden_ms() const { return pipeline_->prefetch_hidden_ms(); }
  /// The adaptive prefetch controller (null unless
  /// LifeRaftOptions::adaptive_prefetch).
  const exec::PrefetchController* prefetch_controller() const {
    return pipeline_->controller();
  }
  const join::EvaluatorStats& evaluator_stats() const {
    return evaluator_->stats();
  }
  /// Completions recorded since creation, in completion order.
  const std::vector<QueryCompletion>& completions() const {
    return completions_;
  }

 private:
  LifeRaft() : clock_(0.0) {}

  LifeRaftOptions options_;
  VirtualClock clock_;
  std::unique_ptr<util::ThreadPool> pool_;  // non-null iff num_threads > 1
  std::unique_ptr<storage::Catalog> catalog_;
  /// Declared before the cache/evaluator that borrow it (destruction
  /// order).
  std::unique_ptr<storage::StorageTopology> topology_;
  std::unique_ptr<storage::BucketCache> cache_;
  std::unique_ptr<join::JoinEvaluator> evaluator_;
  std::unique_ptr<query::WorkloadManager> manager_;
  std::unique_ptr<sched::LifeRaftScheduler> scheduler_;
  std::unique_ptr<exec::BatchPipeline> pipeline_;
  std::unordered_map<query::QueryId, TimeMs> arrivals_;
  std::vector<QueryCompletion> completions_;
};

}  // namespace liferaft::core

#endif  // LIFERAFT_CORE_LIFERAFT_H_
