// Top-level configuration of a LifeRaft instance, aggregating every layer's
// knobs with paper defaults.

#ifndef LIFERAFT_CORE_OPTIONS_H_
#define LIFERAFT_CORE_OPTIONS_H_

#include <cstddef>

#include "join/hybrid.h"
#include "sched/metric.h"
#include "sched/qos.h"
#include "storage/disk_model.h"
#include "storage/topology.h"
#include "util/status.h"

namespace liferaft::core {

/// Options for LifeRaft::Create. Defaults follow the paper's experimental
/// configuration (scaled: see DESIGN.md §5).
struct LifeRaftOptions {
  /// Equal-count partitioning target (paper: 10,000 objects = 40 MB).
  size_t objects_per_bucket = 1000;
  /// Bucket cache capacity in buckets (paper: 20).
  size_t cache_capacity = 20;
  /// Lock/LRU shards of the bucket cache (clamped to [1, cache_capacity]);
  /// 1 reproduces the unsharded cache exactly.
  size_t cache_shards = 1;
  /// Age bias alpha in [0, 1]: 0 = greedy most-contentious-first,
  /// 1 = arrival order.
  double alpha = 0.25;
  /// U_a blending mode (see sched/metric.h).
  sched::MetricNormalization normalization =
      sched::MetricNormalization::kNormalized;
  /// Hybrid join configuration (index threshold ~3%).
  join::HybridConfig hybrid;
  /// Disk cost model (defaults calibrated to T_b = 1.2 s, T_m = 0.13 ms).
  /// With a multi-volume topology this is the default every volume
  /// inherits unless topology.volume_disk overrides it per volume.
  storage::DiskModelParams disk;
  /// Multi-volume storage topology: how buckets are spread over
  /// independent disk arms (num_volumes, range/hash placement, optional
  /// per-volume disk params). The default single volume reproduces the
  /// pre-topology system byte for byte; more volumes let the prefetch
  /// pipeline overlap fetches across arms on the virtual clock.
  storage::StorageTopologyConfig topology;
  /// Optional QoS age depreciation (paper §6 future work).
  sched::QosConfig qos;
  /// Build the B+tree spatial index (required for the hybrid indexed path).
  bool build_index = true;
  /// Worker threads for a batch's join work. 1 = serial. Parallel mode
  /// produces results identical to serial mode (see join::JoinEvaluator);
  /// scheduling and the virtual clock stay deterministic.
  size_t num_threads = 1;
  /// Cross-batch prefetch pipelining through exec::BatchPipeline: while a
  /// batch joins, start fetching the buckets the scheduler is predicted to
  /// pick next, hiding their T_b behind matching compute on the virtual
  /// clock. Deterministic; changes the schedule (prefetched buckets count
  /// as resident for phi), so enable it consistently across compared runs.
  bool enable_prefetch = false;
  /// Predicted picks kept in flight when prefetching (>= 1). Under
  /// adaptive_prefetch this only seeds the controller's starting depth.
  size_t prefetch_depth = 1;
  /// Drop prefetch bets that leave the scheduler's prediction window
  /// instead of holding them pinned until claimed.
  bool cancel_on_mispredict = false;
  /// Feedback-driven prefetch depth between 0 and max_prefetch_depth:
  /// shrink on mispredict bursts, grow while hidden latency per claim
  /// stays positive (exec::PrefetchController). Implies window-based bet
  /// cancelation and enables the prefetch pipeline.
  bool adaptive_prefetch = false;
  /// Depth ceiling for the adaptive controller (>= 1).
  size_t max_prefetch_depth = 4;
  /// Demote buckets inside the scheduler's prediction window last on
  /// eviction; off restores plain LRU.
  bool prefetch_aware_eviction = true;
  /// Per-worker bump arenas for parallel match collection (no effect at
  /// num_threads == 1); results are byte-identical on or off.
  bool match_arenas = true;
  /// Bump arenas for batch-scoped I/O scratch: spill-restore read buffers
  /// (WorkloadManager) and worker-side bucket page decode buffers; results
  /// are byte-identical on or off.
  bool io_arenas = true;

  Status Validate() const;
};

}  // namespace liferaft::core

#endif  // LIFERAFT_CORE_OPTIONS_H_
