#include "core/liferaft.h"

#include "query/preprocessor.h"

namespace liferaft::core {

Result<std::unique_ptr<LifeRaft>> LifeRaft::Create(
    std::vector<storage::CatalogObject> catalog_objects,
    const LifeRaftOptions& options) {
  LIFERAFT_RETURN_IF_ERROR(options.Validate());

  auto system = std::unique_ptr<LifeRaft>(new LifeRaft());
  system->options_ = options;

  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = options.objects_per_bucket;
  catalog_options.build_index = options.build_index;
  LIFERAFT_ASSIGN_OR_RETURN(
      system->catalog_,
      storage::Catalog::Build(std::move(catalog_objects), catalog_options));

  LIFERAFT_ASSIGN_OR_RETURN(
      storage::StorageTopology topology,
      storage::StorageTopology::Create(system->catalog_->num_buckets(),
                                       options.topology, options.disk));
  system->topology_ =
      std::make_unique<storage::StorageTopology>(std::move(topology));
  // Volume-aligned cache sharding only with a real multi-volume map (a
  // single volume would collapse every bucket into shard 0).
  system->cache_ = std::make_unique<storage::BucketCache>(
      system->catalog_->store(), options.cache_capacity,
      options.cache_shards,
      system->topology_->num_volumes() > 1 ? system->topology_.get()
                                           : nullptr);
  system->evaluator_ = std::make_unique<join::JoinEvaluator>(
      system->cache_.get(), system->catalog_->index(),
      storage::DiskModel(options.disk), options.hybrid);
  system->evaluator_->set_use_match_arenas(options.match_arenas);
  system->evaluator_->set_use_io_arenas(options.io_arenas);
  system->evaluator_->set_topology(system->topology_.get());
  if (options.num_threads > 1) {
    system->pool_ = std::make_unique<util::ThreadPool>(options.num_threads);
    system->evaluator_->set_thread_pool(system->pool_.get());
    system->cache_->set_thread_pool(system->pool_.get());
  }
  system->manager_ = std::make_unique<query::WorkloadManager>(
      system->catalog_->num_buckets());
  system->manager_->set_use_restore_arena(options.io_arenas);

  sched::LifeRaftConfig sched_config;
  sched_config.alpha = options.alpha;
  sched_config.normalization = options.normalization;
  sched_config.qos = options.qos;
  system->scheduler_ = std::make_unique<sched::LifeRaftScheduler>(
      system->catalog_->store(), storage::DiskModel(options.disk),
      sched_config);
  // Rank T_b with the owning volume's disk model under heterogeneous
  // topologies (uniform topologies rank identically).
  system->scheduler_->AttachTopology(system->topology_.get());

  exec::PipelineConfig pipeline_config;
  pipeline_config.enable_prefetch = options.enable_prefetch;
  pipeline_config.prefetch_depth = options.prefetch_depth;
  pipeline_config.cancel_on_mispredict = options.cancel_on_mispredict;
  pipeline_config.adaptive_prefetch = options.adaptive_prefetch;
  pipeline_config.controller.max_depth = options.max_prefetch_depth;
  pipeline_config.prefetch_aware_eviction = options.prefetch_aware_eviction;
  system->pipeline_ = std::make_unique<exec::BatchPipeline>(
      system->scheduler_.get(), system->manager_.get(),
      system->evaluator_.get(), pipeline_config, system->topology_.get());
  return system;
}

Status LifeRaft::Submit(const query::CrossMatchQuery& query) {
  if (query.objects.empty()) {
    return Status::InvalidArgument("query " + std::to_string(query.id) +
                                   " has no objects");
  }
  query::CrossMatchQuery stamped;
  stamped.id = query.id;
  stamped.arrival_ms = std::max(query.arrival_ms, clock_.NowMs());
  stamped.predicate = query.predicate;
  stamped.label = query.label;

  auto workloads = query::SplitQueryByBucket(query, catalog_->bucket_map());
  LIFERAFT_ASSIGN_OR_RETURN(size_t parts,
                            manager_->Admit(stamped, workloads));
  (void)parts;
  arrivals_[query.id] = stamped.arrival_ms;
  return Status::OK();
}

Result<std::optional<BatchOutcome>> LifeRaft::ProcessNextBatch(
    bool collect_matches) {
  pipeline_->set_collect_matches(collect_matches);
  LIFERAFT_ASSIGN_OR_RETURN(std::optional<exec::StepOutcome> step,
                            pipeline_->Step(clock_.NowMs()));
  if (!step.has_value()) return std::optional<BatchOutcome>{};
  clock_.Advance(step->TotalAdvanceMs());

  BatchOutcome outcome;
  outcome.bucket = step->bucket;
  outcome.strategy = step->strategy;
  outcome.cache_hit = step->cache_hit;
  outcome.cost_ms = step->TotalAdvanceMs();
  outcome.completed = std::move(step->completed);
  outcome.matches = std::move(step->matches);

  for (query::QueryId id : outcome.completed) {
    auto it = arrivals_.find(id);
    TimeMs arrival = it == arrivals_.end() ? 0.0 : it->second;
    completions_.push_back(QueryCompletion{id, arrival, clock_.NowMs()});
    if (it != arrivals_.end()) arrivals_.erase(it);
  }
  return std::optional<BatchOutcome>(std::move(outcome));
}

Result<std::vector<QueryCompletion>> LifeRaft::Drain(
    const std::function<void(const BatchOutcome&)>& on_batch) {
  size_t first_new = completions_.size();
  for (;;) {
    LIFERAFT_ASSIGN_OR_RETURN(std::optional<BatchOutcome> outcome,
                              ProcessNextBatch(on_batch != nullptr));
    if (!outcome.has_value()) break;
    if (on_batch != nullptr) on_batch(*outcome);
  }
  // The queues are empty: any prefetch bet still pending targets a bucket
  // with no work, so the bet cannot pay off until new queries arrive —
  // drop it rather than holding its pin across an idle period.
  pipeline_->CancelOutstandingPrefetches();
  return std::vector<QueryCompletion>(completions_.begin() + first_new,
                                      completions_.end());
}

}  // namespace liferaft::core
