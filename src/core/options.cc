#include "core/options.h"

namespace liferaft::core {

Status LifeRaftOptions::Validate() const {
  if (objects_per_bucket == 0) {
    return Status::InvalidArgument("objects_per_bucket must be positive");
  }
  if (cache_capacity == 0) {
    return Status::InvalidArgument("cache_capacity must be positive");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  if (hybrid.index_threshold < 0.0) {
    return Status::InvalidArgument("index_threshold must be >= 0");
  }
  if (qos.half_life_parts <= 0.0) {
    return Status::InvalidArgument("qos.half_life_parts must be positive");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (cache_shards == 0) {
    return Status::InvalidArgument("cache_shards must be >= 1");
  }
  if (prefetch_depth == 0) {
    return Status::InvalidArgument("prefetch_depth must be >= 1");
  }
  if (max_prefetch_depth == 0) {
    return Status::InvalidArgument("max_prefetch_depth must be >= 1");
  }
  if (adaptive_prefetch && prefetch_depth > max_prefetch_depth) {
    return Status::InvalidArgument(
        "prefetch_depth (adaptive starting depth) must be <= "
        "max_prefetch_depth");
  }
  LIFERAFT_RETURN_IF_ERROR(topology.Validate());
  return disk.Validate();
}

}  // namespace liferaft::core
