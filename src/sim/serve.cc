#include "sim/serve.h"

#include <algorithm>
#include <string>

#include "sim/arrivals.h"
#include "util/random.h"

namespace liferaft::sim {

const char* QosClassName(QosClass c) {
  switch (c) {
    case QosClass::kInteractive:
      return "interactive";
    case QosClass::kBatch:
      return "batch";
  }
  return "?";
}

const char* ArrivalKindName(ArrivalSpec::Kind kind) {
  switch (kind) {
    case ArrivalSpec::Kind::kPoisson:
      return "poisson";
    case ArrivalSpec::Kind::kUniform:
      return "uniform";
    case ArrivalSpec::Kind::kBursty:
      return "bursty";
    case ArrivalSpec::Kind::kTrace:
      return "trace";
    case ArrivalSpec::Kind::kDiurnal:
      return "diurnal";
    case ArrivalSpec::Kind::kFlashCrowd:
      return "flash-crowd";
  }
  return "?";
}

Status ArrivalSpec::Validate(size_t n) const {
  switch (kind) {
    case Kind::kTrace:
      if (trace.size() != n) {
        return Status::InvalidArgument(
            "ArrivalSpec: trace size " + std::to_string(trace.size()) +
            " does not match query count " + std::to_string(n));
      }
      if (!std::is_sorted(trace.begin(), trace.end())) {
        return Status::InvalidArgument("ArrivalSpec: trace must be ascending");
      }
      return Status::OK();
    case Kind::kPoisson:
    case Kind::kUniform:
      if (!(rate_qps > 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: rate_qps must be positive");
      }
      return Status::OK();
    case Kind::kBursty:
      if (!(rate_qps > 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: rate_qps must be positive");
      }
      if (!(rate_off_qps >= 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: rate_off_qps must be >= 0");
      }
      if (!(mean_phase_ms > 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: mean_phase_ms must be positive");
      }
      return Status::OK();
    case Kind::kDiurnal:
      if (!(rate_qps > 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: rate_qps must be positive");
      }
      if (!(amplitude >= 0.0) || !(amplitude <= 1.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: amplitude must be in [0, 1]");
      }
      if (!(period_ms > 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: period_ms must be positive");
      }
      return Status::OK();
    case Kind::kFlashCrowd:
      if (!(rate_qps > 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: rate_qps must be positive");
      }
      if (!(spike_factor >= 1.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: spike_factor must be >= 1");
      }
      if (!(spike_start_ms >= 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: spike_start_ms must be >= 0");
      }
      if (!(decay_ms > 0.0)) {
        return Status::InvalidArgument(
            "ArrivalSpec: decay_ms must be positive");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("ArrivalSpec: unknown kind");
}

Result<std::vector<TimeMs>> BuildArrivals(const ArrivalSpec& spec, size_t n) {
  LIFERAFT_RETURN_IF_ERROR(spec.Validate(n));
  Rng rng(spec.seed);
  switch (spec.kind) {
    case ArrivalSpec::Kind::kPoisson:
      return PoissonArrivals(n, spec.rate_qps, &rng);
    case ArrivalSpec::Kind::kUniform:
      return UniformArrivals(n, spec.rate_qps);
    case ArrivalSpec::Kind::kBursty:
      return BurstyArrivals(n, spec.rate_qps, spec.rate_off_qps,
                            spec.mean_phase_ms, &rng);
    case ArrivalSpec::Kind::kDiurnal:
      return DiurnalArrivals(n, spec.rate_qps, spec.amplitude,
                             spec.period_ms, &rng);
    case ArrivalSpec::Kind::kFlashCrowd:
      return FlashCrowdArrivals(n, spec.rate_qps, spec.spike_factor,
                                spec.spike_start_ms, spec.decay_ms, &rng);
    case ArrivalSpec::Kind::kTrace:
      return spec.trace;
  }
  return Status::InvalidArgument("BuildArrivals: unknown kind");
}

Status ServeConfig::Validate() const {
  // Arrival parameters are checked against the query count in Serve;
  // Validate(0) would reject non-empty traces, so only the shape-
  // independent fields are checked here.
  if (interactive_max_parts == 0) {
    return Status::InvalidArgument(
        "ServeConfig: interactive_max_parts must be >= 1");
  }
  return Status::OK();
}

AdmissionController::AdmissionController(const ServeConfig& config,
                                         TimeMs rate_window_ms)
    : max_pending_queries_(config.max_pending_queries),
      max_pending_objects_(config.max_pending_objects),
      estimator_(rate_window_ms) {}

bool AdmissionController::Offer(TimeMs now, uint64_t pending_objects,
                                size_t pending_queries,
                                uint64_t query_objects) {
  std::lock_guard<std::mutex> lock(mu_);
  // The estimator sees every offered arrival, shed or not: the adaptive
  // alpha must react to offered load, which is what saturates the system.
  estimator_.OnArrival(now);
  ++offered_;
  bool over_queries = max_pending_queries_ != 0 &&
                      pending_queries + 1 > max_pending_queries_;
  bool over_objects = max_pending_objects_ != 0 &&
                      pending_objects + query_objects > max_pending_objects_;
  if (over_queries || over_objects) {
    ++shed_;
    return false;
  }
  return true;
}

double AdmissionController::RateQps(TimeMs now) {
  std::lock_guard<std::mutex> lock(mu_);
  estimator_.Prune(now);
  return estimator_.RateQps(now);
}

uint64_t AdmissionController::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

uint64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace liferaft::sim
