// Per-run results of a simulation: the quantities the paper's figures
// report (query throughput, average response time and its coefficient of
// variance) plus the underlying I/O and cache counters.

#ifndef LIFERAFT_SIM_RUN_METRICS_H_
#define LIFERAFT_SIM_RUN_METRICS_H_

#include <string>
#include <vector>

#include "join/evaluator.h"
#include "query/workload.h"
#include "storage/async_io.h"
#include "storage/bucket_cache.h"
#include "storage/bucket_store.h"
#include "storage/topology.h"
#include "util/clock.h"
#include "util/stats.h"

namespace liferaft::sim {

/// Per-QoS-class serving telemetry (SimEngine::Serve only; closed-workload
/// runs leave RunMetrics::qos_classes empty). Latencies are admission-to-
/// completion on the virtual clock.
struct QosClassMetrics {
  std::string name;
  size_t completed = 0;
  /// Arrivals of this class rejected by the admission controller.
  size_t shed = 0;
  double mean_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;
};

/// Everything measured over one simulated run.
struct RunMetrics {
  std::string scheduler_name;
  size_t queries_completed = 0;

  /// Virtual time from t=0 to the last completion, accounted as the max
  /// over the completion clock and every disk arm's consumed-work clock.
  /// Every batch completion waits out its own arm's residual before its
  /// CPU phase, so the completion clock already dominates the arms and
  /// the max is exact — single-volume runs report the identical value the
  /// pre-topology engine did, and multi-volume runs shrink it by exactly
  /// the fetch time the extra arms overlap.
  TimeMs makespan_ms = 0.0;
  /// queries_completed / makespan (the paper's throughput axis).
  double throughput_qps = 0.0;

  /// Response time (completion - arrival) statistics in milliseconds.
  StreamingStats response_stats;
  double avg_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;
  /// Coefficient of variance of response time (Fig 7b's second series).
  double response_cov = 0.0;

  storage::CacheStats cache;
  storage::StoreStats store;
  join::EvaluatorStats evaluator;
  uint64_t total_matches = 0;
  /// Peak buffered workload objects across the run — the memory-pressure
  /// argument of §6 (most-contentious-first keeps this low; deferring hot
  /// buckets inflates it).
  uint64_t peak_pending_objects = 0;
  /// Workload-overflow activity (zero unless spilling was enabled).
  query::SpillStats spill;
  /// Virtual fetch time hidden behind compute by the cross-batch prefetch
  /// pipeline (zero unless EngineConfig::enable_prefetch or
  /// adaptive_prefetch); issue/claim counts (and wasted prefetch bytes)
  /// are in `cache`.
  TimeMs prefetch_hidden_ms = 0.0;
  /// Adaptive-prefetch telemetry (meaningful only when
  /// EngineConfig::adaptive_prefetch): arm 0's controller depth at end of
  /// run and its stale-claim EWMA — how mispredicted the tail of the run
  /// looked to the feedback loop. (Multi-volume runs have one controller
  /// per arm; arm 0 keeps this field's single-volume meaning.)
  size_t prefetch_final_depth = 0;
  double prefetch_stale_ewma = 0.0;
  /// Per-volume I/O telemetry (index = volume; one entry per disk arm,
  /// exactly one for single-volume runs; empty in per-query modes, which
  /// bypass the pipeline): foreground reads/bytes, prefetch issue/claim
  /// counts, modeled busy and hidden time, and each arm's consumed-work
  /// and speculative busy-until clocks.
  std::vector<storage::VolumeIoStats> volumes;
  /// Each arm's prefetch-controller depth at end of run (one entry per
  /// volume under adaptive_prefetch, empty otherwise). prefetch_final_depth
  /// keeps reporting arm 0 for single-volume compatibility; this vector is
  /// the multi-arm view.
  std::vector<size_t> arm_final_depths;

  /// Real-I/O mode (EngineConfig::io_mode == kReal): measured wall-clock
  /// telemetry from the per-volume submission queues — read/byte counts,
  /// peak queue depth, p50/p99 completion latency, and checksum failures
  /// per volume. In real mode makespan_ms is MEASURED wall time, not
  /// DiskModel arithmetic, so these numbers vary run to run and are never
  /// part of a determinism digest. real_io_enabled gates serialization:
  /// modeled-mode JSON is byte-identical to pre-real-I/O builds.
  bool real_io_enabled = false;
  std::vector<storage::AsyncVolumeStats> real_io;

  // ------------------------------------------------------- serving mode --
  // Filled by SimEngine::Serve; zero / empty for closed-workload Run.

  /// Arrivals offered to the admission controller (admitted + shed).
  uint64_t queries_offered = 0;
  /// Arrivals rejected by load shedding.
  uint64_t queries_shed = 0;
  /// Offered load: queries_offered / makespan.
  double offered_qps = 0.0;
  /// Completed work rate actually sustained: queries_completed / makespan.
  /// Equals throughput_qps when nothing is shed.
  double sustained_qps = 0.0;
  /// LifeRaft alpha at end of run (the adaptive controller's last choice;
  /// the configured alpha when no AlphaSelector is attached).
  double alpha_final = 0.0;
  /// Per-class latency/shed breakdown, indexed by sim::QosClass.
  std::vector<QosClassMetrics> qos_classes;

  /// One-line human-readable summary.
  std::string Summary() const;
};

/// Deterministic JSON serialization of a run: explicit key order, every
/// double printed %.17g (bit-exact round trip), no timestamps. Two runs
/// produce the same string iff their metrics agree bit for bit, so this
/// is both the report format and the determinism/format-identity digest
/// (the v1-vs-v2 page-format tests compare these strings directly).
std::string RunMetricsJson(const RunMetrics& m);

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_RUN_METRICS_H_
