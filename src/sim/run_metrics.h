// Per-run results of a simulation: the quantities the paper's figures
// report (query throughput, average response time and its coefficient of
// variance) plus the underlying I/O and cache counters.

#ifndef LIFERAFT_SIM_RUN_METRICS_H_
#define LIFERAFT_SIM_RUN_METRICS_H_

#include <string>
#include <vector>

#include "join/evaluator.h"
#include "query/workload.h"
#include "storage/bucket_cache.h"
#include "storage/bucket_store.h"
#include "storage/topology.h"
#include "util/clock.h"
#include "util/stats.h"

namespace liferaft::sim {

/// Everything measured over one simulated run.
struct RunMetrics {
  std::string scheduler_name;
  size_t queries_completed = 0;

  /// Virtual time from t=0 to the last completion, accounted as the max
  /// over the completion clock and every disk arm's consumed-work clock.
  /// Every batch completion waits out its own arm's residual before its
  /// CPU phase, so the completion clock already dominates the arms and
  /// the max is exact — single-volume runs report the identical value the
  /// pre-topology engine did, and multi-volume runs shrink it by exactly
  /// the fetch time the extra arms overlap.
  TimeMs makespan_ms = 0.0;
  /// queries_completed / makespan (the paper's throughput axis).
  double throughput_qps = 0.0;

  /// Response time (completion - arrival) statistics in milliseconds.
  StreamingStats response_stats;
  double avg_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  /// Coefficient of variance of response time (Fig 7b's second series).
  double response_cov = 0.0;

  storage::CacheStats cache;
  storage::StoreStats store;
  join::EvaluatorStats evaluator;
  uint64_t total_matches = 0;
  /// Peak buffered workload objects across the run — the memory-pressure
  /// argument of §6 (most-contentious-first keeps this low; deferring hot
  /// buckets inflates it).
  uint64_t peak_pending_objects = 0;
  /// Workload-overflow activity (zero unless spilling was enabled).
  query::SpillStats spill;
  /// Virtual fetch time hidden behind compute by the cross-batch prefetch
  /// pipeline (zero unless EngineConfig::enable_prefetch or
  /// adaptive_prefetch); issue/claim counts (and wasted prefetch bytes)
  /// are in `cache`.
  TimeMs prefetch_hidden_ms = 0.0;
  /// Adaptive-prefetch telemetry (meaningful only when
  /// EngineConfig::adaptive_prefetch): arm 0's controller depth at end of
  /// run and its stale-claim EWMA — how mispredicted the tail of the run
  /// looked to the feedback loop. (Multi-volume runs have one controller
  /// per arm; arm 0 keeps this field's single-volume meaning.)
  size_t prefetch_final_depth = 0;
  double prefetch_stale_ewma = 0.0;
  /// Per-volume I/O telemetry (index = volume; one entry per disk arm,
  /// exactly one for single-volume runs; empty in per-query modes, which
  /// bypass the pipeline): foreground reads/bytes, prefetch issue/claim
  /// counts, modeled busy and hidden time, and each arm's consumed-work
  /// and speculative busy-until clocks.
  std::vector<storage::VolumeIoStats> volumes;

  /// One-line human-readable summary.
  std::string Summary() const;
};

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_RUN_METRICS_H_
