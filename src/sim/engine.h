// The discrete-event simulation engine: replays a query trace against one
// archive under a chosen execution mode, advancing a virtual clock by the
// disk model's costs. Joins execute for real (matches are exact); only I/O
// latency is modeled — see DESIGN.md §2.
//
// Execution modes (paper §5):
//  * kShared    — batch processing through the Workload Manager / LifeRaft
//                 architecture: a Scheduler picks a bucket, its whole
//                 workload queue is served in one pass through the shared
//                 bucket cache (hybrid join applies).
//  * kNoShare   — each query is evaluated independently and in arrival
//                 order: scan-based, but no I/O sharing and no shared
//                 cache.
//  * kIndexOnly — SkyQuery's legacy execution: every query evaluated
//                 exclusively through spatial-index probes, in arrival
//                 order.

#ifndef LIFERAFT_SIM_ENGINE_H_
#define LIFERAFT_SIM_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "exec/batch_pipeline.h"
#include "join/evaluator.h"
#include "query/workload.h"
#include "sched/adaptive.h"
#include "sched/scheduler.h"
#include "sim/run_metrics.h"
#include "sim/serve.h"
#include "storage/catalog.h"
#include "storage/topology.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace liferaft::sim {

/// How queries are executed (see file comment).
enum class ExecutionMode { kShared, kNoShare, kIndexOnly };

const char* ExecutionModeName(ExecutionMode mode);

/// How I/O time is charged.
///  * kModeled — the virtual-clock oracle: every fetch costs DiskModel
///    arithmetic, runs are deterministic and bit-reproducible. The
///    default, and the only mode the golden/digest tests ever see.
///  * kReal — measured execution: prefetch bets and foreground misses are
///    dispatched to the store's per-volume submission queues
///    (storage::AsyncReader) and the engine clock tracks ELAPSED WALL
///    TIME, so multi-volume overlap is measured, not modeled. Requires
///    kShared execution with a store that supports concurrent reads
///    (FileStore, MemStore); Run only — Serve's admission control is
///    defined on the virtual clock.
enum class IoMode { kModeled, kReal };

const char* IoModeName(IoMode mode);

/// Engine configuration.
struct EngineConfig {
  ExecutionMode mode = ExecutionMode::kShared;
  /// Virtual-clock oracle vs measured wall-clock execution (see IoMode).
  /// kModeled leaves every code path and result bit-identical to builds
  /// that predate real I/O.
  IoMode io_mode = IoMode::kModeled;
  /// Bucket cache capacity in buckets (paper: 20). Shared mode only.
  size_t cache_capacity = 20;
  /// Lock/LRU shards of the bucket cache (clamped to [1, cache_capacity]).
  /// 1 reproduces the unsharded cache exactly; higher values split the
  /// capacity into independent LRU domains, which changes eviction
  /// patterns (and with them modeled timings) deterministically while
  /// join results stay exact.
  size_t cache_shards = 1;
  /// Optional cache byte budget (BucketCache capacity_bytes; 0 = off).
  /// When set, residency is additionally bounded by charged bytes — real
  /// encoded page size for columnar buckets, the kBytesPerObject estimate
  /// otherwise — so at a fixed MB budget a compressed catalog keeps more
  /// buckets resident. Combine with a generous cache_capacity (e.g. the
  /// bucket count) for a pure byte budget.
  uint64_t cache_capacity_bytes = 0;
  /// Price every T_b consumer (scheduler U_t, evaluator scan/NoShare
  /// fetches, pipeline bets) by the store's real encoded page bytes when
  /// it has them. Off by default: runs are then provably independent of
  /// the on-disk format, which is what the v1/v2 identity tests pin down.
  bool charge_encoded_bytes = false;
  join::HybridConfig hybrid;
  /// Disk cost model; with a multi-volume topology this is the default
  /// every volume inherits unless topology.volume_disk overrides it.
  storage::DiskModelParams disk;
  /// Multi-volume storage topology (num_volumes, range/hash placement,
  /// optional per-volume disk params): each volume models an independent
  /// disk arm with its own prefetch queue and virtual busy time, so the
  /// shared-mode pipeline overlaps fetches across arms. The default
  /// single volume reproduces the pre-topology engine byte for byte.
  /// Per-query modes use it only for per-volume T_b charging.
  storage::StorageTopologyConfig topology;
  /// Keep match tuples (disable for scheduling-scale experiments).
  bool collect_matches = false;
  /// Worker threads for join work. 1 = serial, the paper's loop. In shared
  /// mode the batch's join is sliced across workers by workload entry; in
  /// NoShare/IndexOnly the ready queries fan out one task per query. Either
  /// way parallel runs produce results byte-identical to serial runs:
  /// counters and I/O charges are merged in arrival order, so scheduling,
  /// cache traffic, and the virtual clock are unchanged.
  size_t num_threads = 1;
  /// Cross-batch prefetch pipelining (shared mode): while a batch joins,
  /// start fetching the bucket the scheduler is predicted to pick next
  /// (Scheduler::PeekNextBucket), pinned in cache until claimed. The
  /// virtual clock models one disk arm: the prefetch begins when the
  /// current batch's disk phase ends and only the in-memory matching time
  /// hides fetch latency; an early-arriving batch pays the residual
  /// max(0, fetch_done - now). Changes the schedule (prefetched buckets
  /// count as resident for phi), so results are NOT comparable to
  /// non-prefetch runs; they are still deterministic and independent of
  /// num_threads. The loop itself lives in exec::BatchPipeline, shared
  /// with core::LifeRaft.
  bool enable_prefetch = false;
  /// Predicted picks kept in flight when prefetching (>= 1); depth 1 is
  /// the PR 2 single-bet pipeline. Under adaptive_prefetch this is only
  /// the controller's starting depth.
  size_t prefetch_depth = 1;
  /// Drop prefetch bets that leave the scheduler's prediction window
  /// instead of holding them pinned until claimed.
  bool cancel_on_mispredict = false;
  /// Feedback-driven prefetch depth: an exec::PrefetchController scales
  /// the depth between 0 and max_prefetch_depth from the observed
  /// stale-claim rate and hidden-ms per claim (implies window-based bet
  /// cancelation; enables the pipeline regardless of enable_prefetch).
  /// Deterministic, like everything on the virtual clock.
  bool adaptive_prefetch = false;
  /// Depth ceiling for the adaptive controller (>= 1).
  size_t max_prefetch_depth = 4;
  /// Demote buckets inside the scheduler's prediction window last on
  /// eviction (BucketCache::SetPredictionWindow); off = plain LRU.
  bool prefetch_aware_eviction = true;
  /// Per-worker bump arenas for parallel match collection (no effect at
  /// num_threads == 1). Results are byte-identical on or off.
  bool match_arenas = true;
  /// Bump arenas for batch-scoped I/O scratch: spill-restore read buffers
  /// and worker-side bucket page decode buffers. Results are
  /// byte-identical on or off.
  bool io_arenas = true;
  /// Optional workload-adaptive alpha: when set and the scheduler is a
  /// LifeRaftScheduler, the engine re-selects alpha from the observed
  /// arrival rate after every admission.
  const sched::AlphaSelector* alpha_selector = nullptr;
  /// Window for the adaptive controller's arrival-rate estimate.
  TimeMs rate_window_ms = 120'000.0;
  /// Workload overflow (shared mode): when non-empty, workload queues
  /// exceeding `workload_memory_budget` resident objects spill to this
  /// scratch file; restores charge disk time through the cost model.
  std::string spill_path;
  uint64_t workload_memory_budget = 0;
};

/// Per-query outcome of a run.
struct QueryOutcome {
  query::QueryId id = 0;
  TimeMs arrival_ms = 0.0;
  TimeMs completion_ms = 0.0;
  size_t parts = 0;
  uint64_t matches = 0;
  /// QoS class assigned at admission (serving mode; kBatch for Run).
  QosClass qos = QosClass::kBatch;

  TimeMs ResponseMs() const { return completion_ms - arrival_ms; }
};

/// Single-archive simulation engine.
class SimEngine {
 public:
  /// @param catalog   the archive (not owned; must outlive the engine)
  /// @param scheduler bucket scheduler; required for kShared, ignored
  ///                  otherwise
  SimEngine(storage::Catalog* catalog,
            std::unique_ptr<sched::Scheduler> scheduler, EngineConfig config);

  /// Replays `queries[i]` arriving at `arrivals_ms[i]` (parallel arrays;
  /// arrivals must be ascending) until every query completes. Returns the
  /// run's metrics; per-query outcomes are available via outcomes().
  Result<RunMetrics> Run(const std::vector<query::CrossMatchQuery>& queries,
                         const std::vector<TimeMs>& arrivals_ms);

  /// Continuous serving (shared mode only): queries arrive open-loop per
  /// `serve.arrivals`, are QoS-classified by fan-out, and pass the
  /// admission controller before entering the workload manager — arrivals
  /// it sheds never execute and are reported per class in
  /// RunMetrics::qos_classes. With an EngineConfig::alpha_selector the
  /// LifeRaft alpha is re-selected online from the controller's offered-
  /// rate estimate. A kTrace spec with no shedding bounds and no selector
  /// reproduces Run(queries, trace) exactly.
  Result<RunMetrics> Serve(const std::vector<query::CrossMatchQuery>& queries,
                           const ServeConfig& serve);

  /// Outcomes of the last Run, in completion order.
  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }

  /// The scheduler (null in per-query modes); exposed for tests and for
  /// inspecting the adaptive alpha trajectory.
  sched::Scheduler* scheduler() { return scheduler_.get(); }

 private:
  struct AdmittedQuery {
    const query::CrossMatchQuery* query;
    std::vector<query::BucketWorkload> workloads;
    TimeMs arrival_ms;
  };

  // Validates the disk model / scheduler preconditions, resets all run
  // state, and (re)builds topology, cache, evaluator, manager, and — in
  // shared mode — the batch pipeline. Shared verbatim between Run and
  // Serve so both drive the identical execution stack.
  Status PrepareRun(size_t expected_queries);
  // Collects the common (mode-independent) portion of RunMetrics from the
  // engine's post-loop state. `n` is the query count used for the
  // throughput denominator.
  RunMetrics AssembleMetrics(size_t n);

  // One scheduling step in shared mode (delegates to the unified
  // exec::BatchPipeline); advances the clock. Returns false if there was
  // no pending work.
  Result<bool> SharedStep();
  // Serves the FIFO-front query in a per-query mode (serial path), or the
  // whole ready window in parallel. `admit_ready` admits every arrival at
  // or before the current clock; the parallel path invokes it between
  // per-query completions exactly where the serial loop would.
  Result<bool> PerQueryStep(const std::function<Status()>& admit_ready);

  void RecordCompletion(query::QueryId id, TimeMs completion);

  storage::Catalog* catalog_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  EngineConfig config_;

  // Run state. Declaration order matters: the cache (and evaluator)
  // borrow the topology, so topology_ must outlive them on destruction.
  storage::DiskModel model_;
  std::unique_ptr<util::ThreadPool> pool_;  // non-null iff num_threads > 1
  std::unique_ptr<storage::StorageTopology> topology_;
  std::unique_ptr<storage::BucketCache> cache_;
  std::unique_ptr<join::JoinEvaluator> evaluator_;
  std::unique_ptr<query::WorkloadManager> manager_;
  /// Real-I/O submission queues (io_mode == kReal only). Declared before
  /// pipeline_ — the pipeline borrows the reader, so the reader must be
  /// destroyed (workers joined) after it; and after topology_/the store,
  /// which the reader's workers reference.
  std::unique_ptr<storage::AsyncReader> async_reader_;
  /// The unified pick→prefetch→claim→evaluate→account loop (shared mode).
  std::unique_ptr<exec::BatchPipeline> pipeline_;
  std::vector<AdmittedQuery> fifo_;  // per-query modes; front = next
  size_t fifo_head_ = 0;
  TimeMs clock_ = 0.0;
  /// Real mode: the wall time PrepareRun finished at; the engine clock is
  /// max(clock_, wall now - this) after every step.
  WallClock wall_;
  TimeMs wall_base_ms_ = 0.0;

  std::unordered_map<query::QueryId, QueryOutcome> pending_outcomes_;
  std::vector<QueryOutcome> outcomes_;
  uint64_t total_matches_ = 0;
  uint64_t fifo_pending_objects_ = 0;
  uint64_t peak_pending_objects_ = 0;
  /// Admitted-but-incomplete interactive queries (serving mode; always 0
  /// in Run). Drives which QosPrefetchConfig entry caps the pipeline.
  size_t pending_interactive_ = 0;
};

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_ENGINE_H_
