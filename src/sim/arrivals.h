// Arrival processes for trace replay. "Saturation" in the paper is the
// query arrival rate; the experiments sweep it from 0.1 to 0.5 queries per
// second. Poisson arrivals model the open SkyQuery web workload; the bursty
// (two-phase MMPP) generator exercises the non-stationary regime §6 argues
// shared-scan batching must tolerate.

#ifndef LIFERAFT_SIM_ARRIVALS_H_
#define LIFERAFT_SIM_ARRIVALS_H_

#include <cstddef>
#include <vector>

#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace liferaft::sim {

// All generators validate their parameters and return
// Status::InvalidArgument (TraceConfig::Validate style) instead of
// asserting: the asserts vanished under NDEBUG, so a Release-mode caller
// passing rate_qps = 0 silently produced inf/NaN timestamps that poisoned
// every downstream virtual clock. n = 0 is valid everywhere and yields an
// empty (OK) vector.

/// `n` arrival timestamps (ms, ascending from 0) with exponential
/// inter-arrival times of rate `rate_qps` queries/second.
Result<std::vector<TimeMs>> PoissonArrivals(size_t n, double rate_qps,
                                            Rng* rng);

/// Deterministic arrivals with fixed spacing 1/rate_qps.
Result<std::vector<TimeMs>> UniformArrivals(size_t n, double rate_qps);

/// Two-phase Markov-modulated Poisson process: alternating exponentially-
/// distributed ON (rate_on) and OFF (rate_off) phases with mean duration
/// `mean_phase_ms` each. rate_off may be 0 for pure on/off bursts (the
/// generator jumps silent phases and keeps alternating).
Result<std::vector<TimeMs>> BurstyArrivals(size_t n, double rate_on_qps,
                                           double rate_off_qps,
                                           TimeMs mean_phase_ms, Rng* rng);

/// All queries present at t = 0 (closed-system batch replay).
std::vector<TimeMs> ImmediateArrivals(size_t n);

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_ARRIVALS_H_
