// Arrival processes for trace replay. "Saturation" in the paper is the
// query arrival rate; the experiments sweep it from 0.1 to 0.5 queries per
// second. Poisson arrivals model the open SkyQuery web workload; the bursty
// (two-phase MMPP) generator exercises the non-stationary regime §6 argues
// shared-scan batching must tolerate.

#ifndef LIFERAFT_SIM_ARRIVALS_H_
#define LIFERAFT_SIM_ARRIVALS_H_

#include <cstddef>
#include <vector>

#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace liferaft::sim {

// All generators validate their parameters and return
// Status::InvalidArgument (TraceConfig::Validate style) instead of
// asserting: the asserts vanished under NDEBUG, so a Release-mode caller
// passing rate_qps = 0 silently produced inf/NaN timestamps that poisoned
// every downstream virtual clock. n = 0 is valid everywhere and yields an
// empty (OK) vector.

/// `n` arrival timestamps (ms, ascending from 0) with exponential
/// inter-arrival times of rate `rate_qps` queries/second.
Result<std::vector<TimeMs>> PoissonArrivals(size_t n, double rate_qps,
                                            Rng* rng);

/// Deterministic arrivals with fixed spacing 1/rate_qps.
Result<std::vector<TimeMs>> UniformArrivals(size_t n, double rate_qps);

/// Two-phase Markov-modulated Poisson process: alternating exponentially-
/// distributed ON (rate_on) and OFF (rate_off) phases with mean duration
/// `mean_phase_ms` each. rate_off may be 0 for pure on/off bursts (the
/// generator jumps silent phases and keeps alternating).
Result<std::vector<TimeMs>> BurstyArrivals(size_t n, double rate_on_qps,
                                           double rate_off_qps,
                                           TimeMs mean_phase_ms, Rng* rng);

/// Diurnal (day/night) non-homogeneous Poisson process via Lewis–Shedler
/// thinning: instantaneous rate
///   rate(t) = base_rate_qps * (1 + amplitude * sin(2*pi * t / period_ms))
/// so the offered load swings between base*(1 - amplitude) and
/// base*(1 + amplitude) once per period. amplitude must be in [0, 1]
/// (amplitude 1 silences the trough completely); amplitude 0 degenerates
/// to PoissonArrivals on a different rng draw sequence.
Result<std::vector<TimeMs>> DiurnalArrivals(size_t n, double base_rate_qps,
                                            double amplitude,
                                            TimeMs period_ms, Rng* rng);

/// Flash crowd: steady Poisson at base_rate_qps until spike_start_ms, then
/// an instantaneous jump to base*spike_factor decaying exponentially back
/// to base with time constant decay_ms:
///   rate(t) = base * (1 + (spike_factor - 1) * exp(-(t - start) / decay))
/// for t >= start. spike_factor >= 1 (1 = no spike); thinning against the
/// peak rate keeps the sequence exact and deterministic.
Result<std::vector<TimeMs>> FlashCrowdArrivals(size_t n, double base_rate_qps,
                                               double spike_factor,
                                               TimeMs spike_start_ms,
                                               TimeMs decay_ms, Rng* rng);

/// All queries present at t = 0 (closed-system batch replay).
std::vector<TimeMs> ImmediateArrivals(size_t n);

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_ARRIVALS_H_
