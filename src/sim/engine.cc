#include "sim/engine.h"

#include <algorithm>
#include <cassert>

#include "query/preprocessor.h"
#include "sched/liferaft_scheduler.h"

namespace liferaft::sim {

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kShared:
      return "shared";
    case ExecutionMode::kNoShare:
      return "noshare";
    case ExecutionMode::kIndexOnly:
      return "indexonly";
  }
  return "?";
}

SimEngine::SimEngine(storage::Catalog* catalog,
                     std::unique_ptr<sched::Scheduler> scheduler,
                     EngineConfig config)
    : catalog_(catalog),
      scheduler_(std::move(scheduler)),
      config_(config),
      model_(config.disk) {
  assert(catalog_ != nullptr);
}

void SimEngine::RecordCompletion(query::QueryId id, TimeMs completion) {
  auto it = pending_outcomes_.find(id);
  assert(it != pending_outcomes_.end());
  it->second.completion_ms = completion;
  outcomes_.push_back(it->second);
  pending_outcomes_.erase(it);
}

Result<bool> SimEngine::SharedStep() {
  auto cached = [this](storage::BucketIndex b) {
    if (cache_->Contains(b)) return true;
    // A prefetched bucket whose modeled fetch has completed is as good as
    // resident for the metric's phi term — which also steers the scheduler
    // toward the bucket we bet on, making the prediction self-fulfilling.
    return prefetch_.has_value() && prefetch_->bucket == b &&
           prefetch_->done_ms <= clock_;
  };
  std::optional<storage::BucketIndex> pick =
      scheduler_->PickBucket(*manager_, clock_, cached);
  if (!pick.has_value()) return false;

  std::vector<query::QueryId> completed;
  uint64_t restored_bytes = 0;
  std::vector<query::WorkloadEntry> entries =
      manager_->TakeBucket(*pick, &completed, &restored_bytes);

  // Claim the outstanding prefetch if this batch is the one it bet on: the
  // bucket becomes resident (the evaluator sees a hit, charging no T_b)
  // and the clock is charged only the un-hidden tail of the fetch. A
  // prefetch for a different bucket stays pinned until its bucket is
  // scheduled. Claim only when the evaluator will actually scan: under
  // prefer_scan_when_cached=false a small batch probes the index and would
  // never touch the fetched bucket (ChooseStrategy ignores residency in
  // that config, so the evaluator reaches the same strategy whether or not
  // we claim here).
  TimeMs fetch_residual = 0.0;
  if (prefetch_.has_value() && prefetch_->bucket == *pick) {
    uint64_t queue_objects = 0;
    for (const query::WorkloadEntry& e : entries) {
      queue_objects += e.objects.size();
    }
    const bool will_scan =
        catalog_->index() == nullptr ||
        join::ChooseStrategy(config_.hybrid, queue_objects,
                             cache_->store().BucketObjectCount(*pick),
                             /*bucket_cached=*/true) ==
            join::JoinStrategy::kScan;
    if (will_scan) {
      fetch_residual = std::max(0.0, prefetch_->done_ms - clock_);
      prefetch_hidden_ms_ += prefetch_->fetch_ms - fetch_residual;
      LIFERAFT_RETURN_IF_ERROR(cache_->Get(*pick).status());
      prefetch_.reset();
    }
  }

  // Predict the next pick and start its physical read now, overlapping the
  // join below. The modeled fetch starts only when this batch's disk phase
  // ends (one disk arm): done = now + residual + io + T_b(next).
  bool has_predicted = false;
  storage::BucketIndex predicted = 0;
  if (config_.enable_prefetch && !prefetch_.has_value()) {
    std::optional<storage::BucketIndex> peek =
        scheduler_->PeekNextBucket(*manager_, clock_, cached);
    if (peek.has_value() && !cache_->Contains(*peek)) {
      (void)cache_->PrefetchAsync(*peek);
      has_predicted = true;
      predicted = *peek;
    }
  }

  LIFERAFT_ASSIGN_OR_RETURN(
      join::BatchResult result,
      evaluator_->EvaluateBucket(*pick, entries, config_.collect_matches));
  // Fetching spilled workload segments back from disk is sequential I/O —
  // part of this batch's disk phase, so it also delays a prefetch's start.
  const TimeMs restore_ms =
      restored_bytes > 0 ? model_.SequentialReadMs(restored_bytes) : 0.0;
  if (has_predicted) {
    uint64_t bytes =
        static_cast<uint64_t>(cache_->store().BucketObjectCount(predicted)) *
        storage::Bucket::kBytesPerObject;
    TimeMs fetch_ms = model_.SequentialReadMs(bytes);
    prefetch_ = PendingPrefetch{
        predicted,
        clock_ + fetch_residual + result.io_ms + restore_ms + fetch_ms,
        fetch_ms};
  } else if (prefetch_.has_value() && prefetch_->done_ms > clock_) {
    // A still-in-flight prefetch (mispredicted earlier, or unclaimed by an
    // index-only batch) yields the single disk arm to this batch's
    // foreground I/O: its completion slips by however long the arm was
    // busy here, so fetches never overlap fetches on the virtual clock.
    prefetch_->done_ms += fetch_residual + result.io_ms + restore_ms;
  }
  clock_ += fetch_residual + result.cost_ms;
  clock_ += restore_ms;
  total_matches_ += result.counters.output_matches;
  if (config_.collect_matches) {
    for (const query::Match& m : result.matches) {
      auto it = pending_outcomes_.find(m.query_id);
      if (it != pending_outcomes_.end()) ++it->second.matches;
    }
  }
  for (query::QueryId id : completed) RecordCompletion(id, clock_);
  return true;
}

Result<bool> SimEngine::PerQueryStep(
    const std::function<Status()>& admit_ready) {
  if (fifo_head_ >= fifo_.size()) return false;
  // Serial (paper) execution serves exactly one query per step; with a
  // pool attached, every ready query is evaluated concurrently — they are
  // embarrassingly parallel, each touching only its own store-direct
  // buckets or the immutable index — and the results are applied below in
  // arrival order, reproducing the serial accounting byte for byte.
  const size_t begin = fifo_head_;
  const size_t end = pool_ != nullptr ? fifo_.size() : fifo_head_ + 1;
  const join::PerQueryMode mode = config_.mode == ExecutionMode::kNoShare
                                      ? join::PerQueryMode::kNoShareScan
                                      : join::PerQueryMode::kIndexProbes;
  std::vector<join::PerQueryWork> window;
  window.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const AdmittedQuery& aq = fifo_[i];
    window.push_back(join::PerQueryWork{aq.query->id, aq.arrival_ms,
                                        aq.query->predicate, &aq.workloads});
  }
  LIFERAFT_ASSIGN_OR_RETURN(std::vector<join::PerQueryResult> results,
                            evaluator_->EvaluatePerQueryWindow(
                                mode, window, config_.collect_matches));

  for (size_t i = begin; i < end; ++i) {
    // Re-index each iteration: admit_ready() may grow (and reallocate)
    // fifo_ — appended queries land beyond `end` and run next step, just
    // as they would have queued behind the window under serial execution.
    const AdmittedQuery& aq = fifo_[i];
    ++fifo_head_;
    for (const auto& w : aq.workloads) {
      fifo_pending_objects_ -= w.objects.size();
    }
    const join::PerQueryResult& r = results[i - begin];
    clock_ += r.cost_ms;
    total_matches_ += r.matches;
    auto it = pending_outcomes_.find(aq.query->id);
    assert(it != pending_outcomes_.end());
    it->second.matches = r.matches;
    RecordCompletion(aq.query->id, clock_);
    // Between two completions the serial loop would admit everything that
    // arrived while the earlier query ran; mirror it exactly so
    // peak_pending_objects is identical.
    if (i + 1 < end) LIFERAFT_RETURN_IF_ERROR(admit_ready());
  }
  return true;
}

Result<RunMetrics> SimEngine::Run(
    const std::vector<query::CrossMatchQuery>& queries,
    const std::vector<TimeMs>& arrivals_ms) {
  if (queries.size() != arrivals_ms.size()) {
    return Status::InvalidArgument("queries and arrivals size mismatch");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("empty trace");
  }
  if (!std::is_sorted(arrivals_ms.begin(), arrivals_ms.end())) {
    return Status::InvalidArgument("arrivals must be ascending");
  }
  for (const auto& q : queries) {
    if (q.objects.empty()) {
      return Status::InvalidArgument("query " + std::to_string(q.id) +
                                     " has no objects");
    }
  }
  LIFERAFT_RETURN_IF_ERROR(config_.disk.Validate());
  if (config_.mode == ExecutionMode::kShared && scheduler_ == nullptr) {
    return Status::FailedPrecondition("shared mode requires a scheduler");
  }
  if ((config_.mode == ExecutionMode::kIndexOnly ||
       config_.mode == ExecutionMode::kShared) &&
      catalog_->index() == nullptr &&
      config_.mode == ExecutionMode::kIndexOnly) {
    return Status::FailedPrecondition("index-only mode requires an index");
  }

  // Reset run state.
  clock_ = 0.0;
  fifo_.clear();
  fifo_head_ = 0;
  fifo_pending_objects_ = 0;
  peak_pending_objects_ = 0;
  pending_outcomes_.clear();
  outcomes_.clear();
  outcomes_.reserve(queries.size());
  total_matches_ = 0;
  prefetch_.reset();
  prefetch_hidden_ms_ = 0.0;
  catalog_->store()->ResetStats();
  // The old cache (and any in-flight prefetch it still holds) is drained
  // here, while the pool it may reference is still alive.
  cache_ = std::make_unique<storage::BucketCache>(
      catalog_->store(), std::max<size_t>(config_.cache_capacity, 1));
  evaluator_ = std::make_unique<join::JoinEvaluator>(
      cache_.get(), catalog_->index(), model_, config_.hybrid);
  if (config_.num_threads > 1) {
    if (pool_ == nullptr || pool_->num_threads() != config_.num_threads) {
      pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    }
    evaluator_->set_thread_pool(pool_.get());
    cache_->set_thread_pool(pool_.get());
  } else {
    pool_.reset();
  }
  manager_ =
      std::make_unique<query::WorkloadManager>(catalog_->num_buckets());
  if (!config_.spill_path.empty() &&
      config_.mode == ExecutionMode::kShared) {
    LIFERAFT_RETURN_IF_ERROR(manager_->EnableSpill(
        config_.spill_path, config_.workload_memory_budget));
  }

  // Adaptive alpha plumbing (shared mode with a LifeRaft scheduler only).
  auto* adaptive_target =
      dynamic_cast<sched::LifeRaftScheduler*>(scheduler_.get());
  sched::ArrivalRateEstimator rate_estimator(config_.rate_window_ms);

  size_t next_arrival = 0;
  const size_t n = queries.size();

  auto admit = [&](size_t i) -> Status {
    const query::CrossMatchQuery& q = queries[i];
    TimeMs arrival = arrivals_ms[i];
    QueryOutcome outcome;
    outcome.id = q.id;
    outcome.arrival_ms = arrival;
    auto workloads = query::SplitQueryByBucket(q, catalog_->bucket_map());
    outcome.parts = workloads.size();
    if (pending_outcomes_.count(q.id) != 0) {
      return Status::AlreadyExists("duplicate query id " +
                                   std::to_string(q.id));
    }
    pending_outcomes_[q.id] = outcome;

    if (config_.mode == ExecutionMode::kShared) {
      query::CrossMatchQuery stamped;  // metadata only; objects live in
      stamped.id = q.id;               // the workloads
      stamped.arrival_ms = arrival;
      stamped.predicate = q.predicate;
      LIFERAFT_ASSIGN_OR_RETURN(size_t parts,
                                manager_->Admit(stamped, workloads));
      (void)parts;
      if (config_.alpha_selector != nullptr && adaptive_target != nullptr) {
        rate_estimator.OnArrival(arrival);
        auto alpha =
            config_.alpha_selector->AlphaFor(rate_estimator.RateQps(arrival));
        if (alpha.ok()) adaptive_target->set_alpha(*alpha);
      }
    } else {
      for (const auto& w : workloads) fifo_pending_objects_ += w.objects.size();
      fifo_.push_back(AdmittedQuery{&queries[i], std::move(workloads),
                                    arrival});
    }
    uint64_t pending = config_.mode == ExecutionMode::kShared
                           ? manager_->total_pending_objects()
                           : fifo_pending_objects_;
    peak_pending_objects_ = std::max(peak_pending_objects_, pending);
    return Status::OK();
  };

  auto admit_ready = [&]() -> Status {
    while (next_arrival < n && arrivals_ms[next_arrival] <= clock_) {
      LIFERAFT_RETURN_IF_ERROR(admit(next_arrival++));
    }
    return Status::OK();
  };

  while (outcomes_.size() < n) {
    LIFERAFT_RETURN_IF_ERROR(admit_ready());
    Result<bool> worked = config_.mode == ExecutionMode::kShared
                              ? SharedStep()
                              : PerQueryStep(admit_ready);
    if (!worked.ok()) return worked.status();
    if (!*worked) {
      if (next_arrival >= n) {
        return Status::Internal("no pending work but queries incomplete");
      }
      // Idle until the next arrival.
      clock_ = std::max(clock_, arrivals_ms[next_arrival]);
    }
  }
  if (prefetch_.has_value()) {
    // A final prediction whose bucket was never scheduled again.
    cache_->CancelPrefetch(prefetch_->bucket);
    prefetch_.reset();
  }

  // Assemble metrics.
  RunMetrics metrics;
  metrics.scheduler_name = config_.mode == ExecutionMode::kShared
                               ? scheduler_->name()
                               : ExecutionModeName(config_.mode);
  metrics.queries_completed = outcomes_.size();
  metrics.makespan_ms = clock_;
  metrics.throughput_qps =
      clock_ > 0.0 ? static_cast<double>(n) / (clock_ / 1000.0) : 0.0;
  Percentiles pct;
  for (const QueryOutcome& o : outcomes_) {
    metrics.response_stats.Add(o.ResponseMs());
    pct.Add(o.ResponseMs());
  }
  metrics.avg_response_ms = metrics.response_stats.mean();
  metrics.p50_response_ms = pct.Percentile(50);
  metrics.p95_response_ms = pct.Percentile(95);
  metrics.response_cov = metrics.response_stats.coefficient_of_variation();
  metrics.cache = cache_->stats();
  metrics.store = catalog_->store()->stats();
  metrics.evaluator = evaluator_->stats();
  metrics.total_matches = total_matches_;
  metrics.peak_pending_objects = peak_pending_objects_;
  metrics.spill = manager_ != nullptr ? manager_->spill_stats()
                                      : query::SpillStats{};
  metrics.prefetch_hidden_ms = prefetch_hidden_ms_;
  return metrics;
}

}  // namespace liferaft::sim
