#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "query/preprocessor.h"
#include "sched/liferaft_scheduler.h"

namespace liferaft::sim {

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kShared:
      return "shared";
    case ExecutionMode::kNoShare:
      return "noshare";
    case ExecutionMode::kIndexOnly:
      return "indexonly";
  }
  return "?";
}

const char* IoModeName(IoMode mode) {
  switch (mode) {
    case IoMode::kModeled:
      return "modeled";
    case IoMode::kReal:
      return "real";
  }
  return "?";
}

SimEngine::SimEngine(storage::Catalog* catalog,
                     std::unique_ptr<sched::Scheduler> scheduler,
                     EngineConfig config)
    : catalog_(catalog),
      scheduler_(std::move(scheduler)),
      config_(config),
      model_(config.disk) {
  assert(catalog_ != nullptr);
}

void SimEngine::RecordCompletion(query::QueryId id, TimeMs completion) {
  auto it = pending_outcomes_.find(id);
  assert(it != pending_outcomes_.end());
  it->second.completion_ms = completion;
  if (it->second.qos == QosClass::kInteractive &&
      pending_interactive_ > 0) {
    --pending_interactive_;
  }
  outcomes_.push_back(it->second);
  pending_outcomes_.erase(it);
}

Result<bool> SimEngine::SharedStep() {
  // The pick→prefetch→claim→evaluate→account loop lives in
  // exec::BatchPipeline (shared with core::LifeRaft); the engine only owns
  // the clock and the per-query outcome bookkeeping.
  LIFERAFT_ASSIGN_OR_RETURN(std::optional<exec::StepOutcome> outcome,
                            pipeline_->Step(clock_));
  if (!outcome.has_value()) return false;
  if (config_.io_mode == IoMode::kReal) {
    // Measured execution: the clock IS elapsed wall time. (max: an idle
    // jump to a future arrival may have pushed clock_ ahead of the wall.)
    clock_ = std::max(clock_, wall_.NowMs() - wall_base_ms_);
  } else {
    // Two additions, exactly as the pre-exec loop advanced the clock, so
    // makespans stay bit-identical across the refactor (FP addition is
    // not associative).
    clock_ += outcome->fetch_residual_ms + outcome->cost_ms;
    clock_ += outcome->restore_ms;
  }
  total_matches_ += outcome->counters.output_matches;
  if (config_.collect_matches) {
    for (const query::Match& m : outcome->matches) {
      auto it = pending_outcomes_.find(m.query_id);
      if (it != pending_outcomes_.end()) ++it->second.matches;
    }
  }
  for (query::QueryId id : outcome->completed) RecordCompletion(id, clock_);
  return true;
}

Result<bool> SimEngine::PerQueryStep(
    const std::function<Status()>& admit_ready) {
  if (fifo_head_ >= fifo_.size()) return false;
  // Serial (paper) execution serves exactly one query per step; with a
  // pool attached, every ready query is evaluated concurrently — they are
  // embarrassingly parallel, each touching only its own store-direct
  // buckets or the immutable index — and the results are applied below in
  // arrival order, reproducing the serial accounting byte for byte.
  const size_t begin = fifo_head_;
  const size_t end = pool_ != nullptr ? fifo_.size() : fifo_head_ + 1;
  const join::PerQueryMode mode = config_.mode == ExecutionMode::kNoShare
                                      ? join::PerQueryMode::kNoShareScan
                                      : join::PerQueryMode::kIndexProbes;
  std::vector<join::PerQueryWork> window;
  window.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const AdmittedQuery& aq = fifo_[i];
    window.push_back(join::PerQueryWork{aq.query->id, aq.arrival_ms,
                                        aq.query->predicate, &aq.workloads});
  }
  LIFERAFT_ASSIGN_OR_RETURN(std::vector<join::PerQueryResult> results,
                            evaluator_->EvaluatePerQueryWindow(
                                mode, window, config_.collect_matches));

  for (size_t i = begin; i < end; ++i) {
    // Re-index each iteration: admit_ready() may grow (and reallocate)
    // fifo_ — appended queries land beyond `end` and run next step, just
    // as they would have queued behind the window under serial execution.
    const AdmittedQuery& aq = fifo_[i];
    ++fifo_head_;
    for (const auto& w : aq.workloads) {
      fifo_pending_objects_ -= w.objects.size();
    }
    const join::PerQueryResult& r = results[i - begin];
    clock_ += r.cost_ms;
    total_matches_ += r.matches;
    auto it = pending_outcomes_.find(aq.query->id);
    assert(it != pending_outcomes_.end());
    it->second.matches = r.matches;
    RecordCompletion(aq.query->id, clock_);
    // Between two completions the serial loop would admit everything that
    // arrived while the earlier query ran; mirror it exactly so
    // peak_pending_objects is identical.
    if (i + 1 < end) LIFERAFT_RETURN_IF_ERROR(admit_ready());
  }
  return true;
}

Status SimEngine::PrepareRun(size_t expected_queries) {
  LIFERAFT_RETURN_IF_ERROR(config_.disk.Validate());
  if (config_.mode == ExecutionMode::kShared && scheduler_ == nullptr) {
    return Status::FailedPrecondition("shared mode requires a scheduler");
  }
  if ((config_.mode == ExecutionMode::kIndexOnly ||
       config_.mode == ExecutionMode::kShared) &&
      catalog_->index() == nullptr &&
      config_.mode == ExecutionMode::kIndexOnly) {
    return Status::FailedPrecondition("index-only mode requires an index");
  }

  if (config_.io_mode == IoMode::kReal) {
    if (config_.mode != ExecutionMode::kShared) {
      return Status::InvalidArgument(
          "real I/O mode requires shared execution");
    }
    if (!catalog_->store()->SupportsConcurrentReads()) {
      return Status::InvalidArgument(
          "real I/O mode requires a store with concurrent reads");
    }
  }

  // Reset run state.
  clock_ = 0.0;
  fifo_.clear();
  fifo_head_ = 0;
  fifo_pending_objects_ = 0;
  peak_pending_objects_ = 0;
  pending_interactive_ = 0;
  pending_outcomes_.clear();
  outcomes_.clear();
  outcomes_.reserve(expected_queries);
  total_matches_ = 0;
  pipeline_.reset();
  // After the pipeline that borrowed it, before the topology its workers
  // route by.
  async_reader_.reset();
  catalog_->store()->ResetStats();
  // The old cache (and any in-flight prefetch it still holds) is drained
  // here — while the pool it may reference is still alive, and before the
  // topology it may shard by is replaced.
  cache_.reset();
  LIFERAFT_ASSIGN_OR_RETURN(
      storage::StorageTopology topology,
      storage::StorageTopology::Create(catalog_->num_buckets(),
                                       config_.topology, config_.disk));
  topology_ = std::make_unique<storage::StorageTopology>(std::move(topology));
  if (scheduler_ != nullptr) {
    // Cost-based policies price T_b with the owning volume's model
    // (heterogeneous volume_disk; uniform topologies rank identically).
    scheduler_->AttachTopology(topology_.get());
    if (auto* lr = dynamic_cast<sched::LifeRaftScheduler*>(scheduler_.get())) {
      // One flag governs every T_b consumer: ranking must price fetches
      // the same way the evaluator and pipeline charge them.
      lr->set_charge_encoded_bytes(config_.charge_encoded_bytes);
    }
  }
  // Volume-aligned cache sharding only when there genuinely are volumes
  // to align with: a single-volume topology would collapse every bucket
  // into shard 0 instead of reproducing the by-bucket-id map.
  cache_ = std::make_unique<storage::BucketCache>(
      catalog_->store(), std::max<size_t>(config_.cache_capacity, 1),
      config_.cache_shards,
      topology_->num_volumes() > 1 ? topology_.get() : nullptr,
      config_.cache_capacity_bytes);
  evaluator_ = std::make_unique<join::JoinEvaluator>(
      cache_.get(), catalog_->index(), model_, config_.hybrid);
  evaluator_->set_use_match_arenas(config_.match_arenas);
  evaluator_->set_use_io_arenas(config_.io_arenas);
  evaluator_->set_topology(topology_.get());
  evaluator_->set_charge_encoded_bytes(config_.charge_encoded_bytes);
  if (config_.num_threads > 1) {
    if (pool_ == nullptr || pool_->num_threads() != config_.num_threads) {
      pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    }
    evaluator_->set_thread_pool(pool_.get());
    cache_->set_thread_pool(pool_.get());
  } else {
    pool_.reset();
  }
  manager_ =
      std::make_unique<query::WorkloadManager>(catalog_->num_buckets());
  manager_->set_use_restore_arena(config_.io_arenas);
  if (!config_.spill_path.empty() &&
      config_.mode == ExecutionMode::kShared) {
    LIFERAFT_RETURN_IF_ERROR(manager_->EnableSpill(
        config_.spill_path, config_.workload_memory_budget));
  }
  if (config_.mode == ExecutionMode::kShared) {
    exec::PipelineConfig pipeline_config;
    pipeline_config.enable_prefetch = config_.enable_prefetch;
    pipeline_config.prefetch_depth = config_.prefetch_depth;
    pipeline_config.cancel_on_mispredict = config_.cancel_on_mispredict;
    pipeline_config.adaptive_prefetch = config_.adaptive_prefetch;
    pipeline_config.controller.max_depth =
        std::max<size_t>(config_.max_prefetch_depth, 1);
    pipeline_config.prefetch_aware_eviction = config_.prefetch_aware_eviction;
    pipeline_config.collect_matches = config_.collect_matches;
    pipeline_config.charge_encoded_bytes = config_.charge_encoded_bytes;
    pipeline_ = std::make_unique<exec::BatchPipeline>(
        scheduler_.get(), manager_.get(), evaluator_.get(), pipeline_config,
        topology_.get());
    if (config_.io_mode == IoMode::kReal) {
      async_reader_ = catalog_->store()->NewAsyncReader(topology_.get());
      pipeline_->AttachRealIo(async_reader_.get());
    }
  }
  wall_base_ms_ = wall_.NowMs();
  return Status::OK();
}

Result<RunMetrics> SimEngine::Run(
    const std::vector<query::CrossMatchQuery>& queries,
    const std::vector<TimeMs>& arrivals_ms) {
  if (queries.size() != arrivals_ms.size()) {
    return Status::InvalidArgument("queries and arrivals size mismatch");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("empty trace");
  }
  if (!std::is_sorted(arrivals_ms.begin(), arrivals_ms.end())) {
    return Status::InvalidArgument("arrivals must be ascending");
  }
  for (const auto& q : queries) {
    if (q.objects.empty()) {
      return Status::InvalidArgument("query " + std::to_string(q.id) +
                                     " has no objects");
    }
  }
  LIFERAFT_RETURN_IF_ERROR(PrepareRun(queries.size()));

  // Adaptive alpha plumbing (shared mode with a LifeRaft scheduler only).
  auto* adaptive_target =
      dynamic_cast<sched::LifeRaftScheduler*>(scheduler_.get());
  sched::ArrivalRateEstimator rate_estimator(config_.rate_window_ms);

  size_t next_arrival = 0;
  const size_t n = queries.size();

  auto admit = [&](size_t i) -> Status {
    const query::CrossMatchQuery& q = queries[i];
    TimeMs arrival = arrivals_ms[i];
    QueryOutcome outcome;
    outcome.id = q.id;
    outcome.arrival_ms = arrival;
    auto workloads = query::SplitQueryByBucket(q, catalog_->bucket_map());
    outcome.parts = workloads.size();
    if (pending_outcomes_.count(q.id) != 0) {
      return Status::AlreadyExists("duplicate query id " +
                                   std::to_string(q.id));
    }
    pending_outcomes_[q.id] = outcome;

    if (config_.mode == ExecutionMode::kShared) {
      query::CrossMatchQuery stamped;  // metadata only; objects live in
      stamped.id = q.id;               // the workloads
      stamped.arrival_ms = arrival;
      stamped.predicate = q.predicate;
      LIFERAFT_ASSIGN_OR_RETURN(size_t parts,
                                manager_->Admit(stamped, workloads));
      (void)parts;
      if (config_.alpha_selector != nullptr && adaptive_target != nullptr) {
        rate_estimator.OnArrival(arrival);
        rate_estimator.Prune(arrival);  // bound memory on long traces
        auto alpha =
            config_.alpha_selector->AlphaFor(rate_estimator.RateQps(arrival));
        if (alpha.ok()) adaptive_target->set_alpha(*alpha);
      }
    } else {
      for (const auto& w : workloads) fifo_pending_objects_ += w.objects.size();
      fifo_.push_back(AdmittedQuery{&queries[i], std::move(workloads),
                                    arrival});
    }
    uint64_t pending = config_.mode == ExecutionMode::kShared
                           ? manager_->total_pending_objects()
                           : fifo_pending_objects_;
    peak_pending_objects_ = std::max(peak_pending_objects_, pending);
    return Status::OK();
  };

  auto admit_ready = [&]() -> Status {
    while (next_arrival < n && arrivals_ms[next_arrival] <= clock_) {
      LIFERAFT_RETURN_IF_ERROR(admit(next_arrival++));
    }
    return Status::OK();
  };

  while (outcomes_.size() < n) {
    LIFERAFT_RETURN_IF_ERROR(admit_ready());
    Result<bool> worked = config_.mode == ExecutionMode::kShared
                              ? SharedStep()
                              : PerQueryStep(admit_ready);
    if (!worked.ok()) return worked.status();
    if (!*worked) {
      if (next_arrival >= n) {
        return Status::Internal("no pending work but queries incomplete");
      }
      // Idle until the next arrival.
      clock_ = std::max(clock_, arrivals_ms[next_arrival]);
    }
  }
  if (pipeline_ != nullptr) {
    // Final predictions whose buckets were never scheduled again.
    pipeline_->CancelOutstandingPrefetches();
  }
  return AssembleMetrics(n);
}

RunMetrics SimEngine::AssembleMetrics(size_t n) {
  RunMetrics metrics;
  metrics.scheduler_name = config_.mode == ExecutionMode::kShared
                               ? scheduler_->name()
                               : ExecutionModeName(config_.mode);
  metrics.queries_completed = outcomes_.size();
  // Makespan is the max over the completion clock and every arm's
  // consumed-work clock. A batch completion always waits out its own
  // arm's residual before its CPU phase, so the completion clock
  // dominates and the max is exact — bit-identical to the pre-topology
  // single-clock accounting on one volume.
  metrics.makespan_ms = clock_;
  if (pipeline_ != nullptr) {
    metrics.volumes = pipeline_->volume_stats();
    for (const storage::VolumeIoStats& v : metrics.volumes) {
      metrics.makespan_ms = std::max(metrics.makespan_ms,
                                     v.consumed_until_ms);
    }
  }
  metrics.throughput_qps =
      clock_ > 0.0 ? static_cast<double>(n) / (clock_ / 1000.0) : 0.0;
  Percentiles pct;
  for (const QueryOutcome& o : outcomes_) {
    metrics.response_stats.Add(o.ResponseMs());
    pct.Add(o.ResponseMs());
  }
  metrics.avg_response_ms = metrics.response_stats.mean();
  metrics.p50_response_ms = pct.Percentile(50);
  metrics.p95_response_ms = pct.Percentile(95);
  metrics.p99_response_ms = pct.Percentile(99);
  metrics.response_cov = metrics.response_stats.coefficient_of_variation();
  metrics.cache = cache_->stats();
  metrics.store = catalog_->store()->stats();
  metrics.evaluator = evaluator_->stats();
  metrics.total_matches = total_matches_;
  metrics.peak_pending_objects = peak_pending_objects_;
  metrics.spill = manager_ != nullptr ? manager_->spill_stats()
                                      : query::SpillStats{};
  metrics.prefetch_hidden_ms =
      pipeline_ != nullptr ? pipeline_->prefetch_hidden_ms() : 0.0;
  if (async_reader_ != nullptr) {
    metrics.real_io_enabled = true;
    metrics.real_io = async_reader_->VolumeStats();
  }
  if (pipeline_ != nullptr && pipeline_->controller() != nullptr) {
    metrics.prefetch_final_depth = pipeline_->controller()->depth();
    metrics.prefetch_stale_ewma = pipeline_->controller()->stale_ewma();
    // Depths exist only for bucket arms; a spill arm has no controller.
    metrics.arm_final_depths.reserve(pipeline_->bucket_volumes());
    for (size_t v = 0; v < pipeline_->bucket_volumes(); ++v) {
      metrics.arm_final_depths.push_back(pipeline_->current_prefetch_depth(v));
    }
  }
  return metrics;
}

Result<RunMetrics> SimEngine::Serve(
    const std::vector<query::CrossMatchQuery>& queries,
    const ServeConfig& serve) {
  if (config_.mode != ExecutionMode::kShared) {
    return Status::InvalidArgument(
        "serving requires shared execution mode");
  }
  if (config_.io_mode == IoMode::kReal) {
    // Admission control and QoS latency targets are defined on the
    // virtual clock; a wall-clock serving loop is a different experiment.
    return Status::InvalidArgument("serving requires modeled I/O");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("empty trace");
  }
  for (const auto& q : queries) {
    if (q.objects.empty()) {
      return Status::InvalidArgument("query " + std::to_string(q.id) +
                                     " has no objects");
    }
  }
  LIFERAFT_RETURN_IF_ERROR(serve.Validate());
  LIFERAFT_ASSIGN_OR_RETURN(std::vector<TimeMs> arrivals_ms,
                            BuildArrivals(serve.arrivals, queries.size()));
  LIFERAFT_RETURN_IF_ERROR(PrepareRun(queries.size()));

  AdmissionController admission(serve, config_.rate_window_ms);
  auto* adaptive_target =
      dynamic_cast<sched::LifeRaftScheduler*>(scheduler_.get());

  size_t next_arrival = 0;
  const size_t n = queries.size();
  size_t admitted = 0;
  size_t shed_by_class[kNumQosClasses] = {0, 0};

  auto admit_ready = [&]() -> Status {
    while (next_arrival < n && arrivals_ms[next_arrival] <= clock_) {
      const size_t i = next_arrival++;
      const query::CrossMatchQuery& q = queries[i];
      TimeMs arrival = arrivals_ms[i];
      auto workloads = query::SplitQueryByBucket(q, catalog_->bucket_map());
      QosClass qos = workloads.size() <= serve.interactive_max_parts
                         ? QosClass::kInteractive
                         : QosClass::kBatch;
      // The controller sees the buffer as it stands; its verdict is final
      // — a shed query never touches the workload manager.
      bool admit = admission.Offer(arrival, manager_->total_pending_objects(),
                                   manager_->pending_queries(),
                                   q.objects.size());
      if (!admit) {
        ++shed_by_class[static_cast<size_t>(qos)];
        continue;
      }
      if (pending_outcomes_.count(q.id) != 0) {
        return Status::AlreadyExists("duplicate query id " +
                                     std::to_string(q.id));
      }
      QueryOutcome outcome;
      outcome.id = q.id;
      outcome.arrival_ms = arrival;
      outcome.parts = workloads.size();
      outcome.qos = qos;
      pending_outcomes_[q.id] = outcome;
      query::CrossMatchQuery stamped;  // metadata only; objects live in
      stamped.id = q.id;               // the workloads
      stamped.arrival_ms = arrival;
      stamped.predicate = q.predicate;
      LIFERAFT_ASSIGN_OR_RETURN(size_t parts,
                                manager_->Admit(stamped, workloads));
      (void)parts;
      ++admitted;
      if (qos == QosClass::kInteractive) ++pending_interactive_;
      peak_pending_objects_ =
          std::max(peak_pending_objects_, manager_->total_pending_objects());
      if (config_.alpha_selector != nullptr && adaptive_target != nullptr) {
        auto alpha =
            config_.alpha_selector->AlphaFor(admission.RateQps(arrival));
        if (alpha.ok()) adaptive_target->set_alpha(*alpha);
      }
    }
    return Status::OK();
  };

  // Per-QoS-class prefetch caps: while any admitted interactive query is
  // pending, every arm's next-step depth is capped at the interactive
  // entry; otherwise at the batch entry (0 = that class imposes no cap).
  // With both entries 0 the pipeline's cap is never touched, so the
  // default reproduces single-config serving byte for byte.
  const size_t interactive_cap =
      serve.qos_prefetch[static_cast<size_t>(QosClass::kInteractive)]
          .max_depth;
  const size_t batch_cap =
      serve.qos_prefetch[static_cast<size_t>(QosClass::kBatch)].max_depth;
  const bool qos_caps = interactive_cap != 0 || batch_cap != 0;

  while (next_arrival < n || outcomes_.size() < admitted) {
    LIFERAFT_RETURN_IF_ERROR(admit_ready());
    if (qos_caps) {
      const size_t cap = pending_interactive_ > 0 ? interactive_cap
                                                  : batch_cap;
      pipeline_->set_depth_cap(
          cap != 0 ? cap : std::numeric_limits<size_t>::max());
    }
    Result<bool> worked = SharedStep();
    if (!worked.ok()) return worked.status();
    if (!*worked) {
      if (next_arrival >= n) {
        if (outcomes_.size() < admitted) {
          return Status::Internal("no pending work but queries incomplete");
        }
        break;
      }
      // Idle until the next arrival.
      clock_ = std::max(clock_, arrivals_ms[next_arrival]);
    }
  }
  if (pipeline_ != nullptr) {
    pipeline_->CancelOutstandingPrefetches();
  }

  RunMetrics metrics = AssembleMetrics(admitted);
  metrics.queries_offered = n;
  metrics.queries_shed = admission.shed();
  metrics.offered_qps = metrics.makespan_ms > 0.0
                            ? static_cast<double>(n) /
                                  (metrics.makespan_ms / 1000.0)
                            : 0.0;
  metrics.sustained_qps =
      metrics.makespan_ms > 0.0
          ? static_cast<double>(outcomes_.size()) /
                (metrics.makespan_ms / 1000.0)
          : 0.0;
  if (auto* lr = dynamic_cast<sched::LifeRaftScheduler*>(scheduler_.get())) {
    metrics.alpha_final = lr->alpha();
  }

  // Per-class latency breakdown.
  Percentiles class_pct[kNumQosClasses];
  StreamingStats class_stats[kNumQosClasses];
  size_t class_completed[kNumQosClasses] = {0, 0};
  for (const QueryOutcome& o : outcomes_) {
    const size_t c = static_cast<size_t>(o.qos);
    class_pct[c].Add(o.ResponseMs());
    class_stats[c].Add(o.ResponseMs());
    ++class_completed[c];
  }
  metrics.qos_classes.resize(kNumQosClasses);
  for (size_t c = 0; c < kNumQosClasses; ++c) {
    QosClassMetrics& qc = metrics.qos_classes[c];
    qc.name = QosClassName(static_cast<QosClass>(c));
    qc.completed = class_completed[c];
    qc.shed = shed_by_class[c];
    qc.mean_response_ms = class_stats[c].mean();
    if (class_completed[c] > 0) {
      qc.p50_response_ms = class_pct[c].Percentile(50);
      qc.p95_response_ms = class_pct[c].Percentile(95);
      qc.p99_response_ms = class_pct[c].Percentile(99);
    }
  }
  return metrics;
}

}  // namespace liferaft::sim
