#include "sim/engine.h"

#include <algorithm>
#include <cassert>

#include "join/indexed_join.h"
#include "join/merge_join.h"
#include "query/preprocessor.h"
#include "sched/liferaft_scheduler.h"

namespace liferaft::sim {

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kShared:
      return "shared";
    case ExecutionMode::kNoShare:
      return "noshare";
    case ExecutionMode::kIndexOnly:
      return "indexonly";
  }
  return "?";
}

SimEngine::SimEngine(storage::Catalog* catalog,
                     std::unique_ptr<sched::Scheduler> scheduler,
                     EngineConfig config)
    : catalog_(catalog),
      scheduler_(std::move(scheduler)),
      config_(config),
      model_(config.disk) {
  assert(catalog_ != nullptr);
}

void SimEngine::RecordCompletion(query::QueryId id, TimeMs completion) {
  auto it = pending_outcomes_.find(id);
  assert(it != pending_outcomes_.end());
  it->second.completion_ms = completion;
  outcomes_.push_back(it->second);
  pending_outcomes_.erase(it);
}

Result<bool> SimEngine::SharedStep() {
  auto cached = [this](storage::BucketIndex b) {
    return cache_->Contains(b);
  };
  std::optional<storage::BucketIndex> pick =
      scheduler_->PickBucket(*manager_, clock_, cached);
  if (!pick.has_value()) return false;

  std::vector<query::QueryId> completed;
  uint64_t restored_bytes = 0;
  std::vector<query::WorkloadEntry> entries =
      manager_->TakeBucket(*pick, &completed, &restored_bytes);
  LIFERAFT_ASSIGN_OR_RETURN(
      join::BatchResult result,
      evaluator_->EvaluateBucket(*pick, entries, config_.collect_matches));
  clock_ += result.cost_ms;
  if (restored_bytes > 0) {
    // Fetching spilled workload segments back from disk is sequential I/O.
    clock_ += model_.SequentialReadMs(restored_bytes);
  }
  total_matches_ += result.counters.output_matches;
  if (config_.collect_matches) {
    for (const query::Match& m : result.matches) {
      auto it = pending_outcomes_.find(m.query_id);
      if (it != pending_outcomes_.end()) ++it->second.matches;
    }
  }
  for (query::QueryId id : completed) RecordCompletion(id, clock_);
  return true;
}

Result<bool> SimEngine::PerQueryStep() {
  if (fifo_head_ >= fifo_.size()) return false;
  const AdmittedQuery& aq = fifo_[fifo_head_++];
  for (const auto& w : aq.workloads) fifo_pending_objects_ -= w.objects.size();
  TimeMs cost = 0.0;
  uint64_t matches = 0;
  std::vector<query::Match> out;

  for (const query::BucketWorkload& w : aq.workloads) {
    query::WorkloadEntry entry;
    entry.query_id = aq.query->id;
    entry.arrival_ms = aq.arrival_ms;
    entry.predicate = aq.query->predicate;
    entry.objects = w.objects;
    const std::vector<query::WorkloadEntry> batch = {std::move(entry)};

    if (config_.mode == ExecutionMode::kNoShare) {
      // Independent evaluation: read the bucket straight from the store
      // (no shared cache), scan, pay full T_b + T_m.
      LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const storage::Bucket> b,
                                catalog_->store()->ReadBucket(w.bucket));
      join::JoinCounters counters = join::MergeCrossMatch(
          *b, batch, config_.collect_matches ? &out : nullptr);
      matches += counters.output_matches;
      cost += model_.ScanJoinMs(b->EstimatedBytes(), w.objects.size(),
                                /*bucket_cached=*/false);
    } else {  // kIndexOnly
      const htm::IdRange range = catalog_->bucket_map().RangeOf(w.bucket);
      join::IndexedJoinCounters counters = join::IndexedCrossMatch(
          *catalog_->index(), range, batch,
          config_.collect_matches ? &out : nullptr);
      matches += counters.join.output_matches;
      // Legacy index-exclusive execution (paper §5: ~7x slower than even
      // NoShare): every probe pays a cold root-to-leaf descent plus a heap
      // row fetch — height + 2 random I/Os per probe — unlike the hybrid
      // path's short bucket-restricted probes against warm internals.
      uint64_t ios_per_probe =
          static_cast<uint64_t>(catalog_->index()->height()) + 2;
      cost += model_.IndexedProbesMs(counters.probes * ios_per_probe) +
              model_.MatchMs(counters.join.workload_objects);
    }
  }
  clock_ += cost;
  total_matches_ += matches;
  auto it = pending_outcomes_.find(aq.query->id);
  assert(it != pending_outcomes_.end());
  it->second.matches = matches;
  RecordCompletion(aq.query->id, clock_);
  return true;
}

Result<RunMetrics> SimEngine::Run(
    const std::vector<query::CrossMatchQuery>& queries,
    const std::vector<TimeMs>& arrivals_ms) {
  if (queries.size() != arrivals_ms.size()) {
    return Status::InvalidArgument("queries and arrivals size mismatch");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("empty trace");
  }
  if (!std::is_sorted(arrivals_ms.begin(), arrivals_ms.end())) {
    return Status::InvalidArgument("arrivals must be ascending");
  }
  for (const auto& q : queries) {
    if (q.objects.empty()) {
      return Status::InvalidArgument("query " + std::to_string(q.id) +
                                     " has no objects");
    }
  }
  LIFERAFT_RETURN_IF_ERROR(config_.disk.Validate());
  if (config_.mode == ExecutionMode::kShared && scheduler_ == nullptr) {
    return Status::FailedPrecondition("shared mode requires a scheduler");
  }
  if ((config_.mode == ExecutionMode::kIndexOnly ||
       config_.mode == ExecutionMode::kShared) &&
      catalog_->index() == nullptr &&
      config_.mode == ExecutionMode::kIndexOnly) {
    return Status::FailedPrecondition("index-only mode requires an index");
  }

  // Reset run state.
  clock_ = 0.0;
  fifo_.clear();
  fifo_head_ = 0;
  fifo_pending_objects_ = 0;
  peak_pending_objects_ = 0;
  pending_outcomes_.clear();
  outcomes_.clear();
  outcomes_.reserve(queries.size());
  total_matches_ = 0;
  catalog_->store()->ResetStats();
  cache_ = std::make_unique<storage::BucketCache>(
      catalog_->store(), std::max<size_t>(config_.cache_capacity, 1));
  evaluator_ = std::make_unique<join::JoinEvaluator>(
      cache_.get(), catalog_->index(), model_, config_.hybrid);
  if (config_.num_threads > 1 && config_.mode == ExecutionMode::kShared) {
    if (pool_ == nullptr || pool_->num_threads() != config_.num_threads) {
      pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    }
    evaluator_->set_thread_pool(pool_.get());
  } else {
    pool_.reset();
  }
  manager_ =
      std::make_unique<query::WorkloadManager>(catalog_->num_buckets());
  if (!config_.spill_path.empty() &&
      config_.mode == ExecutionMode::kShared) {
    LIFERAFT_RETURN_IF_ERROR(manager_->EnableSpill(
        config_.spill_path, config_.workload_memory_budget));
  }

  // Adaptive alpha plumbing (shared mode with a LifeRaft scheduler only).
  auto* adaptive_target =
      dynamic_cast<sched::LifeRaftScheduler*>(scheduler_.get());
  sched::ArrivalRateEstimator rate_estimator(config_.rate_window_ms);

  size_t next_arrival = 0;
  const size_t n = queries.size();

  auto admit = [&](size_t i) -> Status {
    const query::CrossMatchQuery& q = queries[i];
    TimeMs arrival = arrivals_ms[i];
    QueryOutcome outcome;
    outcome.id = q.id;
    outcome.arrival_ms = arrival;
    auto workloads = query::SplitQueryByBucket(q, catalog_->bucket_map());
    outcome.parts = workloads.size();
    if (pending_outcomes_.count(q.id) != 0) {
      return Status::AlreadyExists("duplicate query id " +
                                   std::to_string(q.id));
    }
    pending_outcomes_[q.id] = outcome;

    if (config_.mode == ExecutionMode::kShared) {
      query::CrossMatchQuery stamped;  // metadata only; objects live in
      stamped.id = q.id;               // the workloads
      stamped.arrival_ms = arrival;
      stamped.predicate = q.predicate;
      LIFERAFT_ASSIGN_OR_RETURN(size_t parts,
                                manager_->Admit(stamped, workloads));
      (void)parts;
      if (config_.alpha_selector != nullptr && adaptive_target != nullptr) {
        rate_estimator.OnArrival(arrival);
        auto alpha =
            config_.alpha_selector->AlphaFor(rate_estimator.RateQps(arrival));
        if (alpha.ok()) adaptive_target->set_alpha(*alpha);
      }
    } else {
      for (const auto& w : workloads) fifo_pending_objects_ += w.objects.size();
      fifo_.push_back(AdmittedQuery{&queries[i], std::move(workloads),
                                    arrival});
    }
    uint64_t pending = config_.mode == ExecutionMode::kShared
                           ? manager_->total_pending_objects()
                           : fifo_pending_objects_;
    peak_pending_objects_ = std::max(peak_pending_objects_, pending);
    return Status::OK();
  };

  while (outcomes_.size() < n) {
    while (next_arrival < n && arrivals_ms[next_arrival] <= clock_) {
      LIFERAFT_RETURN_IF_ERROR(admit(next_arrival++));
    }
    Result<bool> worked = config_.mode == ExecutionMode::kShared
                              ? SharedStep()
                              : PerQueryStep();
    if (!worked.ok()) return worked.status();
    if (!*worked) {
      if (next_arrival >= n) {
        return Status::Internal("no pending work but queries incomplete");
      }
      // Idle until the next arrival.
      clock_ = std::max(clock_, arrivals_ms[next_arrival]);
    }
  }

  // Assemble metrics.
  RunMetrics metrics;
  metrics.scheduler_name = config_.mode == ExecutionMode::kShared
                               ? scheduler_->name()
                               : ExecutionModeName(config_.mode);
  metrics.queries_completed = outcomes_.size();
  metrics.makespan_ms = clock_;
  metrics.throughput_qps =
      clock_ > 0.0 ? static_cast<double>(n) / (clock_ / 1000.0) : 0.0;
  Percentiles pct;
  for (const QueryOutcome& o : outcomes_) {
    metrics.response_stats.Add(o.ResponseMs());
    pct.Add(o.ResponseMs());
  }
  metrics.avg_response_ms = metrics.response_stats.mean();
  metrics.p50_response_ms = pct.Percentile(50);
  metrics.p95_response_ms = pct.Percentile(95);
  metrics.response_cov = metrics.response_stats.coefficient_of_variation();
  metrics.cache = cache_->stats();
  metrics.store = catalog_->store()->stats();
  metrics.evaluator = evaluator_->stats();
  metrics.total_matches = total_matches_;
  metrics.peak_pending_objects = peak_pending_objects_;
  metrics.spill = manager_ != nullptr ? manager_->spill_stats()
                                      : query::SpillStats{};
  return metrics;
}

}  // namespace liferaft::sim
