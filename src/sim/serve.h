// Continuous serving on top of the batch engine (paper §6's deployment
// story): queries arrive open-loop from a stochastic process or a recorded
// trace, are classified into QoS classes at the front door, pass an
// admission controller that sheds load when the buffered workload outgrows
// what the disk arms can drain, and then flow through the same
// pick→prefetch→claim→evaluate→account pipeline the closed-workload drain
// uses. Serving is strictly opt-in: SimEngine::Run is untouched and the
// closed-drain virtual clock stays byte-identical.

#ifndef LIFERAFT_SIM_SERVE_H_
#define LIFERAFT_SIM_SERVE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sched/adaptive.h"
#include "util/clock.h"
#include "util/status.h"

namespace liferaft::sim {

/// QoS class of a served query, assigned at admission from the query's
/// fan-out (bucket sub-query count): small queries are interactive, sky
/// spanning ones are batch. Matches the paper's interactive/batch split
/// that sched::QosAgeWeight depreciates by.
enum class QosClass { kInteractive = 0, kBatch = 1 };

inline constexpr size_t kNumQosClasses = 2;

const char* QosClassName(QosClass c);

/// How served queries arrive. kTrace replays explicit timestamps (and is
/// the bridge for closed-workload equivalence tests); the stochastic kinds
/// generate sim::PoissonArrivals / UniformArrivals / BurstyArrivals /
/// DiurnalArrivals / FlashCrowdArrivals.
struct ArrivalSpec {
  enum class Kind {
    kPoisson,
    kUniform,
    kBursty,
    kTrace,
    /// Sinusoidal day/night rate swing (DiurnalArrivals).
    kDiurnal,
    /// Steady base rate with one exponentially-decaying spike
    /// (FlashCrowdArrivals).
    kFlashCrowd,
  };
  Kind kind = Kind::kPoisson;
  /// Arrival rate (ON-phase rate for kBursty, base rate for kDiurnal /
  /// kFlashCrowd; ignored for kTrace).
  double rate_qps = 0.5;
  /// OFF-phase rate for kBursty (0 = silent gaps).
  double rate_off_qps = 0.0;
  /// Mean phase duration for kBursty.
  TimeMs mean_phase_ms = 60'000.0;
  /// kDiurnal: fractional rate swing in [0, 1] and swing period.
  double amplitude = 0.5;
  TimeMs period_ms = 3'600'000.0;
  /// kFlashCrowd: the rate jumps to rate_qps * spike_factor at
  /// spike_start_ms and decays back with time constant decay_ms.
  double spike_factor = 8.0;
  TimeMs spike_start_ms = 60'000.0;
  TimeMs decay_ms = 120'000.0;
  /// Seed for the stochastic generators (deterministic replay).
  uint64_t seed = 1;
  /// Explicit ascending timestamps for kTrace; must match the query count.
  std::vector<TimeMs> trace;

  /// @param n number of queries the spec must cover
  Status Validate(size_t n) const;
};

const char* ArrivalKindName(ArrivalSpec::Kind kind);

/// Materializes `n` arrival timestamps from the spec (ascending from 0).
Result<std::vector<TimeMs>> BuildArrivals(const ArrivalSpec& spec, size_t n);

/// Per-QoS-class prefetch-controller override: while the class is active
/// (see ServeConfig::qos_prefetch) the engine caps every disk arm's
/// prefetch depth — adaptive or fixed — at max_depth. 0 = no class cap:
/// the arm keeps the engine-wide EngineConfig depth configuration, byte
/// for byte.
struct QosPrefetchConfig {
  size_t max_depth = 0;
};

/// Serving-mode configuration (see SimEngine::Serve).
struct ServeConfig {
  ArrivalSpec arrivals;
  /// Queries splitting into at most this many bucket sub-queries are
  /// classified kInteractive; larger ones kBatch.
  size_t interactive_max_parts = 8;
  /// Load-shedding bounds, both 0 = admit everything (unbounded buffer).
  /// A new arrival is shed when admitting it would leave more than
  /// max_pending_queries queries or max_pending_objects buffered query
  /// objects in the workload manager.
  size_t max_pending_queries = 0;
  uint64_t max_pending_objects = 0;
  /// Per-QoS-class prefetch depth caps, indexed by QosClass. The
  /// interactive entry is active while any admitted interactive query is
  /// still pending (deep speculative bets behind a latency-sensitive
  /// query only delay it); the batch entry is active otherwise. Both
  /// defaulting to 0 reproduces today's single prefetch config exactly —
  /// the engine never touches the pipeline's depth cap.
  QosPrefetchConfig qos_prefetch[kNumQosClasses];

  Status Validate() const;
};

/// The serving front door: per-arrival admit/shed decisions plus the
/// arrival-rate estimate that drives adaptive alpha. Thread-safe — in a
/// deployment arrivals land from concurrent request threads, so every
/// method takes an internal mutex; the estimator is pruned under that same
/// lock (the pre-fix code pruned from a const method, racing concurrent
/// readers).
class AdmissionController {
 public:
  AdmissionController(const ServeConfig& config, TimeMs rate_window_ms);

  /// Records an offered arrival and decides its fate: true = admit,
  /// false = shed. `pending_objects` / `pending_queries` describe the
  /// buffer BEFORE this query is added; `query_objects` is the candidate's
  /// own object count (so one sky-spanning query can overflow the bound by
  /// itself and be shed).
  bool Offer(TimeMs now, uint64_t pending_objects, size_t pending_queries,
             uint64_t query_objects);

  /// Offered arrival rate over the trailing window; prunes expired
  /// arrivals as a side effect (under the lock).
  double RateQps(TimeMs now);

  uint64_t offered() const;
  uint64_t shed() const;

 private:
  const size_t max_pending_queries_;
  const uint64_t max_pending_objects_;

  mutable std::mutex mu_;
  sched::ArrivalRateEstimator estimator_;
  uint64_t offered_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_SERVE_H_
