#include "sim/arrivals.h"

namespace liferaft::sim {

// Validation note: the `!(x > 0.0)` form also rejects NaN, which would
// otherwise sail through a `x <= 0.0` comparison and corrupt every
// generated timestamp.

Result<std::vector<TimeMs>> PoissonArrivals(size_t n, double rate_qps,
                                            Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("PoissonArrivals: rng must be non-null");
  }
  if (!(rate_qps > 0.0)) {
    return Status::InvalidArgument(
        "PoissonArrivals: rate_qps must be positive");
  }
  std::vector<TimeMs> out;
  out.reserve(n);
  double rate_per_ms = rate_qps / 1000.0;
  TimeMs t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    t += rng->Exponential(rate_per_ms);
    out.push_back(t);
  }
  return out;
}

Result<std::vector<TimeMs>> UniformArrivals(size_t n, double rate_qps) {
  if (!(rate_qps > 0.0)) {
    return Status::InvalidArgument(
        "UniformArrivals: rate_qps must be positive");
  }
  std::vector<TimeMs> out;
  out.reserve(n);
  double spacing_ms = 1000.0 / rate_qps;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(i) * spacing_ms);
  }
  return out;
}

Result<std::vector<TimeMs>> BurstyArrivals(size_t n, double rate_on_qps,
                                           double rate_off_qps,
                                           TimeMs mean_phase_ms, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("BurstyArrivals: rng must be non-null");
  }
  if (!(rate_on_qps > 0.0)) {
    return Status::InvalidArgument(
        "BurstyArrivals: rate_on_qps must be positive");
  }
  if (!(rate_off_qps >= 0.0)) {
    return Status::InvalidArgument(
        "BurstyArrivals: rate_off_qps must be >= 0");
  }
  if (!(mean_phase_ms > 0.0)) {
    return Status::InvalidArgument(
        "BurstyArrivals: mean_phase_ms must be positive");
  }
  std::vector<TimeMs> out;
  out.reserve(n);
  TimeMs t = 0.0;
  bool on = true;
  TimeMs phase_end = rng->Exponential(1.0 / mean_phase_ms);
  while (out.size() < n) {
    double rate_per_ms = (on ? rate_on_qps : rate_off_qps) / 1000.0;
    if (rate_per_ms <= 0.0) {
      // Silent phase: jump to its end.
      t = phase_end;
      on = !on;
      phase_end = t + rng->Exponential(1.0 / mean_phase_ms);
      continue;
    }
    TimeMs next = t + rng->Exponential(rate_per_ms);
    if (next > phase_end) {
      t = phase_end;
      on = !on;
      phase_end = t + rng->Exponential(1.0 / mean_phase_ms);
      continue;
    }
    t = next;
    out.push_back(t);
  }
  return out;
}

std::vector<TimeMs> ImmediateArrivals(size_t n) {
  return std::vector<TimeMs>(n, 0.0);
}

}  // namespace liferaft::sim
