#include "sim/arrivals.h"

#include <cmath>

namespace liferaft::sim {

// Validation note: the `!(x > 0.0)` form also rejects NaN, which would
// otherwise sail through a `x <= 0.0` comparison and corrupt every
// generated timestamp.

Result<std::vector<TimeMs>> PoissonArrivals(size_t n, double rate_qps,
                                            Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("PoissonArrivals: rng must be non-null");
  }
  if (!(rate_qps > 0.0)) {
    return Status::InvalidArgument(
        "PoissonArrivals: rate_qps must be positive");
  }
  std::vector<TimeMs> out;
  out.reserve(n);
  double rate_per_ms = rate_qps / 1000.0;
  TimeMs t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    t += rng->Exponential(rate_per_ms);
    out.push_back(t);
  }
  return out;
}

Result<std::vector<TimeMs>> UniformArrivals(size_t n, double rate_qps) {
  if (!(rate_qps > 0.0)) {
    return Status::InvalidArgument(
        "UniformArrivals: rate_qps must be positive");
  }
  std::vector<TimeMs> out;
  out.reserve(n);
  double spacing_ms = 1000.0 / rate_qps;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(i) * spacing_ms);
  }
  return out;
}

Result<std::vector<TimeMs>> BurstyArrivals(size_t n, double rate_on_qps,
                                           double rate_off_qps,
                                           TimeMs mean_phase_ms, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("BurstyArrivals: rng must be non-null");
  }
  if (!(rate_on_qps > 0.0)) {
    return Status::InvalidArgument(
        "BurstyArrivals: rate_on_qps must be positive");
  }
  if (!(rate_off_qps >= 0.0)) {
    return Status::InvalidArgument(
        "BurstyArrivals: rate_off_qps must be >= 0");
  }
  if (!(mean_phase_ms > 0.0)) {
    return Status::InvalidArgument(
        "BurstyArrivals: mean_phase_ms must be positive");
  }
  std::vector<TimeMs> out;
  out.reserve(n);
  TimeMs t = 0.0;
  bool on = true;
  TimeMs phase_end = rng->Exponential(1.0 / mean_phase_ms);
  while (out.size() < n) {
    double rate_per_ms = (on ? rate_on_qps : rate_off_qps) / 1000.0;
    if (rate_per_ms <= 0.0) {
      // Silent phase: jump to its end.
      t = phase_end;
      on = !on;
      phase_end = t + rng->Exponential(1.0 / mean_phase_ms);
      continue;
    }
    TimeMs next = t + rng->Exponential(rate_per_ms);
    if (next > phase_end) {
      t = phase_end;
      on = !on;
      phase_end = t + rng->Exponential(1.0 / mean_phase_ms);
      continue;
    }
    t = next;
    out.push_back(t);
  }
  return out;
}

namespace {

// Lewis–Shedler thinning for a non-homogeneous Poisson process: draw
// candidate arrivals from a homogeneous process at the envelope rate
// `peak_per_ms` (>= rate(t) everywhere) and accept each with probability
// rate(t)/peak. Exactly one Exponential and one UniformDouble draw per
// candidate keeps the sequence deterministic for a given rng.
template <typename RateFn>
std::vector<TimeMs> ThinnedArrivals(size_t n, double peak_per_ms,
                                    RateFn rate_per_ms, Rng* rng) {
  std::vector<TimeMs> out;
  out.reserve(n);
  TimeMs t = 0.0;
  while (out.size() < n) {
    t += rng->Exponential(peak_per_ms);
    if (rng->UniformDouble() * peak_per_ms <= rate_per_ms(t)) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace

Result<std::vector<TimeMs>> DiurnalArrivals(size_t n, double base_rate_qps,
                                            double amplitude,
                                            TimeMs period_ms, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("DiurnalArrivals: rng must be non-null");
  }
  if (!(base_rate_qps > 0.0)) {
    return Status::InvalidArgument(
        "DiurnalArrivals: base_rate_qps must be positive");
  }
  if (!(amplitude >= 0.0) || !(amplitude <= 1.0)) {
    return Status::InvalidArgument(
        "DiurnalArrivals: amplitude must be in [0, 1]");
  }
  if (!(period_ms > 0.0)) {
    return Status::InvalidArgument(
        "DiurnalArrivals: period_ms must be positive");
  }
  const double base_per_ms = base_rate_qps / 1000.0;
  const double peak_per_ms = base_per_ms * (1.0 + amplitude);
  return ThinnedArrivals(
      n, peak_per_ms,
      [=](TimeMs t) {
        return base_per_ms *
               (1.0 + amplitude * std::sin(2.0 * M_PI * t / period_ms));
      },
      rng);
}

Result<std::vector<TimeMs>> FlashCrowdArrivals(size_t n, double base_rate_qps,
                                               double spike_factor,
                                               TimeMs spike_start_ms,
                                               TimeMs decay_ms, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("FlashCrowdArrivals: rng must be non-null");
  }
  if (!(base_rate_qps > 0.0)) {
    return Status::InvalidArgument(
        "FlashCrowdArrivals: base_rate_qps must be positive");
  }
  if (!(spike_factor >= 1.0)) {
    return Status::InvalidArgument(
        "FlashCrowdArrivals: spike_factor must be >= 1");
  }
  if (!(spike_start_ms >= 0.0)) {
    return Status::InvalidArgument(
        "FlashCrowdArrivals: spike_start_ms must be >= 0");
  }
  if (!(decay_ms > 0.0)) {
    return Status::InvalidArgument(
        "FlashCrowdArrivals: decay_ms must be positive");
  }
  const double base_per_ms = base_rate_qps / 1000.0;
  const double peak_per_ms = base_per_ms * spike_factor;
  return ThinnedArrivals(
      n, peak_per_ms,
      [=](TimeMs t) {
        if (t < spike_start_ms) return base_per_ms;
        return base_per_ms *
               (1.0 + (spike_factor - 1.0) *
                          std::exp(-(t - spike_start_ms) / decay_ms));
      },
      rng);
}

std::vector<TimeMs> ImmediateArrivals(size_t n) {
  return std::vector<TimeMs>(n, 0.0);
}

}  // namespace liferaft::sim
