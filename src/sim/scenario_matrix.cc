#include "sim/scenario_matrix.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "sched/liferaft_scheduler.h"
#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/json.h"
#include "workload/catalog_gen.h"

namespace liferaft::sim {
namespace {

using util::JsonEscape;
using util::JsonObject;

// Report doubles print with %.17g (see util/json.h): the JSON string
// doubles as the determinism digest.
std::string Fmt(double v) { return util::JsonDouble(v); }

std::string CellConfigJson(const ScenarioCell& cell) {
  JsonObject o;
  o.Str("name", cell.name);
  o.Int("queries", cell.queries);
  o.Int("trace_seed", cell.trace_seed);
  o.Str("skew", workload::SkewLevelName(cell.skew));
  o.Num("p_small", cell.p_small);
  o.Str("arrival", cell.arrivals.kind == ArrivalSpec::Kind::kTrace
                       ? (cell.arrivals.trace.empty() ? "saturated" : "trace")
                       : ArrivalKindName(cell.arrivals.kind));
  o.Num("rate_qps", cell.arrivals.rate_qps);
  o.Int("arrival_seed", cell.arrivals.seed);
  o.Int("volumes", cell.volumes);
  o.Str("placement", storage::VolumePlacementName(cell.placement));
  o.Bool("hetero", cell.hetero);
  o.Num("transfer_scale", cell.transfer_scale);
  o.Bool("spill_arm", cell.spill_arm);
  o.Int("spill_budget", cell.spill_budget);
  o.Int("cache", cell.cache);
  o.Int("prefetch_depth", cell.prefetch_depth);
  o.Bool("adaptive_prefetch", cell.adaptive_prefetch);
  o.Num("alpha", cell.alpha);
  o.Bool("adaptive_alpha", cell.adaptive_alpha);
  o.Int("interactive_max_parts", cell.interactive_max_parts);
  o.Bool("qos_sched", cell.qos_sched);
  o.Int("max_pending_queries", cell.max_pending_queries);
  o.Int("max_pending_objects", cell.max_pending_objects);
  o.Int("interactive_cap", cell.interactive_cap);
  o.Int("batch_cap", cell.batch_cap);
  o.Bool("expect_no_shed", cell.expect_no_shed);
  o.Bool("check_qos", cell.check_qos);
  o.Str("monotonic_group", cell.monotonic_group);
  o.Str("not_worse_than", cell.not_worse_than);
  o.Str("strictly_beats", cell.strictly_beats);
  return o.Done();
}

}  // namespace

Status ScenarioCell::Validate() const {
  if (name.empty()) return Status::InvalidArgument("cell has no name");
  if (queries == 0) {
    return Status::InvalidArgument("cell '" + name + "': queries must be > 0");
  }
  if (p_small < 0.0 || p_small > 1.0) {
    return Status::InvalidArgument("cell '" + name +
                                   "': p_small must be in [0, 1]");
  }
  if (volumes == 0) {
    return Status::InvalidArgument("cell '" + name + "': volumes must be > 0");
  }
  if (!(transfer_scale > 0.0)) {
    return Status::InvalidArgument("cell '" + name +
                                   "': transfer_scale must be > 0");
  }
  if (not_worse_than == name) {
    return Status::InvalidArgument("cell '" + name +
                                   "': not_worse_than must name another cell");
  }
  if (strictly_beats == name) {
    return Status::InvalidArgument("cell '" + name +
                                   "': strictly_beats must name another cell");
  }
  if (cache == 0) {
    return Status::InvalidArgument("cell '" + name + "': cache must be > 0");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("cell '" + name +
                                   "': alpha must be in [0, 1]");
  }
  if (interactive_max_parts == 0) {
    return Status::InvalidArgument(
        "cell '" + name + "': interactive_max_parts must be >= 1");
  }
  // A saturated drain is the empty-trace kTrace spec (materialized at run
  // time); any other spec must validate for this cell's query count.
  if (arrivals.kind != ArrivalSpec::Kind::kTrace || !arrivals.trace.empty()) {
    Status s = arrivals.Validate(queries);
    if (!s.ok()) {
      return Status::InvalidArgument("cell '" + name + "': " + s.message());
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ built-ins --

Result<std::vector<ScenarioCell>> BuiltinScenarioGrid(
    const std::string& name) {
  std::vector<ScenarioCell> cells;
  auto base = [](const std::string& cell_name) {
    ScenarioCell cell;
    cell.name = cell_name;
    cell.arrivals.kind = ArrivalSpec::Kind::kPoisson;
    cell.arrivals.rate_qps = 0.5;
    cell.arrivals.seed = 5;
    return cell;
  };
  // A saturated drain: every query present at t=0, so makespan measures
  // pure drain capacity and the volume-sweep monotonicity claim is about
  // fixed work, not arrival luck.
  auto saturated = [&](const std::string& cell_name, size_t volumes) {
    ScenarioCell cell = base(cell_name);
    cell.arrivals.kind = ArrivalSpec::Kind::kTrace;
    cell.arrivals.trace.clear();
    cell.volumes = volumes;
    cell.prefetch_depth = 2;  // arms only overlap via prefetch bets
    cell.monotonic_group = "vol-sweep";
    cell.expect_no_shed = true;  // unbounded admission: nothing may shed
    return cell;
  };

  if (name == "smoke") {
    {
      ScenarioCell cell = base("steady-poisson");
      cell.max_pending_queries = 64;  // bound far above the offered load
      cell.expect_no_shed = true;
      cells.push_back(cell);
    }
    cells.push_back(saturated("vol-sweep-1", 1));
    cells.push_back(saturated("vol-sweep-2", 2));
    cells.push_back(saturated("vol-sweep-4", 4));
    {
      ScenarioCell cell = base("bursty-shedding");
      cell.arrivals.kind = ArrivalSpec::Kind::kBursty;
      cell.arrivals.rate_qps = 4.0;
      cell.arrivals.rate_off_qps = 0.0;
      cell.arrivals.mean_phase_ms = 30'000.0;
      cell.max_pending_queries = 3;
      cells.push_back(cell);
    }
    {
      ScenarioCell cell = base("diurnal-qos-mix");
      cell.arrivals.kind = ArrivalSpec::Kind::kDiurnal;
      cell.arrivals.amplitude = 0.8;
      cell.arrivals.period_ms = 120'000.0;
      cell.p_small = 0.6;
      cell.check_qos = true;
      cell.interactive_cap = 1;  // per-class prefetch caps in play
      cell.qos_sched = true;
      cell.interactive_max_parts = 3;  // see the full-grid note
      cell.prefetch_depth = 2;
      cells.push_back(cell);
    }
    {
      ScenarioCell cell = base("flash-crowd-spill");
      cell.arrivals.kind = ArrivalSpec::Kind::kFlashCrowd;
      cell.arrivals.rate_qps = 0.3;
      cell.arrivals.spike_factor = 10.0;
      cell.arrivals.spike_start_ms = 20'000.0;
      cell.arrivals.decay_ms = 40'000.0;
      cell.skew = workload::SkewLevel::kExtreme;
      // Below the cell's observed peak pending (~1.8k objects), so the
      // overflow path and its dedicated arm genuinely engage.
      cell.spill_budget = 800;
      cell.spill_arm = true;
      cell.prefetch_depth = 2;
      cells.push_back(cell);
    }
    // The hetero pair: one cell with an upgraded fast arm vs its all-slow
    // uniform twin. Both run the SAME multi-wave arrival trace rather
    // than a single saturated drain: in one pass every bucket is read
    // exactly once, so both makespans floor at the slow arm's total read
    // time and the comparison can only ever tie. Waves re-touch buckets
    // across cache evictions, so per-volume T_b pricing has slow-arm
    // re-reads to save — which is what strictly_beats pins down.
    auto hetero_wave = [&](const std::string& cell_name) {
      ScenarioCell cell = base(cell_name);
      cell.arrivals.kind = ArrivalSpec::Kind::kTrace;
      cell.arrivals.trace.clear();
      constexpr size_t kWaves = 4;
      constexpr double kWaveGapMs = 1'500.0;
      const size_t per_wave = (cell.queries + kWaves - 1) / kWaves;
      for (size_t q = 0; q < cell.queries; ++q) {
        cell.arrivals.trace.push_back(
            static_cast<double>(q / per_wave) * kWaveGapMs);
      }
      cell.volumes = 2;
      cell.placement = storage::VolumePlacement::kHash;
      cell.prefetch_depth = 2;
      cell.adaptive_prefetch = true;
      cell.adaptive_alpha = true;
      cell.expect_no_shed = true;  // unbounded admission: nothing may shed
      return cell;
    };
    {
      // All-slow uniform twin of hetero-adaptive: both arms run at the
      // hetero cell's SLOW rate.
      ScenarioCell cell = hetero_wave("hetero-uniform-twin");
      cell.transfer_scale = 0.5;
      cells.push_back(cell);
    }
    {
      ScenarioCell cell = hetero_wave("hetero-adaptive");
      cell.hetero = true;
      cell.strictly_beats = "hetero-uniform-twin";
      cells.push_back(cell);
    }
    return cells;
  }

  if (name == "full") {
    // The nightly sweep: arrival shape x skew, each at 1 and 4 volumes,
    // plus the smoke grid's special cells (spill, hetero, QoS caps).
    const std::pair<ArrivalSpec::Kind, const char*> kinds[] = {
        {ArrivalSpec::Kind::kPoisson, "poisson"},
        {ArrivalSpec::Kind::kBursty, "bursty"},
        {ArrivalSpec::Kind::kDiurnal, "diurnal"},
        {ArrivalSpec::Kind::kFlashCrowd, "flash-crowd"},
    };
    const workload::SkewLevel skews[] = {workload::SkewLevel::kUniform,
                                         workload::SkewLevel::kDefault,
                                         workload::SkewLevel::kExtreme};
    for (const auto& [kind, kind_name] : kinds) {
      for (workload::SkewLevel skew : skews) {
        for (size_t volumes : {size_t{1}, size_t{4}}) {
          ScenarioCell cell = base(std::string(kind_name) + "-" +
                                   workload::SkewLevelName(skew) + "-v" +
                                   std::to_string(volumes));
          cell.arrivals.kind = kind;
          if (kind == ArrivalSpec::Kind::kBursty) {
            cell.arrivals.rate_qps = 2.0;
            cell.arrivals.mean_phase_ms = 30'000.0;
          }
          cell.skew = skew;
          cell.volumes = volumes;
          cell.prefetch_depth = volumes > 1 ? 2 : 0;
          cell.p_small = 0.3;
          // The QoS-ordering claim is only made where the QoS machinery
          // is engaged: cap speculative prefetch depth to 1 while an
          // interactive query is pending, so its foreground fetches don't
          // queue behind deep batch bets.
          cell.check_qos = kind == ArrivalSpec::Kind::kPoisson;
          if (cell.check_qos) {
            cell.interactive_cap = 1;
            cell.qos_sched = true;
            // Classify only genuinely small queries as interactive: at
            // the default threshold of 8 parts nearly the whole trace
            // lands in the interactive class and the comparison pits 45
            // samples against 3.
            cell.interactive_max_parts = 3;
          }
          cells.push_back(cell);
        }
      }
    }
    auto smoke = BuiltinScenarioGrid("smoke");
    for (ScenarioCell& cell : *smoke) {
      if (cell.name == "steady-poisson") continue;  // covered by the sweep
      cells.push_back(std::move(cell));
    }
    return cells;
  }

  return Status::InvalidArgument("unknown scenario grid '" + name +
                                 "' (want smoke or full)");
}

// --------------------------------------------------------------- parser --

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

Status ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1") {
    *out = true;
  } else if (value == "false" || value == "0") {
    *out = false;
  } else {
    return Status::InvalidArgument("expected a bool, got '" + value + "'");
  }
  return Status::OK();
}

Status ParseSize(const std::string& value, size_t* out) {
  try {
    size_t pos = 0;
    unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    *out = static_cast<size_t>(v);
  } catch (const std::exception&) {
    return Status::InvalidArgument("expected an integer, got '" + value + "'");
  }
  return Status::OK();
}

Status ParseU64(const std::string& value, uint64_t* out) {
  size_t v = 0;
  Status s = ParseSize(value, &v);
  if (s.ok()) *out = v;
  return s;
}

Status ParseDouble(const std::string& value, double* out) {
  try {
    size_t pos = 0;
    double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    *out = v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("expected a number, got '" + value + "'");
  }
  return Status::OK();
}

// One `key = value` line applied to the open cell. Every key below is an
// axis of the matrix; the SCENARIO_KEY markers are greppable, and
// tools/check_docs.sh fails if docs/SCENARIOS.md misses any of them.
Status ApplyKey(ScenarioCell* cell, const std::string& key,
                const std::string& value) {
  if (key == "queries") {  // SCENARIO_KEY(queries)
    return ParseSize(value, &cell->queries);
  }
  if (key == "trace_seed") {  // SCENARIO_KEY(trace_seed)
    return ParseU64(value, &cell->trace_seed);
  }
  if (key == "skew") {  // SCENARIO_KEY(skew)
    if (value == "uniform") {
      cell->skew = workload::SkewLevel::kUniform;
    } else if (value == "default") {
      cell->skew = workload::SkewLevel::kDefault;
    } else if (value == "extreme") {
      cell->skew = workload::SkewLevel::kExtreme;
    } else {
      return Status::InvalidArgument("unknown skew '" + value + "'");
    }
    return Status::OK();
  }
  if (key == "p_small") {  // SCENARIO_KEY(p_small)
    return ParseDouble(value, &cell->p_small);
  }
  if (key == "arrival") {  // SCENARIO_KEY(arrival)
    if (value == "poisson") {
      cell->arrivals.kind = ArrivalSpec::Kind::kPoisson;
    } else if (value == "uniform") {
      cell->arrivals.kind = ArrivalSpec::Kind::kUniform;
    } else if (value == "bursty") {
      cell->arrivals.kind = ArrivalSpec::Kind::kBursty;
    } else if (value == "diurnal") {
      cell->arrivals.kind = ArrivalSpec::Kind::kDiurnal;
    } else if (value == "flash_crowd") {
      cell->arrivals.kind = ArrivalSpec::Kind::kFlashCrowd;
    } else if (value == "saturated") {
      // Everything arrives at t=0 (materialized as an all-zero trace).
      cell->arrivals.kind = ArrivalSpec::Kind::kTrace;
      cell->arrivals.trace.clear();
    } else {
      return Status::InvalidArgument("unknown arrival '" + value + "'");
    }
    return Status::OK();
  }
  if (key == "rate_qps") {  // SCENARIO_KEY(rate_qps)
    return ParseDouble(value, &cell->arrivals.rate_qps);
  }
  if (key == "rate_off_qps") {  // SCENARIO_KEY(rate_off_qps)
    return ParseDouble(value, &cell->arrivals.rate_off_qps);
  }
  if (key == "mean_phase_ms") {  // SCENARIO_KEY(mean_phase_ms)
    return ParseDouble(value, &cell->arrivals.mean_phase_ms);
  }
  if (key == "amplitude") {  // SCENARIO_KEY(amplitude)
    return ParseDouble(value, &cell->arrivals.amplitude);
  }
  if (key == "period_ms") {  // SCENARIO_KEY(period_ms)
    return ParseDouble(value, &cell->arrivals.period_ms);
  }
  if (key == "spike_factor") {  // SCENARIO_KEY(spike_factor)
    return ParseDouble(value, &cell->arrivals.spike_factor);
  }
  if (key == "spike_start_ms") {  // SCENARIO_KEY(spike_start_ms)
    return ParseDouble(value, &cell->arrivals.spike_start_ms);
  }
  if (key == "decay_ms") {  // SCENARIO_KEY(decay_ms)
    return ParseDouble(value, &cell->arrivals.decay_ms);
  }
  if (key == "arrival_seed") {  // SCENARIO_KEY(arrival_seed)
    return ParseU64(value, &cell->arrivals.seed);
  }
  if (key == "volumes") {  // SCENARIO_KEY(volumes)
    return ParseSize(value, &cell->volumes);
  }
  if (key == "placement") {  // SCENARIO_KEY(placement)
    if (value == "range") {
      cell->placement = storage::VolumePlacement::kRange;
    } else if (value == "hash") {
      cell->placement = storage::VolumePlacement::kHash;
    } else {
      return Status::InvalidArgument("unknown placement '" + value + "'");
    }
    return Status::OK();
  }
  if (key == "hetero") {  // SCENARIO_KEY(hetero)
    return ParseBool(value, &cell->hetero);
  }
  if (key == "transfer_scale") {  // SCENARIO_KEY(transfer_scale)
    return ParseDouble(value, &cell->transfer_scale);
  }
  if (key == "spill_arm") {  // SCENARIO_KEY(spill_arm)
    return ParseBool(value, &cell->spill_arm);
  }
  if (key == "spill_budget") {  // SCENARIO_KEY(spill_budget)
    return ParseU64(value, &cell->spill_budget);
  }
  if (key == "cache") {  // SCENARIO_KEY(cache)
    return ParseSize(value, &cell->cache);
  }
  if (key == "prefetch_depth") {  // SCENARIO_KEY(prefetch_depth)
    return ParseSize(value, &cell->prefetch_depth);
  }
  if (key == "adaptive_prefetch") {  // SCENARIO_KEY(adaptive_prefetch)
    return ParseBool(value, &cell->adaptive_prefetch);
  }
  if (key == "alpha") {  // SCENARIO_KEY(alpha)
    return ParseDouble(value, &cell->alpha);
  }
  if (key == "adaptive_alpha") {  // SCENARIO_KEY(adaptive_alpha)
    return ParseBool(value, &cell->adaptive_alpha);
  }
  if (key == "interactive_max_parts") {  // SCENARIO_KEY(interactive_max_parts)
    return ParseSize(value, &cell->interactive_max_parts);
  }
  if (key == "qos_sched") {  // SCENARIO_KEY(qos_sched)
    return ParseBool(value, &cell->qos_sched);
  }
  if (key == "max_pending_queries") {  // SCENARIO_KEY(max_pending_queries)
    return ParseSize(value, &cell->max_pending_queries);
  }
  if (key == "max_pending_objects") {  // SCENARIO_KEY(max_pending_objects)
    return ParseU64(value, &cell->max_pending_objects);
  }
  if (key == "interactive_cap") {  // SCENARIO_KEY(interactive_cap)
    return ParseSize(value, &cell->interactive_cap);
  }
  if (key == "batch_cap") {  // SCENARIO_KEY(batch_cap)
    return ParseSize(value, &cell->batch_cap);
  }
  if (key == "expect_no_shed") {  // SCENARIO_KEY(expect_no_shed)
    return ParseBool(value, &cell->expect_no_shed);
  }
  if (key == "check_qos") {  // SCENARIO_KEY(check_qos)
    return ParseBool(value, &cell->check_qos);
  }
  if (key == "monotonic_group") {  // SCENARIO_KEY(monotonic_group)
    cell->monotonic_group = value;
    return Status::OK();
  }
  if (key == "not_worse_than") {  // SCENARIO_KEY(not_worse_than)
    cell->not_worse_than = value;
    return Status::OK();
  }
  if (key == "strictly_beats") {  // SCENARIO_KEY(strictly_beats)
    cell->strictly_beats = value;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown key '" + key + "'");
}

}  // namespace

Result<std::vector<ScenarioCell>> ParseScenarioSpec(const std::string& text) {
  std::vector<ScenarioCell> cells;
  std::istringstream in(text);
  std::string raw;
  size_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                   ": " + msg);
  };
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated cell header");
      std::string name = Trim(line.substr(1, line.size() - 2));
      if (name.empty()) return fail("empty cell name");
      for (const ScenarioCell& cell : cells) {
        if (cell.name == name) return fail("duplicate cell '" + name + "'");
      }
      ScenarioCell cell;
      cell.name = name;
      cells.push_back(std::move(cell));
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected 'key = value'");
    if (cells.empty()) return fail("key outside any [cell] section");
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    Status s = ApplyKey(&cells.back(), key, value);
    if (!s.ok()) return fail(s.message());
  }
  if (cells.empty()) return Status::InvalidArgument("spec defines no cells");
  for (const ScenarioCell& cell : cells) {
    Status s = cell.Validate();
    if (!s.ok()) return s;
  }
  return cells;
}

// --------------------------------------------------------------- runner --

namespace {

Result<RunMetrics> RunCell(const ScenarioCell& cell,
                           const ScenarioMatrixOptions& options,
                           storage::Catalog* catalog,
                           const std::vector<query::CrossMatchQuery>& trace) {
  EngineConfig config;
  config.cache_capacity = cell.cache;
  config.topology.num_volumes = cell.volumes;
  config.topology.placement = cell.placement;
  config.topology.spill_arm = cell.spill_arm;
  if (cell.hetero) {
    // Heterogeneous axis: volume 0 is the slow arm (half transfer rate).
    config.topology.volume_disk.assign(cell.volumes,
                                       storage::DiskModelParams{});
    config.topology.volume_disk[0].transfer_mb_per_s /= 2.0;
  }
  if (cell.transfer_scale != 1.0) {
    // Uniform hardware scaling (applied after the hetero halving): a cell
    // with transfer_scale = 0.5 is the all-slow uniform twin of a hetero
    // cell, which is what the not_worse_than invariant compares against.
    if (config.topology.volume_disk.empty()) {
      config.topology.volume_disk.assign(cell.volumes,
                                         storage::DiskModelParams{});
    }
    for (storage::DiskModelParams& params : config.topology.volume_disk) {
      params.transfer_mb_per_s *= cell.transfer_scale;
    }
  }
  if (cell.prefetch_depth > 0) {
    config.enable_prefetch = true;
    config.prefetch_depth = cell.prefetch_depth;
  }
  config.adaptive_prefetch = cell.adaptive_prefetch;
  if (cell.spill_budget > 0) {
    if (options.spill_dir.empty()) {
      return Status::InvalidArgument(
          "cell '" + cell.name +
          "' has a spill budget but ScenarioMatrixOptions::spill_dir is "
          "empty");
    }
    config.spill_path =
        options.spill_dir + "/scenario_" + cell.name + ".spill";
    config.workload_memory_budget = cell.spill_budget;
  }
  sched::AlphaSelector selector = sched::ReferenceAlphaSelector();
  if (cell.adaptive_alpha) config.alpha_selector = &selector;

  sched::LifeRaftConfig lr;
  lr.alpha = cell.alpha;
  lr.qos.depreciate_long_queries = cell.qos_sched;
  auto scheduler = std::make_unique<sched::LifeRaftScheduler>(
      catalog->store(), storage::DiskModel{}, lr);

  ServeConfig serve;
  serve.arrivals = cell.arrivals;
  if (serve.arrivals.kind == ArrivalSpec::Kind::kTrace &&
      serve.arrivals.trace.empty()) {
    serve.arrivals.trace.assign(trace.size(), 0.0);  // saturated drain
  }
  serve.interactive_max_parts = cell.interactive_max_parts;
  serve.max_pending_queries = cell.max_pending_queries;
  serve.max_pending_objects = cell.max_pending_objects;
  serve.qos_prefetch[static_cast<size_t>(QosClass::kInteractive)].max_depth =
      cell.interactive_cap;
  serve.qos_prefetch[static_cast<size_t>(QosClass::kBatch)].max_depth =
      cell.batch_cap;

  SimEngine engine(catalog, std::move(scheduler), config);
  return engine.Serve(trace, serve);
}

void CheckCellInvariants(ScenarioResult* result) {
  const ScenarioCell& cell = result->cell;
  const RunMetrics& m = result->metrics;
  if (cell.expect_no_shed && m.queries_shed != 0) {
    result->failures.push_back(
        "expect_no_shed: " + std::to_string(m.queries_shed) +
        " queries shed below the admission bound");
  }
  if (cell.check_qos) {
    const QosClassMetrics* interactive = nullptr;
    const QosClassMetrics* batch = nullptr;
    for (const QosClassMetrics& qc : m.qos_classes) {
      if (qc.name == QosClassName(QosClass::kInteractive)) interactive = &qc;
      if (qc.name == QosClassName(QosClass::kBatch)) batch = &qc;
    }
    if (interactive == nullptr || batch == nullptr ||
        interactive->completed == 0 || batch->completed == 0) {
      result->failures.push_back(
          "check_qos: needs completions in both QoS classes");
    } else if (interactive->p99_response_ms > batch->p99_response_ms) {
      result->failures.push_back(
          "check_qos: interactive p99 " + Fmt(interactive->p99_response_ms) +
          " ms exceeds batch p99 " + Fmt(batch->p99_response_ms) + " ms");
    }
  }
}

// Pairwise cross-cell bounds: a cell naming another via `not_worse_than`
// claims its makespan does not exceed the named cell's; `strictly_beats`
// makes the stronger claim that it is strictly below (parity fails). The
// strict form is how the hetero cell pins down that per-volume T_b
// pricing actually converts the fast arm into a measurable win over the
// all-slow uniform twin, rather than merely doing no harm.
void CheckPairwiseBounds(std::vector<ScenarioResult>* results) {
  std::map<std::string, const ScenarioResult*> by_name;
  for (const ScenarioResult& r : *results) by_name[r.cell.name] = &r;
  auto check = [&](ScenarioResult* r, const std::string& ref_name,
                   const char* claim, bool strict) {
    if (ref_name.empty()) return;
    auto it = by_name.find(ref_name);
    if (it == by_name.end()) {
      r->failures.push_back(std::string(claim) + ": no cell named '" +
                            ref_name + "' in this matrix");
      return;
    }
    const RunMetrics& ref = it->second->metrics;
    bool violated = strict ? r->metrics.makespan_ms >= ref.makespan_ms
                           : r->metrics.makespan_ms > ref.makespan_ms;
    if (violated) {
      r->failures.push_back(std::string(claim) + "(" + ref_name +
                            "): makespan " + Fmt(r->metrics.makespan_ms) +
                            " ms " + (strict ? "not strictly below" : "worse than") +
                            " " + Fmt(ref.makespan_ms) + " ms");
    }
  };
  for (ScenarioResult& r : *results) {
    check(&r, r.cell.not_worse_than, "not_worse_than", false);
    check(&r, r.cell.strictly_beats, "strictly_beats", true);
  }
}

void CheckMonotonicGroups(std::vector<ScenarioResult>* results) {
  std::map<std::string, std::vector<ScenarioResult*>> groups;
  for (ScenarioResult& r : *results) {
    if (!r.cell.monotonic_group.empty()) {
      groups[r.cell.monotonic_group].push_back(&r);
    }
  }
  for (auto& [group, members] : groups) {
    std::sort(members.begin(), members.end(),
              [](const ScenarioResult* a, const ScenarioResult* b) {
                return a->cell.volumes < b->cell.volumes;
              });
    for (size_t i = 1; i < members.size(); ++i) {
      const ScenarioResult& prev = *members[i - 1];
      ScenarioResult& cur = *members[i];
      if (cur.metrics.makespan_ms > prev.metrics.makespan_ms) {
        cur.failures.push_back(
            "monotonicity(" + group + "): " +
            std::to_string(cur.cell.volumes) + " volumes makespan " +
            Fmt(cur.metrics.makespan_ms) + " ms worse than " +
            std::to_string(prev.cell.volumes) + " volumes (" +
            Fmt(prev.metrics.makespan_ms) + " ms)");
      }
    }
  }
}

}  // namespace

Result<std::vector<ScenarioResult>> RunScenarioMatrix(
    const std::vector<ScenarioCell>& cells,
    const ScenarioMatrixOptions& options) {
  for (size_t i = 0; i < cells.size(); ++i) {
    Status s = cells[i].Validate();
    if (!s.ok()) return s;
    for (size_t j = 0; j < i; ++j) {
      if (cells[j].name == cells[i].name) {
        return Status::InvalidArgument("duplicate cell '" + cells[i].name +
                                       "'");
      }
    }
  }

  // One shared catalog: cells differ in workload and configuration, never
  // in the archive, so cross-cell comparisons (the monotonicity groups)
  // are apples to apples.
  workload::CatalogGenConfig gen;
  gen.num_objects = options.catalog_objects;
  gen.seed = options.catalog_seed;
  auto objects = workload::GenerateCatalog(gen);
  if (!objects.ok()) return objects.status();
  storage::CatalogOptions catalog_options;
  catalog_options.objects_per_bucket = options.objects_per_bucket;
  auto catalog = storage::Catalog::Build(std::move(*objects), catalog_options);
  if (!catalog.ok()) return catalog.status();

  std::vector<ScenarioResult> results;
  results.reserve(cells.size());
  for (const ScenarioCell& cell : cells) {
    workload::TraceConfig tc =
        workload::SkewedTracePreset(cell.skew, cell.queries, cell.trace_seed);
    tc.p_small = cell.p_small;
    // Keep cells cheap enough for a per-PR gate: the serving behavior the
    // invariants check is driven by scheduling and I/O, not by match
    // volume, so cap fan-in the way the serving tests do.
    tc.max_objects_per_query = 1500;
    tc.match_radius_arcsec = 900.0;
    auto trace = workload::GenerateTrace(tc);
    if (!trace.ok()) return trace.status();

    auto metrics = RunCell(cell, options, catalog->get(), *trace);
    if (!metrics.ok()) {
      return Status::InvalidArgument("cell '" + cell.name +
                                     "': " + metrics.status().message());
    }
    ScenarioResult result;
    result.cell = cell;
    result.metrics = std::move(*metrics);
    if (options.verify_determinism) {
      auto replay = RunCell(cell, options, catalog->get(), *trace);
      if (!replay.ok()) return replay.status();
      if (RunMetricsJson(*replay) != RunMetricsJson(result.metrics)) {
        result.failures.push_back(
            "determinism: second run diverged from the first");
      }
    }
    CheckCellInvariants(&result);
    results.push_back(std::move(result));
  }
  CheckMonotonicGroups(&results);
  CheckPairwiseBounds(&results);
  return results;
}

std::string ScenarioReportJson(const std::vector<ScenarioResult>& results) {
  std::string out = "{\n  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    JsonObject o;
    o.Str("name", r.cell.name);
    o.Field("config", CellConfigJson(r.cell));
    o.Field("metrics", RunMetricsJson(r.metrics));
    std::string failures = "[";
    for (size_t f = 0; f < r.failures.size(); ++f) {
      if (f > 0) failures += ", ";
      failures += "\"";
      failures += JsonEscape(r.failures[f]);
      failures += "\"";
    }
    failures += "]";
    o.Field("failures", failures);
    out += "    ";
    out += o.Done();
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"total_failures\": " +
         std::to_string(CountScenarioFailures(results)) + "\n}\n";
  return out;
}

size_t CountScenarioFailures(const std::vector<ScenarioResult>& results) {
  size_t n = 0;
  for (const ScenarioResult& r : results) n += r.failures.size();
  return n;
}

}  // namespace liferaft::sim
