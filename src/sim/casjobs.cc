#include "sim/casjobs.h"

#include <algorithm>

namespace liferaft::sim {

Result<CasJobsMetrics> RunCasJobs(
    storage::Catalog* catalog, const CasJobsConfig& config,
    const std::vector<query::CrossMatchQuery>& queries,
    const std::vector<TimeMs>& arrivals_ms) {
  if (queries.size() != arrivals_ms.size()) {
    return Status::InvalidArgument("queries and arrivals size mismatch");
  }
  if (queries.empty()) return Status::InvalidArgument("empty trace");

  // Split the trace by the (arbitrary) length classifier, preserving
  // arrival order within each class.
  std::vector<query::CrossMatchQuery> short_queries, long_queries;
  std::vector<TimeMs> short_arrivals, long_arrivals;
  for (size_t i = 0; i < queries.size(); ++i) {
    bool is_short =
        queries[i].objects.size() <= config.short_threshold_objects;
    (is_short ? short_queries : long_queries).push_back(queries[i]);
    (is_short ? short_arrivals : long_arrivals).push_back(arrivals_ms[i]);
  }

  CasJobsMetrics metrics;
  metrics.short_queries = short_queries.size();
  metrics.long_queries = long_queries.size();

  auto run_server = [&](const std::vector<query::CrossMatchQuery>& qs,
                        const std::vector<TimeMs>& arr,
                        StreamingStats* response, double* p50, double* p95,
                        double* p99) -> Status {
    if (qs.empty()) return Status::OK();
    EngineConfig engine_config;
    engine_config.mode = ExecutionMode::kNoShare;
    engine_config.disk = config.disk;
    SimEngine engine(catalog, nullptr, engine_config);
    auto run = engine.Run(qs, arr);
    if (!run.ok()) return run.status();
    Percentiles pct;
    for (const QueryOutcome& o : engine.outcomes()) {
      response->Add(o.ResponseMs());
      pct.Add(o.ResponseMs());
    }
    *p50 = pct.Percentile(50);
    *p95 = pct.Percentile(95);
    *p99 = pct.Percentile(99);
    metrics.makespan_ms = std::max(metrics.makespan_ms, run->makespan_ms);
    metrics.bucket_reads += run->store.bucket_reads;
    return Status::OK();
  };

  LIFERAFT_RETURN_IF_ERROR(run_server(
      short_queries, short_arrivals, &metrics.short_response_ms,
      &metrics.short_p50_ms, &metrics.short_p95_ms, &metrics.short_p99_ms));
  LIFERAFT_RETURN_IF_ERROR(run_server(
      long_queries, long_arrivals, &metrics.long_response_ms,
      &metrics.long_p50_ms, &metrics.long_p95_ms, &metrics.long_p99_ms));

  metrics.throughput_qps =
      metrics.makespan_ms > 0.0
          ? static_cast<double>(queries.size()) /
                (metrics.makespan_ms / 1000.0)
          : 0.0;
  return metrics;
}

}  // namespace liferaft::sim
