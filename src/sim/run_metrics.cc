#include "sim/run_metrics.h"

#include <cstdio>

namespace liferaft::sim {

std::string RunMetrics::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-18s  queries=%zu  throughput=%.4f q/s  "
                "avg_resp=%.1f s  cov=%.2f  cache_hit=%.1f%%  reads=%llu",
                scheduler_name.c_str(), queries_completed, throughput_qps,
                avg_response_ms / 1000.0, response_cov,
                cache.HitRate() * 100.0,
                static_cast<unsigned long long>(store.bucket_reads));
  return buf;
}

}  // namespace liferaft::sim
