#include "sim/run_metrics.h"

#include <cstdio>

#include "util/json.h"

namespace liferaft::sim {

std::string RunMetrics::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-18s  queries=%zu  throughput=%.4f q/s  "
                "avg_resp=%.1f s  cov=%.2f  cache_hit=%.1f%%  reads=%llu",
                scheduler_name.c_str(), queries_completed, throughput_qps,
                avg_response_ms / 1000.0, response_cov,
                cache.HitRate() * 100.0,
                static_cast<unsigned long long>(store.bucket_reads));
  return buf;
}

std::string RunMetricsJson(const RunMetrics& m) {
  util::JsonObject o;
  o.Int("queries_offered", m.queries_offered);
  o.Int("queries_shed", m.queries_shed);
  o.Int("queries_completed", m.queries_completed);
  o.Num("makespan_ms", m.makespan_ms);
  o.Num("offered_qps", m.offered_qps);
  o.Num("sustained_qps", m.sustained_qps);
  o.Num("avg_response_ms", m.avg_response_ms);
  o.Num("p50_response_ms", m.p50_response_ms);
  o.Num("p95_response_ms", m.p95_response_ms);
  o.Num("p99_response_ms", m.p99_response_ms);
  o.Num("response_cov", m.response_cov);
  o.Num("alpha_final", m.alpha_final);
  o.Int("total_matches", m.total_matches);
  o.Int("peak_pending_objects", m.peak_pending_objects);
  o.Int("bucket_reads", m.store.bucket_reads);
  o.Int("bytes_read", m.store.bytes_read);
  o.Int("cache_hits", m.cache.hits);
  o.Int("cache_misses", m.cache.misses);
  o.Num("cache_hit_rate", m.cache.HitRate());
  o.Int("prefetch_issued", m.cache.prefetch_issued);
  o.Int("prefetch_claims", m.cache.prefetch_claims);
  o.Num("prefetch_hidden_ms", m.prefetch_hidden_ms);
  o.Int("segments_spilled", m.spill.segments_spilled);
  o.Int("segments_restored", m.spill.segments_restored);
  o.Int("bytes_restored", m.spill.bytes_restored);

  std::string qos = "[";
  for (size_t i = 0; i < m.qos_classes.size(); ++i) {
    const QosClassMetrics& qc = m.qos_classes[i];
    util::JsonObject q;
    q.Str("class", qc.name);
    q.Int("completed", qc.completed);
    q.Int("shed", qc.shed);
    q.Num("mean_response_ms", qc.mean_response_ms);
    q.Num("p50_response_ms", qc.p50_response_ms);
    q.Num("p95_response_ms", qc.p95_response_ms);
    q.Num("p99_response_ms", qc.p99_response_ms);
    if (i > 0) qos += ", ";
    qos += q.Done();
  }
  qos += "]";
  o.Field("qos_classes", qos);

  std::string arms = "[";
  for (size_t v = 0; v < m.volumes.size(); ++v) {
    const storage::VolumeIoStats& arm = m.volumes[v];
    util::JsonObject a;
    a.Int("foreground_reads", arm.foreground_reads);
    a.Int("foreground_bytes", arm.foreground_bytes);
    a.Int("prefetch_issued", arm.prefetch_issued);
    a.Int("prefetch_claims", arm.prefetch_claims);
    a.Num("busy_ms", arm.busy_ms);
    a.Num("hidden_ms", arm.hidden_ms);
    if (v > 0) arms += ", ";
    arms += a.Done();
  }
  arms += "]";
  o.Field("arms", arms);

  std::string depths = "[";
  for (size_t v = 0; v < m.arm_final_depths.size(); ++v) {
    if (v > 0) depths += ", ";
    depths += std::to_string(m.arm_final_depths[v]);
  }
  depths += "]";
  o.Field("arm_final_depths", depths);

  // Appended only in real-I/O mode: every golden/digest comparison runs
  // modeled, so the modeled serialization must not change shape.
  if (m.real_io_enabled) {
    std::string vols = "[";
    for (size_t v = 0; v < m.real_io.size(); ++v) {
      const storage::AsyncVolumeStats& s = m.real_io[v];
      util::JsonObject r;
      r.Int("reads", s.reads);
      r.Int("bytes", s.bytes);
      r.Int("failures", s.failures);
      r.Int("checksum_failures", s.checksum_failures);
      r.Int("max_queue_depth", s.max_queue_depth);
      r.Num("total_latency_ms", s.total_latency_ms);
      r.Num("p50_latency_ms", s.p50_latency_ms);
      r.Num("p99_latency_ms", s.p99_latency_ms);
      if (v > 0) vols += ", ";
      vols += r.Done();
    }
    vols += "]";
    o.Field("real_io", vols);
  }
  return o.Done();
}

}  // namespace liferaft::sim
