// Scenario-matrix harness: the CI-checkable claim that the serving stack
// "handles many scenarios". A scenario grid is a declarative set of cells
// — arrival shape (steady Poisson, bursty, diurnal, flash crowd) ×
// catalog skew × QoS mix × cache size × volume count (uniform and
// heterogeneous) — and every cell runs the SAME execution stack
// (SimEngine::Serve over the shared exec::BatchPipeline) against a shared
// catalog, producing a per-cell report plus machine-checkable invariants:
//
//   * determinism — every cell runs twice; the second run must reproduce
//     the first bit for bit (makespan, matches, reads, shed counts);
//   * monotonicity — cells sharing a `monotonic_group` tag are a
//     volume-count sweep of one workload: more arms must never worsen the
//     makespan;
//   * QoS ordering — cells flagged `check_qos` assert interactive p99 <=
//     batch p99 under mixed load;
//   * no-shed bound — cells flagged `expect_no_shed` assert the admission
//     controller shed nothing (offered load below the admission bound);
//   * pairwise bound — a cell naming a reference via `not_worse_than`
//     asserts its makespan does not exceed the reference's (used to pin
//     hetero-with-one-fast-arm <= its all-slow uniform twin).
//
// Cells come from a built-in grid ("smoke" — the per-PR CI subset — or
// "full", the nightly sweep) or from a line-based spec file (see
// ParseScenarioSpec and docs/SCENARIOS.md for the schema). Reports are
// deterministic JSON: the same grid and seeds produce byte-identical
// output, which is what the CI job diffs.

#ifndef LIFERAFT_SIM_SCENARIO_MATRIX_H_
#define LIFERAFT_SIM_SCENARIO_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/run_metrics.h"
#include "sim/serve.h"
#include "storage/topology.h"
#include "util/status.h"
#include "workload/trace_gen.h"

namespace liferaft::sim {

/// One cell of the scenario grid. Every field maps to a spec-file key
/// (the SCENARIO_KEY markers in scenario_matrix.cc); defaults reproduce a
/// steady single-volume serving baseline.
struct ScenarioCell {
  /// Unique cell label (report key).
  std::string name;

  // ------------------------------------------------------ workload axes --
  /// Queries generated for this cell's trace.
  size_t queries = 48;
  /// Trace generator seed (same seed + same axes = same trace).
  uint64_t trace_seed = 23;
  /// Catalog-skew level (workload::SkewedTracePreset).
  workload::SkewLevel skew = workload::SkewLevel::kDefault;
  /// Bimodal QoS mix: probability a query is drawn small/interactive
  /// (workload::TraceConfig::p_small).
  double p_small = 0.0;

  // ------------------------------------------------------- arrival axis --
  /// Arrival process (kind, rates, seed; kTrace is not a grid axis).
  ArrivalSpec arrivals;

  // ------------------------------------------------------ topology axes --
  /// Disk arms.
  size_t volumes = 1;
  storage::VolumePlacement placement = storage::VolumePlacement::kRange;
  /// Heterogeneous volumes: volume 0 runs at half transfer rate.
  bool hetero = false;
  /// Uniform transfer-rate multiplier applied to every volume (after the
  /// hetero halving). 0.5 on a non-hetero cell builds the all-slow
  /// uniform twin of a hetero cell, the reference for `not_worse_than`.
  double transfer_scale = 1.0;
  /// Dedicated spill arm (StorageTopologyConfig::spill_arm).
  bool spill_arm = false;
  /// Workload spill budget in objects; 0 = spilling off.
  uint64_t spill_budget = 0;

  // -------------------------------------------------------- engine axes --
  /// Bucket-cache capacity (buckets).
  size_t cache = 20;
  /// Fixed prefetch depth; 0 disables prefetching (unless adaptive).
  size_t prefetch_depth = 0;
  /// Per-arm adaptive prefetch controllers.
  bool adaptive_prefetch = false;
  /// LifeRaft alpha (fixed; the starting point under adaptive_alpha).
  double alpha = 0.25;
  /// Re-select alpha online from the offered rate using
  /// sched::ReferenceAlphaSelector.
  bool adaptive_alpha = false;

  // ------------------------------------------------------ QoS/admission --
  /// Fan-out bound for the interactive class.
  size_t interactive_max_parts = 8;
  /// Scheduler-level QoS: depreciate long queries' age so small
  /// (interactive) work schedules sooner (sched::QosConfig).
  bool qos_sched = false;
  /// Admission bounds (0 = unbounded).
  size_t max_pending_queries = 0;
  uint64_t max_pending_objects = 0;
  /// Per-class prefetch depth caps (0 = class imposes no cap).
  size_t interactive_cap = 0;
  size_t batch_cap = 0;

  // --------------------------------------------------------- invariants --
  /// Assert the admission controller shed nothing.
  bool expect_no_shed = false;
  /// Assert interactive p99 <= batch p99 (needs completions in both
  /// classes).
  bool check_qos = false;
  /// Cells sharing a tag form a volume sweep: sorted by `volumes`, the
  /// makespan must be non-increasing.
  std::string monotonic_group;
  /// Names another cell this one's makespan must not exceed (e.g. hetero
  /// hardware with one upgraded arm vs its all-slow uniform twin). Empty
  /// = no claim; naming a cell absent from the matrix is a failure.
  std::string not_worse_than;
  /// Names another cell this one's makespan must be STRICTLY below.
  /// Stronger than `not_worse_than`: parity is a failure. Used where an
  /// upgraded arm must yield a measurable win (per-volume T_b pricing
  /// steering work off the slow arm), not just do no harm.
  std::string strictly_beats;

  Status Validate() const;
};

/// Per-cell outcome: the serving metrics plus any invariant violations
/// (empty `failures` = the cell passed).
struct ScenarioResult {
  ScenarioCell cell;
  RunMetrics metrics;
  std::vector<std::string> failures;
};

/// Matrix-level options: the shared catalog every cell runs against, and
/// whether each cell is re-run to check determinism.
struct ScenarioMatrixOptions {
  size_t catalog_objects = 50'000;
  uint64_t catalog_seed = 21;
  size_t objects_per_bucket = 1000;
  /// Scratch directory for cells with a spill budget; running such a cell
  /// with this empty is an error.
  std::string spill_dir;
  /// Run every cell twice and fail it on any bit-level divergence.
  bool verify_determinism = true;
};

/// A built-in grid by name: "smoke" (the per-PR CI subset, >= 6 cells,
/// seconds to run) or "full" (the nightly sweep over the whole cross
/// product). InvalidArgument for unknown names.
Result<std::vector<ScenarioCell>> BuiltinScenarioGrid(
    const std::string& name);

/// Parses a line-based spec: `[cell]` opens a cell, `key = value` sets an
/// axis (see docs/SCENARIOS.md for every key), `#` starts a comment.
/// Unknown keys, bad values, and duplicate cell names are errors.
Result<std::vector<ScenarioCell>> ParseScenarioSpec(const std::string& text);

/// Runs every cell (in order) against one shared catalog and evaluates
/// all invariants, including the cross-cell monotonicity groups. Cell
/// failures land in ScenarioResult::failures; only infrastructure
/// problems (bad cell config, engine errors) fail the whole call.
Result<std::vector<ScenarioResult>> RunScenarioMatrix(
    const std::vector<ScenarioCell>& cells,
    const ScenarioMatrixOptions& options);

/// Deterministic JSON report: cells in run order, every double printed
/// with %.17g (bit-exact round trip), no timestamps or environment — the
/// same grid and seeds yield byte-identical output.
std::string ScenarioReportJson(const std::vector<ScenarioResult>& results);

/// Total invariant violations across all cells.
size_t CountScenarioFailures(const std::vector<ScenarioResult>& results);

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_SCENARIO_MATRIX_H_
