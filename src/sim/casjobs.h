// The CasJobs-style multi-queue baseline (paper §2, O'Mullane et al.):
// SkyQuery's production answer to starvation — classify queries as "short"
// or "long" by an arbitrary size threshold and send each class to its own
// server queue, evaluating them independently (no cross-query I/O sharing).
//
// The paper's criticism, which this model lets us quantify: "the
// distinction between long and short queries is decided arbitrarily and
// the longest short queries interfere with the short queue and the
// shortest long queries experience starvation."

#ifndef LIFERAFT_SIM_CASJOBS_H_
#define LIFERAFT_SIM_CASJOBS_H_

#include <vector>

#include "sim/engine.h"
#include "storage/catalog.h"
#include "util/stats.h"

namespace liferaft::sim {

/// CasJobs configuration.
struct CasJobsConfig {
  /// Queries with at most this many cross-match objects go to the short
  /// queue ("decided arbitrarily", per the paper).
  size_t short_threshold_objects = 100;
  /// Disk model for both servers.
  storage::DiskModelParams disk;
};

/// Results of a CasJobs replay.
struct CasJobsMetrics {
  /// Combined throughput: all queries over the later server's makespan.
  double throughput_qps = 0.0;
  TimeMs makespan_ms = 0.0;
  size_t short_queries = 0;
  size_t long_queries = 0;
  StreamingStats short_response_ms;
  StreamingStats long_response_ms;
  /// Tail latency per class (ms) — comparable to the serving loop's
  /// per-QoS-class percentiles in RunMetrics::qos_classes. Zero for an
  /// empty class.
  double short_p50_ms = 0.0, short_p95_ms = 0.0, short_p99_ms = 0.0;
  double long_p50_ms = 0.0, long_p95_ms = 0.0, long_p99_ms = 0.0;
  /// Sum of both servers' bucket reads (two servers, duplicated I/O).
  uint64_t bucket_reads = 0;
};

/// Replays `queries[i]` arriving at `arrivals_ms[i]` through the two-queue
/// CasJobs system. Each class runs FIFO and independently (NoShare
/// semantics) on its own server against `catalog`; the two servers run in
/// parallel.
Result<CasJobsMetrics> RunCasJobs(
    storage::Catalog* catalog, const CasJobsConfig& config,
    const std::vector<query::CrossMatchQuery>& queries,
    const std::vector<TimeMs>& arrivals_ms);

}  // namespace liferaft::sim

#endif  // LIFERAFT_SIM_CASJOBS_H_
