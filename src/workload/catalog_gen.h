// Synthetic sky-catalog generator: the stand-in for the SDSS fact table
// (see DESIGN.md §2). Objects are a mixture of an isotropic background and
// Gaussian clusters, giving the spatially non-uniform density a real survey
// has (which in turn makes equal-count buckets cover unequal sky areas,
// exactly the regime HTM partitioning exists for).

#ifndef LIFERAFT_WORKLOAD_CATALOG_GEN_H_
#define LIFERAFT_WORKLOAD_CATALOG_GEN_H_

#include <cstdint>
#include <vector>

#include "geom/spherical.h"
#include "storage/object.h"
#include "util/random.h"
#include "util/status.h"

namespace liferaft::workload {

/// Catalog generator configuration.
struct CatalogGenConfig {
  size_t num_objects = 100'000;
  /// Fraction of objects drawn from clusters rather than the isotropic
  /// background.
  double cluster_fraction = 0.4;
  size_t num_clusters = 32;
  /// Cluster angular scale (Gaussian sigma, degrees).
  double cluster_sigma_deg = 2.0;
  /// Magnitudes are uniform in [mag_min, mag_max]; colors normal(0.6,0.4).
  float mag_min = 14.0f;
  float mag_max = 24.0f;
  uint64_t seed = 7;
};

/// Generates the catalog. Object ids are 0..n-1 assigned in HTM-curve
/// order (clustered-index layout), so each equal-count bucket covers a
/// contiguous id run — the columnar page format's sequential object-id
/// encoding depends on this.
Result<std::vector<storage::CatalogObject>> GenerateCatalog(
    const CatalogGenConfig& config);

/// Uniformly samples a point on the unit sphere (area-uniform).
SkyPoint RandomSkyPoint(Rng* rng);

/// Samples a point uniformly within `radius_deg` of `center` (area-uniform
/// within the cap).
SkyPoint RandomPointInCap(Rng* rng, const SkyPoint& center,
                          double radius_deg);

}  // namespace liferaft::workload

#endif  // LIFERAFT_WORKLOAD_CATALOG_GEN_H_
