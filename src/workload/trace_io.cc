#include "workload/trace_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/coding.h"
#include "util/crc32.h"

namespace liferaft::workload {
namespace {

constexpr char kMagic[8] = {'L', 'F', 'R', 'T', 'R', 'C', '0', '1'};

}  // namespace

Status SaveTrace(const std::string& path,
                 const std::vector<query::CrossMatchQuery>& trace) {
  std::string payload;
  PutFixed64(&payload, trace.size());
  for (const auto& q : trace) {
    PutFixed64(&payload, q.id);
    PutDouble(&payload, q.arrival_ms);
    PutFloat(&payload, q.predicate.min_mag);
    PutFloat(&payload, q.predicate.max_mag);
    PutFloat(&payload, q.predicate.min_color);
    PutFloat(&payload, q.predicate.max_color);
    PutFixed32(&payload, static_cast<uint32_t>(q.label.size()));
    payload += q.label;
    PutFixed64(&payload, q.objects.size());
    for (const auto& o : q.objects) {
      PutFixed64(&payload, o.id);
      PutDouble(&payload, o.ra_deg);
      PutDouble(&payload, o.dec_deg);
      PutDouble(&payload, o.radius_arcsec);
    }
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, Crc32(payload.data(), payload.size()));
  out += payload;

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot create " + path);
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<query::CrossMatchQuery>> LoadTrace(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return Status::IOError("cannot open " + path);
  auto size = static_cast<size_t>(f.tellg());
  if (size < sizeof(kMagic) + 4) {
    return Status::Corruption("trace file too small: " + path);
  }
  std::string data(size, '\0');
  f.seekg(0);
  f.read(data.data(), static_cast<std::streamsize>(size));
  if (!f) return Status::IOError("read failed for " + path);

  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad trace magic in " + path);
  }
  uint32_t stored_crc = GetFixed32(data.data() + sizeof(kMagic));
  const char* payload = data.data() + sizeof(kMagic) + 4;
  size_t payload_size = size - sizeof(kMagic) - 4;
  if (Crc32(payload, payload_size) != stored_crc) {
    return Status::Corruption("trace checksum mismatch in " + path);
  }

  const char* p = payload;
  const char* end = payload + payload_size;
  auto need = [&](size_t n) { return static_cast<size_t>(end - p) >= n; };

  if (!need(8)) return Status::Corruption("truncated trace header");
  uint64_t n = GetFixed64(p);
  p += 8;
  std::vector<query::CrossMatchQuery> trace;
  trace.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!need(8 + 8 + 16 + 4)) return Status::Corruption("truncated query");
    query::CrossMatchQuery q;
    q.id = GetFixed64(p);
    p += 8;
    q.arrival_ms = GetDouble(p);
    p += 8;
    q.predicate.min_mag = GetFloat(p);
    p += 4;
    q.predicate.max_mag = GetFloat(p);
    p += 4;
    q.predicate.min_color = GetFloat(p);
    p += 4;
    q.predicate.max_color = GetFloat(p);
    p += 4;
    uint32_t label_len = GetFixed32(p);
    p += 4;
    if (!need(label_len + 8)) return Status::Corruption("truncated label");
    q.label.assign(p, label_len);
    p += label_len;
    uint64_t n_objects = GetFixed64(p);
    p += 8;
    if (!need(n_objects * 32)) return Status::Corruption("truncated objects");
    q.objects.reserve(n_objects);
    for (uint64_t j = 0; j < n_objects; ++j) {
      uint64_t oid = GetFixed64(p);
      p += 8;
      double ra = GetDouble(p);
      p += 8;
      double dec = GetDouble(p);
      p += 8;
      double radius = GetDouble(p);
      p += 8;
      q.objects.push_back(
          query::MakeQueryObject(oid, SkyPoint{ra, dec}, radius));
    }
    trace.push_back(std::move(q));
  }
  if (p != end) return Status::Corruption("trailing bytes in trace file");
  return trace;
}

}  // namespace liferaft::workload
