// Trace persistence: save a generated query trace to a binary file and
// replay it later, so experiments across schedulers run the exact same
// workload (and traces can be shipped between machines).

#ifndef LIFERAFT_WORKLOAD_TRACE_IO_H_
#define LIFERAFT_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "util/status.h"

namespace liferaft::workload {

/// Writes the trace to `path` (overwrites). Object HTM covers are not
/// stored; they are deterministic functions of position and radius and are
/// recomputed on load.
Status SaveTrace(const std::string& path,
                 const std::vector<query::CrossMatchQuery>& trace);

/// Loads a trace written by SaveTrace, recomputing HTM covers. Validates
/// magic and checksum.
Result<std::vector<query::CrossMatchQuery>> LoadTrace(
    const std::string& path);

}  // namespace liferaft::workload

#endif  // LIFERAFT_WORKLOAD_TRACE_IO_H_
