#include "workload/catalog_gen.h"

#include <algorithm>
#include <cmath>

namespace liferaft::workload {

SkyPoint RandomSkyPoint(Rng* rng) {
  SkyPoint p;
  p.ra_deg = rng->UniformDouble(0.0, 360.0);
  p.dec_deg = std::asin(rng->UniformDouble(-1.0, 1.0)) * kRadToDeg;
  return p;
}

SkyPoint RandomPointInCap(Rng* rng, const SkyPoint& center,
                          double radius_deg) {
  // Area-uniform in the cap: cos(theta) uniform on [cos r, 1], azimuth
  // uniform; then rotate the polar sample onto the cap axis.
  double cos_r = std::cos(radius_deg * kDegToRad);
  double cos_t = rng->UniformDouble(cos_r, 1.0);
  double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
  double phi = rng->UniformDouble(0.0, 2.0 * M_PI);

  Vec3 axis = SkyToUnitVector(center);
  // Orthonormal basis (axis, u, v).
  Vec3 ref = std::abs(axis.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
  Vec3 u = axis.Cross(ref).Normalized();
  Vec3 v = axis.Cross(u);
  Vec3 p = axis * cos_t + (u * std::cos(phi) + v * std::sin(phi)) * sin_t;
  return UnitVectorToSky(p.Normalized());
}

Result<std::vector<storage::CatalogObject>> GenerateCatalog(
    const CatalogGenConfig& config) {
  if (config.num_objects == 0) {
    return Status::InvalidArgument("num_objects must be positive");
  }
  if (config.cluster_fraction < 0.0 || config.cluster_fraction > 1.0) {
    return Status::InvalidArgument("cluster_fraction must be in [0, 1]");
  }
  if (config.cluster_fraction > 0.0 && config.num_clusters == 0) {
    return Status::InvalidArgument(
        "num_clusters must be positive when cluster_fraction > 0");
  }
  Rng rng(config.seed);

  std::vector<SkyPoint> cluster_centers;
  cluster_centers.reserve(config.num_clusters);
  for (size_t i = 0; i < config.num_clusters; ++i) {
    cluster_centers.push_back(RandomSkyPoint(&rng));
  }

  std::vector<storage::CatalogObject> objects;
  objects.reserve(config.num_objects);
  for (size_t i = 0; i < config.num_objects; ++i) {
    SkyPoint p;
    if (rng.Bernoulli(config.cluster_fraction)) {
      const SkyPoint& c =
          cluster_centers[rng.UniformU64(cluster_centers.size())];
      p.ra_deg = c.ra_deg + rng.Normal(0.0, config.cluster_sigma_deg);
      p.dec_deg = c.dec_deg + rng.Normal(0.0, config.cluster_sigma_deg);
      p.ra_deg = std::fmod(p.ra_deg + 720.0, 360.0);
      p.dec_deg = std::clamp(p.dec_deg, -89.999, 89.999);
    } else {
      p = RandomSkyPoint(&rng);
    }
    float mag = static_cast<float>(
        rng.UniformDouble(config.mag_min, config.mag_max));
    float color = static_cast<float>(rng.Normal(0.6, 0.4));
    objects.push_back(storage::MakeObject(i, p, mag, color));
  }

  // Assign ids in HTM-curve order (a clustered-index layout): after the
  // catalog is bucketed by contiguous htm_id ranges, every bucket holds a
  // contiguous run of object ids, which the columnar v2 page format stores
  // as a single base value. The stable sort keeps generation order within
  // an htm cell so the result is still fully deterministic.
  std::stable_sort(objects.begin(), objects.end(),
                   [](const storage::CatalogObject& a,
                      const storage::CatalogObject& b) {
                     return a.htm_id < b.htm_id;
                   });
  for (size_t i = 0; i < objects.size(); ++i) {
    objects[i].object_id = i;
  }
  return objects;
}

}  // namespace liferaft::workload
