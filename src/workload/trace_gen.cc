#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "query/preprocessor.h"
#include "workload/catalog_gen.h"

namespace liferaft::workload {

Status TraceConfig::Validate() const {
  if (num_queries == 0) {
    return Status::InvalidArgument("num_queries must be positive");
  }
  if (num_hotspots == 0) {
    return Status::InvalidArgument("num_hotspots must be positive");
  }
  if (zipf_s < 0.0) return Status::InvalidArgument("zipf_s must be >= 0");
  if (p_hotspot < 0.0 || p_hotspot > 1.0 || p_stay < 0.0 || p_stay > 1.0 ||
      p_predicate < 0.0 || p_predicate > 1.0) {
    return Status::InvalidArgument("probabilities must be in [0, 1]");
  }
  if (min_radius_deg <= 0.0 || max_radius_deg < min_radius_deg) {
    return Status::InvalidArgument("bad radius range");
  }
  if (p_small < 0.0 || p_small > 1.0) {
    return Status::InvalidArgument("p_small must be in [0, 1]");
  }
  if (p_small > 0.0 && (small_max_radius_deg < min_radius_deg ||
                        small_max_radius_deg > max_radius_deg)) {
    return Status::InvalidArgument(
        "small_max_radius_deg must be in [min_radius_deg, max_radius_deg]");
  }
  if (objects_per_sq_deg <= 0.0) {
    return Status::InvalidArgument("objects_per_sq_deg must be positive");
  }
  if (min_objects_per_query == 0 ||
      max_objects_per_query < min_objects_per_query) {
    return Status::InvalidArgument("bad objects-per-query range");
  }
  if (match_radius_arcsec <= 0.0) {
    return Status::InvalidArgument("match_radius_arcsec must be positive");
  }
  return Status::OK();
}

TraceConfig LongRunningSkyQueryPreset() {
  // Calibrated against the paper's measured workload economics under the
  // benchmark suite's 10x object scaling (bench/bench_common.h): an average
  // query touches ~10 buckets and carries ~60 scaled cross-match objects,
  // which puts the NoShare baseline's service capacity at the paper's
  // ~0.085 q/s and per-bucket queue ratios near the hybrid break-even.
  TraceConfig tc;
  tc.num_queries = 2000;
  tc.num_hotspots = 64;
  tc.zipf_s = 2.0;
  tc.p_hotspot = 0.85;
  tc.p_stay = 0.7;
  tc.min_radius_deg = 2.5;   // no short interactive queries in this trace
  tc.max_radius_deg = 20.0;
  // Scaled density: puts an average bucket workload at ~2-3% of the bucket,
  // straddling the hybrid scan-vs-probe break-even exactly as the paper's
  // measured queues do.
  tc.objects_per_sq_deg = 0.8;
  tc.min_objects_per_query = 16;
  tc.max_objects_per_query = 2000;
  // On the standard 500-bucket benchmark catalog this measures:
  //   NoShare service capacity ~ 0.089 q/s   (paper: ~0.085)
  //   top-10 buckets touched by ~60% of queries (paper Fig 5: 61%)
  //   2% of buckets carry 50% of the workload   (paper Fig 6: 2%)
  return tc;
}

const char* SkewLevelName(SkewLevel level) {
  switch (level) {
    case SkewLevel::kUniform:
      return "uniform";
    case SkewLevel::kDefault:
      return "default";
    case SkewLevel::kExtreme:
      return "extreme";
  }
  return "?";
}

TraceConfig SkewedTracePreset(SkewLevel level, size_t num_queries,
                              uint64_t seed) {
  TraceConfig tc;
  tc.num_queries = num_queries;
  tc.seed = seed;
  switch (level) {
    case SkewLevel::kUniform:
      // No hotspot pull at all: every query explores a fresh region, so
      // bucket mass spreads as evenly as the sky sampling allows.
      tc.p_hotspot = 0.0;
      tc.p_stay = 0.0;
      tc.zipf_s = 0.0;
      break;
    case SkewLevel::kDefault:
      break;  // the calibrated Fig 5/6 shape
    case SkewLevel::kExtreme:
      // Nearly all mass on a couple of hotspots with strong temporal
      // stickiness — the starvation-pressure regime the adaptive alpha
      // exists for.
      tc.num_hotspots = 8;
      tc.zipf_s = 3.0;
      tc.p_hotspot = 0.97;
      tc.p_stay = 0.85;
      break;
  }
  return tc;
}

namespace {

double CapAreaSqDeg(double radius_deg) {
  double steradians = 2.0 * M_PI * (1.0 - std::cos(radius_deg * kDegToRad));
  return steradians * kRadToDeg * kRadToDeg;
}

const char* const kArchives[] = {"twomass", "sdss", "usnob", "first",
                                 "rosat"};

}  // namespace

Result<std::vector<query::CrossMatchQuery>> GenerateTrace(
    const TraceConfig& config) {
  LIFERAFT_RETURN_IF_ERROR(config.Validate());
  Rng rng(config.seed);

  std::vector<SkyPoint> hotspots;
  hotspots.reserve(config.num_hotspots);
  for (size_t i = 0; i < config.num_hotspots; ++i) {
    hotspots.push_back(RandomSkyPoint(&rng));
  }
  ZipfDistribution hotspot_rank(config.num_hotspots, config.zipf_s);

  std::vector<query::CrossMatchQuery> trace;
  trace.reserve(config.num_queries);

  size_t current_hotspot = hotspot_rank.Sample(&rng);
  const double log_min = std::log(config.min_radius_deg);
  const double log_max = std::log(config.max_radius_deg);

  for (size_t qi = 0; qi < config.num_queries; ++qi) {
    query::CrossMatchQuery q;
    q.id = qi + 1;

    // Pick the query's sky region: stay on the current hotspot, hop to a
    // Zipf-sampled one, or (rarely) explore a fresh random region.
    SkyPoint center;
    if (!rng.Bernoulli(config.p_stay)) {
      current_hotspot = hotspot_rank.Sample(&rng);
    }
    if (rng.Bernoulli(config.p_hotspot)) {
      center = hotspots[current_hotspot];
      // Jitter so repeated queries are not byte-identical.
      center.ra_deg = std::fmod(center.ra_deg + rng.Normal(0, 0.3) + 360.0,
                                360.0);
      center.dec_deg = std::clamp(center.dec_deg + rng.Normal(0, 0.3),
                                  -89.0, 89.0);
    } else {
      center = RandomSkyPoint(&rng);
    }

    // Footprint and workload size. The small-mode Bernoulli is drawn only
    // when the mix is enabled so p_small = 0 consumes no rng state and
    // pre-mix traces reproduce byte for byte.
    double hi = log_max;
    if (config.p_small > 0.0 && rng.Bernoulli(config.p_small)) {
      hi = std::log(config.small_max_radius_deg);
    }
    double radius_deg =
        std::exp(rng.UniformDouble(log_min, hi));
    double area = CapAreaSqDeg(radius_deg);
    auto target = static_cast<size_t>(area * config.objects_per_sq_deg);
    size_t n_objects = std::clamp(target, config.min_objects_per_query,
                                  config.max_objects_per_query);

    q.objects.reserve(n_objects);
    for (size_t i = 0; i < n_objects; ++i) {
      SkyPoint p = RandomPointInCap(&rng, center, radius_deg);
      q.objects.push_back(query::MakeQueryObject(
          i, p, config.match_radius_arcsec));
    }

    if (rng.Bernoulli(config.p_predicate)) {
      q.predicate.max_mag =
          static_cast<float>(rng.UniformDouble(18.0, 23.0));
    }

    // Provenance label: 2-5 archives joined serially.
    int n_archives = static_cast<int>(rng.UniformInt(2, 5));
    for (int a = 0; a < n_archives; ++a) {
      if (a) q.label += " x ";
      q.label += kArchives[rng.UniformU64(std::size(kArchives))];
    }
    trace.push_back(std::move(q));
  }
  return trace;
}

std::vector<BucketTouch> CharacterizeTrace(
    const std::vector<query::CrossMatchQuery>& trace,
    const storage::BucketMap& map) {
  std::unordered_map<storage::BucketIndex, BucketTouch> touches;
  for (const auto& q : trace) {
    auto workloads = query::SplitQueryByBucket(q, map);
    for (const auto& w : workloads) {
      BucketTouch& t = touches[w.bucket];
      t.bucket = w.bucket;
      t.queries_touching += 1;
      t.workload_objects += w.objects.size();
    }
  }
  std::vector<BucketTouch> out;
  out.reserve(touches.size());
  for (auto& [_, t] : touches) out.push_back(t);
  std::sort(out.begin(), out.end(), [](const BucketTouch& a,
                                       const BucketTouch& b) {
    if (a.workload_objects != b.workload_objects) {
      return a.workload_objects > b.workload_objects;
    }
    return a.bucket < b.bucket;
  });
  return out;
}

double TopKTouchFraction(const std::vector<query::CrossMatchQuery>& trace,
                         const storage::BucketMap& map, size_t k) {
  // Rank buckets by number of touching queries.
  auto touches = CharacterizeTrace(trace, map);
  std::sort(touches.begin(), touches.end(),
            [](const BucketTouch& a, const BucketTouch& b) {
              if (a.queries_touching != b.queries_touching) {
                return a.queries_touching > b.queries_touching;
              }
              return a.bucket < b.bucket;
            });
  std::set<storage::BucketIndex> top;
  for (size_t i = 0; i < touches.size() && i < k; ++i) {
    top.insert(touches[i].bucket);
  }
  size_t hit = 0;
  for (const auto& q : trace) {
    auto workloads = query::SplitQueryByBucket(q, map);
    bool touches_top = false;
    for (const auto& w : workloads) touches_top |= (top.count(w.bucket) > 0);
    hit += touches_top;
  }
  return trace.empty() ? 0.0 : static_cast<double>(hit) / trace.size();
}

double BucketFractionForMass(const std::vector<BucketTouch>& touches,
                             size_t num_buckets, double mass_fraction) {
  if (num_buckets == 0) return 0.0;
  uint64_t total = 0;
  for (const auto& t : touches) total += t.workload_objects;
  if (total == 0) return 0.0;
  uint64_t want = static_cast<uint64_t>(mass_fraction *
                                        static_cast<double>(total));
  uint64_t acc = 0;
  size_t used = 0;
  for (const auto& t : touches) {  // already sorted desc by mass
    acc += t.workload_objects;
    ++used;
    if (acc >= want) break;
  }
  return static_cast<double>(used) / static_cast<double>(num_buckets);
}

}  // namespace liferaft::workload
