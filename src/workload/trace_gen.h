// Synthetic SkyQuery-like cross-match trace generator — the stand-in for
// the paper's 2,000-query web-log trace (DESIGN.md §2).
//
// The published workload has two measured marginals LifeRaft's gains hinge
// on, and the generator is calibrated to reproduce both:
//   * Fig 5: heavy bucket reuse with temporal locality — the top-ten
//     buckets are touched by ~61% of queries, and queries touching the
//     same data cluster in time.
//   * Fig 6: skewed workload mass — ~2% of buckets carry ~50% of all
//     cross-match objects, with a long starvation-prone tail.
//
// Mechanism: queries target sky "hotspots" drawn from a Zipf distribution
// (science interest concentrates on a few regions); a Markov "stay"
// probability keeps consecutive queries on the same hotspot (papers beget
// follow-up queries); query footprints are log-uniform cones, so a few
// sky-spanning scans coexist with small targeted cross-matches.

#ifndef LIFERAFT_WORKLOAD_TRACE_GEN_H_
#define LIFERAFT_WORKLOAD_TRACE_GEN_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "storage/partitioner.h"
#include "util/status.h"

namespace liferaft::workload {

/// Trace generator configuration. Defaults reproduce the Fig 5 / Fig 6
/// shapes on the default 100k-object / 100-bucket catalog.
struct TraceConfig {
  size_t num_queries = 2000;

  /// Hotspot model.
  size_t num_hotspots = 48;
  double zipf_s = 1.6;
  /// Probability a query targets a hotspot (vs. a fresh random region).
  double p_hotspot = 0.82;
  /// Probability the next query stays on the previous query's hotspot
  /// (temporal locality).
  double p_stay = 0.5;

  /// Query footprint: cone radius log-uniform in [min, max] degrees.
  double min_radius_deg = 0.4;
  double max_radius_deg = 25.0;

  /// Bimodal footprint mix for QoS scenarios: with probability p_small the
  /// radius is drawn log-uniform in [min_radius_deg, small_max_radius_deg]
  /// instead of the full range, yielding a controllable share of
  /// few-bucket (interactive-classified) queries next to sky-spanning
  /// batch scans. p_small = 0 draws nothing extra from the rng, so the
  /// default reproduces pre-mix traces byte for byte.
  double p_small = 0.0;
  double small_max_radius_deg = 1.0;

  /// Cross-match object density within the footprint.
  double objects_per_sq_deg = 2.0;
  size_t min_objects_per_query = 16;
  size_t max_objects_per_query = 8000;

  /// Per-object probabilistic match radius (arcsec).
  double match_radius_arcsec = 3.0;

  /// Fraction of queries that get a non-trivial magnitude predicate.
  double p_predicate = 0.3;

  uint64_t seed = 42;

  Status Validate() const;
};

/// Generates the trace. Query ids are 1..n in order.
Result<std::vector<query::CrossMatchQuery>> GenerateTrace(
    const TraceConfig& config);

/// The calibrated stand-in for the paper's §5.1 evaluation trace: 2,000
/// *long-running* cross-match queries ("navigate the entire sky, performing
/// full database scans"), sized so that on the standard 1,000-bucket
/// benchmark catalog the NoShare baseline's service capacity lands near the
/// paper's measured ~0.085 q/s and the Fig 5/6 skew shapes hold.
TraceConfig LongRunningSkyQueryPreset();

/// Catalog-skew axis of the scenario matrix: how concentrated the query
/// mass is over the sky. kUniform scatters queries with no hotspot pull;
/// kDefault is the calibrated Fig 5/6 shape; kExtreme concentrates almost
/// all mass on a couple of hotspots (the starvation-pressure regime).
enum class SkewLevel { kUniform, kDefault, kExtreme };

const char* SkewLevelName(SkewLevel level);

/// TraceConfig for a skew level, starting from the defaults: only the
/// hotspot-model knobs (num_hotspots, zipf_s, p_hotspot, p_stay) differ
/// between levels, so skew is the single moving axis.
TraceConfig SkewedTracePreset(SkewLevel level, size_t num_queries,
                              uint64_t seed);

/// Workload-characterization helpers for Figs 5 and 6.
struct BucketTouch {
  storage::BucketIndex bucket = 0;
  /// Number of queries whose workload includes this bucket.
  uint64_t queries_touching = 0;
  /// Total cross-match objects routed to this bucket.
  uint64_t workload_objects = 0;
};

/// Per-bucket touch statistics of a trace under a given partitioning,
/// sorted by descending workload_objects.
std::vector<BucketTouch> CharacterizeTrace(
    const std::vector<query::CrossMatchQuery>& trace,
    const storage::BucketMap& map);

/// Fraction of queries that touch at least one of the `k` most-reused
/// buckets (the Fig 5 "61%" statistic).
double TopKTouchFraction(const std::vector<query::CrossMatchQuery>& trace,
                         const storage::BucketMap& map, size_t k);

/// Smallest fraction of buckets that carries at least `mass_fraction` of
/// all workload objects (the Fig 6 "2% hold 50%" statistic).
double BucketFractionForMass(const std::vector<BucketTouch>& touches,
                             size_t num_buckets, double mass_fraction);

}  // namespace liferaft::workload

#endif  // LIFERAFT_WORKLOAD_TRACE_GEN_H_
