// Quality-of-service age weighting — the paper's §6 extension: "depreciating
// the age bias for longer queries (regardless of the arrival order) to
// better support both interactive and batch workloads in the same
// environment."
//
// When enabled, a queue's age term is the maximum over its entries of
//   age(entry) * weight(query), weight = 1 / (1 + parts(query)/half_life)
// so a short interactive query (few bucket sub-queries) ages at nearly full
// rate while a sky-spanning batch query's age is discounted and cannot crowd
// interactive work out of the age term.

#ifndef LIFERAFT_SCHED_QOS_H_
#define LIFERAFT_SCHED_QOS_H_

#include <cstddef>

namespace liferaft::sched {

/// QoS age-depreciation settings.
struct QosConfig {
  /// Master switch; off reproduces the paper's published scheduler.
  bool depreciate_long_queries = false;
  /// Query size (in outstanding bucket sub-queries) at which the age weight
  /// falls to 1/2.
  double half_life_parts = 16.0;
};

/// Age weight of a query with `pending_parts` outstanding sub-queries.
inline double QosAgeWeight(const QosConfig& config, size_t pending_parts) {
  if (!config.depreciate_long_queries) return 1.0;
  return 1.0 /
         (1.0 + static_cast<double>(pending_parts) / config.half_life_parts);
}

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_QOS_H_
