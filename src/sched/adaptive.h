// Workload-adaptive alpha selection (paper §4): given throughput-vs-response
// trade-off curves measured offline at several saturation levels, and a
// user tolerance threshold ("how much throughput degradation is permitted"),
// pick the alpha that minimizes average response time subject to throughput
// staying within tolerance of the achievable maximum. An online controller
// estimates the current arrival rate and interpolates between the stored
// curves.

#ifndef LIFERAFT_SCHED_ADAPTIVE_H_
#define LIFERAFT_SCHED_ADAPTIVE_H_

#include <map>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace liferaft::sched {

/// One measured operating point of a trade-off curve.
struct TradeoffPoint {
  double alpha = 0.0;
  double throughput_qps = 0.0;
  double avg_response_ms = 0.0;
};

/// Picks the alpha whose response time is lowest among points with
/// throughput >= (1 - tolerance) * max throughput on the curve (paper Fig 4:
/// tolerance 0.2 selects alpha 1.0 at low saturation, 0.25 at high).
/// Returns InvalidArgument for an empty curve or tolerance outside [0, 1].
Result<double> SelectAlpha(const std::vector<TradeoffPoint>& curve,
                           double tolerance);

/// Holds trade-off curves keyed by saturation and answers "which alpha for
/// the saturation we're seeing now?". Curves are measured offline with a
/// representative workload, exactly as the paper does.
class AlphaSelector {
 public:
  /// @param tolerance permitted fractional throughput degradation in [0,1]
  explicit AlphaSelector(double tolerance) : tolerance_(tolerance) {}

  /// Registers the trade-off curve measured at `saturation_qps`.
  Status AddCurve(double saturation_qps, std::vector<TradeoffPoint> curve);

  /// Alpha for an observed arrival rate: evaluated on the registered curve
  /// with the nearest saturation. FailedPrecondition with no curves.
  Result<double> AlphaFor(double observed_qps) const;

  size_t num_curves() const { return curves_.size(); }
  double tolerance() const { return tolerance_; }

 private:
  double tolerance_;
  std::map<double, std::vector<TradeoffPoint>> curves_;
};

/// Sliding-window arrival-rate estimator driving AlphaSelector online.
class ArrivalRateEstimator {
 public:
  /// @param window_ms width of the estimation window
  explicit ArrivalRateEstimator(TimeMs window_ms = 60'000.0)
      : window_ms_(window_ms) {}

  /// Records a query arrival.
  void OnArrival(TimeMs now);

  /// Arrivals per second over the trailing window.
  double RateQps(TimeMs now) const;

 private:
  TimeMs window_ms_;
  mutable std::vector<TimeMs> arrivals_;  // pruned lazily
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_ADAPTIVE_H_
