// Workload-adaptive alpha selection (paper §4): given throughput-vs-response
// trade-off curves measured offline at several saturation levels, and a
// user tolerance threshold ("how much throughput degradation is permitted"),
// pick the alpha that minimizes average response time subject to throughput
// staying within tolerance of the achievable maximum. An online controller
// estimates the current arrival rate and interpolates between the stored
// curves.

#ifndef LIFERAFT_SCHED_ADAPTIVE_H_
#define LIFERAFT_SCHED_ADAPTIVE_H_

#include <map>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace liferaft::sched {

/// One measured operating point of a trade-off curve.
struct TradeoffPoint {
  double alpha = 0.0;
  double throughput_qps = 0.0;
  double avg_response_ms = 0.0;
};

/// Picks the alpha whose response time is lowest among points with
/// throughput >= (1 - tolerance) * max throughput on the curve (paper Fig 4:
/// tolerance 0.2 selects alpha 1.0 at low saturation, 0.25 at high).
/// Returns InvalidArgument for an empty curve or tolerance outside [0, 1].
Result<double> SelectAlpha(const std::vector<TradeoffPoint>& curve,
                           double tolerance);

/// Holds trade-off curves keyed by saturation and answers "which alpha for
/// the saturation we're seeing now?". Curves are measured offline with a
/// representative workload, exactly as the paper does.
class AlphaSelector {
 public:
  /// @param tolerance permitted fractional throughput degradation in [0,1]
  explicit AlphaSelector(double tolerance) : tolerance_(tolerance) {}

  /// Registers the trade-off curve measured at `saturation_qps`.
  Status AddCurve(double saturation_qps, std::vector<TradeoffPoint> curve);

  /// Alpha for an observed arrival rate: evaluated on the registered curve
  /// with the nearest saturation. FailedPrecondition with no curves.
  Result<double> AlphaFor(double observed_qps) const;

  size_t num_curves() const { return curves_.size(); }
  double tolerance() const { return tolerance_; }

 private:
  double tolerance_;
  std::map<double, std::vector<TradeoffPoint>> curves_;
};

/// The canonical selector for serving experiments: two trade-off curves
/// with the paper's Fig 4 shape — at low saturation every alpha sustains
/// the offered load, so the tolerance admits the response-optimal
/// cost-greedy end (alpha 1.0); at high saturation throughput collapses
/// beyond alpha 0.25, so the selector backs off to the productivity end.
/// Scenario-matrix cells with the adaptive-alpha axis enabled share this
/// one selector, so every harness exercises the same policy rather than
/// hand-rolled curves.
AlphaSelector ReferenceAlphaSelector(double tolerance = 0.2);

/// Sliding-window arrival-rate estimator driving AlphaSelector online.
///
/// Not internally synchronized: RateQps is a pure read (it never mutates,
/// so observing it from the serving loop is race-free under the caller's
/// lock), and Prune is the explicit mutating call that discards arrivals
/// older than the window — call it from wherever OnArrival is serialized
/// (sim::AdmissionController holds one estimator under its mutex).
class ArrivalRateEstimator {
 public:
  /// @param window_ms  width of the estimation window
  /// @param origin_ms  virtual time observation started (clock origin);
  ///                   the rate denominator never extends before it
  explicit ArrivalRateEstimator(TimeMs window_ms = 60'000.0,
                                TimeMs origin_ms = 0.0)
      : window_ms_(window_ms), origin_ms_(origin_ms) {}

  /// Records a query arrival. Arrivals must be non-decreasing.
  void OnArrival(TimeMs now);

  /// Arrivals per second over the trailing window. The denominator is the
  /// observed elapsed time min(window_ms, now - origin_ms), NOT the span
  /// between the arrivals themselves — a single warmup arrival therefore
  /// reads as 1 / elapsed, not as ~1000 QPS from a degenerate 1 ms span.
  /// Returns 0 before any time has elapsed. Does not mutate state.
  double RateQps(TimeMs now) const;

  /// Discards arrivals that left the trailing window (explicitly mutating;
  /// see class comment). RateQps ignores them either way — this only
  /// bounds memory.
  void Prune(TimeMs now);

  /// Arrivals currently retained (pruned + in-window); for tests and
  /// memory accounting.
  size_t retained() const { return arrivals_.size(); }

 private:
  TimeMs window_ms_;
  TimeMs origin_ms_;
  std::vector<TimeMs> arrivals_;
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_ADAPTIVE_H_
