#include "sched/adaptive.h"

#include <algorithm>
#include <cmath>

namespace liferaft::sched {

Result<double> SelectAlpha(const std::vector<TradeoffPoint>& curve,
                           double tolerance) {
  if (curve.empty()) {
    return Status::InvalidArgument("empty trade-off curve");
  }
  if (tolerance < 0.0 || tolerance > 1.0) {
    return Status::InvalidArgument("tolerance must be in [0, 1]");
  }
  double max_tp = 0.0;
  for (const auto& p : curve) max_tp = std::max(max_tp, p.throughput_qps);
  double floor_tp = (1.0 - tolerance) * max_tp;

  const TradeoffPoint* best = nullptr;
  for (const auto& p : curve) {
    if (p.throughput_qps + 1e-12 < floor_tp) continue;
    if (best == nullptr || p.avg_response_ms < best->avg_response_ms ||
        (p.avg_response_ms == best->avg_response_ms &&
         p.alpha > best->alpha)) {
      best = &p;
    }
  }
  // max_tp point always qualifies, so best is non-null.
  return best->alpha;
}

Status AlphaSelector::AddCurve(double saturation_qps,
                               std::vector<TradeoffPoint> curve) {
  if (saturation_qps <= 0.0) {
    return Status::InvalidArgument("saturation must be positive");
  }
  if (curve.empty()) {
    return Status::InvalidArgument("empty trade-off curve");
  }
  curves_[saturation_qps] = std::move(curve);
  return Status::OK();
}

Result<double> AlphaSelector::AlphaFor(double observed_qps) const {
  if (curves_.empty()) {
    return Status::FailedPrecondition("no trade-off curves registered");
  }
  // Nearest saturation by absolute difference.
  const std::vector<TradeoffPoint>* nearest = nullptr;
  double best_dist = 0.0;
  for (const auto& [saturation, curve] : curves_) {
    double dist = std::abs(saturation - observed_qps);
    if (nearest == nullptr || dist < best_dist) {
      nearest = &curve;
      best_dist = dist;
    }
  }
  return SelectAlpha(*nearest, tolerance_);
}

AlphaSelector ReferenceAlphaSelector(double tolerance) {
  AlphaSelector selector(tolerance);
  // Low saturation (0.1 q/s): every alpha sustains the offered rate, so
  // the throughput floor never excludes the response-optimal cost-greedy
  // end. SelectAlpha picks alpha 1.0.
  (void)selector.AddCurve(0.1, {{0.0, 0.100, 90'000.0},
                                {0.25, 0.100, 60'000.0},
                                {1.0, 0.096, 30'000.0}});
  // High saturation (5 q/s): the cost-greedy end starves enough queries
  // that throughput drops below (1 - tolerance) * max, so the selector
  // backs off to the paper's alpha 0.25 operating point.
  (void)selector.AddCurve(5.0, {{0.0, 0.300, 200'000.0},
                                {0.25, 0.280, 120'000.0},
                                {1.0, 0.180, 90'000.0}});
  return selector;
}

void ArrivalRateEstimator::OnArrival(TimeMs now) {
  arrivals_.push_back(now);
}

double ArrivalRateEstimator::RateQps(TimeMs now) const {
  TimeMs cutoff = now - window_ms_;
  auto first = std::lower_bound(arrivals_.begin(), arrivals_.end(), cutoff);
  size_t in_window = static_cast<size_t>(arrivals_.end() - first);
  if (in_window == 0) return 0.0;
  // Denominator: how long we have actually been observing the window —
  // elapsed time since the window opened, clamped to the clock origin for
  // short warmups. Never the span between the arrivals themselves: that
  // collapses to ~0 for a single arrival and reported ~1000 QPS the
  // moment the first query of a run was admitted.
  TimeMs elapsed = now - origin_ms_;
  if (elapsed <= 0.0) return 0.0;
  double span_ms = std::max(std::min(window_ms_, elapsed), 1.0);
  return static_cast<double>(in_window) / (span_ms / 1000.0);
}

void ArrivalRateEstimator::Prune(TimeMs now) {
  TimeMs cutoff = now - window_ms_;
  auto first = std::lower_bound(arrivals_.begin(), arrivals_.end(), cutoff);
  arrivals_.erase(arrivals_.begin(), first);
}

}  // namespace liferaft::sched
