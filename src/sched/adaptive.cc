#include "sched/adaptive.h"

#include <algorithm>
#include <cmath>

namespace liferaft::sched {

Result<double> SelectAlpha(const std::vector<TradeoffPoint>& curve,
                           double tolerance) {
  if (curve.empty()) {
    return Status::InvalidArgument("empty trade-off curve");
  }
  if (tolerance < 0.0 || tolerance > 1.0) {
    return Status::InvalidArgument("tolerance must be in [0, 1]");
  }
  double max_tp = 0.0;
  for (const auto& p : curve) max_tp = std::max(max_tp, p.throughput_qps);
  double floor_tp = (1.0 - tolerance) * max_tp;

  const TradeoffPoint* best = nullptr;
  for (const auto& p : curve) {
    if (p.throughput_qps + 1e-12 < floor_tp) continue;
    if (best == nullptr || p.avg_response_ms < best->avg_response_ms ||
        (p.avg_response_ms == best->avg_response_ms &&
         p.alpha > best->alpha)) {
      best = &p;
    }
  }
  // max_tp point always qualifies, so best is non-null.
  return best->alpha;
}

Status AlphaSelector::AddCurve(double saturation_qps,
                               std::vector<TradeoffPoint> curve) {
  if (saturation_qps <= 0.0) {
    return Status::InvalidArgument("saturation must be positive");
  }
  if (curve.empty()) {
    return Status::InvalidArgument("empty trade-off curve");
  }
  curves_[saturation_qps] = std::move(curve);
  return Status::OK();
}

Result<double> AlphaSelector::AlphaFor(double observed_qps) const {
  if (curves_.empty()) {
    return Status::FailedPrecondition("no trade-off curves registered");
  }
  // Nearest saturation by absolute difference.
  const std::vector<TradeoffPoint>* nearest = nullptr;
  double best_dist = 0.0;
  for (const auto& [saturation, curve] : curves_) {
    double dist = std::abs(saturation - observed_qps);
    if (nearest == nullptr || dist < best_dist) {
      nearest = &curve;
      best_dist = dist;
    }
  }
  return SelectAlpha(*nearest, tolerance_);
}

void ArrivalRateEstimator::OnArrival(TimeMs now) {
  arrivals_.push_back(now);
}

double ArrivalRateEstimator::RateQps(TimeMs now) const {
  TimeMs cutoff = now - window_ms_;
  auto first = std::lower_bound(arrivals_.begin(), arrivals_.end(), cutoff);
  arrivals_.erase(arrivals_.begin(), first);
  if (arrivals_.empty()) return 0.0;
  // Use the window width, clipped to the observed span for short warmups.
  double span_ms = std::max(now - arrivals_.front(), 1.0);
  double window = std::min(window_ms_, span_ms);
  return static_cast<double>(arrivals_.size()) / (window / 1000.0);
}

}  // namespace liferaft::sched
