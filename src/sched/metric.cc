#include "sched/metric.h"

#include "storage/topology.h"

namespace liferaft::sched {

double WorkloadThroughput(const storage::DiskModel& model,
                          uint64_t queue_objects, uint64_t bucket_bytes,
                          bool cached) {
  if (queue_objects == 0) return 0.0;
  double w = static_cast<double>(queue_objects);
  double tb = cached ? 0.0 : model.SequentialReadMs(bucket_bytes);
  double tm = model.MatchMs(queue_objects);
  return w / (tb + tm);
}

double WorkloadThroughputOnVolume(const storage::StorageTopology* topology,
                                  const storage::DiskModel& fallback,
                                  storage::BucketIndex bucket,
                                  uint64_t queue_objects,
                                  uint64_t bucket_bytes, bool cached) {
  // The uniform gate keeps uniform topologies on the exact code path the
  // single-model form takes: same model object, same arithmetic, same
  // bits.
  const storage::DiskModel& model =
      (topology != nullptr && !topology->uniform()) ? topology->ModelFor(bucket)
                                                    : fallback;
  return WorkloadThroughput(model, queue_objects, bucket_bytes, cached);
}

double AgedThroughputRaw(double ut, double age_ms, double alpha) {
  return ut * (1.0 - alpha) + age_ms * alpha;
}

double AgedThroughputNormalized(double ut, double ut_max, double age_ms,
                                double age_max, double alpha) {
  double ut_term = ut_max > 0.0 ? ut / ut_max : 0.0;
  double age_term = age_max > 0.0 ? age_ms / age_max : 0.0;
  return ut_term * (1.0 - alpha) + age_term * alpha;
}

}  // namespace liferaft::sched
