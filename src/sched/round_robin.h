// Round-robin baseline (paper §5): services buckets with pending work in
// increasing HTM ID (= bucket index) order, cyclically. Fair in that every
// request gets the same scheduler attention, but oblivious to both queue
// length (contention) and request age — queries just behind the cursor wait
// nearly a full rotation.

#ifndef LIFERAFT_SCHED_ROUND_ROBIN_H_
#define LIFERAFT_SCHED_ROUND_ROBIN_H_

#include <string>

#include "sched/scheduler.h"

namespace liferaft::sched {

/// Cyclic sweep over non-empty workload queues in bucket order.
class RoundRobinScheduler : public Scheduler {
 public:
  RoundRobinScheduler() = default;

  std::string name() const override { return "rr"; }

  std::optional<storage::BucketIndex> PickBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) override;

  /// The next `k` sweep positions from the cursor (wrapping, distinct),
  /// without advancing the cursor: element 0 is the next PickBucket.
  std::vector<storage::BucketIndex> PeekNextBuckets(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached, size_t k) const override;

 private:
  /// Next sweep position: the first active bucket >= cursor_ is served.
  storage::BucketIndex cursor_ = 0;
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_ROUND_ROBIN_H_
