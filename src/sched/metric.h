// The workload throughput metric U_t (paper Eq. 1) and the aged workload
// throughput metric U_a (Eq. 2).
//
//   U_t(i) = |W_i| / (T_b * phi(i) + T_m * |W_i|)
//   U_a(i) = U_t(i) * (1 - alpha) + A(i) * alpha
//
// U_t is the rate (objects per ms) at which bucket i's queue would be
// consumed if scheduled now; phi(i) = 0 when the bucket is cached, making
// resident contentious buckets maximally attractive. A(i) is the age of the
// oldest request in the queue.
//
// Unit caveat (see DESIGN.md §5): taken literally, Eq. 2 adds objects/ms
// (magnitude << 10) to milliseconds (magnitude >> 10^4), so any alpha > 0 is
// immediately age-dominated and all intermediate alpha settings collapse
// onto alpha = 1. To reproduce the paper's graded alpha behaviour we default
// to a normalized blend over the currently active buckets:
//
//   U_a(i) = (1 - alpha) * U_t(i)/max_j U_t(j) + alpha * A(i)/max_j A(j)
//
// The literal formula is retained as kRawPaper and contrasted in
// bench_ablation_metric.

#ifndef LIFERAFT_SCHED_METRIC_H_
#define LIFERAFT_SCHED_METRIC_H_

#include <cstdint>

#include "storage/bucket.h"
#include "storage/disk_model.h"

namespace liferaft::storage {
class StorageTopology;
}  // namespace liferaft::storage

namespace liferaft::sched {

/// How U_t and A are combined into U_a.
enum class MetricNormalization {
  kRawPaper,    ///< literal Eq. 2
  kNormalized,  ///< both terms scaled to [0,1] over active buckets (default)
};

/// Computes U_t (objects consumed per millisecond) for one bucket.
///
/// @param model         disk cost model supplying T_b and T_m
/// @param queue_objects |W_i|, pending workload objects for the bucket
/// @param bucket_bytes  bucket size on disk (determines T_b)
/// @param cached        phi(i) == 0
double WorkloadThroughput(const storage::DiskModel& model,
                          uint64_t queue_objects, uint64_t bucket_bytes,
                          bool cached);

/// Volume-aware U_t: prices T_b with the disk model of the volume that
/// actually owns `bucket`. With heterogeneous per-volume disks
/// (StorageTopologyConfig::volume_disk) the global-model form over-ranks
/// buckets on slow arms — the evaluator charges the volume model's T_b,
/// so the scheduler must rank with the same one. A null or uniform
/// topology falls back to `fallback` exactly (bit-identical to the
/// single-model form, preserving every uniform-topology schedule).
double WorkloadThroughputOnVolume(const storage::StorageTopology* topology,
                                  const storage::DiskModel& fallback,
                                  storage::BucketIndex bucket,
                                  uint64_t queue_objects,
                                  uint64_t bucket_bytes, bool cached);

/// Combines U_t and age into U_a per Eq. 2 (raw form).
double AgedThroughputRaw(double ut, double age_ms, double alpha);

/// Normalized form: ut_max/age_max are maxima over the active buckets; zero
/// maxima degrade gracefully (that term contributes 0 for every bucket).
double AgedThroughputNormalized(double ut, double ut_max, double age_ms,
                                double age_max, double alpha);

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_METRIC_H_
