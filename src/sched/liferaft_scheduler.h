// The LifeRaft scheduler (paper §3.2–3.3): ranks the buckets with pending
// work by the aged workload throughput metric and services the best one.
// alpha = 0 is the greedy most-contentious-data-first policy; alpha = 1
// serves buckets by oldest pending request (arrival order); intermediate
// settings trade throughput for response time.

#ifndef LIFERAFT_SCHED_LIFERAFT_SCHEDULER_H_
#define LIFERAFT_SCHED_LIFERAFT_SCHEDULER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sched/metric.h"
#include "sched/qos.h"
#include "sched/scheduler.h"
#include "storage/bucket_store.h"
#include "storage/disk_model.h"

namespace liferaft::sched {

/// LifeRaft scheduler configuration.
struct LifeRaftConfig {
  /// Age bias in [0, 1] (paper's alpha).
  double alpha = 0.0;
  /// How U_t and A are blended (see metric.h).
  MetricNormalization normalization = MetricNormalization::kNormalized;
  /// Optional QoS age weighting (paper §6 future work); disabled by
  /// default.
  QosConfig qos;
  /// Price the U_t denominator's T_b by the store's real encoded page
  /// bytes instead of the kBytesPerObject estimate (see
  /// BucketStore::ModeledBucketBytes). Off by default so ranking — and
  /// therefore every run — is format-independent unless asked for.
  bool charge_encoded_bytes = false;
};

/// Aged-workload-throughput scheduler.
class LifeRaftScheduler : public Scheduler {
 public:
  /// @param store  supplies bucket sizes for the T_b term (not owned)
  /// @param model  disk cost model
  LifeRaftScheduler(const storage::BucketStore* store,
                    storage::DiskModel model, LifeRaftConfig config);

  std::string name() const override;

  /// Prices T_b per volume when a heterogeneous topology is attached (see
  /// sched::WorkloadThroughputOnVolume); uniform or null topologies keep
  /// the single-model ranking bit-for-bit.
  void AttachTopology(const storage::StorageTopology* topology) override {
    topology_ = topology;
  }

  std::optional<storage::BucketIndex> PickBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) override;

  /// The metric ranking is stateless, so the preview is exact at depth 1:
  /// element 0 is precisely what PickBucket would pick for the same
  /// queues/clock/cache. Deeper elements re-rank the remaining buckets
  /// with the earlier predictions excluded (their queues assumed drained),
  /// re-normalizing U_t and age maxima over the survivors each round.
  std::vector<storage::BucketIndex> PeekNextBuckets(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached, size_t k) const override;

  /// Bit-identical to the base reference loop (same widening boundaries,
  /// same coverage checks) but prices every candidate exactly once for
  /// the whole call instead of once per PeekNextBuckets(k) retry — the
  /// covering peek runs on every multi-volume pipeline step, where the
  /// from-scratch widening was a measured CPU sink in real-I/O mode.
  std::vector<storage::BucketIndex> PeekNextBucketsCovering(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached,
      const std::function<uint32_t(storage::BucketIndex)>& volume_of,
      const std::vector<size_t>& want_per_volume) const override;

  /// Adjusts alpha at runtime (used by the adaptive controller).
  void set_alpha(double alpha) { config_.alpha = alpha; }

  /// See LifeRaftConfig::charge_encoded_bytes (the engine forwards its own
  /// flag here so all T_b consumers price alike).
  void set_charge_encoded_bytes(bool on) { config_.charge_encoded_bytes = on; }
  double alpha() const { return config_.alpha; }
  const LifeRaftConfig& config() const { return config_; }

 private:
  /// Effective age of a queue under the QoS policy (plain oldest-request
  /// age when QoS is disabled).
  double EffectiveAge(const query::WorkloadQueue& queue,
                      const query::WorkloadManager& manager,
                      TimeMs now) const;

  /// One priced candidate: the per-bucket inputs to the aged-throughput
  /// score. U_t and age depend only on the queues/clock/cache — not on
  /// which earlier predictions were excluded — so a peek prices every
  /// active bucket once and runs its selection rounds over this cache.
  struct Candidate {
    storage::BucketIndex bucket;
    double ut;
    double age;
  };

  /// Prices every active bucket, in active-bucket order.
  std::vector<Candidate> PriceCandidates(const query::WorkloadManager& manager,
                                         TimeMs now,
                                         const CacheProbe& cached) const;

  /// One selection round: the best-scoring candidate with `taken[i]`
  /// false, maxima re-normalized over the survivors (exactly what ranking
  /// from scratch with the taken buckets excluded would compute). Returns
  /// candidates.size() when everything is taken.
  size_t SelectBest(const std::vector<Candidate>& candidates,
                    const std::vector<char>& taken) const;

  const storage::BucketStore* store_;
  storage::DiskModel model_;
  LifeRaftConfig config_;
  /// Optional volume map for per-volume T_b pricing (not owned; null =
  /// price every bucket with model_).
  const storage::StorageTopology* topology_ = nullptr;
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_LIFERAFT_SCHEDULER_H_
