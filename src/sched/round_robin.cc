#include "sched/round_robin.h"

#include <algorithm>

namespace liferaft::sched {

std::optional<storage::BucketIndex> RoundRobinScheduler::PickBucket(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached) {
  std::optional<storage::BucketIndex> pick =
      PeekNextBucket(manager, now, cached);
  if (pick.has_value()) cursor_ = *pick + 1;
  return pick;
}

std::vector<storage::BucketIndex> RoundRobinScheduler::PeekNextBuckets(
    const query::WorkloadManager& manager, TimeMs /*now*/,
    const CacheProbe& /*cached*/, size_t k) const {
  const auto& active = manager.active_buckets();
  std::vector<storage::BucketIndex> predicted;
  if (active.empty() || k == 0) return predicted;
  // Walk the cyclic sweep from the cursor; a full lap visits every active
  // bucket exactly once, so the prediction depth caps there.
  predicted.reserve(std::min(k, active.size()));
  auto it = active.lower_bound(cursor_);
  if (it == active.end()) it = active.begin();  // wrap the sweep
  while (predicted.size() < std::min(k, active.size())) {
    predicted.push_back(*it);
    if (++it == active.end()) it = active.begin();
  }
  return predicted;
}

}  // namespace liferaft::sched
