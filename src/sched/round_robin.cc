#include "sched/round_robin.h"

namespace liferaft::sched {

std::optional<storage::BucketIndex> RoundRobinScheduler::PickBucket(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached) {
  std::optional<storage::BucketIndex> pick =
      PeekNextBucket(manager, now, cached);
  if (pick.has_value()) cursor_ = *pick + 1;
  return pick;
}

std::optional<storage::BucketIndex> RoundRobinScheduler::PeekNextBucket(
    const query::WorkloadManager& manager, TimeMs /*now*/,
    const CacheProbe& /*cached*/) const {
  const auto& active = manager.active_buckets();
  if (active.empty()) return std::nullopt;
  auto it = active.lower_bound(cursor_);
  if (it == active.end()) it = active.begin();  // wrap the sweep
  return *it;
}

}  // namespace liferaft::sched
