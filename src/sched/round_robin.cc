#include "sched/round_robin.h"

namespace liferaft::sched {

std::optional<storage::BucketIndex> RoundRobinScheduler::PickBucket(
    const query::WorkloadManager& manager, TimeMs /*now*/,
    const CacheProbe& /*cached*/) {
  const auto& active = manager.active_buckets();
  if (active.empty()) return std::nullopt;
  auto it = active.lower_bound(cursor_);
  if (it == active.end()) it = active.begin();  // wrap the sweep
  cursor_ = *it + 1;
  return *it;
}

}  // namespace liferaft::sched
