#include "sched/least_sharable.h"

namespace liferaft::sched {

std::optional<storage::BucketIndex> LeastSharableScheduler::PickBucket(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached) {
  return PeekNextBucket(manager, now, cached);
}

std::optional<storage::BucketIndex> LeastSharableScheduler::PeekNextBucket(
    const query::WorkloadManager& manager, TimeMs /*now*/,
    const CacheProbe& /*cached*/) const {
  const auto& active = manager.active_buckets();
  if (active.empty()) return std::nullopt;
  storage::BucketIndex best = *active.begin();
  uint64_t best_size = manager.queue(best).total_objects();
  for (storage::BucketIndex b : active) {
    uint64_t size = manager.queue(b).total_objects();
    if (size < best_size) {
      best_size = size;
      best = b;
    }
  }
  return best;
}

}  // namespace liferaft::sched
