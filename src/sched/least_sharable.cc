#include "sched/least_sharable.h"

#include <algorithm>

namespace liferaft::sched {

namespace {

/// The single-pick min-scan: smallest queue, ties toward the lower bucket
/// index (active_buckets() iterates ascending, strict less keeps the
/// first).
std::optional<storage::BucketIndex> SmallestQueue(
    const query::WorkloadManager& manager) {
  const auto& active = manager.active_buckets();
  if (active.empty()) return std::nullopt;
  storage::BucketIndex best = *active.begin();
  uint64_t best_size = manager.queue(best).total_objects();
  for (storage::BucketIndex b : active) {
    uint64_t size = manager.queue(b).total_objects();
    if (size < best_size) {
      best_size = size;
      best = b;
    }
  }
  return best;
}

}  // namespace

std::optional<storage::BucketIndex> LeastSharableScheduler::PickBucket(
    const query::WorkloadManager& manager, TimeMs /*now*/,
    const CacheProbe& /*cached*/) {
  return SmallestQueue(manager);
}

std::vector<storage::BucketIndex> LeastSharableScheduler::PeekNextBuckets(
    const query::WorkloadManager& manager, TimeMs /*now*/,
    const CacheProbe& /*cached*/, size_t k) const {
  std::vector<storage::BucketIndex> predicted;
  if (k == 0) return predicted;
  if (k == 1) {
    // Keep every pick (and single-bucket preview) an allocation-free
    // linear scan.
    std::optional<storage::BucketIndex> best = SmallestQueue(manager);
    if (best.has_value()) predicted.push_back(*best);
    return predicted;
  }
  const auto& active = manager.active_buckets();
  if (active.empty()) return predicted;
  // Service order is ascending queue size; active_buckets() iterates in
  // ascending bucket order, so a stable sort on size preserves the
  // lower-index tie-break of the single-pick scan.
  std::vector<storage::BucketIndex> order(active.begin(), active.end());
  std::stable_sort(order.begin(), order.end(),
                   [&manager](storage::BucketIndex a, storage::BucketIndex b) {
                     return manager.queue(a).total_objects() <
                            manager.queue(b).total_objects();
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace liferaft::sched
