// Least-sharable-data-first baseline: the scheduling policy of Agrawal,
// Kifer & Olston's shared-scan Map-Reduce work, discussed (and argued
// against for scientific workloads) in the paper's §6. It services the
// bucket whose queue benefits *least* from co-scheduling with future
// arrivals — i.e. the smallest workload queue — betting that contentious
// buckets will accumulate even more sharing if deferred. LifeRaft argues
// the opposite (most contentious first) because deferring hot buckets
// inflates workload-queue buffering. bench_ablation_policy contrasts the
// two.

#ifndef LIFERAFT_SCHED_LEAST_SHARABLE_H_
#define LIFERAFT_SCHED_LEAST_SHARABLE_H_

#include <string>

#include "sched/scheduler.h"

namespace liferaft::sched {

/// Smallest-workload-queue-first policy.
class LeastSharableScheduler : public Scheduler {
 public:
  std::string name() const override { return "least-sharable"; }

  std::optional<storage::BucketIndex> PickBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) override;

  /// The smallest-queue ranking is stateless, so the preview is exact:
  /// the k smallest queues in service order (ascending size, ties toward
  /// the lower bucket index).
  std::vector<storage::BucketIndex> PeekNextBuckets(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached, size_t k) const override;
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_LEAST_SHARABLE_H_
