// Bucket-scheduler interface: given the current workload queues, pick the
// next bucket whose whole queue the Join Evaluator should service. LifeRaft,
// the round-robin baseline, and any future policy implement this; the
// per-query baselines (NoShare, IndexOnly) bypass bucket scheduling and are
// modes of the simulation engine instead.

#ifndef LIFERAFT_SCHED_SCHEDULER_H_
#define LIFERAFT_SCHED_SCHEDULER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "query/workload.h"
#include "storage/bucket.h"
#include "util/clock.h"

namespace liferaft::storage {
class StorageTopology;
}  // namespace liferaft::storage

namespace liferaft::sched {

/// Residency probe: phi(i) == 0 iff cached(i). Decouples schedulers from
/// the concrete cache type.
using CacheProbe = std::function<bool(storage::BucketIndex)>;

/// Strategy interface for choosing the next bucket batch.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Display name for reports (e.g. "liferaft(a=0.25)", "rr").
  virtual std::string name() const = 0;

  /// Attaches the storage topology so cost-based policies can price T_b
  /// with the disk model of the volume a bucket actually lives on
  /// (heterogeneous volume_disk makes T_b placement-dependent). The
  /// engines call this during setup; `topology` must outlive scheduling
  /// (may be null = single global model). Default: ignore — policies that
  /// never look at disk cost need no topology.
  virtual void AttachTopology(const storage::StorageTopology* topology) {
    (void)topology;
  }

  /// Picks the bucket to service next, or nullopt when no queue is
  /// non-empty. Must only return buckets in manager.active_buckets().
  virtual std::optional<storage::BucketIndex> PickBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) = 0;

  /// Previews the next `k` picks for the given state WITHOUT mutating any
  /// scheduler state — the prediction hook of the depth-K cross-batch
  /// prefetch pipeline (exec::BatchPipeline peeks at the likely next
  /// buckets while the current batch computes and starts their fetches
  /// early). The contract:
  ///  * element 0, when present, is exactly what PickBucket would return
  ///    for the same queues/clock/cache;
  ///  * element j predicts the pick after the first j predictions have
  ///    been served (their queues drained), so elements are distinct and
  ///    ordered by predicted service order;
  ///  * fewer than `k` elements are returned when fewer buckets have
  ///    pending work.
  /// The default declines to predict, which disables pipelining for the
  /// policy.
  virtual std::vector<storage::BucketIndex> PeekNextBuckets(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached, size_t k) const {
    (void)manager;
    (void)now;
    (void)cached;
    (void)k;
    return {};
  }

  /// Depth-1 convenience wrapper over PeekNextBuckets.
  std::optional<storage::BucketIndex> PeekNextBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) const {
    std::vector<storage::BucketIndex> peek =
        PeekNextBuckets(manager, now, cached, 1);
    if (peek.empty()) return std::nullopt;
    return peek.front();
  }

  /// Multi-volume prediction hook: the same predicted service order
  /// PeekNextBuckets yields, peeked deep enough that every volume v is
  /// represented by at least `want_per_volume[v]` of its own buckets —
  /// exposing per-volume candidates so the prefetch pipeline can keep
  /// every disk arm busy, not just the arms the front of the prediction
  /// happens to touch. `volume_of` maps a bucket to its volume (indices
  /// < want_per_volume.size()). The peek widens geometrically until
  /// coverage holds or the policy runs out of candidates, so the result
  /// is always a prefix-consistent extension of the plain peek: with one
  /// volume wanting k this is exactly PeekNextBuckets(k).
  ///
  /// Virtual so a policy whose per-prediction ranking is expensive can
  /// supply an equivalent implementation (see LifeRaftScheduler, which
  /// prices candidates once); an override must return the bit-identical
  /// sequence this reference loop would.
  virtual std::vector<storage::BucketIndex> PeekNextBucketsCovering(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached,
      const std::function<uint32_t(storage::BucketIndex)>& volume_of,
      const std::vector<size_t>& want_per_volume) const {
    // Cap every volume's want by the candidates it can actually supply —
    // asking for more than an arm has pending would make coverage
    // unsatisfiable and drive the widening loop into a full re-ranking of
    // every active bucket on every call (a drained arm is the common
    // end-of-run state). The returned *content* is unchanged: a peek
    // never yields more of a volume than its active buckets anyway.
    std::vector<size_t> want = want_per_volume;
    {
      std::vector<size_t> available(want.size(), 0);
      for (storage::BucketIndex b : manager.active_buckets()) {
        ++available[volume_of(b)];
      }
      for (size_t v = 0; v < want.size(); ++v) {
        want[v] = std::min(want[v], available[v]);
      }
    }
    size_t k = 0;
    for (size_t w : want) k += w;
    if (k == 0) return {};
    for (;;) {
      std::vector<storage::BucketIndex> predicted =
          PeekNextBuckets(manager, now, cached, k);
      // Fewer than asked: every candidate with pending work is already
      // included, so no wider peek can improve coverage.
      if (predicted.size() < k) return predicted;
      std::vector<size_t> have(want.size(), 0);
      for (storage::BucketIndex b : predicted) ++have[volume_of(b)];
      bool covered = true;
      for (size_t v = 0; v < want.size(); ++v) {
        if (have[v] < want[v]) {
          covered = false;
          break;
        }
      }
      if (covered) return predicted;
      k *= 2;
    }
  }
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_SCHEDULER_H_
