// Bucket-scheduler interface: given the current workload queues, pick the
// next bucket whose whole queue the Join Evaluator should service. LifeRaft,
// the round-robin baseline, and any future policy implement this; the
// per-query baselines (NoShare, IndexOnly) bypass bucket scheduling and are
// modes of the simulation engine instead.

#ifndef LIFERAFT_SCHED_SCHEDULER_H_
#define LIFERAFT_SCHED_SCHEDULER_H_

#include <functional>
#include <optional>
#include <string>

#include "query/workload.h"
#include "storage/bucket.h"
#include "util/clock.h"

namespace liferaft::sched {

/// Residency probe: phi(i) == 0 iff cached(i). Decouples schedulers from
/// the concrete cache type.
using CacheProbe = std::function<bool(storage::BucketIndex)>;

/// Strategy interface for choosing the next bucket batch.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Display name for reports (e.g. "liferaft(a=0.25)", "rr").
  virtual std::string name() const = 0;

  /// Picks the bucket to service next, or nullopt when no queue is
  /// non-empty. Must only return buckets in manager.active_buckets().
  virtual std::optional<storage::BucketIndex> PickBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) = 0;

  /// Previews the bucket PickBucket would choose for the given state
  /// WITHOUT mutating any scheduler state — the prediction hook of the
  /// cross-batch prefetch pipeline (the engine peeks at the likely next
  /// bucket while the current batch computes and starts its fetch early).
  /// The default declines to predict, which disables pipelining for the
  /// policy.
  virtual std::optional<storage::BucketIndex> PeekNextBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) const {
    (void)manager;
    (void)now;
    (void)cached;
    return std::nullopt;
  }
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_SCHEDULER_H_
