// Bucket-scheduler interface: given the current workload queues, pick the
// next bucket whose whole queue the Join Evaluator should service. LifeRaft,
// the round-robin baseline, and any future policy implement this; the
// per-query baselines (NoShare, IndexOnly) bypass bucket scheduling and are
// modes of the simulation engine instead.

#ifndef LIFERAFT_SCHED_SCHEDULER_H_
#define LIFERAFT_SCHED_SCHEDULER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "query/workload.h"
#include "storage/bucket.h"
#include "util/clock.h"

namespace liferaft::sched {

/// Residency probe: phi(i) == 0 iff cached(i). Decouples schedulers from
/// the concrete cache type.
using CacheProbe = std::function<bool(storage::BucketIndex)>;

/// Strategy interface for choosing the next bucket batch.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Display name for reports (e.g. "liferaft(a=0.25)", "rr").
  virtual std::string name() const = 0;

  /// Picks the bucket to service next, or nullopt when no queue is
  /// non-empty. Must only return buckets in manager.active_buckets().
  virtual std::optional<storage::BucketIndex> PickBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) = 0;

  /// Previews the next `k` picks for the given state WITHOUT mutating any
  /// scheduler state — the prediction hook of the depth-K cross-batch
  /// prefetch pipeline (exec::BatchPipeline peeks at the likely next
  /// buckets while the current batch computes and starts their fetches
  /// early). The contract:
  ///  * element 0, when present, is exactly what PickBucket would return
  ///    for the same queues/clock/cache;
  ///  * element j predicts the pick after the first j predictions have
  ///    been served (their queues drained), so elements are distinct and
  ///    ordered by predicted service order;
  ///  * fewer than `k` elements are returned when fewer buckets have
  ///    pending work.
  /// The default declines to predict, which disables pipelining for the
  /// policy.
  virtual std::vector<storage::BucketIndex> PeekNextBuckets(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached, size_t k) const {
    (void)manager;
    (void)now;
    (void)cached;
    (void)k;
    return {};
  }

  /// Depth-1 convenience wrapper over PeekNextBuckets.
  std::optional<storage::BucketIndex> PeekNextBucket(
      const query::WorkloadManager& manager, TimeMs now,
      const CacheProbe& cached) const {
    std::vector<storage::BucketIndex> peek =
        PeekNextBuckets(manager, now, cached, 1);
    if (peek.empty()) return std::nullopt;
    return peek.front();
  }
};

}  // namespace liferaft::sched

#endif  // LIFERAFT_SCHED_SCHEDULER_H_
