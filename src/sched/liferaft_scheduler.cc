#include "sched/liferaft_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <vector>

#include "storage/bucket.h"

namespace liferaft::sched {

LifeRaftScheduler::LifeRaftScheduler(const storage::BucketStore* store,
                                     storage::DiskModel model,
                                     LifeRaftConfig config)
    : store_(store), model_(model), config_(config) {
  assert(store_ != nullptr);
  assert(config_.alpha >= 0.0 && config_.alpha <= 1.0);
}

std::string LifeRaftScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "liferaft(a=%.2f)", config_.alpha);
  return buf;
}

double LifeRaftScheduler::EffectiveAge(const query::WorkloadQueue& queue,
                                       const query::WorkloadManager& manager,
                                       TimeMs now) const {
  if (!config_.qos.depreciate_long_queries) return queue.AgeMs(now);
  double best = 0.0;
  for (const query::WorkloadEntry& e : queue.entries()) {
    double weight =
        QosAgeWeight(config_.qos, manager.PendingParts(e.query_id));
    double age = (now - e.arrival_ms) * weight;
    if (age > best) best = age;
  }
  return best;
}

std::optional<storage::BucketIndex> LifeRaftScheduler::PickBucket(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached) {
  std::vector<Candidate> candidates = PriceCandidates(manager, now, cached);
  const size_t best =
      SelectBest(candidates, std::vector<char>(candidates.size(), 0));
  if (best == candidates.size()) return std::nullopt;
  return candidates[best].bucket;
}

std::vector<storage::BucketIndex> LifeRaftScheduler::PeekNextBuckets(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached, size_t k) const {
  // Rank iteratively: each prediction assumes the previous ones were
  // served (queue drained → no longer a candidate) and re-normalizes the
  // metric over the survivors, exactly as PickBucket would see them. The
  // per-bucket U_t and age are invariant across rounds, so they are
  // priced once; only the maxima and scores are re-taken per round. (The
  // deep peeks PeekNextBucketsCovering issues on multi-volume topologies
  // made the from-scratch re-ranking a measured CPU sink in real-I/O
  // mode.)
  std::vector<Candidate> candidates = PriceCandidates(manager, now, cached);
  std::vector<char> taken(candidates.size(), 0);
  std::vector<storage::BucketIndex> predicted;
  predicted.reserve(std::min(k, candidates.size()));
  while (predicted.size() < k) {
    const size_t best = SelectBest(candidates, taken);
    if (best == candidates.size()) break;
    taken[best] = 1;
    predicted.push_back(candidates[best].bucket);
  }
  return predicted;
}

std::vector<storage::BucketIndex> LifeRaftScheduler::PeekNextBucketsCovering(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached,
    const std::function<uint32_t(storage::BucketIndex)>& volume_of,
    const std::vector<size_t>& want_per_volume) const {
  // Mirrors the base reference loop exactly — per-volume wants capped by
  // availability, coverage tested only at the geometric boundaries k0,
  // 2*k0, ... of the widening schedule, exhaustion returning whatever was
  // predicted — but selects incrementally over candidates priced ONCE.
  // PeekNextBuckets is prefix-consistent (round j's selection never
  // depends on how deep the peek will go), so extending the prediction in
  // place yields the same sequence the base loop's from-scratch
  // PeekNextBuckets(k) retries would.
  std::vector<size_t> want = want_per_volume;
  {
    std::vector<size_t> available(want.size(), 0);
    for (storage::BucketIndex b : manager.active_buckets()) {
      ++available[volume_of(b)];
    }
    for (size_t v = 0; v < want.size(); ++v) {
      want[v] = std::min(want[v], available[v]);
    }
  }
  size_t k0 = 0;
  for (size_t w : want) k0 += w;
  if (k0 == 0) return {};

  std::vector<Candidate> candidates = PriceCandidates(manager, now, cached);
  std::vector<char> taken(candidates.size(), 0);
  std::vector<storage::BucketIndex> predicted;
  std::vector<size_t> have(want.size(), 0);
  for (size_t boundary = k0;; boundary *= 2) {
    while (predicted.size() < boundary) {
      const size_t best = SelectBest(candidates, taken);
      // Fewer candidates than the boundary asks for: every bucket with
      // pending work is already predicted, so no wider peek can improve
      // coverage.
      if (best == candidates.size()) return predicted;
      taken[best] = 1;
      predicted.push_back(candidates[best].bucket);
      ++have[volume_of(candidates[best].bucket)];
    }
    bool covered = true;
    for (size_t v = 0; v < want.size(); ++v) {
      if (have[v] < want[v]) {
        covered = false;
        break;
      }
    }
    if (covered) return predicted;
  }
}

std::vector<LifeRaftScheduler::Candidate> LifeRaftScheduler::PriceCandidates(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached) const {
  const auto& active = manager.active_buckets();
  std::vector<Candidate> candidates;
  candidates.reserve(active.size());
  for (storage::BucketIndex b : active) {
    const query::WorkloadQueue& queue = manager.queue(b);
    uint64_t bytes =
        store_->ModeledBucketBytes(b, config_.charge_encoded_bytes);
    double ut = WorkloadThroughputOnVolume(topology_, model_, b,
                                           queue.total_objects(), bytes,
                                           cached(b));
    double age = EffectiveAge(queue, manager, now);
    candidates.push_back(Candidate{b, ut, age});
  }
  return candidates;
}

size_t LifeRaftScheduler::SelectBest(const std::vector<Candidate>& candidates,
                                     const std::vector<char>& taken) const {
  // Pass 1: maxima for normalization over the surviving candidates.
  double ut_max = 0.0;
  double age_max = 0.0;
  size_t first = candidates.size();
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (taken[i]) continue;
    if (first == candidates.size()) first = i;
    ut_max = std::max(ut_max, candidates[i].ut);
    age_max = std::max(age_max, candidates[i].age);
  }
  if (first == candidates.size()) return candidates.size();

  // Pass 2: rank by U_a. Ties break toward the earlier (lower-index)
  // candidate so runs are deterministic.
  size_t best = first;
  double best_score = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (taken[i]) continue;
    const Candidate& c = candidates[i];
    double score =
        config_.normalization == MetricNormalization::kRawPaper
            ? AgedThroughputRaw(c.ut, c.age, config_.alpha)
            : AgedThroughputNormalized(c.ut, ut_max, c.age, age_max,
                                       config_.alpha);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace liferaft::sched
