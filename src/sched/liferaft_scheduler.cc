#include "sched/liferaft_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <vector>

#include "storage/bucket.h"

namespace liferaft::sched {

LifeRaftScheduler::LifeRaftScheduler(const storage::BucketStore* store,
                                     storage::DiskModel model,
                                     LifeRaftConfig config)
    : store_(store), model_(model), config_(config) {
  assert(store_ != nullptr);
  assert(config_.alpha >= 0.0 && config_.alpha <= 1.0);
}

std::string LifeRaftScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "liferaft(a=%.2f)", config_.alpha);
  return buf;
}

double LifeRaftScheduler::EffectiveAge(const query::WorkloadQueue& queue,
                                       const query::WorkloadManager& manager,
                                       TimeMs now) const {
  if (!config_.qos.depreciate_long_queries) return queue.AgeMs(now);
  double best = 0.0;
  for (const query::WorkloadEntry& e : queue.entries()) {
    double weight =
        QosAgeWeight(config_.qos, manager.PendingParts(e.query_id));
    double age = (now - e.arrival_ms) * weight;
    if (age > best) best = age;
  }
  return best;
}

std::optional<storage::BucketIndex> LifeRaftScheduler::PickBucket(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached) {
  return RankBest(manager, now, cached, {});
}

std::vector<storage::BucketIndex> LifeRaftScheduler::PeekNextBuckets(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached, size_t k) const {
  // Rank iteratively: each prediction assumes the previous ones were
  // served (queue drained → no longer a candidate) and re-normalizes the
  // metric over the survivors, exactly as PickBucket would see them.
  std::vector<storage::BucketIndex> predicted;
  predicted.reserve(k);
  while (predicted.size() < k) {
    std::optional<storage::BucketIndex> next =
        RankBest(manager, now, cached, predicted);
    if (!next.has_value()) break;
    predicted.push_back(*next);
  }
  return predicted;
}

std::optional<storage::BucketIndex> LifeRaftScheduler::RankBest(
    const query::WorkloadManager& manager, TimeMs now,
    const CacheProbe& cached,
    const std::vector<storage::BucketIndex>& excluded) const {
  const auto& active = manager.active_buckets();
  if (active.empty()) return std::nullopt;

  // Pass 1: per-bucket U_t and age (and their maxima for normalization).
  struct Candidate {
    storage::BucketIndex bucket;
    double ut;
    double age;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(active.size());
  double ut_max = 0.0;
  double age_max = 0.0;
  for (storage::BucketIndex b : active) {
    if (std::find(excluded.begin(), excluded.end(), b) != excluded.end()) {
      continue;
    }
    const query::WorkloadQueue& queue = manager.queue(b);
    uint64_t bytes =
        store_->ModeledBucketBytes(b, config_.charge_encoded_bytes);
    double ut = WorkloadThroughputOnVolume(topology_, model_, b,
                                           queue.total_objects(), bytes,
                                           cached(b));
    double age = EffectiveAge(queue, manager, now);
    ut_max = std::max(ut_max, ut);
    age_max = std::max(age_max, age);
    candidates.push_back(Candidate{b, ut, age});
  }

  if (candidates.empty()) return std::nullopt;  // everything excluded

  // Pass 2: rank by U_a. Ties break toward the lower bucket index so runs
  // are deterministic.
  storage::BucketIndex best = candidates.front().bucket;
  double best_score = -1.0;
  for (const Candidate& c : candidates) {
    double score =
        config_.normalization == MetricNormalization::kRawPaper
            ? AgedThroughputRaw(c.ut, c.age, config_.alpha)
            : AgedThroughputNormalized(c.ut, ut_max, c.age, age_max,
                                       config_.alpha);
    if (score > best_score) {
      best_score = score;
      best = c.bucket;
    }
  }
  return best;
}

}  // namespace liferaft::sched
