// Asynchronous bucket reads: per-volume submission queues feeding dedicated
// I/O worker threads, with completions delivered on the caller's thread.
//
//   owner thread                      volume 0 worker      volume 1 worker
//   ------------                      ---------------      ---------------
//   SubmitRead(b, cb) ──┬─ enqueue ─► [ b7 b3 ]
//   SubmitRead(b', cb') ┴─ enqueue ──────────────────────► [ b4 ]
//        ...                          pread+crc+decode     pread+crc+decode
//   Poll()/Wait() ◄── completion queue ◄──┴──────────────────┘
//     └─ invokes cb(completion) in completion order, owner thread only
//
// The queue per volume is the arm model made physical: one outstanding
// read per arm at a time (the worker), requests behind it queueing exactly
// like the virtual clock's per-arm `arm_free_ms`. Reads themselves are
// positional pread(2) calls, so workers never contend on store state —
// the serialization point is the submission queue, not a lock around I/O.
//
// Completion callbacks NEVER run on a worker thread: workers only move
// finished reads to the completion queue; Poll()/Wait() invoke callbacks
// on the calling (owner) thread. The owner can therefore touch caches and
// accounting from callbacks without any locking. Destroying the reader
// joins all workers; submitted-but-undelivered work is discarded (buckets
// freed, callbacks dropped) — shutdown with reads in flight leaks nothing.

#ifndef LIFERAFT_STORAGE_ASYNC_IO_H_
#define LIFERAFT_STORAGE_ASYNC_IO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "storage/bucket.h"
#include "util/status.h"

namespace liferaft::storage {

class BucketStore;
class StorageTopology;

/// One finished asynchronous read, delivered via Poll()/Wait().
struct AsyncReadCompletion {
  /// Ticket returned by the SubmitRead that started this read.
  uint64_t ticket = 0;
  BucketIndex index = 0;
  /// Volume (submission queue) the read ran on.
  uint32_t volume = 0;
  /// OK, or the read's failure (I/O error, checksum mismatch, fault
  /// injection); `bucket` is null iff !status.ok().
  Status status;
  std::shared_ptr<const Bucket> bucket;
  /// Measured wall-clock submit -> completion time. Includes queue wait —
  /// that is the point: it is the latency the arm's backlog produced.
  double latency_ms = 0.0;
  /// Encoded bytes moved for this read (0 on failure).
  uint64_t bytes = 0;
};

/// Invoked by Poll()/Wait() on the calling thread, once per completion.
using AsyncReadCallback = std::function<void(const AsyncReadCompletion&)>;

/// Wall-clock telemetry of one volume's submission queue.
struct AsyncVolumeStats {
  uint64_t reads = 0;             ///< completed reads (incl. failures)
  uint64_t bytes = 0;             ///< encoded bytes of successful reads
  uint64_t failures = 0;          ///< reads that returned a non-OK Status
  uint64_t checksum_failures = 0; ///< the kCorruption subset of failures
  uint64_t max_queue_depth = 0;   ///< high-water mark of queued requests
  double total_latency_ms = 0.0;  ///< sum of completion latencies
  double p50_latency_ms = 0.0;    ///< median completion latency
  double p99_latency_ms = 0.0;    ///< tail completion latency
};

/// Asynchronous read session over a BucketStore. Obtain via
/// BucketStore::NewAsyncReader. Submit from one owner thread; Poll/Wait
/// from that same thread (the completion queue itself is thread-safe, but
/// callback delivery order is only meaningful single-threaded).
class AsyncReader {
 public:
  virtual ~AsyncReader() = default;

  /// Enqueues a read of bucket `index` on its volume's submission queue
  /// and returns a ticket (monotonically increasing from 1). `done` runs
  /// on the Poll()/Wait() caller's thread when the read completes.
  virtual uint64_t SubmitRead(BucketIndex index, AsyncReadCallback done) = 0;

  /// Delivers every completion that is ready right now (invoking its
  /// callback); never blocks. Returns the number delivered.
  virtual size_t Poll() = 0;

  /// Blocks until at least one completion is ready, then delivers all
  /// ready completions. Returns immediately with 0 when nothing is in
  /// flight.
  virtual size_t Wait() = 0;

  /// Wait() in a loop until every submitted read has been delivered.
  virtual void Drain() = 0;

  /// Reads submitted but not yet delivered through Poll()/Wait().
  virtual size_t in_flight() const = 0;

  /// Snapshot of per-volume queue telemetry (percentiles computed over
  /// all completed reads so far).
  virtual std::vector<AsyncVolumeStats> VolumeStats() const = 0;
};

/// The default AsyncReader: one worker thread + FIFO submission queue per
/// volume of `topology` (one queue total when null), reads served through
/// store->ReadBucketForPrefetchScratch on the worker. Requires
/// store->SupportsConcurrentReads(). The store and topology are borrowed
/// and must outlive the reader.
std::unique_ptr<AsyncReader> MakeQueuedAsyncReader(
    BucketStore* store, const StorageTopology* topology);

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_ASYNC_IO_H_
