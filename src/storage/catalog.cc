#include "storage/catalog.h"

#include <algorithm>

#include "storage/partitioner.h"

namespace liferaft::storage {

Result<std::unique_ptr<Catalog>> Catalog::Build(
    std::vector<CatalogObject> objects, const CatalogOptions& options) {
  if (options.objects_per_bucket == 0) {
    return Status::InvalidArgument("objects_per_bucket must be > 0");
  }
  auto catalog = std::unique_ptr<Catalog>(new Catalog());
  catalog->num_objects_ = objects.size();

  std::optional<std::vector<CatalogObject>> index_copy;
  if (options.build_index) {
    index_copy = objects;  // keep a copy for the index before moving
  }

  LIFERAFT_ASSIGN_OR_RETURN(
      PartitionResult partition,
      PartitionCatalog(std::move(objects), options.objects_per_bucket));
  catalog->store_ = std::make_unique<MemStore>(std::move(partition));

  if (index_copy.has_value()) {
    std::sort(index_copy->begin(), index_copy->end(), ObjectHtmLess);
    LIFERAFT_ASSIGN_OR_RETURN(BTreeIndex index,
                              BTreeIndex::BulkLoad(std::move(*index_copy)));
    catalog->index_ = std::move(index);
  }
  return catalog;
}

Result<std::unique_ptr<Catalog>> Catalog::FromStore(
    std::unique_ptr<BucketStore> store, bool build_index) {
  if (store == nullptr) {
    return Status::InvalidArgument("store must not be null");
  }
  auto catalog = std::unique_ptr<Catalog>(new Catalog());
  catalog->store_ = std::move(store);

  size_t num_objects = 0;
  for (BucketIndex b = 0; b < catalog->store_->num_buckets(); ++b) {
    num_objects += catalog->store_->BucketObjectCount(b);
  }
  catalog->num_objects_ = num_objects;

  if (build_index) {
    std::vector<CatalogObject> objects;
    objects.reserve(num_objects);
    for (BucketIndex b = 0; b < catalog->store_->num_buckets(); ++b) {
      LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const Bucket> bucket,
                                catalog->store_->ReadBucket(b));
      const std::vector<CatalogObject>& objs = bucket->objects();
      objects.insert(objects.end(), objs.begin(), objs.end());
    }
    // Buckets arrive in curve order with sorted contents, but re-sort in
    // case a store implementation relaxes that.
    std::sort(objects.begin(), objects.end(), ObjectHtmLess);
    LIFERAFT_ASSIGN_OR_RETURN(BTreeIndex index,
                              BTreeIndex::BulkLoad(std::move(objects)));
    catalog->index_ = std::move(index);
    // The index build read every bucket; start runs with a clean ledger.
    catalog->store_->ResetStats();
  }
  return catalog;
}

}  // namespace liferaft::storage
