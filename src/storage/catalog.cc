#include "storage/catalog.h"

#include <algorithm>

#include "storage/partitioner.h"

namespace liferaft::storage {

Result<std::unique_ptr<Catalog>> Catalog::Build(
    std::vector<CatalogObject> objects, const CatalogOptions& options) {
  if (options.objects_per_bucket == 0) {
    return Status::InvalidArgument("objects_per_bucket must be > 0");
  }
  auto catalog = std::unique_ptr<Catalog>(new Catalog());
  catalog->num_objects_ = objects.size();

  std::optional<std::vector<CatalogObject>> index_copy;
  if (options.build_index) {
    index_copy = objects;  // keep a copy for the index before moving
  }

  LIFERAFT_ASSIGN_OR_RETURN(
      PartitionResult partition,
      PartitionCatalog(std::move(objects), options.objects_per_bucket));
  catalog->store_ = std::make_unique<MemStore>(std::move(partition));

  if (index_copy.has_value()) {
    std::sort(index_copy->begin(), index_copy->end(), ObjectHtmLess);
    LIFERAFT_ASSIGN_OR_RETURN(BTreeIndex index,
                              BTreeIndex::BulkLoad(std::move(*index_copy)));
    catalog->index_ = std::move(index);
  }
  return catalog;
}

}  // namespace liferaft::storage
