// The v2 columnar bucket page: one bucket's objects stored column-major in
// a single checksummed byte buffer, scanned in place by the join kernels.
//
// Page layout (all integers little-endian, offsets relative to page start):
//
//   [page header, 60 bytes]
//     0   page magic u32        "LFP2"
//     4   page version u32      = 2
//     8   object count u32
//     12  object-id encoding u8 | 3 zero pad bytes
//     16  range_lo u64 | range_hi u64       (inclusive HTM range)
//     32  column offsets u32 x 6: ids, object_id, ra, dec, mag, color
//     56  crc offset u32                    (== encoded payload end)
//   [ids column]      sorted HTM ids, delta + varint (util/coding.h)
//   [object_id column] kSequential: base varint64 (ids are base..base+n-1)
//                      kPackedFor:  base varint64 | bit width u8 | packed
//                                   little-endian (id - base) at `width`
//                                   bits each
//   [zero padding to the next 8-byte boundary]
//   [ra column]       count x f64   — 8-aligned, scanned zero-copy
//   [dec column]      count x f64   — 8-aligned, scanned zero-copy
//   [mag column]      count x f32   — 4-aligned, scanned zero-copy
//   [color column]    count x f32   — 4-aligned, scanned zero-copy
//   [page crc u32]    Crc32 (util/crc32.h) over [0, crc offset)
//
// The fixed-width position/attribute columns are stored raw so a
// ColumnarBucketView can hand out std::span views straight off the cached
// page bytes (little-endian hosts; the same assumption every fixed-width
// decode in util/coding.h optimizes to). The unit-vector position is
// recomputed from ra/dec on first use — same doubles in, same bits out as
// the v1 row decode, which is what keeps join results byte-identical
// across formats.
//
// Parse() validates structure, checksum, and the decoded id column (in
// range, monotone by construction of the delta code) and returns a clean
// Status on any corruption; no decoded state outlives a failed Parse.

#ifndef LIFERAFT_STORAGE_COLUMNAR_H_
#define LIFERAFT_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "geom/vec3.h"
#include "htm/range_set.h"
#include "storage/object.h"
#include "util/status.h"

namespace liferaft::storage {

class Bucket;

/// Byte offsets of the fixed page-header fields (shared with tests that
/// craft corrupt pages deliberately).
struct ColumnarPageLayout {
  static constexpr uint32_t kPageMagic = 0x3250464C;  // "LFP2"
  static constexpr uint32_t kPageVersion = 2;
  static constexpr size_t kCountOffset = 8;
  static constexpr size_t kOidEncodingOffset = 12;
  static constexpr size_t kRangeLoOffset = 16;
  static constexpr size_t kRangeHiOffset = 24;
  static constexpr size_t kColumnOffsets = 32;  // 6 x u32
  static constexpr size_t kCrcOffsetField = 56;
  static constexpr size_t kHeaderBytes = 60;
};

/// How the object_id column is encoded (header byte 12).
enum class ObjectIdEncoding : uint8_t {
  /// ids are exactly base..base+count-1 (clustered-index catalogs; the
  /// generator assigns ids in HTM-curve order, so every bucket — a
  /// contiguous slice of the curve — hits this). Payload: base varint64.
  kSequential = 0,
  /// Frame-of-reference bit packing: base varint64, bit width u8, then
  /// (id - base) packed little-endian at `width` bits each.
  kPackedFor = 1,
};

/// Serializes one bucket's objects into a v2 page, appended to `*out`.
void EncodeColumnarPage(const Bucket& bucket, std::string* out);

/// One parsed, validated, immutable columnar page. Owns the page bytes;
/// shared between the cache, in-flight prefetches, and scan slices.
class ColumnarPage {
 public:
  /// Takes ownership of `data` (a full page of `size` bytes, 8-aligned as
  /// operator new[] guarantees) and validates everything up front except
  /// the lazily materialized derived state.
  static Result<std::shared_ptr<const ColumnarPage>> Parse(
      std::unique_ptr<char[]> data, size_t size);

  size_t size() const { return ids_.size(); }
  const htm::IdRange& range() const { return range_; }
  uint64_t encoded_bytes() const { return encoded_bytes_; }

  /// The decoded sorted HTM-id column (monotone non-decreasing, every id
  /// inside range()).
  std::span<const htm::HtmId> ids() const { return ids_; }

  /// Fixed-width columns, zero-copy views into the page bytes.
  std::span<const double> ra() const { return {ra_, size()}; }
  std::span<const double> dec() const { return {dec_, size()}; }
  std::span<const float> mag() const { return {mag_, size()}; }
  std::span<const float> color() const { return {color_, size()}; }

  /// Object id at row `i` (O(1) for both encodings; no materialized
  /// column).
  uint64_t object_id(size_t i) const {
    if (oid_encoding_ == ObjectIdEncoding::kSequential) return oid_base_ + i;
    return oid_base_ + UnpackFor(i);
  }

  /// Unit-vector positions, materialized from ra/dec on first use
  /// (thread-safe; scan slices share one page). Bit-identical to the v1
  /// row decode's cached pos.
  std::span<const Vec3> positions() const;

  /// Full rows, materialized on first use for row-oriented consumers
  /// (ZoneIndex, tools, legacy tests). Sorted by (htm_id, object_id) like
  /// every v1 bucket.
  const std::vector<CatalogObject>& rows() const;

  /// Row `i` materialized alone (match output, predicate application on
  /// the slow path).
  CatalogObject MaterializeObject(size_t i) const;

 private:
  ColumnarPage() = default;

  uint64_t UnpackFor(size_t i) const;

  std::unique_ptr<char[]> data_;
  uint64_t encoded_bytes_ = 0;
  htm::IdRange range_{0, 0};
  std::vector<htm::HtmId> ids_;
  ObjectIdEncoding oid_encoding_ = ObjectIdEncoding::kSequential;
  uint64_t oid_base_ = 0;
  uint8_t oid_width_ = 0;
  const char* oid_packed_ = nullptr;
  const double* ra_ = nullptr;
  const double* dec_ = nullptr;
  const float* mag_ = nullptr;
  const float* color_ = nullptr;

  mutable std::once_flag pos_once_;
  mutable std::vector<Vec3> pos_;
  mutable std::once_flag rows_once_;
  mutable std::vector<CatalogObject> rows_;
};

/// Lightweight scan handle over one page: the join kernels' zero-copy
/// interface (binary search over the id column, column spans, per-row
/// materialization only on match). Copyable; borrows the page.
class ColumnarBucketView {
 public:
  explicit ColumnarBucketView(const ColumnarPage* page) : page_(page) {}

  size_t size() const { return page_->size(); }
  const htm::IdRange& range() const { return page_->range(); }
  std::span<const htm::HtmId> ids() const { return page_->ids(); }
  std::span<const Vec3> positions() const { return page_->positions(); }
  std::span<const double> ra() const { return page_->ra(); }
  std::span<const double> dec() const { return page_->dec(); }
  std::span<const float> mag() const { return page_->mag(); }
  std::span<const float> color() const { return page_->color(); }
  uint64_t object_id(size_t i) const { return page_->object_id(i); }
  CatalogObject MaterializeObject(size_t i) const {
    return page_->MaterializeObject(i);
  }

  /// Row index window [first, last) of ids in [lo, hi] (binary search on
  /// the sorted id column; mirrors Bucket::ObjectsInRange).
  std::pair<size_t, size_t> EqualRange(htm::HtmId lo, htm::HtmId hi) const;

 private:
  const ColumnarPage* page_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_COLUMNAR_H_
