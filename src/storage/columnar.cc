#include "storage/columnar.h"

#include <algorithm>
#include <cassert>

#include "geom/spherical.h"
#include "storage/bucket.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace liferaft::storage {
namespace {

using Layout = ColumnarPageLayout;

void PokeFixed32(std::string* s, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*s)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

/// Appends the low `width` bits of `v` to the little-endian bit stream
/// (`acc`/`nbits` carry the partial byte between calls; nbits < 8).
void AppendBits(std::string* out, uint64_t v, unsigned width, uint32_t* acc,
                unsigned* nbits) {
  unsigned done = 0;
  while (done < width) {
    const unsigned take = std::min<unsigned>(8 - *nbits, width - done);
    *acc |= static_cast<uint32_t>((v >> done) & ((uint64_t{1} << take) - 1))
            << *nbits;
    *nbits += take;
    done += take;
    if (*nbits == 8) {
      out->push_back(static_cast<char>(*acc));
      *acc = 0;
      *nbits = 0;
    }
  }
}

unsigned BitsFor(uint64_t v) {
  unsigned bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

}  // namespace

void EncodeColumnarPage(const Bucket& bucket, std::string* out) {
  const std::vector<CatalogObject>& objects = bucket.objects();
  const uint32_t count = static_cast<uint32_t>(objects.size());
  std::string page(Layout::kHeaderBytes, '\0');
  PokeFixed32(&page, 0, Layout::kPageMagic);
  PokeFixed32(&page, 4, Layout::kPageVersion);
  PokeFixed32(&page, Layout::kCountOffset, count);
  {
    std::string fixed;
    PutFixed64(&fixed, bucket.range().lo);
    PutFixed64(&fixed, bucket.range().hi);
    page.replace(Layout::kRangeLoOffset, 16, fixed);
  }

  uint32_t col[6];

  // Sorted HTM-id column, delta + varint.
  col[0] = static_cast<uint32_t>(page.size());
  std::vector<uint64_t> ids;
  ids.reserve(count);
  for (const CatalogObject& o : objects) ids.push_back(o.htm_id);
  PutDeltaVarint64(&page, ids);

  // Object-id column: sequential runs (clustered-index catalogs) collapse
  // to just the base; anything else gets frame-of-reference bit packing.
  col[1] = static_cast<uint32_t>(page.size());
  const uint64_t base = count == 0 ? 0 : objects.front().object_id;
  bool sequential = true;
  uint64_t max_delta = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t oid = objects[i].object_id;
    if (oid != base + i) sequential = false;
    if (oid < base) sequential = false;  // guarded below by min-base scan
    max_delta = std::max(max_delta, oid - std::min(oid, base));
  }
  uint64_t for_base = base;
  if (!sequential) {
    for_base = UINT64_MAX;
    for (const CatalogObject& o : objects) {
      for_base = std::min(for_base, o.object_id);
    }
    if (count == 0) for_base = 0;
    max_delta = 0;
    for (const CatalogObject& o : objects) {
      max_delta = std::max(max_delta, o.object_id - for_base);
    }
  }
  if (sequential) {
    page[Layout::kOidEncodingOffset] =
        static_cast<char>(ObjectIdEncoding::kSequential);
    PutVarint64(&page, base);
  } else {
    page[Layout::kOidEncodingOffset] =
        static_cast<char>(ObjectIdEncoding::kPackedFor);
    PutVarint64(&page, for_base);
    const unsigned width = BitsFor(max_delta);
    page.push_back(static_cast<char>(width));
    uint32_t acc = 0;
    unsigned nbits = 0;
    for (const CatalogObject& o : objects) {
      AppendBits(&page, o.object_id - for_base, width, &acc, &nbits);
    }
    if (nbits > 0) page.push_back(static_cast<char>(acc));
  }

  // Zero padding so the f64 columns start 8-aligned relative to the page
  // (reads load whole pages into fresh 8-aligned buffers, so page-relative
  // alignment is buffer alignment).
  while (page.size() % 8 != 0) page.push_back('\0');

  col[2] = static_cast<uint32_t>(page.size());
  for (const CatalogObject& o : objects) PutDouble(&page, o.ra_deg);
  col[3] = static_cast<uint32_t>(page.size());
  for (const CatalogObject& o : objects) PutDouble(&page, o.dec_deg);
  col[4] = static_cast<uint32_t>(page.size());
  for (const CatalogObject& o : objects) PutFloat(&page, o.mag);
  col[5] = static_cast<uint32_t>(page.size());
  for (const CatalogObject& o : objects) PutFloat(&page, o.color);

  for (int c = 0; c < 6; ++c) {
    PokeFixed32(&page, Layout::kColumnOffsets + 4 * c, col[c]);
  }
  PokeFixed32(&page, Layout::kCrcOffsetField,
              static_cast<uint32_t>(page.size()));
  const uint32_t crc = Crc32(page.data(), page.size());
  PutFixed32(&page, crc);
  out->append(page);
}

Result<std::shared_ptr<const ColumnarPage>> ColumnarPage::Parse(
    std::unique_ptr<char[]> data, size_t size) {
  const char* p = data.get();
  auto corrupt = [](const std::string& what) {
    return Status::Corruption("columnar page: " + what);
  };
  if (size < Layout::kHeaderBytes + 4) return corrupt("page too small");
  if (GetFixed32(p) != Layout::kPageMagic) return corrupt("bad page magic");
  const uint32_t version = GetFixed32(p + 4);
  if (version != Layout::kPageVersion) {
    return corrupt("unsupported page version " + std::to_string(version));
  }
  const uint32_t crc_off = GetFixed32(p + Layout::kCrcOffsetField);
  if (crc_off < Layout::kHeaderBytes ||
      static_cast<uint64_t>(crc_off) + 4 != size) {
    return corrupt("truncated page");
  }
  if (Crc32(p, crc_off) != GetFixed32(p + crc_off)) {
    return corrupt("checksum mismatch");
  }

  const uint32_t count = GetFixed32(p + Layout::kCountOffset);
  const uint8_t oid_encoding =
      static_cast<uint8_t>(p[Layout::kOidEncodingOffset]);
  const uint64_t range_lo = GetFixed64(p + Layout::kRangeLoOffset);
  const uint64_t range_hi = GetFixed64(p + Layout::kRangeHiOffset);
  if (range_lo > range_hi) return corrupt("inverted bucket range");

  uint32_t col[6];
  for (int c = 0; c < 6; ++c) {
    col[c] = GetFixed32(p + Layout::kColumnOffsets + 4 * c);
  }
  // The fixed-width columns are adjacent by construction; pinning their
  // offsets to the count also bounds-checks them in one shot.
  const uint64_t n = count;
  if (col[0] < Layout::kHeaderBytes || col[1] < col[0] || col[2] < col[1] ||
      col[2] % 8 != 0 || col[3] != col[2] + 8 * n ||
      col[4] != col[3] + 8 * n || col[5] != col[4] + 4 * n ||
      static_cast<uint64_t>(crc_off) != col[5] + 4 * n) {
    return corrupt("column offsets out of bounds");
  }

  auto page = std::shared_ptr<ColumnarPage>(new ColumnarPage());
  page->encoded_bytes_ = size;
  page->range_ = htm::IdRange{range_lo, range_hi};

  // Id column: decode eagerly — the deltas are unsigned, so the decoded
  // sequence is monotone by construction, and a corrupt column surfaces
  // here (truncated varints, ids escaping the bucket range) instead of as
  // wrong join results later.
  page->ids_.reserve(count);
  const char* ids_end =
      GetDeltaVarint64(p + col[0], p + col[1], count, &page->ids_);
  if (ids_end == nullptr || ids_end != p + col[1]) {
    return corrupt("bad id column");
  }
  if (count > 0 &&
      (page->ids_.front() < range_lo || page->ids_.back() > range_hi)) {
    return corrupt("id column outside bucket range (ordering violated)");
  }

  // Object-id column.
  const char* oid_p = p + col[1];
  const char* oid_limit = p + col[2];
  uint64_t oid_base = 0;
  oid_p = GetVarint64(oid_p, oid_limit, &oid_base);
  if (oid_p == nullptr) return corrupt("bad object-id base");
  page->oid_base_ = oid_base;
  if (oid_encoding == static_cast<uint8_t>(ObjectIdEncoding::kSequential)) {
    page->oid_encoding_ = ObjectIdEncoding::kSequential;
    if (count > 0 && oid_base > UINT64_MAX - (n - 1)) {
      return corrupt("sequential object-id overflow");
    }
  } else if (oid_encoding ==
             static_cast<uint8_t>(ObjectIdEncoding::kPackedFor)) {
    page->oid_encoding_ = ObjectIdEncoding::kPackedFor;
    if (oid_p >= oid_limit) return corrupt("missing object-id width");
    const uint8_t width = static_cast<uint8_t>(*oid_p++);
    if (width > 64) return corrupt("object-id width > 64");
    const uint64_t packed_bytes = (n * width + 7) / 8;
    if (static_cast<uint64_t>(oid_limit - oid_p) < packed_bytes) {
      return corrupt("object-id column truncated");
    }
    page->oid_width_ = width;
    page->oid_packed_ = oid_p;
  } else {
    return corrupt("unknown object-id encoding " +
                   std::to_string(oid_encoding));
  }

  page->ra_ = reinterpret_cast<const double*>(p + col[2]);
  page->dec_ = reinterpret_cast<const double*>(p + col[3]);
  page->mag_ = reinterpret_cast<const float*>(p + col[4]);
  page->color_ = reinterpret_cast<const float*>(p + col[5]);
  page->data_ = std::move(data);
  return std::shared_ptr<const ColumnarPage>(std::move(page));
}

uint64_t ColumnarPage::UnpackFor(size_t i) const {
  const unsigned width = oid_width_;
  if (width == 0) return 0;
  const size_t bit = i * width;
  size_t byte = bit >> 3;
  unsigned shift = bit & 7;
  uint64_t v = 0;
  unsigned got = 0;
  while (got < width) {
    const uint64_t b = static_cast<unsigned char>(oid_packed_[byte++]);
    v |= (b >> shift) << got;
    got += 8 - shift;
    shift = 0;
  }
  return width == 64 ? v : (v & ((uint64_t{1} << width) - 1));
}

std::span<const Vec3> ColumnarPage::positions() const {
  std::call_once(pos_once_, [this] {
    pos_.reserve(size());
    const std::span<const double> ra = this->ra();
    const std::span<const double> dec = this->dec();
    for (size_t i = 0; i < size(); ++i) {
      pos_.push_back(SkyToUnitVector(SkyPoint{ra[i], dec[i]}));
    }
  });
  return pos_;
}

const std::vector<CatalogObject>& ColumnarPage::rows() const {
  std::call_once(rows_once_, [this] {
    rows_.reserve(size());
    const std::span<const Vec3> pos = positions();
    for (size_t i = 0; i < size(); ++i) {
      CatalogObject o;
      o.object_id = object_id(i);
      o.htm_id = ids_[i];
      o.pos = pos[i];
      o.ra_deg = ra_[i];
      o.dec_deg = dec_[i];
      o.mag = mag_[i];
      o.color = color_[i];
      rows_.push_back(o);
    }
  });
  return rows_;
}

CatalogObject ColumnarPage::MaterializeObject(size_t i) const {
  assert(i < size());
  CatalogObject o;
  o.object_id = object_id(i);
  o.htm_id = ids_[i];
  o.pos = positions()[i];
  o.ra_deg = ra_[i];
  o.dec_deg = dec_[i];
  o.mag = mag_[i];
  o.color = color_[i];
  return o;
}

std::pair<size_t, size_t> ColumnarBucketView::EqualRange(htm::HtmId lo,
                                                         htm::HtmId hi) const {
  const std::span<const htm::HtmId> ids = page_->ids();
  auto first = std::lower_bound(ids.begin(), ids.end(), lo);
  auto last = std::upper_bound(ids.begin(), ids.end(), hi);
  return {static_cast<size_t>(first - ids.begin()),
          static_cast<size_t>(last - ids.begin())};
}

}  // namespace liferaft::storage
