#include "storage/topology.h"

#include <algorithm>
#include <cstring>

namespace liferaft::storage {

const char* VolumePlacementName(VolumePlacement placement) {
  switch (placement) {
    case VolumePlacement::kRange:
      return "range";
    case VolumePlacement::kHash:
      return "hash";
  }
  return "?";
}

Status StorageTopologyConfig::Validate() const {
  if (num_volumes == 0) {
    return Status::InvalidArgument("num_volumes must be >= 1");
  }
  if (!volume_disk.empty() && volume_disk.size() != num_volumes) {
    return Status::InvalidArgument(
        "volume_disk must be empty or have num_volumes entries");
  }
  for (const DiskModelParams& p : volume_disk) {
    LIFERAFT_RETURN_IF_ERROR(p.Validate());
  }
  return Status::OK();
}

StorageTopology::StorageTopology(size_t num_buckets,
                                 VolumePlacement placement,
                                 std::vector<DiskModel> models,
                                 bool spill_arm)
    : num_buckets_(num_buckets),
      placement_(placement),
      models_(std::move(models)),
      has_spill_arm_(spill_arm) {
  range_base_ = num_buckets_ / models_.size();
  range_rem_ = num_buckets_ % models_.size();
  const DiskModelParams& first = models_.front().params();
  for (const DiskModel& m : models_) {
    if (std::memcmp(&m.params(), &first, sizeof(DiskModelParams)) != 0) {
      uniform_ = false;
      break;
    }
  }
}

Result<StorageTopology> StorageTopology::Create(
    size_t num_buckets, const StorageTopologyConfig& config,
    const DiskModelParams& default_disk) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("topology needs at least one bucket");
  }
  LIFERAFT_RETURN_IF_ERROR(config.Validate());
  LIFERAFT_RETURN_IF_ERROR(default_disk.Validate());
  // Clamp so every volume owns at least one bucket (an armless volume
  // could never be scheduled and would only distort per-arm telemetry).
  // When per-volume params were given, the clamp must not silently drop
  // any of them.
  const size_t volumes = std::min(config.num_volumes, num_buckets);
  if (!config.volume_disk.empty() && volumes != config.num_volumes) {
    return Status::InvalidArgument(
        "more per-volume disk params than placeable volumes (num_volumes "
        "exceeds bucket count)");
  }
  std::vector<DiskModel> models;
  models.reserve(volumes);
  for (size_t v = 0; v < volumes; ++v) {
    models.emplace_back(config.volume_disk.empty() ? default_disk
                                                   : config.volume_disk[v]);
  }
  return StorageTopology(num_buckets, config.placement, std::move(models),
                         config.spill_arm);
}

}  // namespace liferaft::storage
