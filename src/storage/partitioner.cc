#include "storage/partitioner.h"

#include <algorithm>
#include <cassert>

namespace liferaft::storage {

BucketMap::BucketMap(std::vector<htm::HtmId> bounds)
    : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  assert(bounds_.front() == htm::LevelMin(htm::kObjectLevel));
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

htm::IdRange BucketMap::RangeOf(BucketIndex i) const {
  assert(i < bounds_.size());
  htm::HtmId lo = bounds_[i];
  htm::HtmId hi = (i + 1 < bounds_.size()) ? bounds_[i + 1] - 1
                                           : htm::LevelMax(htm::kObjectLevel);
  return {lo, hi};
}

BucketIndex BucketMap::BucketOf(htm::HtmId id) const {
  assert(id >= bounds_.front() && id <= htm::LevelMax(htm::kObjectLevel));
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), id);
  return static_cast<BucketIndex>((it - bounds_.begin()) - 1);
}

std::pair<BucketIndex, BucketIndex> BucketMap::BucketsOverlapping(
    htm::HtmId lo, htm::HtmId hi) const {
  assert(lo <= hi);
  // Clamp to the object-level ID domain.
  htm::HtmId min_id = htm::LevelMin(htm::kObjectLevel);
  htm::HtmId max_id = htm::LevelMax(htm::kObjectLevel);
  lo = std::clamp(lo, min_id, max_id);
  hi = std::clamp(hi, min_id, max_id);
  return {BucketOf(lo), BucketOf(hi)};
}

Result<PartitionResult> PartitionCatalog(std::vector<CatalogObject> objects,
                                         size_t objects_per_bucket) {
  if (objects.empty()) {
    return Status::InvalidArgument("cannot partition an empty catalog");
  }
  if (objects_per_bucket == 0) {
    return Status::InvalidArgument("objects_per_bucket must be positive");
  }
  std::sort(objects.begin(), objects.end(), ObjectHtmLess);

  // Choose cut points every objects_per_bucket objects, advancing each cut
  // past runs of equal HTM IDs so an ID never straddles two buckets.
  std::vector<size_t> cuts = {0};
  size_t pos = objects_per_bucket;
  while (pos < objects.size()) {
    while (pos < objects.size() &&
           objects[pos].htm_id == objects[pos - 1].htm_id) {
      ++pos;
    }
    if (pos >= objects.size()) break;
    cuts.push_back(pos);
    pos += objects_per_bucket;
  }

  std::vector<htm::HtmId> bounds;
  bounds.reserve(cuts.size());
  bounds.push_back(htm::LevelMin(htm::kObjectLevel));
  for (size_t i = 1; i < cuts.size(); ++i) {
    bounds.push_back(objects[cuts[i]].htm_id);
  }

  auto map = std::make_shared<const BucketMap>(std::move(bounds));

  PartitionResult result;
  result.buckets.reserve(cuts.size());
  for (size_t i = 0; i < cuts.size(); ++i) {
    size_t begin = cuts[i];
    size_t end = (i + 1 < cuts.size()) ? cuts[i + 1] : objects.size();
    std::vector<CatalogObject> slice(objects.begin() + begin,
                                     objects.begin() + end);
    result.buckets.emplace_back(static_cast<BucketIndex>(i),
                                map->RangeOf(static_cast<BucketIndex>(i)),
                                std::move(slice));
  }
  result.map = std::move(map);
  return result;
}

}  // namespace liferaft::storage
