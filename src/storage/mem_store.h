// In-memory BucketStore. The catalog's buckets are materialized once and
// served by shared pointer; the simulator charges modeled I/O time when a
// read would have gone to disk.

#ifndef LIFERAFT_STORAGE_MEM_STORE_H_
#define LIFERAFT_STORAGE_MEM_STORE_H_

#include <memory>
#include <vector>

#include "storage/bucket_store.h"

namespace liferaft::storage {

/// BucketStore over materialized in-memory buckets.
class MemStore : public BucketStore {
 public:
  /// Takes ownership of a partitioned catalog.
  explicit MemStore(PartitionResult partition);

  size_t num_buckets() const override { return buckets_.size(); }
  const BucketMap& bucket_map() const override { return *map_; }
  size_t BucketObjectCount(BucketIndex index) const override {
    return index < buckets_.size() ? buckets_[index]->size() : 0;
  }
  /// Materialized buckets are immutable shared pointers and the stats
  /// counters are atomic, so ReadBucket is safe from any thread with no
  /// locking at all — the sharded-cache stress tests lean on this.
  Result<std::shared_ptr<const Bucket>> ReadBucket(BucketIndex index) override;
  /// A prefetch worker hands a materialized bucket out with no
  /// synchronization at all.
  bool SupportsConcurrentReads() const override { return true; }
  Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetch(
      BucketIndex index) override;

 private:
  std::shared_ptr<const BucketMap> map_;
  std::vector<std::shared_ptr<const Bucket>> buckets_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_MEM_STORE_H_
