// BucketStore: the storage engine interface LifeRaft reads buckets through.
// Two implementations: MemStore (catalog held in RAM; I/O latency comes from
// the DiskModel in the simulator) and FileStore (real file-backed buckets
// with checksummed binary pages).

#ifndef LIFERAFT_STORAGE_BUCKET_STORE_H_
#define LIFERAFT_STORAGE_BUCKET_STORE_H_

#include <cstdint>
#include <memory>

#include "storage/bucket.h"
#include "storage/partitioner.h"
#include "util/status.h"

namespace liferaft::storage {

/// Read-side I/O counters, reset-able between experiment phases.
struct StoreStats {
  uint64_t bucket_reads = 0;
  uint64_t bytes_read = 0;
  uint64_t objects_read = 0;
};

/// Abstract bucket-granularity storage engine.
///
/// Not thread-safe; LifeRaft's scheduler loop is single-threaded by design
/// (the paper's system schedules one bucket batch at a time).
class BucketStore {
 public:
  virtual ~BucketStore() = default;

  /// Number of buckets in the catalog.
  virtual size_t num_buckets() const = 0;

  /// The HTM-curve partitioning this store was built with.
  virtual const BucketMap& bucket_map() const = 0;

  /// Number of objects in bucket `index`, from catalog metadata — never
  /// performs I/O. The hybrid join strategy sizes its scan-vs-probe
  /// decision with this.
  virtual size_t BucketObjectCount(BucketIndex index) const = 0;

  /// Reads bucket `index` in full. Returned buckets are immutable and
  /// shareable (the cache hands out the same pointer).
  virtual Result<std::shared_ptr<const Bucket>> ReadBucket(
      BucketIndex index) = 0;

  const StoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StoreStats{}; }

 protected:
  void RecordRead(const Bucket& b) {
    ++stats_.bucket_reads;
    stats_.bytes_read += b.EstimatedBytes();
    stats_.objects_read += b.size();
  }

  StoreStats stats_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BUCKET_STORE_H_
