// BucketStore: the storage engine interface LifeRaft reads buckets through.
// Two implementations: MemStore (catalog held in RAM; I/O latency comes from
// the DiskModel in the simulator) and FileStore (real file-backed buckets
// with checksummed binary pages).

#ifndef LIFERAFT_STORAGE_BUCKET_STORE_H_
#define LIFERAFT_STORAGE_BUCKET_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "storage/bucket.h"
#include "storage/partitioner.h"
#include "util/status.h"

namespace liferaft::util {
class Arena;  // util/arena.h; stores only pass the pointer through
}  // namespace liferaft::util

namespace liferaft::storage {

class AsyncReader;      // storage/async_io.h
class StorageTopology;  // storage/topology.h

/// Read-side I/O counters, reset-able between experiment phases.
struct StoreStats {
  uint64_t bucket_reads = 0;
  uint64_t bytes_read = 0;
  uint64_t objects_read = 0;
};

/// Abstract bucket-granularity storage engine.
///
/// Threading contract: the virtual-clock drivers funnel all reads through
/// one owner thread — LifeRaft's scheduler loop. Beyond that, the sharded
/// BucketCache may invoke ReadBucket from whichever thread holds the
/// bucket's shard lock, so an implementation MUST make ReadBucket safe to
/// call concurrently with itself and with ReadBucketForPrefetch (MemStore
/// serves immutable materialized buckets; FileStore reads pages with
/// positional pread(2) calls that share no mutable state).
/// ReadBucketForPrefetch exists for the prefetch
/// pipeline: a cache worker calls it concurrently with other reads, and
/// it never touches the stats counters — the owner records the I/O at
/// claim time via RecordPrefetchedRead, keeping accounting deterministic.
/// The counters themselves are atomic, so stats recording is never the
/// race.
class BucketStore {
 public:
  virtual ~BucketStore() = default;

  /// Number of buckets in the catalog.
  virtual size_t num_buckets() const = 0;

  /// The HTM-curve partitioning this store was built with.
  virtual const BucketMap& bucket_map() const = 0;

  /// Number of objects in bucket `index`, from catalog metadata — never
  /// performs I/O. The hybrid join strategy sizes its scan-vs-probe
  /// decision with this.
  virtual size_t BucketObjectCount(BucketIndex index) const = 0;

  /// Real encoded on-disk bytes of bucket `index`'s page, or 0 when the
  /// store has no encoded form (MemStore). Never performs I/O.
  virtual uint64_t EncodedBucketBytes(BucketIndex index) const {
    (void)index;
    return 0;
  }

  /// The byte size the I/O cost model should charge for moving bucket
  /// `index`: the paper's kBytesPerObject estimate by default, or the real
  /// encoded page size when `charge_encoded` is set and the store has one.
  /// Every T_b consumer (scheduler U_t, evaluator, pipeline bets) prices
  /// through this so a format change shifts costs in one place — or, with
  /// the flag off, provably nowhere.
  uint64_t ModeledBucketBytes(BucketIndex index, bool charge_encoded) const {
    if (charge_encoded) {
      uint64_t encoded = EncodedBucketBytes(index);
      if (encoded > 0) return encoded;
    }
    return static_cast<uint64_t>(BucketObjectCount(index)) *
           Bucket::kBytesPerObject;
  }

  /// Reads bucket `index` in full. Returned buckets are immutable and
  /// shareable (the cache hands out the same pointer). Owner thread only.
  virtual Result<std::shared_ptr<const Bucket>> ReadBucket(
      BucketIndex index) = 0;

  /// True if ReadBucketForPrefetch is implemented and safe to call
  /// concurrently with owner-thread reads. When false, cache prefetching
  /// and worker-side NoShare reads degrade gracefully (and identically at
  /// every thread count) to owner-thread ReadBucket traffic.
  virtual bool SupportsConcurrentReads() const { return false; }

  /// Reads bucket `index` WITHOUT recording I/O stats. Must be safe to
  /// call from a worker thread concurrently with owner-thread ReadBucket
  /// calls whenever SupportsConcurrentReads() is true. The owner accounts
  /// the read via RecordPrefetchedRead(s) when it consumes the bucket.
  virtual Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetch(
      BucketIndex index) {
    (void)index;
    return Status::Unimplemented("store does not support prefetch reads");
  }

  /// ReadBucketForPrefetch with an optional bump arena for transient
  /// decode buffers (the per-query NoShare fan-out passes the executing
  /// worker's arena so the read path stops touching the heap for
  /// scratch). `scratch` may be null (= plain heap); the returned Bucket
  /// NEVER references arena memory — the arena only backs buffers that
  /// die inside the call, so the caller may reset it at any batch/window
  /// boundary. The default ignores the arena; results are byte-identical
  /// with or without one.
  virtual Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetchScratch(
      BucketIndex index, util::Arena* scratch) {
    (void)scratch;
    return ReadBucketForPrefetch(index);
  }

  /// Opens an asynchronous read session: per-volume submission queues and
  /// I/O worker threads delivering completions to the caller's Poll()/
  /// Wait() (storage/async_io.h). The default is the queued reader over
  /// ReadBucketForPrefetchScratch — it requires SupportsConcurrentReads().
  /// Override to substitute a fault-injection or device-specific backend.
  /// `topology` (nullable = one queue) and this store must outlive the
  /// returned reader.
  virtual std::unique_ptr<AsyncReader> NewAsyncReader(
      const StorageTopology* topology);

  /// Deferred accounting for a bucket obtained via ReadBucketForPrefetch;
  /// call exactly once per prefetched read, on the owner thread.
  void RecordPrefetchedRead(const Bucket& b) {
    RecordPrefetchedReads(1, b.EstimatedBytes(), b.size());
  }

  /// Aggregate form of RecordPrefetchedRead for batched deferred
  /// accounting.
  void RecordPrefetchedReads(uint64_t reads, uint64_t bytes,
                             uint64_t objects) {
    stats_.bucket_reads.fetch_add(reads, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
    stats_.objects_read.fetch_add(objects, std::memory_order_relaxed);
  }

  /// Atomic snapshot of the read counters.
  StoreStats stats() const {
    StoreStats snapshot;
    snapshot.bucket_reads = stats_.bucket_reads.load(std::memory_order_relaxed);
    snapshot.bytes_read = stats_.bytes_read.load(std::memory_order_relaxed);
    snapshot.objects_read =
        stats_.objects_read.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetStats() {
    stats_.bucket_reads.store(0, std::memory_order_relaxed);
    stats_.bytes_read.store(0, std::memory_order_relaxed);
    stats_.objects_read.store(0, std::memory_order_relaxed);
  }

 protected:
  void RecordRead(const Bucket& b) {
    RecordPrefetchedReads(1, b.EstimatedBytes(), b.size());
  }

  /// Atomic mirror of StoreStats (see the threading contract above).
  struct AtomicStoreStats {
    std::atomic<uint64_t> bucket_reads{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> objects_read{0};
  };
  AtomicStoreStats stats_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BUCKET_STORE_H_
