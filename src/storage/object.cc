#include "storage/object.h"

#include "htm/htm.h"

namespace liferaft::storage {

CatalogObject MakeObject(uint64_t object_id, const SkyPoint& p, float mag,
                         float color) {
  CatalogObject o;
  o.object_id = object_id;
  o.ra_deg = p.ra_deg;
  o.dec_deg = p.dec_deg;
  o.pos = SkyToUnitVector(p);
  o.htm_id = htm::PointToId(o.pos, htm::kObjectLevel);
  o.mag = mag;
  o.color = color;
  return o;
}

}  // namespace liferaft::storage
