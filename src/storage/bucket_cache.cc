#include "storage/bucket_cache.h"

#include <cassert>
#include <utility>

namespace liferaft::storage {
namespace {

/// Wraps an already-known result in a ready shared_future.
BucketCache::BucketFuture ReadyFuture(Result<std::shared_ptr<const Bucket>> r) {
  std::promise<Result<std::shared_ptr<const Bucket>>> promise;
  promise.set_value(std::move(r));
  return promise.get_future().share();
}

}  // namespace

BucketCache::BucketCache(BucketStore* store, size_t capacity)
    : store_(store), capacity_(capacity) {
  assert(store_ != nullptr);
  assert(capacity_ > 0);
}

BucketCache::~BucketCache() {
  // Drain workers still reading on our behalf; they reference the store.
  for (auto& [index, inflight] : inflight_) {
    if (inflight.future.valid()) inflight.future.wait();
  }
}

bool BucketCache::Contains(BucketIndex index) const {
  return map_.find(index) != map_.end();
}

bool BucketCache::IsPrefetchPending(BucketIndex index) const {
  return inflight_.find(index) != inflight_.end();
}

bool BucketCache::IsPinned(BucketIndex index) const {
  auto it = map_.find(index);
  return it != map_.end() && it->second->pins > 0;
}

void BucketCache::Touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void BucketCache::EvictOverCapacity() {
  while (map_.size() > capacity_) {
    // Evict the least-recently-used unpinned entry; if every entry is
    // pinned, stay over capacity until a pin is released.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->pins == 0) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) return;
    ++stats_.evictions;
    map_.erase(victim->index);
    lru_.erase(victim);
  }
}

void BucketCache::InsertMru(BucketIndex index,
                            std::shared_ptr<const Bucket> bucket) {
  lru_.push_front(Entry{index, std::move(bucket), /*pins=*/0});
  map_[index] = lru_.begin();
  EvictOverCapacity();
}

Result<std::shared_ptr<const Bucket>> BucketCache::Get(BucketIndex index) {
  auto pending = inflight_.find(index);
  if (pending != inflight_.end()) {
    if (pending->second.pinned_resident) {
      // The prefetch merely pinned a bucket that was already here.
      auto it = map_.find(index);
      assert(it != map_.end() && it->second->pins > 0);
      --it->second->pins;
      ++stats_.hits;
      ++stats_.prefetch_claims;
      Touch(it->second);
      inflight_.erase(pending);
      std::shared_ptr<const Bucket> bucket = it->second->bucket;
      EvictOverCapacity();  // the unpin may re-enable a deferred eviction
      return bucket;
    }
    Result<std::shared_ptr<const Bucket>> fetched = pending->second.future.get();
    inflight_.erase(pending);
    if (fetched.ok()) {
      ++stats_.misses;  // the bucket did come from the store
      ++stats_.prefetch_claims;
      store_->RecordPrefetchedRead(**fetched);
      InsertMru(index, *fetched);
      return *fetched;
    }
    if (fetched.status().code() != StatusCode::kUnimplemented) {
      return fetched.status();
    }
    // Store without prefetch-read support: degrade to a plain miss below.
    ++stats_.prefetch_cancels;
  }
  auto it = map_.find(index);
  if (it != map_.end()) {
    ++stats_.hits;
    Touch(it->second);
    return it->second->bucket;
  }
  ++stats_.misses;
  LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const Bucket> bucket,
                            store_->ReadBucket(index));
  InsertMru(index, bucket);
  return bucket;
}

BucketCache::BucketFuture BucketCache::PrefetchAsync(BucketIndex index) {
  auto pending = inflight_.find(index);
  if (pending != inflight_.end()) return pending->second.future;
  ++stats_.prefetch_issued;

  Inflight inflight;
  auto resident = map_.find(index);
  if (resident != map_.end()) {
    ++resident->second->pins;
    inflight.pinned_resident = true;
    inflight.future = ReadyFuture(resident->second->bucket);
  } else if (!store_->SupportsConcurrentReads()) {
    // No safe side-channel read: resolve to Unimplemented so the eventual
    // Get degrades to a plain miss — the same behavior whether or not a
    // pool is attached, keeping runs thread-count independent.
    inflight.future = ReadyFuture(
        Status::Unimplemented("store does not support prefetch reads"));
  } else if (pool_ != nullptr) {
    inflight.future =
        pool_->Submit([store = store_, index] {
               return store->ReadBucketForPrefetch(index);
             })
            .share();
  } else {
    inflight.future = ReadyFuture(store_->ReadBucketForPrefetch(index));
  }
  BucketFuture future = inflight.future;
  inflight_.emplace(index, std::move(inflight));
  return future;
}

void BucketCache::CancelPrefetch(BucketIndex index) {
  auto pending = inflight_.find(index);
  if (pending == inflight_.end()) return;
  if (pending->second.pinned_resident) {
    auto it = map_.find(index);
    assert(it != map_.end() && it->second->pins > 0);
    --it->second->pins;
    EvictOverCapacity();  // the unpin may re-enable a deferred eviction
  } else if (pending->second.future.valid()) {
    pending->second.future.wait();  // discard the fetched bucket unrecorded
  }
  ++stats_.prefetch_cancels;
  inflight_.erase(pending);
}

void BucketCache::Clear() {
  for (auto& [index, inflight] : inflight_) {
    if (inflight.future.valid()) inflight.future.wait();
    ++stats_.prefetch_cancels;
  }
  inflight_.clear();
  lru_.clear();
  map_.clear();
}

}  // namespace liferaft::storage
