#include "storage/bucket_cache.h"

#include <cassert>
#include <utility>

namespace liferaft::storage {
namespace {

/// Wraps an already-known result in a ready shared_future.
BucketCache::BucketFuture ReadyFuture(Result<std::shared_ptr<const Bucket>> r) {
  std::promise<Result<std::shared_ptr<const Bucket>>> promise;
  promise.set_value(std::move(r));
  return promise.get_future().share();
}

}  // namespace

BucketCache::BucketCache(BucketStore* store, size_t capacity,
                         size_t num_shards, const StorageTopology* topology,
                         uint64_t capacity_bytes)
    : store_(store),
      capacity_(capacity),
      capacity_bytes_(capacity_bytes),
      topology_(topology) {
  assert(store_ != nullptr);
  assert(capacity_ > 0);
  // Every shard must hold at least one bucket, so the shard count is capped
  // by the capacity; the remainder goes to the low shards. Under a
  // volume-aligned map the shard key only ranges over the volumes, so the
  // count is also capped there — extra shards could never receive an
  // entry and would silently strand their slice of the capacity.
  num_shards = std::max<size_t>(1, std::min(num_shards, capacity_));
  if (topology_ != nullptr) {
    num_shards = std::min(num_shards, topology_->num_volumes());
  }
  shards_.reserve(num_shards);
  const size_t base = capacity_ / num_shards;
  const size_t rem = capacity_ % num_shards;
  const uint64_t byte_base = capacity_bytes_ / num_shards;
  const uint64_t byte_rem = capacity_bytes_ % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < rem ? 1 : 0);
    shard->capacity_bytes = byte_base + (i < byte_rem ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

BucketCache::~BucketCache() {
  // Drain workers still reading on our behalf; they reference the store.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [index, inflight] : shard->inflight) {
      if (inflight.future.valid()) inflight.future.wait();
    }
  }
}

bool BucketCache::Contains(BucketIndex index) const {
  const Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.find(index) != shard.map.end();
}

bool BucketCache::IsPrefetchPending(BucketIndex index) const {
  const Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.inflight.find(index) != shard.inflight.end();
}

bool BucketCache::IsPinned(BucketIndex index) const {
  const Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(index);
  return it != shard.map.end() && it->second->pins > 0;
}

size_t BucketCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

uint64_t BucketCache::resident_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes_used;
  }
  return total;
}

CacheStats BucketCache::stats() const {
  CacheStats snapshot;
  snapshot.hits = stats_.hits.load(std::memory_order_relaxed);
  snapshot.misses = stats_.misses.load(std::memory_order_relaxed);
  snapshot.evictions = stats_.evictions.load(std::memory_order_relaxed);
  snapshot.prefetch_issued =
      stats_.prefetch_issued.load(std::memory_order_relaxed);
  snapshot.prefetch_claims =
      stats_.prefetch_claims.load(std::memory_order_relaxed);
  snapshot.prefetch_cancels =
      stats_.prefetch_cancels.load(std::memory_order_relaxed);
  snapshot.prefetch_wasted_bytes =
      stats_.prefetch_wasted_bytes.load(std::memory_order_relaxed);
  snapshot.evictions_protected =
      stats_.evictions_protected.load(std::memory_order_relaxed);
  return snapshot;
}

void BucketCache::ResetStats() {
  stats_.hits.store(0, std::memory_order_relaxed);
  stats_.misses.store(0, std::memory_order_relaxed);
  stats_.evictions.store(0, std::memory_order_relaxed);
  stats_.prefetch_issued.store(0, std::memory_order_relaxed);
  stats_.prefetch_claims.store(0, std::memory_order_relaxed);
  stats_.prefetch_cancels.store(0, std::memory_order_relaxed);
  stats_.prefetch_wasted_bytes.store(0, std::memory_order_relaxed);
  stats_.evictions_protected.store(0, std::memory_order_relaxed);
}

void BucketCache::Touch(Shard& shard, std::list<Entry>::iterator it) {
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
}

void BucketCache::EvictOverCapacity(Shard& shard) {
  while (shard.map.size() > shard.capacity ||
         (shard.capacity_bytes > 0 &&
          shard.bytes_used > shard.capacity_bytes)) {
    // Victim order, scanning LRU-to-MRU and never the front entry (the
    // one the triggering insert/claim just touched) until nothing else
    // is evictable:
    //  1. the LRU unpinned entry outside the prediction window;
    //  2. the LRU unpinned entry inside it — protection demotes, it must
    //     not starve the cache of evictable space (counted in
    //     evictions_protected);
    //  3. the front entry itself, when every other entry is pinned (the
    //     pre-window degenerate case; with no window this reproduces
    //     plain LRU exactly).
    // If everything including the front is pinned, stay over capacity
    // until a pin is released.
    auto victim = shard.lru.end();
    auto protected_victim = shard.lru.end();
    for (auto it = std::prev(shard.lru.end()); it != shard.lru.begin();
         --it) {
      if (it->pins != 0) continue;
      if (shard.window.find(it->index) == shard.window.end()) {
        victim = it;
        break;
      }
      if (protected_victim == shard.lru.end()) protected_victim = it;
    }
    bool victim_protected = false;
    if (victim == shard.lru.end()) {
      if (protected_victim != shard.lru.end()) {
        victim = protected_victim;
        victim_protected = true;
      } else if (!shard.lru.empty() && shard.lru.begin()->pins == 0) {
        victim = shard.lru.begin();
        victim_protected =
            shard.window.find(victim->index) != shard.window.end();
      } else {
        return;  // all pinned
      }
    }
    if (victim_protected) {
      stats_.evictions_protected.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    shard.bytes_used -= victim->bytes;
    shard.map.erase(victim->index);
    shard.lru.erase(victim);
  }
}

void BucketCache::SetPredictionWindow(std::span<const BucketIndex> window) {
  // Split the window by shard first so each shard is locked exactly once.
  std::vector<std::vector<BucketIndex>> by_shard(shards_.size());
  for (BucketIndex b : window) {
    by_shard[ShardKey(b) % shards_.size()].push_back(b);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.window.clear();
    shard.window.insert(by_shard[i].begin(), by_shard[i].end());
  }
}

uint64_t BucketCache::RecordWastedPrefetch(const Inflight& inflight) {
  // The future is resolved by the caller (wait/get); only a successful
  // physical read counts — an Unimplemented store fetched nothing.
  const Result<std::shared_ptr<const Bucket>>& r = inflight.future.get();
  if (!r.ok()) return 0;
  const uint64_t bytes = (*r)->EstimatedBytes();
  stats_.prefetch_wasted_bytes.fetch_add(bytes, std::memory_order_relaxed);
  return bytes;
}

void BucketCache::InsertMru(Shard& shard, BucketIndex index,
                            std::shared_ptr<const Bucket> bucket) {
  // Charges are only tracked in byte mode, keeping count-only shards
  // bit-for-bit on their pre-byte-mode behavior.
  const uint64_t bytes =
      shard.capacity_bytes > 0 ? ChargedBytes(*bucket) : 0;
  shard.lru.push_front(Entry{index, std::move(bucket), /*pins=*/0, bytes});
  shard.map[index] = shard.lru.begin();
  shard.bytes_used += bytes;
  EvictOverCapacity(shard);
}

void BucketCache::Put(BucketIndex index, std::shared_ptr<const Bucket> bucket) {
  Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(index);
  if (it != shard.map.end()) {
    Touch(shard, it->second);
    return;
  }
  InsertMru(shard, index, std::move(bucket));
}

Result<std::shared_ptr<const Bucket>> BucketCache::Get(BucketIndex index) {
  Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto pending = shard.inflight.find(index);
  if (pending != shard.inflight.end()) {
    if (pending->second.pinned_resident) {
      // The prefetch merely pinned a bucket that was already here.
      auto it = shard.map.find(index);
      assert(it != shard.map.end() && it->second->pins > 0);
      --it->second->pins;
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      stats_.prefetch_claims.fetch_add(1, std::memory_order_relaxed);
      Touch(shard, it->second);
      shard.inflight.erase(pending);
      std::shared_ptr<const Bucket> bucket = it->second->bucket;
      EvictOverCapacity(shard);  // the unpin may re-enable an eviction
      return bucket;
    }
    Result<std::shared_ptr<const Bucket>> fetched = pending->second.future.get();
    shard.inflight.erase(pending);
    if (fetched.ok()) {
      // The bucket did come from the store.
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      stats_.prefetch_claims.fetch_add(1, std::memory_order_relaxed);
      store_->RecordPrefetchedRead(**fetched);
      InsertMru(shard, index, *fetched);
      return *fetched;
    }
    if (fetched.status().code() != StatusCode::kUnimplemented) {
      return fetched.status();
    }
    // Store without prefetch-read support: degrade to a plain miss below.
    stats_.prefetch_cancels.fetch_add(1, std::memory_order_relaxed);
  }
  auto it = shard.map.find(index);
  if (it != shard.map.end()) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    Touch(shard, it->second);
    return it->second->bucket;
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const Bucket> bucket,
                            store_->ReadBucket(index));
  InsertMru(shard, index, bucket);
  return bucket;
}

BucketCache::BucketFuture BucketCache::PrefetchAsync(BucketIndex index) {
  Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto pending = shard.inflight.find(index);
  if (pending != shard.inflight.end()) return pending->second.future;
  stats_.prefetch_issued.fetch_add(1, std::memory_order_relaxed);

  Inflight inflight;
  auto resident = shard.map.find(index);
  if (resident != shard.map.end()) {
    ++resident->second->pins;
    inflight.pinned_resident = true;
    inflight.future = ReadyFuture(resident->second->bucket);
  } else if (!store_->SupportsConcurrentReads()) {
    // No safe side-channel read: resolve to Unimplemented so the eventual
    // Get degrades to a plain miss — the same behavior whether or not a
    // pool is attached, keeping runs thread-count independent.
    inflight.future = ReadyFuture(
        Status::Unimplemented("store does not support prefetch reads"));
  } else if (pool_ != nullptr) {
    inflight.future =
        pool_->Submit([store = store_, index] {
               return store->ReadBucketForPrefetch(index);
             })
            .share();
  } else {
    inflight.future = ReadyFuture(store_->ReadBucketForPrefetch(index));
  }
  BucketFuture future = inflight.future;
  shard.inflight.emplace(index, std::move(inflight));
  return future;
}

uint64_t BucketCache::CancelPrefetch(BucketIndex index) {
  Shard& shard = ShardFor(index);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto pending = shard.inflight.find(index);
  if (pending == shard.inflight.end()) return 0;
  uint64_t wasted = 0;
  if (pending->second.pinned_resident) {
    auto it = shard.map.find(index);
    assert(it != shard.map.end() && it->second->pins > 0);
    --it->second->pins;
    EvictOverCapacity(shard);  // the unpin may re-enable an eviction
  } else if (pending->second.future.valid()) {
    // Discard the fetched bucket unrecorded in the I/O ledger, but charge
    // its bytes to the wasted-prefetch counter — the mispredict's cost.
    pending->second.future.wait();
    wasted = RecordWastedPrefetch(pending->second);
  }
  stats_.prefetch_cancels.fetch_add(1, std::memory_order_relaxed);
  shard.inflight.erase(pending);
  return wasted;
}

void BucketCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [index, inflight] : shard->inflight) {
      if (inflight.future.valid()) {
        inflight.future.wait();
        if (!inflight.pinned_resident) RecordWastedPrefetch(inflight);
      }
      stats_.prefetch_cancels.fetch_add(1, std::memory_order_relaxed);
    }
    shard->inflight.clear();
    shard->lru.clear();
    shard->map.clear();
    shard->window.clear();
    shard->bytes_used = 0;
  }
}

}  // namespace liferaft::storage
