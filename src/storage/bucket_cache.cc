#include "storage/bucket_cache.h"

#include <cassert>

namespace liferaft::storage {

BucketCache::BucketCache(BucketStore* store, size_t capacity)
    : store_(store), capacity_(capacity) {
  assert(store_ != nullptr);
  assert(capacity_ > 0);
}

bool BucketCache::Contains(BucketIndex index) const {
  return map_.find(index) != map_.end();
}

void BucketCache::Touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

Result<std::shared_ptr<const Bucket>> BucketCache::Get(BucketIndex index) {
  auto it = map_.find(index);
  if (it != map_.end()) {
    ++stats_.hits;
    Touch(it->second);
    return it->second->bucket;
  }
  ++stats_.misses;
  LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const Bucket> bucket,
                            store_->ReadBucket(index));
  lru_.push_front(Entry{index, bucket});
  map_[index] = lru_.begin();
  if (map_.size() > capacity_) {
    ++stats_.evictions;
    map_.erase(lru_.back().index);
    lru_.pop_back();
  }
  return bucket;
}

void BucketCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace liferaft::storage
