// Catalog: one archive's partitioned fact table plus its optional spatial
// index. This is the "database" a LifeRaft instance schedules against.

#ifndef LIFERAFT_STORAGE_CATALOG_H_
#define LIFERAFT_STORAGE_CATALOG_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/bucket_store.h"
#include "storage/mem_store.h"
#include "util/status.h"

namespace liferaft::storage {

/// Catalog construction options.
struct CatalogOptions {
  /// Objects per bucket (paper: 10,000). Must be > 0.
  size_t objects_per_bucket = 1000;
  /// Build the B+tree spatial index (required for the hybrid join's indexed
  /// path; IndexOnly and hybrid scheduling need it).
  bool build_index = true;
};

/// An immutable partitioned archive with optional B+tree index. Build()
/// partitions in-memory objects into a MemStore; FromStore() wraps any
/// already-built BucketStore (e.g. an opened FileStore), so the simulation
/// engine runs unchanged over file-backed catalogs in either page format.
class Catalog {
 public:
  /// Partitions `objects` and builds the store (and index if requested).
  static Result<std::unique_ptr<Catalog>> Build(
      std::vector<CatalogObject> objects, const CatalogOptions& options);

  /// Wraps an existing store. When `build_index` is set, every bucket is
  /// read back once to bulk-load the B+tree (the store's I/O counters are
  /// reset afterwards so runs start with a clean ledger).
  static Result<std::unique_ptr<Catalog>> FromStore(
      std::unique_ptr<BucketStore> store, bool build_index = true);

  /// The archive's bucket store (owned by the catalog).
  BucketStore* store() { return store_.get(); }
  const BucketStore* store() const { return store_.get(); }
  /// The HTM-curve partitioning the store was built with.
  const BucketMap& bucket_map() const { return store_->bucket_map(); }
  size_t num_buckets() const { return store_->num_buckets(); }
  size_t num_objects() const { return num_objects_; }

  /// Null if build_index was false.
  const BTreeIndex* index() const {
    return index_.has_value() ? &*index_ : nullptr;
  }

 private:
  Catalog() = default;

  std::unique_ptr<BucketStore> store_;
  std::optional<BTreeIndex> index_;
  size_t num_objects_ = 0;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_CATALOG_H_
