#include "storage/disk_model.h"

namespace liferaft::storage {

Status DiskModelParams::Validate() const {
  if (seek_ms < 0) return Status::InvalidArgument("seek_ms must be >= 0");
  if (transfer_mb_per_s <= 0) {
    return Status::InvalidArgument("transfer_mb_per_s must be > 0");
  }
  if (match_ms_per_object <= 0) {
    return Status::InvalidArgument("match_ms_per_object must be > 0");
  }
  if (index_probe_ms <= 0) {
    return Status::InvalidArgument("index_probe_ms must be > 0");
  }
  return Status::OK();
}

DiskModel::DiskModel(DiskModelParams params) : params_(params) {}

TimeMs DiskModel::SequentialReadMs(uint64_t bytes) const {
  double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  return params_.seek_ms + mb / params_.transfer_mb_per_s * 1000.0;
}

TimeMs DiskModel::IndexedProbesMs(uint64_t n) const {
  return static_cast<double>(n) * params_.index_probe_ms;
}

TimeMs DiskModel::MatchMs(uint64_t n) const {
  return static_cast<double>(n) * params_.match_ms_per_object;
}

TimeMs DiskModel::ScanJoinMs(uint64_t bucket_bytes, uint64_t queue_objects,
                             bool bucket_cached) const {
  TimeMs io = bucket_cached ? 0.0 : SequentialReadMs(bucket_bytes);
  return io + MatchMs(queue_objects);
}

TimeMs DiskModel::IndexedJoinMs(uint64_t queue_objects) const {
  return IndexedProbesMs(queue_objects) + MatchMs(queue_objects);
}

}  // namespace liferaft::storage
