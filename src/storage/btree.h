// Bulk-loaded B+tree on HTM ID: the "spatial index" of the paper's indexed
// join path. SkyQuery evaluates cross-matches through repeated index
// accesses; LifeRaft's hybrid strategy falls back to this index only when a
// bucket's workload queue is small.
//
// The tree is immutable after bulk load (the fact table is static in the
// paper's setting). Range scans report how many leaves they touched so the
// cost model can charge one random I/O per leaf.

#ifndef LIFERAFT_STORAGE_BTREE_H_
#define LIFERAFT_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "htm/htm_id.h"
#include "storage/object.h"
#include "util/status.h"

namespace liferaft::storage {

/// Immutable B+tree over catalog objects keyed by HTM ID (duplicates
/// allowed).
class BTreeIndex {
 public:
  /// Number of records per leaf / fanout of internal nodes. Sized so a leaf
  /// is roughly one 4 KB page of (key, rowid) pairs.
  static constexpr size_t kLeafCapacity = 256;
  static constexpr size_t kInternalFanout = 256;

  /// Bulk-loads from objects that must already be sorted by
  /// (htm_id, object_id). Returns InvalidArgument if unsorted.
  static Result<BTreeIndex> BulkLoad(std::vector<CatalogObject> objects);

  /// Statistics of one range scan.
  struct ScanStats {
    uint64_t leaves_visited = 0;
    uint64_t records_scanned = 0;
    uint64_t matches = 0;
  };

  /// Visits every object with htm_id in [lo, hi] in key order. Returns the
  /// scan's I/O statistics.
  ScanStats RangeScan(htm::HtmId lo, htm::HtmId hi,
                      const std::function<void(const CatalogObject&)>& fn)
      const;

  /// Convenience: collects the range into a vector.
  std::vector<CatalogObject> RangeLookup(htm::HtmId lo, htm::HtmId hi) const;

  size_t size() const { return records_.size(); }
  size_t num_leaves() const { return leaf_first_key_.size(); }
  int height() const { return height_; }

 private:
  BTreeIndex() = default;

  // Leaf i holds records_[i*kLeafCapacity, min((i+1)*kLeafCapacity, n)).
  std::vector<CatalogObject> records_;
  std::vector<htm::HtmId> leaf_first_key_;
  // Internal levels, bottom-up: level[l][j] = first key of child j at that
  // level. Kept for realism of the descent path and height accounting.
  std::vector<std::vector<htm::HtmId>> internal_levels_;
  int height_ = 0;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BTREE_H_
