#include "storage/async_io.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "storage/bucket_store.h"
#include "storage/topology.h"
#include "util/clock.h"

namespace liferaft::storage {
namespace {

/// Percentile over a scratch copy of `samples` (nearest-rank).
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (rank >= samples.size()) rank = samples.size() - 1;
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

class QueuedAsyncReader : public AsyncReader {
 public:
  QueuedAsyncReader(BucketStore* store, const StorageTopology* topology)
      : store_(store), topology_(topology) {
    const size_t volumes =
        topology_ != nullptr ? topology_->num_volumes() : 1;
    queues_.reserve(volumes);
    for (size_t v = 0; v < volumes; ++v) {
      queues_.push_back(std::make_unique<VolumeQueue>());
    }
    stats_.resize(volumes);
    latency_samples_.resize(volumes);
    // Workers start after the queue vector is fully built: a worker only
    // touches its own queue and the shared completion queue.
    for (size_t v = 0; v < volumes; ++v) {
      queues_[v]->worker =
          std::thread([this, v] { WorkerLoop(static_cast<uint32_t>(v)); });
    }
  }

  ~QueuedAsyncReader() override {
    for (auto& q : queues_) {
      {
        std::lock_guard<std::mutex> lock(q->mu);
        q->stop = true;
      }
      q->cv.notify_all();
    }
    for (auto& q : queues_) q->worker.join();
    // Undelivered completions (and any requests the stop flag discarded)
    // die here with their buckets and callbacks — nothing escapes.
  }

  uint64_t SubmitRead(BucketIndex index, AsyncReadCallback done) override {
    const uint32_t volume =
        topology_ != nullptr
            ? topology_->VolumeOf(index) % static_cast<uint32_t>(queues_.size())
            : 0;
    Request req;
    req.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
    req.index = index;
    req.volume = volume;
    req.done = std::move(done);
    req.submit_ms = clock_.NowMs();
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    VolumeQueue& q = *queues_[volume];
    const uint64_t ticket = req.ticket;
    {
      std::lock_guard<std::mutex> lock(q.mu);
      q.pending.push_back(std::move(req));
      const uint64_t depth = q.pending.size();
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_[volume].max_queue_depth =
          std::max(stats_[volume].max_queue_depth, depth);
    }
    q.cv.notify_one();
    return ticket;
  }

  size_t Poll() override { return Deliver(/*block=*/false); }

  size_t Wait() override { return Deliver(/*block=*/true); }

  void Drain() override {
    while (in_flight() > 0) Wait();
  }

  size_t in_flight() const override {
    return in_flight_.load(std::memory_order_relaxed);
  }

  std::vector<AsyncVolumeStats> VolumeStats() const override {
    std::lock_guard<std::mutex> lock(stats_mu_);
    std::vector<AsyncVolumeStats> out = stats_;
    for (size_t v = 0; v < out.size(); ++v) {
      out[v].p50_latency_ms = Percentile(latency_samples_[v], 0.50);
      out[v].p99_latency_ms = Percentile(latency_samples_[v], 0.99);
    }
    return out;
  }

 private:
  struct Request {
    uint64_t ticket = 0;
    BucketIndex index = 0;
    uint32_t volume = 0;
    AsyncReadCallback done;
    double submit_ms = 0.0;
  };

  struct Delivered {
    AsyncReadCompletion completion;
    AsyncReadCallback done;
  };

  struct VolumeQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Request> pending;  // guarded by mu
    bool stop = false;            // guarded by mu
    std::thread worker;
  };

  void WorkerLoop(uint32_t volume) {
    VolumeQueue& q = *queues_[volume];
    for (;;) {
      Request req;
      {
        std::unique_lock<std::mutex> lock(q.mu);
        q.cv.wait(lock, [&] { return q.stop || !q.pending.empty(); });
        if (q.stop) return;  // pending requests are discarded on shutdown
        req = std::move(q.pending.front());
        q.pending.pop_front();
      }
      Delivered d;
      d.done = std::move(req.done);
      d.completion.ticket = req.ticket;
      d.completion.index = req.index;
      d.completion.volume = volume;
      auto bucket = store_->ReadBucketForPrefetchScratch(req.index, nullptr);
      d.completion.latency_ms = clock_.NowMs() - req.submit_ms;
      if (bucket.ok()) {
        d.completion.bucket = std::move(bucket).value();
        d.completion.bytes = store_->EncodedBucketBytes(req.index);
        if (d.completion.bytes == 0) {
          d.completion.bytes = d.completion.bucket->EstimatedBytes();
        }
      } else {
        d.completion.status = bucket.status();
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        AsyncVolumeStats& s = stats_[volume];
        s.reads += 1;
        s.bytes += d.completion.bytes;
        if (!d.completion.status.ok()) {
          s.failures += 1;
          if (d.completion.status.code() == StatusCode::kCorruption) {
            s.checksum_failures += 1;
          }
        }
        s.total_latency_ms += d.completion.latency_ms;
        latency_samples_[volume].push_back(d.completion.latency_ms);
      }
      {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_.push_back(std::move(d));
      }
      done_cv_.notify_all();
    }
  }

  size_t Deliver(bool block) {
    std::deque<Delivered> ready;
    {
      std::unique_lock<std::mutex> lock(done_mu_);
      if (block) {
        done_cv_.wait(lock, [&] {
          return !done_.empty() ||
                 in_flight_.load(std::memory_order_relaxed) == 0;
        });
      }
      ready.swap(done_);
    }
    // Callbacks run outside every lock so they may SubmitRead reentrantly.
    size_t delivered = 0;
    for (Delivered& d : ready) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      ++delivered;
      if (d.done) d.done(d.completion);
    }
    return delivered;
  }

  BucketStore* store_;
  const StorageTopology* topology_;
  WallClock clock_;
  std::vector<std::unique_ptr<VolumeQueue>> queues_;
  std::atomic<uint64_t> next_ticket_{0};
  std::atomic<size_t> in_flight_{0};

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::deque<Delivered> done_;  // guarded by done_mu_

  mutable std::mutex stats_mu_;
  std::vector<AsyncVolumeStats> stats_;            // guarded by stats_mu_
  std::vector<std::vector<double>> latency_samples_;  // guarded by stats_mu_
};

}  // namespace

std::unique_ptr<AsyncReader> MakeQueuedAsyncReader(
    BucketStore* store, const StorageTopology* topology) {
  return std::make_unique<QueuedAsyncReader>(store, topology);
}

// Out of line here so bucket_store.h needs only a forward declaration.
std::unique_ptr<AsyncReader> BucketStore::NewAsyncReader(
    const StorageTopology* topology) {
  return MakeQueuedAsyncReader(this, topology);
}

}  // namespace liferaft::storage
