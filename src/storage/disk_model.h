// Parameterized disk cost model. The simulator charges virtual time through
// this model instead of performing timed physical I/O, which makes every
// scheduling experiment deterministic while preserving the cost structure
// the paper's results depend on:
//
//   T_b  — cost of reading one bucket sequentially (paper: 1.2 s / 40 MB)
//   T_m  — cost of cross-matching one workload object in memory (0.13 ms)
//   probe — cost of one indexed random-I/O lookup (calibrated ~4 ms so the
//           scan-vs-index break-even lands at ~3% of bucket size, Fig 2)

#ifndef LIFERAFT_STORAGE_DISK_MODEL_H_
#define LIFERAFT_STORAGE_DISK_MODEL_H_

#include <cstdint>

#include "util/clock.h"
#include "util/status.h"

namespace liferaft::storage {

/// Physical parameters of the modeled disk subsystem.
struct DiskModelParams {
  /// Average positioning cost (seek + rotational latency) per random access.
  double seek_ms = 6.0;
  /// Sequential transfer rate. Default chosen so a 40 MB bucket costs
  /// ~1.2 s total, matching the paper's empirically derived T_b.
  double transfer_mb_per_s = 33.5;
  /// In-memory cost of cross-matching one workload object (the paper's T_m).
  double match_ms_per_object = 0.13;
  /// Full cost of one indexed probe: positioning plus a leaf-page read.
  double index_probe_ms = 4.1;

  /// Validates physical plausibility (all rates/costs strictly positive).
  Status Validate() const;
};

/// Pure cost arithmetic over DiskModelParams.
class DiskModel {
 public:
  explicit DiskModel(DiskModelParams params = {});

  const DiskModelParams& params() const { return params_; }

  /// Sequential read of `bytes` from disk: one seek + transfer.
  TimeMs SequentialReadMs(uint64_t bytes) const;

  /// `n` indexed random probes.
  TimeMs IndexedProbesMs(uint64_t n) const;

  /// In-memory matching of `n` workload objects (the T_m term).
  TimeMs MatchMs(uint64_t n) const;

  /// Cost of a shared sequential-scan join of a bucket of `bucket_bytes`
  /// against a workload queue of `queue_objects` objects:
  /// T_b·phi + T_m·|W|, where phi = 0 if the bucket is cached (paper Eq. 1
  /// denominator).
  TimeMs ScanJoinMs(uint64_t bucket_bytes, uint64_t queue_objects,
                    bool bucket_cached) const;

  /// Cost of an indexed join of `queue_objects` probes (used by the hybrid
  /// strategy when the queue is small relative to the bucket).
  TimeMs IndexedJoinMs(uint64_t queue_objects) const;

 private:
  DiskModelParams params_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_DISK_MODEL_H_
