#include "storage/mem_store.h"

namespace liferaft::storage {

MemStore::MemStore(PartitionResult partition) : map_(partition.map) {
  buckets_.reserve(partition.buckets.size());
  for (auto& b : partition.buckets) {
    buckets_.push_back(std::make_shared<const Bucket>(std::move(b)));
  }
}

Result<std::shared_ptr<const Bucket>> MemStore::ReadBucket(BucketIndex index) {
  if (index >= buckets_.size()) {
    return Status::OutOfRange("bucket index " + std::to_string(index) +
                              " >= " + std::to_string(buckets_.size()));
  }
  RecordRead(*buckets_[index]);
  return buckets_[index];
}

Result<std::shared_ptr<const Bucket>> MemStore::ReadBucketForPrefetch(
    BucketIndex index) {
  if (index >= buckets_.size()) {
    return Status::OutOfRange("bucket index " + std::to_string(index) +
                              " >= " + std::to_string(buckets_.size()));
  }
  return buckets_[index];
}

}  // namespace liferaft::storage
