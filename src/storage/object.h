// The catalog record type: one astronomical observation. This is the row of
// the "primary fact table" LifeRaft partitions into buckets.

#ifndef LIFERAFT_STORAGE_OBJECT_H_
#define LIFERAFT_STORAGE_OBJECT_H_

#include <cstdint>

#include "geom/spherical.h"
#include "geom/vec3.h"
#include "htm/htm_id.h"

namespace liferaft::storage {

/// One celestial object of the archive's fact table.
///
/// Plain trivially-copyable struct: the on-disk bucket format serializes it
/// byte-for-byte (fixed-width little-endian fields written individually, so
/// padding never reaches disk).
struct CatalogObject {
  /// Archive-unique object identifier.
  uint64_t object_id = 0;
  /// Level-14 HTM ID of the object's mean position; the sort/partition key.
  htm::HtmId htm_id = 0;
  /// Unit-vector mean position (derived from ra/dec, cached for joins).
  Vec3 pos;
  /// Right ascension / declination in degrees.
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  /// Apparent magnitude (used by query predicates).
  float mag = 0.0f;
  /// Color index (used by query predicates).
  float color = 0.0f;

  SkyPoint sky() const { return SkyPoint{ra_deg, dec_deg}; }
};

/// Builds a CatalogObject from sky coordinates, assigning its HTM ID at the
/// standard object level.
CatalogObject MakeObject(uint64_t object_id, const SkyPoint& p,
                         float mag = 20.0f, float color = 0.5f);

/// Ordering used everywhere objects are stored: by HTM ID, ties by
/// object_id so sorting is total and deterministic.
inline bool ObjectHtmLess(const CatalogObject& a, const CatalogObject& b) {
  if (a.htm_id != b.htm_id) return a.htm_id < b.htm_id;
  return a.object_id < b.object_id;
}

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_OBJECT_H_
