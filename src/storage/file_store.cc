#include "storage/file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "geom/spherical.h"
#include "storage/async_io.h"
#include "storage/columnar.h"
#include "util/arena.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace liferaft::storage {
namespace {

constexpr char kHeaderMagic[8] = {'L', 'F', 'R', 'B', 'K', 'T', '0', '1'};
constexpr char kFooterMagic[8] = {'L', 'F', 'R', 'B', 'K', 'T', 'I', 'X'};
constexpr size_t kRecordBytes = 8 + 8 + 8 + 8 + 4 + 4;
constexpr size_t kBucketHeaderBytes = 8 + 8 + 4;
constexpr size_t kFileHeaderBytes = 8 + 4 + 8;
constexpr size_t kFooterBytes = 8 + 4 + 8;

/// O_DIRECT alignment for offset, length, and buffer address. 4096 covers
/// every mainstream logical block size.
constexpr uint64_t kDirectAlign = 4096;

void AppendRecord(std::string* out, const CatalogObject& o) {
  PutFixed64(out, o.object_id);
  PutFixed64(out, o.htm_id);
  PutDouble(out, o.ra_deg);
  PutDouble(out, o.dec_deg);
  PutFloat(out, o.mag);
  PutFloat(out, o.color);
}

CatalogObject ParseRecord(const char* p) {
  CatalogObject o;
  o.object_id = GetFixed64(p);
  o.htm_id = GetFixed64(p + 8);
  o.ra_deg = GetDouble(p + 16);
  o.dec_deg = GetDouble(p + 24);
  o.mag = GetFloat(p + 32);
  o.color = GetFloat(p + 36);
  o.pos = SkyToUnitVector(o.sky());
  return o;
}

/// Positional read of exactly [offset, offset+len) — a pread(2) loop, so
/// concurrent readers of one descriptor share no file position and no
/// lock.
Status PreadExact(int fd, uint64_t offset, void* buf, size_t len) {
  char* dst = static_cast<char*>(buf);
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd, dst + done, len - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread failed: " + std::string(strerror(errno)));
    }
    if (n == 0) return Status::IOError("short read");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Frees posix_memalign memory (operator delete would be UB).
struct FreeDeleter {
  void operator()(void* p) const { std::free(p); }
};

}  // namespace

FileStore::FileStore(int fd, bool direct_active, FileStoreOptions options,
                     std::string path, uint32_t version,
                     std::vector<uint64_t> offsets,
                     std::vector<uint64_t> page_sizes,
                     std::vector<uint32_t> counts,
                     std::shared_ptr<const BucketMap> map)
    : path_(std::move(path)),
      direct_io_active_(direct_active),
      options_(options),
      version_(version),
      offsets_(std::move(offsets)),
      page_sizes_(std::move(page_sizes)),
      counts_(std::move(counts)),
      map_(std::move(map)) {
  fds_.push_back(fd);
}

FileStore::~FileStore() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Status FileStore::OpenReadFd(int* fd) const {
  int flags = O_RDONLY;
#ifdef O_CLOEXEC
  flags |= O_CLOEXEC;
#endif
  *fd = -1;
#ifdef O_DIRECT
  if (options_.use_direct_io && direct_io_active_) {
    *fd = ::open(path_.c_str(), flags | O_DIRECT);
  }
#endif
  if (*fd < 0) {
    *fd = ::open(path_.c_str(), flags);
  }
  if (*fd < 0) {
    return Status::IOError("cannot open " + path_ + ": " + strerror(errno));
  }
#ifdef POSIX_FADV_RANDOM
  if (options_.advise_random) {
    // Advisory only: a failure (e.g. tmpfs) costs nothing.
    (void)::posix_fadvise(*fd, 0, 0, POSIX_FADV_RANDOM);
  }
#endif
  return Status::OK();
}

Status FileStore::ReadSpan(int fd, uint64_t offset, char* dst,
                           size_t len) const {
  if (!direct_io_active_) return PreadExact(fd, offset, dst, len);
  // O_DIRECT: read the aligned window covering [offset, offset+len) into
  // an aligned bounce buffer, then copy out the requested span. The
  // window's tail may run past EOF (file sizes are not block-aligned), so
  // accept a short read as long as it covers the span.
  const uint64_t lo = offset & ~(kDirectAlign - 1);
  const uint64_t hi =
      (offset + len + kDirectAlign - 1) & ~(kDirectAlign - 1);
  const size_t span = static_cast<size_t>(hi - lo);
  // Per-thread grow-only scratch: each submission-queue worker (and the
  // owner's foreground path) reuses one aligned bounce buffer instead of
  // paying a multi-megabyte posix_memalign + page-fault churn on every
  // read. Thread-local because ReadSpan runs concurrently from every
  // volume's worker.
  thread_local std::unique_ptr<void, FreeDeleter> bounce;
  thread_local size_t bounce_cap = 0;
  if (bounce_cap < span) {
    void* raw = nullptr;
    if (posix_memalign(&raw, kDirectAlign, span) != 0) {
      return Status::IOError("posix_memalign failed for direct read");
    }
    bounce.reset(raw);
    bounce_cap = span;
  }
  char* p = static_cast<char*>(bounce.get());
  size_t done = 0;
  const size_t need = static_cast<size_t>(offset - lo) + len;
  while (done < need) {
    ssize_t n =
        ::pread(fd, p + done, span - done, static_cast<off_t>(lo + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread(O_DIRECT) failed: " +
                             std::string(strerror(errno)));
    }
    if (n == 0) return Status::IOError("short read");
    done += static_cast<size_t>(n);
  }
  std::memcpy(dst, p + (offset - lo), len);
  return Status::OK();
}

Status FileStore::AttachTopology(const StorageTopology* topology) {
  // Keep fd 0 (the Open descriptor), drop any earlier topology's extras.
  for (size_t i = 1; i < fds_.size(); ++i) {
    if (fds_[i] >= 0) ::close(fds_[i]);
  }
  fds_.resize(1);
  topology_ = nullptr;
  if (topology == nullptr || topology->num_volumes() == 1) return Status::OK();
  // One independent descriptor per additional volume: separate kernel file
  // descriptions, so per-volume readahead/fadvise state never couples the
  // arms. (pread needs no per-volume descriptor for correctness — this is
  // about keeping each arm's kernel I/O state its own.)
  for (size_t v = 1; v < topology->num_volumes(); ++v) {
    int fd = -1;
    Status st = OpenReadFd(&fd);
    if (!st.ok()) {
      return Status::IOError("volume " + std::to_string(v) + ": " +
                             st.message());
    }
    fds_.push_back(fd);
  }
  topology_ = topology;
  return Status::OK();
}

std::unique_ptr<AsyncReader> FileStore::NewAsyncReader(
    const StorageTopology* topology) {
  // Default to the attached topology so the submission queues line up
  // with the descriptors AttachTopology opened.
  return MakeQueuedAsyncReader(this,
                               topology != nullptr ? topology : topology_);
}

Status FileStore::Create(const std::string& path,
                         const std::vector<Bucket>& buckets,
                         BucketFormat format) {
  if (buckets.empty()) {
    return Status::InvalidArgument("cannot create a store with no buckets");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create " + path + ": " + strerror(errno));
  }
  // Stream in bounded chunks so a multi-GB catalog never buffers whole in
  // RAM; `written` tracks flushed bytes so offsets stay absolute.
  uint64_t written = 0;
  std::string out;
  auto flush = [&]() -> bool {
    if (out.empty()) return true;
    if (std::fwrite(out.data(), 1, out.size(), f) != out.size()) return false;
    written += out.size();
    out.clear();
    return true;
  };
  out.append(kHeaderMagic, sizeof(kHeaderMagic));
  PutFixed32(&out, static_cast<uint32_t>(format));
  PutFixed64(&out, buckets.size());

  std::vector<uint64_t> offsets;
  offsets.reserve(buckets.size());
  for (const Bucket& b : buckets) {
    offsets.push_back(written + out.size());
    if (format == BucketFormat::kColumnarV2) {
      EncodeColumnarPage(b, &out);
    } else {
      std::string payload;
      PutFixed64(&payload, b.range().lo);
      PutFixed64(&payload, b.range().hi);
      PutFixed32(&payload, static_cast<uint32_t>(b.size()));
      for (const auto& o : b.objects()) AppendRecord(&payload, o);
      uint32_t crc = Crc32(payload.data(), payload.size());
      out += payload;
      PutFixed32(&out, crc);
    }
    if (out.size() >= (8u << 20) && !flush()) {
      std::fclose(f);
      return Status::IOError("write failed for " + path);
    }
  }

  uint64_t index_offset = written + out.size();
  std::string index;
  for (uint64_t off : offsets) PutFixed64(&index, off);
  uint32_t index_crc = Crc32(index.data(), index.size());
  out += index;
  PutFixed64(&out, index_offset);
  PutFixed32(&out, index_crc);
  out.append(kFooterMagic, sizeof(kFooterMagic));

  bool write_ok = flush();
  bool flush_ok = (std::fflush(f) == 0);
  // fsync before close: Create's contract is a durable catalog, and
  // leaving megabytes of dirty pages behind also makes a subsequent
  // O_DIRECT reader pay the writeback synchronously, one read at a time.
  bool sync_ok = (::fsync(::fileno(f)) == 0);
  std::fclose(f);
  if (!write_ok || !flush_ok || !sync_ok) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<FileStore>> FileStore::Open(
    const std::string& path, const FileStoreOptions& options) {
  // Metadata (header, footer, index, page headers) always reads through a
  // buffered descriptor; only bucket-page descriptors honor O_DIRECT.
  int meta_fd = ::open(path.c_str(), O_RDONLY);
  if (meta_fd < 0) {
    return Status::IOError("cannot open " + path + ": " + strerror(errno));
  }
  auto fail = [&](Status s) -> Result<std::unique_ptr<FileStore>> {
    ::close(meta_fd);
    return s;
  };

  // Header.
  char header[kFileHeaderBytes];
  Status st = PreadExact(meta_fd, 0, header, sizeof(header));
  if (!st.ok()) return fail(st);
  if (std::memcmp(header, kHeaderMagic, 8) != 0) {
    return fail(Status::Corruption("bad header magic in " + path));
  }
  uint32_t version = GetFixed32(header + 8);
  if (version != static_cast<uint32_t>(BucketFormat::kRowV1) &&
      version != static_cast<uint32_t>(BucketFormat::kColumnarV2)) {
    return fail(Status::Corruption("unsupported format version " +
                                   std::to_string(version)));
  }
  uint64_t num_buckets = GetFixed64(header + 12);
  if (num_buckets == 0) return fail(Status::Corruption("zero buckets"));

  // Footer.
  off_t end = ::lseek(meta_fd, 0, SEEK_END);
  if (end < 0) return fail(Status::IOError("seek"));
  const uint64_t file_size = static_cast<uint64_t>(end);
  if (file_size < sizeof(header) + kFooterBytes) {
    return fail(Status::Corruption("file too small"));
  }
  char footer[kFooterBytes];
  st = PreadExact(meta_fd, file_size - kFooterBytes, footer, kFooterBytes);
  if (!st.ok()) return fail(st);
  if (std::memcmp(footer + 12, kFooterMagic, 8) != 0) {
    return fail(Status::Corruption("bad footer magic in " + path));
  }
  uint64_t index_offset = GetFixed64(footer);
  uint32_t index_crc = GetFixed32(footer + 8);

  // Offset index.
  std::string index(num_buckets * 8, '\0');
  st = PreadExact(meta_fd, index_offset, index.data(), index.size());
  if (!st.ok()) return fail(st);
  if (Crc32(index.data(), index.size()) != index_crc) {
    return fail(Status::Corruption("index checksum mismatch in " + path));
  }
  std::vector<uint64_t> offsets(num_buckets);
  for (uint64_t i = 0; i < num_buckets; ++i) {
    offsets[i] = GetFixed64(index.data() + i * 8);
  }
  // Page sizes fall out of adjacent offsets (the last page ends where the
  // index starts). Monotone offsets are part of the format contract; a
  // violation means a corrupt index that happened to checksum clean.
  std::vector<uint64_t> page_sizes(num_buckets);
  for (uint64_t i = 0; i < num_buckets; ++i) {
    uint64_t page_end = i + 1 < num_buckets ? offsets[i + 1] : index_offset;
    if (offsets[i] < kFileHeaderBytes || page_end <= offsets[i] ||
        page_end > file_size) {
      return fail(Status::Corruption("non-monotone page offsets in " + path));
    }
    page_sizes[i] = page_end - offsets[i];
  }

  // Reconstruct the bucket map and cardinality metadata from the page
  // headers (range/count live at version-specific offsets).
  std::vector<htm::HtmId> bounds(num_buckets);
  std::vector<uint32_t> counts(num_buckets);
  const bool columnar = version == static_cast<uint32_t>(BucketFormat::kColumnarV2);
  const size_t page_header_bytes =
      columnar ? ColumnarPageLayout::kHeaderBytes : kBucketHeaderBytes;
  for (uint64_t i = 0; i < num_buckets; ++i) {
    char page_header[ColumnarPageLayout::kHeaderBytes];
    if (page_sizes[i] < page_header_bytes) {
      return fail(Status::Corruption("bucket " + std::to_string(i) +
                                     " page smaller than its header"));
    }
    st = PreadExact(meta_fd, offsets[i], page_header, page_header_bytes);
    if (!st.ok()) return fail(st);
    if (columnar) {
      bounds[i] = GetFixed64(page_header + ColumnarPageLayout::kRangeLoOffset);
      counts[i] = GetFixed32(page_header + ColumnarPageLayout::kCountOffset);
    } else {
      bounds[i] = GetFixed64(page_header);
      counts[i] = GetFixed32(page_header + 16);
    }
  }
  auto map = std::make_shared<const BucketMap>(std::move(bounds));

  // Probe O_DIRECT support once: tmpfs (and some network filesystems)
  // reject the flag, in which case reads silently fall back to buffered
  // I/O and direct_io_active() reports false.
  bool direct_active = false;
#ifdef O_DIRECT
  if (options.use_direct_io) {
    int probe = ::open(path.c_str(), O_RDONLY | O_DIRECT);
    if (probe >= 0) {
      direct_active = true;
      ::close(probe);
    }
  }
#endif

  auto store = std::unique_ptr<FileStore>(new FileStore(
      meta_fd, direct_active, options, path, version, std::move(offsets),
      std::move(page_sizes), std::move(counts), std::move(map)));
  // Re-open descriptor 0 per the options (O_DIRECT / fadvise): meta_fd was
  // deliberately plain-buffered for the metadata pass above.
  if (direct_active || options.advise_random) {
    int fd = -1;
    Status open_st = store->OpenReadFd(&fd);
    if (!open_st.ok()) return open_st;
    ::close(store->fds_[0]);
    store->fds_[0] = fd;
  }
  return store;
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucket(
    BucketIndex index) {
  LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const Bucket> bucket,
                            ReadBucketPage(index, /*scratch=*/nullptr));
  RecordRead(*bucket);
  return bucket;
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucketForPrefetch(
    BucketIndex index) {
  return ReadBucketPage(index, /*scratch=*/nullptr);
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucketForPrefetchScratch(
    BucketIndex index, util::Arena* scratch) {
  return ReadBucketPage(index, scratch);
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadColumnarPage(
    BucketIndex index, int fd) {
  const uint64_t page_size = page_sizes_[index];
  // operator new[] aligns to max_align_t, which is what makes the in-place
  // f64 column spans legal; the pad inside the page does the rest.
  std::unique_ptr<char[]> buf(new char[page_size]);
  LIFERAFT_RETURN_IF_ERROR(
      ReadSpan(fd, offsets_[index], buf.get(), page_size));
  auto page = ColumnarPage::Parse(std::move(buf), page_size);
  if (!page.ok()) {
    return Status::Corruption("bucket " + std::to_string(index) + ": " +
                              page.status().message());
  }
  return std::make_shared<const Bucket>(index, std::move(page).value());
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucketPage(
    BucketIndex index, util::Arena* scratch) {
  if (index >= offsets_.size()) {
    return Status::OutOfRange("bucket index out of range");
  }
  const int fd = FdFor(index);
  if (version_ == static_cast<uint32_t>(BucketFormat::kColumnarV2)) {
    return ReadColumnarPage(index, fd);
  }
  // One positional read of the whole page: payload followed by its crc32.
  const uint64_t page_size = page_sizes_[index];
  if (page_size < kBucketHeaderBytes + 4) {
    return Status::Corruption("bucket " + std::to_string(index) +
                              " page smaller than its header");
  }
  // The page buffer dies inside this call, so a caller-scoped bump arena
  // (per-query NoShare worker reads) can back it; deallocation is then a
  // no-op and the bytes are reclaimed wholesale at the caller's next
  // window boundary (~40 bytes/object held per read until then). Null
  // arena = plain heap, byte-identical decode either way.
  util::ArenaVector<char> page(page_size, '\0',
                               util::ArenaAllocator<char>(scratch));
  LIFERAFT_RETURN_IF_ERROR(ReadSpan(fd, offsets_[index], page.data(),
                                    page.size()));
  const size_t payload_size = page_size - 4;
  htm::IdRange range{GetFixed64(page.data()), GetFixed64(page.data() + 8)};
  uint32_t count = GetFixed32(page.data() + 16);
  if (payload_size != kBucketHeaderBytes + count * kRecordBytes) {
    return Status::Corruption("bucket " + std::to_string(index) +
                              " page size does not match its record count");
  }
  if (Crc32(page.data(), payload_size) !=
      GetFixed32(page.data() + payload_size)) {
    return Status::Corruption("bucket " + std::to_string(index) +
                              " checksum mismatch");
  }

  std::vector<CatalogObject> objects;
  objects.reserve(count);
  const char* p = page.data() + kBucketHeaderBytes;
  for (uint32_t i = 0; i < count; ++i, p += kRecordBytes) {
    objects.push_back(ParseRecord(p));
  }
  return std::make_shared<const Bucket>(index, range, std::move(objects));
}

}  // namespace liferaft::storage
