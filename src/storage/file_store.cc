#include "storage/file_store.h"

#include <cerrno>
#include <cstring>

#include "geom/spherical.h"
#include "storage/columnar.h"
#include "util/arena.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace liferaft::storage {
namespace {

constexpr char kHeaderMagic[8] = {'L', 'F', 'R', 'B', 'K', 'T', '0', '1'};
constexpr char kFooterMagic[8] = {'L', 'F', 'R', 'B', 'K', 'T', 'I', 'X'};
constexpr size_t kRecordBytes = 8 + 8 + 8 + 8 + 4 + 4;
constexpr size_t kBucketHeaderBytes = 8 + 8 + 4;
constexpr size_t kFileHeaderBytes = 8 + 4 + 8;
constexpr size_t kFooterBytes = 8 + 4 + 8;

void AppendRecord(std::string* out, const CatalogObject& o) {
  PutFixed64(out, o.object_id);
  PutFixed64(out, o.htm_id);
  PutDouble(out, o.ra_deg);
  PutDouble(out, o.dec_deg);
  PutFloat(out, o.mag);
  PutFloat(out, o.color);
}

CatalogObject ParseRecord(const char* p) {
  CatalogObject o;
  o.object_id = GetFixed64(p);
  o.htm_id = GetFixed64(p + 8);
  o.ra_deg = GetDouble(p + 16);
  o.dec_deg = GetDouble(p + 24);
  o.mag = GetFloat(p + 32);
  o.color = GetFloat(p + 36);
  o.pos = SkyToUnitVector(o.sky());
  return o;
}

Status ReadExact(std::FILE* f, uint64_t offset, void* buf, size_t len) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed: " + std::string(strerror(errno)));
  }
  if (std::fread(buf, 1, len, f) != len) {
    return Status::IOError("short read");
  }
  return Status::OK();
}

}  // namespace

FileStore::FileStore(std::FILE* file, std::string path, uint32_t version,
                     std::vector<uint64_t> offsets,
                     std::vector<uint64_t> page_sizes,
                     std::vector<uint32_t> counts,
                     std::shared_ptr<const BucketMap> map)
    : path_(std::move(path)),
      version_(version),
      offsets_(std::move(offsets)),
      page_sizes_(std::move(page_sizes)),
      counts_(std::move(counts)),
      map_(std::move(map)) {
  auto lane = std::make_unique<IoLane>();
  lane->file = file;
  lanes_.push_back(std::move(lane));
}

FileStore::~FileStore() {
  for (auto& lane : lanes_) {
    if (lane->file != nullptr) std::fclose(lane->file);
  }
}

Status FileStore::AttachTopology(const StorageTopology* topology) {
  // Keep lane 0 (the Open handle), drop any earlier topology's extras.
  for (size_t i = 1; i < lanes_.size(); ++i) {
    if (lanes_[i]->file != nullptr) std::fclose(lanes_[i]->file);
  }
  lanes_.resize(1);
  topology_ = nullptr;
  if (topology == nullptr || topology->num_volumes() == 1) return Status::OK();
  // One independent handle per additional volume: separate file positions
  // and stdio buffers, so per-volume reads never share mutable state.
  for (size_t v = 1; v < topology->num_volumes(); ++v) {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot reopen " + path_ + " for volume " +
                             std::to_string(v) + ": " + strerror(errno));
    }
    auto lane = std::make_unique<IoLane>();
    lane->file = f;
    lanes_.push_back(std::move(lane));
  }
  topology_ = topology;
  return Status::OK();
}

Status FileStore::Create(const std::string& path,
                         const std::vector<Bucket>& buckets,
                         BucketFormat format) {
  if (buckets.empty()) {
    return Status::InvalidArgument("cannot create a store with no buckets");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create " + path + ": " + strerror(errno));
  }
  std::string out;
  out.append(kHeaderMagic, sizeof(kHeaderMagic));
  PutFixed32(&out, static_cast<uint32_t>(format));
  PutFixed64(&out, buckets.size());

  std::vector<uint64_t> offsets;
  offsets.reserve(buckets.size());
  for (const Bucket& b : buckets) {
    offsets.push_back(out.size());
    if (format == BucketFormat::kColumnarV2) {
      EncodeColumnarPage(b, &out);
    } else {
      std::string payload;
      PutFixed64(&payload, b.range().lo);
      PutFixed64(&payload, b.range().hi);
      PutFixed32(&payload, static_cast<uint32_t>(b.size()));
      for (const auto& o : b.objects()) AppendRecord(&payload, o);
      uint32_t crc = Crc32(payload.data(), payload.size());
      out += payload;
      PutFixed32(&out, crc);
    }
  }

  uint64_t index_offset = out.size();
  std::string index;
  for (uint64_t off : offsets) PutFixed64(&index, off);
  uint32_t index_crc = Crc32(index.data(), index.size());
  out += index;
  PutFixed64(&out, index_offset);
  PutFixed32(&out, index_crc);
  out.append(kFooterMagic, sizeof(kFooterMagic));

  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  bool flush_ok = (std::fflush(f) == 0);
  std::fclose(f);
  if (written != out.size() || !flush_ok) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<FileStore>> FileStore::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " + strerror(errno));
  }
  auto fail = [&](Status s) -> Result<std::unique_ptr<FileStore>> {
    std::fclose(f);
    return s;
  };

  // Header.
  char header[kFileHeaderBytes];
  Status st = ReadExact(f, 0, header, sizeof(header));
  if (!st.ok()) return fail(st);
  if (std::memcmp(header, kHeaderMagic, 8) != 0) {
    return fail(Status::Corruption("bad header magic in " + path));
  }
  uint32_t version = GetFixed32(header + 8);
  if (version != static_cast<uint32_t>(BucketFormat::kRowV1) &&
      version != static_cast<uint32_t>(BucketFormat::kColumnarV2)) {
    return fail(Status::Corruption("unsupported format version " +
                                   std::to_string(version)));
  }
  uint64_t num_buckets = GetFixed64(header + 12);
  if (num_buckets == 0) return fail(Status::Corruption("zero buckets"));

  // Footer.
  if (std::fseek(f, 0, SEEK_END) != 0) return fail(Status::IOError("seek"));
  long file_size = std::ftell(f);
  if (file_size < static_cast<long>(sizeof(header) + kFooterBytes)) {
    return fail(Status::Corruption("file too small"));
  }
  char footer[kFooterBytes];
  st = ReadExact(f, static_cast<uint64_t>(file_size) - kFooterBytes, footer,
                 kFooterBytes);
  if (!st.ok()) return fail(st);
  if (std::memcmp(footer + 12, kFooterMagic, 8) != 0) {
    return fail(Status::Corruption("bad footer magic in " + path));
  }
  uint64_t index_offset = GetFixed64(footer);
  uint32_t index_crc = GetFixed32(footer + 8);

  // Offset index.
  std::string index(num_buckets * 8, '\0');
  st = ReadExact(f, index_offset, index.data(), index.size());
  if (!st.ok()) return fail(st);
  if (Crc32(index.data(), index.size()) != index_crc) {
    return fail(Status::Corruption("index checksum mismatch in " + path));
  }
  std::vector<uint64_t> offsets(num_buckets);
  for (uint64_t i = 0; i < num_buckets; ++i) {
    offsets[i] = GetFixed64(index.data() + i * 8);
  }
  // Page sizes fall out of adjacent offsets (the last page ends where the
  // index starts). Monotone offsets are part of the format contract; a
  // violation means a corrupt index that happened to checksum clean.
  std::vector<uint64_t> page_sizes(num_buckets);
  for (uint64_t i = 0; i < num_buckets; ++i) {
    uint64_t end = i + 1 < num_buckets ? offsets[i + 1] : index_offset;
    if (offsets[i] < kFileHeaderBytes || end <= offsets[i] ||
        end > static_cast<uint64_t>(file_size)) {
      return fail(Status::Corruption("non-monotone page offsets in " + path));
    }
    page_sizes[i] = end - offsets[i];
  }

  // Reconstruct the bucket map and cardinality metadata from the page
  // headers (range/count live at version-specific offsets).
  std::vector<htm::HtmId> bounds(num_buckets);
  std::vector<uint32_t> counts(num_buckets);
  const bool columnar = version == static_cast<uint32_t>(BucketFormat::kColumnarV2);
  const size_t page_header_bytes =
      columnar ? ColumnarPageLayout::kHeaderBytes : kBucketHeaderBytes;
  for (uint64_t i = 0; i < num_buckets; ++i) {
    char page_header[ColumnarPageLayout::kHeaderBytes];
    if (page_sizes[i] < page_header_bytes) {
      return fail(Status::Corruption("bucket " + std::to_string(i) +
                                     " page smaller than its header"));
    }
    st = ReadExact(f, offsets[i], page_header, page_header_bytes);
    if (!st.ok()) return fail(st);
    if (columnar) {
      bounds[i] = GetFixed64(page_header + ColumnarPageLayout::kRangeLoOffset);
      counts[i] = GetFixed32(page_header + ColumnarPageLayout::kCountOffset);
    } else {
      bounds[i] = GetFixed64(page_header);
      counts[i] = GetFixed32(page_header + 16);
    }
  }
  auto map = std::make_shared<const BucketMap>(std::move(bounds));

  return std::unique_ptr<FileStore>(new FileStore(
      f, path, version, std::move(offsets), std::move(page_sizes),
      std::move(counts), std::move(map)));
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucket(
    BucketIndex index) {
  LIFERAFT_ASSIGN_OR_RETURN(std::shared_ptr<const Bucket> bucket,
                            ReadBucketPage(index, /*scratch=*/nullptr));
  RecordRead(*bucket);
  return bucket;
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucketForPrefetch(
    BucketIndex index) {
  return ReadBucketPage(index, /*scratch=*/nullptr);
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucketForPrefetchScratch(
    BucketIndex index, util::Arena* scratch) {
  return ReadBucketPage(index, scratch);
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadColumnarPage(
    BucketIndex index, IoLane& lane) {
  const uint64_t page_size = page_sizes_[index];
  // operator new[] aligns to max_align_t, which is what makes the in-place
  // f64 column spans legal; the pad inside the page does the rest.
  std::unique_ptr<char[]> buf(new char[page_size]);
  LIFERAFT_RETURN_IF_ERROR(
      ReadExact(lane.file, offsets_[index], buf.get(), page_size));
  auto page = ColumnarPage::Parse(std::move(buf), page_size);
  if (!page.ok()) {
    return Status::Corruption("bucket " + std::to_string(index) + ": " +
                              page.status().message());
  }
  return std::make_shared<const Bucket>(index, std::move(page).value());
}

Result<std::shared_ptr<const Bucket>> FileStore::ReadBucketPage(
    BucketIndex index, util::Arena* scratch) {
  if (index >= offsets_.size()) {
    return Status::OutOfRange("bucket index out of range");
  }
  IoLane& lane = LaneFor(index);
  std::lock_guard<std::mutex> lock(lane.mu);
  if (version_ == static_cast<uint32_t>(BucketFormat::kColumnarV2)) {
    return ReadColumnarPage(index, lane);
  }
  char page_header[kBucketHeaderBytes];
  LIFERAFT_RETURN_IF_ERROR(
      ReadExact(lane.file, offsets_[index], page_header, sizeof(page_header)));
  htm::IdRange range{GetFixed64(page_header), GetFixed64(page_header + 8)};
  uint32_t count = GetFixed32(page_header + 16);

  // The page buffer dies inside this call, so a caller-scoped bump arena
  // (per-query NoShare worker reads) can back it; deallocation is then a
  // no-op and the bytes are reclaimed wholesale at the caller's next
  // window boundary (~40 bytes/object held per read until then). Null
  // arena = plain heap, byte-identical decode either way.
  util::ArenaVector<char> payload(kBucketHeaderBytes + count * kRecordBytes,
                                  '\0', util::ArenaAllocator<char>(scratch));
  LIFERAFT_RETURN_IF_ERROR(
      ReadExact(lane.file, offsets_[index], payload.data(), payload.size()));
  char crc_buf[4];
  LIFERAFT_RETURN_IF_ERROR(ReadExact(
      lane.file, offsets_[index] + payload.size(), crc_buf, sizeof(crc_buf)));
  if (Crc32(payload.data(), payload.size()) != GetFixed32(crc_buf)) {
    return Status::Corruption("bucket " + std::to_string(index) +
                              " checksum mismatch");
  }

  std::vector<CatalogObject> objects;
  objects.reserve(count);
  const char* p = payload.data() + kBucketHeaderBytes;
  for (uint32_t i = 0; i < count; ++i, p += kRecordBytes) {
    objects.push_back(ParseRecord(p));
  }
  return std::make_shared<const Bucket>(index, range, std::move(objects));
}

}  // namespace liferaft::storage
