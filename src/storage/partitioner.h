// Equal-sized bucket partitioning along the HTM space-filling curve
// (paper §3.1): sort objects by HTM ID and cut the curve into buckets with
// the same number of objects, so every bucket has uniform I/O cost while
// preserving spatial proximity.

#ifndef LIFERAFT_STORAGE_PARTITIONER_H_
#define LIFERAFT_STORAGE_PARTITIONER_H_

#include <memory>
#include <vector>

#include "htm/range_set.h"
#include "storage/bucket.h"
#include "util/status.h"

namespace liferaft::storage {

/// Immutable description of how the HTM curve is cut into buckets. Bucket i
/// owns the inclusive ID range [bounds[i], bounds[i+1]-1]; the ranges tile
/// the whole level-14 curve, so every possible object maps to exactly one
/// bucket.
class BucketMap {
 public:
  /// @param bounds ascending cut points; bounds.front() == LevelMin(14),
  ///        and an implicit final bound of LevelMax(14)+1.
  explicit BucketMap(std::vector<htm::HtmId> bounds);

  size_t num_buckets() const { return bounds_.size(); }

  /// Inclusive HTM range of bucket `i`.
  htm::IdRange RangeOf(BucketIndex i) const;

  /// Bucket owning `id`.
  BucketIndex BucketOf(htm::HtmId id) const;

  /// All buckets whose range overlaps [lo, hi] (a contiguous index run,
  /// since bucket ranges are sorted and tiling).
  std::pair<BucketIndex, BucketIndex> BucketsOverlapping(htm::HtmId lo,
                                                         htm::HtmId hi) const;

 private:
  std::vector<htm::HtmId> bounds_;  // bounds_[0] == LevelMin(kObjectLevel)
};

/// Result of partitioning: the map plus the materialized buckets.
struct PartitionResult {
  std::shared_ptr<const BucketMap> map;
  std::vector<Bucket> buckets;
};

/// Sorts `objects` by HTM ID and cuts them into buckets of
/// `objects_per_bucket` (the final bucket may be smaller). Cut points are
/// placed *between* distinct HTM IDs whenever possible so objects sharing an
/// ID stay in one bucket.
///
/// Returns InvalidArgument if objects is empty or objects_per_bucket == 0.
Result<PartitionResult> PartitionCatalog(std::vector<CatalogObject> objects,
                                         size_t objects_per_bucket);

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_PARTITIONER_H_
