// LRU bucket cache (paper §4): LifeRaft manages bucket caching itself,
// independently of the database server's buffer pool. The cache's residency
// predicate is the phi(i) term of the workload throughput metric — cached
// buckets cost no T_b — so the greedy scheduler naturally gravitates toward
// cached, contentious buckets.
//
// Prefetch contract (cross-batch pipelining): PrefetchAsync(i) starts
// pulling bucket i toward the cache ahead of need, overlapping the
// physical read with the owner thread's join compute. A prefetched bucket
// is *pinned* from issue to claim — it cannot be evicted before use:
//  * already-resident buckets are pinned in place (eviction skips them,
//    transiently exceeding capacity if every entry is pinned);
//  * in-flight buckets live outside the LRU until the owner claims them
//    via Get(), which inserts them most-recently-used and only then runs
//    eviction.
// Stats for a prefetched read are recorded at claim time on the owner
// thread (never from the worker), so I/O accounting stays deterministic.
// The cache itself remains single-owner: every method below must be called
// from the owner thread; only the raw store read runs on the worker pool.

#ifndef LIFERAFT_STORAGE_BUCKET_CACHE_H_
#define LIFERAFT_STORAGE_BUCKET_CACHE_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/bucket.h"
#include "storage/bucket_store.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace liferaft::storage {

/// Cache hit/miss counters. A claimed prefetch counts as a miss (the
/// bucket did come from the store) plus a prefetch_claims tick, so the hit
/// rate keeps its meaning and the claims count says how many misses the
/// pipeline (partially) hid.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// PrefetchAsync calls that started a fetch or pinned a resident bucket.
  uint64_t prefetch_issued = 0;
  /// Prefetches consumed by a later Get of the same bucket.
  uint64_t prefetch_claims = 0;
  /// Prefetches dropped unused (CancelPrefetch, Clear, or an unsupported
  /// store).
  uint64_t prefetch_cancels = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Fixed-capacity LRU cache of immutable buckets, layered over a
/// BucketStore.
class BucketCache {
 public:
  /// The eventual outcome of a prefetch: the bucket, or the store's error.
  using BucketFuture = std::shared_future<Result<std::shared_ptr<const Bucket>>>;

  /// @param store    backing store (not owned; must outlive the cache)
  /// @param capacity maximum number of resident buckets (paper: 20)
  BucketCache(BucketStore* store, size_t capacity);

  /// Drains any in-flight prefetches before destruction.
  ~BucketCache();

  /// True if the bucket is resident (phi(i) == 0). Does not affect LRU
  /// order — the metric may interrogate residency without touching
  /// recency. In-flight prefetches are NOT resident until claimed.
  bool Contains(BucketIndex index) const;

  /// Returns the bucket, reading it from the store on a miss; promotes to
  /// most-recently-used either way. Claims (and unpins) an outstanding
  /// prefetch of the same bucket, recording its deferred I/O stats.
  Result<std::shared_ptr<const Bucket>> Get(BucketIndex index);

  /// Starts fetching `index` ahead of need and pins it until the next
  /// Get(index) or CancelPrefetch(index). Returns a future that yields the
  /// bucket (callers typically ignore it and claim through Get). The read
  /// runs on the attached thread pool when one is set, synchronously on
  /// the caller otherwise — accounting is identical either way. For a
  /// store without SupportsConcurrentReads() the prefetch resolves to
  /// Unimplemented and the eventual Get degrades to a plain miss, again
  /// identically at every thread count. Idempotent while a prefetch of the
  /// same bucket is outstanding.
  BucketFuture PrefetchAsync(BucketIndex index);

  /// Drops an unclaimed prefetch: unpins a resident bucket, or waits out
  /// and discards an in-flight read (no stats are recorded for it).
  /// No-op if no prefetch of `index` is outstanding.
  void CancelPrefetch(BucketIndex index);

  /// True if a prefetch of `index` is outstanding (issued, not yet claimed
  /// or canceled).
  bool IsPrefetchPending(BucketIndex index) const;

  /// True if `index` is resident and pinned by an unclaimed prefetch.
  bool IsPinned(BucketIndex index) const;

  /// Drops everything, including unclaimed prefetches (used between
  /// experiment phases).
  void Clear();

  /// Attaches the worker pool used for asynchronous prefetch reads (not
  /// owned; may be null to force synchronous prefetching). The pool must
  /// outlive the cache's last in-flight prefetch.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// The backing store (for metadata queries; reads should go through
  /// Get so residency stays coherent).
  const BucketStore& store() const { return *store_; }

  /// The backing store, mutable: the per-query NoShare path reads buckets
  /// directly (no shared cache, by definition) and needs the
  /// stats-recording ReadBucket.
  BucketStore* mutable_store() { return store_; }

  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Entry {
    BucketIndex index;
    std::shared_ptr<const Bucket> bucket;
    /// Unclaimed prefetches holding this entry in place (0 = evictable).
    uint32_t pins = 0;
  };

  /// One issued, unclaimed prefetch.
  struct Inflight {
    BucketFuture future;
    /// True if the bucket was already resident at issue (claim = unpin).
    bool pinned_resident = false;
  };

  void Touch(std::list<Entry>::iterator it);
  /// Inserts `bucket` most-recently-used and evicts down to capacity,
  /// skipping pinned entries (so residency may transiently exceed
  /// capacity while pins are held).
  void InsertMru(BucketIndex index, std::shared_ptr<const Bucket> bucket);
  void EvictOverCapacity();

  BucketStore* store_;
  size_t capacity_;
  util::ThreadPool* pool_ = nullptr;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<BucketIndex, std::list<Entry>::iterator> map_;
  std::unordered_map<BucketIndex, Inflight> inflight_;
  CacheStats stats_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BUCKET_CACHE_H_
