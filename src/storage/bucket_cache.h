// Sharded LRU bucket cache (paper §4): LifeRaft manages bucket caching
// itself, independently of the database server's buffer pool. The cache's
// residency predicate is the phi(i) term of the workload throughput metric
// — cached buckets cost no T_b — so the greedy scheduler naturally
// gravitates toward cached, contentious buckets.
//
// Sharding: the bucket id hashes (modulo) to one of N shards, each with its
// own mutex, LRU list, and pin/prefetch state, so worker threads touching
// different shards never contend on a single cache-wide lock. Capacity is
// split as evenly as possible across shards; at num_shards == 1 every code
// path, eviction decision, and counter is byte-identical to the pre-shard
// cache. Hit/miss/eviction/prefetch statistics are aggregated atomically
// across shards (std::atomic counters), so stats() reports identical
// numbers at num_shards == 1 as the unsharded cache did.
//
// Prefetch contract (cross-batch pipelining): PrefetchAsync(i) starts
// pulling bucket i toward the cache ahead of need, overlapping the
// physical read with the owner thread's join compute. A prefetched bucket
// is *pinned* from issue to claim — it cannot be evicted before use:
//  * already-resident buckets are pinned in place (eviction skips them,
//    transiently exceeding capacity if every entry is pinned);
//  * in-flight buckets live outside the LRU until the owner claims them
//    via Get(), which inserts them most-recently-used and only then runs
//    eviction.
// Stats for a prefetched read are recorded at claim time on the owner
// thread (never from the worker), so I/O accounting stays deterministic.
//
// Prefetch-aware eviction (two LRU tiers per shard): the prefetch pipeline
// publishes the scheduler's current prediction window via
// SetPredictionWindow — the buckets it expects to serve (and therefore
// fetch or reuse) next. Eviction demotes those buckets last: the victim is
// the least-recently-used unpinned entry OUTSIDE the window, and only when
// every unpinned entry is inside the window does eviction fall back to the
// LRU protected entry (counted in evictions_protected). The entry the
// triggering insert just touched (the front of the LRU) is never the
// victim while anything else is evictable — protection demotes other
// buckets, it must not bounce the foreground's own bucket straight back
// out. This closes the self-defeating loop where inserting a prefetched
// bucket evicts the very bucket the next prediction wants — generic LRU
// knows nothing about the predictor. With an empty window (the default,
// and whenever prefetching is off) eviction is byte-identical to plain
// LRU.
//
// Threading: every method is safe to call from any thread — per-bucket
// operations serialize on the bucket's shard mutex only, and the store
// contract (bucket_store.h) requires ReadBucket to tolerate the resulting
// cross-shard concurrency. The virtual-clock drivers still funnel all
// modeled accounting through one owner thread (see exec::BatchPipeline);
// the shard locks exist for the physical layer: concurrent prefetch
// issue/claim/cancel across shards and the stress paths exercised in
// tests/test_storage.cc. Known limitation: a Get miss (store read) and a
// CancelPrefetch of an in-flight read block while HOLDING the shard lock,
// stalling that shard for the duration — fine for MemStore's pointer
// handouts, but a store with real read latency serializes its shard; a
// placeholder-entry protocol that drops the lock across the read is the
// upgrade path if that ever bites.

#ifndef LIFERAFT_STORAGE_BUCKET_CACHE_H_
#define LIFERAFT_STORAGE_BUCKET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/bucket.h"
#include "storage/bucket_store.h"
#include "storage/topology.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace liferaft::storage {

/// Cache hit/miss counters. A claimed prefetch counts as a miss (the
/// bucket did come from the store) plus a prefetch_claims tick, so the hit
/// rate keeps its meaning and the claims count says how many misses the
/// pipeline (partially) hid.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// PrefetchAsync calls that started a fetch or pinned a resident bucket.
  uint64_t prefetch_issued = 0;
  /// Prefetches consumed by a later Get of the same bucket.
  uint64_t prefetch_claims = 0;
  /// Prefetches dropped unused (CancelPrefetch, Clear, or an unsupported
  /// store).
  uint64_t prefetch_cancels = 0;
  /// Bytes physically fetched by prefetches that were then dropped without
  /// a claim — the direct cost of mispredicted bets. The adaptive prefetch
  /// controller's stale-claim signal and the bench report both read this.
  uint64_t prefetch_wasted_bytes = 0;
  /// Evictions that had to take a bucket inside the current prediction
  /// window because every unpinned entry was protected (cache pressure
  /// exceeding what prefetch-aware demotion can absorb).
  uint64_t evictions_protected = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Fixed-capacity sharded LRU cache of immutable buckets, layered over a
/// BucketStore.
class BucketCache {
 public:
  /// The eventual outcome of a prefetch: the bucket, or the store's error.
  using BucketFuture = std::shared_future<Result<std::shared_ptr<const Bucket>>>;

  /// @param store      backing store (not owned; must outlive the cache)
  /// @param capacity   maximum number of resident buckets (paper: 20)
  /// @param num_shards lock/LRU shards; clamped to [1, capacity] so every
  ///                   shard holds at least one bucket. 1 reproduces the
  ///                   unsharded cache exactly.
  /// @param topology   optional volume map (not owned; must outlive the
  ///                   cache). When set, buckets shard by their volume
  ///                   (VolumeOf(b) % num_shards) instead of by raw bucket
  ///                   id — under range placement curve-adjacent buckets
  ///                   then share a shard (and its LRU domain), aligning
  ///                   the cache's lock/eviction domains with the arms
  ///                   that feed them; num_shards is additionally clamped
  ///                   to the volume count, since shards beyond it could
  ///                   never receive an entry. Irrelevant at
  ///                   num_shards == 1.
  /// @param capacity_bytes optional byte budget, split across shards like
  ///                   the count capacity. 0 (default) disables byte
  ///                   accounting entirely — byte-identical to the
  ///                   pre-byte-mode cache. When set, each resident bucket
  ///                   is charged its real encoded page size when it has
  ///                   one (columnar v2 buckets) and the kBytesPerObject
  ///                   estimate otherwise, and eviction also runs while a
  ///                   shard is over its byte slice — so at a fixed MB
  ///                   budget, smaller encoded pages mean more resident
  ///                   buckets. The count bound still applies; callers
  ///                   wanting a pure byte budget pass capacity =
  ///                   num_buckets.
  BucketCache(BucketStore* store, size_t capacity, size_t num_shards = 1,
              const StorageTopology* topology = nullptr,
              uint64_t capacity_bytes = 0);

  /// Drains any in-flight prefetches before destruction.
  ~BucketCache();

  /// True if the bucket is resident (phi(i) == 0). Does not affect LRU
  /// order — the metric may interrogate residency without touching
  /// recency. In-flight prefetches are NOT resident until claimed.
  bool Contains(BucketIndex index) const;

  /// Returns the bucket, reading it from the store on a miss; promotes to
  /// most-recently-used either way. Claims (and unpins) an outstanding
  /// prefetch of the same bucket, recording its deferred I/O stats.
  Result<std::shared_ptr<const Bucket>> Get(BucketIndex index);

  /// Starts fetching `index` ahead of need and pins it until the next
  /// Get(index) or CancelPrefetch(index). Returns a future that yields the
  /// bucket (callers typically ignore it and claim through Get). The read
  /// runs on the attached thread pool when one is set, synchronously on
  /// the caller otherwise — accounting is identical either way. For a
  /// store without SupportsConcurrentReads() the prefetch resolves to
  /// Unimplemented and the eventual Get degrades to a plain miss, again
  /// identically at every thread count. Idempotent while a prefetch of the
  /// same bucket is outstanding.
  BucketFuture PrefetchAsync(BucketIndex index);

  /// Inserts an externally-read bucket as most-recently-used (or promotes
  /// it if already resident). The real-I/O path reads pages through
  /// per-volume submission queues (storage/async_io.h) instead of the
  /// cache's own prefetch machinery and hands completed buckets over here;
  /// eviction applies immediately, no hit/miss/prefetch counter moves, and
  /// the just-inserted entry is never its own eviction victim.
  void Put(BucketIndex index, std::shared_ptr<const Bucket> bucket);

  /// Drops an unclaimed prefetch: unpins a resident bucket, or waits out
  /// and discards an in-flight read (no read stats are recorded for it).
  /// Returns the physical bytes the dropped bet had fetched (0 for a
  /// pinned-resident or failed prefetch) — the same quantity charged to
  /// the prefetch_wasted_bytes stat, returned so the caller can attribute
  /// the waste (the adaptive controller's per-arm cost term).
  /// No-op returning 0 if no prefetch of `index` is outstanding.
  uint64_t CancelPrefetch(BucketIndex index);

  /// Publishes the prefetch predictor's current window: buckets predicted
  /// to be served next, demoted last by eviction (see file comment).
  /// Replaces the previous window; an empty span restores plain LRU.
  /// Typically called once per pipeline step with PeekNextBuckets' output.
  void SetPredictionWindow(std::span<const BucketIndex> window);

  /// True if a prefetch of `index` is outstanding (issued, not yet claimed
  /// or canceled).
  bool IsPrefetchPending(BucketIndex index) const;

  /// True if `index` is resident and pinned by an unclaimed prefetch.
  bool IsPinned(BucketIndex index) const;

  /// Drops everything, including unclaimed prefetches (used between
  /// experiment phases).
  void Clear();

  /// Attaches the worker pool used for asynchronous prefetch reads (not
  /// owned; may be null to force synchronous prefetching). The pool must
  /// outlive the cache's last in-flight prefetch.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// The backing store (for metadata queries; reads should go through
  /// Get so residency stays coherent).
  const BucketStore& store() const { return *store_; }

  /// The backing store, mutable: the per-query NoShare path reads buckets
  /// directly (no shared cache, by definition) and needs the
  /// stats-recording ReadBucket.
  BucketStore* mutable_store() { return store_; }

  size_t capacity() const { return capacity_; }
  /// The byte budget (0 = byte accounting off).
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }
  /// Resident buckets across all shards.
  size_t size() const;
  /// Charged bytes resident across all shards (0 when byte accounting is
  /// off — charges are only tracked in byte mode).
  uint64_t resident_bytes() const;
  /// Atomic cross-shard snapshot of the aggregated counters.
  CacheStats stats() const;
  void ResetStats();

 private:
  struct Entry {
    BucketIndex index;
    std::shared_ptr<const Bucket> bucket;
    /// Unclaimed prefetches holding this entry in place (0 = evictable).
    uint32_t pins = 0;
    /// Bytes charged against the shard's byte slice (0 in count-only
    /// mode).
    uint64_t bytes = 0;
  };

  /// One issued, unclaimed prefetch.
  struct Inflight {
    BucketFuture future;
    /// True if the bucket was already resident at issue (claim = unpin).
    bool pinned_resident = false;
  };

  /// One lock domain: an independent LRU over its slice of the capacity.
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;
    /// This shard's slice of the byte budget (0 = byte accounting off).
    uint64_t capacity_bytes = 0;
    /// Charged bytes of the resident entries (maintained only in byte
    /// mode).
    uint64_t bytes_used = 0;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<BucketIndex, std::list<Entry>::iterator> map;
    std::unordered_map<BucketIndex, Inflight> inflight;
    /// This shard's slice of the prediction window (protected tier).
    std::unordered_set<BucketIndex> window;
  };

  /// Monotonically aggregated counters, incremented under shard locks but
  /// readable lock-free from any thread.
  struct AtomicStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> prefetch_issued{0};
    std::atomic<uint64_t> prefetch_claims{0};
    std::atomic<uint64_t> prefetch_cancels{0};
    std::atomic<uint64_t> prefetch_wasted_bytes{0};
    std::atomic<uint64_t> evictions_protected{0};
  };

  /// Shard key: the owning volume when a topology is attached (aligning
  /// lock/LRU domains with arms), the raw bucket id otherwise.
  size_t ShardKey(BucketIndex index) const {
    return topology_ != nullptr
               ? static_cast<size_t>(topology_->VolumeOf(index))
               : static_cast<size_t>(index);
  }
  Shard& ShardFor(BucketIndex index) {
    return *shards_[ShardKey(index) % shards_.size()];
  }
  const Shard& ShardFor(BucketIndex index) const {
    return *shards_[ShardKey(index) % shards_.size()];
  }

  // Shard-local helpers; the shard's mutex must be held.
  static void Touch(Shard& shard, std::list<Entry>::iterator it);
  /// Records the physical bytes of a dropped-without-claim prefetch and
  /// returns them. Call with the resolved future of a non-resident
  /// inflight entry.
  uint64_t RecordWastedPrefetch(const Inflight& inflight);
  /// Inserts `bucket` most-recently-used and evicts down to the shard's
  /// capacity, skipping pinned entries (so residency may transiently
  /// exceed capacity while pins are held).
  void InsertMru(Shard& shard, BucketIndex index,
                 std::shared_ptr<const Bucket> bucket);
  void EvictOverCapacity(Shard& shard);

  /// Bytes a resident bucket is charged in byte mode: the real encoded
  /// page size when the bucket carries one, the modeled estimate
  /// otherwise.
  static uint64_t ChargedBytes(const Bucket& b) {
    const uint64_t encoded = b.encoded_bytes();
    return encoded > 0 ? encoded : b.EstimatedBytes();
  }

  BucketStore* store_;
  size_t capacity_;
  uint64_t capacity_bytes_ = 0;
  const StorageTopology* topology_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  AtomicStats stats_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BUCKET_CACHE_H_
