// LRU bucket cache (paper §4): LifeRaft manages bucket caching itself,
// independently of the database server's buffer pool. The cache's residency
// predicate is the phi(i) term of the workload throughput metric — cached
// buckets cost no T_b — so the greedy scheduler naturally gravitates toward
// cached, contentious buckets.

#ifndef LIFERAFT_STORAGE_BUCKET_CACHE_H_
#define LIFERAFT_STORAGE_BUCKET_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/bucket.h"
#include "storage/bucket_store.h"
#include "util/status.h"

namespace liferaft::storage {

/// Cache hit/miss counters.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Fixed-capacity LRU cache of immutable buckets, layered over a
/// BucketStore.
class BucketCache {
 public:
  /// @param store    backing store (not owned; must outlive the cache)
  /// @param capacity maximum number of resident buckets (paper: 20)
  BucketCache(BucketStore* store, size_t capacity);

  /// True if the bucket is resident (phi(i) == 0). Does not affect LRU
  /// order — the metric may interrogate residency without touching
  /// recency.
  bool Contains(BucketIndex index) const;

  /// Returns the bucket, reading it from the store on a miss; promotes to
  /// most-recently-used either way.
  Result<std::shared_ptr<const Bucket>> Get(BucketIndex index);

  /// Drops everything (used between experiment phases).
  void Clear();

  /// The backing store (for metadata queries; reads should go through
  /// Get so residency stays coherent).
  const BucketStore& store() const { return *store_; }

  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Entry {
    BucketIndex index;
    std::shared_ptr<const Bucket> bucket;
  };

  void Touch(std::list<Entry>::iterator it);

  BucketStore* store_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<BucketIndex, std::list<Entry>::iterator> map_;
  CacheStats stats_;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BUCKET_CACHE_H_
