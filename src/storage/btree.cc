#include "storage/btree.h"

#include <algorithm>

namespace liferaft::storage {

Result<BTreeIndex> BTreeIndex::BulkLoad(std::vector<CatalogObject> objects) {
  if (!std::is_sorted(objects.begin(), objects.end(), ObjectHtmLess)) {
    return Status::InvalidArgument("BulkLoad requires objects sorted by key");
  }
  BTreeIndex tree;
  tree.records_ = std::move(objects);

  size_t n = tree.records_.size();
  size_t num_leaves = (n + kLeafCapacity - 1) / kLeafCapacity;
  tree.leaf_first_key_.reserve(num_leaves);
  for (size_t i = 0; i < num_leaves; ++i) {
    tree.leaf_first_key_.push_back(tree.records_[i * kLeafCapacity].htm_id);
  }

  // Build internal levels until one root node suffices.
  std::vector<htm::HtmId> level = tree.leaf_first_key_;
  tree.height_ = 1;
  while (level.size() > kInternalFanout) {
    std::vector<htm::HtmId> parent;
    parent.reserve((level.size() + kInternalFanout - 1) / kInternalFanout);
    for (size_t i = 0; i < level.size(); i += kInternalFanout) {
      parent.push_back(level[i]);
    }
    tree.internal_levels_.push_back(parent);
    level = std::move(parent);
    ++tree.height_;
  }
  if (!tree.leaf_first_key_.empty()) ++tree.height_;  // root level
  return tree;
}

BTreeIndex::ScanStats BTreeIndex::RangeScan(
    htm::HtmId lo, htm::HtmId hi,
    const std::function<void(const CatalogObject&)>& fn) const {
  ScanStats stats;
  if (records_.empty() || lo > hi) return stats;

  // Locate the first leaf whose first key could be in range: the last leaf
  // with first_key <= lo (records before it are all < lo).
  auto it = std::upper_bound(leaf_first_key_.begin(), leaf_first_key_.end(),
                             lo);
  size_t leaf = (it == leaf_first_key_.begin())
                    ? 0
                    : static_cast<size_t>(it - leaf_first_key_.begin()) - 1;

  for (; leaf < leaf_first_key_.size(); ++leaf) {
    if (leaf_first_key_[leaf] > hi) break;
    ++stats.leaves_visited;
    size_t begin = leaf * kLeafCapacity;
    size_t end = std::min(begin + kLeafCapacity, records_.size());
    for (size_t i = begin; i < end; ++i) {
      const CatalogObject& o = records_[i];
      ++stats.records_scanned;
      if (o.htm_id < lo) continue;
      if (o.htm_id > hi) return stats;
      ++stats.matches;
      fn(o);
    }
  }
  return stats;
}

std::vector<CatalogObject> BTreeIndex::RangeLookup(htm::HtmId lo,
                                                   htm::HtmId hi) const {
  std::vector<CatalogObject> out;
  RangeScan(lo, hi, [&](const CatalogObject& o) { out.push_back(o); });
  return out;
}

}  // namespace liferaft::storage
