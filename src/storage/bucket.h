// A bucket: one equal-sized, HTM-contiguous partition of the fact table.
// Buckets are LifeRaft's unit of I/O and of scheduling.

#ifndef LIFERAFT_STORAGE_BUCKET_H_
#define LIFERAFT_STORAGE_BUCKET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "htm/range_set.h"
#include "storage/object.h"

namespace liferaft::storage {

/// Index of a bucket within its catalog (0-based, in HTM-curve order).
using BucketIndex = uint32_t;

/// An HTM-contiguous run of catalog objects, sorted by HTM ID.
class Bucket {
 public:
  Bucket(BucketIndex index, htm::IdRange range,
         std::vector<CatalogObject> objects);

  /// Position of this bucket in its catalog (HTM-curve order).
  BucketIndex index() const { return index_; }
  /// Inclusive level-14 HTM ID range this bucket owns. Bucket ranges of a
  /// catalog tile the whole curve without gaps.
  const htm::IdRange& range() const { return range_; }
  /// All objects, sorted by (htm_id, object_id).
  const std::vector<CatalogObject>& objects() const { return objects_; }
  /// Object count (the equal-count partitioning target).
  size_t size() const { return objects_.size(); }

  /// Objects whose HTM ID lies in [lo, hi] (binary search; objects are
  /// sorted by HTM ID).
  std::span<const CatalogObject> ObjectsInRange(htm::HtmId lo,
                                                htm::HtmId hi) const;

  /// Approximate in-memory/on-disk size. The paper's 10,000-object buckets
  /// are 40 MB, i.e. ~4 KB/object of full row payload; we model that ratio
  /// rather than sizeof(CatalogObject) so I/O-cost arithmetic matches the
  /// paper's regime.
  uint64_t EstimatedBytes() const;

  /// Bytes per object used by EstimatedBytes().
  static constexpr uint64_t kBytesPerObject = 4096;

 private:
  BucketIndex index_;
  htm::IdRange range_;
  std::vector<CatalogObject> objects_;  // sorted by (htm_id, object_id)
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BUCKET_H_
