// A bucket: one equal-sized, HTM-contiguous partition of the fact table.
// Buckets are LifeRaft's unit of I/O and of scheduling.
//
// A bucket holds its objects in one of two representations:
//   - row: a sorted std::vector<CatalogObject> (MemStore, v1 file pages);
//   - columnar: a shared, parsed v2 page (storage/columnar.h) whose
//     fixed-width columns are scanned zero-copy by the join kernels.
// Both answer the same queries; objects() materializes rows lazily from a
// columnar page, so row-oriented consumers keep working unchanged.

#ifndef LIFERAFT_STORAGE_BUCKET_H_
#define LIFERAFT_STORAGE_BUCKET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "htm/range_set.h"
#include "storage/columnar.h"
#include "storage/object.h"

namespace liferaft::storage {

/// Index of a bucket within its catalog (0-based, in HTM-curve order).
using BucketIndex = uint32_t;

/// An HTM-contiguous run of catalog objects, sorted by HTM ID.
class Bucket {
 public:
  Bucket(BucketIndex index, htm::IdRange range,
         std::vector<CatalogObject> objects);

  /// Columnar representation: the bucket borrows nothing and copies
  /// nothing — it shares the parsed page (cache entries, in-flight
  /// prefetches, and scan slices all point at the same bytes).
  Bucket(BucketIndex index, std::shared_ptr<const ColumnarPage> page);

  /// Position of this bucket in its catalog (HTM-curve order).
  BucketIndex index() const { return index_; }
  /// Inclusive level-14 HTM ID range this bucket owns. Bucket ranges of a
  /// catalog tile the whole curve without gaps.
  const htm::IdRange& range() const { return range_; }
  /// All objects, sorted by (htm_id, object_id). Columnar buckets
  /// materialize the rows on first call (thread-safe, cached in the shared
  /// page); the zero-copy scan paths never call this.
  const std::vector<CatalogObject>& objects() const {
    return page_ == nullptr ? objects_ : page_->rows();
  }
  /// Object count (the equal-count partitioning target).
  size_t size() const { return size_; }

  /// True when this bucket is backed by a v2 columnar page.
  bool is_columnar() const { return page_ != nullptr; }
  /// The backing page (columnar buckets only; nullptr otherwise).
  const ColumnarPage* page() const { return page_.get(); }
  /// Zero-copy scan handle (columnar buckets only; callers must check
  /// is_columnar() first).
  ColumnarBucketView view() const { return ColumnarBucketView(page_.get()); }

  /// Real encoded on-disk page bytes, or 0 when the bucket has no encoded
  /// form (row buckets from MemStore / v1 pages).
  uint64_t encoded_bytes() const {
    return page_ == nullptr ? 0 : page_->encoded_bytes();
  }

  /// Objects whose HTM ID lies in [lo, hi] (binary search; objects are
  /// sorted by HTM ID). Materializes rows on columnar buckets — kernels
  /// that can scan zero-copy use view().EqualRange() instead.
  std::span<const CatalogObject> ObjectsInRange(htm::HtmId lo,
                                                htm::HtmId hi) const;

  /// Approximate in-memory/on-disk size. The paper's 10,000-object buckets
  /// are 40 MB, i.e. ~4 KB/object of full row payload; we model that ratio
  /// rather than sizeof(CatalogObject) so I/O-cost arithmetic matches the
  /// paper's regime.
  uint64_t EstimatedBytes() const;

  /// Bytes per object used by EstimatedBytes().
  static constexpr uint64_t kBytesPerObject = 4096;

 private:
  BucketIndex index_;
  htm::IdRange range_;
  std::vector<CatalogObject> objects_;  // sorted by (htm_id, object_id)
  std::shared_ptr<const ColumnarPage> page_;
  size_t size_ = 0;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_BUCKET_H_
