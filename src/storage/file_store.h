// File-backed BucketStore: a single packed file of checksummed bucket pages
// plus a trailing offset index.
//
// File layout (all integers little-endian):
//
//   [header]   magic "LFRBKT01" (8) | format version u32 | num_buckets u64
//   [bucket]*  one page per bucket, format per the version field
//   [index]    num_buckets * offset u64 (byte offset of each bucket page)
//   [footer]   index_offset u64 | index_crc u32 | magic "LFRBKTIX" (8)
//
// Version 1 (row) pages:
//
//   [bucket]   range_lo u64 | range_hi u64 | count u32 |
//              count * record | payload_crc u32
//   [record]   object_id u64 | htm_id u64 | ra f64 | dec f64 |
//              mag f32 | color f32        (40 bytes)
//
// Version 2 (columnar) pages are the self-describing checksummed pages of
// storage/columnar.h: delta+varint HTM-id column, compressed object-id
// column, raw fixed-width position/attribute columns scanned zero-copy.
// Open() auto-detects the version from the file header; a store holds pages
// of one version only.
//
// The unit-vector position is recomputed from ra/dec at load time rather
// than stored, keeping records compact and making the file byte-stable
// across platforms.

#ifndef LIFERAFT_STORAGE_FILE_STORE_H_
#define LIFERAFT_STORAGE_FILE_STORE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/bucket_store.h"
#include "storage/topology.h"

namespace liferaft::storage {

/// On-disk bucket page format, selectable at write time and auto-detected
/// at read time. Values match the file header's version field.
enum class BucketFormat : uint32_t {
  kRowV1 = 1,
  kColumnarV2 = 2,
};

/// Bucket store reading from the packed-file format above. Bucket pages are
/// read (and checksum-verified) on every ReadBucket call; caching is the
/// BucketCache's job, exactly as in the paper where bucket caching is
/// "managed independently of the database server".
class FileStore : public BucketStore {
 public:
  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  /// Serializes a partitioned catalog to `path` in the given format,
  /// overwriting any existing file.
  static Status Create(const std::string& path,
                       const std::vector<Bucket>& buckets,
                       BucketFormat format = BucketFormat::kRowV1);

  /// Opens an existing store, validating magic, version (1 or 2), and
  /// index checksum.
  static Result<std::unique_ptr<FileStore>> Open(const std::string& path);

  /// Routes page I/O per volume (the multi-arm topology): each volume gets
  /// its own FILE handle and I/O mutex, so reads on different volumes
  /// proceed concurrently — physically independent arms — while reads on
  /// one volume still serialize, mirroring the one-arm-per-volume cost
  /// model. Call during setup, before any concurrent reads; the topology
  /// is borrowed and must outlive the store (pass null to restore the
  /// single shared handle).
  Status AttachTopology(const StorageTopology* topology);

  /// The page format this store was written with.
  BucketFormat format() const { return static_cast<BucketFormat>(version_); }

  size_t num_buckets() const override { return offsets_.size(); }
  const BucketMap& bucket_map() const override { return *map_; }
  size_t BucketObjectCount(BucketIndex index) const override {
    return index < counts_.size() ? counts_[index] : 0;
  }
  /// Real on-disk page size in bytes (both formats; derived from the
  /// offset index at Open).
  uint64_t EncodedBucketBytes(BucketIndex index) const override {
    return index < page_sizes_.size() ? page_sizes_[index] : 0;
  }
  Result<std::shared_ptr<const Bucket>> ReadBucket(BucketIndex index) override;
  /// Page reads share one FILE handle per volume, so prefetch reads
  /// serialize against owner reads of the same volume on that volume's
  /// mutex (still overlapping with the owner's join compute, which is the
  /// point of the pipeline) and run fully concurrently across volumes.
  bool SupportsConcurrentReads() const override { return true; }
  Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetch(
      BucketIndex index) override;
  /// Uses `scratch` for the page decode buffer (NoShare worker reads).
  Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetchScratch(
      BucketIndex index, util::Arena* scratch) override;

 private:
  /// One volume's I/O lane: a dedicated file handle plus the mutex its
  /// page reads serialize on.
  struct IoLane {
    std::FILE* file = nullptr;
    std::mutex mu;
  };

  FileStore(std::FILE* file, std::string path, uint32_t version,
            std::vector<uint64_t> offsets, std::vector<uint64_t> page_sizes,
            std::vector<uint32_t> counts,
            std::shared_ptr<const BucketMap> map);

  /// The raw seek+read+checksum+decode of one bucket page, serialized on
  /// its volume's lane mutex; records no stats. `scratch`, when non-null,
  /// backs the transient v1 page buffer (v2 pages live on in the returned
  /// bucket, so they always own their bytes on the heap).
  Result<std::shared_ptr<const Bucket>> ReadBucketPage(BucketIndex index,
                                                       util::Arena* scratch);

  /// v2: one aligned whole-page read handed to ColumnarPage::Parse. Any
  /// corruption — truncation, checksum, bad columns — comes back as a
  /// clean Status naming the bucket.
  Result<std::shared_ptr<const Bucket>> ReadColumnarPage(BucketIndex index,
                                                         IoLane& lane);

  IoLane& LaneFor(BucketIndex index) {
    return *lanes_[topology_ != nullptr
                       ? topology_->VolumeOf(index) % lanes_.size()
                       : 0];
  }

  std::string path_;
  /// lanes_[0] holds the handle Open created; AttachTopology adds one lane
  /// per additional volume.
  std::vector<std::unique_ptr<IoLane>> lanes_;
  const StorageTopology* topology_ = nullptr;
  uint32_t version_ = 1;
  std::vector<uint64_t> offsets_;
  std::vector<uint64_t> page_sizes_;
  std::vector<uint32_t> counts_;
  std::shared_ptr<const BucketMap> map_;
};

/// Convenience: serialize a partitioned catalog to `path` in the given
/// format (the write-side twin of FileStore::Open's auto-detection).
inline Status WriteCatalog(const std::string& path,
                           const std::vector<Bucket>& buckets,
                           BucketFormat format = BucketFormat::kRowV1) {
  return FileStore::Create(path, buckets, format);
}

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_FILE_STORE_H_
