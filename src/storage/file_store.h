// File-backed BucketStore: a single packed file of checksummed bucket pages
// plus a trailing offset index.
//
// File layout (all integers little-endian):
//
//   [header]   magic "LFRBKT01" (8) | format version u32 | num_buckets u64
//   [bucket]*  one page per bucket, format per the version field
//   [index]    num_buckets * offset u64 (byte offset of each bucket page)
//   [footer]   index_offset u64 | index_crc u32 | magic "LFRBKTIX" (8)
//
// Version 1 (row) pages:
//
//   [bucket]   range_lo u64 | range_hi u64 | count u32 |
//              count * record | payload_crc u32
//   [record]   object_id u64 | htm_id u64 | ra f64 | dec f64 |
//              mag f32 | color f32        (40 bytes)
//
// Version 2 (columnar) pages are the self-describing checksummed pages of
// storage/columnar.h: delta+varint HTM-id column, compressed object-id
// column, raw fixed-width position/attribute columns scanned zero-copy.
// Open() auto-detects the version from the file header; a store holds pages
// of one version only.
//
// The unit-vector position is recomputed from ra/dec at load time rather
// than stored, keeping records compact and making the file byte-stable
// across platforms.

#ifndef LIFERAFT_STORAGE_FILE_STORE_H_
#define LIFERAFT_STORAGE_FILE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/bucket_store.h"
#include "storage/topology.h"

namespace liferaft::storage {

/// On-disk bucket page format, selectable at write time and auto-detected
/// at read time. Values match the file header's version field.
enum class BucketFormat : uint32_t {
  kRowV1 = 1,
  kColumnarV2 = 2,
};

/// Read-side tuning knobs, fixed at Open time.
struct FileStoreOptions {
  /// Open read descriptors with O_DIRECT so page reads bypass the kernel
  /// page cache and genuinely block in the device queue — the honest
  /// setting for wall-clock I/O measurement. Falls back to buffered I/O
  /// (observable via direct_io_active()) on filesystems that reject the
  /// flag, e.g. tmpfs.
  bool use_direct_io = false;
  /// posix_fadvise(POSIX_FADV_RANDOM) on every read descriptor: bucket
  /// page access under the scheduler is random, so kernel readahead only
  /// pollutes the page cache.
  bool advise_random = false;
};

/// Bucket store reading from the packed-file format above. Bucket pages are
/// read (and checksum-verified) on every ReadBucket call; caching is the
/// BucketCache's job, exactly as in the paper where bucket caching is
/// "managed independently of the database server".
class FileStore : public BucketStore {
 public:
  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  /// Serializes a partitioned catalog to `path` in the given format,
  /// overwriting any existing file.
  static Status Create(const std::string& path,
                       const std::vector<Bucket>& buckets,
                       BucketFormat format = BucketFormat::kRowV1);

  /// Opens an existing store, validating magic, version (1 or 2), and
  /// index checksum.
  static Result<std::unique_ptr<FileStore>> Open(
      const std::string& path, const FileStoreOptions& options = {});

  /// Routes page I/O per volume (the multi-arm topology): each volume gets
  /// its own read descriptor, so per-volume kernel state (file description,
  /// fadvise hints, O_DIRECT) stays independent — physically independent
  /// arms. Every read is a positional pread(2), so reads never serialize,
  /// neither across volumes nor within one; the one-arm-per-volume cost is
  /// the async submission queue's job (storage/async_io.h), not a lock's.
  /// Call during setup; the topology is borrowed and must outlive the
  /// store (pass null to restore the single shared descriptor).
  Status AttachTopology(const StorageTopology* topology);

  /// The page format this store was written with.
  BucketFormat format() const { return static_cast<BucketFormat>(version_); }

  /// True when O_DIRECT was requested AND the filesystem accepted it.
  bool direct_io_active() const { return direct_io_active_; }

  size_t num_buckets() const override { return offsets_.size(); }
  const BucketMap& bucket_map() const override { return *map_; }
  size_t BucketObjectCount(BucketIndex index) const override {
    return index < counts_.size() ? counts_[index] : 0;
  }
  /// Real on-disk page size in bytes (both formats; derived from the
  /// offset index at Open).
  uint64_t EncodedBucketBytes(BucketIndex index) const override {
    return index < page_sizes_.size() ? page_sizes_[index] : 0;
  }
  Result<std::shared_ptr<const Bucket>> ReadBucket(BucketIndex index) override;
  /// Every page read is one positional pread(2) on the bucket's volume
  /// descriptor: no file-position state, no I/O mutex, so prefetch reads,
  /// owner reads, and async-queue reads all proceed fully concurrently —
  /// across volumes and within one.
  bool SupportsConcurrentReads() const override { return true; }
  Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetch(
      BucketIndex index) override;
  /// Uses `scratch` for the page decode buffer (NoShare worker reads).
  Result<std::shared_ptr<const Bucket>> ReadBucketForPrefetchScratch(
      BucketIndex index, util::Arena* scratch) override;

  /// Per-volume async submission queues over this store's descriptors
  /// (storage/async_io.h). `topology` may be null (single queue).
  std::unique_ptr<AsyncReader> NewAsyncReader(
      const StorageTopology* topology) override;

 private:
  FileStore(int fd, bool direct_active, FileStoreOptions options,
            std::string path, uint32_t version, std::vector<uint64_t> offsets,
            std::vector<uint64_t> page_sizes, std::vector<uint32_t> counts,
            std::shared_ptr<const BucketMap> map);

  /// Opens one read descriptor per this store's options (O_DIRECT with
  /// buffered fallback, optional fadvise). On success `*fd` is owned by
  /// the caller.
  Status OpenReadFd(int* fd) const;

  /// Positional read of [offset, offset+len) on `fd`, honoring
  /// direct_io_active_ (aligned bounce-buffer window read under O_DIRECT,
  /// plain pread loop otherwise).
  Status ReadSpan(int fd, uint64_t offset, char* dst, size_t len) const;

  /// The raw read+checksum+decode of one bucket page — one ReadSpan of the
  /// whole page on the bucket's volume descriptor; records no stats.
  /// `scratch`, when non-null, backs the transient v1 page buffer (v2
  /// pages live on in the returned bucket, so they always own their bytes
  /// on the heap).
  Result<std::shared_ptr<const Bucket>> ReadBucketPage(BucketIndex index,
                                                       util::Arena* scratch);

  /// v2: one whole-page read handed to ColumnarPage::Parse. Any
  /// corruption — truncation, checksum, bad columns — comes back as a
  /// clean Status naming the bucket.
  Result<std::shared_ptr<const Bucket>> ReadColumnarPage(BucketIndex index,
                                                         int fd);

  int FdFor(BucketIndex index) const {
    return fds_[topology_ != nullptr ? topology_->VolumeOf(index) % fds_.size()
                                     : 0];
  }

  std::string path_;
  /// fds_[0] holds the descriptor Open created; AttachTopology adds one
  /// per additional volume.
  std::vector<int> fds_;
  bool direct_io_active_ = false;
  FileStoreOptions options_;
  const StorageTopology* topology_ = nullptr;
  uint32_t version_ = 1;
  std::vector<uint64_t> offsets_;
  std::vector<uint64_t> page_sizes_;
  std::vector<uint32_t> counts_;
  std::shared_ptr<const BucketMap> map_;
};

/// Convenience: serialize a partitioned catalog to `path` in the given
/// format (the write-side twin of FileStore::Open's auto-detection).
inline Status WriteCatalog(const std::string& path,
                           const std::vector<Bucket>& buckets,
                           BucketFormat format = BucketFormat::kRowV1) {
  return FileStore::Create(path, buckets, format);
}

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_FILE_STORE_H_
