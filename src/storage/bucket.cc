#include "storage/bucket.h"

#include <algorithm>
#include <cassert>

namespace liferaft::storage {

Bucket::Bucket(BucketIndex index, htm::IdRange range,
               std::vector<CatalogObject> objects)
    : index_(index), range_(range), objects_(std::move(objects)) {
  assert(std::is_sorted(objects_.begin(), objects_.end(), ObjectHtmLess));
#ifndef NDEBUG
  for (const auto& o : objects_) {
    assert(range_.Contains(o.htm_id) && "object outside bucket range");
  }
#endif
}

std::span<const CatalogObject> Bucket::ObjectsInRange(htm::HtmId lo,
                                                      htm::HtmId hi) const {
  auto first = std::lower_bound(
      objects_.begin(), objects_.end(), lo,
      [](const CatalogObject& o, htm::HtmId v) { return o.htm_id < v; });
  auto last = std::upper_bound(
      objects_.begin(), objects_.end(), hi,
      [](htm::HtmId v, const CatalogObject& o) { return v < o.htm_id; });
  return {objects_.data() + (first - objects_.begin()),
          static_cast<size_t>(last - first)};
}

uint64_t Bucket::EstimatedBytes() const {
  return static_cast<uint64_t>(objects_.size()) * kBytesPerObject;
}

}  // namespace liferaft::storage
