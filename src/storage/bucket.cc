#include "storage/bucket.h"

#include <algorithm>
#include <cassert>

namespace liferaft::storage {

Bucket::Bucket(BucketIndex index, htm::IdRange range,
               std::vector<CatalogObject> objects)
    : index_(index), range_(range), objects_(std::move(objects)) {
  size_ = objects_.size();
  assert(std::is_sorted(objects_.begin(), objects_.end(), ObjectHtmLess));
#ifndef NDEBUG
  for (const auto& o : objects_) {
    assert(range_.Contains(o.htm_id) && "object outside bucket range");
  }
#endif
}

Bucket::Bucket(BucketIndex index, std::shared_ptr<const ColumnarPage> page)
    : index_(index), range_(page->range()), page_(std::move(page)) {
  size_ = page_->size();
}

std::span<const CatalogObject> Bucket::ObjectsInRange(htm::HtmId lo,
                                                      htm::HtmId hi) const {
  const std::vector<CatalogObject>& objs = objects();
  auto first = std::lower_bound(
      objs.begin(), objs.end(), lo,
      [](const CatalogObject& o, htm::HtmId v) { return o.htm_id < v; });
  auto last = std::upper_bound(
      objs.begin(), objs.end(), hi,
      [](htm::HtmId v, const CatalogObject& o) { return v < o.htm_id; });
  return {objs.data() + (first - objs.begin()),
          static_cast<size_t>(last - first)};
}

uint64_t Bucket::EstimatedBytes() const {
  return static_cast<uint64_t>(size_) * kBytesPerObject;
}

}  // namespace liferaft::storage
