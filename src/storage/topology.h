// Multi-volume storage topology: the archive's buckets spread across N
// independent volumes, each modeling its own disk arm. The paper's SDSS
// deployment serves buckets off many spindles; everything above this layer
// (cache, pipeline, schedulers, engines) was built against a single global
// disk arm, which this map generalizes away:
//
//   * placement — a pluggable bucket -> volume map. kRange keeps
//     HTM-curve-adjacent buckets on the same volume (bucket indices are
//     curve order, so a contiguous index range is a contiguous sky region
//     — sequential drains stay sequential per arm, and the cache's shard
//     map can align with it); kHash stripes buckets round-robin for
//     maximum read parallelism on curve-local workloads.
//   * per-volume disk models — every volume owns a DiskModel (uniform by
//     default, optionally heterogeneous per volume), so T_b is a property
//     of where a bucket lives, not of the archive.
//
// The topology itself is an immutable map plus cost models: safe to read
// from any thread, owning no clocks or queues. Per-arm virtual clocks and
// in-flight fetch queues live with the accounting owner
// (exec::BatchPipeline keeps one prefetch queue and one controller per
// arm; VolumeIoStats below is the telemetry row it fills per volume).
// A single-volume topology (num_volumes == 1) is the exact pre-topology
// system: every bucket maps to volume 0 under either placement and every
// layer's accounting reduces to the single-arm model byte for byte.

#ifndef LIFERAFT_STORAGE_TOPOLOGY_H_
#define LIFERAFT_STORAGE_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/bucket.h"
#include "storage/disk_model.h"
#include "util/clock.h"
#include "util/status.h"

namespace liferaft::storage {

/// Index of a volume (disk arm) within a topology.
using VolumeIndex = uint32_t;

/// How buckets are placed onto volumes.
enum class VolumePlacement {
  /// Contiguous bucket-index ranges (= HTM-curve ranges) per volume, split
  /// as evenly as possible with the remainder on the low volumes.
  kRange,
  /// bucket % num_volumes striping.
  kHash,
};

const char* VolumePlacementName(VolumePlacement placement);

/// Topology construction knobs (engine/facade options embed this).
struct StorageTopologyConfig {
  /// Independent volumes (disk arms). 1 reproduces the single-arm system
  /// exactly.
  size_t num_volumes = 1;
  VolumePlacement placement = VolumePlacement::kRange;
  /// Per-volume disk parameters; empty = every volume uses the default
  /// model, otherwise must have exactly num_volumes entries.
  std::vector<DiskModelParams> volume_disk;
  /// Dedicate an extra disk arm to the workload spill file. Spill
  /// restores are then charged to that arm instead of the batch bucket's
  /// arm, so prefetches on the bucket arm no longer queue behind (or slip
  /// by) restore I/O — the deployment analogue of putting scratch on its
  /// own spindle. The restore still serializes in the batch's foreground
  /// phase (the join needs the restored objects), so the completion clock
  /// is charged identically; only the per-arm busy accounting moves.
  /// Off (the default), or with spill disabled, nothing changes byte for
  /// byte. The spill arm owns no buckets: placement, cache sharding, and
  /// per-volume T_b pricing are unaffected.
  bool spill_arm = false;

  Status Validate() const;
};

/// Per-volume I/O telemetry of one run, filled by the accounting owner
/// (exec::BatchPipeline) and reported through sim::RunMetrics.
struct VolumeIoStats {
  /// Foreground bucket reads charged to this arm (scan misses).
  uint64_t foreground_reads = 0;
  /// Modeled bytes of those foreground reads.
  uint64_t foreground_bytes = 0;
  /// Prefetch fetches issued on this arm / later claimed by a batch.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_claims = 0;
  /// Modeled disk-busy time of this arm: foreground I/O (incl. spill
  /// restores) plus issued prefetch fetches.
  TimeMs busy_ms = 0.0;
  /// Fetch latency this arm's claimed prefetches hid behind compute.
  TimeMs hidden_ms = 0.0;
  /// This arm's virtual clock at end of run counting only consumed work
  /// (foreground phases and claimed fetches); the run's makespan is the
  /// max of these and the completion clock.
  TimeMs consumed_until_ms = 0.0;
  /// Busy-until including speculative bets that were later dropped — how
  /// far ahead of consumption the arm was driven.
  TimeMs busy_until_ms = 0.0;
};

/// Immutable bucket -> volume map with per-volume disk models.
class StorageTopology {
 public:
  /// Builds the map for `num_buckets` buckets. `default_disk` is used for
  /// every volume config.volume_disk leaves unspecified. num_volumes is
  /// clamped to [1, num_buckets] so every volume owns at least one bucket.
  static Result<StorageTopology> Create(size_t num_buckets,
                                        const StorageTopologyConfig& config,
                                        const DiskModelParams& default_disk);

  size_t num_volumes() const { return models_.size(); }
  size_t num_buckets() const { return num_buckets_; }
  VolumePlacement placement() const { return placement_; }

  /// The volume owning bucket `b`.
  VolumeIndex VolumeOf(BucketIndex b) const {
    if (placement_ == VolumePlacement::kHash) {
      return static_cast<VolumeIndex>(b % models_.size());
    }
    // Range placement: buckets_per_volume_ splits with the remainder on
    // the low volumes, mirroring the cache's capacity split.
    const size_t idx = static_cast<size_t>(b);
    const size_t wide = range_rem_ * (range_base_ + 1);
    if (idx < wide) {
      return static_cast<VolumeIndex>(idx / (range_base_ + 1));
    }
    return static_cast<VolumeIndex>(range_rem_ +
                                    (idx - wide) / range_base_);
  }

  /// The disk model of volume `v` / of the volume owning bucket `b`.
  const DiskModel& model(VolumeIndex v) const { return models_[v]; }
  const DiskModel& ModelFor(BucketIndex b) const {
    return models_[VolumeOf(b)];
  }

  /// True if every volume shares identical disk parameters (the uniform
  /// default; heterogeneous topologies make T_b placement-dependent).
  bool uniform() const { return uniform_; }

  /// Whether a dedicated spill arm was configured (see
  /// StorageTopologyConfig::spill_arm). The spill arm is NOT a bucket
  /// volume: num_volumes() excludes it and VolumeOf never returns it.
  bool has_spill_arm() const { return has_spill_arm_; }

  /// Arm index of the spill arm within the pipeline's arm array: one past
  /// the last bucket volume. Meaningful only when has_spill_arm().
  VolumeIndex spill_volume() const {
    return static_cast<VolumeIndex>(models_.size());
  }

 private:
  StorageTopology(size_t num_buckets, VolumePlacement placement,
                  std::vector<DiskModel> models, bool spill_arm);

  size_t num_buckets_;
  VolumePlacement placement_;
  std::vector<DiskModel> models_;
  // Range-placement split: base buckets per volume, first range_rem_
  // volumes own one more.
  size_t range_base_ = 0;
  size_t range_rem_ = 0;
  bool uniform_ = true;
  bool has_spill_arm_ = false;
};

}  // namespace liferaft::storage

#endif  // LIFERAFT_STORAGE_TOPOLOGY_H_
