#include "query/spill.h"

#include <cerrno>
#include <cstring>

#include "query/workload.h"
#include "util/arena.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace liferaft::query {
namespace {

void AppendQueryObject(std::string* out, const QueryObject& o) {
  PutFixed64(out, o.id);
  PutDouble(out, o.ra_deg);
  PutDouble(out, o.dec_deg);
  PutDouble(out, o.radius_arcsec);
  const auto& ranges = o.htm_ranges.ranges();
  PutFixed32(out, static_cast<uint32_t>(ranges.size()));
  for (const auto& r : ranges) {
    PutFixed64(out, r.lo);
    PutFixed64(out, r.hi);
  }
}

const char* ParseQueryObject(const char* p, QueryObject* o) {
  o->id = GetFixed64(p);
  p += 8;
  o->ra_deg = GetDouble(p);
  p += 8;
  o->dec_deg = GetDouble(p);
  p += 8;
  o->radius_arcsec = GetDouble(p);
  p += 8;
  o->pos = SkyToUnitVector(o->sky());
  uint32_t n_ranges = GetFixed32(p);
  p += 4;
  o->htm_ranges = htm::RangeSet();
  for (uint32_t i = 0; i < n_ranges; ++i) {
    o->htm_ranges.Add(GetFixed64(p), GetFixed64(p + 8));
    p += 16;
  }
  return p;
}

}  // namespace

WorkloadSpillFile::WorkloadSpillFile(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

WorkloadSpillFile::~WorkloadSpillFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());  // spill files are run-scoped scratch
  }
}

Result<std::unique_ptr<WorkloadSpillFile>> WorkloadSpillFile::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create spill file " + path + ": " +
                           strerror(errno));
  }
  return std::unique_ptr<WorkloadSpillFile>(
      new WorkloadSpillFile(f, path));
}

Status WorkloadSpillFile::Spill(storage::BucketIndex bucket,
                                const std::vector<WorkloadEntry>& entries) {
  if (entries.empty()) {
    return Status::InvalidArgument("nothing to spill");
  }
  std::string payload;
  PutFixed32(&payload, static_cast<uint32_t>(entries.size()));
  for (const WorkloadEntry& e : entries) {
    PutFixed64(&payload, e.query_id);
    PutDouble(&payload, e.arrival_ms);
    PutFloat(&payload, e.predicate.min_mag);
    PutFloat(&payload, e.predicate.max_mag);
    PutFloat(&payload, e.predicate.min_color);
    PutFloat(&payload, e.predicate.max_color);
    PutFixed32(&payload, static_cast<uint32_t>(e.objects.size()));
    for (const QueryObject& o : e.objects) AppendQueryObject(&payload, o);
  }
  std::string record;
  PutFixed64(&record, payload.size());
  PutFixed32(&record, Crc32(payload.data(), payload.size()));
  record += payload;

  if (std::fseek(file_, static_cast<long>(end_offset_), SEEK_SET) != 0) {
    return Status::IOError("spill seek failed");
  }
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("spill write failed");
  }
  segments_[bucket].push_back(Segment{end_offset_, record.size()});
  end_offset_ += record.size();
  bytes_written_ += record.size();
  ++segments_spilled_;
  return Status::OK();
}

Status WorkloadSpillFile::Restore(storage::BucketIndex bucket,
                                  std::vector<WorkloadEntry>* out,
                                  uint64_t* bytes_read,
                                  util::Arena* scratch) {
  auto it = segments_.find(bucket);
  if (it == segments_.end()) return Status::OK();  // nothing spilled
  uint64_t read_total = 0;
  for (const Segment& seg : it->second) {
    // Segment read buffer: batch-scoped scratch, so a caller-provided
    // bump arena can back it (deallocation becomes a no-op; the owner
    // reclaims at the next dispatch). Null arena = plain heap.
    util::ArenaVector<char> record(seg.length, '\0',
                                   util::ArenaAllocator<char>(scratch));
    if (std::fseek(file_, static_cast<long>(seg.offset), SEEK_SET) != 0) {
      return Status::IOError("restore seek failed");
    }
    if (std::fread(record.data(), 1, record.size(), file_) !=
        record.size()) {
      return Status::IOError("restore read failed");
    }
    read_total += seg.length;

    uint64_t payload_size = GetFixed64(record.data());
    uint32_t crc = GetFixed32(record.data() + 8);
    if (payload_size + 12 != record.size()) {
      return Status::Corruption("spill segment length mismatch");
    }
    const char* payload = record.data() + 12;
    if (Crc32(payload, payload_size) != crc) {
      return Status::Corruption("spill segment checksum mismatch");
    }

    const char* p = payload;
    uint32_t n_entries = GetFixed32(p);
    p += 4;
    for (uint32_t e = 0; e < n_entries; ++e) {
      WorkloadEntry entry;
      entry.query_id = GetFixed64(p);
      p += 8;
      entry.arrival_ms = GetDouble(p);
      p += 8;
      entry.predicate.min_mag = GetFloat(p);
      p += 4;
      entry.predicate.max_mag = GetFloat(p);
      p += 4;
      entry.predicate.min_color = GetFloat(p);
      p += 4;
      entry.predicate.max_color = GetFloat(p);
      p += 4;
      uint32_t n_objects = GetFixed32(p);
      p += 4;
      entry.objects.reserve(n_objects);
      for (uint32_t i = 0; i < n_objects; ++i) {
        QueryObject o;
        p = ParseQueryObject(p, &o);
        entry.objects.push_back(std::move(o));
      }
      out->push_back(std::move(entry));
    }
    ++segments_restored_;
  }
  segments_.erase(it);
  if (bytes_read != nullptr) *bytes_read = read_total;
  return Status::OK();
}

bool WorkloadSpillFile::HasSegments(storage::BucketIndex bucket) const {
  return segments_.count(bucket) > 0;
}

}  // namespace liferaft::query
