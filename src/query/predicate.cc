#include "query/predicate.h"

#include <cmath>
#include <sstream>

namespace liferaft::query {

std::string Predicate::ToString() const {
  if (IsTrivial()) return "true";
  std::ostringstream out;
  bool first = true;
  auto emit = [&](const std::string& clause) {
    if (!first) out << " AND ";
    out << clause;
    first = false;
  };
  if (std::isfinite(min_mag)) {
    emit("mag >= " + std::to_string(min_mag));
  }
  if (std::isfinite(max_mag)) {
    emit("mag <= " + std::to_string(max_mag));
  }
  if (std::isfinite(min_color)) {
    emit("color >= " + std::to_string(min_color));
  }
  if (std::isfinite(max_color)) {
    emit("color <= " + std::to_string(max_color));
  }
  return out.str();
}

}  // namespace liferaft::query
