// Cross-match query model (paper §3). A cross-match query arrives at an
// archive as a list of objects (often intermediate results shipped from
// another site of the federation); each object carries its mean position,
// a match error radius, and a bounding range of HTM IDs — the coarse filter
// that assigns it to buckets.

#ifndef LIFERAFT_QUERY_QUERY_H_
#define LIFERAFT_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/spherical.h"
#include "geom/vec3.h"
#include "htm/range_set.h"
#include "query/predicate.h"
#include "util/clock.h"

namespace liferaft::query {

using QueryId = uint64_t;

/// One object to be cross-matched against the local archive.
struct QueryObject {
  /// Identifier within the parent query (e.g. the row id of the
  /// intermediate result that produced it).
  uint64_t id = 0;
  /// Mean cartesian position (unit vector).
  Vec3 pos;
  /// Sky coordinates in degrees.
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  /// Probabilistic match radius in arcseconds (instrument error).
  double radius_arcsec = 3.0;
  /// Conservative bounding ranges of level-14 HTM IDs: every archive object
  /// that could match lies inside one of these ranges. Usually a single
  /// range; an error circle straddling a mesh-root boundary produces a few
  /// (bounded) fragments rather than one curve-spanning hull.
  htm::RangeSet htm_ranges;

  SkyPoint sky() const { return SkyPoint{ra_deg, dec_deg}; }
};

/// Builds a QueryObject, computing its conservative HTM bounding range from
/// the error circle.
QueryObject MakeQueryObject(uint64_t id, const SkyPoint& p,
                            double radius_arcsec = 3.0);

/// A cross-match query as seen by one archive: the batch of objects to
/// match, plus post-join predicates. `arrival_ms` is stamped by the system
/// when the query is admitted.
struct CrossMatchQuery {
  QueryId id = 0;
  TimeMs arrival_ms = 0.0;
  /// Objects to cross-match (the paper's "list of objects to be joined").
  std::vector<QueryObject> objects;
  /// Query-specific predicate applied to archive objects that succeed in
  /// the spatial join.
  Predicate predicate;
  /// Human-readable provenance (e.g. "twomass x sdss x usnob").
  std::string label;
};

/// A successful cross-match: a (query object, archive object) pair within
/// the error radius that passed the query predicate.
struct Match {
  QueryId query_id = 0;
  uint64_t query_object_id = 0;
  uint64_t catalog_object_id = 0;
  double separation_arcsec = 0.0;
  /// Position of the matched archive object (so downstream consumers —
  /// e.g. the next site of a federated cross-match — need no extra lookup).
  double ra_deg = 0.0;
  double dec_deg = 0.0;

  SkyPoint sky() const { return SkyPoint{ra_deg, dec_deg}; }
};

}  // namespace liferaft::query

#endif  // LIFERAFT_QUERY_QUERY_H_
