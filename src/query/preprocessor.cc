#include "query/preprocessor.h"

#include <map>

namespace liferaft::query {

std::vector<BucketWorkload> SplitQueryByBucket(
    const CrossMatchQuery& query, const storage::BucketMap& map) {
  std::map<storage::BucketIndex, std::vector<QueryObject>> by_bucket;
  for (const QueryObject& o : query.objects) {
    for (const htm::IdRange& r : o.htm_ranges.ranges()) {
      auto [lo_bucket, hi_bucket] = map.BucketsOverlapping(r.lo, r.hi);
      for (storage::BucketIndex b = lo_bucket; b <= hi_bucket; ++b) {
        auto& vec = by_bucket[b];
        // The same object may reach this bucket via several of its range
        // fragments; add it once.
        if (vec.empty() || vec.back().id != o.id) vec.push_back(o);
      }
    }
  }
  std::vector<BucketWorkload> out;
  out.reserve(by_bucket.size());
  for (auto& [bucket, objects] : by_bucket) {
    out.push_back(BucketWorkload{bucket, std::move(objects)});
  }
  return out;
}

}  // namespace liferaft::query
