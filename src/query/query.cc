#include "query/query.h"

#include "htm/cover.h"

namespace liferaft::query {

QueryObject MakeQueryObject(uint64_t id, const SkyPoint& p,
                            double radius_arcsec) {
  QueryObject o;
  o.id = id;
  o.ra_deg = p.ra_deg;
  o.dec_deg = p.dec_deg;
  o.pos = SkyToUnitVector(p);
  o.radius_arcsec = radius_arcsec;
  // Conservative cover of the error circle, with the fragment count bounded
  // so an object ships at most a handful of ranges (the paper ships "a
  // range of HTM ID values" per object as its bounding box). Over-coverage
  // is harmless: the exact distance test in the refinement step decides
  // correctness.
  o.htm_ranges = htm::CoverCircle(p, radius_arcsec / kArcsecPerDeg,
                                  htm::kObjectLevel, /*max_ranges=*/8);
  return o;
}

}  // namespace liferaft::query
