// Workload-queue overflow (paper §6 future work): "we plan to address
// workload overflow in which queries will need to be stored to disk and
// fetched into memory for processing... the scheduler will migrate matching
// pairs of workload queue and bucket into memory for evaluation."
//
// WorkloadSpillFile is an append-only segment file of serialized workload
// entries. The WorkloadManager spills a queue's entries when the in-memory
// object budget is exceeded and restores them when the scheduler dispatches
// that bucket. Queue *metadata* (object counts, oldest age) always stays in
// memory, so the aged-throughput metric is unaffected by residency.

#ifndef LIFERAFT_QUERY_SPILL_H_
#define LIFERAFT_QUERY_SPILL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "storage/bucket.h"
#include "util/status.h"

namespace liferaft::util {
class Arena;  // util/arena.h; Restore only passes the pointer through
}  // namespace liferaft::util

namespace liferaft::query {

struct WorkloadEntry;  // defined in workload.h

/// Append-only spill file with per-bucket segment lists.
class WorkloadSpillFile {
 public:
  ~WorkloadSpillFile();

  WorkloadSpillFile(const WorkloadSpillFile&) = delete;
  WorkloadSpillFile& operator=(const WorkloadSpillFile&) = delete;

  /// Creates (truncates) the spill file at `path`.
  static Result<std::unique_ptr<WorkloadSpillFile>> Create(
      const std::string& path);

  /// Appends `entries` as one checksummed segment for `bucket`.
  /// On success the caller may drop the in-memory copies.
  Status Spill(storage::BucketIndex bucket,
               const std::vector<WorkloadEntry>& entries);

  /// Reads back and forgets every segment spilled for `bucket` (restored
  /// entries are appended to *out). `bytes_read`, if non-null, receives
  /// the number of file bytes read (for I/O cost accounting). `scratch`,
  /// if non-null, bump-allocates the transient segment read buffers —
  /// they die inside the call, so the owner may reset the arena between
  /// Restore calls; restored entries are byte-identical either way.
  Status Restore(storage::BucketIndex bucket, std::vector<WorkloadEntry>* out,
                 uint64_t* bytes_read = nullptr,
                 util::Arena* scratch = nullptr);

  /// True if any unspilled segments remain for `bucket`.
  bool HasSegments(storage::BucketIndex bucket) const;

  /// Total bytes ever written (the file is append-only; space from
  /// restored segments is reclaimed only by destroying the file).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t segments_spilled() const { return segments_spilled_; }
  uint64_t segments_restored() const { return segments_restored_; }

 private:
  WorkloadSpillFile(std::FILE* file, std::string path);

  struct Segment {
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  std::FILE* file_;
  std::string path_;
  uint64_t end_offset_ = 0;
  std::unordered_map<storage::BucketIndex, std::vector<Segment>> segments_;
  uint64_t bytes_written_ = 0;
  uint64_t segments_spilled_ = 0;
  uint64_t segments_restored_ = 0;
};

}  // namespace liferaft::query

#endif  // LIFERAFT_QUERY_SPILL_H_
