// The Query Pre-Processor (paper §4): decomposes an incoming cross-match
// query into per-bucket sub-queries ("workloads"). Each sub-query operates
// on a single bucket and can be processed in any order; the union of
// sub-query results is the query result.

#ifndef LIFERAFT_QUERY_PREPROCESSOR_H_
#define LIFERAFT_QUERY_PREPROCESSOR_H_

#include <vector>

#include "query/query.h"
#include "storage/partitioner.h"

namespace liferaft::query {

/// W_ij: the objects of one query that overlap one bucket.
struct BucketWorkload {
  storage::BucketIndex bucket = 0;
  /// Objects of the query whose bounding ranges overlap this bucket.
  std::vector<QueryObject> objects;
};

/// Splits a query's objects by bucket. An object overlapping several
/// buckets is assigned to each (duplicate elimination is unnecessary: the
/// spatial join on point data matches each archive object in exactly one
/// bucket). The returned workloads are sorted by bucket index and
/// non-empty.
std::vector<BucketWorkload> SplitQueryByBucket(
    const CrossMatchQuery& query, const storage::BucketMap& map);

}  // namespace liferaft::query

#endif  // LIFERAFT_QUERY_PREPROCESSOR_H_
