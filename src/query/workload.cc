#include "query/workload.h"

#include <algorithm>
#include <cassert>

namespace liferaft::query {

void WorkloadQueue::Push(WorkloadEntry entry) {
  assert(!entry.objects.empty());
  if (total_objects_ == 0 || entry.arrival_ms < oldest_arrival_ms_) {
    oldest_arrival_ms_ = entry.arrival_ms;
  }
  total_objects_ += entry.objects.size();
  resident_objects_ += entry.objects.size();
  entries_.push_back(std::move(entry));
}

std::vector<WorkloadEntry> WorkloadQueue::TakeAll() {
  std::vector<WorkloadEntry> out(std::make_move_iterator(entries_.begin()),
                                 std::make_move_iterator(entries_.end()));
  entries_.clear();
  total_objects_ = 0;
  resident_objects_ = 0;
  oldest_arrival_ms_ = 0.0;
  return out;
}

std::vector<WorkloadEntry> WorkloadQueue::ExtractResidents() {
  std::vector<WorkloadEntry> out(std::make_move_iterator(entries_.begin()),
                                 std::make_move_iterator(entries_.end()));
  entries_.clear();
  resident_objects_ = 0;
  // total_objects_ and oldest_arrival_ms_ deliberately unchanged: the work
  // is still pending, just spilled.
  return out;
}

WorkloadManager::WorkloadManager(size_t num_buckets) {
  queues_.reserve(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    queues_.emplace_back(static_cast<storage::BucketIndex>(i));
  }
}

Status WorkloadManager::EnableSpill(const std::string& path,
                                    uint64_t memory_budget_objects) {
  if (memory_budget_objects == 0) {
    return Status::InvalidArgument("memory budget must be positive");
  }
  if (spill_ != nullptr) {
    return Status::FailedPrecondition("spill already enabled");
  }
  LIFERAFT_ASSIGN_OR_RETURN(spill_, WorkloadSpillFile::Create(path));
  memory_budget_objects_ = memory_budget_objects;
  return MaybeSpill();
}

Status WorkloadManager::MaybeSpill() {
  if (spill_ == nullptr) return Status::OK();
  while (resident_objects_ > memory_budget_objects_) {
    // Victim: the queue with the most resident objects (spilling it frees
    // the most memory per segment; its metadata keeps it schedulable).
    WorkloadQueue* victim = nullptr;
    for (storage::BucketIndex b : active_) {
      WorkloadQueue& q = queues_[b];
      if (q.resident_objects() == 0) continue;
      if (victim == nullptr ||
          q.resident_objects() > victim->resident_objects()) {
        victim = &q;
      }
    }
    if (victim == nullptr) break;  // everything resident is in-flight
    uint64_t freed = victim->resident_objects();
    std::vector<WorkloadEntry> entries = victim->ExtractResidents();
    uint64_t before = spill_->bytes_written();
    LIFERAFT_RETURN_IF_ERROR(spill_->Spill(victim->bucket(), entries));
    resident_objects_ -= freed;
    ++spill_stats_.segments_spilled;
    spill_stats_.bytes_spilled += spill_->bytes_written() - before;
  }
  return Status::OK();
}

Result<size_t> WorkloadManager::Admit(
    const CrossMatchQuery& query,
    const std::vector<BucketWorkload>& workloads) {
  if (workloads.empty()) {
    return Status::InvalidArgument("query " + std::to_string(query.id) +
                                   " produced no bucket workloads");
  }
  if (pending_parts_.count(query.id) != 0) {
    return Status::AlreadyExists("query " + std::to_string(query.id) +
                                 " is already pending");
  }
  for (const BucketWorkload& w : workloads) {
    if (w.bucket >= queues_.size()) {
      return Status::OutOfRange("workload bucket out of range");
    }
    if (w.objects.empty()) {
      return Status::InvalidArgument("empty bucket workload");
    }
  }
  for (const BucketWorkload& w : workloads) {
    WorkloadEntry entry;
    entry.query_id = query.id;
    entry.arrival_ms = query.arrival_ms;
    entry.predicate = query.predicate;
    entry.objects = w.objects;
    total_pending_objects_ += entry.objects.size();
    resident_objects_ += entry.objects.size();
    queues_[w.bucket].Push(std::move(entry));
    active_.insert(w.bucket);
  }
  pending_parts_[query.id] = workloads.size();
  LIFERAFT_RETURN_IF_ERROR(MaybeSpill());
  return workloads.size();
}

std::vector<WorkloadEntry> WorkloadManager::TakeBucket(
    storage::BucketIndex b, std::vector<QueryId>* completed,
    uint64_t* restored_bytes) {
  assert(b < queues_.size());
  resident_objects_ -= queues_[b].resident_objects();
  std::vector<WorkloadEntry> entries = queues_[b].TakeAll();
  active_.erase(b);

  if (spill_ != nullptr && spill_->HasSegments(b)) {
    uint64_t bytes = 0;
    // The previous dispatch's restore buffers are long dead (they never
    // outlive Restore), so the arena can be reclaimed wholesale here.
    util::Arena* scratch = nullptr;
    if (use_restore_arena_) {
      restore_arena_.Reset();
      scratch = &restore_arena_;
    }
    Status st = spill_->Restore(b, &entries, &bytes, scratch);
    // A spill-file failure loses queued work; surface loudly. (The API
    // predates Status plumbing here; corruption of our own scratch file
    // is a process-fatal invariant violation.)
    assert(st.ok() && "workload spill restore failed");
    (void)st;
    ++spill_stats_.segments_restored;
    spill_stats_.bytes_restored += bytes;
    if (restored_bytes != nullptr) *restored_bytes = bytes;
  } else if (restored_bytes != nullptr) {
    *restored_bytes = 0;
  }

  for (const WorkloadEntry& e : entries) {
    total_pending_objects_ -= e.objects.size();
    auto it = pending_parts_.find(e.query_id);
    assert(it != pending_parts_.end());
    if (--it->second == 0) {
      if (completed != nullptr) completed->push_back(e.query_id);
      pending_parts_.erase(it);
    }
  }
  return entries;
}

size_t WorkloadManager::PendingParts(QueryId id) const {
  auto it = pending_parts_.find(id);
  return it == pending_parts_.end() ? 0 : it->second;
}

}  // namespace liferaft::query
