// Post-join predicates. Cross-match objects from many queries are
// interleaved in one workload queue and joined in a single pass; the
// query-specific filters are applied afterwards to each query's own matches
// (paper §3.1).

#ifndef LIFERAFT_QUERY_PREDICATE_H_
#define LIFERAFT_QUERY_PREDICATE_H_

#include <limits>
#include <string>

#include "storage/object.h"

namespace liferaft::query {

/// Conjunctive range predicate over catalog attributes. An unset bound is
/// unrestricted; the default predicate accepts everything.
struct Predicate {
  float min_mag = -std::numeric_limits<float>::infinity();
  float max_mag = std::numeric_limits<float>::infinity();
  float min_color = -std::numeric_limits<float>::infinity();
  float max_color = std::numeric_limits<float>::infinity();

  bool Matches(const storage::CatalogObject& o) const {
    return Matches(o.mag, o.color);
  }

  /// Attribute-column form for the columnar scan path (identical result to
  /// the row form by construction).
  bool Matches(float mag, float color) const {
    return mag >= min_mag && mag <= max_mag && color >= min_color &&
           color <= max_color;
  }

  bool IsTrivial() const {
    return min_mag == -std::numeric_limits<float>::infinity() &&
           max_mag == std::numeric_limits<float>::infinity() &&
           min_color == -std::numeric_limits<float>::infinity() &&
           max_color == std::numeric_limits<float>::infinity();
  }

  std::string ToString() const;
};

}  // namespace liferaft::query

#endif  // LIFERAFT_QUERY_PREDICATE_H_
