// The Workload Manager (paper §4): per-bucket workload queues holding the
// interleaved sub-queries of all pending queries, plus the bookkeeping the
// scheduler's metric needs — queue sizes (contention) and oldest-request
// ages (starvation resistance) — and the mapping from queries to their
// outstanding sub-queries (a query completes when its last sub-query is
// served).

#ifndef LIFERAFT_QUERY_WORKLOAD_H_
#define LIFERAFT_QUERY_WORKLOAD_H_

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "query/preprocessor.h"
#include "query/query.h"
#include "query/spill.h"
#include "util/arena.h"
#include "util/clock.h"
#include "util/status.h"

namespace liferaft::query {

/// One pending sub-query in a bucket's workload queue.
struct WorkloadEntry {
  QueryId query_id = 0;
  TimeMs arrival_ms = 0.0;
  Predicate predicate;
  std::vector<QueryObject> objects;
};

/// The workload queue of one bucket: sub-queries from multiple queries
/// interleaved, served together in a single pass.
class WorkloadQueue {
 public:
  explicit WorkloadQueue(storage::BucketIndex bucket) : bucket_(bucket) {}

  storage::BucketIndex bucket() const { return bucket_; }
  const std::deque<WorkloadEntry>& entries() const { return entries_; }
  /// True if no work is pending at all (resident or spilled).
  bool empty() const { return total_objects_ == 0; }

  /// Total pending cross-match objects (the |W_i| of Eq. 1), resident or
  /// spilled — scheduling metadata never leaves memory.
  uint64_t total_objects() const { return total_objects_; }

  /// Objects whose entry payloads are currently in memory.
  uint64_t resident_objects() const { return resident_objects_; }

  /// Arrival time of the oldest pending sub-query. Only meaningful when
  /// non-empty.
  TimeMs oldest_arrival_ms() const { return oldest_arrival_ms_; }

  /// Age of the oldest request at `now` (the A(i) of Eq. 2); 0 if empty.
  TimeMs AgeMs(TimeMs now) const {
    return empty() ? 0.0 : now - oldest_arrival_ms_;
  }

  void Push(WorkloadEntry entry);

  /// Removes and returns the resident entries (the batch the scheduler
  /// dispatches) and zeroes all counters; the caller is responsible for
  /// restoring any spilled segments of this bucket alongside.
  std::vector<WorkloadEntry> TakeAll();

  /// Removes and returns the resident entries for spilling to disk.
  /// total_objects() and the age metadata are unchanged — the work is
  /// still pending, just not resident.
  std::vector<WorkloadEntry> ExtractResidents();

 private:
  storage::BucketIndex bucket_;
  std::deque<WorkloadEntry> entries_;
  uint64_t total_objects_ = 0;
  uint64_t resident_objects_ = 0;
  TimeMs oldest_arrival_ms_ = 0.0;
};

/// Spill statistics (see EnableSpill).
struct SpillStats {
  uint64_t segments_spilled = 0;
  uint64_t segments_restored = 0;
  uint64_t bytes_spilled = 0;
  uint64_t bytes_restored = 0;
};

/// Tracks every bucket's queue and every query's outstanding sub-query
/// count.
class WorkloadManager {
 public:
  explicit WorkloadManager(size_t num_buckets);

  /// Enables workload overflow to disk (paper §6 future work): whenever
  /// resident workload objects exceed `memory_budget_objects`, the largest
  /// resident queues are spilled to `path` until the budget holds; spilled
  /// segments are restored transparently when their bucket is dispatched.
  /// Queue metadata (sizes, ages) always stays resident, so scheduling
  /// decisions are unaffected by residency.
  Status EnableSpill(const std::string& path,
                     uint64_t memory_budget_objects);

  /// Objects whose payloads are resident (<= budget when spill enabled).
  uint64_t resident_objects() const { return resident_objects_; }

  const SpillStats& spill_stats() const { return spill_stats_; }

  /// Routes spill-restore read buffers through a manager-owned bump arena
  /// (reset at each dispatch) instead of the heap. The buffers are
  /// dispatch-scoped scratch, so restored entries are byte-identical on
  /// or off; the switch exists to prove that and for A/B benchmarking.
  void set_use_restore_arena(bool use) { use_restore_arena_ = use; }
  bool use_restore_arena() const { return use_restore_arena_; }

  /// Admits a pre-processed query: installs one WorkloadEntry per bucket
  /// workload. Returns the number of buckets the query joined.
  /// InvalidArgument if the query has no workloads or is already pending.
  Result<size_t> Admit(const CrossMatchQuery& query,
                       const std::vector<BucketWorkload>& workloads);

  /// Queue of bucket `b` (always valid; may be empty).
  const WorkloadQueue& queue(storage::BucketIndex b) const {
    return queues_[b];
  }

  /// Buckets with non-empty queues, ascending.
  const std::set<storage::BucketIndex>& active_buckets() const {
    return active_;
  }

  /// Dispatches bucket `b`'s whole queue (restoring any spilled segments).
  /// Decrements the owning queries' outstanding counts; every query that
  /// reaches zero is appended to `completed`. `restored_bytes`, if
  /// non-null, receives the spill-file bytes read for I/O accounting.
  std::vector<WorkloadEntry> TakeBucket(storage::BucketIndex b,
                                        std::vector<QueryId>* completed,
                                        uint64_t* restored_bytes = nullptr);

  /// Outstanding sub-query count for a pending query (0 if unknown/done).
  size_t PendingParts(QueryId id) const;

  /// Number of queries with outstanding work.
  size_t pending_queries() const { return pending_parts_.size(); }

  /// Total objects across all queues (memory pressure indicator; the paper
  /// assumes workload queues fit in memory).
  uint64_t total_pending_objects() const { return total_pending_objects_; }

 private:
  /// Spills the largest resident queues until the memory budget holds.
  Status MaybeSpill();

  std::vector<WorkloadQueue> queues_;
  std::set<storage::BucketIndex> active_;
  std::unordered_map<QueryId, size_t> pending_parts_;
  uint64_t total_pending_objects_ = 0;
  uint64_t resident_objects_ = 0;

  std::unique_ptr<WorkloadSpillFile> spill_;
  uint64_t memory_budget_objects_ = 0;  // 0 = unlimited (spill disabled)
  SpillStats spill_stats_;
  /// Dispatch-scoped scratch for restore read buffers (see
  /// set_use_restore_arena); reset at the top of every TakeBucket.
  util::Arena restore_arena_;
  bool use_restore_arena_ = true;
};

}  // namespace liferaft::query

#endif  // LIFERAFT_QUERY_WORKLOAD_H_
